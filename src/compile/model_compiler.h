// Ahead-of-time model compiler (ROADMAP item 2).
//
// A serving replica's model never trains again: every eval forward repeats
// work that can be done once at load. ModelCompiler rewrites a Regressor in
// place into its executable serving form:
//
//   * BatchNorm folding — BatchNorm1d/3d running statistics are absorbed
//     into the adjacent Dense/Conv3d weights (both directions; the
//     BN-before-conv case only when the conv has no padding, since zero
//     padding breaks the affine-shift identity). Folded eval matches the
//     unfused path within documented fp tolerance (reassociation of the
//     per-element multiply chain); it is exact where no reassociation
//     occurs. The BN layer leaves the layer chain entirely.
//   * Dropout stripping — eval-mode Dropout is the identity, so the layers
//     are removed. This also extends fusion chains: a Dense/Conv3d whose
//     activation used to sit behind a Dropout becomes directly adjacent to
//     it and fuses into one GEMM epilogue.
//   * Eval-program compilation — every Sequential precomputes its fused
//     dispatch once (nn::Sequential::compile_eval), replacing the per-call
//     dynamic_cast scan.
//   * Weight prepacking — every Dense/Conv3d packs its weight into the GEMM
//     panel image once (core::pack_a_full / pack_b_full) so steady-state
//     sgemm calls skip pack_a/pack_b. Bitwise identical on every dispatch
//     path (core::sgemm_prepacked).
//   * Conv-plan prewarming — the 3D-CNN trunk's vol2col copy plans are
//     built for the model's voxel geometry ahead of the first request.
//
// The compiled model is eval-only: training after compile() would update
// weights underneath stale packed images (the training path itself is
// unaffected — prepacked GEMMs are bypassed while training — but the next
// eval would read the stale pack). save_compiled/load_compiled serialize
// the compiled form — folded weights, packed panel images, workspace
// high-water budgets — into the mmap-friendly artifact of
// io/model_artifact.h so replicas cold-start without the h5/init path and
// point their GEMM views straight into the shared file mapping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/model_artifact.h"
#include "models/regressor.h"

namespace df::nn {
class Sequential;
class Dense;
class Conv3d;
}  // namespace df::nn

namespace df::compile {

/// The four servable model families an artifact can carry.
enum class ModelFamily : int64_t {
  kCnn3d = 0,
  kSgcnn = 1,
  kFusion = 2,      // Mid-level / Coherent (same wiring)
  kLateFusion = 3,
};

/// Identify a Regressor's family; throws std::invalid_argument for model
/// types the compiler does not understand.
ModelFamily family_of(models::Regressor& model);

/// The canonical structure walk: fixed per family, independent of config
/// flags, recursive left-to-right through Sequentials and Residual inners.
/// Everything the artifact stores positionally ("param/<i>", "pack/...<i>",
/// "quant/...<i>") depends on save and load walking the model in this
/// order, and the quantization pass (src/quant/) uses the same order so its
/// per-layer state lands on the same indices.
struct StructureWalk {
  std::vector<nn::Sequential*> seqs;  // top-level Sequentials, canonical order
  std::vector<nn::Dense*> dense;      // GEMM layers, canonical order
  std::vector<nn::Conv3d*> conv;
};

/// Walk `model`; throws std::invalid_argument for unsupported model types.
StructureWalk walk_structure(models::Regressor& model);

struct CompileOptions {
  bool fold_batch_norm = true;
  bool strip_dropout = true;
  bool compile_eval_programs = true;
  bool prepack_weights = true;
  bool warm_conv_plans = true;
};

struct CompileReport {
  int folded_batch_norms = 0;
  int stripped_dropouts = 0;
  int prepacked_dense = 0;
  int prepacked_conv = 0;
};

class ModelCompiler {
 public:
  explicit ModelCompiler(CompileOptions opts = {}) : opts_(opts) {}

  /// Rewrite `model` into its serving form (see file comment). Idempotent:
  /// compiling an already-compiled model only refreshes the packed images.
  /// The model is switched to eval mode and must stay there.
  CompileReport compile(models::Regressor& model) const;

  const CompileOptions& options() const { return opts_; }

 private:
  CompileOptions opts_;
};

/// Steady-state arena budgets measured on a warmed donor replica
/// (serve::RegressorScorer::workspace_capacities); a replica restored from
/// the artifact pre-grows its arenas to these sizes and never allocates
/// again (core::Workspace::reserve).
struct WorkspaceBudget {
  int64_t forward_floats = 0;
  int64_t feat_floats = 0;  // per featurize lane
};

/// Compile `model` (in place) and serialize its compiled form. Throws
/// std::invalid_argument if any BatchNorm survives folding — the artifact
/// has no carrier for running statistics, by design.
/// `feature_set_version` records the featurization contract the model was
/// trained against (chem/graph_featurizer.h); serving validates it against
/// the replica's featurizer configs (serve/registry.h) so a model never
/// silently scores features it has never seen.
void save_compiled(models::Regressor& model, const std::string& path,
                   int64_t poses_per_batch = 0, WorkspaceBudget budget = {},
                   int64_t feature_set_version = 1);

/// A model restored from a compiled artifact. `model` is eval-only (its
/// training entry points throw) and keeps the underlying file mapping alive
/// for as long as it lives — packed weight views point into it.
struct CompiledModel {
  std::shared_ptr<io::ArtifactReader> image;
  std::unique_ptr<models::Regressor> model;
  ModelFamily family = ModelFamily::kCnn3d;
  int64_t poses_per_batch = 0;
  WorkspaceBudget budget;
  /// Featurization contract the model expects; artifacts written before the
  /// section existed load as 1 (the historical feature set).
  int64_t feature_set_version = 1;
};

/// Restore from an already-open artifact (replicas share one mapping).
CompiledModel load_compiled(std::shared_ptr<io::ArtifactReader> image);
/// Convenience: open + restore.
CompiledModel load_compiled(const std::string& path);

}  // namespace df::compile
