#include "compile/model_compiler.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/gemm.h"
#include "core/gemm_s8.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "nn/conv3d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/norm.h"
#include "nn/residual.h"
#include "nn/sequential.h"

namespace df::compile {

namespace {

// ---- BatchNorm folding ----------------------------------------------------
//
// Eval-mode BatchNorm is the per-feature affine x -> s*x + t with
// s = gamma / sqrt(running_var + eps) and t = beta - s*mean, computed in
// float exactly as norm.cpp does. Absorbing it into the neighbouring linear
// layer reassociates one multiply per weight, so the folded output matches
// the unfused stack within fp tolerance (see docs/API.md for the bound the
// tests pin); the compiled artifact then pins itself bitwise against the
// folded donor, which is the identity serving actually relies on.

void fold_bn1d_into_prev(nn::Dense& d, nn::BatchNorm1d& bn) {
  const int64_t in = d.in_features(), out = d.out_features();
  core::Tensor& W = d.weight().value;  // (in, out)
  core::Tensor& b = d.bias().value;    // (out)
  for (int64_t j = 0; j < out; ++j) {
    const float is = 1.0f / std::sqrt(bn.running_var()[j] + bn.eps());
    const float s = bn.gamma().value[j] * is;
    for (int64_t i = 0; i < in; ++i) W.at(i, j) *= s;
    b[j] = (b[j] - bn.running_mean()[j]) * s + bn.beta().value[j];
  }
}

void fold_bn1d_into_next(nn::BatchNorm1d& bn, nn::Dense& d) {
  const int64_t in = d.in_features(), out = d.out_features();
  core::Tensor& W = d.weight().value;
  core::Tensor& b = d.bias().value;
  for (int64_t i = 0; i < in; ++i) {
    const float is = 1.0f / std::sqrt(bn.running_var()[i] + bn.eps());
    const float s = bn.gamma().value[i] * is;
    const float t = bn.beta().value[i] - bn.running_mean()[i] * s;
    for (int64_t j = 0; j < out; ++j) {
      b[j] += t * W.at(i, j);  // uses the pre-scale weight
      W.at(i, j) *= s;
    }
  }
}

void fold_bn3d_into_prev(nn::Conv3d& c, nn::BatchNorm3d& bn) {
  const int64_t cout = c.out_channels();
  const int64_t row = c.in_channels() * c.kernel() * c.kernel() * c.kernel();
  float* W = c.weight().value.data();  // (cout, cin*k^3) row-major
  float* b = c.bias().value.data();
  for (int64_t co = 0; co < cout; ++co) {
    const float is = 1.0f / std::sqrt(bn.running_var()[co] + bn.eps());
    const float s = bn.gamma().value[co] * is;
    float* wr = W + co * row;
    for (int64_t i = 0; i < row; ++i) wr[i] *= s;
    b[co] = (b[co] - bn.running_mean()[co]) * s + bn.beta().value[co];
  }
}

// Only valid for pad == 0: with zero padding the BN's constant shift t is
// absent on the padded border taps, so it cannot be hoisted into the bias.
// The caller guards on padding.
void fold_bn3d_into_next(nn::BatchNorm3d& bn, nn::Conv3d& c) {
  const int64_t cout = c.out_channels(), cin = c.in_channels();
  const int64_t kk = c.kernel() * c.kernel() * c.kernel();
  float* W = c.weight().value.data();
  float* b = c.bias().value.data();
  for (int64_t ci = 0; ci < cin; ++ci) {
    const float is = 1.0f / std::sqrt(bn.running_var()[ci] + bn.eps());
    const float s = bn.gamma().value[ci] * is;
    const float t = bn.beta().value[ci] - bn.running_mean()[ci] * s;
    for (int64_t co = 0; co < cout; ++co) {
      float* wr = W + (co * cin + ci) * kk;
      float tap_sum = 0.0f;
      for (int64_t k = 0; k < kk; ++k) tap_sum += wr[k];
      b[co] += t * tap_sum;
      for (int64_t k = 0; k < kk; ++k) wr[k] *= s;
    }
  }
}

int fold_sequential(nn::Sequential& seq) {
  int folded = 0;
  size_t i = 0;
  while (i < seq.size()) {
    nn::Module* m = &seq.layer(i);
    if (auto* r = dynamic_cast<nn::Residual*>(m)) {
      // A BN adjacent to a Residual never folds across the skip boundary;
      // only the wrapped block is rewritten.
      if (auto* s = dynamic_cast<nn::Sequential*>(&r->inner())) folded += fold_sequential(*s);
      ++i;
      continue;
    }
    if (auto* s = dynamic_cast<nn::Sequential*>(m)) {
      folded += fold_sequential(*s);
      ++i;
      continue;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm1d*>(m)) {
      nn::Dense* prev = i > 0 ? dynamic_cast<nn::Dense*>(&seq.layer(i - 1)) : nullptr;
      if (prev != nullptr && prev->has_bias() && prev->out_features() == bn->features()) {
        fold_bn1d_into_prev(*prev, *bn);
        seq.remove(i);
        ++folded;
        continue;  // layer i is now the one that followed the BN
      }
      nn::Dense* next = i + 1 < seq.size() ? dynamic_cast<nn::Dense*>(&seq.layer(i + 1)) : nullptr;
      if (next != nullptr && next->has_bias() && next->in_features() == bn->features()) {
        fold_bn1d_into_next(*bn, *next);
        seq.remove(i);
        ++folded;
        continue;
      }
      ++i;
      continue;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm3d*>(m)) {
      nn::Conv3d* prev = i > 0 ? dynamic_cast<nn::Conv3d*>(&seq.layer(i - 1)) : nullptr;
      if (prev != nullptr && prev->out_channels() == bn->channels()) {
        fold_bn3d_into_prev(*prev, *bn);
        seq.remove(i);
        ++folded;
        continue;
      }
      nn::Conv3d* next = i + 1 < seq.size() ? dynamic_cast<nn::Conv3d*>(&seq.layer(i + 1)) : nullptr;
      if (next != nullptr && next->padding() == 0 && next->in_channels() == bn->channels()) {
        fold_bn3d_into_next(*bn, *next);
        seq.remove(i);
        ++folded;
        continue;
      }
      ++i;
      continue;
    }
    ++i;
  }
  return folded;
}

int strip_dropout(nn::Sequential& seq) {
  int stripped = 0;
  size_t i = 0;
  while (i < seq.size()) {
    nn::Module* m = &seq.layer(i);
    if (dynamic_cast<nn::Dropout*>(m) != nullptr) {
      seq.remove(i);
      ++stripped;
      continue;
    }
    if (auto* r = dynamic_cast<nn::Residual*>(m)) {
      if (auto* s = dynamic_cast<nn::Sequential*>(&r->inner())) stripped += strip_dropout(*s);
    } else if (auto* s = dynamic_cast<nn::Sequential*>(m)) {
      stripped += strip_dropout(*s);
    }
    ++i;
  }
  return stripped;
}

void compile_eval_rec(nn::Sequential& seq) {
  for (size_t i = 0; i < seq.size(); ++i) {
    nn::Module* m = &seq.layer(i);
    if (auto* r = dynamic_cast<nn::Residual*>(m)) {
      if (auto* s = dynamic_cast<nn::Sequential*>(&r->inner())) compile_eval_rec(*s);
    } else if (auto* s = dynamic_cast<nn::Sequential*>(m)) {
      compile_eval_rec(*s);
    }
  }
  seq.compile_eval();
}

int count_batchnorms(nn::Sequential& seq) {
  int n = 0;
  for (size_t i = 0; i < seq.size(); ++i) {
    nn::Module* m = &seq.layer(i);
    if (dynamic_cast<nn::BatchNorm1d*>(m) != nullptr ||
        dynamic_cast<nn::BatchNorm3d*>(m) != nullptr) {
      ++n;
    } else if (auto* r = dynamic_cast<nn::Residual*>(m)) {
      if (auto* s = dynamic_cast<nn::Sequential*>(&r->inner())) n += count_batchnorms(*s);
    } else if (auto* s = dynamic_cast<nn::Sequential*>(m)) {
      n += count_batchnorms(*s);
    }
  }
  return n;
}

// ---- canonical structure walks --------------------------------------------
//
// StructureWalk itself lives in the header (the quantization pass shares
// it); the collectors stay here.

void walk_seq_gemm(nn::Sequential& seq, StructureWalk& w) {
  for (size_t i = 0; i < seq.size(); ++i) {
    nn::Module* m = &seq.layer(i);
    if (auto* d = dynamic_cast<nn::Dense*>(m)) {
      w.dense.push_back(d);
    } else if (auto* c = dynamic_cast<nn::Conv3d*>(m)) {
      w.conv.push_back(c);
    } else if (auto* r = dynamic_cast<nn::Residual*>(m)) {
      nn::Module& inner = r->inner();
      if (auto* s = dynamic_cast<nn::Sequential*>(&inner)) {
        walk_seq_gemm(*s, w);
      } else if (auto* d2 = dynamic_cast<nn::Dense*>(&inner)) {
        w.dense.push_back(d2);
      } else if (auto* c2 = dynamic_cast<nn::Conv3d*>(&inner)) {
        w.conv.push_back(c2);
      }
    } else if (auto* s = dynamic_cast<nn::Sequential*>(m)) {
      walk_seq_gemm(*s, w);
    }
  }
}

void collect_cnn(models::Cnn3d& m, StructureWalk& w) {
  w.seqs.push_back(&m.trunk());
  walk_seq_gemm(m.trunk(), w);
  w.dense.push_back(&m.out_dense());
}

// The graph-convolution layers (GatedGraphConv, Gather) keep their own GEMM
// paths — their operand shapes depend on the per-request graph, so there is
// nothing to prepack; only the dense head is walked.
void collect_sg(models::Sgcnn& m, StructureWalk& w) {
  w.dense.push_back(&m.embed_dense());
  w.dense.push_back(&m.dense1());
  w.dense.push_back(&m.dense2());
  w.dense.push_back(&m.out_dense());
}

void collect(models::Regressor& model, StructureWalk& w) {
  if (auto* c = dynamic_cast<models::Cnn3d*>(&model)) {
    collect_cnn(*c, w);
    return;
  }
  if (auto* s = dynamic_cast<models::Sgcnn*>(&model)) {
    collect_sg(*s, w);
    return;
  }
  if (auto* f = dynamic_cast<models::FusionModel*>(&model)) {
    collect_cnn(f->cnn_head(), w);
    collect_sg(f->sg_head(), w);
    if (f->ms_cnn() != nullptr) {
      w.seqs.push_back(f->ms_cnn());
      walk_seq_gemm(*f->ms_cnn(), w);
    }
    if (f->ms_sg() != nullptr) {
      w.seqs.push_back(f->ms_sg());
      walk_seq_gemm(*f->ms_sg(), w);
    }
    w.seqs.push_back(&f->fusion_trunk());
    walk_seq_gemm(f->fusion_trunk(), w);
    return;
  }
  if (auto* l = dynamic_cast<models::LateFusion*>(&model)) {
    collect_cnn(l->cnn_head(), w);
    collect_sg(l->sg_head(), w);
    return;
  }
  throw std::invalid_argument("model compiler: unsupported model type: " + model.name());
}

// Parameter walk for artifact serialization. NOT trainable_parameters() for
// the fusion families: FusionModel excludes its heads unless Coherent, and
// the artifact must carry every weight the eval path reads regardless of
// the training wiring.
std::vector<nn::Parameter*> walk_parameters(models::Regressor& model) {
  if (auto* f = dynamic_cast<models::FusionModel*>(&model)) {
    std::vector<nn::Parameter*> out = f->cnn_head().trainable_parameters();
    std::vector<nn::Parameter*> sg = f->sg_head().trainable_parameters();
    out.insert(out.end(), sg.begin(), sg.end());
    if (f->ms_cnn() != nullptr) f->ms_cnn()->collect_parameters(out);
    if (f->ms_sg() != nullptr) f->ms_sg()->collect_parameters(out);
    f->fusion_trunk().collect_parameters(out);
    return out;
  }
  if (auto* l = dynamic_cast<models::LateFusion*>(&model)) {
    std::vector<nn::Parameter*> out = l->cnn_head().trainable_parameters();
    std::vector<nn::Parameter*> sg = l->sg_head().trainable_parameters();
    out.insert(out.end(), sg.begin(), sg.end());
    return out;
  }
  return model.trainable_parameters();  // Cnn3d / Sgcnn walk everything
}

models::Cnn3d* cnn_head_of(models::Regressor& model) {
  if (auto* c = dynamic_cast<models::Cnn3d*>(&model)) return c;
  if (auto* f = dynamic_cast<models::FusionModel*>(&model)) return &f->cnn_head();
  if (auto* l = dynamic_cast<models::LateFusion*>(&model)) return &l->cnn_head();
  return nullptr;
}

// Build every vol2col copy plan for the model's voxel geometry with one
// zero-valued dummy trunk forward (values are discarded; the plans and pool
// argmax shapes depend only on geometry).
void warm_conv_plans(models::Regressor& model) {
  models::Cnn3d* cnn = cnn_head_of(model);
  if (cnn == nullptr) return;
  const models::Cnn3dConfig& cfg = cnn->config();
  core::Tensor zero({1, cfg.in_channels, cfg.grid_dim, cfg.grid_dim, cfg.grid_dim});
  (void)cnn->forward_latent(zero, /*training=*/false);
}

// ---- per-family config serialization --------------------------------------

io::H5LiteError format_error(const std::string& msg) {
  return io::H5LiteError(io::H5LiteError::Kind::Format, "artifact: " + msg);
}

void check_len(const io::ArtifactReader& a, const std::string& name, int64_t numel) {
  if (a.section(name).numel() != numel)
    throw format_error("section " + name + " has wrong length in " + a.path());
}

void add_cnn_cfg(io::ArtifactWriter& w, const models::Cnn3dConfig& c) {
  const int64_t iv[] = {c.in_channels,        c.grid_dim,           c.conv_filters1,
                        c.conv_filters2,      c.dense_nodes,        c.batch_norm ? 1 : 0,
                        c.residual1 ? 1 : 0,  c.residual2 ? 1 : 0};
  w.add_ints("cfg/cnn/int", {8}, iv);
  const float fv[] = {c.dropout1, c.dropout2};
  w.add_floats("cfg/cnn/float", {2}, fv);
}

models::Cnn3dConfig read_cnn_cfg(const io::ArtifactReader& a) {
  check_len(a, "cfg/cnn/int", 8);
  check_len(a, "cfg/cnn/float", 2);
  const int64_t* iv = a.ints("cfg/cnn/int");
  const float* fv = a.floats("cfg/cnn/float");
  models::Cnn3dConfig c;
  c.in_channels = static_cast<int>(iv[0]);
  c.grid_dim = static_cast<int>(iv[1]);
  c.conv_filters1 = static_cast<int>(iv[2]);
  c.conv_filters2 = static_cast<int>(iv[3]);
  c.dense_nodes = static_cast<int>(iv[4]);
  c.batch_norm = iv[5] != 0;
  c.residual1 = iv[6] != 0;
  c.residual2 = iv[7] != 0;
  c.dropout1 = fv[0];
  c.dropout2 = fv[1];
  return c;
}

void add_sg_cfg(io::ArtifactWriter& w, const models::SgcnnConfig& c) {
  const int64_t iv[] = {c.node_features, c.covalent_k, c.noncovalent_k, c.covalent_gather_width,
                        c.noncovalent_gather_width};
  w.add_ints("cfg/sg/int", {5}, iv);
}

models::SgcnnConfig read_sg_cfg(const io::ArtifactReader& a) {
  check_len(a, "cfg/sg/int", 5);
  const int64_t* iv = a.ints("cfg/sg/int");
  models::SgcnnConfig c;
  c.node_features = static_cast<int>(iv[0]);
  c.covalent_k = static_cast<int>(iv[1]);
  c.noncovalent_k = static_cast<int>(iv[2]);
  c.covalent_gather_width = static_cast<int>(iv[3]);
  c.noncovalent_gather_width = static_cast<int>(iv[4]);
  return c;
}

void add_fusion_cfg(io::ArtifactWriter& w, const models::FusionConfig& c) {
  const int64_t iv[] = {static_cast<int64_t>(c.kind),
                        c.num_fusion_layers,
                        c.fusion_nodes,
                        c.model_specific_layers ? 1 : 0,
                        c.residual_fusion ? 1 : 0,
                        static_cast<int64_t>(c.activation)};
  w.add_ints("cfg/fusion/int", {6}, iv);
  const float fv[] = {c.dropout1, c.dropout2, c.dropout3};
  w.add_floats("cfg/fusion/float", {3}, fv);
}

models::FusionConfig read_fusion_cfg(const io::ArtifactReader& a) {
  check_len(a, "cfg/fusion/int", 6);
  check_len(a, "cfg/fusion/float", 3);
  const int64_t* iv = a.ints("cfg/fusion/int");
  const float* fv = a.floats("cfg/fusion/float");
  if (iv[0] < 0 || iv[0] > 2) throw format_error("bad fusion kind in " + a.path());
  if (iv[5] < 0 || iv[5] > 2) throw format_error("bad fusion activation in " + a.path());
  models::FusionConfig c;
  c.kind = static_cast<models::FusionKind>(iv[0]);
  c.num_fusion_layers = static_cast<int>(iv[1]);
  c.fusion_nodes = static_cast<int>(iv[2]);
  c.model_specific_layers = iv[3] != 0;
  c.residual_fusion = iv[4] != 0;
  c.activation = static_cast<nn::Activation>(iv[5]);
  c.dropout1 = fv[0];
  c.dropout2 = fv[1];
  c.dropout3 = fv[2];
  return c;
}

void write_config(io::ArtifactWriter& w, models::Regressor& model, ModelFamily fam) {
  switch (fam) {
    case ModelFamily::kCnn3d:
      add_cnn_cfg(w, dynamic_cast<models::Cnn3d&>(model).config());
      return;
    case ModelFamily::kSgcnn:
      add_sg_cfg(w, dynamic_cast<models::Sgcnn&>(model).config());
      return;
    case ModelFamily::kFusion: {
      auto& f = dynamic_cast<models::FusionModel&>(model);
      add_fusion_cfg(w, f.config());
      add_cnn_cfg(w, f.cnn_head().config());
      add_sg_cfg(w, f.sg_head().config());
      return;
    }
    case ModelFamily::kLateFusion: {
      auto& l = dynamic_cast<models::LateFusion&>(model);
      add_cnn_cfg(w, l.cnn_head().config());
      add_sg_cfg(w, l.sg_head().config());
      return;
    }
  }
  throw std::invalid_argument("model compiler: bad family");
}

std::unique_ptr<models::Regressor> rebuild(const io::ArtifactReader& a, ModelFamily fam) {
  // Structure-only rebuild: every parameter value is overwritten from the
  // artifact afterwards, so the init Rng just has to be *some* fixed seed.
  core::Rng rng(0x9a7e);
  switch (fam) {
    case ModelFamily::kCnn3d:
      return std::make_unique<models::Cnn3d>(read_cnn_cfg(a), rng);
    case ModelFamily::kSgcnn:
      return std::make_unique<models::Sgcnn>(read_sg_cfg(a), rng);
    case ModelFamily::kFusion: {
      auto cnn = std::make_shared<models::Cnn3d>(read_cnn_cfg(a), rng);
      auto sg = std::make_shared<models::Sgcnn>(read_sg_cfg(a), rng);
      return std::make_unique<models::FusionModel>(read_fusion_cfg(a), std::move(cnn),
                                                   std::move(sg), rng);
    }
    case ModelFamily::kLateFusion: {
      auto cnn = std::make_shared<models::Cnn3d>(read_cnn_cfg(a), rng);
      auto sg = std::make_shared<models::Sgcnn>(read_sg_cfg(a), rng);
      return std::make_unique<models::LateFusion>(std::move(cnn), std::move(sg));
    }
  }
  throw format_error("bad family in " + a.path());
}

/// Eval-only facade over a model restored from an artifact: forwards the
/// scoring surface, throws on any training entry point (the packed weight
/// images would go stale underneath an update), and keeps the mmap alive
/// for the prepacked views that point into it.
class CompiledRegressor : public models::Regressor {
 public:
  CompiledRegressor(std::shared_ptr<io::ArtifactReader> image,
                    std::unique_ptr<models::Regressor> inner)
      : image_(std::move(image)), inner_(std::move(inner)) {}

  float forward_train(const data::Sample&) override {
    throw std::logic_error("compiled model is eval-only: forward_train on " + inner_->name());
  }
  void backward(float) override {
    throw std::logic_error("compiled model is eval-only: backward on " + inner_->name());
  }
  float predict(const data::Sample& s) override { return inner_->predict(s); }
  std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) override {
    return inner_->predict_batch(batch);
  }
  std::vector<nn::Parameter*> trainable_parameters() override {
    return inner_->trainable_parameters();
  }
  void set_training(bool t) override {
    if (t) throw std::logic_error("compiled model is eval-only: set_training(true)");
    inner_->set_training(false);
  }
  std::string name() const override { return inner_->name(); }
  /// The wrapped model — walk_structure/family_of look through the facade.
  models::Regressor& inner() { return *inner_; }

 private:
  std::shared_ptr<io::ArtifactReader> image_;
  std::unique_ptr<models::Regressor> inner_;
};

}  // namespace

StructureWalk walk_structure(models::Regressor& model) {
  if (auto* cr = dynamic_cast<CompiledRegressor*>(&model)) return walk_structure(cr->inner());
  StructureWalk w;
  collect(model, w);
  return w;
}

ModelFamily family_of(models::Regressor& model) {
  if (auto* cr = dynamic_cast<CompiledRegressor*>(&model)) return family_of(cr->inner());
  if (dynamic_cast<models::FusionModel*>(&model) != nullptr) return ModelFamily::kFusion;
  if (dynamic_cast<models::LateFusion*>(&model) != nullptr) return ModelFamily::kLateFusion;
  if (dynamic_cast<models::Cnn3d*>(&model) != nullptr) return ModelFamily::kCnn3d;
  if (dynamic_cast<models::Sgcnn*>(&model) != nullptr) return ModelFamily::kSgcnn;
  throw std::invalid_argument("model compiler: unsupported model type: " + model.name());
}

CompileReport ModelCompiler::compile(models::Regressor& model) const {
  model.set_training(false);
  StructureWalk w;
  collect(model, w);

  CompileReport rep;
  if (opts_.fold_batch_norm) {
    for (nn::Sequential* s : w.seqs) rep.folded_batch_norms += fold_sequential(*s);
  }
  if (opts_.strip_dropout) {
    for (nn::Sequential* s : w.seqs) rep.stripped_dropouts += strip_dropout(*s);
  }
  // Folding/stripping only removed BN/Dropout layers, so the Dense/Conv3d
  // pointers in the walk are still valid — and now hold the folded weights.
  if (opts_.compile_eval_programs) {
    for (nn::Sequential* s : w.seqs) compile_eval_rec(*s);
  }
  if (opts_.prepack_weights) {
    for (nn::Dense* d : w.dense) {
      d->prepack();
      ++rep.prepacked_dense;
    }
    for (nn::Conv3d* c : w.conv) {
      c->prepack();
      ++rep.prepacked_conv;
    }
  }
  if (opts_.warm_conv_plans) warm_conv_plans(model);
  return rep;
}

void save_compiled(models::Regressor& model, const std::string& path, int64_t poses_per_batch,
                   WorkspaceBudget budget, int64_t feature_set_version) {
  if (feature_set_version < 1) {
    throw std::invalid_argument("save_compiled: feature_set_version must be >= 1");
  }
  const ModelFamily fam = family_of(model);
  ModelCompiler().compile(model);

  // The artifact has no carrier for BatchNorm running statistics (they are
  // not Parameters) — by design: a BN that survived folding would silently
  // lose its stats on the round trip, so refuse to serialize it.
  StructureWalk w;
  collect(model, w);
  int surviving_bn = 0;
  for (nn::Sequential* s : w.seqs) surviving_bn += count_batchnorms(*s);
  if (surviving_bn > 0) {
    throw std::invalid_argument("save_compiled: " + std::to_string(surviving_bn) +
                                " BatchNorm layer(s) survived folding in " + model.name() +
                                "; the artifact cannot carry running statistics");
  }

  io::ArtifactWriter out;
  out.add_scalar("family", static_cast<int64_t>(fam));
  out.add_scalar("poses_per_batch", poses_per_batch);
  out.add_scalar("ws/forward", budget.forward_floats);
  out.add_scalar("ws/feat", budget.feat_floats);
  out.add_scalar("meta/feature_set_version", feature_set_version);
  write_config(out, model, fam);

  const std::vector<nn::Parameter*> params = walk_parameters(model);
  out.add_scalar("param_count", static_cast<int64_t>(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    out.add_floats("param/" + std::to_string(i), params[i]->value.shape(),
                   params[i]->value.data());
  }

  // Panel images, regenerated from the folded weights (deterministic — the
  // pack layout is a pure function of the operand) rather than copied out
  // of the layers, so saving works whether or not compile() prepacked.
  out.add_scalar("pack/dense_count", static_cast<int64_t>(w.dense.size()));
  out.add_scalar("pack/conv_count", static_cast<int64_t>(w.conv.size()));
  std::vector<float> buf;
  for (size_t i = 0; i < w.dense.size(); ++i) {
    nn::Dense* d = w.dense[i];
    const int64_t len = core::packed_b_floats(d->in_features(), d->out_features());
    buf.resize(static_cast<size_t>(len));
    core::pack_b_full(false, d->in_features(), d->out_features(), d->weight().value.data(),
                      d->out_features(), buf.data());
    out.add_floats("pack/dense/" + std::to_string(i), {len}, buf.data());
  }
  for (size_t i = 0; i < w.conv.size(); ++i) {
    nn::Conv3d* c = w.conv[i];
    const int64_t K = c->in_channels() * c->kernel() * c->kernel() * c->kernel();
    const int64_t len = core::packed_a_floats(c->out_channels(), K);
    buf.resize(static_cast<size_t>(len));
    core::pack_a_full(false, c->out_channels(), K, c->weight().value.data(), K, buf.data());
    out.add_floats("pack/conv/" + std::to_string(i), {len}, buf.data());
  }

  // Quantized plan sections (artifact v2). Unlike the fp32 panel images,
  // these are copied verbatim from the layers' attached state — the int8
  // images embed calibration results that cannot be regenerated from the
  // weights alone, and the verbatim copy is what makes a restored replica
  // bitwise-reproduce the donor's int8 scores (int32 accumulation is
  // exact, so identical images imply identical outputs).
  bool any_quant = false;
  std::vector<int64_t> dmask(w.dense.size(), 0), cmask(w.conv.size(), 0);
  for (size_t i = 0; i < w.dense.size(); ++i) {
    if (w.dense[i]->quantized_state() != nullptr) dmask[i] = 1, any_quant = true;
  }
  for (size_t i = 0; i < w.conv.size(); ++i) {
    if (w.conv[i]->quantized_state() != nullptr) cmask[i] = 1, any_quant = true;
  }
  if (any_quant) {
    out.add_ints("quant/dense_mask", {static_cast<int64_t>(dmask.size())}, dmask.data());
    out.add_ints("quant/conv_mask", {static_cast<int64_t>(cmask.size())}, cmask.data());
    for (size_t i = 0; i < w.dense.size(); ++i) {
      if (dmask[i] == 0) continue;
      const nn::Dense* d = w.dense[i];
      const nn::QuantizedDense* q = d->quantized_state();
      const std::string base = "quant/dense/" + std::to_string(i) + "/";
      const int64_t plen = core::packed_b_bytes_s8(d->in_features(), d->out_features());
      out.add_int8s(base + "panels", {plen}, q->panels);
      out.add_floats(base + "scales", {d->out_features()}, q->scales);
      out.add_int32s(base + "comp", {d->out_features()}, q->comp);
      out.add_floats(base + "act", {1}, &q->act_scale);
    }
    for (size_t i = 0; i < w.conv.size(); ++i) {
      if (cmask[i] == 0) continue;
      const nn::Conv3d* c = w.conv[i];
      const nn::QuantizedConv* q = c->quantized_state();
      const std::string base = "quant/conv/" + std::to_string(i) + "/";
      const int64_t K = c->in_channels() * c->kernel() * c->kernel() * c->kernel();
      const int64_t wlen = core::quantized_a_bytes_s8(c->out_channels(), K);
      out.add_int8s(base + "w", {wlen}, reinterpret_cast<const int8_t*>(q->wu8));
      out.add_floats(base + "scales", {c->out_channels()}, q->scales);
      out.add_floats(base + "act", {1}, &q->act_scale);
    }
  }

  out.save(path);
}

CompiledModel load_compiled(std::shared_ptr<io::ArtifactReader> image) {
  const io::ArtifactReader& a = *image;
  CompiledModel out;
  out.image = image;
  const int64_t fam_raw = a.scalar("family");
  if (fam_raw < 0 || fam_raw > 3) throw format_error("bad family in " + a.path());
  out.family = static_cast<ModelFamily>(fam_raw);
  out.poses_per_batch = a.scalar("poses_per_batch");
  out.budget = {a.scalar("ws/forward"), a.scalar("ws/feat")};
  // Pre-versioning artifacts carry no section: they were trained against
  // the historical (v1) feature set.
  out.feature_set_version =
      a.has("meta/feature_set_version") ? a.scalar("meta/feature_set_version") : 1;

  std::unique_ptr<models::Regressor> model = rebuild(a, out.family);

  // Re-run the structural passes so the replica's layer chain matches the
  // donor's post-compile chain (same walk order for the positional
  // sections). The fold rewrites init-garbage weights — harmless, every
  // parameter is overwritten next. Prepack is skipped: the packed images
  // come from the mapping, not from a fresh pack.
  CompileOptions structural;
  structural.prepack_weights = false;
  structural.warm_conv_plans = false;
  ModelCompiler(structural).compile(*model);

  const std::vector<nn::Parameter*> params = walk_parameters(*model);
  if (a.scalar("param_count") != static_cast<int64_t>(params.size())) {
    throw format_error("parameter count mismatch in " + a.path() +
                       " (artifact/model structure divergence)");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string name = "param/" + std::to_string(i);
    if (a.section(name).dims != params[i]->value.shape())
      throw format_error("parameter shape mismatch for " + name + " in " + a.path());
    std::memcpy(params[i]->value.data(), a.floats(name),
                static_cast<size_t>(params[i]->value.numel()) * sizeof(float));
  }

  // Point the GEMM layers straight into the mapping — zero-copy weights.
  StructureWalk w;
  collect(*model, w);
  if (a.scalar("pack/dense_count") != static_cast<int64_t>(w.dense.size()) ||
      a.scalar("pack/conv_count") != static_cast<int64_t>(w.conv.size())) {
    throw format_error("packed-layer count mismatch in " + a.path());
  }
  for (size_t i = 0; i < w.dense.size(); ++i) {
    nn::Dense* d = w.dense[i];
    const std::string name = "pack/dense/" + std::to_string(i);
    check_len(a, name, core::packed_b_floats(d->in_features(), d->out_features()));
    d->attach_prepacked(a.floats(name));
  }
  for (size_t i = 0; i < w.conv.size(); ++i) {
    nn::Conv3d* c = w.conv[i];
    const std::string name = "pack/conv/" + std::to_string(i);
    const int64_t K = c->in_channels() * c->kernel() * c->kernel() * c->kernel();
    check_len(a, name, core::packed_a_floats(c->out_channels(), K));
    c->attach_prepacked(a.floats(name));
  }

  // Quantized plans: borrowed views straight into the mapping, like the
  // fp32 panels. Layers with a mask bit run int8 from the first request.
  if (a.has("quant/dense_mask")) {
    check_len(a, "quant/dense_mask", static_cast<int64_t>(w.dense.size()));
    check_len(a, "quant/conv_mask", static_cast<int64_t>(w.conv.size()));
    const int64_t* dmask = a.ints("quant/dense_mask");
    const int64_t* cmask = a.ints("quant/conv_mask");
    for (size_t i = 0; i < w.dense.size(); ++i) {
      if (dmask[i] == 0) continue;
      nn::Dense* d = w.dense[i];
      const std::string base = "quant/dense/" + std::to_string(i) + "/";
      check_len(a, base + "panels", core::packed_b_bytes_s8(d->in_features(), d->out_features()));
      check_len(a, base + "scales", d->out_features());
      check_len(a, base + "comp", d->out_features());
      check_len(a, base + "act", 1);
      d->attach_quantized_views(a.floats(base + "act")[0], a.int8s(base + "panels"),
                                a.floats(base + "scales"), a.int32s(base + "comp"));
    }
    for (size_t i = 0; i < w.conv.size(); ++i) {
      if (cmask[i] == 0) continue;
      nn::Conv3d* c = w.conv[i];
      const std::string base = "quant/conv/" + std::to_string(i) + "/";
      const int64_t K = c->in_channels() * c->kernel() * c->kernel() * c->kernel();
      check_len(a, base + "w", core::quantized_a_bytes_s8(c->out_channels(), K));
      check_len(a, base + "scales", c->out_channels());
      check_len(a, base + "act", 1);
      c->attach_quantized_views(a.floats(base + "act")[0],
                                reinterpret_cast<const uint8_t*>(a.int8s(base + "w")),
                                a.floats(base + "scales"));
    }
  }

  warm_conv_plans(*model);
  model->set_training(false);

  out.model = std::make_unique<CompiledRegressor>(image, std::move(model));
  return out;
}

CompiledModel load_compiled(const std::string& path) {
  return load_compiled(io::ArtifactReader::open(path));
}

}  // namespace df::compile
