#include "data/dataset.h"

#include <stdexcept>

namespace df::data {

ComplexDataset::ComplexDataset(const std::vector<ComplexRecord>* records, std::vector<int> indices,
                               DatasetConfig cfg)
    : records_(records), indices_(std::move(indices)), cfg_(cfg), voxelizer_(cfg.voxel),
      featurizer_(cfg.graph) {
  if (!records_) throw std::invalid_argument("ComplexDataset: null records");
  for (int idx : indices_) {
    if (idx < 0 || static_cast<size_t>(idx) >= records_->size()) {
      throw std::out_of_range("ComplexDataset: index out of range");
    }
  }
}

Sample ComplexDataset::get(size_t i, core::Rng& rng) const {
  const ComplexRecord& rec = (*records_)[static_cast<size_t>(indices_.at(i))];
  Sample s;
  s.record_index = indices_[i];
  s.label = rec.pk;
  s.graph = featurizer_.featurize(rec.ligand, rec.pocket);

  if (cfg_.rotation_augment) {
    chem::Molecule lig = rec.ligand;
    std::vector<chem::Atom> pocket = rec.pocket;
    chem::random_rotation_augment(lig, pocket, rec.site_center, rng, cfg_.rotation_prob);
    s.voxel = voxelizer_.voxelize(lig, pocket, rec.site_center);
  } else {
    s.voxel = voxelizer_.voxelize(rec.ligand, rec.pocket, rec.site_center);
  }
  return s;
}

}  // namespace df::data
