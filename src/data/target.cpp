#include "data/target.h"

#include <algorithm>
#include <cmath>

#include "dock/scoring.h"

namespace df::data {

const char* target_name(TargetKind k) {
  switch (k) {
    case TargetKind::Protease1: return "protease1";
    case TargetKind::Protease2: return "protease2";
    case TargetKind::Spike1: return "spike1";
    case TargetKind::Spike2: return "spike2";
  }
  return "?";
}

std::vector<chem::Atom> make_pocket(const PocketConfig& cfg, core::Rng& rng,
                                    const core::Vec3& center) {
  std::vector<chem::Atom> pocket;
  pocket.reserve(static_cast<size_t>(cfg.num_atoms));
  for (int i = 0; i < cfg.num_atoms; ++i) {
    // Sample a direction on the covered part-sphere: cos(theta) in
    // [1 - 2*coverage, 1] keeps a polar cap open (the solvent mouth).
    const float cos_t = rng.uniform(1.0f - 2.0f * cfg.coverage, 1.0f);
    const float sin_t = std::sqrt(std::max(0.0f, 1.0f - cos_t * cos_t));
    const float phi = rng.uniform(0.0f, 6.2831853f);
    const float r = cfg.radius * rng.uniform(0.92f, 1.12f);
    chem::Atom a;
    a.pos = center + core::Vec3{r * sin_t * std::cos(phi), r * sin_t * std::sin(phi), -r * cos_t};
    const float u = rng.uniform();
    if (u < cfg.charged_frac) {
      a.element = rng.bernoulli(0.5) ? chem::Element::N : chem::Element::O;
      a.formal_charge = a.element == chem::Element::N ? 1 : -1;
    } else if (u < cfg.charged_frac + cfg.hydrophobic_frac) {
      a.element = chem::Element::C;
    } else {
      // Polar residue atoms: N/O/S donors and acceptors.
      const float v = rng.uniform();
      a.element = v < 0.4f ? chem::Element::O : (v < 0.8f ? chem::Element::N : chem::Element::S);
      a.implicit_h = rng.bernoulli(0.5) ? 1 : 0;
    }
    pocket.push_back(a);
  }
  return pocket;
}

Target make_target(TargetKind kind, core::Rng& rng) {
  Target t;
  t.kind = kind;
  t.name = target_name(kind);
  PocketConfig pc;
  switch (kind) {
    case TargetKind::Protease1:
      // Large, deep, hydrophobic-leaning active site (6LU7 conformation).
      pc = {7.5f, 96, 0.78f, 0.55f, 0.06f};
      t.assay_concentration_uM = 100.0f;
      t.oracle = {0.40f, -0.8f, 0.65f, 0.35f, -0.04f, 0.9f, 0.55f, 1.1f};
      break;
    case TargetKind::Protease2:
      // Alternate Mpro conformation: slightly tighter, same chemistry.
      pc = {7.0f, 88, 0.72f, 0.50f, 0.08f};
      t.assay_concentration_uM = 100.0f;
      t.oracle = {0.35f, -0.9f, 0.55f, 0.45f, -0.05f, 1.1f, 0.60f, 1.0f};
      break;
    case TargetKind::Spike1:
      // Small, shallow RBD site: polar contacts dominate.
      pc = {5.5f, 52, 0.48f, 0.30f, 0.14f};
      t.assay_concentration_uM = 10.0f;
      t.oracle = {0.30f, -0.7f, 0.25f, 0.80f, -0.08f, 1.2f, 0.50f, 2.0f};
      break;
    case TargetKind::Spike2:
      pc = {5.0f, 46, 0.44f, 0.35f, 0.12f};
      t.assay_concentration_uM = 10.0f;
      t.oracle = {0.45f, -0.7f, 0.30f, 0.60f, -0.10f, 0.8f, 0.65f, 2.3f};
      break;
  }
  t.pocket = make_pocket(pc, rng);
  t.site_center = core::Vec3{};
  return t;
}

std::vector<Target> make_sars_cov2_targets(core::Rng& rng) {
  return {make_target(TargetKind::Protease1, rng), make_target(TargetKind::Protease2, rng),
          make_target(TargetKind::Spike1, rng), make_target(TargetKind::Spike2, rng)};
}

float topo_term(const chem::Molecule& ligand) {
  // Non-linear ligand-graph contribution: visible to the SG-CNN through the
  // bond graph, invisible to purely geometric scorers.
  const float rings = static_cast<float>(ligand.num_rings());
  const float donors = static_cast<float>(ligand.num_hbond_donors());
  const float acceptors = static_cast<float>(ligand.num_hbond_acceptors());
  const float rotors = static_cast<float>(ligand.num_rotatable_bonds());
  const float logp = ligand.logp_proxy();
  return 0.55f * rings + 0.30f * donors + 0.25f * acceptors - 0.18f * rotors +
         0.8f * std::tanh(logp) - 0.12f * rings * rings * 0.2f;
}

float oracle_pk(const chem::Molecule& ligand_pose, const std::vector<chem::Atom>& pocket,
                const OracleWeights& w, core::Rng* noise_rng) {
  const dock::TermBreakdown t = dock::score_terms(ligand_pose, pocket);
  // Normalize raw term sums per ligand heavy atom (ligand efficiency): a
  // deeply docked pose has contact counts proportional to ligand size, and
  // without this normalization optimized poses saturate the pK clamp.
  const float inv_n = 2.0f / static_cast<float>(std::max<size_t>(1, ligand_pose.num_atoms()));
  const float spatial = inv_n * (w.gauss * (t.gauss1 * 0.08f + t.gauss2 * 0.015f) +
                                 w.repulsion * t.repulsion * 0.10f +
                                 w.hydrophobic * t.hydrophobic * 0.20f +
                                 w.hbond * t.hbond * 0.45f + w.electrostatic * t.electrostatic);
  float pk = w.intercept + spatial + w.topo * topo_term(ligand_pose) * 0.35f;
  if (noise_rng) pk += noise_rng->normal(0.0f, w.noise_sigma);
  return std::clamp(pk, 2.0f, 11.5f);
}

}  // namespace df::data
