// Synthetic PDBbind-2019 — the training/evaluation corpus substitute
// (DESIGN.md substitution #1). Generates protein–ligand complexes with a
// crystal pose and a hidden-oracle affinity, then derives the general /
// refined / core memberships with the same rules the real PDBbind uses:
//   refined: ligand MW <= 1000 Da, Ki/Kd label (no IC50-only), resolution
//            < 2.5 A;
//   core:    diversity-clustered subset of refined (here: greedy
//            max-min selection in descriptor space).
#pragma once

#include <string>
#include <vector>

#include "data/target.h"

namespace df::data {

enum class LabelKind { Ki, Kd, IC50 };

const char* label_kind_name(LabelKind k);

struct ComplexRecord {
  std::string id;                     // synthetic PDB-style code
  chem::Molecule ligand;              // crystal pose, in the pocket frame
  std::vector<chem::Atom> pocket;
  core::Vec3 site_center;
  float pk = 0.0f;                    // ground-truth -log K (Eq. 1)
  LabelKind label_kind = LabelKind::Kd;
  float resolution = 2.0f;            // Angstrom
  bool in_refined = false;
  bool in_core = false;
};

struct PdbbindConfig {
  int num_complexes = 1200;
  int core_size = 60;               // paper: 290 of ~17k; same ~1.7% ratio
  int settle_runs = 2;              // short MC to settle the crystal pose
  int settle_steps = 40;
  chem::MoleculeGenConfig ligand_gen{.min_heavy_atoms = 10, .max_heavy_atoms = 26};
  /// Fraction of heavy (>1000 Da) ligands forced in to exercise the
  /// refined-set MW gate.
  float heavy_fraction = 0.03f;
};

class SyntheticPdbbind {
 public:
  explicit SyntheticPdbbind(PdbbindConfig cfg = {}) : cfg_(cfg) {}

  /// Generate the full corpus; deterministic given `rng`.
  std::vector<ComplexRecord> generate(core::Rng& rng) const;

  /// Index lists per grouping.
  static std::vector<int> general_indices(const std::vector<ComplexRecord>& recs);
  static std::vector<int> refined_indices(const std::vector<ComplexRecord>& recs);
  static std::vector<int> core_indices(const std::vector<ComplexRecord>& recs);

  const PdbbindConfig& config() const { return cfg_; }

 private:
  PdbbindConfig cfg_;
};

}  // namespace df::data
