// The four SARS-CoV-2 binding sites of the paper — two Mpro active-site
// conformations (protease1 = PDB 6LU7-like, protease2) and two spike RBD
// sites (spike1, spike2) — modelled as pharmacophore-typed pocket shells.
//
// Each target carries a hidden "oracle" weight vector over interaction
// terms; the weights differ per target so that (as the paper observes in
// Table 8 / Fig. 6) which scoring method performs best varies by site:
// protease pockets are large and hydrophobic-driven, spike sites are small
// and polar-contact-driven.
#pragma once

#include <string>
#include <vector>

#include "chem/molecule.h"
#include "core/rng.h"
#include "core/vec3.h"

namespace df::data {

enum class TargetKind { Protease1, Protease2, Spike1, Spike2 };

const char* target_name(TargetKind k);

/// Hidden weights of the true-affinity oracle over interaction terms.
struct OracleWeights {
  float gauss = 0.35f;         // shape-complementarity reward
  float repulsion = -0.8f;     // clash penalty
  float hydrophobic = 0.5f;
  float hbond = 0.5f;
  float electrostatic = -0.05f;
  float topo = 1.0f;           // ligand-topology term (SG-CNN-visible)
  float noise_sigma = 0.45f;   // irreducible experimental noise in pK units
  /// Baseline pK of a random drug-like compound. The PDBbind-style corpus
  /// keeps the default (crystallized complexes are enriched for binders);
  /// the SARS-CoV-2 screening targets use lower values so that actives are
  /// tail events, reproducing the paper's ~10% hit rate among hand-picked
  /// candidates rather than a binder-rich population.
  float intercept = 4.2f;
};

struct Target {
  TargetKind kind = TargetKind::Protease1;
  std::string name;
  std::vector<chem::Atom> pocket;
  core::Vec3 site_center;
  float assay_concentration_uM = 100.0f;  // 100 uM for Mpro, 10 uM for spike
  OracleWeights oracle;
};

struct PocketConfig {
  float radius = 7.0f;         // shell radius, Angstrom
  int num_atoms = 90;
  float coverage = 0.75f;      // fraction of the sphere covered (depth)
  float hydrophobic_frac = 0.5f;
  float charged_frac = 0.08f;
};

/// Build a pocket shell: atoms on the part-sphere with pharmacophore types.
std::vector<chem::Atom> make_pocket(const PocketConfig& cfg, core::Rng& rng,
                                    const core::Vec3& center = {});

/// One of the four paper targets (deterministic geometry given rng).
Target make_target(TargetKind kind, core::Rng& rng);

/// All four, in paper order: protease1, protease2, spike1, spike2.
std::vector<Target> make_sars_cov2_targets(core::Rng& rng);

/// Hidden ground-truth affinity (pK units, roughly 2..11.5) of a ligand
/// pose in a pocket. `noise_rng` adds the irreducible experimental noise;
/// pass nullptr for the noise-free oracle mean.
float oracle_pk(const chem::Molecule& ligand_pose, const std::vector<chem::Atom>& pocket,
                const OracleWeights& w, core::Rng* noise_rng);

/// The ligand-topology component of the oracle (exposed for tests; this is
/// the part only the graph representation can see).
float topo_term(const chem::Molecule& ligand);

}  // namespace df::data
