#include "data/assay.h"

#include <algorithm>
#include <cmath>

namespace df::data {

float occupancy_percent(float pk, float concentration_uM, float hill) {
  // pK is -log10 of K in molar; convert to micromolar: Kd_uM = 10^(6 - pk).
  const float kd_uM = std::pow(10.0f, 6.0f - pk);
  const float ratio = std::pow(concentration_uM / kd_uM, hill);
  return 100.0f * ratio / (1.0f + ratio);
}

float percent_inhibition(float pk, float concentration_uM, core::Rng& rng,
                         const AssayConfig& cfg) {
  if (rng.uniform() < cfg.dead_fraction) {
    return std::clamp(rng.uniform(0.0f, cfg.dead_leak), 0.0f, 100.0f);
  }
  const float base = occupancy_percent(pk, concentration_uM, cfg.hill);
  return std::clamp(base + rng.normal(0.0f, cfg.noise_sigma), 0.0f, 100.0f);
}

}  // namespace df::data
