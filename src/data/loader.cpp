#include "data/loader.h"

#include <algorithm>
#include <numeric>

namespace df::data {

DataLoader::DataLoader(const ComplexDataset& dataset, LoaderConfig cfg)
    : dataset_(dataset), cfg_(cfg), shuffle_rng_(cfg.seed) {
  if (cfg_.batch_size <= 0 || cfg_.num_workers <= 0 || cfg_.prefetch_batches <= 0) {
    throw std::invalid_argument("DataLoader: non-positive config value");
  }
  for (int w = 0; w < cfg_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(static_cast<size_t>(w)); });
  }
}

DataLoader::~DataLoader() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_producer_.notify_all();
  cv_consumer_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + static_cast<size_t>(cfg_.batch_size) - 1) /
         static_cast<size_t>(cfg_.batch_size);
}

void DataLoader::start_epoch() {
  std::lock_guard lk(mu_);
  epoch_order_.resize(dataset_.size());
  std::iota(epoch_order_.begin(), epoch_order_.end(), 0);
  if (cfg_.shuffle) shuffle_rng_.shuffle(epoch_order_);
  next_batch_to_claim_ = 0;
  next_batch_to_emit_ = 0;
  total_batches_ = batches_per_epoch();
  ready_.clear();
  ++epoch_counter_;
  cv_producer_.notify_all();
}

void DataLoader::worker_loop(size_t worker_id) {
  core::Rng rng(cfg_.seed * 7919 + worker_id * 104729 + 1);
  for (;;) {
    size_t batch_idx;
    std::vector<int> members;
    {
      std::unique_lock lk(mu_);
      cv_producer_.wait(lk, [this] {
        return stop_ || (next_batch_to_claim_ < total_batches_ &&
                         ready_.size() < static_cast<size_t>(cfg_.prefetch_batches) +
                                             workers_.size());
      });
      if (stop_) return;
      batch_idx = next_batch_to_claim_++;
      const size_t lo = batch_idx * static_cast<size_t>(cfg_.batch_size);
      const size_t hi = std::min(dataset_.size(), lo + static_cast<size_t>(cfg_.batch_size));
      members.assign(epoch_order_.begin() + static_cast<long>(lo),
                     epoch_order_.begin() + static_cast<long>(hi));
    }
    Batch batch;
    batch.reserve(members.size());
    for (int m : members) batch.push_back(dataset_.get(static_cast<size_t>(m), rng));
    {
      std::lock_guard lk(mu_);
      ready_.emplace_back(batch_idx, std::move(batch));
      cv_consumer_.notify_all();
    }
  }
}

std::optional<Batch> DataLoader::next() {
  std::unique_lock lk(mu_);
  if (next_batch_to_emit_ >= total_batches_) return std::nullopt;
  const size_t want = next_batch_to_emit_;
  cv_consumer_.wait(lk, [this, want] {
    if (stop_) return true;
    return std::any_of(ready_.begin(), ready_.end(),
                       [want](const auto& p) { return p.first == want; });
  });
  if (stop_) return std::nullopt;
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->first == want) {
      Batch b = std::move(it->second);
      ready_.erase(it);
      ++next_batch_to_emit_;
      cv_producer_.notify_all();
      return b;
    }
  }
  return std::nullopt;  // unreachable
}

}  // namespace df::data
