#include "data/loader.h"

#include <algorithm>
#include <numeric>

namespace df::data {

DataLoader::DataLoader(const ComplexDataset& dataset, LoaderConfig cfg)
    : dataset_(dataset), cfg_(cfg) {
  if (cfg_.batch_size <= 0 || cfg_.num_workers <= 0 || cfg_.prefetch_batches <= 0) {
    throw std::invalid_argument("DataLoader: non-positive config value");
  }
  for (int w = 0; w < cfg_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DataLoader::~DataLoader() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_producer_.notify_all();
  cv_consumer_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + static_cast<size_t>(cfg_.batch_size) - 1) /
         static_cast<size_t>(cfg_.batch_size);
}

void DataLoader::start_epoch() { start_epoch(next_epoch_); }

void DataLoader::start_epoch(uint64_t epoch_index, size_t skip_batches) {
  std::lock_guard lk(mu_);
  epoch_index_ = epoch_index;
  next_epoch_ = epoch_index + 1;
  epoch_order_.resize(dataset_.size());
  std::iota(epoch_order_.begin(), epoch_order_.end(), 0);
  if (cfg_.shuffle) {
    // The permutation is a pure function of (seed, epoch): resumable and
    // independent of how many epochs this loader instance produced before.
    core::Rng rng(core::derive_stream(cfg_.seed, core::stream_tag::kLoaderShuffle, epoch_index));
    rng.shuffle(epoch_order_);
  }
  total_batches_ = batches_per_epoch();
  next_batch_to_claim_ = std::min(skip_batches, total_batches_);
  next_batch_to_emit_ = next_batch_to_claim_;
  ready_.clear();
  cv_producer_.notify_all();
}

void DataLoader::worker_loop() {
  for (;;) {
    size_t batch_idx;
    uint64_t epoch;
    std::vector<int> members;
    size_t base;
    {
      std::unique_lock lk(mu_);
      cv_producer_.wait(lk, [this] {
        return stop_ || (next_batch_to_claim_ < total_batches_ &&
                         ready_.size() < static_cast<size_t>(cfg_.prefetch_batches) +
                                             workers_.size());
      });
      if (stop_) return;
      batch_idx = next_batch_to_claim_++;
      epoch = epoch_index_;
      base = batch_idx * static_cast<size_t>(cfg_.batch_size);
      const size_t hi = std::min(dataset_.size(), base + static_cast<size_t>(cfg_.batch_size));
      members.assign(epoch_order_.begin() + static_cast<long>(base),
                     epoch_order_.begin() + static_cast<long>(hi));
    }
    Batch batch;
    batch.reserve(members.size());
    for (size_t k = 0; k < members.size(); ++k) {
      // Per-sample stream keyed on (seed, epoch, position in epoch): the
      // augmentation draw cannot depend on worker identity or scheduling.
      core::Rng srng(core::derive_stream(cfg_.seed, core::stream_tag::kLoaderSample + epoch,
                                         base + k));
      batch.push_back(dataset_.get(static_cast<size_t>(members[k]), srng));
    }
    {
      std::lock_guard lk(mu_);
      ready_.emplace_back(batch_idx, std::move(batch));
      cv_consumer_.notify_all();
    }
  }
}

std::optional<Batch> DataLoader::next() {
  std::unique_lock lk(mu_);
  if (next_batch_to_emit_ >= total_batches_) return std::nullopt;
  const size_t want = next_batch_to_emit_;
  cv_consumer_.wait(lk, [this, want] {
    if (stop_) return true;
    return std::any_of(ready_.begin(), ready_.end(),
                       [want](const auto& p) { return p.first == want; });
  });
  if (stop_) return std::nullopt;
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->first == want) {
      Batch b = std::move(it->second);
      ready_.erase(it);
      ++next_batch_to_emit_;
      cv_producer_.notify_all();
      return b;
    }
  }
  return std::nullopt;  // unreachable
}

}  // namespace df::data
