#include "data/splits.h"

#include <algorithm>

namespace df::data {

TrainValSplit quintile_split(const std::vector<ComplexRecord>& recs, const std::vector<int>& indices,
                             float val_fraction, core::Rng& rng) {
  std::vector<int> sorted = indices;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    return recs[static_cast<size_t>(a)].pk < recs[static_cast<size_t>(b)].pk;
  });
  TrainValSplit out;
  const size_t n = sorted.size();
  for (int q = 0; q < 5; ++q) {
    const size_t lo = n * static_cast<size_t>(q) / 5;
    const size_t hi = n * static_cast<size_t>(q + 1) / 5;
    std::vector<int> quintile(sorted.begin() + static_cast<long>(lo),
                              sorted.begin() + static_cast<long>(hi));
    rng.shuffle(quintile);
    const size_t n_val = static_cast<size_t>(static_cast<float>(quintile.size()) * val_fraction);
    for (size_t i = 0; i < quintile.size(); ++i) {
      (i < n_val ? out.val : out.train).push_back(quintile[i]);
    }
  }
  return out;
}

TrainValSplit pdbbind_train_val(const std::vector<ComplexRecord>& recs, float val_fraction,
                                core::Rng& rng) {
  const TrainValSplit g = quintile_split(recs, SyntheticPdbbind::general_indices(recs),
                                         val_fraction, rng);
  const TrainValSplit r = quintile_split(recs, SyntheticPdbbind::refined_indices(recs),
                                         val_fraction, rng);
  TrainValSplit out = g;
  out.train.insert(out.train.end(), r.train.begin(), r.train.end());
  out.val.insert(out.val.end(), r.val.begin(), r.val.end());
  return out;
}

}  // namespace df::data
