#include "data/compound_library.h"

#include "chem/smiles.h"
#include "io/h5lite.h"

namespace df::data {

const char* library_name(LibrarySource s) {
  switch (s) {
    case LibrarySource::ZINC: return "ZINC";
    case LibrarySource::ChEMBL: return "ChEMBL";
    case LibrarySource::eMolecules: return "eMolecules";
    case LibrarySource::Enamine: return "Enamine";
  }
  return "?";
}

LibraryConfig default_library(LibrarySource source, int count) {
  LibraryConfig cfg;
  cfg.source = source;
  cfg.count = count;
  switch (source) {
    case LibrarySource::ZINC:
      // Approved drugs: mid-size, frequent salts (formulations), no metals
      // survive prep anyway but a few appear raw.
      cfg.gen = {.min_heavy_atoms = 14, .max_heavy_atoms = 32, .ring_probability = 0.4f,
                 .hetero_probability = 0.35f, .halogen_probability = 0.10f,
                 .charge_probability = 0.08f, .salt_probability = 0.25f,
                 .metal_probability = 0.03f};
      break;
    case LibrarySource::ChEMBL:
      cfg.gen = {.min_heavy_atoms = 12, .max_heavy_atoms = 30, .ring_probability = 0.38f,
                 .hetero_probability = 0.32f, .halogen_probability = 0.08f,
                 .charge_probability = 0.06f, .salt_probability = 0.12f,
                 .metal_probability = 0.01f};
      break;
    case LibrarySource::eMolecules:
      cfg.gen = {.min_heavy_atoms = 10, .max_heavy_atoms = 28, .ring_probability = 0.35f,
                 .hetero_probability = 0.30f, .halogen_probability = 0.08f,
                 .charge_probability = 0.05f, .salt_probability = 0.05f,
                 .metal_probability = 0.005f};
      break;
    case LibrarySource::Enamine:
      // Synthetically-feasible drug-like: small, clean.
      cfg.gen = {.min_heavy_atoms = 10, .max_heavy_atoms = 24, .ring_probability = 0.32f,
                 .hetero_probability = 0.28f, .halogen_probability = 0.06f,
                 .charge_probability = 0.04f, .salt_probability = 0.02f,
                 .metal_probability = 0.0f};
      break;
  }
  return cfg;
}

std::vector<LibraryCompound> generate_library(const LibraryConfig& cfg, core::Rng& rng) {
  std::vector<LibraryCompound> out;
  out.reserve(static_cast<size_t>(cfg.count));
  const bool smiles_form =
      cfg.source == LibrarySource::eMolecules || cfg.source == LibrarySource::Enamine;
  for (int i = 0; i < cfg.count; ++i) {
    LibraryCompound c;
    c.source = cfg.source;
    c.id = std::string(library_name(cfg.source)) + "-" + std::to_string(i);
    c.molecule = chem::generate_molecule(cfg.gen, rng);
    if (smiles_form) {
      c.is_smiles_entry = true;
      c.smiles = chem::write_smiles(c.molecule);
    }
    out.push_back(std::move(c));
  }
  return out;
}

chem::Molecule materialize(const LibraryCompound& c) {
  return c.is_smiles_entry ? chem::parse_smiles(c.smiles) : c.molecule;
}

uint64_t library_fingerprint(const std::vector<LibraryCompound>& compounds) {
  // Two independent CRC32 streams folded into one u64; cheap, stable across
  // runs, and sensitive to ordering (position is mixed into the hash).
  uint32_t lo = 0;
  uint32_t hi = io::crc32("df-library", 10);
  const auto mix = [&](const void* data, size_t n) {
    lo = io::crc32(data, n, lo);
    hi = io::crc32(data, n, hi ^ 0x9e3779b9u);
  };
  const uint64_t count = compounds.size();
  mix(&count, sizeof(count));
  for (size_t i = 0; i < compounds.size(); ++i) {
    const LibraryCompound& c = compounds[i];
    const uint64_t pos = i;
    mix(&pos, sizeof(pos));
    mix(c.id.data(), c.id.size());
    const int32_t source = static_cast<int32_t>(c.source);
    mix(&source, sizeof(source));
    const uint8_t form = c.is_smiles_entry ? 1 : 0;
    mix(&form, sizeof(form));
    mix(c.smiles.data(), c.smiles.size());
    const uint64_t sizes[2] = {c.molecule.num_atoms(), c.molecule.num_bonds()};
    mix(sizes, sizeof(sizes));
  }
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

}  // namespace df::data
