#include "data/pdbbind.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "chem/ligand_prep.h"
#include "dock/docking.h"

namespace df::data {

const char* label_kind_name(LabelKind k) {
  switch (k) {
    case LabelKind::Ki: return "Ki";
    case LabelKind::Kd: return "Kd";
    case LabelKind::IC50: return "IC50";
  }
  return "?";
}

namespace {

std::string synth_id(int i) {
  // PDB-style 4-char code: digit + three letters.
  std::string s = "0xxx";
  s[0] = static_cast<char>('1' + (i % 9));
  int v = i;
  for (int p = 1; p < 4; ++p) {
    s[static_cast<size_t>(p)] = static_cast<char>('a' + (v % 26));
    v /= 26;
  }
  return s;
}

/// Descriptor vector for core-set diversity selection.
std::array<float, 5> descriptor(const ComplexRecord& r) {
  return {r.ligand.molecular_weight() / 100.0f, r.ligand.logp_proxy(),
          static_cast<float>(r.ligand.num_rings()), static_cast<float>(r.ligand.num_hbond_donors()),
          static_cast<float>(r.pocket.size()) / 20.0f};
}

float desc_dist(const std::array<float, 5>& a, const std::array<float, 5>& b) {
  float d = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}

}  // namespace

std::vector<ComplexRecord> SyntheticPdbbind::generate(core::Rng& rng) const {
  std::vector<ComplexRecord> out;
  out.reserve(static_cast<size_t>(cfg_.num_complexes));

  dock::DockingConfig settle_cfg;
  settle_cfg.num_runs = cfg_.settle_runs;
  settle_cfg.steps_per_run = cfg_.settle_steps;
  settle_cfg.box_half = 2.0f;
  settle_cfg.max_poses = 1;
  dock::DockingEngine settle(settle_cfg);

  int attempts = 0;
  while (static_cast<int>(out.size()) < cfg_.num_complexes && attempts < cfg_.num_complexes * 4) {
    ++attempts;
    ComplexRecord rec;
    rec.id = synth_id(static_cast<int>(out.size()));

    // Generic pocket: vary size/chemistry across the corpus.
    PocketConfig pc;
    pc.radius = rng.uniform(5.0f, 8.0f);
    pc.num_atoms = static_cast<int>(rng.randint(48, 100));
    pc.coverage = rng.uniform(0.45f, 0.8f);
    pc.hydrophobic_frac = rng.uniform(0.3f, 0.6f);
    pc.charged_frac = rng.uniform(0.04f, 0.14f);
    rec.pocket = make_pocket(pc, rng);
    rec.site_center = core::Vec3{};

    // Ligand: occasionally force a heavy one to exercise the refined gate.
    chem::MoleculeGenConfig lg = cfg_.ligand_gen;
    if (rng.uniform() < cfg_.heavy_fraction) {
      lg.min_heavy_atoms = 70;
      lg.max_heavy_atoms = 95;
    }
    chem::Molecule raw = chem::generate_molecule(lg, rng);
    auto prep = chem::prepare_ligand(raw, rng);
    if (!prep) continue;
    rec.ligand = std::move(prep->mol);

    // Crystal pose: settle the conformer into the pocket with a short,
    // cold MC so contact statistics look like a bound structure.
    dock::DockingResult settled = settle.dock(rec.ligand, rec.pocket, rec.site_center, rng);
    if (!settled.conformers.empty()) rec.ligand = std::move(settled.conformers.front());

    // Ground truth + measurement metadata.
    OracleWeights generic;  // corpus-wide oracle; targets specialize later
    rec.pk = oracle_pk(rec.ligand, rec.pocket, generic, &rng);
    const float u = rng.uniform();
    rec.label_kind = u < 0.35f ? LabelKind::Ki : (u < 0.65f ? LabelKind::Kd : LabelKind::IC50);
    rec.resolution = rng.uniform(1.2f, 3.3f);

    rec.in_refined = rec.ligand.molecular_weight() <= 1000.0f &&
                     rec.label_kind != LabelKind::IC50 && rec.resolution < 2.5f;
    out.push_back(std::move(rec));
  }

  // Core set: greedy max-min diversity selection from the refined set.
  std::vector<int> refined;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].in_refined) refined.push_back(static_cast<int>(i));
  }
  if (!refined.empty()) {
    std::vector<std::array<float, 5>> descs;
    descs.reserve(refined.size());
    for (int idx : refined) descs.push_back(descriptor(out[static_cast<size_t>(idx)]));
    std::vector<int> core{0};  // seed with the first refined complex
    std::vector<float> min_dist(refined.size(), 1e30f);
    while (static_cast<int>(core.size()) < std::min<int>(cfg_.core_size, static_cast<int>(refined.size()))) {
      const int last = core.back();
      int best = -1;
      float best_d = -1.0f;
      for (size_t i = 0; i < refined.size(); ++i) {
        min_dist[i] = std::min(min_dist[i], desc_dist(descs[i], descs[static_cast<size_t>(last)]));
        if (std::find(core.begin(), core.end(), static_cast<int>(i)) != core.end()) continue;
        if (min_dist[i] > best_d) {
          best_d = min_dist[i];
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      core.push_back(best);
    }
    for (int ci : core) out[static_cast<size_t>(refined[static_cast<size_t>(ci)])].in_core = true;
  }
  return out;
}

std::vector<int> SyntheticPdbbind::general_indices(const std::vector<ComplexRecord>& recs) {
  std::vector<int> v;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (!recs[i].in_refined && !recs[i].in_core) v.push_back(static_cast<int>(i));
  }
  return v;
}

std::vector<int> SyntheticPdbbind::refined_indices(const std::vector<ComplexRecord>& recs) {
  std::vector<int> v;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].in_refined && !recs[i].in_core) v.push_back(static_cast<int>(i));
  }
  return v;
}

std::vector<int> SyntheticPdbbind::core_indices(const std::vector<ComplexRecord>& recs) {
  std::vector<int> v;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].in_core) v.push_back(static_cast<int>(i));
  }
  return v;
}

}  // namespace df::data
