// Compound-library generators standing in for the four public sources the
// paper screened (§4): ZINC world-approved drugs, ChEMBL, eMolecules and
// Enamine's synthetically-feasible drug-like set. Each source has its own
// size/chemistry distribution and input form (SMILES vs "SDF", i.e. a
// pre-built Molecule here), so the ligand-prep path is exercised both ways.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/molecule.h"
#include "core/rng.h"

namespace df::data {

enum class LibrarySource { ZINC, ChEMBL, eMolecules, Enamine };

const char* library_name(LibrarySource s);

struct LibraryCompound {
  std::string id;
  LibrarySource source = LibrarySource::Enamine;
  /// SMILES-form entries (eMolecules / Enamine in the paper) carry the
  /// string; SDF-form entries (ZINC / ChEMBL) carry the molecule directly.
  std::string smiles;
  chem::Molecule molecule;
  bool is_smiles_entry = false;
};

struct LibraryConfig {
  LibrarySource source = LibrarySource::Enamine;
  int count = 1000;
  chem::MoleculeGenConfig gen;
};

/// Default per-source generation profile (drug-likeness, salts, metals).
LibraryConfig default_library(LibrarySource source, int count);

/// Generate `cfg.count` compounds; deterministic given rng.
std::vector<LibraryCompound> generate_library(const LibraryConfig& cfg, core::Rng& rng);

/// Materialize the molecule from either entry form (parses SMILES entries).
chem::Molecule materialize(const LibraryCompound& c);

/// Stable fingerprint of a library's identity (ids, sources, entry forms,
/// molecule sizes). A campaign checkpoint stores it so a resume against a
/// different or reordered compound set is rejected instead of silently
/// mixing predictions from two libraries.
uint64_t library_fingerprint(const std::vector<LibraryCompound>& compounds);

}  // namespace df::data
