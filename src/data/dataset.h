// Featurized dataset view over ComplexRecords: each sample carries both the
// voxel grid (3D-CNN branch) and the spatial graph (SG-CNN branch) plus the
// pK label — the dual representation at the heart of fusion modelling.
#pragma once

#include <vector>

#include "chem/graph_featurizer.h"
#include "chem/voxelizer.h"
#include "data/pdbbind.h"

namespace df::data {

struct Sample {
  core::Tensor voxel;            // (1, C, G, G, G)
  graph::SpatialGraph graph;
  float label = 0.0f;            // pK
  int record_index = -1;
};

struct DatasetConfig {
  chem::VoxelConfig voxel;
  chem::GraphFeaturizerConfig graph;
  /// Apply the paper's random 90-degree rotation augmentation to the voxel
  /// branch (training only; the graph is rotation-invariant already).
  bool rotation_augment = false;
  float rotation_prob = 0.10f;
};

class ComplexDataset {
 public:
  ComplexDataset(const std::vector<ComplexRecord>* records, std::vector<int> indices,
                 DatasetConfig cfg = {});

  size_t size() const { return indices_.size(); }
  const std::vector<int>& indices() const { return indices_; }

  /// Featurize sample `i` (0-based within this dataset view). `rng` drives
  /// augmentation; unused when augmentation is off.
  Sample get(size_t i, core::Rng& rng) const;

  const DatasetConfig& config() const { return cfg_; }

 private:
  const std::vector<ComplexRecord>* records_;
  std::vector<int> indices_;
  DatasetConfig cfg_;
  chem::Voxelizer voxelizer_;
  chem::GraphFeaturizer featurizer_;
};

}  // namespace df::data
