// Quintile sub-sampling (paper §3.1, after Ellingson et al. 2020): the
// validation set is drawn as 10% of *each affinity quintile* so train and
// validation cover the same pK range — plain random sampling risks them
// landing on different affinity sub-spaces.
#pragma once

#include <vector>

#include "core/rng.h"
#include "data/pdbbind.h"

namespace df::data {

struct TrainValSplit {
  std::vector<int> train;
  std::vector<int> val;
};

/// Split `indices` (into `recs`) by pK quintile; `val_fraction` of each
/// quintile goes to validation.
TrainValSplit quintile_split(const std::vector<ComplexRecord>& recs, const std::vector<int>& indices,
                             float val_fraction, core::Rng& rng);

/// Paper protocol: independent quintile splits of the general and refined
/// groups, unioned; core set is held out entirely.
TrainValSplit pdbbind_train_val(const std::vector<ComplexRecord>& recs, float val_fraction,
                                core::Rng& rng);

}  // namespace df::data
