// Experimental-assay simulator standing in for the paper's FRET / SDS-PAGE
// (Mpro, run at 100 uM) and pseudo-virus / BLI (spike, run at 10 uM)
// screens. Percent inhibition follows a single-site occupancy curve of the
// oracle affinity with heavy experimental noise plus an "assay-dead"
// fraction, which lands the prediction-vs-experiment correlations in the
// paper's low-signal regime (Table 8).
#pragma once

#include "core/rng.h"
#include "data/target.h"

namespace df::data {

struct AssayConfig {
  float hill = 1.0f;             // Hill coefficient of the occupancy curve
  float noise_sigma = 11.0f;     // percent-inhibition noise
  float dead_fraction = 0.45f;   // insoluble/aggregating compounds read ~0
  float dead_leak = 1.0f;        // residual signal of dead compounds (<=1%)
};

/// Percent inhibition in [0, 100] for a compound of true affinity `pk`
/// assayed at `concentration_uM`.
float percent_inhibition(float pk, float concentration_uM, core::Rng& rng,
                         const AssayConfig& cfg = {});

/// Noise-free occupancy (for tests): 100 * C / (C + Kd_uM), Kd_uM = 10^(6-pk).
float occupancy_percent(float pk, float concentration_uM, float hill = 1.0f);

}  // namespace df::data
