// Prefetching data loader — the C++ analogue of the paper's "24 data
// workers per rank pre-loading future batches" (§3.2) and "12 parallel data
// loaders" per GPU during screening (§4.2). Worker threads featurize
// batches ahead of the consumer; a bounded queue applies backpressure so a
// slow trainer doesn't blow the memory budget.
//
// Determinism: both stochastic ingredients are keyed on stable identifiers
// via core::derive_stream rather than drawn from shared engines —
//  * the epoch's shuffle permutation from (seed, epoch index), so epoch E's
//    order can be regenerated without replaying epochs 0..E-1 (what makes
//    mid-training resume possible);
//  * each sample's featurization/augmentation stream from (seed, epoch,
//    position in epoch), so sample bytes never depend on which worker
//    thread claimed which batch, or on num_workers at all.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace df::data {

struct LoaderConfig {
  int batch_size = 8;
  int num_workers = 2;
  int prefetch_batches = 4;  // queue capacity
  bool shuffle = true;
  uint64_t seed = 17;
};

using Batch = std::vector<Sample>;

class DataLoader {
 public:
  DataLoader(const ComplexDataset& dataset, LoaderConfig cfg = {});
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Begin producing the next epoch in sequence (epoch 0 on the first
  /// call). Any previous epoch must have been drained or cancelled.
  void start_epoch();
  /// Begin producing epoch `epoch_index`, optionally skipping the first
  /// `skip_batches` batches — the resume path: a trainer restarting at
  /// (epoch e, batch b) seeks straight there and receives bitwise the same
  /// batches the uninterrupted run saw.
  void start_epoch(uint64_t epoch_index, size_t skip_batches = 0);
  /// Next batch, or nullopt when the epoch is exhausted.
  std::optional<Batch> next();
  size_t batches_per_epoch() const;

 private:
  void worker_loop();

  const ComplexDataset& dataset_;
  LoaderConfig cfg_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_producer_, cv_consumer_;
  std::vector<int> epoch_order_;          // sample indices for this epoch
  size_t next_batch_to_claim_ = 0;        // producer cursor (batch index)
  size_t next_batch_to_emit_ = 0;         // consumer cursor (in-order emit)
  size_t total_batches_ = 0;
  std::deque<std::pair<size_t, Batch>> ready_;  // (batch index, data)
  bool stop_ = false;
  uint64_t epoch_index_ = 0;   // epoch currently being produced
  uint64_t next_epoch_ = 0;    // what a no-arg start_epoch() will produce
};

}  // namespace df::data
