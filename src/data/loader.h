// Prefetching data loader — the C++ analogue of the paper's "24 data
// workers per rank pre-loading future batches" (§3.2) and "12 parallel data
// loaders" per GPU during screening (§4.2). Worker threads featurize
// batches ahead of the consumer; a bounded queue applies backpressure so a
// slow trainer doesn't blow the memory budget.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace df::data {

struct LoaderConfig {
  int batch_size = 8;
  int num_workers = 2;
  int prefetch_batches = 4;  // queue capacity
  bool shuffle = true;
  uint64_t seed = 17;
};

using Batch = std::vector<Sample>;

class DataLoader {
 public:
  DataLoader(const ComplexDataset& dataset, LoaderConfig cfg = {});
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Begin producing one epoch (reshuffles when configured). Any previous
  /// epoch must have been drained or cancelled.
  void start_epoch();
  /// Next batch, or nullopt when the epoch is exhausted.
  std::optional<Batch> next();
  size_t batches_per_epoch() const;

 private:
  void worker_loop(size_t worker_id);

  const ComplexDataset& dataset_;
  LoaderConfig cfg_;
  core::Rng shuffle_rng_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_producer_, cv_consumer_;
  std::vector<int> epoch_order_;          // sample indices for this epoch
  size_t next_batch_to_claim_ = 0;        // producer cursor (batch index)
  size_t next_batch_to_emit_ = 0;         // consumer cursor (in-order emit)
  size_t total_batches_ = 0;
  std::deque<std::pair<size_t, Batch>> ready_;  // (batch index, data)
  bool stop_ = false;
  uint64_t epoch_counter_ = 0;
};

}  // namespace df::data
