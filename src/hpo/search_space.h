// Hyper-parameter search spaces — the machine-readable form of the paper's
// Table 1. A configuration is a flat name->double map (categoricals store
// the chosen option's value, booleans 0/1), which keeps the GP-bandit
// machinery simple and the configs serializable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/rng.h"

namespace df::hpo {

using HpoConfig = std::map<std::string, double>;

enum class ParamType { Continuous, LogContinuous, Categorical, Boolean };

struct ParamSpec {
  std::string name;
  ParamType type = ParamType::Continuous;
  double lo = 0.0, hi = 1.0;          // Continuous / LogContinuous bounds
  std::vector<double> choices;        // Categorical options

  double sample(core::Rng& rng) const;
  double clamp(double v) const;
  /// Map to [0,1] for GP kernels (log-space for LogContinuous; categorical
  /// index fraction).
  double normalize(double v) const;
  double denormalize(double u) const;
};

class SearchSpace {
 public:
  SearchSpace& add_continuous(std::string name, double lo, double hi);
  SearchSpace& add_log_continuous(std::string name, double lo, double hi);
  SearchSpace& add_categorical(std::string name, std::vector<double> choices);
  SearchSpace& add_boolean(std::string name);

  HpoConfig sample(core::Rng& rng) const;
  const std::vector<ParamSpec>& specs() const { return specs_; }
  const ParamSpec& spec(const std::string& name) const;
  size_t size() const { return specs_.size(); }

  /// Vectorize the continuous/log dims of a config (for the GP); categorical
  /// and boolean dims are included as normalized indices.
  std::vector<double> normalize(const HpoConfig& c) const;

 private:
  std::vector<ParamSpec> specs_;
};

/// Paper Table 1 spaces (scaled-down epoch ranges noted in DESIGN.md §5).
SearchSpace sgcnn_search_space();
SearchSpace cnn3d_search_space();
SearchSpace fusion_search_space();

}  // namespace df::hpo
