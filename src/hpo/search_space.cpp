#include "hpo/search_space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df::hpo {

double ParamSpec::sample(core::Rng& rng) const {
  switch (type) {
    case ParamType::Continuous: return rng.uniform_d(lo, hi);
    case ParamType::LogContinuous:
      return std::exp(rng.uniform_d(std::log(lo), std::log(hi)));
    case ParamType::Categorical: return choices[rng.pick(choices.size())];
    case ParamType::Boolean: return rng.bernoulli(0.5) ? 1.0 : 0.0;
  }
  return lo;
}

double ParamSpec::clamp(double v) const {
  switch (type) {
    case ParamType::Continuous:
    case ParamType::LogContinuous: return std::clamp(v, lo, hi);
    case ParamType::Categorical: {
      // Snap to the nearest choice.
      double best = choices.front();
      for (double c : choices) {
        if (std::abs(c - v) < std::abs(best - v)) best = c;
      }
      return best;
    }
    case ParamType::Boolean: return v >= 0.5 ? 1.0 : 0.0;
  }
  return v;
}

double ParamSpec::normalize(double v) const {
  switch (type) {
    case ParamType::Continuous: return (v - lo) / (hi - lo);
    case ParamType::LogContinuous:
      return (std::log(v) - std::log(lo)) / (std::log(hi) - std::log(lo));
    case ParamType::Categorical: {
      for (size_t i = 0; i < choices.size(); ++i) {
        if (choices[i] == v) return static_cast<double>(i) / static_cast<double>(choices.size() - 1 + 1e-9);
      }
      return 0.0;
    }
    case ParamType::Boolean: return v;
  }
  return 0.0;
}

double ParamSpec::denormalize(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (type) {
    case ParamType::Continuous: return lo + u * (hi - lo);
    case ParamType::LogContinuous:
      return std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo)));
    case ParamType::Categorical: {
      const size_t idx = std::min(choices.size() - 1,
                                  static_cast<size_t>(u * static_cast<double>(choices.size())));
      return choices[idx];
    }
    case ParamType::Boolean: return u >= 0.5 ? 1.0 : 0.0;
  }
  return u;
}

SearchSpace& SearchSpace::add_continuous(std::string name, double lo, double hi) {
  specs_.push_back({std::move(name), ParamType::Continuous, lo, hi, {}});
  return *this;
}

SearchSpace& SearchSpace::add_log_continuous(std::string name, double lo, double hi) {
  specs_.push_back({std::move(name), ParamType::LogContinuous, lo, hi, {}});
  return *this;
}

SearchSpace& SearchSpace::add_categorical(std::string name, std::vector<double> choices) {
  if (choices.empty()) throw std::invalid_argument("categorical with no choices");
  specs_.push_back({std::move(name), ParamType::Categorical, 0, 0, std::move(choices)});
  return *this;
}

SearchSpace& SearchSpace::add_boolean(std::string name) {
  specs_.push_back({std::move(name), ParamType::Boolean, 0, 1, {}});
  return *this;
}

HpoConfig SearchSpace::sample(core::Rng& rng) const {
  HpoConfig c;
  for (const ParamSpec& s : specs_) c[s.name] = s.sample(rng);
  return c;
}

const ParamSpec& SearchSpace::spec(const std::string& name) const {
  for (const ParamSpec& s : specs_) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("no such hyper-parameter: " + name);
}

std::vector<double> SearchSpace::normalize(const HpoConfig& c) const {
  std::vector<double> v;
  v.reserve(specs_.size());
  for (const ParamSpec& s : specs_) v.push_back(s.normalize(c.at(s.name)));
  return v;
}

SearchSpace sgcnn_search_space() {
  // Table 1, SG-CNN column (epochs scaled: paper 0-350).
  SearchSpace s;
  s.add_categorical("batch_size", {4, 8, 12, 16});
  s.add_log_continuous("lr", 2e-4, 2e-2);
  s.add_categorical("epochs", {4, 8, 12, 16, 24});
  s.add_categorical("noncov_k", {2, 3, 4, 5, 6, 7, 8});
  s.add_categorical("cov_k", {2, 3, 4, 5, 6, 7, 8});
  s.add_continuous("noncov_threshold", 1.2, 5.9);
  s.add_continuous("cov_threshold", 1.2, 5.9);
  s.add_categorical("noncov_gather_width", {8, 24, 40, 64, 88, 104, 128});
  s.add_categorical("cov_gather_width", {8, 24, 40, 64, 88, 104, 128});
  return s;
}

SearchSpace cnn3d_search_space() {
  // Table 1, 3D-CNN column (epochs scaled: paper 0-150).
  SearchSpace s;
  s.add_categorical("batch_size", {8, 12, 24});
  s.add_log_continuous("lr", 1e-6, 1e-4);
  s.add_categorical("epochs", {2, 4, 6, 8, 10});
  s.add_boolean("batch_norm");
  s.add_categorical("dense_nodes", {40, 64, 88, 104, 128});
  s.add_boolean("residual1");
  s.add_boolean("residual2");
  s.add_categorical("conv_filters1", {32, 64, 96});
  s.add_categorical("conv_filters2", {64, 96, 128});
  return s;
}

SearchSpace fusion_search_space() {
  // Table 1, Fusion column (epochs scaled: paper 0-500).
  SearchSpace s;
  s.add_categorical("optimizer", {0 /*Adam*/, 1 /*AdamW*/, 2 /*RMSprop*/, 3 /*Adadelta*/});
  s.add_categorical("activation", {0 /*ReLU*/, 1 /*LReLU*/, 2 /*SELU*/});
  s.add_categorical("batch_size", {1, 2, 4, 5, 8, 12, 16, 24, 28, 34, 38, 48, 56});
  s.add_log_continuous("lr", 1e-6, 1e-3);
  s.add_categorical("epochs", {2, 4, 6, 8, 12});
  s.add_boolean("model_specific_layers");
  s.add_boolean("pre_trained");
  s.add_boolean("batch_norm");
  s.add_continuous("dropout1", 0.0, 0.50);
  s.add_continuous("dropout2", 0.0, 0.25);
  s.add_continuous("dropout3", 0.0, 0.125);
  s.add_categorical("num_fusion_layers", {3, 4, 5});
  s.add_categorical("fusion_nodes", {8, 24, 40, 64, 88, 104, 128});
  s.add_boolean("residual_fusion");
  return s;
}

}  // namespace df::hpo
