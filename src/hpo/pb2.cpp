#include "hpo/pb2.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace df::hpo {

std::vector<float> train_population(size_t population,
                                    const std::function<float(size_t)>& train_member,
                                    core::ThreadPool* pool) {
  std::vector<float> scores(population, 0.0f);
  core::parallel_for_on(pool, population, [&](size_t i) { scores[i] = train_member(i); });
  return scores;
}

Pb2::Pb2(SearchSpace space, Pb2Config cfg)
    : space_(std::move(space)), cfg_(cfg), rng_(cfg.seed) {}

std::vector<HpoConfig> Pb2::initial_population() {
  population_.clear();
  for (int i = 0; i < cfg_.population; ++i) population_.push_back(space_.sample(rng_));
  last_scores_.assign(static_cast<size_t>(cfg_.population), 0.0f);
  interval_ = 0;
  return population_;
}

HpoConfig Pb2::explore(const HpoConfig& base) {
  // Fit the GP on (config, interval) -> negative score improvement so that
  // maximizing UCB favors configs whose scores dropped the most.
  if (obs_x_.size() >= 3) {
    gp_.fit(obs_x_, obs_t_, obs_y_);
  }
  HpoConfig best = base;
  double best_acq = -1e300;
  for (int c = 0; c < cfg_.explore_candidates; ++c) {
    HpoConfig cand = base;
    for (const ParamSpec& spec : space_.specs()) {
      switch (spec.type) {
        case ParamType::Continuous:
        case ParamType::LogContinuous: {
          // Local Gaussian perturbation in normalized space.
          const double u = spec.normalize(cand[spec.name]) + rng_.normal(0.0f, 0.25f);
          cand[spec.name] = spec.denormalize(u);
          break;
        }
        case ParamType::Categorical:
        case ParamType::Boolean:
          if (rng_.uniform() < 0.25f) cand[spec.name] = spec.sample(rng_);
          break;
      }
    }
    const double acq = gp_.fitted()
                           ? gp_.ucb(space_.normalize(cand), interval_ + 1, cfg_.ucb_kappa)
                           : rng_.uniform();
    if (acq > best_acq) {
      best_acq = acq;
      best = cand;
    }
  }
  return best;
}

std::vector<TrialDirective> Pb2::report(const std::vector<float>& scores) {
  if (scores.size() != population_.size()) {
    throw std::invalid_argument("Pb2::report: score count != population");
  }
  // Record GP observations: improvement = previous score - current score
  // (positive = better, since lower scores are better).
  for (size_t i = 0; i < scores.size(); ++i) {
    const double improvement =
        interval_ == 0 ? 0.0 : static_cast<double>(last_scores_[i] - scores[i]);
    obs_x_.push_back(space_.normalize(population_[i]));
    obs_t_.push_back(interval_);
    obs_y_.push_back(improvement);
    if (scores[i] < best_score_) {
      best_score_ = scores[i];
      best_config_ = population_[i];
    }
  }
  last_scores_ = scores;
  ++interval_;

  // Rank trials: lower score = better.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  const size_t n_top = std::max<size_t>(1, static_cast<size_t>(static_cast<double>(scores.size()) *
                                                               cfg_.quantile));

  std::vector<TrialDirective> directives(scores.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t trial = order[rank];
    if (rank < n_top) {
      directives[trial].config = population_[trial];
    } else {
      // Exploit: clone a uniformly chosen top performer, then explore.
      const size_t donor = order[rng_.pick(n_top)];
      directives[trial].clone_weights_from = static_cast<int>(donor);
      HpoConfig cloned = population_[donor];
      directives[trial].config = explore(cloned);
      population_[trial] = directives[trial].config;
    }
  }
  return directives;
}

}  // namespace df::hpo
