// Gaussian-process regression with the time-varying kernel of PB2
// (Parker-Holder et al. 2020): a squared-exponential kernel over normalized
// hyper-parameters multiplied by a forgetting kernel over training time, so
// observations from early intervals decay as the reward landscape drifts.
#pragma once

#include <cstddef>
#include <vector>

namespace df::hpo {

struct GpConfig {
  double lengthscale = 0.3;   // SE lengthscale in normalized [0,1] space
  double time_epsilon = 0.1;  // forgetting rate: k_t = (1-eps)^(|t-t'|/2)
  double noise = 1e-3;
  double signal_var = 1.0;
};

class TimeVaryingGP {
 public:
  explicit TimeVaryingGP(GpConfig cfg = {}) : cfg_(cfg) {}

  /// Fit on rows (x_i, t_i) -> y_i. X rows must share dimensionality.
  void fit(std::vector<std::vector<double>> x, std::vector<double> t, std::vector<double> y);

  struct Prediction {
    double mean;
    double variance;
  };
  Prediction predict(const std::vector<double>& x, double t) const;

  /// GP-UCB acquisition value: mean + kappa * stddev.
  double ucb(const std::vector<double>& x, double t, double kappa) const;

  bool fitted() const { return !x_.empty(); }
  size_t num_observations() const { return x_.size(); }

 private:
  double kernel(const std::vector<double>& a, double ta, const std::vector<double>& b,
                double tb) const;

  GpConfig cfg_;
  std::vector<std::vector<double>> x_;
  std::vector<double> t_;
  std::vector<double> alpha_;  // K^-1 y
  std::vector<double> chol_;   // lower Cholesky of K + noise I
  double y_mean_ = 0.0;
};

}  // namespace df::hpo
