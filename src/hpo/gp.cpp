#include "hpo/gp.h"

#include <cmath>
#include <stdexcept>

#include "core/linalg.h"

namespace df::hpo {

double TimeVaryingGP::kernel(const std::vector<double>& a, double ta, const std::vector<double>& b,
                             double tb) const {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  const double se = cfg_.signal_var * std::exp(-d2 / (2.0 * cfg_.lengthscale * cfg_.lengthscale));
  const double kt = std::pow(1.0 - cfg_.time_epsilon, std::abs(ta - tb) / 2.0);
  return se * kt;
}

void TimeVaryingGP::fit(std::vector<std::vector<double>> x, std::vector<double> t,
                        std::vector<double> y) {
  const size_t n = x.size();
  if (t.size() != n || y.size() != n || n == 0) {
    throw std::invalid_argument("TimeVaryingGP::fit: inconsistent inputs");
  }
  x_ = std::move(x);
  t_ = std::move(t);

  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);

  std::vector<double> k(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = kernel(x_[i], t_[i], x_[j], t_[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += cfg_.noise;
  }
  core::cholesky(k, n);
  chol_ = std::move(k);

  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
  alpha_ = core::backward_solve(chol_, n, core::forward_solve(chol_, n, centered));
}

TimeVaryingGP::Prediction TimeVaryingGP::predict(const std::vector<double>& x, double t) const {
  if (!fitted()) return {y_mean_, cfg_.signal_var};
  const size_t n = x_.size();
  std::vector<double> kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = kernel(x, t, x_[i], t_[i]);

  double mean = y_mean_;
  for (size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];

  const std::vector<double> v = core::forward_solve(chol_, n, kstar);
  double reduce = 0.0;
  for (double vi : v) reduce += vi * vi;
  const double var = std::max(1e-12, cfg_.signal_var + cfg_.noise - reduce);
  return {mean, var};
}

double TimeVaryingGP::ucb(const std::vector<double>& x, double t, double kappa) const {
  const Prediction p = predict(x, t);
  return p.mean + kappa * std::sqrt(p.variance);
}

}  // namespace df::hpo
