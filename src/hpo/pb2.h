// Population-Based Bandits (paper §2.2 / §3.2): a population of trials
// trains in parallel; every `t_ready` epochs the bottom quantile clones a
// top performer's weights-and-config (exploit) and proposes new continuous
// hyper-parameters by maximizing the GP-UCB of a time-varying GP fitted to
// observed score improvements (explore). The controller is decoupled from
// model training: the caller steps its trials and reports scores, and reads
// back config changes plus clone-from directives (so it can copy weights,
// mirroring Ray Tune's checkpoint exploitation).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "hpo/gp.h"
#include "hpo/search_space.h"

namespace df::hpo {

struct Pb2Config {
  int population = 8;
  double quantile = 0.5;    // paper: lambda% = 50
  double ucb_kappa = 1.5;
  int explore_candidates = 64;  // random candidates scored by UCB
  uint64_t seed = 42;
};

struct TrialDirective {
  HpoConfig config;
  /// If set, the trial should restore weights from this trial before
  /// continuing (exploitation clone).
  std::optional<int> clone_weights_from;
};

/// Run one PB2 interval's member training concurrently: `train_member(i)`
/// trains trial i for the interval and returns its score (validation MSE).
/// Members fan out over `pool` when one is given (one job per trial, the
/// paper's "population trains in parallel"); nullptr runs them serially.
/// Scores come back in trial order, and each member must be internally
/// deterministic (own model/loader/optimizer, stable-keyed RNG — what
/// train_model guarantees), so the score vector — and therefore the whole
/// PB2 search trajectory — is bitwise independent of the pool size.
/// Members run as pool jobs, so numeric kernels inside them stay serial
/// (core::in_pool_worker); train with threads=1 and let the population be
/// the parallelism.
std::vector<float> train_population(size_t population,
                                    const std::function<float(size_t)>& train_member,
                                    core::ThreadPool* pool = nullptr);

class Pb2 {
 public:
  Pb2(SearchSpace space, Pb2Config cfg);

  /// Initial random population.
  std::vector<HpoConfig> initial_population();

  /// Report scores for the just-finished interval (LOWER is better —
  /// validation MSE, the paper's objective Q). Returns one directive per
  /// trial: top trials keep their config; bottom-quantile trials clone a
  /// top performer and explore new hyper-parameters.
  std::vector<TrialDirective> report(const std::vector<float>& scores);

  int interval() const { return interval_; }
  const HpoConfig& best_config() const { return best_config_; }
  float best_score() const { return best_score_; }
  const SearchSpace& space() const { return space_; }

 private:
  HpoConfig explore(const HpoConfig& base);

  SearchSpace space_;
  Pb2Config cfg_;
  core::Rng rng_;
  int interval_ = 0;
  std::vector<HpoConfig> population_;
  std::vector<float> last_scores_;
  // GP observations: (normalized config, interval) -> score improvement.
  std::vector<std::vector<double>> obs_x_;
  std::vector<double> obs_t_, obs_y_;
  TimeVaryingGP gp_;
  HpoConfig best_config_;
  float best_score_ = 1e30f;
};

}  // namespace df::hpo
