#include "screen/campaign.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "core/parallel.h"
#include "core/threadpool.h"
#include "io/log.h"

namespace df::screen {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

CampaignReport ScreeningCampaign::run(const std::vector<data::LibraryCompound>& compounds,
                                      const ModelFactory& make_model) {
  CampaignReport report;
  core::Rng rng(cfg_.seed);

  // One worker pool for the whole campaign: fusion scoring jobs run their
  // ranks on it, and while it is installed as the compute pool the numeric
  // kernels (gemm, conv lowering, voxel splatting) pick it up for any work
  // issued from the campaign thread.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t pool_threads =
      cfg_.threads > 0 ? static_cast<size_t>(cfg_.threads) : (hw != 0 ? hw : 1);
  core::ThreadPool pool(pool_threads);
  core::ComputePoolGuard pool_guard(&pool);

  struct PoseBookkeeping {
    size_t compound_idx;
    int target_idx;
    int pose_idx;
    float vina;
    float mmgbsa = std::numeric_limits<float>::quiet_NaN();
    float true_pk;
  };
  std::vector<PoseWorkItem> work;
  std::vector<PoseBookkeeping> book;

  // Per-target AMPL surrogate training data.
  std::vector<std::vector<dock::Molecule>> ampl_poses(targets_.size());
  std::vector<std::vector<std::vector<chem::Atom>>> ampl_pockets(targets_.size());
  std::vector<std::vector<float>> ampl_scores(targets_.size());

  // --- docking stage (ConveyorLC CDT2-4) ---
  auto t0 = std::chrono::steady_clock::now();
  dock::ConveyorLC pipeline(cfg_.pipeline);
  std::vector<dock::ReceptorModel> receptors;
  receptors.reserve(targets_.size());
  for (const data::Target& t : targets_) receptors.push_back(dock::ConveyorLC::prepare_receptor(t.pocket));

  std::vector<bool> rejected(compounds.size(), false);
  for (size_t ci = 0; ci < compounds.size(); ++ci) {
    const chem::Molecule raw = data::materialize(compounds[ci]);
    for (size_t ti = 0; ti < targets_.size(); ++ti) {
      auto res = pipeline.run(raw, receptors[ti], rng);
      if (!res) {
        rejected[ci] = true;
        break;  // prep rejection is compound-wide
      }
      report.mmgbsa_seconds += res->mmgbsa_seconds;
      for (size_t pi = 0; pi < res->poses.size(); ++pi) {
        PoseWorkItem item;
        item.compound_id = static_cast<int64_t>(ci);
        item.target_id = static_cast<int32_t>(ti);
        item.pose_id = static_cast<int32_t>(pi);
        item.ligand = res->conformers[pi];
        item.pocket = &targets_[ti].pocket;
        item.site_center = receptors[ti].site_center;
        work.push_back(std::move(item));

        PoseBookkeeping pb;
        pb.compound_idx = ci;
        pb.target_idx = static_cast<int>(ti);
        pb.pose_idx = static_cast<int>(pi);
        pb.vina = res->poses[pi].score;
        if (pi < res->mmgbsa_scores.size()) {
          pb.mmgbsa = res->mmgbsa_scores[pi];
          ampl_poses[ti].push_back(res->conformers[pi]);
          ampl_pockets[ti].push_back(targets_[ti].pocket);
          ampl_scores[ti].push_back(res->mmgbsa_scores[pi]);
        }
        pb.true_pk = data::oracle_pk(res->conformers[pi], targets_[ti].pocket,
                                     targets_[ti].oracle, nullptr);
        book.push_back(pb);
      }
    }
  }
  report.docking_seconds = seconds_since(t0);
  report.poses_generated = static_cast<int>(work.size());
  report.compounds_rejected = static_cast<int>(std::count(rejected.begin(), rejected.end(), true));

  // --- AMPL surrogates (one per target, like McLoughlin's models) ---
  std::vector<dock::AmplMmGbsaSurrogate> ampl(targets_.size());
  for (size_t ti = 0; ti < targets_.size(); ++ti) {
    if (ampl_scores[ti].size() >= 12) {
      ampl[ti].fit(ampl_poses[ti], ampl_pockets[ti], ampl_scores[ti]);
    }
  }

  // --- fusion scoring stage: fault-tolerant jobs over pose chunks ---
  t0 = std::chrono::steady_clock::now();
  std::vector<float> fusion_pred(work.size(), 0.0f);
  for (size_t lo = 0; lo < work.size(); lo += static_cast<size_t>(cfg_.poses_per_job)) {
    const size_t hi = std::min(work.size(), lo + static_cast<size_t>(cfg_.poses_per_job));
    std::vector<PoseWorkItem> chunk(work.begin() + static_cast<long>(lo),
                                    work.begin() + static_cast<long>(hi));
    JobConfig jc = cfg_.job;
    jc.pool = &pool;
    for (int attempt = 0; attempt <= cfg_.max_job_retries; ++attempt) {
      jc.seed = cfg_.seed + lo * 31 + static_cast<uint64_t>(attempt) * 7;
      FusionScoringJob job(jc);
      JobReport jr = job.run(chunk, make_model);
      ++report.jobs_run;
      if (jr.failed) {
        ++report.jobs_failed;
        continue;  // resubmit: "another job takes its place"
      }
      // Ranks take contiguous slices of the chunk and the allgather
      // concatenates them in rank order, so results arrive in chunk order.
      for (size_t i = 0; i < jr.predictions.size(); ++i) {
        fusion_pred[lo + i] = jr.predictions[i];
      }
      break;
    }
  }
  report.fusion_seconds = seconds_since(t0);

  // --- aggregation: strongest prediction across poses per compound/site ---
  std::map<std::pair<size_t, int>, CompoundScreenResult> agg;
  for (size_t i = 0; i < book.size(); ++i) {
    const PoseBookkeeping& pb = book[i];
    auto key = std::make_pair(pb.compound_idx, pb.target_idx);
    auto [it, inserted] = agg.try_emplace(key);
    CompoundScreenResult& r = it->second;
    if (inserted) {
      r.compound_id = compounds[pb.compound_idx].id;
      r.target_index = pb.target_idx;
      r.fusion_pk = -1e30f;
      r.vina_score = 1e30f;
      r.mmgbsa_score = 1e30f;
      r.ampl_mmgbsa_score = 1e30f;
      r.true_pk = -1e30f;
    }
    r.poses += 1;
    r.fusion_pk = std::max(r.fusion_pk, fusion_pred[i]);
    r.vina_score = std::min(r.vina_score, pb.vina);
    if (!std::isnan(pb.mmgbsa)) r.mmgbsa_score = std::min(r.mmgbsa_score, pb.mmgbsa);
    r.true_pk = std::max(r.true_pk, pb.true_pk);
    if (ampl[static_cast<size_t>(pb.target_idx)].trained()) {
      const float a = ampl[static_cast<size_t>(pb.target_idx)].predict(
          work[i].ligand, targets_[static_cast<size_t>(pb.target_idx)].pocket);
      r.ampl_mmgbsa_score = std::min(r.ampl_mmgbsa_score, a);
    }
  }

  // --- simulated experimental prosecution ---
  for (auto& [key, r] : agg) {
    const data::Target& t = targets_[static_cast<size_t>(r.target_index)];
    r.percent_inhibition =
        data::percent_inhibition(r.true_pk, t.assay_concentration_uM, rng, cfg_.assay);
    report.results.push_back(std::move(r));
  }
  return report;
}

}  // namespace df::screen
