#include "screen/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>

#include "core/parallel.h"
#include "core/threadpool.h"
#include "io/log.h"
#include "screen/checkpoint.h"
#include "screen/controller.h"
#include "screen/plan.h"
#include "screen/writer.h"
#include "serve/service.h"

namespace df::screen {

namespace fs = std::filesystem;

namespace {
constexpr uint64_t kAssayStreamTag = 0x4153534159ULL;  // "ASSAY"

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

CampaignReport ScreeningCampaign::run(const std::vector<data::LibraryCompound>& compounds,
                                      const ModelFactory& make_model) {
  // ModelFactory-era compatibility: wrap the factory as the single scorer of
  // a private ordered-stream service shaped by this campaign's config.
  serve::ModelRegistry registry;
  serve::add_regressor(registry, "campaign", make_model, cfg_.job.voxel, cfg_.job.graph);
  serve::ServiceConfig sc;
  const unsigned hw = std::thread::hardware_concurrency();
  sc.workers = cfg_.threads > 0 ? cfg_.threads : static_cast<int>(hw != 0 ? hw : 1);
  sc.poses_per_batch = cfg_.job.poses_per_batch;
  sc.ordered_stream = true;
  serve::ScoringService service(registry, sc);
  return run(compounds, service, "campaign");
}

CampaignReport ScreeningCampaign::run(const std::vector<data::LibraryCompound>& compounds,
                                      serve::ScoringService& service,
                                      const std::string& scorer) {
  return run_impl(compounds, &service, scorer, nullptr);
}

CampaignReport ScreeningCampaign::run(const std::vector<data::LibraryCompound>& compounds,
                                      ClusterController& cluster) {
  if (cluster.poses_per_batch() <= 0) {
    throw std::invalid_argument(
        "campaign: the cluster controller has no registered nodes — register "
        "at least one ScoreServer before running");
  }
  return run_impl(compounds, nullptr, cluster.scorer(), &cluster);
}

CampaignReport ScreeningCampaign::run_impl(const std::vector<data::LibraryCompound>& compounds,
                                           serve::ScoringService* service,
                                           const std::string& scorer,
                                           ClusterController* cluster) {
  CampaignReport report;
  core::Rng rng(cfg_.seed);

  const bool ordered = service != nullptr ? service->config().ordered_stream : cluster->ordered();
  const int scoring_batch =
      service != nullptr ? service->config().poses_per_batch : cluster->poses_per_batch();
  if (!ordered) {
    io::log_warn(
        "campaign: scoring service is not in ordered-stream mode; reports may "
        "not be bit-reproducible across worker counts or resumes");
  }
  if (!cfg_.checkpoint_path.empty() && cfg_.output_prefix.empty()) {
    throw std::invalid_argument(
        "campaign: checkpoint_path requires output_prefix — completed units are "
        "recovered from the streamed shards on resume");
  }

  // One worker pool for the whole campaign: fusion scoring jobs run their
  // ranks on it, and while it is installed as the compute pool the numeric
  // kernels (gemm, conv lowering, voxel splatting) pick it up for any work
  // issued from the campaign thread.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t pool_threads =
      cfg_.threads > 0 ? static_cast<size_t>(cfg_.threads) : (hw != 0 ? hw : 1);
  core::ThreadPool pool(pool_threads);
  core::ComputePoolGuard pool_guard(&pool);

  struct PoseBookkeeping {
    size_t compound_idx;
    int target_idx;
    int pose_idx;
    float vina;
    float mmgbsa = std::numeric_limits<float>::quiet_NaN();
    float true_pk;
  };
  std::vector<PoseWorkItem> work;
  std::vector<PoseBookkeeping> book;

  // Per-target AMPL surrogate training data.
  std::vector<std::vector<dock::Molecule>> ampl_poses(targets_.size());
  std::vector<std::vector<std::vector<chem::Atom>>> ampl_pockets(targets_.size());
  std::vector<std::vector<float>> ampl_scores(targets_.size());

  // --- docking stage (ConveyorLC CDT2-4) ---
  // Deterministic given the campaign seed, so a resumed process simply
  // re-derives the pose list instead of persisting it.
  auto t0 = std::chrono::steady_clock::now();
  dock::ConveyorLC pipeline(cfg_.pipeline);
  std::vector<dock::ReceptorModel> receptors;
  receptors.reserve(targets_.size());
  for (const data::Target& t : targets_) receptors.push_back(dock::ConveyorLC::prepare_receptor(t.pocket));

  std::vector<bool> rejected(compounds.size(), false);
  for (size_t ci = 0; ci < compounds.size(); ++ci) {
    const chem::Molecule raw = data::materialize(compounds[ci]);
    for (size_t ti = 0; ti < targets_.size(); ++ti) {
      auto res = pipeline.run(raw, receptors[ti], rng);
      if (!res) {
        rejected[ci] = true;
        break;  // prep rejection is compound-wide
      }
      report.mmgbsa_seconds += res->mmgbsa_seconds;
      for (size_t pi = 0; pi < res->poses.size(); ++pi) {
        PoseWorkItem item;
        item.compound_id = static_cast<int64_t>(ci);
        item.target_id = static_cast<int32_t>(ti);
        item.pose_id = static_cast<int32_t>(pi);
        item.ligand = res->conformers[pi];
        item.pocket = &targets_[ti].pocket;
        item.site_center = receptors[ti].site_center;
        work.push_back(std::move(item));

        PoseBookkeeping pb;
        pb.compound_idx = ci;
        pb.target_idx = static_cast<int>(ti);
        pb.pose_idx = static_cast<int>(pi);
        pb.vina = res->poses[pi].score;
        if (pi < res->mmgbsa_scores.size()) {
          pb.mmgbsa = res->mmgbsa_scores[pi];
          ampl_poses[ti].push_back(res->conformers[pi]);
          ampl_pockets[ti].push_back(targets_[ti].pocket);
          ampl_scores[ti].push_back(res->mmgbsa_scores[pi]);
        }
        pb.true_pk = data::oracle_pk(res->conformers[pi], targets_[ti].pocket,
                                     targets_[ti].oracle, nullptr);
        book.push_back(pb);
      }
    }
  }
  report.docking_seconds = seconds_since(t0);
  report.poses_generated = static_cast<int>(work.size());
  report.compounds_rejected = static_cast<int>(std::count(rejected.begin(), rejected.end(), true));

  // --- AMPL surrogates (one per target, like McLoughlin's models) ---
  std::vector<dock::AmplMmGbsaSurrogate> ampl(targets_.size());
  for (size_t ti = 0; ti < targets_.size(); ++ti) {
    if (ampl_scores[ti].size() >= 12) {
      ampl[ti].fit(ampl_poses[ti], ampl_pockets[ti], ampl_scores[ti]);
    }
  }

  // --- rank plan: the §4.3 schedule of work units over the cluster ---
  const RankPlan plan = RankPlan::build(work.size(), cfg_.poses_per_job, cfg_.job, cfg_.cluster);
  report.units_total = static_cast<int>(plan.units.size());
  const uint64_t lib_fp = data::library_fingerprint(compounds);

  std::vector<int64_t> status(plan.units.size(), static_cast<int64_t>(UnitStatus::Pending));
  std::vector<int64_t> attempts(plan.units.size(), 0);
  std::vector<float> fusion_pred(work.size(), 0.0f);

  const bool streaming = !cfg_.output_prefix.empty();
  const int num_shards = cfg_.num_shards > 0 ? cfg_.num_shards : plan.ranks_per_job;

  // --- resume: recover completed units from checkpoint + shards ---
  const bool resuming = !cfg_.checkpoint_path.empty() && fs::exists(cfg_.checkpoint_path);
  if (resuming) {
    const CampaignCheckpoint ck = load_campaign_checkpoint(cfg_.checkpoint_path);
    if (ck.campaign_seed != cfg_.seed || ck.library_fingerprint != lib_fp ||
        ck.total_poses != static_cast<int64_t>(work.size()) ||
        ck.units() != static_cast<int64_t>(plan.units.size()) ||
        ck.poses_per_job != cfg_.poses_per_job || ck.nodes != cfg_.job.nodes ||
        ck.gpus_per_node != cfg_.job.gpus_per_node || ck.num_shards != num_shards ||
        ck.scoring_batch != scoring_batch) {
      throw std::runtime_error(
          "campaign: checkpoint does not match this campaign (seed, library, plan, "
          "job geometry or scoring batch size changed): " + cfg_.checkpoint_path);
    }
    status = ck.unit_status;
    attempts = ck.unit_attempts;
    // Units the dead process had in flight restart from attempt 0 on their
    // original streams; their partial attempt history replays identically.
    for (size_t u = 0; u < status.size(); ++u) {
      if (status[u] == static_cast<int64_t>(UnitStatus::Pending)) attempts[u] = 0;
    }
    // Reconcile shards with the checkpoint: drop torn tails and any block
    // the checkpoint does not vouch for (written after the last save).
    for (int s = 0; s < num_shards; ++s) {
      const std::string path = shard_stream_path(cfg_.output_prefix, s);
      if (!fs::exists(path)) continue;
      compact_shard_stream(path, [&](uint64_t unit) {
        return unit < status.size() && status[unit] == static_cast<int64_t>(UnitStatus::Done);
      });
    }
    // Recover predictions for vouched-for units; anything missing re-runs.
    std::vector<bool> recovered(plan.units.size(), false);
    for (int s = 0; s < num_shards; ++s) {
      const ShardScan scan = scan_shard_stream(shard_stream_path(cfg_.output_prefix, s));
      for (const ShardBlock& b : scan.blocks) {
        if (b.unit_id >= plan.units.size()) continue;
        const WorkUnit& unit = plan.units[b.unit_id];
        if (b.rows() != unit.poses()) continue;  // malformed: force re-run
        std::copy(b.predictions.begin(), b.predictions.end(),
                  fusion_pred.begin() + static_cast<long>(unit.pose_begin));
        recovered[b.unit_id] = true;
      }
    }
    for (size_t u = 0; u < status.size(); ++u) {
      if (status[u] == static_cast<int64_t>(UnitStatus::Done) && !recovered[u]) {
        io::log_warn("campaign resume: unit " + std::to_string(u) +
                     " lost its shard block; re-running");
        status[u] = static_cast<int64_t>(UnitStatus::Pending);
        attempts[u] = 0;
      }
      if (status[u] != static_cast<int64_t>(UnitStatus::Pending)) ++report.units_resumed;
    }
  } else if (streaming) {
    // Fresh start: clear any stale shards so old blocks cannot leak into
    // this campaign's output.
    for (int s = 0; s < num_shards; ++s) {
      std::error_code ec;
      fs::remove(shard_stream_path(cfg_.output_prefix, s), ec);
    }
    std::error_code ec;
    fs::remove(shard_manifest_path(cfg_.output_prefix), ec);
  }

  // --- fusion scoring stage: fault-tolerant jobs over the plan ---
  t0 = std::chrono::steady_clock::now();
  StochasticFaultInjector default_injector;
  FaultInjector* injector = cfg_.fault_injector;
  if (injector == nullptr && cfg_.job.inject_failures) injector = &default_injector;

  std::vector<std::unique_ptr<ShardStream>> streams(static_cast<size_t>(num_shards));
  const auto stream_for = [&](uint32_t unit_id) -> ShardStream& {
    const size_t s = unit_id % static_cast<size_t>(num_shards);
    if (!streams[s]) {
      streams[s] = std::make_unique<ShardStream>(shard_stream_path(cfg_.output_prefix,
                                                                   static_cast<int>(s)));
    }
    return *streams[s];
  };

  int64_t attempts_this_run = 0;
  int completed_since_ckpt = 0;
  ShardStream* last_write = nullptr;
  const auto save_ckpt = [&] {
    CampaignCheckpoint ck;
    ck.campaign_seed = cfg_.seed;
    ck.library_fingerprint = lib_fp;
    ck.total_poses = static_cast<int64_t>(work.size());
    ck.poses_per_job = cfg_.poses_per_job;
    ck.nodes = cfg_.job.nodes;
    ck.gpus_per_node = cfg_.job.gpus_per_node;
    ck.num_shards = num_shards;
    ck.scoring_batch = scoring_batch;
    ck.unit_status = status;
    ck.unit_attempts = attempts;
    save_campaign_checkpoint(ck, cfg_.checkpoint_path);
    completed_since_ckpt = 0;
    ++report.checkpoints_written;
  };
  const auto kill_check = [&] {
    if (cfg_.kill_after_attempts < 0 || attempts_this_run < cfg_.kill_after_attempts) return;
    if (cfg_.kill_mid_write && last_write != nullptr) {
      // Die with a half-appended block on disk: the torn tail must be
      // detected and discarded by the resume scan.
      last_write->close();
      tear_shard_tail(last_write->path(), 6);
    }
    throw CampaignKilled("campaign killed after " + std::to_string(attempts_this_run) +
                         " job attempts (simulated)");
  };

  const auto exhaust_unit = [&](const WorkUnit& unit) {
    status[unit.id] = static_cast<int64_t>(UnitStatus::Exhausted);
    ++completed_since_ckpt;
    io::log_warn("campaign: unit " + std::to_string(unit.id) + " exhausted its " +
                 std::to_string(cfg_.max_job_retries) + " retries; poses unscored");
  };
  const auto complete_unit = [&](const WorkUnit& unit, const float* predictions) {
    // Results arrive in chunk order (serial: ranks take contiguous slices
    // and the allgather concatenates in rank order; distributed: the node
    // scores the whole chunk in request order).
    std::copy(predictions, predictions + unit.poses(),
              fusion_pred.begin() + static_cast<long>(unit.pose_begin));
    if (streaming) {
      ShardBlock block;
      block.unit_id = unit.id;
      for (size_t i = unit.pose_begin; i < unit.pose_end; ++i) {
        block.compound_ids.push_back(work[i].compound_id);
        block.target_ids.push_back(work[i].target_id);
        block.pose_ids.push_back(work[i].pose_id);
      }
      block.predictions.assign(predictions, predictions + unit.poses());
      ShardStream& stream = stream_for(unit.id);
      stream.append(block);
      last_write = &stream;
    }
    status[unit.id] = static_cast<int64_t>(UnitStatus::Done);
    ++completed_since_ckpt;
    if (!cfg_.checkpoint_path.empty() && completed_since_ckpt >= cfg_.checkpoint_every_jobs) {
      save_ckpt();
    }
    kill_check();
  };

  if (service != nullptr) {
    for (const WorkUnit& unit : plan.units) {
      if (status[unit.id] != static_cast<int64_t>(UnitStatus::Pending)) continue;
      const std::vector<PoseWorkItem> chunk(work.begin() + static_cast<long>(unit.pose_begin),
                                            work.begin() + static_cast<long>(unit.pose_end));
      for (int attempt = 0; attempt <= cfg_.max_job_retries; ++attempt) {
        JobConfig jc = cfg_.job;
        jc.pool = &pool;
        jc.seed = unit_seed(cfg_.seed, unit.id, attempt);
        if (injector != nullptr) {
          jc.inject_failures = false;
          jc.doomed_rank = injector->doomed_rank(cfg_.seed, unit.id, attempt, jc.nodes, unit.ranks);
        }
        FusionScoringJob job(jc);
        const JobReport jr = job.run(chunk, *service, scorer);
        ++attempts[unit.id];
        ++attempts_this_run;
        if (jr.failed) {
          kill_check();
          continue;  // resubmit: "another job takes its place"
        }
        complete_unit(unit, jr.predictions.data());
        break;
      }
      if (status[unit.id] == static_cast<int64_t>(UnitStatus::Pending)) exhaust_unit(unit);
    }
  } else {
    // --- distributed scoring over the cluster controller ---
    // The logical fault schedule is a pure function of (seed, unit, attempt),
    // so it resolves without scoring: advance each unit's attempt cursor past
    // its doomed attempts — bookkept exactly like failed in-process jobs —
    // and ship only the first clean attempt to the cluster. Physical node
    // deaths re-dispatch inside the controller without touching the cursor,
    // which is why the report stays bit-identical to the serial run.
    //
    // If anything throws out of this branch (CampaignKilled from the kill
    // harness, a stopped controller), the cluster is stopped before the
    // exception escapes: submitted poses borrow this campaign's pocket
    // storage, so dispatchers must not outlive this frame, and abandoning
    // the queue means a resumed run needs a fresh controller — stale
    // verdicts from the aborted run can never leak into it.
    try {
    std::vector<int> next_attempt(plan.units.size(), 0);
    const auto advance_to_clean_attempt = [&](const WorkUnit& unit) -> bool {
      int& cursor = next_attempt[unit.id];
      while (cursor <= cfg_.max_job_retries) {
        const int doomed = injector != nullptr
                               ? injector->doomed_rank(cfg_.seed, unit.id, cursor,
                                                       cfg_.job.nodes, unit.ranks)
                               : -1;
        if (doomed < 0) return true;
        ++cursor;
        ++attempts[unit.id];
        ++attempts_this_run;
        kill_check();
      }
      return false;
    };
    const auto submit_unit = [&](const WorkUnit& unit) {
      std::vector<serve::PoseInput> poses;
      poses.reserve(unit.poses());
      for (size_t i = unit.pose_begin; i < unit.pose_end; ++i) {
        serve::PoseInput pose;
        pose.ligand = work[i].ligand;
        pose.pocket = work[i].pocket;
        pose.site_center = work[i].site_center;
        poses.push_back(std::move(pose));
      }
      cluster->submit_unit(unit.id, std::move(poses));
    };

    size_t outstanding = 0;
    for (const WorkUnit& unit : plan.units) {
      if (status[unit.id] != static_cast<int64_t>(UnitStatus::Pending)) continue;
      if (!advance_to_clean_attempt(unit)) {
        exhaust_unit(unit);
        continue;
      }
      submit_unit(unit);
      ++outstanding;
    }
    while (outstanding > 0) {
      const UnitResult r = cluster->wait_unit();
      --outstanding;
      const WorkUnit& unit = plan.units[r.unit_id];
      ++attempts[unit.id];
      ++attempts_this_run;
      if (!r.ok) {
        // A typed scorer failure on the clean attempt — the distributed
        // analog of jr.failed: bookkeep it and resubmit on the next clean
        // attempt, if the unit has retries left.
        kill_check();
        ++next_attempt[unit.id];
        if (advance_to_clean_attempt(unit)) {
          submit_unit(unit);
          ++outstanding;
        } else {
          exhaust_unit(unit);
        }
        continue;
      }
      complete_unit(unit, r.scores.data());
    }
    } catch (...) {
      cluster->stop();
      throw;
    }
  }
  report.fusion_seconds = seconds_since(t0);

  // --- finalize durable state ---
  if (!cfg_.checkpoint_path.empty()) save_ckpt();
  if (streaming) {
    for (auto& s : streams) {
      if (s) s->close();
    }
    // Open every shard once so short campaigns still produce the full shard
    // set the manifest promises.
    for (int s = 0; s < num_shards; ++s) {
      const std::string path = shard_stream_path(cfg_.output_prefix, s);
      if (!fs::exists(path)) ShardStream(path).close();
      report.shard_files.push_back(path);
    }
    write_shard_manifest(cfg_.output_prefix, num_shards);
  }

  // Job counters derive from the per-unit attempt cursors, so a resumed
  // campaign reports the same totals as an uninterrupted one.
  for (size_t u = 0; u < plan.units.size(); ++u) {
    report.jobs_run += static_cast<int>(attempts[u]);
    if (status[u] == static_cast<int64_t>(UnitStatus::Done)) {
      report.jobs_failed += static_cast<int>(attempts[u]) - 1;
    } else if (status[u] == static_cast<int64_t>(UnitStatus::Exhausted)) {
      report.jobs_failed += static_cast<int>(attempts[u]);
      ++report.units_exhausted;
    }
  }

  // --- aggregation: strongest prediction across poses per compound/site ---
  std::map<std::pair<size_t, int>, CompoundScreenResult> agg;
  for (size_t i = 0; i < book.size(); ++i) {
    const PoseBookkeeping& pb = book[i];
    auto key = std::make_pair(pb.compound_idx, pb.target_idx);
    auto [it, inserted] = agg.try_emplace(key);
    CompoundScreenResult& r = it->second;
    if (inserted) {
      r.compound_id = compounds[pb.compound_idx].id;
      r.target_index = pb.target_idx;
      r.fusion_pk = -1e30f;
      r.vina_score = 1e30f;
      r.mmgbsa_score = 1e30f;
      r.ampl_mmgbsa_score = 1e30f;
      r.true_pk = -1e30f;
    }
    r.poses += 1;
    r.fusion_pk = std::max(r.fusion_pk, fusion_pred[i]);
    r.vina_score = std::min(r.vina_score, pb.vina);
    if (!std::isnan(pb.mmgbsa)) r.mmgbsa_score = std::min(r.mmgbsa_score, pb.mmgbsa);
    r.true_pk = std::max(r.true_pk, pb.true_pk);
    if (ampl[static_cast<size_t>(pb.target_idx)].trained()) {
      const float a = ampl[static_cast<size_t>(pb.target_idx)].predict(
          work[i].ligand, targets_[static_cast<size_t>(pb.target_idx)].pocket);
      r.ampl_mmgbsa_score = std::min(r.ampl_mmgbsa_score, a);
    }
  }

  // --- simulated experimental prosecution ---
  // Assay noise streams key on (compound, target), not on how many draws
  // earlier stages consumed — the readouts survive kill/resume and thread
  // count changes bit-for-bit.
  for (auto& [key, r] : agg) {
    const data::Target& t = targets_[static_cast<size_t>(r.target_index)];
    core::Rng assay_rng(core::derive_stream(
        cfg_.seed, kAssayStreamTag,
        key.first * targets_.size() + static_cast<size_t>(key.second)));
    r.percent_inhibition =
        data::percent_inhibition(r.true_pk, t.assay_concentration_uM, assay_rng, cfg_.assay);
    report.results.push_back(std::move(r));
  }
  return report;
}

}  // namespace df::screen
