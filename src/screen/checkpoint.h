// Campaign checkpoint: the compact state that makes a killed screening
// campaign resumable (paper §4.3 — wide jobs die and "another job takes
// its place"; here the whole driver process may die too). The checkpoint
// records, per work unit, its status and how many job attempts it consumed.
// Because every stochastic decision downstream of the plan is keyed on
// (campaign seed, unit id, attempt) — job scoring streams, fault draws,
// assay noise — the attempt counters ARE the RNG cursors, and the final
// CampaignReport is derivable from them bit-for-bit no matter where the
// previous process died. Serialized through io/h5lite (same container as
// model checkpoints), written atomically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace df::screen {

/// Per-unit lifecycle. kExhausted means every retry failed; the unit wrote
/// no shard block and contributes zero predictions, like the paper's jobs
/// that die past their retry budget.
enum class UnitStatus : int64_t { Pending = 0, Done = 1, Exhausted = 2 };

struct CampaignCheckpoint {
  uint64_t campaign_seed = 0;
  uint64_t library_fingerprint = 0;  // guards resume against input drift
  int64_t total_poses = 0;
  // Plan geometry: fault draws and shard placement depend on these, so a
  // resume under a different geometry would silently break the
  // bit-identical guarantee — it must be rejected instead.
  int64_t poses_per_job = 0;
  int64_t nodes = 0;
  int64_t gpus_per_node = 0;
  int64_t num_shards = 0;
  // Scoring-service micro-batch size (ordered-stream chunk boundaries).
  // Batch composition feeds floating-point summation order, so resuming
  // under a different batch size would mix old-boundary bits (recovered
  // from shards) with new-boundary bits (re-run units) — rejected like the
  // rest of the geometry.
  int64_t scoring_batch = 0;
  std::vector<int64_t> unit_status;    // UnitStatus per work unit
  std::vector<int64_t> unit_attempts;  // job attempts consumed per unit

  int64_t units() const { return static_cast<int64_t>(unit_status.size()); }
};

/// Atomic write (tmp + rename): a kill during checkpointing leaves the
/// previous valid checkpoint in place, never a torn one.
void save_campaign_checkpoint(const CampaignCheckpoint& ck, const std::string& path);

/// Throws io::H5LiteError on damage, std::runtime_error on schema drift.
CampaignCheckpoint load_campaign_checkpoint(const std::string& path);

}  // namespace df::screen
