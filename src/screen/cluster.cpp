#include "screen/cluster.h"

namespace df::screen {

double job_failure_probability(int nodes_per_job) {
  if (nodes_per_job <= 2) return 0.02;
  if (nodes_per_job <= 4) return 0.03;
  if (nodes_per_job <= 6) return 0.08;
  return 0.20;
}

bool batch_fits_gpu(double model_gb, double per_pose_gb, int batch_size, const NodeSpec& node) {
  return model_gb + per_pose_gb * batch_size <= node.gpu_memory_gb;
}

}  // namespace df::screen
