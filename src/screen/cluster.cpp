#include "screen/cluster.h"

#include "core/rng.h"

namespace df::screen {

namespace {
// Stream tag for fault-injection draws; keeps them independent of the
// per-job scoring streams derived from the same campaign seed.
constexpr uint64_t kFaultStreamTag = 0x4641554c54ULL;  // "FAULT"
}  // namespace

double job_failure_probability(int nodes_per_job) {
  if (nodes_per_job <= 2) return 0.02;
  if (nodes_per_job <= 4) return 0.03;
  if (nodes_per_job <= 6) return 0.08;
  return 0.20;
}

bool batch_fits_gpu(double model_gb, double per_pose_gb, int batch_size, const NodeSpec& node) {
  return model_gb + per_pose_gb * batch_size <= node.gpu_memory_gb;
}

int StochasticFaultInjector::doomed_rank(uint64_t campaign_seed, uint32_t unit_id, int attempt,
                                         int nodes, int ranks) {
  core::Rng rng(core::derive_stream(
      campaign_seed, kFaultStreamTag,
      (static_cast<uint64_t>(unit_id) << 8) | static_cast<uint64_t>(attempt & 0xff)));
  if (!rng.bernoulli(job_failure_probability(nodes))) return -1;
  return static_cast<int>(rng.randint(0, ranks - 1));
}

}  // namespace df::screen
