// End-to-end screening campaign (paper §4-§5): a compound library is docked
// against the four SARS-CoV-2 sites with the ConveyorLC-equivalent
// pipeline, docked poses are scored by the Fusion model in fault-tolerant
// jobs (failed jobs are resubmitted — "another job takes its place"), and
// per-compound predictions are aggregated by the paper's rule: the
// strongest prediction across poses per binding site (max for Fusion, min
// for Vina/MM-GBSA). The assay simulator then produces the experimental
// percent-inhibition values used by Figures 5/6 and Table 8.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/assay.h"
#include "data/compound_library.h"
#include "data/target.h"
#include "dock/conveyorlc.h"
#include "dock/mmgbsa.h"
#include "screen/job.h"

namespace df::screen {

struct CompoundScreenResult {
  std::string compound_id;
  int target_index = 0;                 // into the campaign's target list
  float fusion_pk = 0;                  // max over poses
  float vina_score = 0;                 // min over poses (more negative = better)
  float mmgbsa_score = 0;               // min over rescored poses
  float ampl_mmgbsa_score = 0;          // AMPL surrogate, min over poses
  float true_pk = 0;                    // hidden oracle at the best pose
  float percent_inhibition = 0;         // simulated assay readout
  int poses = 0;
};

struct CampaignConfig {
  JobConfig job;                         // fusion scoring job shape
  dock::PipelineConfig pipeline;         // docking settings
  int poses_per_job = 512;               // paper: 2M; scaled
  data::AssayConfig assay;
  int max_job_retries = 4;
  int threads = 0;                       // shared worker pool size; 0 = hardware concurrency
  uint64_t seed = 2021;
};

struct CampaignReport {
  std::vector<CompoundScreenResult> results;
  int jobs_run = 0;
  int jobs_failed = 0;
  int compounds_rejected = 0;            // ligand-prep rejections
  double docking_seconds = 0;
  double mmgbsa_seconds = 0;
  double fusion_seconds = 0;
  int poses_generated = 0;
};

class ScreeningCampaign {
 public:
  ScreeningCampaign(CampaignConfig cfg, std::vector<data::Target> targets)
      : cfg_(std::move(cfg)), targets_(std::move(targets)) {}

  /// Screen `compounds` against every target. `make_model` builds the
  /// fusion scorer per rank. The AMPL surrogate is fitted per target on the
  /// MM/GBSA-rescored poses encountered during the run.
  CampaignReport run(const std::vector<data::LibraryCompound>& compounds,
                     const ModelFactory& make_model);

  const std::vector<data::Target>& targets() const { return targets_; }

 private:
  CampaignConfig cfg_;
  std::vector<data::Target> targets_;
};

}  // namespace df::screen
