// End-to-end screening campaign (paper §4-§5): a compound library is docked
// against the four SARS-CoV-2 sites with the ConveyorLC-equivalent
// pipeline, docked poses are scored through the shared serve::ScoringService
// in fault-tolerant jobs (failed jobs are resubmitted — "another job takes
// its place"), and
// per-compound predictions are aggregated by the paper's rule: the
// strongest prediction across poses per binding site (max for Fusion, min
// for Vina/MM-GBSA). The assay simulator then produces the experimental
// percent-inhibition values used by Figures 5/6 and Table 8.
//
// The driver is a RankPlan walk: the pose list is partitioned into work
// units keyed by stable ids, every stochastic decision (job scoring
// streams, fault injection, assay noise) derives from (seed, stable id),
// finished units stream to per-rank CRC-framed shards, and a compact
// checkpoint written every K completed jobs makes the campaign killable at
// any instant and resumable to the bit-identical report.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/assay.h"
#include "data/compound_library.h"
#include "data/target.h"
#include "dock/conveyorlc.h"
#include "dock/mmgbsa.h"
#include "screen/cluster.h"
#include "screen/job.h"

namespace df::serve {
class ScoringService;
}

namespace df::screen {

class ClusterController;

struct CompoundScreenResult {
  std::string compound_id;
  int target_index = 0;                 // into the campaign's target list
  float fusion_pk = 0;                  // max over poses
  float vina_score = 0;                 // min over poses (more negative = better)
  float mmgbsa_score = 0;               // min over rescored poses
  float ampl_mmgbsa_score = 0;          // AMPL surrogate, min over poses
  float true_pk = 0;                    // hidden oracle at the best pose
  float percent_inhibition = 0;         // simulated assay readout
  int poses = 0;
};

struct CampaignConfig {
  JobConfig job;                         // fusion scoring job shape
  dock::PipelineConfig pipeline;         // docking settings
  int poses_per_job = 512;               // paper: 2M; scaled
  data::AssayConfig assay;
  int max_job_retries = 4;
  int threads = 0;                       // shared worker pool size; 0 = hardware concurrency
  uint64_t seed = 2021;

  // --- multi-rank / fault-tolerance layer ---
  ClusterConfig cluster;                 // geometry for the RankPlan schedule
  FaultInjector* fault_injector = nullptr;  // not owned; nullptr + job.inject_failures
                                            // = default §4.3 stochastic injector
  std::string output_prefix;             // non-empty = stream finished units to
                                         // <prefix>.rankN.dfsh shards + manifest
  int num_shards = 0;                    // 0 = one shard per job rank
  std::string checkpoint_path;           // non-empty = checkpoint/resume enabled
                                         // (requires output_prefix)
  int checkpoint_every_jobs = 4;         // K completed units per checkpoint

  // --- deterministic kill harness (tests / examples) ---
  int64_t kill_after_attempts = -1;      // >=0: throw CampaignKilled once this
                                         // many job attempts ran in this process
  bool kill_mid_write = false;           // tear the last shard block first, as
                                         // if the process died mid-append
};

struct CampaignReport {
  std::vector<CompoundScreenResult> results;
  int jobs_run = 0;
  int jobs_failed = 0;
  int compounds_rejected = 0;            // ligand-prep rejections
  double docking_seconds = 0;
  double mmgbsa_seconds = 0;
  double fusion_seconds = 0;
  int poses_generated = 0;
  // --- fault-tolerance layer ---
  int units_total = 0;
  int units_resumed = 0;                 // recovered from checkpoint + shards
  int units_exhausted = 0;               // every retry failed
  int checkpoints_written = 0;
  std::vector<std::string> shard_files;
};

/// Thrown by the kill harness to simulate the driver process dying; on-disk
/// checkpoint and shards stay behind for the next run to resume from.
struct CampaignKilled : std::runtime_error {
  explicit CampaignKilled(const std::string& msg) : std::runtime_error(msg) {}
};

class ScreeningCampaign {
 public:
  ScreeningCampaign(CampaignConfig cfg, std::vector<data::Target> targets)
      : cfg_(std::move(cfg)), targets_(std::move(targets)) {}

  /// Screen `compounds` against every target, scoring poses through
  /// `service` with the named scorer — the campaign is one client among
  /// possibly many of a shared ScoringService. The AMPL surrogate is fitted
  /// per target on the MM/GBSA-rescored poses encountered during the run.
  /// If `checkpoint_path` names an existing checkpoint, the campaign
  /// resumes: completed units are recovered from the shards, everything
  /// else re-runs on its original RNG streams, and the returned report is
  /// bit-identical to an uninterrupted run (timing fields aside).
  ///
  /// Determinism contract: those bit-identical guarantees (and the
  /// determinism/resume pins of PR 2) additionally require the service to
  /// run in ordered-stream mode with a deterministic scorer factory; a
  /// non-ordered service is accepted but logged, and reports may then vary
  /// at the floating-point-bit level with batching.
  CampaignReport run(const std::vector<data::LibraryCompound>& compounds,
                     serve::ScoringService& service, const std::string& scorer);

  /// Compatibility path for ModelFactory-era callers: registers
  /// `make_model` as the one scorer of a private, ordered-stream
  /// ScoringService (workers = `threads`, micro-batch = job.poses_per_batch,
  /// featurization from job.voxel/job.graph) and runs through it.
  CampaignReport run(const std::vector<data::LibraryCompound>& compounds,
                     const ModelFactory& make_model);

  /// Multi-node path: score work units over `cluster`'s registered
  /// ScoreServer nodes instead of an in-process service. Nodes must be
  /// registered (and collectively healthy enough to make progress) before
  /// the call. The logical fault schedule (the configured FaultInjector) is
  /// resolved locally — doomed attempts are bookkept without scoring — and
  /// physical node deaths re-dispatch units without touching the attempt
  /// cursor, so with ordered-stream nodes and deterministic scorers the
  /// report is bit-identical to the in-process run of the same campaign
  /// (timing fields aside), no matter how many nodes die mid-run.
  ///
  /// If the run aborts (CampaignKilled from the kill harness, any other
  /// exception), `cluster` is stopped before the exception escapes — its
  /// in-flight poses borrow this campaign's pocket storage. Resume with a
  /// fresh controller over the same (still-running) nodes.
  CampaignReport run(const std::vector<data::LibraryCompound>& compounds,
                     ClusterController& cluster);

  const std::vector<data::Target>& targets() const { return targets_; }

 private:
  CampaignReport run_impl(const std::vector<data::LibraryCompound>& compounds,
                          serve::ScoringService* service, const std::string& scorer,
                          ClusterController* cluster);

  CampaignConfig cfg_;
  std::vector<data::Target> targets_;
};

}  // namespace df::screen
