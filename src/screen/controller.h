// ClusterController — the multi-node scheduling layer between a screening
// campaign and a fleet of ScoreServer nodes: the distributed realization of
// the §4.3 picture where a killed job's work is simply resubmitted and
// "another job takes its place", except the kills are real processes dying.
//
// Work model: submit_unit() enqueues a work unit (one campaign scoring
// job's poses); per-node dispatcher threads pull units and score them over
// ScoreClient. A transport failure — connection refused, reset mid-stream,
// node draining — marks the node unhealthy and puts the unit back at the
// FRONT of the queue for the next healthy node, so node death never loses
// a unit and never records it twice (the dispatcher owns the unit until a
// verdict; a re-scored duplicate on a node that died after computing is
// never collected). A heartbeat thread pings every node and both detects
// silent deaths (consecutive misses) and revives restarted nodes, so a
// SIGKILL + respawn on the same port heals without intervention.
//
// Determinism: scores depend only on request content (ordered-stream nodes,
// deterministic scorers), never on which node ran a unit or how many times
// it was re-dispatched — the property the campaign's multi-node bitwise
// pin rests on. The controller therefore retries forever by default: a
// unit's verdict is either its scores or a typed scorer error, never "the
// cluster was unlucky".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

namespace df::screen {

struct ControllerConfig {
  std::string scorer;                  // required: name every node must serve
  serve::ClientConfig client;          // template; host/port set per node
  double heartbeat_interval_ms = 100;
  int heartbeat_misses = 3;            // consecutive ping failures -> unhealthy
  int inflight_per_node = 2;           // dispatcher threads (and wire slots) per node
  bool require_ordered = true;         // refuse nodes not in ordered-stream mode
};

struct ControllerStats {
  uint64_t units_submitted = 0;
  uint64_t units_finished = 0;   // verdicts delivered (scores or typed error)
  uint64_t dispatches = 0;       // unit -> node assignments (>= finishes)
  uint64_t requeues = 0;         // dispatches that came back transport-dead
  uint64_t node_deaths = 0;      // healthy -> unhealthy transitions
  uint64_t node_revivals = 0;    // unhealthy -> healthy transitions
  uint64_t heartbeats = 0;
  uint64_t heartbeat_failures = 0;
};

struct NodeStatus {
  std::string host;
  int port = 0;
  std::string node_id;   // from the node's Hello
  bool healthy = false;
  bool draining = false;
  uint64_t units_scored = 0;
};

/// Verdict for one work unit. ok == false carries the typed error of a
/// scorer-level failure (never a transport fault — those re-dispatch).
struct UnitResult {
  uint32_t unit_id = 0;
  std::vector<float> scores;
  bool ok = false;
  serve::ScoreError error = serve::ScoreError::kNone;
  std::string message;
};

class ClusterController {
 public:
  explicit ClusterController(ControllerConfig cfg);
  ~ClusterController();  // stop()

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  /// Connect to a node, validate its Hello (scorer served, ordered-stream
  /// if required, poses_per_batch consistent with already-registered
  /// nodes), and start dispatching to it. False => *error explains.
  bool register_node(const std::string& host, int port, std::string* error);

  /// Enqueue one unit. Pocket pointers inside `poses` must stay valid until
  /// the unit's result has been collected.
  void submit_unit(uint32_t unit_id, std::vector<serve::PoseInput> poses);

  /// Block until some submitted unit has a verdict (completion order is
  /// arrival order, not submission order). Throws std::runtime_error if
  /// nothing is outstanding or the controller was stopped.
  UnitResult wait_unit();

  size_t outstanding() const;  // submitted, verdict not yet collected

  /// Graceful removal: stop assigning work to host:port, wait for its
  /// in-flight dispatches to come back, then ask the node itself to drain
  /// (best effort). The node keeps serving other clients until told
  /// otherwise. False if the node is unknown.
  bool drain_node(const std::string& host, int port);

  std::vector<NodeStatus> nodes() const;
  int healthy_count() const;

  /// Batch geometry learned from the first node's Hello — what the campaign
  /// records in its checkpoint as the scoring batch size.
  int poses_per_batch() const;
  bool ordered() const;
  const std::string& scorer() const { return cfg_.scorer; }

  ControllerStats stats() const;

  /// Stop dispatchers and heartbeat, abandon queued work. Idempotent; the
  /// destructor calls it. Outstanding wait_unit() callers get an exception.
  void stop();

 private:
  struct Node;
  struct Unit {
    uint32_t id = 0;
    std::vector<serve::PoseInput> poses;
  };

  void dispatch_loop(Node* node);
  void heartbeat_loop();
  void mark_unhealthy(Node* node);  // mu_ held

  ControllerConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // dispatchers: queue or state change
  std::condition_variable done_cv_;   // wait_unit / drain_node
  std::deque<Unit> queue_;
  std::deque<UnitResult> done_;
  size_t outstanding_ = 0;
  bool stop_ = false;
  int poses_per_batch_ = 0;
  bool ordered_ = false;
  ControllerStats stats_;
  std::vector<std::unique_ptr<Node>> nodes_;

  std::thread heartbeat_thread_;
};

}  // namespace df::screen
