// Parallel sharded result writer (paper §4.2): after the allgather, results
// are redistributed so every rank writes its own HDF5 file — the fix for
// the file-output bottleneck the authors identified. The dataset layout
// mirrors CDT3Docking's output (identifier triplets + predicted affinity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace df::screen {

/// Write `num_shards` h5lite files named <prefix>.rankN.h5lt in parallel.
/// Returns the file paths. Row i goes to shard i % num_shards.
std::vector<std::string> write_sharded_results(const std::string& prefix, int num_shards,
                                               const std::vector<int64_t>& compound_ids,
                                               const std::vector<int64_t>& target_ids,
                                               const std::vector<int64_t>& pose_ids,
                                               const std::vector<float>& predictions);

/// Load all shards written by write_sharded_results back into flat arrays.
struct GatheredResults {
  std::vector<int64_t> compound_ids, target_ids, pose_ids;
  std::vector<float> predictions;
};
GatheredResults read_sharded_results(const std::vector<std::string>& files);

}  // namespace df::screen
