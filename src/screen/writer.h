// Sharded result output (paper §4.2): the fix for the file-output
// bottleneck is that every rank writes its own file. Two forms live here:
//
//  * write_sharded_results / read_sharded_results — the original one-shot
//    h5lite shards a finished job dumps after its allgather. Reading now
//    *reports* damage (missing / truncated / corrupt shards) instead of
//    throwing away the healthy ones.
//
//  * ShardStream — an append-mode shard for the campaign driver: each
//    finished work unit is flushed immediately as one CRC-framed block, so
//    a killed campaign keeps everything scored so far. scan() recovers the
//    valid block prefix from a torn file; compact() drops blocks that a
//    checkpoint does not vouch for (the resume reconciliation step).
//
// A manifest (h5lite, itself CRC-protected) records per-shard row counts
// and whole-file CRCs so a finished campaign's output can be audited
// without re-reading every row.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace df::screen {

enum class ShardDamageKind {
  MissingFile,   // shard listed/expected but not on disk
  BadHeader,     // wrong magic/version — not a shard at all
  TruncatedBlock,  // file ends mid-block (torn write); valid prefix kept
  CrcMismatch,   // stored checksum does not match payload bytes
};

struct ShardDamage {
  std::string file;
  ShardDamageKind kind = ShardDamageKind::MissingFile;
  int64_t rows_recovered = 0;  // rows salvaged from the valid prefix
};

const char* shard_damage_name(ShardDamageKind kind);

// ---------------------------------------------------------------------------
// One-shot h5lite shards (per-job output).
// ---------------------------------------------------------------------------

/// Write `num_shards` h5lite files named <prefix>.rankN.h5lt in parallel.
/// Returns the file paths. Row i goes to shard i % num_shards.
std::vector<std::string> write_sharded_results(const std::string& prefix, int num_shards,
                                               const std::vector<int64_t>& compound_ids,
                                               const std::vector<int64_t>& target_ids,
                                               const std::vector<int64_t>& pose_ids,
                                               const std::vector<float>& predictions);

/// Load all shards written by write_sharded_results back into flat arrays.
/// Damaged shards contribute nothing to the arrays but are *reported* in
/// `damage` — callers decide whether partial results are acceptable.
struct GatheredResults {
  std::vector<int64_t> compound_ids, target_ids, pose_ids;
  std::vector<float> predictions;
  std::vector<ShardDamage> damage;
  bool complete() const { return damage.empty(); }
};
GatheredResults read_sharded_results(const std::vector<std::string>& files);

// ---------------------------------------------------------------------------
// Append-mode campaign shards.
// ---------------------------------------------------------------------------

/// One work unit's worth of finished rows, framed and CRC'd as a unit.
struct ShardBlock {
  uint64_t unit_id = 0;
  std::vector<int64_t> compound_ids, target_ids, pose_ids;
  std::vector<float> predictions;

  size_t rows() const { return predictions.size(); }
};

/// Path of campaign shard `shard` under `prefix`.
std::string shard_stream_path(const std::string& prefix, int shard);
/// Path of the campaign shard manifest under `prefix`.
std::string shard_manifest_path(const std::string& prefix);

class ShardStream {
 public:
  /// Opens `path` for appending; writes the stream header if the file is
  /// new or empty. Throws std::runtime_error if the file cannot be opened.
  explicit ShardStream(std::string path);

  /// Append one block and flush it to the OS — after this returns, a
  /// process kill loses at most blocks appended *later*.
  void append(const ShardBlock& block);

  const std::string& path() const { return path_; }
  void close();

 private:
  std::string path_;
  std::ofstream out_;
};

struct ShardScan {
  std::vector<ShardBlock> blocks;    // valid prefix, in append order
  std::vector<ShardDamage> damage;   // empty, or one entry describing the tail
  int64_t rows() const;
};

/// Walk a shard stream, validating each block's CRC. Stops at the first
/// damaged byte and reports what was salvageable.
ShardScan scan_shard_stream(const std::string& path);

/// Rewrite `path` keeping only the valid blocks for which `keep(unit_id)`
/// is true (first occurrence per unit). Damaged tails are dropped. This is
/// how resume discards work units written after the last checkpoint.
void compact_shard_stream(const std::string& path, const std::function<bool(uint64_t)>& keep);

/// Crash simulation hook for tests and the campaign kill switch: chop the
/// last `bytes` off the file, as if the process died mid-append.
void tear_shard_tail(const std::string& path, size_t bytes);

/// Record per-shard row counts and whole-file CRCs in
/// <prefix>.manifest.h5lt (atomic write).
void write_shard_manifest(const std::string& prefix, int num_shards);

/// Re-check every shard against the manifest (existence + whole-file CRC).
/// Returns one damage entry per unhealthy shard; missing/corrupt manifest
/// is reported against the manifest path itself.
std::vector<ShardDamage> verify_shard_manifest(const std::string& prefix);

}  // namespace df::screen
