#include "screen/plan.h"

#include <algorithm>

#include "core/rng.h"

namespace df::screen {

namespace {
constexpr uint64_t kJobStreamTag = 0x4a4f4253ULL;  // "JOBS"
}  // namespace

RankPlan RankPlan::build(size_t total_poses, int poses_per_job, const JobConfig& job,
                         const ClusterConfig& cluster) {
  RankPlan plan;
  plan.total_poses = total_poses;
  plan.ranks_per_job = std::max(1, job.nodes) * std::max(1, job.gpus_per_node);
  plan.concurrent_jobs = std::max(1, cluster.num_nodes / std::max(1, job.nodes));
  const size_t per = static_cast<size_t>(std::max(1, poses_per_job));
  const size_t n_units = (total_poses + per - 1) / per;
  plan.units.reserve(n_units);
  for (size_t u = 0; u < n_units; ++u) {
    WorkUnit unit;
    unit.id = static_cast<uint32_t>(u);
    unit.pose_begin = u * per;
    unit.pose_end = std::min(total_poses, (u + 1) * per);
    unit.nodes = job.nodes;
    unit.ranks = plan.ranks_per_job;
    unit.slot = static_cast<int>(u % static_cast<size_t>(plan.concurrent_jobs));
    plan.units.push_back(unit);
  }
  return plan;
}

uint64_t unit_seed(uint64_t campaign_seed, uint32_t unit_id, int attempt) {
  return core::derive_stream(
      campaign_seed, kJobStreamTag,
      (static_cast<uint64_t>(unit_id) << 8) | static_cast<uint64_t>(attempt & 0xff));
}

}  // namespace df::screen
