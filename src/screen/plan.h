// RankPlan: the static partition of a campaign's pose list into work units,
// the §4.3 scheduling picture in miniature. Each unit is one scoring job
// (nodes x gpus ranks over a contiguous pose range) with a stable id; the
// cluster geometry determines how many such jobs Lassen would run
// concurrently ("another job takes its place" — a killed unit is simply
// resubmitted into its slot). Unit ids, not submission order, key every
// derived RNG stream, so the plan is the determinism anchor for
// checkpoint/resume and fault replay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "screen/cluster.h"
#include "screen/job.h"

namespace df::screen {

struct WorkUnit {
  uint32_t id = 0;          // stable index; keys RNG streams and checkpoints
  size_t pose_begin = 0;    // contiguous range into the campaign pose list
  size_t pose_end = 0;
  int nodes = 1;            // job width (drives the §4.3 failure rate)
  int ranks = 1;            // nodes * gpus_per_node
  int slot = 0;             // simulated scheduler slot on the cluster

  size_t poses() const { return pose_end - pose_begin; }
};

struct RankPlan {
  std::vector<WorkUnit> units;
  int ranks_per_job = 1;
  int concurrent_jobs = 1;   // how many such jobs the cluster fits at once
  size_t total_poses = 0;

  /// Partition `total_poses` into `poses_per_job`-sized units shaped by
  /// `job` (width) and `cluster` (slot count). Deterministic.
  static RankPlan build(size_t total_poses, int poses_per_job, const JobConfig& job,
                        const ClusterConfig& cluster);
};

/// Seed for the scoring job running (unit, attempt): a pure function of the
/// campaign seed and stable identifiers, never of pool-arrival order.
uint64_t unit_seed(uint64_t campaign_seed, uint32_t unit_id, int attempt);

}  // namespace df::screen
