// Simulated Lassen-like cluster description (DESIGN.md substitution #2).
// Node geometry follows the paper §3.2: 4 NVIDIA V100s, 44 Power9 cores and
// 256 GB per node; jobs are limited to 12 hours by the LSF scheduler. The
// per-job failure model encodes the §4.3 observation that inter-node
// communication instability grows sharply with job width.
#pragma once

namespace df::screen {

struct NodeSpec {
  int gpus = 4;
  int cpu_cores = 44;
  double gpu_memory_gb = 16.0;
  double node_memory_gb = 256.0;
};

struct ClusterConfig {
  int num_nodes = 792;           // Lassen
  NodeSpec node;
  double max_job_hours = 12.0;   // LSF run-time limit
};

/// Probability that a job of `nodes_per_job` nodes dies from the
/// Horovod/PyTorch instability the paper measured: ~2% at 1-2 nodes,
/// ~3% at 4, ~20% at 8.
double job_failure_probability(int nodes_per_job);

/// GPU-memory check: a model instance plus `batch_size` poses must fit on
/// one GPU. The paper: 1.5 GB model + 56-pose batches on a 16 GB V100.
bool batch_fits_gpu(double model_gb, double per_pose_gb, int batch_size, const NodeSpec& node);

}  // namespace df::screen
