// Simulated Lassen-like cluster description (DESIGN.md substitution #2).
// Node geometry follows the paper §3.2: 4 NVIDIA V100s, 44 Power9 cores and
// 256 GB per node; jobs are limited to 12 hours by the LSF scheduler. The
// per-job failure model encodes the §4.3 observation that inter-node
// communication instability grows sharply with job width, and the
// FaultInjector hierarchy turns that model into deterministic, replayable
// job deaths the campaign driver can schedule around.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

namespace df::screen {

struct NodeSpec {
  int gpus = 4;
  int cpu_cores = 44;
  double gpu_memory_gb = 16.0;
  double node_memory_gb = 256.0;
};

struct ClusterConfig {
  int num_nodes = 792;           // Lassen
  NodeSpec node;
  double max_job_hours = 12.0;   // LSF run-time limit
};

/// Probability that a job of `nodes_per_job` nodes dies from the
/// Horovod/PyTorch instability the paper measured: ~2% at 1-2 nodes,
/// ~3% at 4, ~20% at 8.
double job_failure_probability(int nodes_per_job);

/// GPU-memory check: a model instance plus `batch_size` poses must fit on
/// one GPU. The paper: 1.5 GB model + 56-pose batches on a 16 GB V100.
bool batch_fits_gpu(double model_gb, double per_pose_gb, int batch_size, const NodeSpec& node);

/// Decides which jobs die and where. Every decision is a pure function of
/// (campaign seed, work-unit id, attempt), never of wall-clock, thread
/// count, or submission order — a killed-and-resumed campaign replays the
/// exact failure history of an uninterrupted one, which is what makes
/// resumed == uninterrupted testable bit-for-bit.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Returns the rank that dies during attempt `attempt` of work unit
  /// `unit_id` on a `nodes`-wide, `ranks`-rank job, or -1 for a clean run.
  virtual int doomed_rank(uint64_t campaign_seed, uint32_t unit_id, int attempt, int nodes,
                          int ranks) = 0;
};

/// Samples the §4.3 width-dependent failure table through a stream derived
/// from (seed, unit, attempt).
class StochasticFaultInjector : public FaultInjector {
 public:
  int doomed_rank(uint64_t campaign_seed, uint32_t unit_id, int attempt, int nodes,
                  int ranks) override;
};

/// Test double: kills exactly the (unit, attempt) pairs it was told to,
/// at the rank it was told to. Everything else runs clean.
class ScriptedFaultInjector : public FaultInjector {
 public:
  void doom(uint32_t unit_id, int attempt, int rank) {
    doomed_[{unit_id, attempt}] = rank;
  }
  int doomed_rank(uint64_t /*campaign_seed*/, uint32_t unit_id, int attempt, int /*nodes*/,
                  int /*ranks*/) override {
    auto it = doomed_.find({unit_id, attempt});
    return it == doomed_.end() ? -1 : it->second;
  }

 private:
  std::map<std::pair<uint32_t, int>, int> doomed_;
};

}  // namespace df::screen
