#include "screen/writer.h"

#include <thread>

#include "io/h5lite.h"

namespace df::screen {

std::vector<std::string> write_sharded_results(const std::string& prefix, int num_shards,
                                               const std::vector<int64_t>& compound_ids,
                                               const std::vector<int64_t>& target_ids,
                                               const std::vector<int64_t>& pose_ids,
                                               const std::vector<float>& predictions) {
  const size_t n = predictions.size();
  std::vector<std::string> files(static_cast<size_t>(num_shards));
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    files[static_cast<size_t>(s)] = prefix + ".rank" + std::to_string(s) + ".h5lt";
    writers.emplace_back([&, s] {
      io::H5LiteFile f;
      std::vector<int64_t> c, t, p;
      std::vector<float> y;
      for (size_t i = static_cast<size_t>(s); i < n; i += static_cast<size_t>(num_shards)) {
        c.push_back(compound_ids[i]);
        t.push_back(target_ids[i]);
        p.push_back(pose_ids[i]);
        y.push_back(predictions[i]);
      }
      const int64_t rows = static_cast<int64_t>(y.size());
      f.put_ints("compound_id", {rows}, std::move(c));
      f.put_ints("target_id", {rows}, std::move(t));
      f.put_ints("pose_id", {rows}, std::move(p));
      f.put_floats("predicted_pk", {rows}, std::move(y));
      f.save(files[static_cast<size_t>(s)]);
    });
  }
  for (auto& w : writers) w.join();
  return files;
}

GatheredResults read_sharded_results(const std::vector<std::string>& files) {
  GatheredResults out;
  for (const std::string& path : files) {
    const io::H5LiteFile f = io::H5LiteFile::load(path);
    const auto& c = f.get("compound_id").ints();
    const auto& t = f.get("target_id").ints();
    const auto& p = f.get("pose_id").ints();
    const auto& y = f.get("predicted_pk").floats();
    out.compound_ids.insert(out.compound_ids.end(), c.begin(), c.end());
    out.target_ids.insert(out.target_ids.end(), t.begin(), t.end());
    out.pose_ids.insert(out.pose_ids.end(), p.begin(), p.end());
    out.predictions.insert(out.predictions.end(), y.begin(), y.end());
  }
  return out;
}

}  // namespace df::screen
