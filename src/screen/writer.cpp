#include "screen/writer.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <thread>

#include "io/h5lite.h"

namespace df::screen {

namespace fs = std::filesystem;

namespace {
constexpr char kStreamMagic[4] = {'D', 'F', 'S', 'H'};
constexpr uint32_t kStreamVersion = 1;
constexpr size_t kStreamHeaderBytes = 8;
// Per block: u64 unit_id + u64 nrows, then the columnar payload, then a
// u32 CRC over everything from unit_id onward.
constexpr size_t kBlockPreludeBytes = 16;
constexpr size_t kBytesPerRow = 3 * sizeof(int64_t) + sizeof(float);

template <typename T>
void append_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void append_array(std::string& buf, const std::vector<T>& v) {
  buf.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("shard: cannot open for read: " + path);
  const std::streamsize n = f.tellg();
  f.seekg(0);
  std::string bytes(static_cast<size_t>(n), '\0');
  f.read(bytes.data(), n);
  if (!f) throw std::runtime_error("shard: read failed: " + path);
  return bytes;
}

uint32_t file_crc32(const std::string& path) {
  const std::string bytes = read_file_bytes(path);
  return io::crc32(bytes.data(), bytes.size());
}

ShardDamageKind classify(const io::H5LiteError& e) {
  switch (e.kind()) {
    case io::H5LiteError::Kind::Open:
      return ShardDamageKind::MissingFile;
    case io::H5LiteError::Kind::Format:
      return ShardDamageKind::BadHeader;
    case io::H5LiteError::Kind::Truncated:
      return ShardDamageKind::TruncatedBlock;
    case io::H5LiteError::Kind::Crc:
      return ShardDamageKind::CrcMismatch;
  }
  return ShardDamageKind::BadHeader;
}
}  // namespace

const char* shard_damage_name(ShardDamageKind kind) {
  switch (kind) {
    case ShardDamageKind::MissingFile:
      return "missing-file";
    case ShardDamageKind::BadHeader:
      return "bad-header";
    case ShardDamageKind::TruncatedBlock:
      return "truncated-block";
    case ShardDamageKind::CrcMismatch:
      return "crc-mismatch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// One-shot h5lite shards.
// ---------------------------------------------------------------------------

std::vector<std::string> write_sharded_results(const std::string& prefix, int num_shards,
                                               const std::vector<int64_t>& compound_ids,
                                               const std::vector<int64_t>& target_ids,
                                               const std::vector<int64_t>& pose_ids,
                                               const std::vector<float>& predictions) {
  const size_t n = predictions.size();
  std::vector<std::string> files(static_cast<size_t>(num_shards));
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    files[static_cast<size_t>(s)] = prefix + ".rank" + std::to_string(s) + ".h5lt";
    writers.emplace_back([&, s] {
      io::H5LiteFile f;
      std::vector<int64_t> c, t, p;
      std::vector<float> y;
      for (size_t i = static_cast<size_t>(s); i < n; i += static_cast<size_t>(num_shards)) {
        c.push_back(compound_ids[i]);
        t.push_back(target_ids[i]);
        p.push_back(pose_ids[i]);
        y.push_back(predictions[i]);
      }
      const int64_t rows = static_cast<int64_t>(y.size());
      f.put_ints("compound_id", {rows}, std::move(c));
      f.put_ints("target_id", {rows}, std::move(t));
      f.put_ints("pose_id", {rows}, std::move(p));
      f.put_floats("predicted_pk", {rows}, std::move(y));
      f.save(files[static_cast<size_t>(s)]);
    });
  }
  for (auto& w : writers) w.join();
  return files;
}

GatheredResults read_sharded_results(const std::vector<std::string>& files) {
  GatheredResults out;
  for (const std::string& path : files) {
    if (!fs::exists(path)) {
      out.damage.push_back({path, ShardDamageKind::MissingFile, 0});
      continue;
    }
    try {
      const io::H5LiteFile f = io::H5LiteFile::load(path);
      const auto& c = f.get("compound_id").ints();
      const auto& t = f.get("target_id").ints();
      const auto& p = f.get("pose_id").ints();
      const auto& y = f.get("predicted_pk").floats();
      out.compound_ids.insert(out.compound_ids.end(), c.begin(), c.end());
      out.target_ids.insert(out.target_ids.end(), t.begin(), t.end());
      out.pose_ids.insert(out.pose_ids.end(), p.begin(), p.end());
      out.predictions.insert(out.predictions.end(), y.begin(), y.end());
    } catch (const io::H5LiteError& e) {
      out.damage.push_back({path, classify(e), 0});
    } catch (const std::exception&) {
      out.damage.push_back({path, ShardDamageKind::BadHeader, 0});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Append-mode campaign shards.
// ---------------------------------------------------------------------------

std::string shard_stream_path(const std::string& prefix, int shard) {
  return prefix + ".rank" + std::to_string(shard) + ".dfsh";
}

std::string shard_manifest_path(const std::string& prefix) {
  return prefix + ".manifest.h5lt";
}

ShardStream::ShardStream(std::string path) : path_(std::move(path)) {
  std::error_code ec;
  const bool fresh = !fs::exists(path_, ec) || fs::file_size(path_, ec) == 0;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) throw std::runtime_error("shard: cannot open for append: " + path_);
  if (fresh) {
    out_.write(kStreamMagic, 4);
    out_.write(reinterpret_cast<const char*>(&kStreamVersion), sizeof(kStreamVersion));
    out_.flush();
  }
}

void ShardStream::append(const ShardBlock& block) {
  std::string buf;
  buf.reserve(kBlockPreludeBytes + block.rows() * kBytesPerRow + sizeof(uint32_t));
  append_pod(buf, block.unit_id);
  append_pod(buf, static_cast<uint64_t>(block.rows()));
  append_array(buf, block.compound_ids);
  append_array(buf, block.target_ids);
  append_array(buf, block.pose_ids);
  append_array(buf, block.predictions);
  const uint32_t crc = io::crc32(buf.data(), buf.size());
  append_pod(buf, crc);
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("shard: append failed: " + path_);
}

void ShardStream::close() {
  if (out_.is_open()) out_.close();
}

int64_t ShardScan::rows() const {
  int64_t n = 0;
  for (const ShardBlock& b : blocks) n += static_cast<int64_t>(b.rows());
  return n;
}

ShardScan scan_shard_stream(const std::string& path) {
  ShardScan scan;
  if (!fs::exists(path)) {
    scan.damage.push_back({path, ShardDamageKind::MissingFile, 0});
    return scan;
  }
  const std::string bytes = read_file_bytes(path);
  if (bytes.size() < kStreamHeaderBytes ||
      std::memcmp(bytes.data(), kStreamMagic, 4) != 0) {
    scan.damage.push_back({path, ShardDamageKind::BadHeader, 0});
    return scan;
  }
  uint32_t version;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kStreamVersion) {
    scan.damage.push_back({path, ShardDamageKind::BadHeader, 0});
    return scan;
  }

  size_t pos = kStreamHeaderBytes;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kBlockPreludeBytes) {
      scan.damage.push_back({path, ShardDamageKind::TruncatedBlock, scan.rows()});
      return scan;
    }
    uint64_t unit_id, nrows;
    std::memcpy(&unit_id, bytes.data() + pos, sizeof(unit_id));
    std::memcpy(&nrows, bytes.data() + pos + 8, sizeof(nrows));
    // A corrupted row count reads as an impossibly large block; both cases
    // end the valid prefix here.
    if (nrows > (remaining - kBlockPreludeBytes) / kBytesPerRow) {
      scan.damage.push_back({path, ShardDamageKind::TruncatedBlock, scan.rows()});
      return scan;
    }
    const size_t payload = kBlockPreludeBytes + static_cast<size_t>(nrows) * kBytesPerRow;
    if (remaining < payload + sizeof(uint32_t)) {
      scan.damage.push_back({path, ShardDamageKind::TruncatedBlock, scan.rows()});
      return scan;
    }
    uint32_t stored;
    std::memcpy(&stored, bytes.data() + pos + payload, sizeof(stored));
    if (stored != io::crc32(bytes.data() + pos, payload)) {
      scan.damage.push_back({path, ShardDamageKind::CrcMismatch, scan.rows()});
      return scan;
    }
    ShardBlock b;
    b.unit_id = unit_id;
    const size_t n = static_cast<size_t>(nrows);
    b.compound_ids.resize(n);
    b.target_ids.resize(n);
    b.pose_ids.resize(n);
    b.predictions.resize(n);
    size_t off = pos + kBlockPreludeBytes;
    std::memcpy(b.compound_ids.data(), bytes.data() + off, n * sizeof(int64_t));
    off += n * sizeof(int64_t);
    std::memcpy(b.target_ids.data(), bytes.data() + off, n * sizeof(int64_t));
    off += n * sizeof(int64_t);
    std::memcpy(b.pose_ids.data(), bytes.data() + off, n * sizeof(int64_t));
    off += n * sizeof(int64_t);
    std::memcpy(b.predictions.data(), bytes.data() + off, n * sizeof(float));
    scan.blocks.push_back(std::move(b));
    pos += payload + sizeof(uint32_t);
  }
  return scan;
}

void compact_shard_stream(const std::string& path, const std::function<bool(uint64_t)>& keep) {
  const ShardScan scan = scan_shard_stream(path);
  if (!fs::exists(path)) return;  // nothing to compact
  // A unit can legitimately appear twice (its first block lost a race with
  // a kill and the unit was re-run): the LAST append is the authoritative
  // one. Select last occurrences, preserving append order.
  std::vector<bool> selected(scan.blocks.size(), false);
  std::vector<uint64_t> seen;
  size_t kept = 0;
  for (size_t i = scan.blocks.size(); i-- > 0;) {
    const uint64_t unit = scan.blocks[i].unit_id;
    if (!keep(unit)) continue;
    if (std::find(seen.begin(), seen.end(), unit) != seen.end()) continue;
    seen.push_back(unit);
    selected[i] = true;
    ++kept;
  }
  // Healthy file keeping everything: skip the rewrite entirely.
  if (scan.damage.empty() && kept == scan.blocks.size()) return;
  const std::string tmp = path + ".tmp";
  {
    std::error_code ec;
    fs::remove(tmp, ec);
    ShardStream out(tmp);
    for (size_t i = 0; i < scan.blocks.size(); ++i) {
      if (selected[i]) out.append(scan.blocks[i]);
    }
    out.close();
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw std::runtime_error("shard: compact rename failed: " + path);
}

void tear_shard_tail(const std::string& path, size_t bytes) {
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) return;
  const uintmax_t keep = size > bytes ? size - bytes : 0;
  fs::resize_file(path, keep, ec);
}

void write_shard_manifest(const std::string& prefix, int num_shards) {
  io::H5LiteFile m;
  std::vector<int64_t> rows, crcs, sizes;
  for (int s = 0; s < num_shards; ++s) {
    const std::string path = shard_stream_path(prefix, s);
    if (!fs::exists(path)) {
      // Record the hole; verify_shard_manifest reports it as MissingFile.
      rows.push_back(0);
      crcs.push_back(0);
      sizes.push_back(0);
      continue;
    }
    const ShardScan scan = scan_shard_stream(path);
    rows.push_back(scan.rows());
    crcs.push_back(static_cast<int64_t>(file_crc32(path)));
    sizes.push_back(static_cast<int64_t>(fs::file_size(path)));
  }
  const int64_t n = static_cast<int64_t>(num_shards);
  m.put_ints("num_shards", {1}, {n});
  m.put_ints("rows", {n}, std::move(rows));
  m.put_ints("crc", {n}, std::move(crcs));
  m.put_ints("bytes", {n}, std::move(sizes));
  m.save_atomic(shard_manifest_path(prefix));
}

std::vector<ShardDamage> verify_shard_manifest(const std::string& prefix) {
  std::vector<ShardDamage> damage;
  const std::string mpath = shard_manifest_path(prefix);
  io::H5LiteFile m;
  int64_t n = 0;
  std::vector<int64_t> crcs, sizes;
  try {
    m = io::H5LiteFile::load(mpath);
    n = m.get("num_shards").ints().at(0);
    crcs = m.get("crc").ints();
    sizes = m.get("bytes").ints();
    if (crcs.size() != static_cast<size_t>(n) || sizes.size() != static_cast<size_t>(n)) {
      throw std::runtime_error("manifest shard-count mismatch");
    }
  } catch (const io::H5LiteError& e) {
    damage.push_back({mpath, classify(e), 0});
    return damage;
  } catch (const std::exception&) {
    // Valid container, wrong contents (e.g. another .h5lt copied over it).
    damage.push_back({mpath, ShardDamageKind::BadHeader, 0});
    return damage;
  }
  for (int64_t s = 0; s < n; ++s) {
    const std::string path = shard_stream_path(prefix, static_cast<int>(s));
    if (!fs::exists(path)) {
      damage.push_back({path, ShardDamageKind::MissingFile, 0});
      continue;
    }
    const int64_t size = static_cast<int64_t>(fs::file_size(path));
    const uint32_t crc = file_crc32(path);
    if (crc == static_cast<uint32_t>(crcs[static_cast<size_t>(s)])) continue;
    const ShardScan scan = scan_shard_stream(path);
    damage.push_back({path,
                      size < sizes[static_cast<size_t>(s)] ? ShardDamageKind::TruncatedBlock
                                                           : ShardDamageKind::CrcMismatch,
                      scan.rows()});
  }
  return damage;
}

}  // namespace df::screen
