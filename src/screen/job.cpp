#include "screen/job.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/rng.h"
#include "core/threadpool.h"
#include "io/log.h"
#include "screen/writer.h"
#include "serve/service.h"

namespace df::screen {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

JobReport FusionScoringJob::run(const std::vector<PoseWorkItem>& items,
                                serve::ScoringService& service,
                                const std::string& scorer) const {
  JobReport report;
  const int ranks = cfg_.nodes * cfg_.gpus_per_node;
  core::Rng job_rng(cfg_.seed);

  // Failure injection: decide up-front which rank (if any) dies mid-eval.
  // A campaign-supplied verdict (doomed_rank) wins over local sampling.
  int doomed_rank = -1;
  if (cfg_.doomed_rank.has_value()) {
    doomed_rank = *cfg_.doomed_rank;
  } else if (cfg_.inject_failures && job_rng.bernoulli(job_failure_probability(cfg_.nodes))) {
    doomed_rank = static_cast<int>(job_rng.randint(0, ranks - 1));
  }

  // --- startup phase: make sure every service worker holds a replica of the
  // scorer (the paper's 20 minutes of module loading and model placement —
  // paid once per service, not once per job).
  auto t0 = std::chrono::steady_clock::now();
  service.warmup(scorer);
  report.startup_seconds = seconds_since(t0);

  // --- evaluation phase: each rank streams its contiguous slice to the
  // service and awaits the scores.
  t0 = std::chrono::steady_clock::now();
  struct RankOutput {
    std::vector<int64_t> compound, target, pose;
    std::vector<float> pred;
    bool died = false;
  };
  std::vector<RankOutput> per_rank(static_cast<size_t>(ranks));
  const auto run_rank = [&](int r) {
    RankOutput& out = per_rank[static_cast<size_t>(r)];
    // A doomed rank takes its whole share down with it — node failures don't
    // care how much work was assigned, and a failed job flushes nothing.
    if (r == doomed_rank) {
      out.died = true;
      return;
    }
    const size_t n = items.size();
    const size_t lo = n * static_cast<size_t>(r) / static_cast<size_t>(ranks);
    const size_t hi = n * static_cast<size_t>(r + 1) / static_cast<size_t>(ranks);
    if (lo == hi) return;
    serve::ScoreRequest req;
    req.scorer = scorer;
    req.client = "rank" + std::to_string(r);
    req.poses.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      const PoseWorkItem& item = items[i];
      serve::PoseInput pose;
      pose.ligand = item.ligand;
      pose.pocket = item.pocket;
      pose.site_center = item.site_center;
      req.poses.push_back(std::move(pose));
      out.compound.push_back(item.compound_id);
      out.target.push_back(item.target_id);
      out.pose.push_back(item.pose_id);
    }
    serve::ScoreResponse resp = service.submit(std::move(req)).get();
    if (resp.error != serve::ScoreError::kNone) {
      throw std::runtime_error("scoring service error (" +
                               std::string(serve::score_error_name(resp.error)) +
                               ") for rank " + std::to_string(r) + ": " + resp.message);
    }
    out.pred = std::move(resp.scores);
  };
  if (cfg_.pool != nullptr) {
    // Shared pool: rank clients become pool jobs; a rank that throws
    // surfaces at the wait_idle join instead of taking the process down.
    // Ranks block on service futures, but service workers are independent
    // threads, so a full pool still makes progress.
    for (int r = 0; r < ranks; ++r) cfg_.pool->submit([&run_rank, r] { run_rank(r); });
    cfg_.pool->wait_idle();
  } else {
    // Raw threads: capture the first rank exception and rethrow at the
    // join, mirroring the pool path — an uncaught throw in a std::thread
    // would terminate the process.
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&run_rank, &error_mu, &first_error, r] {
        try {
          run_rank(r);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  report.eval_seconds = seconds_since(t0);

  for (int r = 0; r < ranks; ++r) {
    if (per_rank[static_cast<size_t>(r)].died) {
      report.failed = true;
      report.failed_rank = r;
      io::log_warn("fusion job failed at rank " + std::to_string(r) + " (" +
                   std::to_string(cfg_.nodes) + " nodes)");
      return report;  // no output on failure — results only flush at the end
    }
  }

  // --- allgather: concatenate per-rank results (MPI allgather analogue).
  t0 = std::chrono::steady_clock::now();
  for (const RankOutput& out : per_rank) {
    report.compound_ids.insert(report.compound_ids.end(), out.compound.begin(), out.compound.end());
    report.target_ids.insert(report.target_ids.end(), out.target.begin(), out.target.end());
    report.pose_ids.insert(report.pose_ids.end(), out.pose.begin(), out.pose.end());
    report.predictions.insert(report.predictions.end(), out.pred.begin(), out.pred.end());
  }
  report.poses_scored = static_cast<int>(report.predictions.size());

  // --- output phase: shard across ranks and write in parallel.
  if (!cfg_.output_prefix.empty()) {
    report.output_files = write_sharded_results(cfg_.output_prefix, ranks, report.compound_ids,
                                                report.target_ids, report.pose_ids,
                                                report.predictions);
  }
  report.output_seconds = seconds_since(t0);
  report.poses_per_second = report.eval_seconds > 0
                                ? static_cast<double>(report.poses_scored) / report.eval_seconds
                                : 0.0;
  return report;
}

}  // namespace df::screen
