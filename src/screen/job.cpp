#include "screen/job.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "core/rng.h"
#include "core/threadpool.h"
#include "io/log.h"
#include "screen/writer.h"

namespace df::screen {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

JobReport FusionScoringJob::run(const std::vector<PoseWorkItem>& items,
                                const ModelFactory& make_model) const {
  JobReport report;
  const int ranks = cfg_.nodes * cfg_.gpus_per_node;
  core::Rng job_rng(cfg_.seed);

  // Failure injection: decide up-front which rank (if any) dies mid-eval.
  // A campaign-supplied verdict (doomed_rank) wins over local sampling.
  int doomed_rank = -1;
  if (cfg_.doomed_rank.has_value()) {
    doomed_rank = *cfg_.doomed_rank;
  } else if (cfg_.inject_failures && job_rng.bernoulli(job_failure_probability(cfg_.nodes))) {
    doomed_rank = static_cast<int>(job_rng.randint(0, ranks - 1));
  }

  // --- startup phase: construct per-rank models + featurizers (the
  // paper's 20 minutes of module loading and model placement).
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<models::Regressor>> rank_models;
  rank_models.reserve(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    rank_models.push_back(make_model());
    rank_models.back()->set_training(false);
  }
  const chem::Voxelizer voxelizer(cfg_.voxel);
  const chem::GraphFeaturizer featurizer(cfg_.graph);
  report.startup_seconds = seconds_since(t0);

  // --- evaluation phase: each rank scores its contiguous slice in batches.
  t0 = std::chrono::steady_clock::now();
  struct RankOutput {
    std::vector<int64_t> compound, target, pose;
    std::vector<float> pred;
    bool died = false;
  };
  std::vector<RankOutput> per_rank(static_cast<size_t>(ranks));
  const size_t batch_cap = static_cast<size_t>(std::max(1, cfg_.poses_per_batch));
  const auto run_rank = [&](int r) {
    RankOutput& out = per_rank[static_cast<size_t>(r)];
    const size_t n = items.size();
    const size_t lo = n * static_cast<size_t>(r) / static_cast<size_t>(ranks);
    const size_t hi = n * static_cast<size_t>(r + 1) / static_cast<size_t>(ranks);
    models::Regressor& model = *rank_models[static_cast<size_t>(r)];
    // A doomed rank dies halfway through its share (immediately if the
    // share is empty or a single pose — node failures don't care how much
    // work was assigned).
    const size_t die_at = (hi - lo) / 2;
    // Featurize into a pose batch and score `poses_per_batch` poses per
    // model forward — the conv/dense trunks amortize one gemm per batch.
    std::vector<data::Sample> batch;
    batch.reserve(std::min(batch_cap, hi - lo));
    const auto flush = [&] {
      if (batch.empty()) return;
      std::vector<const data::Sample*> ptrs;
      ptrs.reserve(batch.size());
      for (const data::Sample& s : batch) ptrs.push_back(&s);
      const std::vector<float> preds = model.predict_batch(ptrs);
      out.pred.insert(out.pred.end(), preds.begin(), preds.end());
      batch.clear();
    };
    for (size_t i = lo; i < hi; ++i) {
      if (r == doomed_rank && (i - lo) == die_at) {
        out.died = true;
        return;
      }
      const PoseWorkItem& item = items[i];
      data::Sample s;
      s.voxel = voxelizer.voxelize(item.ligand, *item.pocket, item.site_center);
      s.graph = featurizer.featurize(item.ligand, *item.pocket);
      s.label = 0.0f;
      out.compound.push_back(item.compound_id);
      out.target.push_back(item.target_id);
      out.pose.push_back(item.pose_id);
      batch.push_back(std::move(s));
      if (batch.size() >= batch_cap) flush();
    }
    flush();
    if (r == doomed_rank && lo == hi) out.died = true;  // empty-share rank still dies
  };
  if (cfg_.pool != nullptr) {
    // Shared pool: ranks become pool jobs; a rank that throws surfaces at
    // the wait_idle join instead of taking the process down.
    for (int r = 0; r < ranks; ++r) cfg_.pool->submit([&run_rank, r] { run_rank(r); });
    cfg_.pool->wait_idle();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(ranks));
    for (int r = 0; r < ranks; ++r) threads.emplace_back([&run_rank, r] { run_rank(r); });
    for (auto& t : threads) t.join();
  }
  report.eval_seconds = seconds_since(t0);

  for (int r = 0; r < ranks; ++r) {
    if (per_rank[static_cast<size_t>(r)].died) {
      report.failed = true;
      report.failed_rank = r;
      io::log_warn("fusion job failed at rank " + std::to_string(r) + " (" +
                   std::to_string(cfg_.nodes) + " nodes)");
      return report;  // no output on failure — results only flush at the end
    }
  }

  // --- allgather: concatenate per-rank results (MPI allgather analogue).
  t0 = std::chrono::steady_clock::now();
  for (const RankOutput& out : per_rank) {
    report.compound_ids.insert(report.compound_ids.end(), out.compound.begin(), out.compound.end());
    report.target_ids.insert(report.target_ids.end(), out.target.begin(), out.target.end());
    report.pose_ids.insert(report.pose_ids.end(), out.pose.begin(), out.pose.end());
    report.predictions.insert(report.predictions.end(), out.pred.begin(), out.pred.end());
  }
  report.poses_scored = static_cast<int>(report.predictions.size());

  // --- output phase: shard across ranks and write in parallel.
  if (!cfg_.output_prefix.empty()) {
    report.output_files = write_sharded_results(cfg_.output_prefix, ranks, report.compound_ids,
                                                report.target_ids, report.pose_ids,
                                                report.predictions);
  }
  report.output_seconds = seconds_since(t0);
  report.poses_per_second = report.eval_seconds > 0
                                ? static_cast<double>(report.poses_scored) / report.eval_seconds
                                : 0.0;
  return report;
}

}  // namespace df::screen
