// Analytic throughput model of the screening architecture, calibrated by a
// measured per-rank scoring rate. This is how we regenerate the paper's
// Table 7 (single job vs 125-job peak) and Figure 4 (strong scaling over
// nodes x batch size) without 500 Lassen nodes: job time =
// startup(nodes) + poses / (ranks * rate * batch_efficiency) + output,
// with the §4.3 failure probabilities determining expected wasted work.
#pragma once

#include <vector>

#include "screen/cluster.h"

namespace df::screen {

struct ScaleModelConfig {
  /// Paper-measured defaults for a 16-rank (4-node) job on 2M poses:
  /// 20 min startup, 280 min eval, 6.5 min output => 6.75 poses/s/rank.
  double per_rank_poses_per_second = 6.75;
  double startup_minutes_base = 18.0;
  double startup_minutes_per_node = 0.5;   // module loads scale mildly
  double output_minutes = 6.5;
  /// CPU->GPU transfer efficiency vs batch size: eff(b) = b / (b + c).
  double batch_efficiency_constant = 0.5;
  int gpus_per_node = 4;
};

struct JobTimeBreakdown {
  double startup_minutes = 0;
  double eval_minutes = 0;
  double output_minutes = 0;
  double total_minutes() const { return startup_minutes + eval_minutes + output_minutes; }
  double poses_per_second = 0;   // whole-job average
};

struct PeakThroughput {
  int parallel_jobs = 0;
  double poses_per_second = 0;
  double poses_per_hour = 0;
  double compounds_per_hour = 0;  // at `poses_per_compound`
};

class ThroughputModel {
 public:
  explicit ThroughputModel(ScaleModelConfig cfg = {}) : cfg_(cfg) {}

  /// Calibrate from a measured mini-job: rate per rank, in poses/second.
  void calibrate(double measured_per_rank_rate) {
    cfg_.per_rank_poses_per_second = measured_per_rank_rate;
  }

  double batch_efficiency(int batch_size) const;

  JobTimeBreakdown job_time(long poses, int nodes, int batch_size) const;

  /// Expected job time including failure-and-rerun overhead (a failed job
  /// writes nothing and is fully rerun).
  double expected_minutes_with_failures(long poses, int nodes, int batch_size) const;

  PeakThroughput peak(int parallel_jobs, long poses_per_job, int nodes_per_job, int batch_size,
                      double poses_per_compound = 10.0) const;

  const ScaleModelConfig& config() const { return cfg_; }

 private:
  ScaleModelConfig cfg_;
};

}  // namespace df::screen
