#include "screen/controller.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "io/log.h"

namespace df::screen {

namespace {
bool serves_scorer(const serve::wire::HelloPayload& hello, const std::string& scorer) {
  return std::find(hello.scorers.begin(), hello.scorers.end(), scorer) != hello.scorers.end();
}
}  // namespace

struct ClusterController::Node {
  std::string host;
  int port = 0;
  std::string node_id;
  std::unique_ptr<serve::ScoreClient> client;
  bool healthy = true;
  bool draining = false;
  int ping_misses = 0;
  int inflight = 0;          // dispatches currently on the wire
  uint64_t units_scored = 0;
  std::vector<std::thread> dispatchers;
};

ClusterController::ClusterController(ControllerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.inflight_per_node < 1) cfg_.inflight_per_node = 1;
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

ClusterController::~ClusterController() { stop(); }

void ClusterController::stop() {
  std::vector<Node*> nodes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    for (auto& n : nodes_) nodes.push_back(n.get());
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  // Wake dispatchers blocked mid-request on the wire.
  for (Node* n : nodes) {
    if (n->client) n->client->close();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (Node* n : nodes) {
    for (auto& t : n->dispatchers) {
      if (t.joinable()) t.join();
    }
  }
}

bool ClusterController::register_node(const std::string& host, int port, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (error) *error = "controller stopped";
      return false;
    }
    for (const auto& n : nodes_) {
      if (n->host == host && n->port == port && !n->draining) {
        if (error) *error = "node already registered: " + host + ":" + std::to_string(port);
        return false;
      }
    }
  }

  serve::ClientConfig cc = cfg_.client;
  cc.host = host;
  cc.port = port;
  // One wire slot per dispatcher plus one spare so heartbeat pings land on a
  // live connection instead of reporting Busy whenever the node is loaded.
  cc.connections = cfg_.inflight_per_node + 1;
  // The controller IS the retry layer: a failed dispatch re-queues the unit
  // for another node, so the client must fail fast, not mask deaths.
  cc.max_retries = 0;
  auto client = std::make_unique<serve::ScoreClient>(cc);

  serve::wire::HelloPayload hello;
  std::string hello_error;
  if (!client->hello(&hello, &hello_error)) {
    if (error) *error = "node " + host + ":" + std::to_string(port) + ": " + hello_error;
    return false;
  }
  if (!serves_scorer(hello, cfg_.scorer)) {
    if (error) {
      *error = "node " + hello.node_id + " does not serve scorer '" + cfg_.scorer + "'";
    }
    return false;
  }
  if (cfg_.require_ordered && !hello.ordered_stream) {
    if (error) {
      *error = "node " + hello.node_id + " is not in ordered-stream mode; the "
               "campaign determinism contract requires it";
    }
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (poses_per_batch_ == 0) {
    poses_per_batch_ = static_cast<int>(hello.poses_per_batch);
    ordered_ = hello.ordered_stream;
  } else if (poses_per_batch_ != static_cast<int>(hello.poses_per_batch)) {
    // Mixed batch geometry would split requests differently per node —
    // scores would stay bit-identical (batch-invariance pin) but the
    // checkpoint records one batch size; refuse the confusion.
    if (error) {
      *error = "node " + hello.node_id + " batches " + std::to_string(hello.poses_per_batch) +
               " poses/request but the cluster batches " + std::to_string(poses_per_batch_);
    }
    return false;
  }

  auto node = std::make_unique<Node>();
  node->host = host;
  node->port = port;
  node->node_id = hello.node_id;
  node->client = std::move(client);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  for (int i = 0; i < cfg_.inflight_per_node; ++i) {
    raw->dispatchers.emplace_back([this, raw] { dispatch_loop(raw); });
  }
  return true;
}

void ClusterController::submit_unit(uint32_t unit_id, std::vector<serve::PoseInput> poses) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ClusterController: submit after stop");
    queue_.push_back(Unit{unit_id, std::move(poses)});
    ++outstanding_;
    ++stats_.units_submitted;
  }
  // notify_all, not notify_one: draining/unhealthy dispatchers and the
  // heartbeat's wait_for share this cv. A single notify can land on a waiter
  // whose predicate is false — it re-waits, the signal is consumed, and an
  // eligible dispatcher never learns the queue is non-empty.
  work_cv_.notify_all();
}

UnitResult ClusterController::wait_unit() {
  std::unique_lock<std::mutex> lock(mu_);
  // A stopped controller never hands out verdicts — leftovers belong to an
  // aborted run and must not leak into a resumed one.
  if (stop_) throw std::runtime_error("ClusterController: stopped");
  if (outstanding_ == 0) {
    throw std::runtime_error("ClusterController: wait_unit with nothing outstanding");
  }
  done_cv_.wait(lock, [this] { return !done_.empty() || stop_; });
  if (stop_ || done_.empty()) {
    throw std::runtime_error("ClusterController: stopped while waiting for units");
  }
  UnitResult r = std::move(done_.front());
  done_.pop_front();
  --outstanding_;
  return r;
}

size_t ClusterController::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

bool ClusterController::drain_node(const std::string& host, int port) {
  Node* node = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& n : nodes_) {
      if (n->host == host && n->port == port && !n->draining) {
        node = n.get();
        break;
      }
    }
    if (node == nullptr) return false;
    node->draining = true;  // dispatchers stop pulling work for it
    done_cv_.wait(lock, [&] { return node->inflight == 0 || stop_; });
  }
  work_cv_.notify_all();
  // Ask the node itself to stop accepting work — best effort; it may serve
  // other controllers and answers the ack once its own in-flight hits zero.
  std::string error;
  if (!node->client->drain(cfg_.client.io_timeout_ms, &error)) {
    io::log_warn("cluster: drain of " + node->node_id + " not acknowledged: " + error);
  }
  return true;
}

std::vector<NodeStatus> ClusterController::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeStatus> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    NodeStatus s;
    s.host = n->host;
    s.port = n->port;
    s.node_id = n->node_id;
    s.healthy = n->healthy && !n->draining;
    s.draining = n->draining;
    s.units_scored = n->units_scored;
    out.push_back(std::move(s));
  }
  return out;
}

int ClusterController::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& n : nodes_) {
    if (n->healthy && !n->draining) ++count;
  }
  return count;
}

int ClusterController::poses_per_batch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poses_per_batch_;
}

bool ClusterController::ordered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_;
}

ControllerStats ClusterController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ClusterController::mark_unhealthy(Node* node) {
  if (node->healthy) {
    node->healthy = false;
    ++stats_.node_deaths;
    io::log_warn("cluster: node " + node->node_id + " unhealthy; re-queueing its work");
  }
}

void ClusterController::dispatch_loop(Node* node) {
  for (;;) {
    Unit unit;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (!queue_.empty() && node->healthy && !node->draining);
      });
      if (stop_) return;
      unit = std::move(queue_.front());
      queue_.pop_front();
      ++node->inflight;
      ++stats_.dispatches;
    }

    serve::ScoreRequest req;
    req.scorer = cfg_.scorer;
    req.client = "cluster:" + std::to_string(unit.id);
    req.poses = unit.poses;  // pockets borrowed; submitter keeps them alive
    serve::ScoreResponse resp = node->client->score(req);

    std::unique_lock<std::mutex> lock(mu_);
    --node->inflight;
    if (node->inflight == 0) done_cv_.notify_all();

    const bool node_fault = resp.error == serve::ScoreError::kTransport ||
                            resp.error == serve::ScoreError::kTimeout ||
                            resp.error == serve::ScoreError::kShutdown;
    if (node_fault && !stop_) {
      // The node, not the unit, is the problem: transport death, a deadline
      // the node could not meet, or a drain race. Put the unit back at the
      // front — it was next in line — and let another node take it.
      mark_unhealthy(node);
      queue_.push_front(std::move(unit));
      ++stats_.requeues;
      lock.unlock();
      work_cv_.notify_all();
      continue;
    }

    UnitResult result;
    result.unit_id = unit.id;
    result.ok = resp.error == serve::ScoreError::kNone;
    result.error = resp.error;
    result.message = std::move(resp.message);
    result.scores = std::move(resp.scores);
    if (result.ok) ++node->units_scored;
    ++stats_.units_finished;
    done_.push_back(std::move(result));
    lock.unlock();
    done_cv_.notify_all();
  }
}

void ClusterController::heartbeat_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      cfg_.heartbeat_interval_ms > 0 ? cfg_.heartbeat_interval_ms : 100.0);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    std::vector<Node*> nodes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& n : nodes_) {
        if (!n->draining) nodes.push_back(n.get());
      }
    }
    for (Node* node : nodes) {
      const serve::PingResult ping = node->client->ping(cfg_.heartbeat_interval_ms);
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      ++stats_.heartbeats;
      if (ping.status == serve::PingResult::Status::kFail) {
        ++stats_.heartbeat_failures;
        ++node->ping_misses;
        if (node->ping_misses >= cfg_.heartbeat_misses) mark_unhealthy(node);
        continue;
      }
      // Ok or Busy: the node answered (or is saturated serving) — alive.
      node->ping_misses = 0;
      if (!node->healthy) {
        node->healthy = true;
        ++stats_.node_revivals;
        io::log_info("cluster: node " + node->node_id + " healthy again");
        work_cv_.notify_all();
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    work_cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

}  // namespace df::screen
