#include "screen/scale_model.h"

namespace df::screen {

double ThroughputModel::batch_efficiency(int batch_size) const {
  return static_cast<double>(batch_size) /
         (static_cast<double>(batch_size) + cfg_.batch_efficiency_constant);
}

JobTimeBreakdown ThroughputModel::job_time(long poses, int nodes, int batch_size) const {
  JobTimeBreakdown out;
  const int ranks = nodes * cfg_.gpus_per_node;
  out.startup_minutes = cfg_.startup_minutes_base + cfg_.startup_minutes_per_node * nodes;
  const double rate = cfg_.per_rank_poses_per_second * ranks * batch_efficiency(batch_size);
  out.eval_minutes = static_cast<double>(poses) / rate / 60.0;
  out.output_minutes = cfg_.output_minutes;
  out.poses_per_second = static_cast<double>(poses) / (out.total_minutes() * 60.0);
  return out;
}

double ThroughputModel::expected_minutes_with_failures(long poses, int nodes,
                                                       int batch_size) const {
  const double t = job_time(poses, nodes, batch_size).total_minutes();
  const double p = job_failure_probability(nodes);
  // Geometric retries: expected attempts = 1/(1-p); failed attempts burn on
  // average half an eval phase before dying plus full startup.
  const double wasted = (p / (1.0 - p)) * (0.5 * t);
  return t + wasted;
}

PeakThroughput ThroughputModel::peak(int parallel_jobs, long poses_per_job, int nodes_per_job,
                                     int batch_size, double poses_per_compound) const {
  PeakThroughput out;
  out.parallel_jobs = parallel_jobs;
  const JobTimeBreakdown one = job_time(poses_per_job, nodes_per_job, batch_size);
  // In steady state, startup/output amortize across the job stream; peak
  // throughput is jobs x eval-phase rate adjusted by duty cycle.
  const double duty = one.eval_minutes / one.total_minutes();
  const int ranks = nodes_per_job * cfg_.gpus_per_node;
  const double per_job_rate =
      cfg_.per_rank_poses_per_second * ranks * batch_efficiency(batch_size) * duty;
  out.poses_per_second = per_job_rate * parallel_jobs;
  out.poses_per_hour = out.poses_per_second * 3600.0;
  out.compounds_per_hour = out.poses_per_hour / poses_per_compound;
  return out;
}

}  // namespace df::screen
