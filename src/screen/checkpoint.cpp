#include "screen/checkpoint.h"

#include <stdexcept>

#include "io/h5lite.h"

namespace df::screen {

namespace {
constexpr int64_t kCheckpointSchema = 2;  // v2: + scoring_batch in geometry
}  // namespace

void save_campaign_checkpoint(const CampaignCheckpoint& ck, const std::string& path) {
  if (ck.unit_status.size() != ck.unit_attempts.size()) {
    throw std::invalid_argument("campaign checkpoint: status/attempts size mismatch");
  }
  io::H5LiteFile f;
  f.put_ints("schema", {1}, {kCheckpointSchema});
  f.put_ints("campaign_seed", {1}, {static_cast<int64_t>(ck.campaign_seed)});
  f.put_ints("library_fingerprint", {1}, {static_cast<int64_t>(ck.library_fingerprint)});
  f.put_ints("total_poses", {1}, {ck.total_poses});
  f.put_ints("geometry", {5},
             {ck.poses_per_job, ck.nodes, ck.gpus_per_node, ck.num_shards, ck.scoring_batch});
  f.put_ints("unit_status", {ck.units()}, ck.unit_status);
  f.put_ints("unit_attempts", {ck.units()}, ck.unit_attempts);
  f.save_atomic(path);
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  const io::H5LiteFile f = io::H5LiteFile::load(path);
  if (!f.has("schema") || f.get("schema").ints().at(0) != kCheckpointSchema) {
    throw std::runtime_error("campaign checkpoint: unsupported schema in " + path);
  }
  CampaignCheckpoint ck;
  ck.campaign_seed = static_cast<uint64_t>(f.get("campaign_seed").ints().at(0));
  ck.library_fingerprint = static_cast<uint64_t>(f.get("library_fingerprint").ints().at(0));
  ck.total_poses = f.get("total_poses").ints().at(0);
  const auto& geom = f.get("geometry").ints();
  if (geom.size() != 5) {
    throw std::runtime_error("campaign checkpoint: malformed geometry in " + path);
  }
  ck.poses_per_job = geom[0];
  ck.nodes = geom[1];
  ck.gpus_per_node = geom[2];
  ck.num_shards = geom[3];
  ck.scoring_batch = geom[4];
  ck.unit_status = f.get("unit_status").ints();
  ck.unit_attempts = f.get("unit_attempts").ints();
  if (ck.unit_status.size() != ck.unit_attempts.size()) {
    throw std::runtime_error("campaign checkpoint: status/attempts size mismatch in " + path);
  }
  return ck;
}

}  // namespace df::screen
