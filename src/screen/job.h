// One Fusion scoring job (paper Fig. 3): a fixed set of poses is divided
// across ranks (nodes x GPUs, one client per rank here); each rank streams
// its subset to the shared serve::ScoringService, which featurizes and
// scores it in micro-batches on per-worker model replicas. Results are
// allgathered and written in parallel. Failure injection reproduces the
// §4.3 instability, and — like the real pipeline — a failed job writes
// nothing (results are only flushed after scoring completes), so reruns are
// idempotent.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chem/graph_featurizer.h"
#include "chem/voxelizer.h"
#include "models/regressor.h"
#include "screen/cluster.h"

namespace df::core {
class ThreadPool;
}

namespace df::serve {
class ScoringService;
}

namespace df::screen {

struct PoseWorkItem {
  int64_t compound_id = 0;
  int32_t target_id = 0;
  int32_t pose_id = 0;
  chem::Molecule ligand;                        // posed conformer
  const std::vector<chem::Atom>* pocket = nullptr;
  core::Vec3 site_center;
};

struct JobConfig {
  int nodes = 4;
  int gpus_per_node = 4;           // ranks = nodes * gpus_per_node
  int batch_size_per_rank = 56;    // recorded; throughput model consumes it
  int loaders_per_rank = 12;       // recorded; throughput model consumes it
  uint64_t seed = 99;
  bool inject_failures = false;    // sample §4.3 failure probabilities
  // When set, the campaign's FaultInjector has already decided this job's
  // fate: >= 0 kills that rank mid-eval, -1 runs clean. Overrides
  // inject_failures, keeping all fault randomness keyed on stable work-unit
  // ids instead of per-job engine state.
  std::optional<int> doomed_rank;
  int poses_per_batch = 32;        // service micro-batch size built from this
                                   // config (campaign compat path)
  core::ThreadPool* pool = nullptr;  // shared worker pool (not owned); rank
                                     // clients run as pool jobs when set, as
                                     // raw std::threads otherwise
  chem::VoxelConfig voxel;         // featurization of the compat-path scorer
  chem::GraphFeaturizerConfig graph;
  std::string output_prefix;       // empty = don't write files
};

struct JobReport {
  bool failed = false;
  int failed_rank = -1;
  int poses_scored = 0;
  double startup_seconds = 0;      // service warmup (replica construction);
                                   // ~0 once the service is warm
  double eval_seconds = 0;
  double output_seconds = 0;
  double poses_per_second = 0;     // eval-phase rate
  // Allgathered results (empty when failed, like the real pipeline).
  std::vector<int64_t> compound_ids;
  std::vector<int64_t> target_ids;
  std::vector<int64_t> pose_ids;
  std::vector<float> predictions;
  std::vector<std::string> output_files;
};

/// Per-replica model builder — the legacy name for models::RegressorFactory,
/// kept for the campaign's compatibility overload (serve::add_regressor is
/// the registry-native way to plug one in).
using ModelFactory = models::RegressorFactory;

class FusionScoringJob {
 public:
  explicit FusionScoringJob(JobConfig cfg) : cfg_(std::move(cfg)) {}

  /// Score `items` through `service` with the named scorer. The job is a
  /// client: ranks submit contiguous pose slices and await their futures;
  /// the service owns featurization, batching and model replicas. A service
  /// in ordered-stream mode makes the predictions bit-reproducible at any
  /// service worker count. Service-side typed errors (unknown scorer,
  /// shutdown, scorer failure) surface as std::runtime_error.
  JobReport run(const std::vector<PoseWorkItem>& items, serve::ScoringService& service,
                const std::string& scorer) const;

  const JobConfig& config() const { return cfg_; }

 private:
  JobConfig cfg_;
};

}  // namespace df::screen
