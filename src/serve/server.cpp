#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

#include "serve/wire.h"

namespace df::serve {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

struct ScoreServer::Conn {
  net::TcpConn conn;
  std::thread thread;
  std::atomic<bool> finished{false};
};

ScoreServer::ScoreServer(ScoringService& service, ServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {
  std::string error;
  if (!listener_.listen(cfg_.bind_address, cfg_.port, 128, &error)) {
    throw std::runtime_error("ScoreServer: listen on " + cfg_.bind_address + ":" +
                             std::to_string(cfg_.port) + " failed: " + error);
  }
  port_ = listener_.port();
  node_id_ = cfg_.node_id.empty()
                 ? cfg_.bind_address + ":" + std::to_string(port_)
                 : cfg_.node_id;
  if (cfg_.chunk_poses <= 0) cfg_.chunk_poses = service_.config().poses_per_batch;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ScoreServer::~ScoreServer() { stop(); }

void ScoreServer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool ScoreServer::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool ScoreServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

void ScoreServer::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stop_; });
}

ServerStats ScoreServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ScoreServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopped (or stopping on another thread) — just make sure the
      // threads are joined before returning.
    }
    stop_ = true;
    shutdown_cv_.notify_all();
    drain_cv_.notify_all();
    // Wake every connection thread blocked in recv.
    for (auto& c : conns_) c->conn.shutdown();
  }
  // interrupt() is the only listener call safe from this thread; closing
  // here would race the accept thread's poll on the listener fd.
  listener_.interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // The accept loop has exited, so conns_ is stable now.
  for (auto& c : conns_) {
    if (c->thread.joinable()) c->thread.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
}

void ScoreServer::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      // Reap connections whose threads have finished.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->finished.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    bool timed_out = false;
    std::string error;
    net::TcpConn accepted = listener_.accept(250.0, &timed_out, &error);
    if (!accepted.open()) {
      if (timed_out) continue;
      // Listener closed (stop()) or a transient accept failure.
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !listener_.open()) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // accepted conn closes on scope exit
    if (active_connections_ >= cfg_.max_connections) {
      ++stats_.rejected_connections;
      continue;
    }
    ++stats_.connections;
    ++active_connections_;
    auto conn = std::make_unique<Conn>();
    conn->conn = std::move(accepted);
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      serve_connection(raw);
      std::lock_guard<std::mutex> inner(mu_);
      --active_connections_;
      raw->finished.store(true);
    });
  }
}

void ScoreServer::serve_connection(Conn* conn) {
  // Greeting: what this node serves and how it batches, so the client can
  // validate compatibility before sending work.
  {
    wire::HelloPayload hello;
    hello.node_id = node_id_;
    hello.ordered_stream = service_.config().ordered_stream;
    hello.poses_per_batch = static_cast<uint32_t>(service_.config().poses_per_batch);
    hello.workers = static_cast<uint32_t>(service_.workers());
    hello.scorers = service_.scorer_names();
    if (!wire::write_frame(conn->conn, wire::FrameType::kHello, hello.encode(),
                           cfg_.io_timeout_ms)) {
      return;
    }
  }

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    wire::Frame frame;
    // No deadline between frames: connections idle legitimately (pooled
    // clients); stop() wakes the recv via shutdown().
    const wire::WireError err = wire::read_frame(conn->conn, &frame, 0);
    if (err != wire::WireError::kNone) {
      if (err != wire::WireError::kClosed && err != wire::WireError::kTransport &&
          err != wire::WireError::kTimeout) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      return;  // cannot trust the stream past a framing error
    }
    switch (frame.type) {
      case wire::FrameType::kScoreRequest:
        if (!handle_score_request(conn, frame.payload)) return;
        break;
      case wire::FrameType::kPing: {
        wire::PingPayload ping;
        try {
          ping = wire::PingPayload::decode(frame.payload);
        } catch (const wire::WireDecodeError&) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.protocol_errors;
          return;
        }
        wire::PongPayload pong;
        pong.nonce = ping.nonce;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.pings;
          pong.draining = draining_;
          pong.inflight_requests = static_cast<uint32_t>(inflight_requests_);
          pong.requests = stats_.requests;
          pong.poses = stats_.poses;
          pong.p50_ms = static_cast<float>(stats_.latency.p50_ms());
          pong.p99_ms = static_cast<float>(stats_.latency.p99_ms());
        }
        if (!wire::write_frame(conn->conn, wire::FrameType::kPong, pong.encode(),
                               cfg_.io_timeout_ms)) {
          return;
        }
        break;
      }
      case wire::FrameType::kDrain: {
        std::unique_lock<std::mutex> lock(mu_);
        draining_ = true;
        drain_cv_.wait(lock, [this] { return inflight_requests_ == 0 || stop_; });
        wire::DrainAckPayload ack;
        ack.inflight_requests = static_cast<uint32_t>(inflight_requests_);
        lock.unlock();
        if (!wire::write_frame(conn->conn, wire::FrameType::kDrainAck, ack.encode(),
                               cfg_.io_timeout_ms)) {
          return;
        }
        break;
      }
      case wire::FrameType::kShutdown: {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        break;
      }
      default: {
        // Valid frame (CRC passed) of a type we do not handle — count it and
        // keep the connection; forward compatibility over strictness.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
        break;
      }
    }
  }
}

bool ScoreServer::handle_score_request(Conn* conn, const std::string& payload_bytes) {
  const auto received = Clock::now();
  wire::ScoreRequestPayload payload;
  try {
    payload = wire::ScoreRequestPayload::decode(payload_bytes);
  } catch (const wire::WireDecodeError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.protocol_errors;
    return false;  // request_id unknown — cannot even answer with an error
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      wire::ScoreDonePayload done;
      done.request_id = payload.request_id;
      done.error = ScoreError::kShutdown;
      done.message = "node draining";
      ++stats_.errors;
      return wire::write_frame(conn->conn, wire::FrameType::kScoreDone, done.encode(),
                               cfg_.io_timeout_ms);
    }
    ++inflight_requests_;
  }

  // The unpacked request's pose pockets borrow from `payload` — it stays
  // alive (this scope) until every sub-request future has resolved.
  const ScoreRequest req = wire::unpack_request(payload);
  const size_t n = req.poses.size();
  const size_t chunk = static_cast<size_t>(cfg_.chunk_poses);

  // Split into service-batch-sized sub-requests and submit them all before
  // waiting on any: the service pipelines across them while responses
  // stream back in order. In ordered-stream mode this split coincides with
  // the service's own request slicing, so the scores are bit-identical to a
  // single in-process submit of the whole request.
  struct Sub {
    size_t offset;
    std::future<ScoreResponse> future;
  };
  std::vector<Sub> subs;
  subs.reserve(n / chunk + 2);
  if (n == 0) {
    ScoreRequest empty = req;
    subs.push_back({0, service_.submit(std::move(empty))});
  }
  for (size_t lo = 0; lo < n; lo += chunk) {
    const size_t hi = std::min(n, lo + chunk);
    ScoreRequest sub;
    sub.scorer = req.scorer;
    sub.client = req.client;
    sub.deadline_ms = req.deadline_ms;
    sub.poses.assign(req.poses.begin() + static_cast<std::ptrdiff_t>(lo),
                     req.poses.begin() + static_cast<std::ptrdiff_t>(hi));
    subs.push_back({lo, service_.submit(std::move(sub))});
  }

  wire::ScoreDonePayload done;
  done.request_id = payload.request_id;
  bool peer_ok = true;
  for (auto& sub : subs) {
    ScoreResponse resp = sub.future.get();
    done.micro_batches += static_cast<uint32_t>(resp.micro_batches);
    done.coalesced = done.coalesced || resp.coalesced;
    if (resp.error != ScoreError::kNone) {
      // First error is the request's verdict; later sub-requests still
      // resolve (the payload must outlive them) but are not reported.
      if (done.error == ScoreError::kNone) {
        done.error = resp.error;
        done.message = resp.message;
      }
      continue;
    }
    if (done.error != ScoreError::kNone || !peer_ok) continue;
    wire::ScoreChunkPayload chunk_payload;
    chunk_payload.request_id = payload.request_id;
    chunk_payload.offset = sub.offset;
    chunk_payload.scores = std::move(resp.scores);
    if (wire::write_frame(conn->conn, wire::FrameType::kScoreChunk,
                          chunk_payload.encode(), cfg_.io_timeout_ms)) {
      ++done.chunks;
    } else {
      peer_ok = false;  // client gone; keep draining futures, skip writes
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_requests_;
    if (inflight_requests_ == 0) drain_cv_.notify_all();
    ++stats_.requests;
    stats_.poses += n;
    stats_.chunks += done.chunks;
    if (done.error != ScoreError::kNone) {
      ++stats_.errors;
      if (done.error == ScoreError::kTimeout) ++stats_.timeouts;
    }
    stats_.latency.record_seconds(
        std::chrono::duration<double>(Clock::now() - received).count());
  }
  if (!peer_ok) return false;
  return wire::write_frame(conn->conn, wire::FrameType::kScoreDone, done.encode(),
                           cfg_.io_timeout_ms);
}

}  // namespace df::serve
