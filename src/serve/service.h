// ScoringService — the asynchronous, batched, multi-model scoring API the
// paper's production pipeline implies (Fig. 3): many concurrent producers
// (campaign ranks, rescoring passes, ad-hoc clients) feed pose batches to a
// shared pool of model replicas and get futures back.
//
// Request path:
//   submit(ScoreRequest) -> std::future<ScoreResponse>
//
//   * Bounded queue. `queue_capacity` bounds queued (not yet dispatched)
//     poses. When full, submit() blocks — backpressure — or, with
//     block_when_full=false, fails fast with a typed kQueueFull response. A
//     request larger than the whole capacity is admitted once the queue is
//     empty, so oversized requests cannot wedge. A request-level
//     `deadline_ms` bounds both the backpressure block and the queue wait:
//     past it the request resolves kTimeout instead of waiting forever —
//     the bound the network client leans on.
//   * Dynamic micro-batcher. Workers coalesce poses for the same scorer
//     across requests (and so across clients) up to `poses_per_batch`; a
//     partial batch waits at most `flush_deadline_ms` for company before it
//     dispatches. One worker = one in-flight micro-batch on that worker's
//     private model replica (built lazily from the registry).
//   * Typed errors. Unknown scorer, full queue, shutdown and scorer
//     exceptions come back as ScoreError values on the response, never as
//     exceptions out of submit().
//
// Ordered-stream mode (`ordered_stream = true`): micro-batch boundaries
// derive from each request alone — every request is pre-split into fixed
// `poses_per_batch` chunks and chunks are never merged across requests.
// Scores then depend only on (replica weights, request content), so any
// worker count, client interleaving or arrival order produces bit-identical
// results. This is the mode the screening campaign runs in; it trades
// cross-client coalescing for the PR-2 determinism/resume guarantees.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/latency.h"
#include "serve/registry.h"

namespace df::serve {

enum class ScoreError {
  kNone = 0,
  kUnknownScorer,   // name not in the service's registry snapshot
  kQueueFull,       // bounded queue full and block_when_full == false
  kShutdown,        // service stopped before the request was accepted
  kScorerFailure,   // the backend threw while scoring; message has details
  kTimeout,         // deadline_ms expired before the request was scored
  kTransport,       // network path failed (ScoreClient-side mapping; the
                    // in-process service never produces this)
};

const char* score_error_name(ScoreError e);

struct ScoreRequest {
  std::string scorer;            // registry name
  std::vector<PoseInput> poses;  // pocket pointers must outlive the future
  std::string client;            // optional tag, echoed into stats/logs
  double deadline_ms = 0;        // > 0 bounds backpressure blocking AND queue
                                 // wait: past the deadline the future resolves
                                 // kTimeout instead of waiting for a worker
};

struct ScoreResponse {
  std::vector<float> scores;  // one per pose, request order; empty on error
  ScoreError error = ScoreError::kNone;
  std::string message;        // failure details when error != kNone
  int micro_batches = 0;      // batches that carried this request's poses
  bool coalesced = false;     // any of those batches mixed in other requests
};

struct ServiceConfig {
  int workers = 0;                // worker threads; 0 = hardware concurrency
  int poses_per_batch = 32;       // micro-batch target (and ordered chunk size)
  size_t queue_capacity = 8192;   // max queued poses before backpressure
  bool block_when_full = true;    // false: fail fast with kQueueFull
  double flush_deadline_ms = 0.2; // max wait to fill a partial batch
  bool ordered_stream = false;    // deterministic batching (see header)
  // Stage pipelining: > 0 calls set_pipeline_depth(pipeline_depth) on every
  // replica this service builds, and workers drive submit()/collect()
  // instead of score() — up to `pipeline_depth` micro-batches in flight per
  // worker, featurize overlapping the previous batch's forward. Results are
  // bitwise identical to the sequential path at any depth (batch
  // composition and per-batch compute are unchanged; only overlap timing
  // moves), so ordered_stream keeps its determinism guarantee. 0 leaves
  // replicas as the registry minted them (a registry-level depth still
  // applies); backends without a pipelined path are unaffected.
  int pipeline_depth = 0;
  // Cross-request pocket cache: > 0 creates one serve::PocketCache of this
  // capacity (distinct receptor targets, LRU) shared by every replica of
  // the service — pocket voxel grids and graph-crop cell lists are then
  // computed once per target instead of once per batch. Hits are verified
  // by exact pocket content, and cached featurization is bitwise identical
  // to uncached. 0 disables.
  size_t pocket_cache_targets = 0;
};

struct ServiceStats {
  uint64_t requests = 0;          // accepted requests
  uint64_t rejected = 0;          // typed-error submits (unknown/full/shutdown)
  uint64_t poses = 0;             // poses accepted
  uint64_t batches = 0;           // micro-batches dispatched
  uint64_t full_batches = 0;      // batches that hit poses_per_batch
  uint64_t coalesced_batches = 0; // batches mixing >1 request
  uint64_t replicas_built = 0;    // model replicas constructed across workers
  uint64_t timeouts = 0;          // requests that resolved kTimeout
  size_t peak_queued_poses = 0;
  // Accept-to-fulfillment latency of every resolved request (errors
  // included); p50/p99 via latency.p50_ms()/p99_ms().
  LatencyHistogram latency;
};

class ScoringService {
 public:
  /// Snapshots `registry` (later registrations do not affect this service)
  /// and starts the worker threads.
  explicit ScoringService(const ModelRegistry& registry, ServiceConfig cfg = {});
  ~ScoringService();  // shutdown(): drains accepted work, joins workers

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Asynchronous scoring. Never throws for request-shaped problems — the
  /// future resolves with a typed ScoreError instead. May block for
  /// backpressure (see ServiceConfig::block_when_full).
  std::future<ScoreResponse> submit(ScoreRequest req);

  /// Synchronous convenience: submit + get.
  ScoreResponse score(ScoreRequest req);

  /// Build `scorer`'s replica on every worker and return when all exist —
  /// the "startup phase" of a scoring job, paid once per service instead of
  /// once per job. Throws std::out_of_range for unknown names.
  void warmup(const std::string& scorer);

  /// Block until every accepted request has resolved.
  void drain();

  /// Stop accepting work, finish everything already accepted, join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  int workers() const { return static_cast<int>(threads_.size()); }
  const ServiceConfig& config() const { return cfg_; }
  /// Names in this service's registry snapshot, sorted — what a score
  /// server advertises in its Hello frame.
  std::vector<std::string> scorer_names() const;
  ServiceStats stats() const;
  /// The shared cross-request pocket cache, or nullptr when
  /// pocket_cache_targets == 0 (for hit-rate stats in benches/tests).
  std::shared_ptr<PocketCache> pocket_cache() const { return pocket_cache_; }

 private:
  struct Pending;
  struct Slice;
  struct InFlight;

  void worker_loop();
  static void fulfill(const std::shared_ptr<Pending>& owner);
  Scorer& replica_for(std::map<std::string, std::unique_ptr<Scorer>>& replicas,
                      const std::string& name);

  ServiceConfig cfg_;
  std::map<std::string, ScorerFactory> factories_;  // registry snapshot
  std::shared_ptr<PocketCache> pocket_cache_;       // null when disabled

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // wakes workers (work / warmup / stop)
  std::condition_variable space_cv_;  // wakes blocked submitters
  std::condition_variable drain_cv_;  // wakes drain()
  std::condition_variable warmup_cv_; // wakes warmup()
  std::deque<Slice> queue_;
  size_t queued_poses_ = 0;
  size_t inflight_poses_ = 0;
  size_t deadlined_queued_ = 0;  // queued requests carrying a deadline; the
                                 // expiry sweep is skipped while this is 0
  bool stop_ = false;
  uint64_t warmup_gen_ = 0;
  std::string warmup_name_;
  std::string warmup_error_;  // first factory failure of the current warmup
  int warmup_remaining_ = 0;
  ServiceStats stats_;

  std::mutex warmup_call_mu_;  // serializes warmup() callers
  std::mutex build_mu_;        // serializes factory invocations
  std::vector<std::thread> threads_;
};

}  // namespace df::serve
