// ScoreClient — the fault-tolerant network counterpart of
// ScoringService::score(): a connection-pooled TCP client for ScoreServer
// that maps every transport failure into the typed ScoreError space, so the
// caller (ClusterController, load generator) never sees an exception or a
// raw socket error, only a ScoreResponse.
//
// Reliability model:
//   * Pooled connections, one request in flight per connection; concurrent
//     score() calls multiplex over the pool and block (bounded) for a slot.
//   * Transport failures — connect refusal, frame I/O error, CRC, stream
//     desync — close the connection, back off exponentially with
//     deterministic jitter, and retry on a fresh connection up to
//     max_retries times before resolving kTransport.
//   * Server-typed errors (unknown scorer, queue full, shutdown/draining,
//     scorer failure, deadline timeout) are verdicts, not faults: they pass
//     through un-retried.
//   * request_timeout_ms bounds one score() call end to end (slot wait,
//     connects, retries, backoff included); past it the call resolves
//     kTimeout. This is the client-side deadline; ScoreRequest::deadline_ms
//     additionally travels to the server and bounds its queue wait.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/service.h"
#include "serve/wire.h"

namespace df::serve {

struct ClientConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 2;            // pool size (max in-flight requests)
  double connect_timeout_ms = 2000;
  double request_timeout_ms = 0;  // end-to-end bound per score(); 0 = none
  double io_timeout_ms = 30000;   // per-frame stall guard
  int max_retries = 3;            // transport retries after the first attempt
  double backoff_base_ms = 10;    // retry k sleeps ~ base * 2^k, jittered
  double backoff_max_ms = 500;
  uint64_t jitter_seed = 0;       // deterministic backoff jitter
};

struct ClientStats {
  uint64_t requests = 0;           // score() calls
  uint64_t attempts = 0;           // wire attempts (>= requests)
  uint64_t retries = 0;            // attempts - first tries
  uint64_t transport_failures = 0; // failed wire attempts
  uint64_t timeouts = 0;           // score() calls that resolved kTimeout
  uint64_t reconnects = 0;         // connections (re)established
  uint64_t chunks = 0;             // kScoreChunk frames received
};

/// Result of one heartbeat probe. kBusy means every pool slot was occupied
/// by in-flight work within the probe's patience — the node is alive (a
/// response implies liveness), just saturated.
struct PingResult {
  enum class Status { kOk, kBusy, kFail };
  Status status = Status::kFail;
  std::string error;        // when kFail
  wire::PongPayload pong;   // when kOk
};

class ScoreClient {
 public:
  explicit ScoreClient(ClientConfig cfg);
  ~ScoreClient();

  ScoreClient(const ScoreClient&) = delete;
  ScoreClient& operator=(const ScoreClient&) = delete;

  /// Synchronous scoring over the wire; never throws for request-shaped or
  /// network-shaped problems. scores arrive bit-exact (raw IEEE-754 on the
  /// wire).
  ScoreResponse score(const ScoreRequest& req);

  /// Fetch the server's Hello (connecting if needed). False on failure with
  /// the reason in *error.
  bool hello(wire::HelloPayload* out, std::string* error);

  /// Heartbeat probe, bounded by `timeout_ms`.
  PingResult ping(double timeout_ms);

  /// Ask the node to stop accepting new requests and wait until its
  /// in-flight count hits zero (DrainAck). False on transport failure.
  bool drain(double timeout_ms, std::string* error);

  /// Fire-and-forget kShutdown (the node exits after in-flight work).
  bool request_shutdown();

  /// Drop every pooled connection (next use reconnects). Also unblocks
  /// nothing — in-flight calls finish their attempt first.
  void close();

  const ClientConfig& config() const { return cfg_; }
  ClientStats stats() const;

 private:
  struct Slot;

  Slot* acquire(double timeout_ms);
  void release(Slot* slot);
  /// Connect + consume Hello if the slot is closed. False => *error set.
  bool ensure_connected(Slot* slot, double timeout_ms, std::string* error);
  ScoreResponse attempt(Slot* slot, const ScoreRequest& req, uint64_t request_id,
                        bool* transport_failed, std::string* transport_error);

  ClientConfig cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  ClientStats stats_;
  uint64_t next_request_id_ = 1;
  uint64_t next_nonce_ = 1;
  bool have_hello_ = false;
  wire::HelloPayload hello_;
};

}  // namespace df::serve
