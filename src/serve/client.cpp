#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/rng.h"

namespace df::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

ScoreResponse typed_error(ScoreError e, std::string message) {
  ScoreResponse r;
  r.error = e;
  r.message = std::move(message);
  return r;
}
}  // namespace

struct ScoreClient::Slot {
  net::TcpConn conn;
  bool busy = false;
};

ScoreClient::ScoreClient(ClientConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.connections < 1) cfg_.connections = 1;
  slots_.reserve(static_cast<size_t>(cfg_.connections));
  for (int i = 0; i < cfg_.connections; ++i) slots_.push_back(std::make_unique<Slot>());
}

ScoreClient::~ScoreClient() { close(); }

void ScoreClient::close() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    // shutdown() is cross-thread safe: a busy slot's in-flight attempt wakes
    // with a transport error; idle conns just drop.
    slot->conn.shutdown();
    if (!slot->busy) slot->conn.close();
  }
}

ClientStats ScoreClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ScoreClient::Slot* ScoreClient::acquire(double timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto free_slot = [this]() -> Slot* {
    for (auto& slot : slots_) {
      if (!slot->busy) return slot.get();
    }
    return nullptr;
  };
  Slot* slot = free_slot();
  if (slot == nullptr) {
    if (timeout_ms < 0) {
      slot_cv_.wait(lock, [&] { return (slot = free_slot()) != nullptr; });
    } else {
      slot_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                        [&] { return (slot = free_slot()) != nullptr; });
    }
  }
  if (slot != nullptr) slot->busy = true;
  return slot;
}

void ScoreClient::release(Slot* slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->busy = false;
  }
  slot_cv_.notify_one();
}

bool ScoreClient::ensure_connected(Slot* slot, double timeout_ms, std::string* error) {
  if (slot->conn.open()) return true;
  std::string conn_error;
  net::TcpConn conn = net::tcp_connect(cfg_.host, cfg_.port, timeout_ms, &conn_error);
  if (!conn.open()) {
    if (error) *error = "connect " + cfg_.host + ":" + std::to_string(cfg_.port) +
                        " failed: " + conn_error;
    return false;
  }
  wire::Frame frame;
  const wire::WireError werr = wire::read_frame(conn, &frame, cfg_.io_timeout_ms);
  if (werr != wire::WireError::kNone || frame.type != wire::FrameType::kHello) {
    if (error) {
      *error = werr != wire::WireError::kNone
                   ? std::string("hello read failed: ") + wire::wire_error_name(werr)
                   : "first frame was not Hello";
    }
    return false;
  }
  wire::HelloPayload hello;
  try {
    hello = wire::HelloPayload::decode(frame.payload);
  } catch (const wire::WireDecodeError& e) {
    if (error) *error = std::string("hello decode failed: ") + e.what();
    return false;
  }
  slot->conn = std::move(conn);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.reconnects;
  hello_ = std::move(hello);
  have_hello_ = true;
  return true;
}

bool ScoreClient::hello(wire::HelloPayload* out, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (have_hello_) {
      if (out) *out = hello_;
      return true;
    }
  }
  Slot* slot = acquire(cfg_.connect_timeout_ms + cfg_.io_timeout_ms);
  if (slot == nullptr) {
    if (error) *error = "no pool slot available";
    return false;
  }
  const bool ok = ensure_connected(slot, cfg_.connect_timeout_ms, error);
  release(slot);
  if (!ok) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (out) *out = hello_;
  return true;
}

ScoreResponse ScoreClient::attempt(Slot* slot, const ScoreRequest& req,
                                   uint64_t request_id, bool* transport_failed,
                                   std::string* transport_error) {
  *transport_failed = false;
  const wire::ScoreRequestPayload payload = wire::pack_request(req, request_id);
  if (!wire::write_frame(slot->conn, wire::FrameType::kScoreRequest, payload.encode(),
                         cfg_.io_timeout_ms)) {
    *transport_failed = true;
    *transport_error = "request send failed: " + slot->conn.last_error();
    slot->conn.close();
    return {};
  }

  const size_t n = req.poses.size();
  ScoreResponse resp;
  resp.scores.assign(n, 0.0f);
  size_t received = 0;
  for (;;) {
    wire::Frame frame;
    const wire::WireError werr = wire::read_frame(slot->conn, &frame, cfg_.io_timeout_ms);
    if (werr != wire::WireError::kNone) {
      *transport_failed = true;
      *transport_error = std::string("response read failed: ") + wire::wire_error_name(werr) +
                         (slot->conn.last_error().empty() ? "" : " (" + slot->conn.last_error() + ")");
      slot->conn.close();
      return {};
    }
    try {
      if (frame.type == wire::FrameType::kScoreChunk) {
        wire::ScoreChunkPayload chunk = wire::ScoreChunkPayload::decode(frame.payload);
        if (chunk.request_id != request_id || chunk.offset > n ||
            chunk.scores.size() > n - static_cast<size_t>(chunk.offset)) {
          *transport_failed = true;
          *transport_error = "response stream desynchronized (bad chunk)";
          slot->conn.close();
          return {};
        }
        std::copy(chunk.scores.begin(), chunk.scores.end(),
                  resp.scores.begin() + static_cast<std::ptrdiff_t>(chunk.offset));
        received += chunk.scores.size();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.chunks;
        continue;
      }
      if (frame.type == wire::FrameType::kScoreDone) {
        wire::ScoreDonePayload done = wire::ScoreDonePayload::decode(frame.payload);
        if (done.request_id != request_id) {
          *transport_failed = true;
          *transport_error = "response stream desynchronized (bad done id)";
          slot->conn.close();
          return {};
        }
        resp.error = done.error;
        resp.message = done.message;
        resp.micro_batches = static_cast<int>(done.micro_batches);
        resp.coalesced = done.coalesced;
        if (done.error != ScoreError::kNone) {
          resp.scores.clear();
          return resp;
        }
        if (received != n) {
          // The server says success but some span never arrived — a framing
          // bug or a truncated stream; treat as transport and retry.
          *transport_failed = true;
          *transport_error = "response incomplete: " + std::to_string(received) + "/" +
                             std::to_string(n) + " scores";
          slot->conn.close();
          return {};
        }
        return resp;
      }
    } catch (const wire::WireDecodeError& e) {
      *transport_failed = true;
      *transport_error = std::string("response decode failed: ") + e.what();
      slot->conn.close();
      return {};
    }
    // Any other frame type mid-response means the stream is desynchronized.
    *transport_failed = true;
    *transport_error = "response stream desynchronized (unexpected frame)";
    slot->conn.close();
    return {};
  }
}

ScoreResponse ScoreClient::score(const ScoreRequest& req) {
  const auto start = Clock::now();
  const bool bounded = cfg_.request_timeout_ms > 0;
  uint64_t request_id;
  uint64_t jitter_stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    request_id = next_request_id_++;
    jitter_stream = cfg_.jitter_seed + request_id;
  }
  core::Rng jitter(jitter_stream);
  auto remaining_ms = [&]() -> double {
    return bounded ? cfg_.request_timeout_ms - ms_since(start) : -1.0;
  };
  auto timeout_response = [&]() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timeouts;
    }
    return typed_error(ScoreError::kTimeout,
                       "request timed out after " + std::to_string(cfg_.request_timeout_ms) + " ms");
  };

  std::string last_error = "no attempt made";
  for (int try_i = 0; try_i <= cfg_.max_retries; ++try_i) {
    if (try_i > 0) {
      double backoff = cfg_.backoff_base_ms * std::pow(2.0, try_i - 1);
      backoff = std::min(backoff, cfg_.backoff_max_ms);
      backoff *= jitter.uniform_d(0.5, 1.5);
      if (bounded) backoff = std::min(backoff, std::max(0.0, remaining_ms()));
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff));
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    if (bounded && remaining_ms() <= 0) return timeout_response();

    Slot* slot = acquire(bounded ? remaining_ms() : -1.0);
    if (slot == nullptr) return timeout_response();

    bool transport_failed = false;
    std::string transport_error;
    std::string connect_error;
    const double connect_budget =
        bounded ? std::min(cfg_.connect_timeout_ms, std::max(1.0, remaining_ms()))
                : cfg_.connect_timeout_ms;
    if (!ensure_connected(slot, connect_budget, &connect_error)) {
      transport_failed = true;
      transport_error = connect_error;
    }
    ScoreResponse resp;
    if (!transport_failed) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.attempts;
      }
      resp = attempt(slot, req, request_id, &transport_failed, &transport_error);
    }
    release(slot);

    if (!transport_failed) {
      if (resp.error == ScoreError::kTimeout) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.timeouts;
      }
      return resp;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.transport_failures;
    }
    last_error = transport_error;
    if (bounded && remaining_ms() <= 0) return timeout_response();
  }
  return typed_error(ScoreError::kTransport,
                     "transport failed after " + std::to_string(cfg_.max_retries + 1) +
                         " attempts: " + last_error);
}

PingResult ScoreClient::ping(double timeout_ms) {
  PingResult result;
  Slot* slot = acquire(timeout_ms);
  if (slot == nullptr) {
    // Every connection is mid-request. A saturated node is an alive node.
    result.status = PingResult::Status::kBusy;
    return result;
  }
  std::string error;
  if (!ensure_connected(slot, timeout_ms, &error)) {
    release(slot);
    result.error = std::move(error);
    return result;
  }
  uint64_t nonce;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nonce = next_nonce_++;
  }
  wire::PingPayload ping_payload;
  ping_payload.nonce = nonce;
  bool ok = wire::write_frame(slot->conn, wire::FrameType::kPing, ping_payload.encode(),
                              timeout_ms);
  wire::Frame frame;
  if (ok) ok = wire::read_frame(slot->conn, &frame, timeout_ms) == wire::WireError::kNone;
  if (ok && frame.type == wire::FrameType::kPong) {
    try {
      wire::PongPayload pong = wire::PongPayload::decode(frame.payload);
      if (pong.nonce == nonce) {
        result.status = PingResult::Status::kOk;
        result.pong = pong;
        release(slot);
        return result;
      }
      result.error = "pong nonce mismatch";
    } catch (const wire::WireDecodeError& e) {
      result.error = std::string("pong decode failed: ") + e.what();
    }
  } else if (ok) {
    result.error = "unexpected frame in place of pong";
  } else {
    result.error = "ping I/O failed: " + slot->conn.last_error();
  }
  slot->conn.close();
  release(slot);
  return result;
}

bool ScoreClient::drain(double timeout_ms, std::string* error) {
  Slot* slot = acquire(timeout_ms);
  if (slot == nullptr) {
    if (error) *error = "no pool slot available";
    return false;
  }
  std::string conn_error;
  if (!ensure_connected(slot, cfg_.connect_timeout_ms, &conn_error)) {
    release(slot);
    if (error) *error = conn_error;
    return false;
  }
  bool ok = wire::write_frame(slot->conn, wire::FrameType::kDrain, {}, cfg_.io_timeout_ms);
  wire::Frame frame;
  // The ack only arrives once the node's in-flight count hits zero; the
  // caller's timeout is the patience for that.
  if (ok) ok = wire::read_frame(slot->conn, &frame, timeout_ms) == wire::WireError::kNone &&
               frame.type == wire::FrameType::kDrainAck;
  if (!ok) {
    if (error) *error = "drain handshake failed: " + slot->conn.last_error();
    slot->conn.close();
  }
  release(slot);
  return ok;
}

bool ScoreClient::request_shutdown() {
  Slot* slot = acquire(cfg_.connect_timeout_ms);
  if (slot == nullptr) return false;
  std::string error;
  bool ok = ensure_connected(slot, cfg_.connect_timeout_ms, &error);
  if (ok) ok = wire::write_frame(slot->conn, wire::FrameType::kShutdown, {}, cfg_.io_timeout_ms);
  if (!ok) slot->conn.close();
  release(slot);
  return ok;
}

}  // namespace df::serve
