// Scorer — the unit of model serving. A Scorer turns a micro-batch of
// docked poses into one score per pose; every backend the paper's pipeline
// compares (Fusion / SG-CNN / 3D-CNN nets, the published-baseline CNNs,
// Vina docking scores converted to pK, MM/GBSA rescoring) sits behind this
// one interface so the ScoringService can serve them all uniformly.
//
// A Scorer instance is a *replica*: it may carry mutable state (featurizer
// scratch, layer activation caches) and is only ever entered by one thread
// at a time. The service builds one replica per worker from a
// ModelRegistry factory; sharing a replica across threads is a bug, and
// RegressorScorer turns that bug into a thrown error instead of silent
// corruption.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chem/graph_featurizer.h"
#include "chem/molecule.h"
#include "chem/voxelizer.h"
#include "core/vec3.h"
#include "core/workspace.h"
#include "dock/mmgbsa.h"
#include "models/regressor.h"
#include "serve/pocket_cache.h"

namespace df::core {
class ThreadPool;
}

namespace df::serve {

/// One docked pose to score: a posed ligand conformer plus the (borrowed)
/// receptor pocket it was docked into. The pocket pointer must outlive the
/// request it rides in. Ownership is deliberately asymmetric: ligands are
/// small and per-pose, so the request owns a copy and stays valid however
/// long it queues; pockets are hundreds of atoms shared by thousands of
/// poses of the same target, so they are borrowed.
struct PoseInput {
  chem::Molecule ligand;
  const std::vector<chem::Atom>* pocket = nullptr;
  core::Vec3 site_center;
};

/// Stage-pipelined scoring executor: a bounded ring of micro-batch slots
/// through which featurization runs ahead of the forward pass. submit()
/// hands a batch to the featurize stage (blocking while depth() batches
/// are already in flight); collect() forwards and returns the oldest
/// in-flight batch. Batches come back strictly FIFO, and each batch's
/// result is bitwise identical to Scorer::score() on the same poses —
/// stage boundaries are fixed by batch index, never timing, so pipelining
/// changes when work happens but not what is computed.
class ScorerPipeline {
 public:
  virtual ~ScorerPipeline() = default;

  /// Maximum batches in flight (submitted, not yet collected).
  virtual int depth() const = 0;
  /// Batches currently in flight.
  virtual size_t in_flight() const = 0;
  /// Enqueue a micro-batch for featurization. Blocks while in_flight()
  /// == depth(). Single-submitter: one thread drives a pipeline.
  virtual void submit(std::vector<const PoseInput*> poses) = 0;
  /// Run the forward pass for the oldest in-flight batch and return its
  /// scores. Throws std::logic_error when nothing is in flight; rethrows
  /// the featurize stage's exception (e.g. a null pocket) if one occurred.
  virtual std::vector<float> collect() = 0;
};

class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual std::string name() const = 0;

  /// Score a micro-batch, one result per pose in order. Called by exactly
  /// one thread at a time (the replica contract); the batch may mix poses
  /// from different clients.
  virtual std::vector<float> score(const std::vector<const PoseInput*>& poses) = 0;

  /// The replica's pipelined executor, or nullptr when the backend runs
  /// sequential-only (the default). Non-null after set_pipeline_depth(d)
  /// with d >= 1 on a backend that supports it.
  virtual ScorerPipeline* pipeline() { return nullptr; }
  /// Enable stage pipelining with up to `depth` batches in flight; depth
  /// <= 0 tears the pipeline down (sequential path). Must not be called
  /// with batches in flight. Backends without a pipelined path ignore it.
  virtual void set_pipeline_depth(int /*depth*/) {}
  /// Share a cross-request pocket cache with this replica (may be shared
  /// by many replicas; PocketCache is thread-safe). Backends that do not
  /// featurize ignore it.
  virtual void set_pocket_cache(std::shared_ptr<PocketCache> /*cache*/) {}
};

/// Throws std::logic_error when two threads enter the same replica
/// concurrently — the enforcement half of the Regressor replica contract
/// (models/regressor.h). Zero cost beyond one relaxed atomic flip per batch.
class ReplicaGuard {
 public:
  explicit ReplicaGuard(std::atomic<bool>& busy);
  ~ReplicaGuard();
  ReplicaGuard(const ReplicaGuard&) = delete;
  ReplicaGuard& operator=(const ReplicaGuard&) = delete;

 private:
  std::atomic<bool>& busy_;
};

/// Neural-net backend: featurizes each pose (voxel grid + spatial graph)
/// and runs the model's batched eval path — the per-rank "featurize and
/// score" loop of paper Fig. 3, packaged as a replica.
///
/// Serving hot path: all tensor scratch (featurizer outputs, every layer
/// temporary of the batched forward) is carved from per-replica
/// core::Workspace arenas that are rewound — not freed — between batches,
/// so a warmed replica scores with zero tensor heap allocations
/// (core::alloc_count() pins this in tests). The arenas are replica state:
/// they follow the same single-threaded replica contract as the model
/// (models/regressor.h) and must never be shared across workers.
///
/// With `featurize_threads` > 1 the featurization of a micro-batch fans out
/// over a small private lane pool (contiguous pose chunks, one arena per
/// lane); featurization is per-pose pure, so results are identical to the
/// serial loop. Lanes are extra threads per replica — size them against the
/// service's worker count (a few lanes pay off when workers < cores or the
/// batch is featurize-bound).
class RegressorScorer : public Scorer {
 public:
  RegressorScorer(std::string name, std::unique_ptr<models::Regressor> model,
                  const chem::VoxelConfig& voxel, const chem::GraphFeaturizerConfig& graph,
                  int featurize_threads = 0);
  ~RegressorScorer() override;

  std::string name() const override { return name_; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

  /// Stage-pipelined execution (see ScorerPipeline). The featurize stage
  /// runs on one background thread per replica; each ring slot owns its
  /// own lane arenas, so steady state stays at zero tensor heap
  /// allocations at any depth. While batches are in flight, score() and
  /// the knob setters throw rather than race the stage thread.
  ScorerPipeline* pipeline() override;
  void set_pipeline_depth(int depth) override;
  void set_pocket_cache(std::shared_ptr<PocketCache> cache) override;

  /// Cumulative wall-time split of scoring on this replica — the
  /// featurize/forward phase breakdown reported by bench_service_throughput.
  /// Pipelined batches account at collect() time; returned by value because
  /// the stage thread updates concurrently.
  struct PhaseStats {
    uint64_t batches = 0;
    uint64_t poses = 0;
    double featurize_seconds = 0.0;
    double forward_seconds = 0.0;
  };
  PhaseStats phase_stats() const;

  /// Steady-state arena high-water marks. Measured on a warmed donor
  /// replica, they become the workspace budgets a compiled artifact carries
  /// (compile::save_compiled); feat_floats is the widest featurize lane.
  struct WorkspaceBudgets {
    size_t forward_floats = 0;
    size_t feat_floats = 0;
  };
  WorkspaceBudgets workspace_capacities() const;
  /// Pre-grow the arenas to the given budgets so the replica's first score()
  /// call (and every one after) performs zero tensor heap allocations —
  /// the compiled-artifact cold-start path.
  void reserve_workspaces(const WorkspaceBudgets& budgets);

 private:
  class Pipeline;

  /// Featurize `poses` into `batch` using the given lane arenas: the shared
  /// body of the sequential score() path and the pipeline's featurize
  /// stage. Per-batch pocket grids are carved from `grid_ws`; with a pocket
  /// cache attached the grids (and the graph crop's CellList) come from
  /// cache entries instead, pinned alive for the batch via `cache_refs` —
  /// which also makes pocket-grid amortization valid at feature-set v2
  /// (the 4-arg voxelize_ligand_onto graft).
  void featurize_batch(const std::vector<const PoseInput*>& poses,
                       std::vector<data::Sample>& batch,
                       std::vector<std::unique_ptr<core::Workspace>>& lane_ws,
                       core::ThreadPool* pool, core::Workspace& grid_ws,
                       std::vector<core::Tensor>& grids,
                       std::vector<std::shared_ptr<const PocketCache::Entry>>& cache_refs);

  std::string name_;
  std::unique_ptr<models::Regressor> model_;
  chem::Voxelizer voxelizer_;
  chem::GraphFeaturizer featurizer_;
  std::atomic<bool> busy_{false};
  // One arena per featurize lane (index 0 doubles as the serial lane) plus
  // one for the model forward; reset at the top of every score() call.
  std::vector<std::unique_ptr<core::Workspace>> feat_ws_;
  core::Workspace forward_ws_;
  std::unique_ptr<core::ThreadPool> feat_pool_;  // null when serial
  std::shared_ptr<PocketCache> pocket_cache_;
  mutable std::mutex stats_mu_;
  PhaseStats stats_;
  // Last member: its stage thread touches everything above, so it must be
  // destroyed first.
  std::unique_ptr<Pipeline> pipeline_;
};

/// Empirical docking backend: Vina functional form converted to predicted
/// pK — the cheap end of the paper's three-way cost comparison.
class VinaPkScorer : public Scorer {
 public:
  explicit VinaPkScorer(dock::VinaWeights weights = {}) : weights_(weights) {}

  std::string name() const override { return "vina_pk"; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

 private:
  dock::VinaWeights weights_;
};

/// Physics rescoring backend: single-point MM/GBSA per pose (kcal/mol,
/// negative = better). Orders of magnitude slower than the nets — it lives
/// under its own name so its poses never share (and thus stall) a Fusion
/// micro-batch; the batcher dispatches ready batches of other scorers
/// ahead of a partial MM/GBSA head. Worker time is still shared FIFO, so
/// give sustained heavy rescoring traffic its own service instance.
class MmGbsaScorer : public Scorer {
 public:
  explicit MmGbsaScorer(dock::MmGbsaConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "mmgbsa"; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

 private:
  dock::MmGbsaConfig cfg_;
};

}  // namespace df::serve
