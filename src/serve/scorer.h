// Scorer — the unit of model serving. A Scorer turns a micro-batch of
// docked poses into one score per pose; every backend the paper's pipeline
// compares (Fusion / SG-CNN / 3D-CNN nets, the published-baseline CNNs,
// Vina docking scores converted to pK, MM/GBSA rescoring) sits behind this
// one interface so the ScoringService can serve them all uniformly.
//
// A Scorer instance is a *replica*: it may carry mutable state (featurizer
// scratch, layer activation caches) and is only ever entered by one thread
// at a time. The service builds one replica per worker from a
// ModelRegistry factory; sharing a replica across threads is a bug, and
// RegressorScorer turns that bug into a thrown error instead of silent
// corruption.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "chem/graph_featurizer.h"
#include "chem/molecule.h"
#include "chem/voxelizer.h"
#include "core/vec3.h"
#include "dock/mmgbsa.h"
#include "models/regressor.h"

namespace df::serve {

/// One docked pose to score: a posed ligand conformer plus the (borrowed)
/// receptor pocket it was docked into. The pocket pointer must outlive the
/// request it rides in. Ownership is deliberately asymmetric: ligands are
/// small and per-pose, so the request owns a copy and stays valid however
/// long it queues; pockets are hundreds of atoms shared by thousands of
/// poses of the same target, so they are borrowed.
struct PoseInput {
  chem::Molecule ligand;
  const std::vector<chem::Atom>* pocket = nullptr;
  core::Vec3 site_center;
};

class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual std::string name() const = 0;

  /// Score a micro-batch, one result per pose in order. Called by exactly
  /// one thread at a time (the replica contract); the batch may mix poses
  /// from different clients.
  virtual std::vector<float> score(const std::vector<const PoseInput*>& poses) = 0;
};

/// Throws std::logic_error when two threads enter the same replica
/// concurrently — the enforcement half of the Regressor replica contract
/// (models/regressor.h). Zero cost beyond one relaxed atomic flip per batch.
class ReplicaGuard {
 public:
  explicit ReplicaGuard(std::atomic<bool>& busy);
  ~ReplicaGuard();
  ReplicaGuard(const ReplicaGuard&) = delete;
  ReplicaGuard& operator=(const ReplicaGuard&) = delete;

 private:
  std::atomic<bool>& busy_;
};

/// Neural-net backend: featurizes each pose (voxel grid + spatial graph)
/// and runs the model's batched eval path — the per-rank "featurize and
/// score" loop of paper Fig. 3, packaged as a replica.
class RegressorScorer : public Scorer {
 public:
  RegressorScorer(std::string name, std::unique_ptr<models::Regressor> model,
                  const chem::VoxelConfig& voxel, const chem::GraphFeaturizerConfig& graph);

  std::string name() const override { return name_; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

 private:
  std::string name_;
  std::unique_ptr<models::Regressor> model_;
  chem::Voxelizer voxelizer_;
  chem::GraphFeaturizer featurizer_;
  std::atomic<bool> busy_{false};
};

/// Empirical docking backend: Vina functional form converted to predicted
/// pK — the cheap end of the paper's three-way cost comparison.
class VinaPkScorer : public Scorer {
 public:
  explicit VinaPkScorer(dock::VinaWeights weights = {}) : weights_(weights) {}

  std::string name() const override { return "vina_pk"; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

 private:
  dock::VinaWeights weights_;
};

/// Physics rescoring backend: single-point MM/GBSA per pose (kcal/mol,
/// negative = better). Orders of magnitude slower than the nets — it lives
/// under its own name so its poses never share (and thus stall) a Fusion
/// micro-batch; the batcher dispatches ready batches of other scorers
/// ahead of a partial MM/GBSA head. Worker time is still shared FIFO, so
/// give sustained heavy rescoring traffic its own service instance.
class MmGbsaScorer : public Scorer {
 public:
  explicit MmGbsaScorer(dock::MmGbsaConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "mmgbsa"; }
  std::vector<float> score(const std::vector<const PoseInput*>& poses) override;

 private:
  dock::MmGbsaConfig cfg_;
};

}  // namespace df::serve
