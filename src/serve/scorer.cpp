#include "serve/scorer.h"

#include <stdexcept>
#include <utility>

#include "dock/scoring.h"

namespace df::serve {

ReplicaGuard::ReplicaGuard(std::atomic<bool>& busy) : busy_(busy) {
  if (busy_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error(
        "scorer replica entered concurrently — replicas are single-threaded; "
        "build one per worker (see models/regressor.h replica contract)");
  }
}

ReplicaGuard::~ReplicaGuard() { busy_.store(false, std::memory_order_release); }

namespace {

/// The built-in backends all dereference the borrowed pocket; turn a
/// client's forgotten pointer into the service's typed kScorerFailure
/// instead of a process-killing segfault.
const std::vector<chem::Atom>& pocket_of(const PoseInput& pose, const std::string& scorer) {
  if (pose.pocket == nullptr) {
    throw std::invalid_argument("scorer '" + scorer + "': pose has a null pocket pointer");
  }
  return *pose.pocket;
}

}  // namespace

RegressorScorer::RegressorScorer(std::string name, std::unique_ptr<models::Regressor> model,
                                 const chem::VoxelConfig& voxel,
                                 const chem::GraphFeaturizerConfig& graph)
    : name_(std::move(name)), model_(std::move(model)), voxelizer_(voxel), featurizer_(graph) {
  model_->set_training(false);
}

std::vector<float> RegressorScorer::score(const std::vector<const PoseInput*>& poses) {
  ReplicaGuard guard(busy_);
  std::vector<data::Sample> batch;
  batch.reserve(poses.size());
  for (const PoseInput* p : poses) {
    const std::vector<chem::Atom>& pocket = pocket_of(*p, name_);
    data::Sample s;
    s.voxel = voxelizer_.voxelize(p->ligand, pocket, p->site_center);
    s.graph = featurizer_.featurize(p->ligand, pocket);
    batch.push_back(std::move(s));
  }
  std::vector<const data::Sample*> ptrs;
  ptrs.reserve(batch.size());
  for (const data::Sample& s : batch) ptrs.push_back(&s);
  return model_->predict_batch(ptrs);
}

std::vector<float> VinaPkScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(
        dock::score_to_pk(dock::vina_score(p->ligand, pocket_of(*p, "vina_pk"), weights_)));
  }
  return out;
}

std::vector<float> MmGbsaScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(dock::mmgbsa_score(p->ligand, pocket_of(*p, "mmgbsa"), cfg_));
  }
  return out;
}

}  // namespace df::serve
