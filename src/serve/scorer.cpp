#include "serve/scorer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "core/threadpool.h"
#include "dock/scoring.h"

namespace df::serve {

ReplicaGuard::ReplicaGuard(std::atomic<bool>& busy) : busy_(busy) {
  if (busy_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error(
        "scorer replica entered concurrently — replicas are single-threaded; "
        "build one per worker (see models/regressor.h replica contract)");
  }
}

ReplicaGuard::~ReplicaGuard() { busy_.store(false, std::memory_order_release); }

namespace {

/// The built-in backends all dereference the borrowed pocket; turn a
/// client's forgotten pointer into the service's typed kScorerFailure
/// instead of a process-killing segfault.
const std::vector<chem::Atom>& pocket_of(const PoseInput& pose, const std::string& scorer) {
  if (pose.pocket == nullptr) {
    throw std::invalid_argument("scorer '" + scorer + "': pose has a null pocket pointer");
  }
  return *pose.pocket;
}

}  // namespace

RegressorScorer::RegressorScorer(std::string name, std::unique_ptr<models::Regressor> model,
                                 const chem::VoxelConfig& voxel,
                                 const chem::GraphFeaturizerConfig& graph, int featurize_threads)
    : name_(std::move(name)), model_(std::move(model)), voxelizer_(voxel), featurizer_(graph) {
  if (voxel.feature_set_version != graph.feature_set_version) {
    throw std::invalid_argument(
        "RegressorScorer '" + name_ + "': voxel feature_set_version (" +
        std::to_string(voxel.feature_set_version) + ") != graph feature_set_version (" +
        std::to_string(graph.feature_set_version) + ") — a model is trained against one contract");
  }
  model_->set_training(false);
  const size_t lanes = featurize_threads > 1 ? static_cast<size_t>(featurize_threads) : 1;
  feat_ws_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) feat_ws_.push_back(std::make_unique<core::Workspace>());
  if (lanes > 1) feat_pool_ = std::make_unique<core::ThreadPool>(lanes);
}

// The stage-pipelined executor (ScorerPipeline): a bounded ring of
// `depth` micro-batch slots, one background stage thread that featurizes
// submitted slots strictly in submit order, and a caller-driven collect()
// that forwards the oldest ready slot. Three monotone sequence numbers
// (submit / stage / collect) define slot ownership; every handoff goes
// through mu_, which gives the happens-before edges the unlocked slot
// bodies rely on. Each slot owns its own featurize-lane arenas, so the
// stage thread never touches the forward arena a concurrent collect() is
// using, and steady state stays heap-free once every slot has warmed.
class RegressorScorer::Pipeline : public ScorerPipeline {
 public:
  Pipeline(RegressorScorer& owner, int depth)
      : owner_(owner), depth_(depth), slots_(static_cast<size_t>(depth)) {
    for (Slot& s : slots_) {
      s.lane_ws.reserve(owner_.feat_ws_.size());
      for (size_t i = 0; i < owner_.feat_ws_.size(); ++i) {
        s.lane_ws.push_back(std::make_unique<core::Workspace>());
      }
    }
    stage_ = std::thread([this] { stage_main(); });
  }

  ~Pipeline() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    stage_.join();
  }

  int depth() const override { return depth_; }

  size_t in_flight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<size_t>(submit_seq_ - collect_seq_);
  }

  void submit(std::vector<const PoseInput*> poses) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return submit_seq_ - collect_seq_ < static_cast<uint64_t>(depth_); });
    Slot& s = slots_[static_cast<size_t>(submit_seq_ % slots_.size())];
    s.poses = std::move(poses);
    ++submit_seq_;
    cv_.notify_all();
  }

  std::vector<float> collect() override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (collect_seq_ == submit_seq_) {
        throw std::logic_error("ScorerPipeline::collect(): no batch in flight");
      }
      cv_.wait(lock, [&] { return collect_seq_ < stage_seq_; });
    }
    // The slot is exclusively ours until collect_seq_ advances: the stage
    // thread only touches slots with index < submit_seq_ not yet staged,
    // and submit() refuses to reuse the slot while it counts as in flight.
    Slot& s = slots_[static_cast<size_t>(collect_seq_ % slots_.size())];
    if (s.error) {
      std::exception_ptr err = s.error;
      s.error = nullptr;
      release_slot(s);
      std::rethrow_exception(err);
    }

    ReplicaGuard guard(owner_.busy_);
    const size_t n = s.poses.size();
    const auto t1 = std::chrono::steady_clock::now();
    std::vector<float> out;
    {
      owner_.forward_ws_.reset();
      core::Workspace::Bind bind(owner_.forward_ws_);
      std::vector<const data::Sample*> ptrs;
      ptrs.reserve(s.batch.size());
      for (const data::Sample& sample : s.batch) ptrs.push_back(&sample);
      out = owner_.model_->predict_batch(ptrs);
    }
    const auto t2 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> slock(owner_.stats_mu_);
      owner_.stats_.batches += 1;
      owner_.stats_.poses += n;
      owner_.stats_.featurize_seconds += s.featurize_seconds;
      owner_.stats_.forward_seconds += std::chrono::duration<double>(t2 - t1).count();
    }
    release_slot(s);
    return out;
  }

 private:
  struct Slot {
    std::vector<const PoseInput*> poses;
    std::vector<data::Sample> batch;
    std::vector<core::Tensor> grids;
    std::vector<std::shared_ptr<const PocketCache::Entry>> cache_refs;
    // Per-slot lane arenas (index 0 doubles as the grid arena): feature
    // tensors live here from stage until the forward consumes them.
    std::vector<std::unique_ptr<core::Workspace>> lane_ws;
    std::exception_ptr error;
    double featurize_seconds = 0.0;
  };

  void release_slot(Slot& s) {
    // Drop pose pointers and cache pins eagerly — the poses belong to the
    // caller's request, the cache entries should become evictable. The
    // batch tensors are arena-borrowed; the slot's next occupant rewinds
    // the arenas before reuse.
    s.poses.clear();
    s.cache_refs.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++collect_seq_;
    }
    cv_.notify_all();
  }

  void stage_main() {
    // The stage thread is a peer of whoever owns the shared compute pool
    // (a service worker, a bench thread): it must never submit to it, for
    // the same reason service workers install this scope (core/parallel.h).
    core::SerialComputeScope serial;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || stage_seq_ < submit_seq_; });
      if (stop_) return;
      Slot& s = slots_[static_cast<size_t>(stage_seq_ % slots_.size())];
      lock.unlock();
      const auto f0 = std::chrono::steady_clock::now();
      try {
        for (auto& ws : s.lane_ws) ws->reset();
        owner_.featurize_batch(s.poses, s.batch, s.lane_ws, owner_.feat_pool_.get(),
                               *s.lane_ws[0], s.grids, s.cache_refs);
      } catch (...) {
        s.error = std::current_exception();
      }
      s.featurize_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - f0).count();
      lock.lock();
      ++stage_seq_;
      cv_.notify_all();
    }
  }

  RegressorScorer& owner_;
  const int depth_;
  std::vector<Slot> slots_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t submit_seq_ = 0;   // next slot to fill
  uint64_t stage_seq_ = 0;    // next slot the stage thread featurizes
  uint64_t collect_seq_ = 0;  // next slot the forward consumes
  bool stop_ = false;
  std::thread stage_;
};

RegressorScorer::~RegressorScorer() {
  pipeline_.reset();  // join the stage thread before any member dies
}

ScorerPipeline* RegressorScorer::pipeline() { return pipeline_.get(); }

void RegressorScorer::set_pipeline_depth(int depth) {
  if (pipeline_ != nullptr && pipeline_->in_flight() > 0) {
    throw std::logic_error("RegressorScorer '" + name_ +
                           "': set_pipeline_depth with batches in flight");
  }
  pipeline_.reset();
  if (depth >= 1) pipeline_ = std::make_unique<Pipeline>(*this, depth);
}

void RegressorScorer::set_pocket_cache(std::shared_ptr<PocketCache> cache) {
  if (pipeline_ != nullptr && pipeline_->in_flight() > 0) {
    throw std::logic_error("RegressorScorer '" + name_ +
                           "': set_pocket_cache with batches in flight");
  }
  pocket_cache_ = std::move(cache);
}

RegressorScorer::PhaseStats RegressorScorer::phase_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

RegressorScorer::WorkspaceBudgets RegressorScorer::workspace_capacities() const {
  WorkspaceBudgets b;
  b.forward_floats = forward_ws_.capacity();
  for (const auto& ws : feat_ws_) b.feat_floats = std::max(b.feat_floats, ws->capacity());
  return b;
}

void RegressorScorer::reserve_workspaces(const WorkspaceBudgets& budgets) {
  forward_ws_.reserve(budgets.forward_floats);
  for (auto& ws : feat_ws_) ws->reserve(budgets.feat_floats);
}

void RegressorScorer::featurize_batch(
    const std::vector<const PoseInput*>& poses, std::vector<data::Sample>& batch,
    std::vector<std::unique_ptr<core::Workspace>>& lane_ws, core::ThreadPool* pool,
    core::Workspace& grid_ws, std::vector<core::Tensor>& grids,
    std::vector<std::shared_ptr<const PocketCache::Entry>>& cache_refs) {
  const size_t n = poses.size();
  batch.clear();
  batch.resize(n);
  grids.clear();
  cache_refs.clear();

  // Amortize pocket splatting: the poses of a batch overwhelmingly dock
  // into one shared pocket, whose voxel block is pose-independent. Build
  // each distinct (pocket, center) grid once — or fetch it from the
  // cross-request cache, which also hands back the crop CellList — then
  // per pose splat only the ligand and graft the cached block, bitwise
  // identical to the joint voxelization. Without a cache, v2's H-bond
  // channel couples ligand and pocket and each pose falls back to a full
  // joint voxelize (the PR 9 behaviour); cache entries route through the
  // pocket-aware graft, which re-derives the coupling per pose and is
  // valid at every feature-set version.
  const bool use_cache = pocket_cache_ != nullptr;
  const bool amortize_pocket = use_cache || voxelizer_.config().feature_set_version < 2;
  std::vector<const core::Tensor*> pocket_grid(n, nullptr);
  std::vector<const chem::CellList*> crop_cells(n, nullptr);
  std::vector<std::pair<const std::vector<chem::Atom>*, core::Vec3>> grid_keys;
  grids.reserve(n);  // pointers into `grids` are handed out below
  if (amortize_pocket) {
    // Cache lookups build heap-owned entries (Workspace::Unbind inside);
    // only the per-batch grids bind the grid arena.
    for (size_t i = 0; i < n; ++i) {
      const PoseInput& p = *poses[i];
      const std::vector<chem::Atom>& pocket = pocket_of(p, name_);
      size_t g = 0;
      for (; g < grid_keys.size(); ++g) {
        if (grid_keys[g].first == &pocket && grid_keys[g].second.x == p.site_center.x &&
            grid_keys[g].second.y == p.site_center.y && grid_keys[g].second.z == p.site_center.z)
          break;
      }
      if (g == grid_keys.size()) {
        grid_keys.emplace_back(&pocket, p.site_center);
        if (use_cache) {
          cache_refs.push_back(pocket_cache_->lookup(pocket, p.site_center, voxelizer_, featurizer_));
        } else {
          core::Workspace::Bind bind(grid_ws);
          grids.push_back(voxelizer_.voxelize_pocket(pocket, p.site_center));
        }
      }
      if (use_cache) {
        pocket_grid[i] = &cache_refs[g]->grid;
        crop_cells[i] = cache_refs[g]->crop_cells.built() ? &cache_refs[g]->crop_cells : nullptr;
      } else {
        pocket_grid[i] = &grids[g];
      }
    }
  }

  const size_t lanes = std::min(lane_ws.size(), std::max<size_t>(n, 1));
  auto featurize_lane = [&](size_t lane) {
    // Bind (not Scope): the samples carved here must outlive the lane —
    // they feed the forward stage and die at the owner's next reset.
    core::Workspace::Bind bind(*lane_ws[lane]);
    const size_t begin = n * lane / lanes;
    const size_t end = n * (lane + 1) / lanes;
    for (size_t i = begin; i < end; ++i) {
      const PoseInput& p = *poses[i];
      const std::vector<chem::Atom>& pocket = pocket_of(p, name_);
      batch[i].voxel =
          pocket_grid[i] != nullptr
              ? voxelizer_.voxelize_ligand_onto(p.ligand, pocket, *pocket_grid[i], p.site_center)
              : voxelizer_.voxelize(p.ligand, pocket, p.site_center);
      batch[i].graph = featurizer_.featurize(p.ligand, pocket, crop_cells[i]);
    }
  };
  if (pool != nullptr && lanes > 1) {
    core::parallel_for(*pool, lanes, featurize_lane);
  } else {
    featurize_lane(0);
  }
}

std::vector<float> RegressorScorer::score(const std::vector<const PoseInput*>& poses) {
  if (pipeline_ != nullptr && pipeline_->in_flight() > 0) {
    throw std::logic_error("RegressorScorer '" + name_ +
                           "': score() while pipelined batches are in flight — "
                           "collect() them first");
  }
  ReplicaGuard guard(busy_);
  const auto t0 = std::chrono::steady_clock::now();
  // Rewind the arenas: last batch's tensors are dead, their blocks get
  // reused cache-warm. After warmup no call below touches the heap for
  // tensor data.
  forward_ws_.reset();
  for (auto& ws : feat_ws_) ws->reset();

  std::vector<data::Sample> batch;
  std::vector<core::Tensor> grids;
  std::vector<std::shared_ptr<const PocketCache::Entry>> cache_refs;
  featurize_batch(poses, batch, feat_ws_, feat_pool_.get(), forward_ws_, grids, cache_refs);
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<const data::Sample*> ptrs;
  ptrs.reserve(batch.size());
  for (const data::Sample& s : batch) ptrs.push_back(&s);
  std::vector<float> out;
  {
    core::Workspace::Bind bind(forward_ws_);
    out = model_->predict_batch(ptrs);
  }
  const auto t2 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.batches += 1;
    stats_.poses += poses.size();
    stats_.featurize_seconds += std::chrono::duration<double>(t1 - t0).count();
    stats_.forward_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  return out;
}

std::vector<float> VinaPkScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(
        dock::score_to_pk(dock::vina_score(p->ligand, pocket_of(*p, "vina_pk"), weights_)));
  }
  return out;
}

std::vector<float> MmGbsaScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(dock::mmgbsa_score(p->ligand, pocket_of(*p, "mmgbsa"), cfg_));
  }
  return out;
}

}  // namespace df::serve
