#include "serve/scorer.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/threadpool.h"
#include "dock/scoring.h"

namespace df::serve {

ReplicaGuard::ReplicaGuard(std::atomic<bool>& busy) : busy_(busy) {
  if (busy_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error(
        "scorer replica entered concurrently — replicas are single-threaded; "
        "build one per worker (see models/regressor.h replica contract)");
  }
}

ReplicaGuard::~ReplicaGuard() { busy_.store(false, std::memory_order_release); }

namespace {

/// The built-in backends all dereference the borrowed pocket; turn a
/// client's forgotten pointer into the service's typed kScorerFailure
/// instead of a process-killing segfault.
const std::vector<chem::Atom>& pocket_of(const PoseInput& pose, const std::string& scorer) {
  if (pose.pocket == nullptr) {
    throw std::invalid_argument("scorer '" + scorer + "': pose has a null pocket pointer");
  }
  return *pose.pocket;
}

}  // namespace

RegressorScorer::RegressorScorer(std::string name, std::unique_ptr<models::Regressor> model,
                                 const chem::VoxelConfig& voxel,
                                 const chem::GraphFeaturizerConfig& graph, int featurize_threads)
    : name_(std::move(name)), model_(std::move(model)), voxelizer_(voxel), featurizer_(graph) {
  if (voxel.feature_set_version != graph.feature_set_version) {
    throw std::invalid_argument(
        "RegressorScorer '" + name_ + "': voxel feature_set_version (" +
        std::to_string(voxel.feature_set_version) + ") != graph feature_set_version (" +
        std::to_string(graph.feature_set_version) + ") — a model is trained against one contract");
  }
  model_->set_training(false);
  const size_t lanes = featurize_threads > 1 ? static_cast<size_t>(featurize_threads) : 1;
  feat_ws_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) feat_ws_.push_back(std::make_unique<core::Workspace>());
  if (lanes > 1) feat_pool_ = std::make_unique<core::ThreadPool>(lanes);
}

RegressorScorer::~RegressorScorer() = default;

RegressorScorer::WorkspaceBudgets RegressorScorer::workspace_capacities() const {
  WorkspaceBudgets b;
  b.forward_floats = forward_ws_.capacity();
  for (const auto& ws : feat_ws_) b.feat_floats = std::max(b.feat_floats, ws->capacity());
  return b;
}

void RegressorScorer::reserve_workspaces(const WorkspaceBudgets& budgets) {
  forward_ws_.reserve(budgets.forward_floats);
  for (auto& ws : feat_ws_) ws->reserve(budgets.feat_floats);
}

std::vector<float> RegressorScorer::score(const std::vector<const PoseInput*>& poses) {
  ReplicaGuard guard(busy_);
  const auto t0 = std::chrono::steady_clock::now();
  // Rewind the arenas: last batch's tensors are dead, their blocks get
  // reused cache-warm. After warmup no call below touches the heap for
  // tensor data.
  forward_ws_.reset();
  for (auto& ws : feat_ws_) ws->reset();

  const size_t n = poses.size();
  std::vector<data::Sample> batch(n);

  // Amortize pocket splatting: the poses of a batch overwhelmingly dock
  // into one shared pocket, whose voxel block is pose-independent. Build
  // each distinct (pocket, center) grid once, then per pose splat only the
  // ligand and graft the cached block — bitwise identical to the joint
  // voxelization (disjoint channel blocks). v2's H-bond channel couples
  // ligand and pocket, so the amortization is invalid there: each pose
  // falls back to a full joint voxelize below.
  const bool amortize_pocket = voxelizer_.config().feature_set_version < 2;
  std::vector<const core::Tensor*> pocket_grid(n, nullptr);
  std::vector<std::pair<const std::vector<chem::Atom>*, core::Vec3>> grid_keys;
  std::vector<core::Tensor> grids;
  grids.reserve(n);  // pointers into `grids` are handed out below
  if (amortize_pocket) {
    core::Workspace::Bind bind(forward_ws_);
    for (size_t i = 0; i < n; ++i) {
      const PoseInput& p = *poses[i];
      const std::vector<chem::Atom>& pocket = pocket_of(p, name_);
      size_t g = 0;
      for (; g < grid_keys.size(); ++g) {
        if (grid_keys[g].first == &pocket && grid_keys[g].second.x == p.site_center.x &&
            grid_keys[g].second.y == p.site_center.y && grid_keys[g].second.z == p.site_center.z)
          break;
      }
      if (g == grid_keys.size()) {
        grid_keys.emplace_back(&pocket, p.site_center);
        grids.push_back(voxelizer_.voxelize_pocket(pocket, p.site_center));
      }
      pocket_grid[i] = &grids[g];
    }
  }

  const size_t lanes = std::min(feat_ws_.size(), std::max<size_t>(n, 1));
  auto featurize_lane = [&](size_t lane) {
    // Bind (not Scope): the samples carved here must outlive the lane —
    // they feed the forward below and die at the next score()'s reset.
    core::Workspace::Bind bind(*feat_ws_[lane]);
    const size_t begin = n * lane / lanes;
    const size_t end = n * (lane + 1) / lanes;
    for (size_t i = begin; i < end; ++i) {
      const PoseInput& p = *poses[i];
      const std::vector<chem::Atom>& pocket = pocket_of(p, name_);
      batch[i].voxel = amortize_pocket
                           ? voxelizer_.voxelize_ligand_onto(p.ligand, *pocket_grid[i], p.site_center)
                           : voxelizer_.voxelize(p.ligand, pocket, p.site_center);
      batch[i].graph = featurizer_.featurize(p.ligand, pocket);
    }
  };
  if (feat_pool_ != nullptr && lanes > 1) {
    core::parallel_for(*feat_pool_, lanes, featurize_lane);
  } else {
    featurize_lane(0);
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<const data::Sample*> ptrs;
  ptrs.reserve(batch.size());
  for (const data::Sample& s : batch) ptrs.push_back(&s);
  std::vector<float> out;
  {
    core::Workspace::Bind bind(forward_ws_);
    out = model_->predict_batch(ptrs);
  }
  const auto t2 = std::chrono::steady_clock::now();
  stats_.batches += 1;
  stats_.poses += n;
  stats_.featurize_seconds += std::chrono::duration<double>(t1 - t0).count();
  stats_.forward_seconds += std::chrono::duration<double>(t2 - t1).count();
  return out;
}

std::vector<float> VinaPkScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(
        dock::score_to_pk(dock::vina_score(p->ligand, pocket_of(*p, "vina_pk"), weights_)));
  }
  return out;
}

std::vector<float> MmGbsaScorer::score(const std::vector<const PoseInput*>& poses) {
  std::vector<float> out;
  out.reserve(poses.size());
  for (const PoseInput* p : poses) {
    out.push_back(dock::mmgbsa_score(p->ligand, pocket_of(*p, "mmgbsa"), cfg_));
  }
  return out;
}

}  // namespace df::serve
