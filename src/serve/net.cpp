#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace df::serve::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

bool make_sockaddr(const std::string& host, int port, sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  // Numeric IPv4 only — the cluster plane addresses nodes by IP (loopback in
  // tests); name resolution stays out of the hot path and the sandbox.
  if (host.empty() || host == "localhost") {
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error) *error = "net: not a numeric IPv4 address: '" + host + "'";
    return false;
  }
  return true;
}

}  // namespace

TcpConn::TcpConn(int fd) : fd_(fd) {}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), timed_out_(o.timed_out_), error_(std::move(o.error_)) {}

TcpConn& TcpConn::operator=(TcpConn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    timed_out_ = o.timed_out_;
    error_ = std::move(o.error_);
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool TcpConn::wait_io(bool for_read, double timeout_ms, double elapsed_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = for_read ? POLLIN : POLLOUT;
  int wait = -1;  // infinite
  if (timeout_ms > 0) {
    const double remaining = timeout_ms - elapsed_ms;
    if (remaining <= 0) {
      timed_out_ = true;
      error_ = for_read ? "net: recv deadline exceeded" : "net: send deadline exceeded";
      return false;
    }
    wait = static_cast<int>(remaining) + 1;
  }
  for (;;) {
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;
    if (rc == 0) {
      timed_out_ = true;
      error_ = for_read ? "net: recv deadline exceeded" : "net: send deadline exceeded";
      return false;
    }
    if (errno == EINTR) continue;
    error_ = errno_message("net: poll");
    return false;
  }
}

bool TcpConn::send_all(const void* data, size_t len, double timeout_ms) {
  timed_out_ = false;
  if (fd_ < 0) {
    error_ = "net: send on closed connection";
    return false;
  }
  const char* p = static_cast<const char*>(data);
  const auto t0 = std::chrono::steady_clock::now();
  size_t sent = 0;
  while (sent < len) {
    if (!wait_io(/*for_read=*/false, timeout_ms, ms_since(t0))) return false;
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    error_ = errno_message("net: send");
    return false;
  }
  return true;
}

bool TcpConn::recv_exact(void* data, size_t len, double timeout_ms) {
  timed_out_ = false;
  if (fd_ < 0) {
    error_ = "net: recv on closed connection";
    return false;
  }
  char* p = static_cast<char*>(data);
  const auto t0 = std::chrono::steady_clock::now();
  size_t got = 0;
  while (got < len) {
    if (!wait_io(/*for_read=*/true, timeout_ms, ms_since(t0))) return false;
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      error_ = "net: connection closed by peer";
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    error_ = errno_message("net: recv");
    return false;
  }
  return true;
}

TcpConn tcp_connect(const std::string& host, int port, double timeout_ms, std::string* error) {
  sockaddr_in addr{};
  if (!make_sockaddr(host, port, &addr, error)) return TcpConn();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = errno_message("net: socket");
    return TcpConn();
  }
  // Non-blocking connect so the deadline is honored, then back to blocking
  // (per-call poll guards handle I/O deadlines from here on).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (error) *error = errno_message("net: connect");
    ::close(fd);
    return TcpConn();
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int wait = timeout_ms > 0 ? static_cast<int>(timeout_ms) + 1 : -1;
    do {
      rc = ::poll(&pfd, 1, wait);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      if (error) *error = "net: connect deadline exceeded";
      ::close(fd);
      return TcpConn();
    }
    int so_error = 0;
    socklen_t slen = sizeof(so_error);
    if (rc < 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &slen) != 0 || so_error != 0) {
      if (error) {
        errno = so_error != 0 ? so_error : errno;
        *error = errno_message("net: connect");
      }
      ::close(fd);
      return TcpConn();
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(const std::string& address, int port, int backlog, std::string* error) {
  close();
  sockaddr_in addr{};
  if (!make_sockaddr(address, port, &addr, error)) return false;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = errno_message("net: socket");
    return false;
  }
  // Chaos harness restarts a node on the same port moments after SIGKILL —
  // without SO_REUSEADDR the TIME_WAIT remnant would make bind() flaky.
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = errno_message("net: bind");
    close();
    return false;
  }
  if (::listen(fd_, backlog) != 0) {
    if (error) *error = errno_message("net: listen");
    close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  return true;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  port_ = 0;
}

void TcpListener::interrupt() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

TcpConn TcpListener::accept(double timeout_ms, bool* timed_out, std::string* error) {
  if (timed_out) *timed_out = false;
  if (fd_ < 0) {
    if (error) *error = "net: accept on closed listener";
    return TcpConn();
  }
  pollfd pfds[2]{};
  pfds[0].fd = fd_;
  pfds[0].events = POLLIN;
  pfds[1].fd = wake_fd_;  // -1 entries are ignored by poll
  pfds[1].events = POLLIN;
  const int wait = timeout_ms > 0 ? static_cast<int>(timeout_ms) + 1 : -1;
  int rc;
  do {
    rc = ::poll(pfds, 2, wait);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    if (timed_out) *timed_out = true;
    return TcpConn();
  }
  if (rc < 0) {
    if (error) *error = errno_message("net: poll(accept)");
    return TcpConn();
  }
  if (pfds[1].revents != 0) {
    // interrupt(): sticky by design — the eventfd is never drained, so every
    // accept() fails fast until close(); the caller is shutting down.
    if (error) *error = "net: accept interrupted";
    return TcpConn();
  }
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (error) *error = errno_message("net: accept");
    return TcpConn();
  }
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(cfd);
}

}  // namespace df::serve::net
