#include "serve/registry.h"

#include <stdexcept>
#include <utility>

#include "compile/model_compiler.h"
#include "data/dataset.h"
#include "data/pdbbind.h"
#include "models/baselines.h"
#include "models/cnn3d.h"
#include "models/fusion.h"
#include "models/sgcnn.h"
#include "quant/quantize.h"

namespace df::serve {

namespace {

// Calibration corpus for the *_int8 backends: a small fixed-seed synthetic
// PDBbind slice featurized with the backend's own voxel/graph configs. A
// pure function of its inputs, so every process, replica and thread count
// calibrates against byte-identical samples — which, with the deterministic
// quantization pass, makes int8 replicas bitwise-identical.
constexpr uint64_t kCalibSeed = 7103;

std::shared_ptr<const std::vector<data::Sample>> make_calibration_samples(
    const chem::VoxelConfig& voxel, const chem::GraphFeaturizerConfig& graph) {
  data::PdbbindConfig cfg;
  cfg.num_complexes = 24;
  cfg.core_size = 4;
  cfg.settle_runs = 1;
  cfg.settle_steps = 8;
  core::Rng rng(kCalibSeed);
  const std::vector<data::ComplexRecord> recs = data::SyntheticPdbbind(cfg).generate(rng);
  data::DatasetConfig dc;
  dc.voxel = voxel;
  dc.graph = graph;
  std::vector<int> idx(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) idx[i] = static_cast<int>(i);
  data::ComplexDataset ds(&recs, std::move(idx), dc);
  const std::vector<int64_t> sel = quant::select_calibration_indices(
      kCalibSeed, static_cast<int64_t>(ds.size()), /*sample_size=*/16);
  auto out = std::make_shared<std::vector<data::Sample>>();
  out->reserve(sel.size());
  core::Rng srng(1);  // unused: eval datasets never augment
  for (int64_t i : sel) out->push_back(ds.get(static_cast<size_t>(i), srng));
  return out;
}

}  // namespace

ModelRegistry::ModelRegistry(ModelRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  factories_ = std::move(other.factories_);
}

void ModelRegistry::add(const std::string& name, ScorerFactory factory) {
  if (name.empty()) throw std::invalid_argument("registry: scorer name must be non-empty");
  if (!factory) throw std::invalid_argument("registry: null factory for scorer '" + name + "'");
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("registry: scorer '" + name + "' is already registered");
  }
}

bool ModelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<Scorer> ModelRegistry::make(const std::string& name) const {
  ScorerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw std::out_of_range("registry: no scorer named '" + name + "'");
    }
    factory = it->second;
  }
  return factory();  // invoke outside the lock: factories may be slow
}

std::map<std::string, ScorerFactory> ModelRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_;
}

void add_regressor(ModelRegistry& registry, const std::string& name,
                   models::RegressorFactory make_model, const chem::VoxelConfig& voxel,
                   const chem::GraphFeaturizerConfig& graph, int featurize_threads,
                   int pipeline_depth) {
  registry.add(name, [name, make_model = std::move(make_model), voxel, graph, featurize_threads,
                      pipeline_depth] {
    auto scorer = std::make_unique<RegressorScorer>(name, make_model(), voxel, graph,
                                                    featurize_threads);
    if (pipeline_depth >= 1) scorer->set_pipeline_depth(pipeline_depth);
    return scorer;
  });
}

void add_compiled(ModelRegistry& registry, const std::string& name,
                  const std::string& artifact_path, const chem::VoxelConfig& voxel,
                  const chem::GraphFeaturizerConfig& graph, int featurize_threads,
                  int pipeline_depth) {
  // Open once, eagerly: registration fails fast on a missing/damaged
  // artifact, and all replicas share the one validated mapping.
  std::shared_ptr<io::ArtifactReader> image = io::ArtifactReader::open(artifact_path);
  // The artifact records the featurization contract the model was trained
  // against; a replica featurizing with a different version would silently
  // feed the net features it has never seen. Fail at registration, not at
  // first score.
  const int64_t artifact_fsv = image->has("meta/feature_set_version")
                                   ? image->scalar("meta/feature_set_version")
                                   : 1;
  if (artifact_fsv != voxel.feature_set_version ||
      artifact_fsv != graph.feature_set_version) {
    throw std::invalid_argument(
        "add_compiled('" + name + "'): artifact feature_set_version " +
        std::to_string(artifact_fsv) + " does not match serving configs (voxel " +
        std::to_string(voxel.feature_set_version) + ", graph " +
        std::to_string(graph.feature_set_version) + ")");
  }
  registry.add(name, [name, image, voxel, graph, featurize_threads, pipeline_depth] {
    compile::CompiledModel cm = compile::load_compiled(image);
    auto scorer = std::make_unique<RegressorScorer>(name, std::move(cm.model), voxel, graph,
                                                    featurize_threads);
    scorer->reserve_workspaces({static_cast<size_t>(cm.budget.forward_floats),
                                static_cast<size_t>(cm.budget.feat_floats)});
    if (pipeline_depth >= 1) scorer->set_pipeline_depth(pipeline_depth);
    return scorer;
  });
}

void add_quantized_regressor(ModelRegistry& registry, const std::string& name,
                             models::RegressorFactory make_model,
                             const chem::VoxelConfig& voxel,
                             const chem::GraphFeaturizerConfig& graph, int featurize_threads,
                             int pipeline_depth) {
  // Calibration featurization is paid once, by the first replica; the
  // samples are immutable afterwards and shared by every later mint.
  struct CalibCache {
    std::mutex mu;
    std::shared_ptr<const std::vector<data::Sample>> samples;
  };
  auto cache = std::make_shared<CalibCache>();
  registry.add(name, [name, make_model = std::move(make_model), voxel, graph, featurize_threads,
                      pipeline_depth, cache] {
    std::shared_ptr<const std::vector<data::Sample>> samples;
    {
      std::lock_guard<std::mutex> lock(cache->mu);
      if (cache->samples == nullptr) cache->samples = make_calibration_samples(voxel, graph);
      samples = cache->samples;
    }
    std::unique_ptr<models::Regressor> model = make_model();
    compile::ModelCompiler().compile(*model);
    std::vector<const data::Sample*> ptrs;
    ptrs.reserve(samples->size());
    for (const data::Sample& s : *samples) ptrs.push_back(&s);
    quant::QuantizeOptions qo;
    qo.calib.seed = kCalibSeed;
    quant::quantize_model(*model, ptrs, qo);
    auto scorer = std::make_unique<RegressorScorer>(name, std::move(model), voxel, graph,
                                                    featurize_threads);
    if (pipeline_depth >= 1) scorer->set_pipeline_depth(pipeline_depth);
    return scorer;
  });
}

ModelRegistry default_registry(const chem::VoxelConfig& voxel,
                               const chem::GraphFeaturizerConfig& graph) {
  ModelRegistry reg;
  reg.add("vina_pk", [] { return std::make_unique<VinaPkScorer>(); });
  reg.add("mmgbsa", [] { return std::make_unique<MmGbsaScorer>(); });

  // Untrained reference nets with fixed seeds: deterministic across replicas
  // and runs, useful for serving demos, benches and tests.
  add_regressor(reg, "sgcnn", [] {
    core::Rng rng(101);
    return std::make_unique<models::Sgcnn>(models::SgcnnConfig{}, rng);
  }, voxel, graph);

  const auto cnn_cfg = [voxel] {
    models::Cnn3dConfig cfg;
    cfg.in_channels = voxel.channels();
    cfg.grid_dim = voxel.grid_dim;
    return cfg;
  };
  add_regressor(reg, "cnn3d", [cnn_cfg] {
    core::Rng rng(102);
    return std::make_unique<models::Cnn3d>(cnn_cfg(), rng);
  }, voxel, graph);

  add_regressor(reg, "late_fusion", [cnn_cfg] {
    core::Rng rng(103);
    auto cnn = std::make_shared<models::Cnn3d>(cnn_cfg(), rng);
    auto sg = std::make_shared<models::Sgcnn>(models::SgcnnConfig{}, rng);
    return std::make_unique<models::LateFusion>(std::move(cnn), std::move(sg));
  }, voxel, graph);

  add_regressor(reg, "pafnucy", [voxel] {
    core::Rng rng(104);
    return models::make_pafnucy(voxel.channels(), voxel.grid_dim, rng);
  }, voxel, graph);

  add_regressor(reg, "kdeep", [voxel] {
    core::Rng rng(105);
    return models::make_kdeep(voxel.channels(), voxel.grid_dim, rng);
  }, voxel, graph);

  // Int8 siblings. "sgcnn_int8"/"cnn3d_int8" share their fp32 sibling's
  // weight seed, so fp32-vs-int8 drift is measurable within one registry.
  add_quantized_regressor(reg, "sgcnn_int8", [] {
    core::Rng rng(101);
    return std::make_unique<models::Sgcnn>(models::SgcnnConfig{}, rng);
  }, voxel, graph);
  add_quantized_regressor(reg, "cnn3d_int8", [cnn_cfg] {
    core::Rng rng(102);
    return std::make_unique<models::Cnn3d>(cnn_cfg(), rng);
  }, voxel, graph);
  add_quantized_regressor(reg, "fusion_int8", [cnn_cfg] {
    core::Rng rng(106);
    models::FusionConfig fc;
    fc.kind = models::FusionKind::Mid;
    auto cnn = std::make_shared<models::Cnn3d>(cnn_cfg(), rng);
    auto sg = std::make_shared<models::Sgcnn>(models::SgcnnConfig{}, rng);
    return std::make_unique<models::FusionModel>(fc, std::move(cnn), std::move(sg), rng);
  }, voxel, graph);
  return reg;
}

}  // namespace df::serve
