#include "serve/wire.h"

#include <cstring>
#include <map>

#include "io/h5lite.h"

namespace df::serve::wire {

namespace {

constexpr size_t kHeaderBytes = 12;  // magic u32 + version u16 + type u16 + len u32
constexpr uint32_t kMaxAtoms = 1u << 22;
constexpr uint32_t kMaxPoses = 1u << 22;
constexpr uint32_t kMaxStrings = 1u << 16;

class Writer {
 public:
  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void str(std::string_view s) {
    pod(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  template <typename T>
  void array(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<uint32_t>(v.size()));
    buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::string str() {
    const uint32_t n = pod<uint32_t>();
    if (n > kMaxPayload) throw WireDecodeError("wire: string length out of range");
    need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  uint32_t count(uint32_t max, const char* what) {
    const uint32_t n = pod<uint32_t>();
    if (n > max) {
      throw WireDecodeError("wire: " + std::string(what) + " count " + std::to_string(n) +
                            " out of range");
    }
    return n;
  }
  void done() const {
    if (pos_ != bytes_.size()) throw WireDecodeError("wire: trailing bytes in payload");
  }

 private:
  void need(size_t n) {
    if (bytes_.size() - pos_ < n) throw WireDecodeError("wire: payload underflow");
  }
  std::string_view bytes_;
  size_t pos_ = 0;
};

void put_atoms(Writer& w, const std::vector<chem::Atom>& atoms) {
  w.pod(static_cast<uint32_t>(atoms.size()));
  for (const chem::Atom& a : atoms) {
    w.pod(static_cast<uint8_t>(a.element));
    w.pod(a.pos.x);
    w.pod(a.pos.y);
    w.pod(a.pos.z);
    w.pod(a.formal_charge);
    w.pod(static_cast<uint8_t>(a.aromatic ? 1 : 0));
    w.pod(a.implicit_h);
  }
}

std::vector<chem::Atom> get_atoms(Reader& r) {
  const uint32_t n = r.count(kMaxAtoms, "atom");
  std::vector<chem::Atom> atoms(n);
  for (chem::Atom& a : atoms) {
    const uint8_t e = r.pod<uint8_t>();
    if (e >= static_cast<uint8_t>(chem::Element::Count)) {
      throw WireDecodeError("wire: element code out of range");
    }
    a.element = static_cast<chem::Element>(e);
    a.pos.x = r.pod<float>();
    a.pos.y = r.pod<float>();
    a.pos.z = r.pod<float>();
    a.formal_charge = r.pod<int8_t>();
    a.aromatic = r.pod<uint8_t>() != 0;
    a.implicit_h = r.pod<int8_t>();
  }
  return atoms;
}

void put_molecule(Writer& w, const chem::Molecule& m) {
  put_atoms(w, m.atoms());
  w.pod(static_cast<uint32_t>(m.num_bonds()));
  for (const chem::Bond& b : m.bonds()) {
    w.pod(b.a);
    w.pod(b.b);
    w.pod(b.order);
  }
}

chem::Molecule get_molecule(Reader& r) {
  const std::vector<chem::Atom> atoms = get_atoms(r);
  chem::Molecule m;
  for (const chem::Atom& a : atoms) {
    const int32_t i = m.add_atom(a.element, a.pos, a.formal_charge, a.aromatic);
    m.atoms()[static_cast<size_t>(i)].implicit_h = a.implicit_h;
  }
  const uint32_t nb = r.count(kMaxAtoms, "bond");
  for (uint32_t i = 0; i < nb; ++i) {
    const int32_t a = r.pod<int32_t>();
    const int32_t b = r.pod<int32_t>();
    const int8_t order = r.pod<int8_t>();
    if (a < 0 || b < 0 || static_cast<size_t>(a) >= m.num_atoms() ||
        static_cast<size_t>(b) >= m.num_atoms()) {
      throw WireDecodeError("wire: bond endpoint out of range");
    }
    m.add_bond(a, b, order);
  }
  return m;
}

}  // namespace

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kClosed: return "closed";
    case WireError::kTransport: return "transport";
    case WireError::kTimeout: return "timeout";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kOversized: return "oversized";
    case WireError::kBadCrc: return "bad-crc";
  }
  return "invalid";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + sizeof(uint32_t));
  Writer w;
  w.pod(kMagic);
  w.pod(kVersion);
  w.pod(static_cast<uint16_t>(type));
  w.pod(static_cast<uint32_t>(payload.size()));
  out = w.take();
  out.append(payload.data(), payload.size());
  // CRC over everything the header vouches for: version, type, length and
  // payload — the magic is the resync marker and stays outside.
  const uint32_t crc = io::crc32(out.data() + sizeof(uint32_t), out.size() - sizeof(uint32_t));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

WireError read_frame(net::TcpConn& conn, Frame* out, double timeout_ms) {
  char header[kHeaderBytes];
  if (!conn.recv_exact(header, sizeof(header), timeout_ms)) {
    if (conn.timed_out()) return WireError::kTimeout;
    // EOF on the first header byte is an orderly close; mid-header it is a
    // torn frame, but both end the conversation the same way for callers.
    return WireError::kClosed;
  }
  uint32_t magic, len;
  uint16_t version, type;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 2);
  std::memcpy(&type, header + 6, 2);
  std::memcpy(&len, header + 8, 4);
  if (magic != kMagic) return WireError::kBadMagic;
  if (version != kVersion) return WireError::kBadVersion;
  if (len > kMaxPayload) return WireError::kOversized;
  std::string payload(len, '\0');
  if (len > 0 && !conn.recv_exact(payload.data(), len, timeout_ms)) {
    return conn.timed_out() ? WireError::kTimeout : WireError::kTransport;
  }
  uint32_t stored_crc;
  if (!conn.recv_exact(&stored_crc, sizeof(stored_crc), timeout_ms)) {
    return conn.timed_out() ? WireError::kTimeout : WireError::kTransport;
  }
  uint32_t crc = io::crc32(header + 4, kHeaderBytes - 4);
  crc = io::crc32(payload.data(), payload.size(), crc);
  if (crc != stored_crc) return WireError::kBadCrc;
  out->type = static_cast<FrameType>(type);
  out->payload = std::move(payload);
  return WireError::kNone;
}

bool write_frame(net::TcpConn& conn, FrameType type, std::string_view payload, double timeout_ms) {
  const std::string bytes = encode_frame(type, payload);
  return conn.send_all(bytes.data(), bytes.size(), timeout_ms);
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

std::string HelloPayload::encode() const {
  Writer w;
  w.pod(version);
  w.str(node_id);
  w.pod(static_cast<uint8_t>(ordered_stream ? 1 : 0));
  w.pod(poses_per_batch);
  w.pod(workers);
  w.pod(static_cast<uint32_t>(scorers.size()));
  for (const std::string& s : scorers) w.str(s);
  return w.take();
}

HelloPayload HelloPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  HelloPayload p;
  p.version = r.pod<uint16_t>();
  p.node_id = r.str();
  p.ordered_stream = r.pod<uint8_t>() != 0;
  p.poses_per_batch = r.pod<uint32_t>();
  p.workers = r.pod<uint32_t>();
  const uint32_t n = r.count(kMaxStrings, "scorer");
  p.scorers.reserve(n);
  for (uint32_t i = 0; i < n; ++i) p.scorers.push_back(r.str());
  r.done();
  return p;
}

std::string ScoreRequestPayload::encode() const {
  Writer w;
  w.pod(request_id);
  w.pod(deadline_ms);
  w.str(scorer);
  w.str(client);
  w.pod(static_cast<uint32_t>(pockets.size()));
  for (const auto& pocket : pockets) put_atoms(w, pocket);
  w.pod(static_cast<uint32_t>(poses.size()));
  for (const Pose& p : poses) {
    put_molecule(w, p.ligand);
    w.pod(p.pocket);
    w.pod(p.site_center.x);
    w.pod(p.site_center.y);
    w.pod(p.site_center.z);
  }
  return w.take();
}

ScoreRequestPayload ScoreRequestPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  ScoreRequestPayload p;
  p.request_id = r.pod<uint64_t>();
  p.deadline_ms = r.pod<uint32_t>();
  p.scorer = r.str();
  p.client = r.str();
  const uint32_t np = r.count(kMaxPoses, "pocket");
  p.pockets.reserve(np);
  for (uint32_t i = 0; i < np; ++i) p.pockets.push_back(get_atoms(r));
  const uint32_t n = r.count(kMaxPoses, "pose");
  p.poses.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Pose pose;
    pose.ligand = get_molecule(r);
    pose.pocket = r.pod<uint32_t>();
    if (pose.pocket != kNoPocket && pose.pocket >= p.pockets.size()) {
      throw WireDecodeError("wire: pose pocket index out of range");
    }
    pose.site_center.x = r.pod<float>();
    pose.site_center.y = r.pod<float>();
    pose.site_center.z = r.pod<float>();
    p.poses.push_back(std::move(pose));
  }
  r.done();
  return p;
}

std::string ScoreChunkPayload::encode() const {
  Writer w;
  w.pod(request_id);
  w.pod(offset);
  w.array(scores);
  return w.take();
}

ScoreChunkPayload ScoreChunkPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  ScoreChunkPayload p;
  p.request_id = r.pod<uint64_t>();
  p.offset = r.pod<uint64_t>();
  const uint32_t n = r.count(kMaxPoses, "score");
  p.scores.resize(n);
  for (uint32_t i = 0; i < n; ++i) p.scores[i] = r.pod<float>();
  r.done();
  return p;
}

std::string ScoreDonePayload::encode() const {
  Writer w;
  w.pod(request_id);
  w.pod(static_cast<uint8_t>(error));
  w.str(message);
  w.pod(micro_batches);
  w.pod(static_cast<uint8_t>(coalesced ? 1 : 0));
  w.pod(chunks);
  return w.take();
}

ScoreDonePayload ScoreDonePayload::decode(std::string_view bytes) {
  Reader r(bytes);
  ScoreDonePayload p;
  p.request_id = r.pod<uint64_t>();
  const uint8_t e = r.pod<uint8_t>();
  if (e > static_cast<uint8_t>(ScoreError::kTransport)) {
    throw WireDecodeError("wire: score error code out of range");
  }
  p.error = static_cast<ScoreError>(e);
  p.message = r.str();
  p.micro_batches = r.pod<uint32_t>();
  p.coalesced = r.pod<uint8_t>() != 0;
  p.chunks = r.pod<uint32_t>();
  r.done();
  return p;
}

std::string PingPayload::encode() const {
  Writer w;
  w.pod(nonce);
  return w.take();
}

PingPayload PingPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  PingPayload p;
  p.nonce = r.pod<uint64_t>();
  r.done();
  return p;
}

std::string PongPayload::encode() const {
  Writer w;
  w.pod(nonce);
  w.pod(static_cast<uint8_t>(draining ? 1 : 0));
  w.pod(inflight_requests);
  w.pod(requests);
  w.pod(poses);
  w.pod(p50_ms);
  w.pod(p99_ms);
  return w.take();
}

PongPayload PongPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  PongPayload p;
  p.nonce = r.pod<uint64_t>();
  p.draining = r.pod<uint8_t>() != 0;
  p.inflight_requests = r.pod<uint32_t>();
  p.requests = r.pod<uint64_t>();
  p.poses = r.pod<uint64_t>();
  p.p50_ms = r.pod<float>();
  p.p99_ms = r.pod<float>();
  r.done();
  return p;
}

std::string DrainAckPayload::encode() const {
  Writer w;
  w.pod(inflight_requests);
  return w.take();
}

DrainAckPayload DrainAckPayload::decode(std::string_view bytes) {
  Reader r(bytes);
  DrainAckPayload p;
  p.inflight_requests = r.pod<uint32_t>();
  r.done();
  return p;
}

ScoreRequestPayload pack_request(const ScoreRequest& req, uint64_t request_id) {
  ScoreRequestPayload p;
  p.request_id = request_id;
  p.deadline_ms = req.deadline_ms > 0 ? static_cast<uint32_t>(req.deadline_ms) : 0;
  p.scorer = req.scorer;
  p.client = req.client;
  std::map<const std::vector<chem::Atom>*, uint32_t> seen;
  p.poses.reserve(req.poses.size());
  for (const PoseInput& pose : req.poses) {
    ScoreRequestPayload::Pose out;
    out.ligand = pose.ligand;
    out.site_center = pose.site_center;
    if (pose.pocket != nullptr) {
      auto [it, inserted] = seen.try_emplace(pose.pocket, static_cast<uint32_t>(p.pockets.size()));
      if (inserted) p.pockets.push_back(*pose.pocket);
      out.pocket = it->second;
    }
    p.poses.push_back(std::move(out));
  }
  return p;
}

ScoreRequest unpack_request(const ScoreRequestPayload& payload) {
  ScoreRequest req;
  req.scorer = payload.scorer;
  req.client = payload.client;
  req.deadline_ms = payload.deadline_ms;
  req.poses.reserve(payload.poses.size());
  for (const ScoreRequestPayload::Pose& p : payload.poses) {
    PoseInput pose;
    pose.ligand = p.ligand;
    pose.site_center = p.site_center;
    pose.pocket = p.pocket == kNoPocket ? nullptr : &payload.pockets[p.pocket];
    req.poses.push_back(std::move(pose));
  }
  return req;
}

}  // namespace df::serve::wire
