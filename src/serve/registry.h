// ModelRegistry — named, factory-registered scoring backends. Replaces the
// ad-hoc screen::ModelFactory wiring: instead of every workload hand-plumbing
// a featurizer + Regressor, backends register once under a stable name and
// any client (campaign job, example, bench, test) asks the ScoringService
// for "that scorer" by name.
//
// Factories are invoked once per service worker to mint private replicas
// (models/regressor.h replica contract), so they must be deterministic and
// callable from any thread; the service serializes the calls.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/scorer.h"

namespace df::serve {

using ScorerFactory = std::function<std::unique_ptr<Scorer>()>;

class ModelRegistry {
 public:
  ModelRegistry() = default;
  /// Movable so builders like default_registry can return by value; do not
  /// move a registry other threads are reading.
  ModelRegistry(ModelRegistry&& other) noexcept;
  ModelRegistry& operator=(ModelRegistry&&) = delete;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register a backend under `name`. Throws std::invalid_argument if the
  /// name is already taken — shadowing a live scorer silently is how two
  /// clients end up scoring with different models under one name.
  void add(const std::string& name, ScorerFactory factory);

  bool contains(const std::string& name) const;
  size_t size() const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Mint a fresh replica. Throws std::out_of_range for unknown names (the
  /// service catches this shape at submit() and returns a typed error
  /// instead).
  std::unique_ptr<Scorer> make(const std::string& name) const;

  /// Copy of the factory table; the ScoringService snapshots the registry at
  /// construction so later registrations cannot change a live service.
  std::map<std::string, ScorerFactory> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ScorerFactory> factories_;
};

/// Register a Regressor-backed scorer: `make_model` plus the featurizer
/// configs become a RegressorScorer factory. This is the one-line migration
/// path from the old screen::ModelFactory. `featurize_threads` > 1 gives
/// every minted replica that many private featurization lanes
/// (serve/scorer.h) — size against the service's worker count.
/// `pipeline_depth` >= 1 mints every replica with a stage pipeline of that
/// depth already enabled (ScorerPipeline); a ScoringService drives it
/// automatically. ServiceConfig::pipeline_depth > 0 overrides this.
void add_regressor(ModelRegistry& registry, const std::string& name,
                   models::RegressorFactory make_model, const chem::VoxelConfig& voxel,
                   const chem::GraphFeaturizerConfig& graph = {}, int featurize_threads = 0,
                   int pipeline_depth = 0);

/// Register a scorer served from a compiled-model artifact
/// (compile::save_compiled). The artifact is opened and validated once,
/// eagerly — a missing or damaged file fails registration, not the first
/// request — and the mapping is shared by every replica the factory mints:
/// each replica rebuilds its own (private) layer caches but reads weights
/// and packed GEMM panels straight from the common mmap. Replicas pre-grow
/// their workspace arenas to the budgets recorded in the artifact, so the
/// cold-start path skips h5 parsing, weight packing, conv-plan construction
/// AND steady-state arena growth. Registration also validates the
/// artifact's recorded meta/feature_set_version against both featurizer
/// configs (throws std::invalid_argument on mismatch): a model trained on
/// the v1 feature set must never be served v2 features, and vice versa.
/// Artifacts written before the section existed count as v1.
void add_compiled(ModelRegistry& registry, const std::string& name,
                  const std::string& artifact_path, const chem::VoxelConfig& voxel,
                  const chem::GraphFeaturizerConfig& graph = {}, int featurize_threads = 0,
                  int pipeline_depth = 0);

/// Register an int8-quantized Regressor backend. Every minted replica is
/// compiled (compile::ModelCompiler) and post-training-quantized
/// (quant::quantize_model) against a deterministic synthetic calibration
/// set that is featurized once, lazily, on the first replica and shared
/// read-only afterwards. Factory determinism holds: quantization is a pure
/// function of (model weights, calibration samples, config), so replicas
/// are bitwise-identical.
void add_quantized_regressor(ModelRegistry& registry, const std::string& name,
                             models::RegressorFactory make_model,
                             const chem::VoxelConfig& voxel,
                             const chem::GraphFeaturizerConfig& graph = {},
                             int featurize_threads = 0, int pipeline_depth = 0);

/// A registry with every backend family pre-registered under its canonical
/// name: "vina_pk", "mmgbsa", plus untrained-but-deterministic reference
/// nets "sgcnn", "cnn3d", "late_fusion", "pafnucy", "kdeep" (fixed seeds;
/// swap in trained weights via add_regressor for real use), plus their
/// int8-quantized siblings "sgcnn_int8", "cnn3d_int8", "fusion_int8"
/// (add_quantized_regressor; "fusion_int8" serves a Mid-level FusionModel).
/// Net input shapes derive from `voxel`.
ModelRegistry default_registry(const chem::VoxelConfig& voxel = {},
                               const chem::GraphFeaturizerConfig& graph = {});

}  // namespace df::serve
