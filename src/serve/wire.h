// Wire protocol of the multi-node scoring plane: length-prefixed, versioned,
// CRC-checked binary frames over TCP, reusing the ShardStream framing idiom
// (fixed magic, explicit version, trailing CRC-32 over everything the length
// prefix covers). One frame is
//
//   u32 magic 'DFRP' | u16 version | u16 type | u32 payload_len
//   payload bytes (payload_len)
//   u32 crc32(version..payload)
//
// so a reader can resynchronize trust cheaply: a bad magic or version is a
// protocol error before any allocation, a truncated payload is detected by
// the length prefix, and a flipped bit anywhere after the magic fails the
// CRC. Scores stream back: a request is answered by zero or more
// kScoreChunk frames (contiguous score spans, in order) terminated by one
// kScoreDone carrying the typed ScoreError verdict — a client never has to
// wait for the whole response before seeing progress, and a connection cut
// mid-stream is distinguishable from a completed error.
//
// All integers are little-endian (the only byte order this codebase
// targets); floats travel as raw IEEE-754 bits, so scores and coordinates
// survive the wire bit-exactly — the property the multi-node determinism
// contract (docs/API.md) is built on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/net.h"
#include "serve/service.h"

namespace df::serve::wire {

constexpr uint32_t kMagic = 0x44465250u;  // "DFRP"
constexpr uint16_t kVersion = 1;
// Hard cap on one frame's payload — far above any sane micro-batch, small
// enough that garbage length prefixes cannot OOM the reader.
constexpr uint32_t kMaxPayload = 1u << 28;
// "No pocket" sentinel for PoseInput entries with a null pocket pointer.
constexpr uint32_t kNoPocket = 0xFFFFFFFFu;

enum class FrameType : uint16_t {
  kHello = 1,         // server -> client, once per connection
  kScoreRequest = 2,  // client -> server
  kScoreChunk = 3,    // server -> client: contiguous span of scores
  kScoreDone = 4,     // server -> client: terminal status for a request
  kPing = 5,          // client -> server: heartbeat probe
  kPong = 6,          // server -> client: health + latency snapshot
  kDrain = 7,         // client -> server: stop accepting new requests
  kDrainAck = 8,      // server -> client: drained (no requests in flight)
  kShutdown = 9,      // client -> server: exit after in-flight work
};

enum class WireError {
  kNone = 0,
  kClosed,     // orderly EOF between frames
  kTransport,  // socket-level failure mid-frame
  kTimeout,    // per-call deadline expired
  kBadMagic,   // stream is not speaking this protocol
  kBadVersion, // protocol version mismatch
  kOversized,  // length prefix beyond kMaxPayload
  kBadCrc,     // frame arrived, checksum failed
};

const char* wire_error_name(WireError e);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Encode one frame (header + payload + CRC) into a byte string.
std::string encode_frame(FrameType type, std::string_view payload);

/// Read exactly one frame within `timeout_ms` (<= 0 = no deadline).
WireError read_frame(net::TcpConn& conn, Frame* out, double timeout_ms);

/// Encode + send one frame within `timeout_ms`.
bool write_frame(net::TcpConn& conn, FrameType type, std::string_view payload, double timeout_ms);

// ---------------------------------------------------------------------------
// Payload codecs. decode() throws WireDecodeError on malformed payloads
// (underflow, absurd counts) — the CRC already vouches for transport
// integrity, so a decode failure means a peer bug, not line noise.
// ---------------------------------------------------------------------------

struct WireDecodeError : std::runtime_error {
  explicit WireDecodeError(const std::string& m) : std::runtime_error(m) {}
};

struct HelloPayload {
  uint16_t version = kVersion;
  std::string node_id;
  bool ordered_stream = false;
  uint32_t poses_per_batch = 0;
  uint32_t workers = 0;
  std::vector<std::string> scorers;  // names this node serves, sorted

  std::string encode() const;
  static HelloPayload decode(std::string_view bytes);
};

struct ScoreRequestPayload {
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;  // 0 = none
  std::string scorer;
  std::string client;
  // Pockets are deduplicated: poses reference them by index so a work unit
  // of hundreds of poses against one binding site ships its pocket once.
  std::vector<std::vector<chem::Atom>> pockets;
  struct Pose {
    chem::Molecule ligand;
    uint32_t pocket = kNoPocket;
    core::Vec3 site_center;
  };
  std::vector<Pose> poses;

  std::string encode() const;
  static ScoreRequestPayload decode(std::string_view bytes);
};

struct ScoreChunkPayload {
  uint64_t request_id = 0;
  uint64_t offset = 0;  // position of scores[0] in the request's pose list
  std::vector<float> scores;

  std::string encode() const;
  static ScoreChunkPayload decode(std::string_view bytes);
};

struct ScoreDonePayload {
  uint64_t request_id = 0;
  ScoreError error = ScoreError::kNone;
  std::string message;
  uint32_t micro_batches = 0;  // summed over the request's chunks
  bool coalesced = false;
  uint32_t chunks = 0;  // kScoreChunk frames that preceded this

  std::string encode() const;
  static ScoreDonePayload decode(std::string_view bytes);
};

struct PingPayload {
  uint64_t nonce = 0;

  std::string encode() const;
  static PingPayload decode(std::string_view bytes);
};

struct PongPayload {
  uint64_t nonce = 0;
  bool draining = false;
  uint32_t inflight_requests = 0;
  uint64_t requests = 0;
  uint64_t poses = 0;
  float p50_ms = 0;
  float p99_ms = 0;

  std::string encode() const;
  static PongPayload decode(std::string_view bytes);
};

struct DrainAckPayload {
  uint32_t inflight_requests = 0;  // 0 once drained

  std::string encode() const;
  static DrainAckPayload decode(std::string_view bytes);
};

/// Client side: pack a ScoreRequest, deduplicating borrowed pocket pointers.
ScoreRequestPayload pack_request(const ScoreRequest& req, uint64_t request_id);

/// Server side: materialize a ScoreRequest whose pose pockets borrow from
/// `payload.pockets` — the payload must outlive every future resolved from
/// the returned request.
ScoreRequest unpack_request(const ScoreRequestPayload& payload);

}  // namespace df::serve::wire
