#include "serve/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"

namespace df::serve {

const char* score_error_name(ScoreError e) {
  switch (e) {
    case ScoreError::kNone: return "none";
    case ScoreError::kUnknownScorer: return "unknown_scorer";
    case ScoreError::kQueueFull: return "queue_full";
    case ScoreError::kShutdown: return "shutdown";
    case ScoreError::kScorerFailure: return "scorer_failure";
    case ScoreError::kTimeout: return "timeout";
    case ScoreError::kTransport: return "transport";
  }
  return "invalid";
}

/// One accepted request: the response buffer fills in from possibly many
/// micro-batches on different workers; `remaining` (guarded by the service
/// mutex) counts down to fulfillment.
struct ScoringService::Pending {
  std::vector<PoseInput> poses;
  std::string scorer;
  std::string client;
  std::promise<ScoreResponse> promise;
  std::vector<float> scores;
  size_t remaining = 0;
  bool failed = false;
  ScoreError error = ScoreError::kScorerFailure;  // meaningful when failed
  std::string fail_msg;
  int micro_batches = 0;
  bool coalesced = false;
  std::chrono::steady_clock::time_point accepted;  // for the latency histogram
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;  // valid when has_deadline
};

/// A contiguous span of one request's poses waiting in the queue. In
/// ordered-stream mode requests are pre-split into fixed poses_per_batch
/// slices and a micro-batch is exactly one slice; in throughput mode a
/// request is one slice that workers carve and coalesce freely.
struct ScoringService::Slice {
  std::shared_ptr<Pending> owner;
  size_t begin = 0;
  size_t end = 0;
  std::chrono::steady_clock::time_point enqueued;
};

/// A micro-batch a worker has submitted to its replica's stage pipeline
/// and not yet collected. The parts pin their Pending owners (and thus the
/// pose storage the featurize stage reads) until copy-back.
struct ScoringService::InFlight {
  std::vector<Slice> parts;
  size_t total = 0;
};

namespace {

std::future<ScoreResponse> ready_response(ScoreResponse r) {
  std::promise<ScoreResponse> p;
  p.set_value(std::move(r));
  return p.get_future();
}

std::future<ScoreResponse> ready_error(ScoreError e, std::string message) {
  ScoreResponse r;
  r.error = e;
  r.message = std::move(message);
  return ready_response(std::move(r));
}

}  // namespace

ScoringService::ScoringService(const ModelRegistry& registry, ServiceConfig cfg)
    : cfg_(cfg), factories_(registry.snapshot()) {
  if (cfg_.workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.workers = hw != 0 ? static_cast<int>(hw) : 1;
  }
  cfg_.poses_per_batch = std::max(1, cfg_.poses_per_batch);
  cfg_.queue_capacity = std::max<size_t>(1, cfg_.queue_capacity);
  cfg_.pipeline_depth = std::max(0, cfg_.pipeline_depth);
  if (cfg_.pocket_cache_targets > 0) {
    pocket_cache_ = std::make_shared<PocketCache>(cfg_.pocket_cache_targets);
  }
  threads_.reserve(static_cast<size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ScoringService::~ScoringService() { shutdown(); }

std::future<ScoreResponse> ScoringService::submit(ScoreRequest req) {
  if (factories_.find(req.scorer) == factories_.end()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return ready_error(ScoreError::kUnknownScorer,
                       "no scorer named '" + req.scorer + "' in this service");
  }
  if (req.poses.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    return ready_response(ScoreResponse{});
  }

  auto pending = std::make_shared<Pending>();
  pending->scorer = std::move(req.scorer);
  pending->client = std::move(req.client);
  pending->poses = std::move(req.poses);
  const size_t n = pending->poses.size();
  pending->scores.resize(n, 0.0f);
  pending->remaining = n;
  pending->accepted = std::chrono::steady_clock::now();
  if (req.deadline_ms > 0) {
    pending->has_deadline = true;
    pending->deadline = pending->accepted + std::chrono::microseconds(static_cast<int64_t>(
                                                req.deadline_ms * 1000.0));
  }
  std::future<ScoreResponse> future = pending->promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure on the bounded queue. An oversized request (n > capacity)
  // is admitted alone once the queue is empty, so it cannot wedge. A
  // deadline bounds the block: past it the caller gets kTimeout instead of
  // waiting for space forever.
  const auto fits = [&] { return queued_poses_ == 0 || queued_poses_ + n <= cfg_.queue_capacity; };
  if (!fits()) {
    if (!cfg_.block_when_full) {
      ++stats_.rejected;
      return ready_error(ScoreError::kQueueFull,
                         "queue holds " + std::to_string(queued_poses_) + " poses; capacity " +
                             std::to_string(cfg_.queue_capacity));
    }
    if (pending->has_deadline) {
      if (!space_cv_.wait_until(lock, pending->deadline, [&] { return stop_ || fits(); })) {
        ++stats_.rejected;
        ++stats_.timeouts;
        return ready_error(ScoreError::kTimeout,
                           "backpressure wait exceeded the request deadline (" +
                               std::to_string(req.deadline_ms) + " ms)");
      }
    } else {
      space_cv_.wait(lock, [&] { return stop_ || fits(); });
    }
  }
  if (stop_) {
    ++stats_.rejected;
    return ready_error(ScoreError::kShutdown, "service is shut down");
  }

  const auto now = std::chrono::steady_clock::now();
  const size_t chunk = cfg_.ordered_stream ? static_cast<size_t>(cfg_.poses_per_batch) : n;
  for (size_t b = 0; b < n; b += chunk) {
    queue_.push_back(Slice{pending, b, std::min(b + chunk, n), now});
  }
  queued_poses_ += n;
  if (pending->has_deadline) deadlined_queued_ += n;
  ++stats_.requests;
  stats_.poses += n;
  stats_.peak_queued_poses = std::max(stats_.peak_queued_poses, queued_poses_);
  work_cv_.notify_all();
  return future;
}

ScoreResponse ScoringService::score(ScoreRequest req) { return submit(std::move(req)).get(); }

void ScoringService::warmup(const std::string& scorer) {
  if (factories_.find(scorer) == factories_.end()) {
    throw std::out_of_range("service: no scorer named '" + scorer + "'");
  }
  std::lock_guard<std::mutex> call(warmup_call_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) throw std::runtime_error("service: warmup after shutdown");
  warmup_name_ = scorer;
  warmup_error_.clear();
  warmup_remaining_ = static_cast<int>(threads_.size());
  ++warmup_gen_;
  work_cv_.notify_all();
  warmup_cv_.wait(lock, [&] { return warmup_remaining_ == 0 || stop_; });
  if (warmup_remaining_ != 0) throw std::runtime_error("service: shut down during warmup");
  if (!warmup_error_.empty()) {
    throw std::runtime_error("service: warmup of '" + scorer + "' failed: " + warmup_error_);
  }
}

void ScoringService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queued_poses_ == 0 && inflight_poses_ == 0; });
}

void ScoringService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  warmup_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

ServiceStats ScoringService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> ScoringService::scorer_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

void ScoringService::fulfill(const std::shared_ptr<Pending>& owner) {
  ScoreResponse r;
  r.micro_batches = owner->micro_batches;
  r.coalesced = owner->coalesced;
  if (owner->failed) {
    r.error = owner->error;
    r.message = owner->fail_msg;
  } else {
    r.scores = std::move(owner->scores);
  }
  owner->promise.set_value(std::move(r));
}

Scorer& ScoringService::replica_for(std::map<std::string, std::unique_ptr<Scorer>>& replicas,
                                    const std::string& name) {
  auto it = replicas.find(name);
  if (it != replicas.end()) return *it->second;
  std::unique_ptr<Scorer> replica;
  {
    // One factory call at a time across workers: factories may read a shared
    // master model (weight copies) and are not required to be re-entrant.
    std::lock_guard<std::mutex> build(build_mu_);
    replica = factories_.at(name)();
  }
  // Service-level knobs layer on top of whatever the registry minted: a
  // 0 depth leaves a registry-configured pipeline in place rather than
  // tearing it down, and the shared pocket cache attaches to every
  // replica that can use one (no-op virtuals otherwise).
  if (cfg_.pipeline_depth > 0) replica->set_pipeline_depth(cfg_.pipeline_depth);
  if (pocket_cache_ != nullptr) replica->set_pocket_cache(pocket_cache_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.replicas_built;
  }
  return *replicas.emplace(name, std::move(replica)).first->second;
}

void ScoringService::worker_loop() {
  // Service workers are peers of any client-installed compute pool, not
  // owners: keep every kernel they run serial so they can never contend for
  // the pool's single-joiner wait_idle() or deadlock against pool workers
  // that are blocked on our futures.
  core::SerialComputeScope serial;
  std::map<std::string, std::unique_ptr<Scorer>> replicas;
  uint64_t seen_warmup = 0;

  // Pipelined dispatch state: micro-batches this worker has submitted to
  // its replica's pipeline and not yet collected. All entries belong to
  // `inflight_name`'s replica and come back strictly FIFO, so copy-back
  // content is identical to sequential dispatch — only its timing moves.
  std::deque<InFlight> inflight;
  std::string inflight_name;
  Scorer* inflight_replica = nullptr;

  std::unique_lock<std::mutex> lock(mu_);

  // Collect the oldest in-flight micro-batch: run its forward on the
  // replica, copy scores back, resolve finished requests. Called with the
  // lock held; cycles it around the compute.
  const auto collect_one = [&] {
    InFlight fl = std::move(inflight.front());
    inflight.pop_front();
    lock.unlock();
    std::vector<float> out;
    std::string err;
    try {
      out = inflight_replica->pipeline()->collect();
      if (out.size() != fl.total) {
        err = "scorer '" + inflight_name + "' returned " + std::to_string(out.size()) +
              " scores for " + std::to_string(fl.total) + " poses";
      }
    } catch (const std::exception& e) {
      err = e.what();
    } catch (...) {
      err = "unknown exception from scorer '" + inflight_name + "'";
    }
    std::vector<std::shared_ptr<Pending>> done;
    lock.lock();
    const auto finished = std::chrono::steady_clock::now();
    size_t off = 0;
    for (const Slice& p : fl.parts) {
      const size_t len = p.end - p.begin;
      if (err.empty()) {
        std::copy(out.begin() + static_cast<long>(off), out.begin() + static_cast<long>(off + len),
                  p.owner->scores.begin() + static_cast<long>(p.begin));
      } else if (!p.owner->failed) {
        p.owner->failed = true;
        p.owner->error = ScoreError::kScorerFailure;
        p.owner->fail_msg = err;
      }
      off += len;
      p.owner->remaining -= len;
      if (p.owner->remaining == 0) {
        stats_.latency.record_seconds(
            std::chrono::duration<double>(finished - p.owner->accepted).count());
        done.push_back(p.owner);
      }
    }
    inflight_poses_ -= fl.total;
    if (queued_poses_ == 0 && inflight_poses_ == 0) drain_cv_.notify_all();
    lock.unlock();
    for (const auto& owner : done) fulfill(owner);
    lock.lock();
  };

  for (;;) {
    // Never sleep with batches in flight — their forwards are this
    // worker's responsibility.
    work_cv_.wait(lock, [&] {
      return stop_ || !queue_.empty() || seen_warmup != warmup_gen_ || !inflight.empty();
    });

    if (seen_warmup != warmup_gen_) {
      seen_warmup = warmup_gen_;
      const std::string name = warmup_name_;
      lock.unlock();
      // A throwing factory must fail warmup(), not terminate this thread.
      std::string err;
      try {
        replica_for(replicas, name);
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
        err = "unknown exception from factory for scorer '" + name + "'";
      }
      lock.lock();
      if (!err.empty() && warmup_error_.empty()) warmup_error_ = err;
      if (--warmup_remaining_ == 0) warmup_cv_.notify_all();
      continue;
    }
    // Deadline sweep: requests whose deadline passed while queued resolve
    // kTimeout now instead of occupying a worker. Skipped entirely while no
    // queued request carries a deadline (the campaign's ordered path).
    if (deadlined_queued_ > 0 && !queue_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<std::shared_ptr<Pending>> expired;
      for (auto it = queue_.begin(); it != queue_.end();) {
        Pending& p = *it->owner;
        if (!p.has_deadline || now < p.deadline) {
          ++it;
          continue;
        }
        const size_t len = it->end - it->begin;
        queued_poses_ -= len;
        deadlined_queued_ -= len;
        if (!p.failed) {
          p.failed = true;
          p.error = ScoreError::kTimeout;
          p.fail_msg = "request deadline expired before scoring started";
          ++stats_.timeouts;
        }
        p.remaining -= len;
        if (p.remaining == 0) {
          stats_.latency.record_seconds(std::chrono::duration<double>(now - p.accepted).count());
          expired.push_back(it->owner);
        }
        it = queue_.erase(it);
      }
      if (!expired.empty()) {
        space_cv_.notify_all();
        if (queued_poses_ == 0 && inflight_poses_ == 0) drain_cv_.notify_all();
        lock.unlock();
        for (const auto& owner : expired) fulfill(owner);
        lock.lock();
        continue;  // the queue changed shape; re-evaluate from the top
      }
    }

    if (queue_.empty()) {
      if (!inflight.empty()) {
        collect_one();
        continue;
      }
      if (stop_) return;
      continue;
    }

    const size_t cap = static_cast<size_t>(cfg_.poses_per_batch);

    // Dynamic micro-batcher: pick the first scorer (in FIFO head order)
    // with a dispatchable batch — full, or whose oldest slice has waited
    // out flush_deadline_ms. A partial batch holds the door open for up to
    // the deadline so concurrent clients can fill it, but never blocks a
    // ready batch of a different scorer queued behind it. Ordered-stream
    // mode skips all of this — batches are the pre-cut request slices in
    // strict FIFO order.
    std::string name;
    if (cfg_.ordered_stream || cfg_.flush_deadline_ms <= 0 || stop_) {
      name = queue_.front().owner->scorer;
    } else {
      const auto now = std::chrono::steady_clock::now();
      const auto window =
          std::chrono::microseconds(static_cast<int64_t>(cfg_.flush_deadline_ms * 1000.0));
      std::vector<std::pair<std::string, size_t>> groups;  // FIFO-first-seen -> avail
      std::vector<std::chrono::steady_clock::time_point> heads;
      for (const Slice& s : queue_) {
        size_t g = 0;
        while (g < groups.size() && groups[g].first != s.owner->scorer) ++g;
        if (g == groups.size()) {
          groups.emplace_back(s.owner->scorer, 0);
          heads.push_back(s.enqueued);
        }
        groups[g].second += s.end - s.begin;
      }
      auto earliest = std::chrono::steady_clock::time_point::max();
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].second >= cap || now >= heads[g] + window) {
          name = groups[g].first;
          break;
        }
        earliest = std::min(earliest, heads[g] + window);
      }
      if (name.empty()) {
        if (!inflight.empty()) {
          collect_one();  // useful work beats idling out the flush window
        } else {
          work_cv_.wait_until(lock, earliest);
        }
        continue;  // re-evaluate: more work may have arrived, or a deadline passed
      }
    }

    // A pipeline holds batches for one scorer at a time: drain foreign
    // batches before dispatching to a different replica.
    if (!inflight.empty() && name != inflight_name) {
      collect_one();
      continue;  // the queue may have changed shape while unlocked
    }

    // Collect up to `cap` poses for `name`, front-to-back.
    std::vector<Slice> parts;
    size_t total = 0;
    if (cfg_.ordered_stream) {
      parts.push_back(std::move(queue_.front()));
      queue_.pop_front();
      total = parts[0].end - parts[0].begin;
      if (parts[0].owner->has_deadline) deadlined_queued_ -= total;
    } else {
      for (auto it = queue_.begin(); it != queue_.end() && total < cap;) {
        if (it->owner->scorer != name) {
          ++it;
          continue;
        }
        const size_t take = std::min(cap - total, it->end - it->begin);
        parts.push_back(Slice{it->owner, it->begin, it->begin + take, it->enqueued});
        if (it->owner->has_deadline) deadlined_queued_ -= take;
        it->begin += take;
        total += take;
        if (it->begin == it->end) {
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    queued_poses_ -= total;
    inflight_poses_ += total;
    ++stats_.batches;
    if (total >= cap) ++stats_.full_batches;
    if (parts.size() > 1) {  // one slice per request => >1 parts = >1 clients
      ++stats_.coalesced_batches;
      for (const Slice& p : parts) p.owner->coalesced = true;
    }
    for (const Slice& p : parts) ++p.owner->micro_batches;
    space_cv_.notify_all();
    lock.unlock();

    // Score the micro-batch on this worker's private replica.
    std::vector<float> out;
    std::string err;
    Scorer* replica = nullptr;
    try {
      replica = &replica_for(replicas, name);
    } catch (const std::exception& e) {
      err = e.what();
    } catch (...) {
      err = "unknown exception from scorer '" + name + "'";
    }

    if (err.empty() && replica->pipeline() != nullptr) {
      // Pipelined dispatch: hand the batch to the featurize stage and go
      // back for more work. The forward runs at collect_one() — at the
      // latest once the ring is full — so batch N+1's featurization
      // overlaps batch N's forward.
      std::vector<const PoseInput*> ptrs;
      ptrs.reserve(total);
      for (const Slice& p : parts) {
        for (size_t i = p.begin; i < p.end; ++i) ptrs.push_back(&p.owner->poses[i]);
      }
      ScorerPipeline& pipe = *replica->pipeline();
      pipe.submit(std::move(ptrs));
      lock.lock();
      inflight.push_back(InFlight{std::move(parts), total});
      inflight_name = name;
      inflight_replica = replica;
      if (inflight.size() >= static_cast<size_t>(pipe.depth())) collect_one();
      continue;
    }

    if (err.empty()) {
      try {
        std::vector<const PoseInput*> ptrs;
        ptrs.reserve(total);
        for (const Slice& p : parts) {
          for (size_t i = p.begin; i < p.end; ++i) ptrs.push_back(&p.owner->poses[i]);
        }
        out = replica->score(ptrs);
        if (out.size() != total) {
          err = "scorer '" + name + "' returned " + std::to_string(out.size()) + " scores for " +
                std::to_string(total) + " poses";
        }
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
        err = "unknown exception from scorer '" + name + "'";
      }
    }

    std::vector<std::shared_ptr<Pending>> done;
    lock.lock();
    const auto finished = std::chrono::steady_clock::now();
    size_t off = 0;
    for (const Slice& p : parts) {
      const size_t len = p.end - p.begin;
      if (err.empty()) {
        std::copy(out.begin() + static_cast<long>(off), out.begin() + static_cast<long>(off + len),
                  p.owner->scores.begin() + static_cast<long>(p.begin));
      } else if (!p.owner->failed) {
        p.owner->failed = true;
        p.owner->error = ScoreError::kScorerFailure;
        p.owner->fail_msg = err;
      }
      off += len;
      p.owner->remaining -= len;
      if (p.owner->remaining == 0) {
        stats_.latency.record_seconds(
            std::chrono::duration<double>(finished - p.owner->accepted).count());
        done.push_back(p.owner);
      }
    }
    inflight_poses_ -= total;
    if (queued_poses_ == 0 && inflight_poses_ == 0) drain_cv_.notify_all();
    lock.unlock();
    for (const auto& owner : done) fulfill(owner);
    lock.lock();
  }
}

}  // namespace df::serve
