// Minimal blocking TCP transport with per-call deadlines — the socket layer
// under the score server and client. POSIX only (the toolchain target);
// every call is poll()-guarded so a deadline bounds each read/write, and
// shutdown() from another thread wakes a peer blocked in recv, which is how
// ScoreServer::stop() unsticks its connection threads. Errors never throw:
// calls return false and leave a message in last_error() (with timed_out()
// distinguishing deadline expiry from transport failure) so the client can
// map them into the typed ScoreError space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace df::serve::net {

/// One connected TCP stream. Movable, closes on destruction.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd);
  ~TcpConn();

  TcpConn(TcpConn&& o) noexcept;
  TcpConn& operator=(TcpConn&& o) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Half-close both directions without releasing the fd — safe to call
  /// from another thread to wake a blocked recv/send.
  void shutdown();

  /// Write exactly `len` bytes within `timeout_ms` (<= 0 = no deadline).
  bool send_all(const void* data, size_t len, double timeout_ms);
  /// Read exactly `len` bytes within `timeout_ms` (<= 0 = no deadline).
  /// Peer close mid-read is a failure ("connection closed").
  bool recv_exact(void* data, size_t len, double timeout_ms);

  bool timed_out() const { return timed_out_; }
  const std::string& last_error() const { return error_; }

 private:
  bool wait_io(bool for_read, double timeout_ms, double elapsed_ms);

  int fd_ = -1;
  bool timed_out_ = false;
  std::string error_;
};

/// Connect to host:port within `timeout_ms`. On failure returns a closed
/// conn and sets *error.
TcpConn tcp_connect(const std::string& host, int port, double timeout_ms, std::string* error);

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on address:port (port 0 = kernel-assigned; see port()).
  bool listen(const std::string& address, int port, int backlog, std::string* error);
  bool open() const { return fd_ >= 0; }
  int port() const { return port_; }
  void close();

  /// Wake a concurrent accept() without touching the listener fd — the only
  /// member safe to call from another thread. close() from a foreign thread
  /// would race the accept thread's poll on fd_ (and risk fd reuse); the
  /// shutdown order is interrupt(), join the accept thread, then close().
  void interrupt();

  /// Accept one connection, waiting at most `timeout_ms`. Returns a closed
  /// conn on timeout (*timed_out = true), interrupt(), or error.
  TcpConn accept(double timeout_ms, bool* timed_out, std::string* error);

 private:
  int fd_ = -1;
  int wake_fd_ = -1;  // eventfd; interrupt() is sticky until close()
  int port_ = 0;
};

}  // namespace df::serve::net
