// Cross-request pocket cache — per-target amortization of protein-side
// featurization work.
//
// A screening campaign scores thousands of poses against a handful of
// receptors. The per-batch pocket-grid reuse inside RegressorScorer::score
// (PR 5) already amortizes the protein voxel splat within one micro-batch,
// but re-does it every batch — and the v2 feature set (interface H-bond
// channel) disabled even that, because a ligand-free pocket grid looked
// unusable. This cache lifts the amortization to the campaign level: an LRU
// keyed by pocket content holding (a) the protein-only voxel grid, grafted
// per pose via Voxelizer::voxelize_ligand_onto — the 4-arg overload makes
// the graft bitwise-valid at v2 too — and (b) the pocket-side CellList the
// graph featurizer's k-nearest crop queries (GraphFeaturizer::featurize's
// crop_cells overload).
//
// Keys are a 64-bit FNV-1a hash over the full pocket content (every atom
// field bit-exactly), the grid center, the complete VoxelConfig and the
// crop cell size; a hit additionally verifies the stored content byte for
// byte, so a hash collision degrades to a rebuild, never a wrong grid.
// Changing feature_set_version or any grid knob therefore misses — that IS
// the invalidation semantics.
//
// Entries are returned as shared_ptr<const Entry>: eviction drops the
// cache's reference, never a reader's, so replicas may keep using an entry
// that was just evicted. Entry tensors heap-own their storage
// (Workspace::Unbind during the build) — they must survive arena resets.
// All queries on a built entry are const and thread-safe; the cache itself
// is mutex-guarded and shared across service workers.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chem/cell_list.h"
#include "chem/graph_featurizer.h"
#include "chem/molecule.h"
#include "chem/voxelizer.h"
#include "core/tensor.h"

namespace df::serve {

class PocketCache {
 public:
  struct Entry {
    // Stored for exact-content verification on hash hit.
    std::vector<chem::Atom> atoms;
    core::Vec3 center;
    chem::VoxelConfig voxel_cfg;
    float crop_cell_size = 0.0f;

    // The cached work products.
    core::Tensor grid;          // protein-only voxel grid (heap-owned)
    chem::CellList crop_cells;  // over atoms' positions; unbuilt when pocket empty
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `max_targets` caps live entries (LRU eviction beyond it); clamped to
  /// at least 1.
  explicit PocketCache(size_t max_targets);

  /// Fetch or build the entry for (pocket, center) under the two
  /// featurizer configs. A build runs inside the cache lock, so concurrent
  /// first requests for the same receptor build it exactly once.
  std::shared_ptr<const Entry> lookup(const std::vector<chem::Atom>& pocket,
                                      const core::Vec3& center,
                                      const chem::Voxelizer& voxelizer,
                                      const chem::GraphFeaturizer& featurizer);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return max_targets_; }

 private:
  using LruList = std::list<std::pair<uint64_t, std::shared_ptr<const Entry>>>;

  size_t max_targets_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<uint64_t, LruList::iterator> by_key_;
  Stats stats_;
};

}  // namespace df::serve
