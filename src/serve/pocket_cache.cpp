#include "serve/pocket_cache.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "core/workspace.h"

namespace df::serve {

namespace {
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(uint64_t& h, const void* p, size_t n) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mix(uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "hash needs raw bytes");
  mix_bytes(h, &v, sizeof(v));
}

uint64_t content_key(const std::vector<chem::Atom>& pocket, const core::Vec3& center,
                     const chem::VoxelConfig& vc, float crop_cell_size) {
  uint64_t h = kFnvOffset;
  // Atom fields are hashed individually, never the struct bytes — padding
  // would leak indeterminate garbage into the key.
  mix(h, static_cast<uint64_t>(pocket.size()));
  for (const chem::Atom& a : pocket) {
    mix(h, a.pos.x);
    mix(h, a.pos.y);
    mix(h, a.pos.z);
    mix(h, static_cast<int32_t>(a.element));
    mix(h, static_cast<int32_t>(a.formal_charge));
    mix(h, static_cast<int32_t>(a.implicit_h));
    mix(h, static_cast<int32_t>(a.aromatic ? 1 : 0));
  }
  mix(h, center.x);
  mix(h, center.y);
  mix(h, center.z);
  mix(h, vc.grid_dim);
  mix(h, vc.resolution);
  mix(h, vc.sigma_scale);
  mix(h, vc.cutoff_sigmas);
  mix(h, vc.feature_set_version);
  mix(h, vc.hbond.max_dist);
  mix(h, vc.hbond.max_cos_angle);
  mix(h, crop_cell_size);
  return h;
}

bool same_atom(const chem::Atom& a, const chem::Atom& b) {
  // Bit compare on positions: the cache must only hit when the splat would
  // reproduce exactly, and -0.0f == 0.0f under operator== would lie.
  return std::memcmp(&a.pos.x, &b.pos.x, sizeof(float)) == 0 &&
         std::memcmp(&a.pos.y, &b.pos.y, sizeof(float)) == 0 &&
         std::memcmp(&a.pos.z, &b.pos.z, sizeof(float)) == 0 &&
         a.element == b.element && a.formal_charge == b.formal_charge &&
         a.implicit_h == b.implicit_h && a.aromatic == b.aromatic;
}

bool matches(const PocketCache::Entry& e, const std::vector<chem::Atom>& pocket,
             const core::Vec3& center, const chem::VoxelConfig& vc, float crop_cell_size) {
  if (e.atoms.size() != pocket.size()) return false;
  if (std::memcmp(&e.center.x, &center.x, sizeof(float)) != 0 ||
      std::memcmp(&e.center.y, &center.y, sizeof(float)) != 0 ||
      std::memcmp(&e.center.z, &center.z, sizeof(float)) != 0) {
    return false;
  }
  const chem::VoxelConfig& sc = e.voxel_cfg;
  if (sc.grid_dim != vc.grid_dim || sc.resolution != vc.resolution ||
      sc.sigma_scale != vc.sigma_scale || sc.cutoff_sigmas != vc.cutoff_sigmas ||
      sc.feature_set_version != vc.feature_set_version ||
      sc.hbond.max_dist != vc.hbond.max_dist ||
      sc.hbond.max_cos_angle != vc.hbond.max_cos_angle ||
      e.crop_cell_size != crop_cell_size) {
    return false;
  }
  for (size_t i = 0; i < pocket.size(); ++i) {
    if (!same_atom(e.atoms[i], pocket[i])) return false;
  }
  return true;
}
}  // namespace

PocketCache::PocketCache(size_t max_targets) : max_targets_(std::max<size_t>(1, max_targets)) {}

std::shared_ptr<const PocketCache::Entry> PocketCache::lookup(
    const std::vector<chem::Atom>& pocket, const core::Vec3& center,
    const chem::Voxelizer& voxelizer, const chem::GraphFeaturizer& featurizer) {
  const chem::VoxelConfig& vc = voxelizer.config();
  const float cell_size = featurizer.config().noncovalent_threshold;
  const uint64_t key = content_key(pocket, center, vc, cell_size);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    if (matches(*it->second->second, pocket, center, vc, cell_size)) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      return it->second->second;
    }
    // Hash collision with different content — astronomically rare; rebuild.
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  ++stats_.misses;

  auto entry = std::make_shared<Entry>();
  entry->atoms = pocket;
  entry->center = center;
  entry->voxel_cfg = vc;
  entry->crop_cell_size = cell_size;
  {
    // The entry outlives every batch: its tensors must heap-own their
    // storage even when the calling worker has an arena bound.
    core::Workspace::Unbind unbound;
    entry->grid = voxelizer.voxelize_pocket(pocket, center);
    if (!pocket.empty()) {
      std::vector<core::Vec3> pos(pocket.size());
      for (size_t i = 0; i < pocket.size(); ++i) pos[i] = pocket[i].pos;
      entry->crop_cells.build(pos.data(), static_cast<int32_t>(pocket.size()), cell_size);
    }
  }

  lru_.emplace_front(key, entry);
  by_key_[key] = lru_.begin();
  while (lru_.size() > max_targets_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return entry;
}

PocketCache::Stats PocketCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PocketCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace df::serve
