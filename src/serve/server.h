// ScoreServer — the socket face of a ScoringService: one scoring node of
// the multi-node topology (TitanInfer's model-server role). It listens on a
// TCP port, speaks the serve/wire.h protocol, and forwards score requests
// into the wrapped (in-process) service, so everything the service
// guarantees — typed errors, micro-batching, ordered-stream determinism,
// per-request deadlines — holds identically over the network.
//
// Responses stream: an incoming request is split into service-batch-sized
// sub-requests and each span of scores is sent back as its own kScoreChunk
// frame the moment it resolves, terminated by kScoreDone. In ordered-stream
// mode the split matches the service's own request slicing exactly, so a
// request scored through the server is bit-identical to the same request
// scored in process — the multi-node determinism anchor.
//
// Control plane: kPing answers with a health snapshot (draining flag,
// in-flight count, p50/p99 latency), kDrain stops accepting new score
// requests and acks once in-flight work finishes (graceful node removal),
// kShutdown raises shutdown_requested() for the hosting binary to act on.
//
// Pipelined scoring is a property of the wrapped service, not the wire:
// set ServiceConfig::pipeline_depth / pocket_cache_targets on the service
// this server fronts (examples/score_server_node.cpp exposes them as
// --pipeline-depth / --pocket-cache). Both are bitwise-neutral, so a
// pipelined node answers byte-identically to a sequential one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/latency.h"
#include "serve/net.h"
#include "serve/service.h"

namespace df::serve {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  int port = 0;                 // 0 = kernel-assigned; read back via port()
  std::string node_id;          // echoed in Hello; default "<address>:<port>"
  int max_connections = 64;     // beyond this, accepts are closed immediately
  double io_timeout_ms = 30000; // per-frame I/O stall guard on connections
  int chunk_poses = 0;          // response streaming granularity;
                                // 0 = the service's poses_per_batch
};

struct ServerStats {
  uint64_t connections = 0;       // accepted (lifetime)
  uint64_t rejected_connections = 0;  // over max_connections
  uint64_t requests = 0;          // score requests fully answered
  uint64_t poses = 0;
  uint64_t chunks = 0;            // kScoreChunk frames sent
  uint64_t errors = 0;            // requests answered with a typed error
  uint64_t timeouts = 0;          // ... of which deadline expiries
  uint64_t protocol_errors = 0;   // bad magic/version/CRC/decoding failures
  uint64_t pings = 0;
  // Receive-to-done latency of every answered request; p50/p99 accessors
  // on the histogram.
  LatencyHistogram latency;
};

class ScoreServer {
 public:
  /// Binds, starts the accept loop, and serves `service` (not owned; must
  /// outlive the server). Throws std::runtime_error if the bind fails.
  ScoreServer(ScoringService& service, ServerConfig cfg = {});
  ~ScoreServer();  // stop()

  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  int port() const { return port_; }
  const std::string& node_id() const { return node_id_; }

  /// Stop accepting new score requests; connections stay up for control
  /// frames and in-flight responses. Idempotent.
  void drain();
  bool draining() const;

  /// Close the listener and every connection, join all threads. Idempotent;
  /// the destructor calls it. In-flight requests are answered only as far
  /// as their frames can still be written.
  void stop();

  /// True once a peer sent kShutdown — the hosting binary's exit signal.
  bool shutdown_requested() const;
  /// Block until shutdown_requested() or stop().
  void wait_shutdown_requested();

  ServerStats stats() const;

 private:
  struct Conn;

  void accept_loop();
  void serve_connection(Conn* conn);
  bool handle_score_request(Conn* conn, const std::string& payload);

  ScoringService& service_;
  ServerConfig cfg_;
  net::TcpListener listener_;
  int port_ = 0;
  std::string node_id_;

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;  // wait_shutdown_requested
  std::condition_variable drain_cv_;     // drain ack: inflight hits 0
  bool stop_ = false;
  bool draining_ = false;
  bool shutdown_requested_ = false;
  int inflight_requests_ = 0;
  int active_connections_ = 0;
  ServerStats stats_;
  std::list<std::unique_ptr<Conn>> conns_;

  std::thread accept_thread_;
};

}  // namespace df::serve
