// Fixed-bucket latency histogram — the p50/p99 surface of ServiceStats and
// the score server. Buckets are powers of two in microseconds (bucket i
// holds [2^(i-1), 2^i) µs; bucket 0 is sub-microsecond), so recording is a
// bit_width and two increments — cheap enough to sit on the per-request
// fulfillment path under the service mutex — and two histograms from
// different replicas merge by plain addition. Percentiles return the upper
// bound of the bucket holding the p-th sample: a conservative (≤ factor 2)
// estimate that is exactly reproducible across runs, unlike a reservoir.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace df::serve {

class LatencyHistogram {
 public:
  // 44 buckets: up to 2^43 µs ≈ 2.4 h, far past any sane request deadline;
  // slower samples clamp into the last bucket.
  static constexpr int kBuckets = 44;

  void record_seconds(double s) {
    // Clamp BEFORE the cast: float-to-integer conversion of NaN, infinity,
    // or any value past 2^64-1 µs is undefined behaviour, and a wedged
    // upstream clock can hand us exactly those. NaN (s != s) and negatives
    // land in bucket 0; anything at or past the largest representable
    // duration saturates into the last bucket via record_micros's clamp.
    constexpr double kMaxMicros = 1.8e19;  // < 2^64, safely convertible
    if (!(s > 0)) {
      record_micros(0);
    } else if (s * 1e6 >= kMaxMicros) {
      record_micros(UINT64_MAX);
    } else {
      record_micros(static_cast<uint64_t>(s * 1e6));
    }
  }

  void record_micros(uint64_t us) {
    int b = us == 0 ? 0 : static_cast<int>(std::bit_width(us));
    if (b >= kBuckets) b = kBuckets - 1;
    ++counts_[static_cast<size_t>(b)];
    ++total_;
  }

  uint64_t count() const { return total_; }

  /// Upper bound (ms) of the bucket containing the p-th percentile sample
  /// (p in [0,1]); 0 when empty.
  double percentile_ms(double p) const {
    if (total_ == 0) return 0.0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    // Rank of the target sample, 1-based; cumulative count reaches it in
    // the bucket whose upper bound we report.
    const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total_ - 1)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<size_t>(b)];
      if (seen >= rank) return bucket_upper_ms(b);
    }
    return bucket_upper_ms(kBuckets - 1);
  }

  double p50_ms() const { return percentile_ms(0.50); }
  double p99_ms() const { return percentile_ms(0.99); }

  void merge(const LatencyHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[static_cast<size_t>(b)] += o.counts_[static_cast<size_t>(b)];
    total_ += o.total_;
  }

  uint64_t bucket_count(int b) const { return counts_[static_cast<size_t>(b)]; }

  static double bucket_upper_ms(int b) {
    return static_cast<double>(uint64_t{1} << b) / 1000.0;
  }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t total_ = 0;
};

}  // namespace df::serve
