// Dense row-major float tensor — the numeric substrate under every model in
// deepfusion (replaces the PyTorch tensor the paper builds on).
//
// The class is intentionally small: contiguous float32 storage, shape
// metadata, elementwise arithmetic, 2-D matmul and reductions. Layers that
// need structured access (conv3d, voxel grids) index the raw buffer
// directly; nothing in the library relies on views or broadcasting beyond
// scalar ops, which keeps aliasing rules trivial.
//
// Storage has two modes. By default a Tensor owns a heap buffer. While a
// core::Workspace is bound to the constructing thread (core/workspace.h),
// new tensors instead *borrow* their storage from the arena: no heap
// traffic, and the buffer dies with the workspace region rather than the
// tensor. Copies re-allocate under the same policy, so a deep model forward
// run under a workspace binding performs zero tensor heap allocations —
// verified by the alloc_count() instrumentation hook below.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace df::core {

class Rng;

/// Instrumentation: number of tensor data-buffer heap allocations (owned
/// Tensor buffers plus Workspace block growth) since process start.
/// Monotonic, process-wide, cheap (one relaxed atomic increment per heap
/// allocation). The serving tests pin this to zero deltas across
/// steady-state scoring batches; production code must not branch on it.
uint64_t alloc_count();

namespace detail {
/// Called by Tensor and Workspace whenever they touch the heap for data.
void count_tensor_alloc();
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape, float fill = 0.0f);
  Tensor(std::initializer_list<int64_t> shape, float fill = 0.0f);

  Tensor(const Tensor& o);
  Tensor& operator=(const Tensor& o);
  Tensor(Tensor&& o) noexcept;
  Tensor& operator=(Tensor&& o) noexcept;
  ~Tensor() = default;

  /// Allocated but NOT filled — contents are unspecified. For kernel
  /// plumbing that overwrites every element before the tensor escapes
  /// (matmul outputs, packed forwards); everything else wants Tensor(shape)
  /// whose zero-fill is part of the contract. Skipping the fill halves the
  /// write traffic of alloc-then-overwrite patterns, which is where the
  /// packed graph forward spends itself on bandwidth-bound cores.
  static Tensor uninit(std::vector<int64_t> shape);

  static Tensor zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(std::vector<int64_t> shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(std::vector<int64_t> shape, float v) { return Tensor(std::move(shape), v); }
  /// Standard-normal init scaled by `stddev` (Kaiming/Glorot handled by callers).
  static Tensor randn(std::vector<int64_t> shape, Rng& rng, float stddev = 1.0f);
  /// Uniform init in [lo, hi).
  static Tensor uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi);
  /// 1-D tensor from explicit values (adopts the vector's buffer: owned).
  static Tensor from(std::vector<float> values);

  int64_t numel() const { return numel_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_.at(static_cast<size_t>(i)); }
  bool empty() const { return numel_ == 0; }
  /// True when the storage is borrowed from a Workspace arena.
  bool borrowed() const { return data_ != nullptr && owned_.empty(); }

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::span<float> flat() { return {data_, static_cast<size_t>(numel_)}; }
  std::span<const float> flat() const { return {data_, static_cast<size_t>(numel_)}; }

  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }
  /// 2-D indexing (row, col); used pervasively by dense/graph layers.
  float& at(int64_t r, int64_t c) { return data_[r * shape_[1] + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * shape_[1] + c]; }

  /// Reinterpret the buffer with a new shape of identical numel.
  Tensor reshaped(std::vector<int64_t> shape) const;

  // Elementwise arithmetic. Tensor-tensor ops require identical shapes.
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(const Tensor& o);
  Tensor& operator+=(float v);
  Tensor& operator*=(float v);
  Tensor operator+(const Tensor& o) const;
  Tensor operator-(const Tensor& o) const;
  Tensor operator*(const Tensor& o) const;
  Tensor operator*(float v) const;
  Tensor operator+(float v) const;

  /// In-place `this += alpha * o` (axpy); the hot path in every optimizer.
  void axpy(float alpha, const Tensor& o);
  void fill(float v);
  void zero() { fill(0.0f); }

  /// Elementwise map (out-of-place).
  Tensor map(const std::function<float(float)>& fn) const;

  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  /// L2 norm of the flattened tensor.
  float norm() const;

  /// (m,k) x (k,n) -> (m,n). Lowered onto the blocked sgemm kernel
  /// (core/gemm.h), which parallelizes over the installed compute pool.
  Tensor matmul(const Tensor& rhs) const;
  /// matmul with this transposed: (k,m)^T x (k,n) -> (m,n).
  Tensor matmul_tn(const Tensor& rhs) const;
  /// matmul with rhs transposed: (m,k) x (n,k)^T -> (m,n).
  Tensor matmul_nt(const Tensor& rhs) const;
  Tensor transposed2d() const;

  std::string shape_str() const;

 private:
  /// Point data_ at fresh storage for `n` floats: the bound workspace when
  /// one is active on this thread, the heap otherwise.
  void acquire(int64_t n);

  std::vector<int64_t> shape_;
  std::vector<float> owned_;  // empty when the storage is workspace-borrowed
  float* data_ = nullptr;
  int64_t numel_ = 0;
};

/// Throwing shape check used by arithmetic and layer plumbing.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace df::core
