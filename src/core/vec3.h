// Minimal 3-vector for atomic coordinates; shared by chem, dock and data.
#pragma once

#include <cmath>

namespace df::core {

struct Vec3 {
  float x = 0.0f, y = 0.0f, z = 0.0f;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }

  float dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float norm2() const { return dot(*this); }
  float norm() const { return std::sqrt(norm2()); }
  Vec3 normalized() const {
    const float n = norm();
    return n > 1e-12f ? (*this) * (1.0f / n) : Vec3{1, 0, 0};
  }
  float dist(const Vec3& o) const { return (*this - o).norm(); }
};

/// Rotate `v` around unit axis `k` by angle `theta` (Rodrigues).
inline Vec3 rotate_axis_angle(const Vec3& v, const Vec3& k, float theta) {
  const float c = std::cos(theta), s = std::sin(theta);
  return v * c + k.cross(v) * s + k * (k.dot(v) * (1.0f - c));
}

}  // namespace df::core
