#include "core/threadpool.h"

#include <utility>

namespace df::core {

namespace {
thread_local bool t_is_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // A pending first_error_ nobody joined on dies with the pool; throwing
  // from a destructor is never an option.
}

bool ThreadPool::this_thread_is_worker() { return t_is_pool_worker; }

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  t_is_pool_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      if (err && !first_error_) first_error_ = err;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn) {
  // Chunk by worker count to amortize queue traffic for fine-grained bodies.
  const size_t chunks = pool.size() * 4;
  const size_t step = (n + chunks - 1) / (chunks == 0 ? 1 : chunks);
  if (step == 0) return;
  for (size_t lo = 0; lo < n; lo += step) {
    const size_t hi = std::min(n, lo + step);
    pool.submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace df::core
