// Int8 inference GEMM — the quantized sibling of core/gemm.h. One kernel
// shape serves both quantized layer forms:
//
//   Dense :  C (batch x out) = Xq (u8) * Wq (s8, prepacked panels)
//   Conv3d:  C (cout  x N )  = Wq (u8, prepacked rows) * colsq (s8 panels)
//
// The unsigned operand is always A (VNNI's vpdpbusd computes u8 x s8): real
// int8 values are stored offset by +128 into u8, and the epilogue subtracts
// the per-column compensation 128 * colsum(B) so the result equals the pure
// s8 x s8 product. Accumulation is int32 and therefore EXACT — every
// dispatch path (AVX-512 VNNI, scalar fallback), every blocking choice and
// every thread count produces bitwise-identical accumulators, and the one
// shared scalar requantize epilogue keeps the final fp32 outputs bitwise
// identical everywhere. That is what lets the calibration / artifact tests
// pin int8 scores exactly instead of within tolerance.
//
// Packed layouts (position-independent byte blobs, serialized into .dfca
// artifacts exactly like the fp32 panel images of pack_a_full/pack_b_full):
//
//   B panels: column panels of NR=16 columns (zero-padded), k in groups of
//     4 (zero-padded to k4 = round_up(k, 4)). Byte index inside panel jp:
//     p4 * 64 + j * 4 + r   for column jp*16+j, depth p = 4*p4 + r.
//     One 64-byte group is exactly the vpdpbusd operand: 16 lanes x 4
//     consecutive-k bytes.
//   A rows: row-major u8, row stride k4, tail bytes zeroed. No micro-panel
//     interleave — the kernel broadcasts 4-byte groups straight from the
//     row, so the "packed" form is just the quantized matrix itself.
//
// Full-k register accumulation bounds k: |acc| <= k * 255 * 127 must stay
// inside int32, so k must be <= 66000 (gemm_s8 throws beyond that; the
// models' largest lowered K is ~4k).
#pragma once

#include <cstdint>

#include "core/gemm.h"

namespace df::core {

/// Largest k gemm_u8s8f32 accepts (int32 accumulator headroom).
inline constexpr int64_t kGemmS8MaxK = 66000;

/// Bytes of a quantized+packed op(B) image: round_up(n,16) * round_up(k,4).
int64_t packed_b_bytes_s8(int64_t k, int64_t n);
/// Bytes of a quantized op(A) image: m * round_up(k,4).
int64_t quantized_a_bytes_s8(int64_t m, int64_t k);

/// Fused requantize + bias + activation tail, applied to every int32
/// accumulator while the tile is hot:
///   v = float(acc - comp_col[j]) * scale_col[j] * scale_row[i] (+ bias)
///       -> act(v)
/// Either scale may be null (skipped). Setting both expresses dynamic
/// per-row activation quantization against per-column weight scales — the
/// quantized Dense path, where each batch row carries its own runtime
/// quant step. comp_col carries 128 * colsum(quantized B) — the u8-offset
/// compensation — and may be null when A was not offset.
/// The activation evaluates the same core/simd_math.h scalar polynomials as
/// core::Epilogue, so a quantized layer's epilogue differs from its fp32
/// sibling only through the quantization itself.
struct QuantEpilogue {
  EpilogueAct act = EpilogueAct::kNone;
  float leaky_slope = 0.01f;
  const float* scale_col = nullptr;   // length n: per-out-column dequant scale
  const float* scale_row = nullptr;   // length m: per-out-row dequant scale
  const float* bias_col = nullptr;    // length n (Dense bias)
  const float* bias_row = nullptr;    // length m (Conv3d bias)
  const int32_t* comp_col = nullptr;  // length n: 128 * colsum(quantized B)
};

/// Quantize and pack op(B) (k x n, row-major, leading dimension ldb) into
/// the s8 panel layout above. Per-column scales via `inv_scale_col`
/// (length n) or the uniform `inv_scale` when it is null. When `comp128`
/// is non-null it receives 128 * colsum of the quantized matrix (length n)
/// — the epilogue compensation for a u8-offset A operand.
/// Rounding is lrintf (round-to-nearest-even under the default fp
/// environment) with clamping to [-127, 127]; [-127,127] keeps the VNNI
/// int16 pair products exact.
void pack_quantize_b_s8(int64_t k, int64_t n, const float* B, int64_t ldb,
                        const float* inv_scale_col, float inv_scale, int8_t* panels,
                        int32_t* comp128);

/// Quantize A (m x k, row-major, leading dimension lda) into the +128-offset
/// u8 row image above (row stride round_up(k,4), tail bytes zeroed). Per-row
/// scales via `inv_scale_row` (length m) or the uniform `inv_scale`.
void quantize_a_u8(int64_t m, int64_t k, const float* A, int64_t lda,
                   const float* inv_scale_row, float inv_scale, uint8_t* out);

/// C (m x n, ldc, fp32) = requantize(Au8 * Bs8). A is a quantize_a_u8 image
/// with row stride `lda` (>= round_up(k,4)); B is a pack_quantize_b_s8
/// panel image. Always overwrites C (quantized layers never accumulate).
/// Throws std::invalid_argument when k exceeds kGemmS8MaxK.
void gemm_u8s8f32(int64_t m, int64_t n, int64_t k, const uint8_t* A, int64_t lda,
                  const int8_t* b_panels, float* C, int64_t ldc, const QuantEpilogue& ep);

/// Unblocked reference with identical semantics over the same packed
/// operands — the equivalence oracle for the kernel tests. Must never be
/// called from model code.
void gemm_u8s8f32_naive(int64_t m, int64_t n, int64_t k, const uint8_t* A, int64_t lda,
                        const int8_t* b_panels, float* C, int64_t ldc, const QuantEpilogue& ep);

}  // namespace df::core
