#include "core/rng.h"

// Header-only today; the TU anchors the component in the build so future
// non-template additions (e.g. counter-based streams) have a home.
