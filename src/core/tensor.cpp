#include "core/tensor.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/gemm.h"
#include "core/rng.h"
#include "core/workspace.h"

namespace df::core {

namespace {
std::atomic<uint64_t> g_alloc_count{0};

int64_t shape_numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}
}  // namespace

uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

namespace detail {
void count_tensor_alloc() { g_alloc_count.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

void Tensor::acquire(int64_t n) {
  numel_ = n;
  if (n == 0) {
    data_ = nullptr;
    return;
  }
  if (Workspace* ws = Workspace::current()) {
    data_ = ws->alloc(n);
  } else {
    detail::count_tensor_alloc();
    // Two 16-lane tails of slack, mirroring the workspace allocator: row
    // kernels may load/store a full vector — or a stride-2 even-lane pair
    // of vectors — ending past numel() as long as they keep the
    // out-of-range lanes' values.
    owned_.resize(static_cast<size_t>(n) + 32);
    data_ = owned_.data();
  }
}

Tensor::Tensor(std::vector<int64_t> shape, float fill) : shape_(std::move(shape)) {
  acquire(shape_numel(shape_));
  for (int64_t i = 0; i < numel_; ++i) data_[i] = fill;
}

Tensor Tensor::uninit(std::vector<int64_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.acquire(shape_numel(t.shape_));
  return t;
}

Tensor::Tensor(std::initializer_list<int64_t> shape, float fill)
    : Tensor(std::vector<int64_t>(shape), fill) {}

Tensor::Tensor(const Tensor& o) : shape_(o.shape_) {
  acquire(o.numel_);
  if (numel_ > 0) std::memcpy(data_, o.data_, static_cast<size_t>(numel_) * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& o) {
  if (this == &o) return *this;
  shape_ = o.shape_;
  // Reuse the existing buffer when it already holds exactly this many
  // floats — parameter/optimizer code assigns same-shaped tensors in hot
  // loops and must not churn the heap (or leak arena space) doing it.
  if (numel_ != o.numel_) {
    owned_.clear();
    acquire(o.numel_);
  }
  if (numel_ > 0) std::memcpy(data_, o.data_, static_cast<size_t>(numel_) * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& o) noexcept
    : shape_(std::move(o.shape_)), owned_(std::move(o.owned_)), data_(o.data_), numel_(o.numel_) {
  o.data_ = nullptr;
  o.numel_ = 0;
  o.shape_.clear();
}

Tensor& Tensor::operator=(Tensor&& o) noexcept {
  if (this == &o) return *this;
  shape_ = std::move(o.shape_);
  owned_ = std::move(o.owned_);
  data_ = o.data_;
  numel_ = o.numel_;
  o.data_ = nullptr;
  o.numel_ = 0;
  o.shape_.clear();
  return *this;
}

Tensor Tensor::randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel_; ++i) t.data_[i] = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel_; ++i) t.data_[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from(std::vector<float> values) {
  Tensor t;
  const size_t n = values.size();
  t.shape_ = {static_cast<int64_t>(n)};
  t.owned_ = std::move(values);
  t.owned_.resize(n + 32);  // same slack invariant as acquire()
  t.data_ = t.owned_.data();
  t.numel_ = static_cast<int64_t>(n);
  return t;
}

Tensor Tensor::reshaped(std::vector<int64_t> shape) const {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_str());
  }
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
}

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(*this, o, "+=");
  for (int64_t i = 0; i < numel_; ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  check_same_shape(*this, o, "-=");
  for (int64_t i = 0; i < numel_; ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& o) {
  check_same_shape(*this, o, "*=");
  for (int64_t i = 0; i < numel_; ++i) data_[i] *= o.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float v) {
  for (int64_t i = 0; i < numel_; ++i) data_[i] += v;
  return *this;
}

Tensor& Tensor::operator*=(float v) {
  for (int64_t i = 0; i < numel_; ++i) data_[i] *= v;
  return *this;
}

Tensor Tensor::operator+(const Tensor& o) const {
  Tensor t = *this;
  t += o;
  return t;
}

Tensor Tensor::operator-(const Tensor& o) const {
  Tensor t = *this;
  t -= o;
  return t;
}

Tensor Tensor::operator*(const Tensor& o) const {
  Tensor t = *this;
  t *= o;
  return t;
}

Tensor Tensor::operator*(float v) const {
  Tensor t = *this;
  t *= v;
  return t;
}

Tensor Tensor::operator+(float v) const {
  Tensor t = *this;
  t += v;
  return t;
}

void Tensor::axpy(float alpha, const Tensor& o) {
  check_same_shape(*this, o, "axpy");
  for (int64_t i = 0; i < numel_; ++i) data_[i] += alpha * o.data_[i];
}

void Tensor::fill(float v) {
  for (int64_t i = 0; i < numel_; ++i) data_[i] = v;
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor t = uninit(shape_);
  for (int64_t i = 0; i < numel_; ++i) t.data_[i] = fn(data_[i]);
  return t;
}

float Tensor::sum() const {
  float s = 0.0f;
  for (int64_t i = 0; i < numel_; ++i) s += data_[i];
  return s;
}

float Tensor::mean() const { return numel_ == 0 ? 0.0f : sum() / static_cast<float>(numel_); }

float Tensor::max() const {
  if (numel_ == 0) throw std::runtime_error("max of empty tensor");
  float m = data_[0];
  for (int64_t i = 1; i < numel_; ++i) m = std::max(m, data_[i]);
  return m;
}

float Tensor::min() const {
  if (numel_ == 0) throw std::runtime_error("min of empty tensor");
  float m = data_[0];
  for (int64_t i = 1; i < numel_; ++i) m = std::min(m, data_[i]);
  return m;
}

float Tensor::norm() const {
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) s += static_cast<double>(data_[i]) * data_[i];
  return static_cast<float>(std::sqrt(s));
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[1] != rhs.shape_[0]) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t m = shape_[0], k = shape_[1], n = rhs.shape_[1];
  Tensor out = uninit({m, n});
  sgemm(false, false, m, n, k, data_, k, rhs.data_, n, out.data_, n);
  return out;
}

Tensor Tensor::matmul_tn(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[0] != rhs.shape_[0]) {
    throw std::invalid_argument("matmul_tn: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t k = shape_[0], m = shape_[1], n = rhs.shape_[1];
  Tensor out = uninit({m, n});
  sgemm(true, false, m, n, k, data_, m, rhs.data_, n, out.data_, n);
  return out;
}

Tensor Tensor::matmul_nt(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[1] != rhs.shape_[1]) {
    throw std::invalid_argument("matmul_nt: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t m = shape_[0], k = shape_[1], n = rhs.shape_[0];
  Tensor out = uninit({m, n});
  sgemm(false, true, m, n, k, data_, k, rhs.data_, k, out.data_, n);
  return out;
}

Tensor Tensor::transposed2d() const {
  if (ndim() != 2) throw std::invalid_argument("transposed2d: not 2-D");
  Tensor out = uninit({shape_[1], shape_[0]});
  for (int64_t i = 0; i < shape_[0]; ++i)
    for (int64_t j = 0; j < shape_[1]; ++j) out.at(j, i) = at(i, j);
  return out;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace df::core
