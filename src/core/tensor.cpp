#include "core/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/gemm.h"
#include "core/rng.h"

namespace df::core {

namespace {
int64_t shape_numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(std::initializer_list<int64_t> shape, float fill)
    : Tensor(std::vector<int64_t>(shape), fill) {}

Tensor Tensor::randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from(std::vector<float> values) {
  Tensor t;
  t.shape_ = {static_cast<int64_t>(values.size())};
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::reshaped(std::vector<int64_t> shape) const {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_str());
  }
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
  }
}

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(*this, o, "+=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  check_same_shape(*this, o, "-=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& o) {
  check_same_shape(*this, o, "*=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float v) {
  for (float& x : data_) x += v;
  return *this;
}

Tensor& Tensor::operator*=(float v) {
  for (float& x : data_) x *= v;
  return *this;
}

Tensor Tensor::operator+(const Tensor& o) const {
  Tensor t = *this;
  t += o;
  return t;
}

Tensor Tensor::operator-(const Tensor& o) const {
  Tensor t = *this;
  t -= o;
  return t;
}

Tensor Tensor::operator*(const Tensor& o) const {
  Tensor t = *this;
  t *= o;
  return t;
}

Tensor Tensor::operator*(float v) const {
  Tensor t = *this;
  t *= v;
  return t;
}

Tensor Tensor::operator+(float v) const {
  Tensor t = *this;
  t += v;
  return t;
}

void Tensor::axpy(float alpha, const Tensor& o) {
  check_same_shape(*this, o, "axpy");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o.data_[i];
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor t = *this;
  for (float& x : t.data_) x = fn(x);
  return t;
}

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const { return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size()); }

float Tensor::max() const {
  if (data_.empty()) throw std::runtime_error("max of empty tensor");
  float m = data_[0];
  for (float v : data_) m = std::max(m, v);
  return m;
}

float Tensor::min() const {
  if (data_.empty()) throw std::runtime_error("min of empty tensor");
  float m = data_[0];
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[1] != rhs.shape_[0]) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t m = shape_[0], k = shape_[1], n = rhs.shape_[1];
  Tensor out({m, n});
  sgemm(false, false, m, n, k, data_.data(), k, rhs.data_.data(), n, out.data_.data(), n);
  return out;
}

Tensor Tensor::matmul_tn(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[0] != rhs.shape_[0]) {
    throw std::invalid_argument("matmul_tn: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t k = shape_[0], m = shape_[1], n = rhs.shape_[1];
  Tensor out({m, n});
  sgemm(true, false, m, n, k, data_.data(), m, rhs.data_.data(), n, out.data_.data(), n);
  return out;
}

Tensor Tensor::matmul_nt(const Tensor& rhs) const {
  if (ndim() != 2 || rhs.ndim() != 2 || shape_[1] != rhs.shape_[1]) {
    throw std::invalid_argument("matmul_nt: bad shapes " + shape_str() + " x " + rhs.shape_str());
  }
  const int64_t m = shape_[0], k = shape_[1], n = rhs.shape_[0];
  Tensor out({m, n});
  sgemm(false, true, m, n, k, data_.data(), k, rhs.data_.data(), k, out.data_.data(), n);
  return out;
}

Tensor Tensor::transposed2d() const {
  if (ndim() != 2) throw std::invalid_argument("transposed2d: not 2-D");
  Tensor out({shape_[1], shape_[0]});
  for (int64_t i = 0; i < shape_[0]; ++i)
    for (int64_t j = 0; j < shape_[1]; ++j) out.at(j, i) = at(i, j);
  return out;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace df::core
