// Small dense linear algebra used by the GP bandit (PB2) and the AMPL
// MM/GBSA surrogate: Cholesky factorization and SPD solves. Sizes are tens
// of rows, so a straightforward O(n^3) factorization is appropriate.
#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

namespace df::core {

/// In-place lower Cholesky of an n x n SPD matrix (row-major).
/// Throws std::runtime_error if the matrix is not positive definite.
inline void cholesky(std::vector<double>& a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a[i * n + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("cholesky: matrix not positive definite");
        a[i * n + i] = std::sqrt(s);
      } else {
        a[i * n + j] = s / a[j * n + j];
      }
    }
    for (size_t j = i + 1; j < n; ++j) a[i * n + j] = 0.0;
  }
}

/// Solve L y = b (forward substitution), L lower-triangular from cholesky().
inline std::vector<double> forward_solve(const std::vector<double>& l, size_t n,
                                         const std::vector<double>& b) {
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l[i * n + k] * y[k];
    y[i] = s / l[i * n + i];
  }
  return y;
}

/// Solve L^T x = y (back substitution).
inline std::vector<double> backward_solve(const std::vector<double>& l, size_t n,
                                          const std::vector<double>& y) {
  std::vector<double> x(n);
  for (size_t ii = 0; ii < n; ++ii) {
    const size_t i = n - 1 - ii;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l[k * n + i] * x[k];
    x[i] = s / l[i * n + i];
  }
  return x;
}

/// Solve (A) x = b for SPD A via Cholesky; A is consumed.
inline std::vector<double> spd_solve(std::vector<double> a, size_t n, const std::vector<double>& b) {
  cholesky(a, n);
  return backward_solve(a, n, forward_solve(a, n, b));
}

}  // namespace df::core
