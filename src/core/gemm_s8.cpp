#include "core/gemm_s8.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"
#include "core/simd_math.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#define DF_GEMM_S8_AVX512F 1
#endif
#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
#define DF_GEMM_S8_VNNI 1
#endif

namespace df::core {

namespace {

constexpr int64_t kNRq = 16;  // columns per panel
constexpr int64_t kMRq = 6;   // rows per register tile
constexpr int64_t kNBq = 4;   // panels per tile (64 columns)

constexpr float kSeluScale = 1.0507009873554805f;
constexpr float kSeluAlpha = 1.6732632423543772f;

inline int64_t round_up4(int64_t v) { return (v + 3) & ~int64_t(3); }
inline int64_t round_up16(int64_t v) { return (v + 15) & ~int64_t(15); }

// Same scalar activation functions as the fp32 epilogue (core/gemm.cpp),
// so fused == separate holds for quantized layers too.
inline float apply_act_q(float v, EpilogueAct act, float slope) {
  switch (act) {
    case EpilogueAct::kNone: return v;
    case EpilogueAct::kReLU: return v > 0.0f ? v : 0.0f;
    case EpilogueAct::kLeakyReLU: return v > 0.0f ? v : slope * v;
    case EpilogueAct::kSELU: return simd::selu_scalar(v, kSeluScale, kSeluAlpha);
    case EpilogueAct::kSigmoid: return simd::sigmoid_scalar(v);
    case EpilogueAct::kTanh: return simd::tanh_scalar(v);
  }
  return v;
}

// The one requantize formula. Shared by the blocked kernel and the naive
// reference so their fp32 outputs are identical by construction.
inline float requant_elem(const QuantEpilogue& ep, int32_t acc, int64_t i, int64_t j) {
  if (ep.comp_col != nullptr) acc -= ep.comp_col[j];
  float v = static_cast<float>(acc);
  if (ep.scale_col != nullptr) v *= ep.scale_col[j];
  if (ep.scale_row != nullptr) v *= ep.scale_row[i];
  if (ep.bias_col != nullptr) v += ep.bias_col[j];
  if (ep.bias_row != nullptr) v += ep.bias_row[i];
  return apply_act_q(v, ep.act, ep.leaky_slope);
}

// Requantize an mr x nc int32 tile (row stride kNBq*kNRq) into C at (i0, j0).
void store_tile(const int32_t* tile, int64_t i0, int64_t j0, int64_t mr, int64_t nc, float* C,
                int64_t ldc, const QuantEpilogue& ep) {
  for (int64_t r = 0; r < mr; ++r) {
    const int64_t i = i0 + r;
    float* crow = C + i * ldc + j0;
    const int32_t* arow = tile + r * (kNBq * kNRq);
    for (int64_t c = 0; c < nc; ++c) crow[c] = requant_elem(ep, arow[c], i, j0 + c);
  }
}

#if defined(DF_GEMM_S8_VNNI)

// MR_T x (NB_T*16) register tile over the full depth: one vpdpbusd per
// (row, panel) per 4-k group — 64 u8*s8 MACs per instruction, int32 exact.
template <int MR_T, int NB_T>
void micro_vnni(const uint8_t* a, int64_t lda, const int8_t* bp, int64_t panel_bytes, int64_t k4,
                int32_t* tile) {
  __m512i acc[MR_T][NB_T];
  for (int r = 0; r < MR_T; ++r)
    for (int t = 0; t < NB_T; ++t) acc[r][t] = _mm512_setzero_si512();
  const int64_t groups = k4 / 4;
  for (int64_t p4 = 0; p4 < groups; ++p4) {
    __m512i b[NB_T];
    for (int t = 0; t < NB_T; ++t)
      b[t] = _mm512_loadu_si512(bp + t * panel_bytes + p4 * 64);
    for (int r = 0; r < MR_T; ++r) {
      int32_t aw;
      std::memcpy(&aw, a + r * lda + p4 * 4, sizeof(aw));
      const __m512i av = _mm512_set1_epi32(aw);
      for (int t = 0; t < NB_T; ++t) acc[r][t] = _mm512_dpbusd_epi32(acc[r][t], av, b[t]);
    }
  }
  for (int r = 0; r < MR_T; ++r)
    for (int t = 0; t < NB_T; ++t)
      _mm512_storeu_si512(tile + r * (kNBq * kNRq) + t * kNRq, acc[r][t]);
}

using MicroFn = void (*)(const uint8_t*, int64_t, const int8_t*, int64_t, int64_t, int32_t*);

template <int MR_T>
constexpr void fill_row(MicroFn* row) {
  row[0] = micro_vnni<MR_T, 1>;
  row[1] = micro_vnni<MR_T, 2>;
  row[2] = micro_vnni<MR_T, 3>;
  row[3] = micro_vnni<MR_T, 4>;
}

const MicroFn* micro_table() {
  static MicroFn table[kMRq][kNBq];
  static const bool init = [] {
    fill_row<1>(table[0]);
    fill_row<2>(table[1]);
    fill_row<3>(table[2]);
    fill_row<4>(table[3]);
    fill_row<5>(table[4]);
    fill_row<6>(table[5]);
    return true;
  }();
  (void)init;
  return &table[0][0];
}

inline void micro_dispatch(int64_t mr, int64_t nb, const uint8_t* a, int64_t lda,
                           const int8_t* bp, int64_t panel_bytes, int64_t k4, int32_t* tile) {
  micro_table()[(mr - 1) * kNBq + (nb - 1)](a, lda, bp, panel_bytes, k4, tile);
}

#else  // scalar fallback (off -march=native / non-AVX512VNNI hosts)

// Identical int32 accumulation over the identical panel layout — integer
// arithmetic is exact, so this produces bit-for-bit the VNNI path's tiles.
void micro_dispatch(int64_t mr, int64_t nb, const uint8_t* a, int64_t lda, const int8_t* bp,
                    int64_t panel_bytes, int64_t k4, int32_t* tile) {
  std::memset(tile, 0, static_cast<size_t>(kMRq * kNBq * kNRq) * sizeof(int32_t));
  const int64_t groups = k4 / 4;
  for (int64_t p4 = 0; p4 < groups; ++p4) {
    for (int64_t r = 0; r < mr; ++r) {
      const uint8_t* ap = a + r * lda + p4 * 4;
      const int32_t a0 = ap[0], a1 = ap[1], a2 = ap[2], a3 = ap[3];
      int32_t* trow = tile + r * (kNBq * kNRq);
      for (int64_t t = 0; t < nb; ++t) {
        const int8_t* bg = bp + t * panel_bytes + p4 * 64;
        int32_t* tl = trow + t * kNRq;
        for (int64_t j = 0; j < kNRq; ++j) {
          tl[j] += a0 * bg[j * 4 + 0] + a1 * bg[j * 4 + 1] + a2 * bg[j * 4 + 2] +
                   a3 * bg[j * 4 + 3];
        }
      }
    }
  }
}

#endif  // DF_GEMM_S8_VNNI

inline int8_t quantize_clamped(float v, float inv) {
  const long q = lrintf(v * inv);
  return static_cast<int8_t>(std::clamp<long>(q, -127, 127));
}

// Vectorized row quantizers. Activation quantization runs on every eval
// call (the weights were quantized ahead of time), so scalar lrintf here
// would cost more than the VNNI GEMM it feeds. vcvtps2dq rounds to
// nearest-even under the default MXCSR mode — exactly lrintf's rounding in
// the default fp environment — so the vector and scalar paths produce
// bitwise-identical bytes (pinned against the NATIVE=OFF build by the
// cross-build artifact tests).

/// n floats -> clamped s8, per-element inv scales via `inv_col` (length n)
/// or the uniform `inv` when it is null.
inline void quantize_row_s8(const float* src, int64_t n, const float* inv_col, float inv,
                            int8_t* dst) {
  int64_t j = 0;
#if defined(DF_GEMM_S8_AVX512F)
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127), hi = _mm512_set1_epi32(127);
  for (; j + 16 <= n; j += 16) {
    const __m512 s = inv_col != nullptr ? _mm512_loadu_ps(inv_col + j) : vinv;
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(src + j), s));
    q = _mm512_min_epi32(_mm512_max_epi32(q, lo), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j), _mm512_cvtepi32_epi8(q));
  }
#endif
  for (; j < n; ++j) {
    dst[j] = quantize_clamped(src[j], inv_col != nullptr ? inv_col[j] : inv);
  }
}

/// n floats -> offset-128 u8 with one uniform inv scale (the quantized
/// Dense A-operand form: one runtime scale per batch row).
inline void quantize_row_u8(const float* src, int64_t n, float inv, uint8_t* dst) {
  int64_t j = 0;
#if defined(DF_GEMM_S8_AVX512F)
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127), hi = _mm512_set1_epi32(127);
  const __m512i off = _mm512_set1_epi32(128);
  for (; j + 16 <= n; j += 16) {
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(src + j), vinv));
    q = _mm512_add_epi32(_mm512_min_epi32(_mm512_max_epi32(q, lo), hi), off);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j), _mm512_cvtepi32_epi8(q));
  }
#endif
  for (; j < n; ++j) dst[j] = static_cast<uint8_t>(quantize_clamped(src[j], inv) + 128);
}

}  // namespace

int64_t packed_b_bytes_s8(int64_t k, int64_t n) { return round_up16(n) * round_up4(k); }

int64_t quantized_a_bytes_s8(int64_t m, int64_t k) { return m * round_up4(k); }

void pack_quantize_b_s8(int64_t k, int64_t n, const float* B, int64_t ldb,
                        const float* inv_scale_col, float inv_scale, int8_t* panels,
                        int32_t* comp128) {
  const int64_t k4 = round_up4(k);
  const int64_t panel_bytes = k4 * kNRq;
  std::memset(panels, 0, static_cast<size_t>(round_up16(n) * k4));
  if (comp128 != nullptr) std::memset(comp128, 0, static_cast<size_t>(n) * sizeof(int32_t));
  // Row-major traversal: sequential reads of B, a handful of panel write
  // streams — the shape the per-sample conv path quantizes every call.
  // Each row is quantized vectorized into `qrow`, then folded into the
  // panels. A 64-byte panel group is 16 int32 lanes (one per column) whose
  // byte lane (p & 3) holds depth p, so with the groups pre-zeroed the fold
  // is an OR of the zero-extended bytes shifted left by 8*(p & 3).
  thread_local std::vector<int8_t> qrow;
  qrow.resize(static_cast<size_t>(n));
  for (int64_t p = 0; p < k; ++p) {
    quantize_row_s8(B + p * ldb, n, inv_scale_col, inv_scale, qrow.data());
    const int64_t base = (p >> 2) * 64 + (p & 3);
    int64_t j = 0;
#if defined(DF_GEMM_S8_AVX512F)
    const __m128i shift = _mm_cvtsi32_si128(8 * static_cast<int>(p & 3));
    for (; j + 16 <= n; j += 16) {
      const __m128i qb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(qrow.data() + j));
      int8_t* grp = panels + (j >> 4) * panel_bytes + (p >> 2) * 64;
      const __m512i g = _mm512_loadu_si512(grp);
      _mm512_storeu_si512(
          grp, _mm512_or_si512(g, _mm512_sll_epi32(_mm512_cvtepu8_epi32(qb), shift)));
      if (comp128 != nullptr) {
        const __m512i c = _mm512_loadu_si512(comp128 + j);
        _mm512_storeu_si512(comp128 + j, _mm512_add_epi32(c, _mm512_cvtepi8_epi32(qb)));
      }
    }
#endif
    for (; j < n; ++j) {
      const int8_t q = qrow[static_cast<size_t>(j)];
      panels[(j >> 4) * panel_bytes + base + (j & 15) * 4] = q;
      if (comp128 != nullptr) comp128[j] += q;
    }
  }
  if (comp128 != nullptr) {
    for (int64_t j = 0; j < n; ++j) comp128[j] *= 128;
  }
}

void quantize_a_u8(int64_t m, int64_t k, const float* A, int64_t lda,
                   const float* inv_scale_row, float inv_scale, uint8_t* out) {
  const int64_t k4 = round_up4(k);
  for (int64_t i = 0; i < m; ++i) {
    const float inv = inv_scale_row != nullptr ? inv_scale_row[i] : inv_scale;
    uint8_t* orow = out + i * k4;
    quantize_row_u8(A + i * lda, k, inv, orow);
    // Tail bytes pair with zero-padded B panel bytes (product 0 either
    // way); zeroed for deterministic images.
    for (int64_t p = k; p < k4; ++p) orow[p] = 0;
  }
}

void gemm_u8s8f32(int64_t m, int64_t n, int64_t k, const uint8_t* A, int64_t lda,
                  const int8_t* b_panels, float* C, int64_t ldc, const QuantEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k > kGemmS8MaxK) {
    throw std::invalid_argument("gemm_u8s8f32: k=" + std::to_string(k) +
                                " exceeds the int32 full-depth accumulation bound " +
                                std::to_string(kGemmS8MaxK));
  }
  const int64_t k4 = round_up4(k);
  if (lda < k4) throw std::invalid_argument("gemm_u8s8f32: lda below round_up(k,4)");
  const int64_t panels_n = round_up16(n) / kNRq;
  const int64_t panel_bytes = k4 * kNRq;
  const int64_t jblocks = (panels_n + kNBq - 1) / kNBq;

  auto run_block = [&](size_t jbi) {
    const int64_t jb = static_cast<int64_t>(jbi);
    const int64_t jp0 = jb * kNBq;
    const int64_t nb = std::min<int64_t>(kNBq, panels_n - jp0);
    const int64_t j0 = jp0 * kNRq;
    const int64_t nc = std::min<int64_t>(n - j0, nb * kNRq);
    const int8_t* bp = b_panels + jp0 * panel_bytes;
    alignas(64) int32_t tile[kMRq * kNBq * kNRq];
    for (int64_t i0 = 0; i0 < m; i0 += kMRq) {
      const int64_t mr = std::min<int64_t>(kMRq, m - i0);
      micro_dispatch(mr, nb, A + i0 * lda, lda, bp, panel_bytes, k4, tile);
      store_tile(tile, i0, j0, mr, nc, C, ldc, ep);
    }
  };

  // Column blocks write disjoint C columns and int32 accumulation is exact,
  // so fan-out is bitwise-free; only worth it when the pool is usable and
  // the MAC count clears the same order of work the fp32 kernel parallelizes.
  if (m * n * k >= (int64_t(1) << 22) && jblocks > 1) {
    parallel_for_auto(static_cast<size_t>(jblocks), 2, run_block);
  } else {
    for (int64_t jb = 0; jb < jblocks; ++jb) run_block(static_cast<size_t>(jb));
  }
}

void gemm_u8s8f32_naive(int64_t m, int64_t n, int64_t k, const uint8_t* A, int64_t lda,
                        const int8_t* b_panels, float* C, int64_t ldc, const QuantEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k > kGemmS8MaxK) {
    throw std::invalid_argument("gemm_u8s8f32_naive: k exceeds the int32 accumulation bound");
  }
  const int64_t k4 = round_up4(k);
  const int64_t panel_bytes = k4 * kNRq;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* panel = b_panels + (j >> 4) * panel_bytes;
      const int64_t jj = j & 15;
      int32_t acc = 0;
      for (int64_t p = 0; p < k4; ++p) {
        acc += static_cast<int32_t>(A[i * lda + p]) *
               static_cast<int32_t>(panel[(p >> 2) * 64 + jj * 4 + (p & 3)]);
      }
      C[i * ldc + j] = requant_elem(ep, acc, i, j);
    }
  }
}

}  // namespace df::core
