#include "core/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"
#include "core/threadpool.h"

namespace df::core {

namespace {

// BLIS-style blocking: a KC x NC panel of B is packed once and streamed from
// L2/L3 while MC x KC panels of A (packed per row-block, micro-panels of MR
// rows) are multiplied against it with an MR x NR register tile. The sizes
// target common x86 cache geometry: the A panel (~72 KiB) sits in L2, one B
// micro-panel (KC*NR floats, 24 KiB) in L1; the 6x32 tile holds twelve
// 16-lane accumulators, which maps onto AVX-512 (and splits cleanly in half
// on AVX2) without spilling.
constexpr int64_t MR = 6;
constexpr int64_t NR = 32;
constexpr int64_t KC = 192;
constexpr int64_t MC = 96;    // multiple of MR
constexpr int64_t NC = 1024;  // multiple of NR

inline int64_t round_up(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

// Element (i, p) of op(A): stored (m x k) or transposed (k x m).
inline float load_a(const float* A, int64_t lda, bool trans, int64_t i, int64_t p) {
  return trans ? A[p * lda + i] : A[i * lda + p];
}
// Element (p, j) of op(B): stored (k x n) or transposed (n x k).
inline float load_b(const float* B, int64_t ldb, bool trans, int64_t p, int64_t j) {
  return trans ? B[j * ldb + p] : B[p * ldb + j];
}

// Pack an mc x kc block of op(A) starting at (row0, col0) into micro-panels
// of MR rows: ap[panel][p * MR + r]. Rows past mc are zero-padded so the
// micro-kernel's k-loop never branches.
void pack_a(const float* A, int64_t lda, bool trans, int64_t row0, int64_t col0, int64_t mc,
            int64_t kc, float* ap) {
  for (int64_t ir = 0; ir < mc; ir += MR) {
    const int64_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    if (!trans && mr == MR) {
      // Full panel from row-major A: gather MR contiguous rows.
      const float* a0 = A + (row0 + ir) * lda + col0;
      for (int64_t p = 0; p < kc; ++p)
        for (int64_t r = 0; r < MR; ++r) panel[p * MR + r] = a0[r * lda + p];
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t r = 0; r < mr; ++r)
          panel[p * MR + r] = load_a(A, lda, trans, row0 + ir + r, col0 + p);
        for (int64_t r = mr; r < MR; ++r) panel[p * MR + r] = 0.0f;
      }
    }
  }
}

// Pack a kc x nc block of op(B) starting at (row0, col0) into micro-panels
// of NR columns: bp[panel][p * NR + c], zero-padded past nc.
void pack_b(const float* B, int64_t ldb, bool trans, int64_t row0, int64_t col0, int64_t kc,
            int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += NR) {
    const int64_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    if (!trans && nr == NR) {
      const float* b0 = B + row0 * ldb + col0 + jr;
      for (int64_t p = 0; p < kc; ++p) std::memcpy(panel + p * NR, b0 + p * ldb, NR * sizeof(float));
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t c = 0; c < nr; ++c)
          panel[p * NR + c] = load_b(B, ldb, trans, row0 + p, col0 + jr + c);
        for (int64_t c = nr; c < NR; ++c) panel[p * NR + c] = 0.0f;
      }
    }
  }
}

// MR x NR register tile over packed panels. `first` selects store vs
// accumulate into C; mr/nr clip the write-back at block edges (the packed
// operands are zero-padded, so the arithmetic is always full-tile and
// branch-free). The GNU vector-extension path keeps the twelve 16-lane
// accumulators in registers — the portable scalar fallback compiles
// everywhere but leaves ~30x on the table.
#if defined(__GNUC__) || defined(__clang__)
typedef float v16f __attribute__((vector_size(64), aligned(4)));

void micro_kernel(int64_t kc, const float* ap, const float* bp, float* C, int64_t ldc, bool first,
                  int64_t mr, int64_t nr) {
  v16f acc[MR][2] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    v16f b0, b1;
    std::memcpy(&b0, b, sizeof(b0));
    std::memcpy(&b1, b + 16, sizeof(b1));
    for (int64_t r = 0; r < MR; ++r) {
      const v16f av = v16f{} + a[r];
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  if (mr == MR && nr == NR) {
    for (int64_t r = 0; r < MR; ++r) {
      for (int h = 0; h < 2; ++h) {
        float* dst = C + r * ldc + 16 * h;
        v16f cv;
        if (first) {
          cv = acc[r][h];
        } else {
          std::memcpy(&cv, dst, sizeof(cv));
          cv += acc[r][h];
        }
        std::memcpy(dst, &cv, sizeof(cv));
      }
    }
  } else {
    float tile[MR][NR];
    for (int64_t r = 0; r < MR; ++r) {
      std::memcpy(&tile[r][0], &acc[r][0], sizeof(v16f));
      std::memcpy(&tile[r][16], &acc[r][1], sizeof(v16f));
    }
    for (int64_t r = 0; r < mr; ++r)
      for (int64_t c = 0; c < nr; ++c) {
        if (first) C[r * ldc + c] = tile[r][c];
        else C[r * ldc + c] += tile[r][c];
      }
  }
}
#else
void micro_kernel(int64_t kc, const float* ap, const float* bp, float* C, int64_t ldc, bool first,
                  int64_t mr, int64_t nr) {
  float acc[MR][NR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (int64_t r = 0; r < MR; ++r) {
      const float av = a[r];
      for (int64_t c = 0; c < NR; ++c) acc[r][c] += av * b[c];
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) {
      if (first) C[r * ldc + c] = acc[r][c];
      else C[r * ldc + c] += acc[r][c];
    }
}
#endif

}  // namespace

void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* A, int64_t lda,
           const float* B, int64_t ldb, float* C, int64_t ldc, bool accumulate) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("sgemm: negative dimension");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate)
      for (int64_t i = 0; i < m; ++i) std::memset(C + i * ldc, 0, static_cast<size_t>(n) * sizeof(float));
    return;
  }

  // One shared B panel per (pc, jc) iteration; A panels are packed per
  // row-block inside the (possibly parallel) ic loop. Both buffers are
  // reused thread_locals — the per-sample conv and small dense paths call
  // sgemm far too often to pay a heap allocation per call. Workers only
  // read bbuf; the calling thread owns and fills it before fanning out.
  static thread_local std::vector<float> bbuf;
  bbuf.resize(static_cast<size_t>(round_up(std::min(NC, n), NR) * std::min(KC, k)));
  // Workers must see the caller's panel, not their own thread_local — hand
  // them the raw pointer, never the thread_local name.
  float* const bpack = bbuf.data();
  // Parallelize row blocks only when the problem carries enough arithmetic
  // to amortize the fork/join (~2 MFLOP). The row-block grain shrinks below
  // MC when the pool would otherwise starve: at MC=96 a 256-row GEMM has
  // only 3 blocks, capping 4-thread scaling at ~2.7x — so aim for ~2 blocks
  // per worker (still multiples of MR, never below one micro-tile).
  const bool wide_enough = m * n * k >= (int64_t{1} << 20);
  const size_t min_parallel = wide_enough ? 2 : static_cast<size_t>(-1);
  int64_t iblock = MC;
  ThreadPool* pool = compute_thread_pool();
  if (wide_enough && pool != nullptr && pool->size() > 1 && !in_pool_worker()) {
    const int64_t workers = static_cast<int64_t>(pool->size());
    const int64_t target = round_up((m + 2 * workers - 1) / (2 * workers), MR);
    iblock = std::clamp(target, MR, MC);
  }
  const int64_t n_iblocks = (m + iblock - 1) / iblock;

  for (int64_t pc = 0; pc < k; pc += KC) {
    const int64_t kc = std::min(KC, k - pc);
    const bool first = (pc == 0) && !accumulate;
    for (int64_t jc = 0; jc < n; jc += NC) {
      const int64_t nc = std::min(NC, n - jc);
      pack_b(B, ldb, trans_b, pc, jc, kc, nc, bpack);
      parallel_for_auto(static_cast<size_t>(n_iblocks), min_parallel, [&](size_t ib) {
        const int64_t ic = static_cast<int64_t>(ib) * iblock;
        const int64_t mc = std::min(iblock, m - ic);
        static thread_local std::vector<float> abuf;
        abuf.resize(static_cast<size_t>(round_up(mc, MR) * kc));
        pack_a(A, lda, trans_a, ic, pc, mc, kc, abuf.data());
        for (int64_t jr = 0; jr < nc; jr += NR) {
          const int64_t nr = std::min(NR, nc - jr);
          const float* bpanel = bpack + jr * kc;
          for (int64_t ir = 0; ir < mc; ir += MR) {
            const int64_t mr = std::min(MR, mc - ir);
            micro_kernel(kc, abuf.data() + ir * kc, bpanel, C + (ic + ir) * ldc + jc + jr, ldc,
                         first, mr, nr);
          }
        }
      });
    }
  }
}

void sgemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* A,
                 int64_t lda, const float* B, int64_t ldb, float* C, int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? C[i * ldc + j] : 0.0f;
      for (int64_t p = 0; p < k; ++p)
        acc += load_a(A, lda, trans_a, i, p) * load_b(B, ldb, trans_b, p, j);
      C[i * ldc + j] = acc;
    }
  }
}

}  // namespace df::core
