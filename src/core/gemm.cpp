#include "core/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"
#include "core/simd_math.h"
#include "core/threadpool.h"

namespace df::core {

namespace {

// SELU constants (Klambauer et al. 2017) — numerically identical to
// nn::SELU::kScale/kAlpha; duplicated here because core cannot depend on nn.
constexpr float kSeluScale = 1.0507009873554805f;
constexpr float kSeluAlpha = 1.6732632423543772f;

// Scalar epilogue evaluation over the shared simd-math polynomials — the
// reference used by sgemm_naive and the k==0 path. The hot paths below
// apply the same activations through the 16-lane vector forms; both are
// elementwise-pure, so chunking never changes a value.
inline float apply_act(float v, EpilogueAct act, float slope) {
  switch (act) {
    case EpilogueAct::kNone: return v;
    case EpilogueAct::kReLU: return v > 0.0f ? v : 0.0f;
    case EpilogueAct::kLeakyReLU: return v > 0.0f ? v : slope * v;
    case EpilogueAct::kSELU: return simd::selu_scalar(v, kSeluScale, kSeluAlpha);
    case EpilogueAct::kSigmoid: return simd::sigmoid_scalar(v);
    case EpilogueAct::kTanh: return simd::tanh_scalar(v);
  }
  return v;
}

// Finalize one C element: bias broadcasts (column then row), then the
// activation. `i`/`j` are global C coordinates.
inline float apply_epilogue(const Epilogue& ep, float v, int64_t i, int64_t j) {
  if (ep.bias_col != nullptr) v += ep.bias_col[j];
  if (ep.bias_row != nullptr) v += ep.bias_row[i];
  return apply_act(v, ep.act, ep.leaky_slope);
}

#if defined(__GNUC__) || defined(__clang__)
// Vector epilogue over `lanes` (a multiple of 16) padded values of row i
// starting at global column j0. `bias_padded` must extend to j0 + lanes
// (the sgemm entry points pad it); garbage in the pad lanes is fine — the
// caller only stores the first n results back.
inline void apply_epilogue_lanes(const Epilogue& ep, const float* bias_padded, float* buf,
                                 int64_t i, int64_t lanes) {
  using simd::vf16;
  const vf16 zero = {};
  for (int64_t c = 0; c < lanes; c += 16) {
    vf16 v;
    std::memcpy(&v, buf + c, sizeof(v));
    if (bias_padded != nullptr) {
      vf16 b;
      std::memcpy(&b, bias_padded + c, sizeof(b));
      v += b;
    }
    if (ep.bias_row != nullptr) v += simd::splat(ep.bias_row[i]);
    switch (ep.act) {
      case EpilogueAct::kNone: break;
      case EpilogueAct::kReLU: v = v > zero ? v : zero; break;
      case EpilogueAct::kLeakyReLU: v = v > zero ? v : simd::splat(ep.leaky_slope) * v; break;
      case EpilogueAct::kSELU: v = simd::vselu16(v, kSeluScale, kSeluAlpha); break;
      case EpilogueAct::kSigmoid: v = simd::vsigmoid16(v); break;
      case EpilogueAct::kTanh: v = simd::vtanh16(v); break;
    }
    std::memcpy(buf + c, &v, sizeof(v));
  }
}

// Column-bias image padded to a 16-lane multiple so the vector epilogue can
// load blindly. Reused thread_local: zero steady-state heap traffic.
inline const float* pad_bias_col(const float* bias, int64_t n) {
  if (bias == nullptr) return nullptr;
  static thread_local std::vector<float> padded;
  // Rounded to a full NR tile so edge tiles can load blindly past n.
  const int64_t lanes = (n + 31) / 32 * 32;
  padded.resize(static_cast<size_t>(lanes));
  std::memcpy(padded.data(), bias, static_cast<size_t>(n) * sizeof(float));
  std::memset(padded.data() + n, 0, static_cast<size_t>(lanes - n) * sizeof(float));
  return padded.data();
}
#endif

// BLIS-style blocking: a KC x NC panel of B is packed once and streamed from
// L2/L3 while MC x KC panels of A (packed per row-block, micro-panels of MR
// rows) are multiplied against it with an MR x NR register tile. The sizes
// target common x86 cache geometry: the A panel (~72 KiB) sits in L2, one B
// micro-panel (KC*NR floats, 24 KiB) in L1; the 6x32 tile holds twelve
// 16-lane accumulators, which maps onto AVX-512 (and splits cleanly in half
// on AVX2) without spilling.
constexpr int64_t MR = 6;
constexpr int64_t NR = 32;
constexpr int64_t KC = 192;
constexpr int64_t MC = 96;    // multiple of MR
constexpr int64_t NC = 1024;  // multiple of NR

inline int64_t round_up(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

// Element (i, p) of op(A): stored (m x k) or transposed (k x m).
inline float load_a(const float* A, int64_t lda, bool trans, int64_t i, int64_t p) {
  return trans ? A[p * lda + i] : A[i * lda + p];
}
// Element (p, j) of op(B): stored (k x n) or transposed (n x k).
inline float load_b(const float* B, int64_t ldb, bool trans, int64_t p, int64_t j) {
  return trans ? B[j * ldb + p] : B[p * ldb + j];
}

// Pack an mc x kc block of op(A) starting at (row0, col0) into micro-panels
// of MR rows: ap[panel][p * MR + r]. Rows past mc are zero-padded so the
// micro-kernel's k-loop never branches.
void pack_a(const float* A, int64_t lda, bool trans, int64_t row0, int64_t col0, int64_t mc,
            int64_t kc, float* ap) {
  for (int64_t ir = 0; ir < mc; ir += MR) {
    const int64_t mr = std::min(MR, mc - ir);
    float* panel = ap + ir * kc;
    if (!trans && mr == MR) {
      // Full panel from row-major A: gather MR contiguous rows.
      const float* a0 = A + (row0 + ir) * lda + col0;
      for (int64_t p = 0; p < kc; ++p)
        for (int64_t r = 0; r < MR; ++r) panel[p * MR + r] = a0[r * lda + p];
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t r = 0; r < mr; ++r)
          panel[p * MR + r] = load_a(A, lda, trans, row0 + ir + r, col0 + p);
        for (int64_t r = mr; r < MR; ++r) panel[p * MR + r] = 0.0f;
      }
    }
  }
}

// Pack a kc x nc block of op(B) starting at (row0, col0) into micro-panels
// of NR columns: bp[panel][p * NR + c], zero-padded past nc.
void pack_b(const float* B, int64_t ldb, bool trans, int64_t row0, int64_t col0, int64_t kc,
            int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += NR) {
    const int64_t nr = std::min(NR, nc - jr);
    float* panel = bp + jr * kc;
    if (!trans && nr == NR) {
      const float* b0 = B + row0 * ldb + col0 + jr;
      for (int64_t p = 0; p < kc; ++p) std::memcpy(panel + p * NR, b0 + p * ldb, NR * sizeof(float));
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t c = 0; c < nr; ++c)
          panel[p * NR + c] = load_b(B, ldb, trans, row0 + p, col0 + jr + c);
        for (int64_t c = nr; c < NR; ++c) panel[p * NR + c] = 0.0f;
      }
    }
  }
}

// Finalize an MR x NR tile through the epilogue: `tile` holds this panel's
// accumulator, C holds prior-panel partial sums when !first. grow/gcol are
// the tile's global C coordinates for bias indexing (`bias_padded` is the
// pad_bias_col image on vector builds, so gcol — always a multiple of NR —
// indexes it directly).
void store_tile_epilogue(const float tile[MR][NR], float* C, int64_t ldc, bool first, int64_t mr,
                         int64_t nr, const Epilogue& ep, const float* bias_padded, int64_t grow,
                         int64_t gcol) {
#if defined(__GNUC__) || defined(__clang__)
  alignas(64) float buf[NR];
  for (int64_t r = 0; r < mr; ++r) {
    std::memcpy(buf, tile[r], sizeof(buf));
    if (!first)
      for (int64_t c = 0; c < nr; ++c) buf[c] += C[r * ldc + c];
    apply_epilogue_lanes(ep, bias_padded != nullptr ? bias_padded + gcol : nullptr, buf,
                         grow + r, NR);
    for (int64_t c = 0; c < nr; ++c) C[r * ldc + c] = buf[c];
  }
#else
  (void)bias_padded;
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) {
      const float v = first ? tile[r][c] : C[r * ldc + c] + tile[r][c];
      C[r * ldc + c] = apply_epilogue(ep, v, grow + r, gcol + c);
    }
#endif
}

// MR x NR register tile over packed panels. `first` selects store vs
// accumulate into C; mr/nr clip the write-back at block edges (the packed
// operands are zero-padded, so the arithmetic is always full-tile and
// branch-free). `ep` (last k-panel only) fuses the bias/activation tail into
// the write-back while the tile is hot. The GNU vector-extension path keeps
// the twelve 16-lane accumulators in registers — the portable scalar
// fallback compiles everywhere but leaves ~30x on the table.
#if defined(__GNUC__) || defined(__clang__)
typedef float v16f __attribute__((vector_size(64), aligned(4)));

void micro_kernel(int64_t kc, const float* ap, const float* bp, float* C, int64_t ldc, bool first,
                  int64_t mr, int64_t nr, const Epilogue* ep, const float* bias_padded,
                  int64_t grow, int64_t gcol) {
  v16f acc[MR][2] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    v16f b0, b1;
    std::memcpy(&b0, b, sizeof(b0));
    std::memcpy(&b1, b + 16, sizeof(b1));
    for (int64_t r = 0; r < MR; ++r) {
      const v16f av = v16f{} + a[r];
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  if (ep != nullptr) {
    float tile[MR][NR];
    for (int64_t r = 0; r < MR; ++r) {
      std::memcpy(&tile[r][0], &acc[r][0], sizeof(v16f));
      std::memcpy(&tile[r][16], &acc[r][1], sizeof(v16f));
    }
    store_tile_epilogue(tile, C, ldc, first, mr, nr, *ep, bias_padded, grow, gcol);
  } else if (mr == MR && nr == NR) {
    for (int64_t r = 0; r < MR; ++r) {
      for (int h = 0; h < 2; ++h) {
        float* dst = C + r * ldc + 16 * h;
        v16f cv;
        if (first) {
          cv = acc[r][h];
        } else {
          std::memcpy(&cv, dst, sizeof(cv));
          cv += acc[r][h];
        }
        std::memcpy(dst, &cv, sizeof(cv));
      }
    }
  } else {
    float tile[MR][NR];
    for (int64_t r = 0; r < MR; ++r) {
      std::memcpy(&tile[r][0], &acc[r][0], sizeof(v16f));
      std::memcpy(&tile[r][16], &acc[r][1], sizeof(v16f));
    }
    for (int64_t r = 0; r < mr; ++r)
      for (int64_t c = 0; c < nr; ++c) {
        if (first) C[r * ldc + c] = tile[r][c];
        else C[r * ldc + c] += tile[r][c];
      }
  }
}
#else
void micro_kernel(int64_t kc, const float* ap, const float* bp, float* C, int64_t ldc, bool first,
                  int64_t mr, int64_t nr, const Epilogue* ep, const float* bias_padded,
                  int64_t grow, int64_t gcol) {
  float acc[MR][NR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (int64_t r = 0; r < MR; ++r) {
      const float av = a[r];
      for (int64_t c = 0; c < NR; ++c) acc[r][c] += av * b[c];
    }
  }
  if (ep != nullptr) {
    store_tile_epilogue(acc, C, ldc, first, mr, nr, *ep, bias_padded, grow, gcol);
    return;
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t c = 0; c < nr; ++c) {
      if (first) C[r * ldc + c] = acc[r][c];
      else C[r * ldc + c] += acc[r][c];
    }
}
#endif

// Skinny-RHS fast path: n <= 96 and a single k-panel, the shape of every
// graph-layer GEMM (hidden widths of 8-96 over thousands of packed node
// rows) and of the small dense heads. The packed-panel kernel wastes most
// of its lanes there and pays pack_a/pack_b per call; this path streams
// row-major A directly against a zero-padded 16-lane-multiple image of B.
// Per output element the accumulation is p = 0..k-1 in order — exactly the
// packed kernel's single-panel order and sgemm_naive's order — so the
// result is bitwise identical to both.
constexpr int64_t kSkinnyN = 96;

#if defined(__GNUC__) || defined(__clang__)
template <int NV>
inline void skinny_finalize(const v16f (&acc)[NV], float* crow, int64_t n, int64_t i,
                            bool accumulate, const Epilogue* ep, const float* bias_padded) {
  alignas(64) float tmp[NV * 16];
  std::memcpy(tmp, acc, sizeof(tmp));
  if (accumulate)
    for (int64_t j = 0; j < n; ++j) tmp[j] += crow[j];
  if (ep != nullptr) apply_epilogue_lanes(*ep, bias_padded, tmp, i, NV * 16);
  for (int64_t j = 0; j < n; ++j) crow[j] = tmp[j];
}

template <int NV>
void skinny_rows(int64_t row0, int64_t m, int64_t n, int64_t k, const float* A, int64_t lda,
                 const float* bpad, int64_t bstride, float* C, int64_t ldc, bool accumulate,
                 const Epilogue* ep, const float* bias_padded) {
  // `row0` is the global C row of A/C's first row — epilogue row-bias
  // indexing must see global coordinates when the caller chunks m.
  int64_t i = 0;
  if constexpr (NV <= 4) {
    // Two rows per pass share every B load — the B stream, not the FMAs, is
    // what bounds these shapes. Beyond NV=4 the paired accumulators spill.
    for (; i + 2 <= m; i += 2) {
      const float* a0 = A + i * lda;
      const float* a1 = a0 + lda;
      v16f acc0[NV] = {}, acc1[NV] = {};
      const float* bp = bpad;
      for (int64_t p = 0; p < k; ++p, bp += bstride) {
        const v16f av0 = v16f{} + a0[p];
        const v16f av1 = v16f{} + a1[p];
        for (int v = 0; v < NV; ++v) {
          v16f bv;
          std::memcpy(&bv, bp + v * 16, sizeof(bv));
          acc0[v] += av0 * bv;
          acc1[v] += av1 * bv;
        }
      }
      skinny_finalize<NV>(acc0, C + i * ldc, n, row0 + i, accumulate, ep, bias_padded);
      skinny_finalize<NV>(acc1, C + (i + 1) * ldc, n, row0 + i + 1, accumulate, ep, bias_padded);
    }
  }
  for (; i < m; ++i) {
    const float* a = A + i * lda;
    v16f acc[NV] = {};
    const float* bp = bpad;
    for (int64_t p = 0; p < k; ++p, bp += bstride) {
      const v16f av = v16f{} + a[p];
      for (int v = 0; v < NV; ++v) {
        v16f bv;
        std::memcpy(&bv, bp + v * 16, sizeof(bv));
        acc[v] += av * bv;
      }
    }
    skinny_finalize<NV>(acc, C + i * ldc, n, row0 + i, accumulate, ep, bias_padded);
  }
}

void sgemm_skinny(int64_t m, int64_t n, int64_t k, const float* A, int64_t lda, const float* B,
                  int64_t ldb, float* C, int64_t ldc, bool accumulate, const Epilogue* ep,
                  const float* pre_image) {
  const float* bias_padded = ep != nullptr ? pad_bias_col(ep->bias_col, n) : nullptr;
  const int64_t nv = (n + 15) / 16;
  // When n is already a 16-lane multiple, B rows ARE the kernel's native
  // image — stream them in place (the vector loads stop exactly at row end,
  // so no slack is touched) and skip the packing pass entirely. Otherwise
  // pack into nv zero-padded lanes per k-row; the buffer is a reused
  // thread_local, so the hot serving path never touches the heap. A
  // prepacked operand supplies the full-k row image up front and skips both.
  const bool direct = pre_image == nullptr && (n == nv * 16);
  static thread_local std::vector<float> bbuf;
  if (pre_image == nullptr && !direct) bbuf.resize(static_cast<size_t>(KC * kSkinnyN));
  // k is walked in KC panels (k <= KC for the wide-m shapes; only small-m
  // callers take multiple passes over C). The panel split and per-panel
  // accumulation match the packed kernel exactly, so both paths stay
  // bitwise interchangeable.
  for (int64_t pc = 0; pc < k; pc += KC) {
    const int64_t kc = std::min(KC, k - pc);
    const bool acc = accumulate || pc > 0;
    const Epilogue* pep = (pc + KC >= k) ? ep : nullptr;
    const float* bpad;
    int64_t bstride;
    if (pre_image != nullptr) {
      // Same values per row as the direct/packed variants (zero-padded to
      // the lane width), so the kernel arithmetic is unchanged bit for bit.
      bpad = pre_image + pc * nv * 16;
      bstride = nv * 16;
    } else if (direct) {
      bpad = B + pc * ldb;
      bstride = ldb;
    } else {
      float* dst = bbuf.data();
      for (int64_t p = 0; p < kc; ++p) {
        float* row = dst + p * nv * 16;
        int64_t j = 0;
        for (; j < n; ++j) row[j] = B[(pc + p) * ldb + j];
        for (; j < nv * 16; ++j) row[j] = 0.0f;
      }
      bpad = dst;
      bstride = nv * 16;
    }
    const float* a = A + pc;
    auto run_rows = [&](int64_t r0, int64_t rows) {
      const float* ar = a + r0 * lda;
      float* cr = C + r0 * ldc;
      switch (nv) {
        case 1: skinny_rows<1>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
        case 2: skinny_rows<2>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
        case 3: skinny_rows<3>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
        case 4: skinny_rows<4>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
        case 5: skinny_rows<5>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
        default: skinny_rows<6>(r0, rows, n, kc, ar, lda, bpad, bstride, cr, ldc, acc, pep, bias_padded); break;
      }
    };
    // Rows are independent (per-row accumulation never crosses rows), so
    // wide packed-node GEMMs fan row chunks over the compute pool exactly
    // like the packed kernel's MC blocks — bitwise identical to serial.
    ThreadPool* pool = compute_thread_pool();
    const bool parallel = m * n * k >= (int64_t{1} << 20) && pool != nullptr &&
                          pool->size() > 1 && !in_pool_worker();
    if (parallel) {
      const int64_t workers = static_cast<int64_t>(pool->size());
      const int64_t chunk = std::max<int64_t>(64, (m + 2 * workers - 1) / (2 * workers));
      const int64_t nchunks = (m + chunk - 1) / chunk;
      parallel_for_auto(static_cast<size_t>(nchunks), 2, [&](size_t ci) {
        const int64_t r0 = static_cast<int64_t>(ci) * chunk;
        run_rows(r0, std::min(chunk, m - r0));
      });
    } else {
      run_rows(0, m);
    }
  }
}
#else
void sgemm_skinny(int64_t m, int64_t n, int64_t k, const float* A, int64_t lda, const float* B,
                  int64_t ldb, float* C, int64_t ldc, bool accumulate, const Epilogue* ep,
                  const float* pre_image) {
  // Prepacked B: the row image holds the same values at a 16-lane stride.
  const int64_t bld = pre_image != nullptr ? (n + 15) / 16 * 16 : ldb;
  const float* bsrc = pre_image != nullptr ? pre_image : B;
  for (int64_t i = 0; i < m; ++i) {
    const float* a = A + i * lda;
    float acc[kSkinnyN] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p];
      for (int64_t j = 0; j < n; ++j) acc[j] += av * bsrc[p * bld + j];
    }
    float* crow = C + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float v = accumulate ? crow[j] + acc[j] : acc[j];
      crow[j] = ep != nullptr ? apply_epilogue(*ep, v, i, j) : v;
    }
  }
}
#endif

/// Prepacked operand views threaded through the shared blocked driver: when
/// a pointer is set, the driver substitutes the ahead-of-time image for the
/// per-call pack_a/pack_b output at the exact offset the per-call pack
/// would have produced — identical bytes in, identical bytes out.
struct PrepackedViews {
  const float* a_panels = nullptr;  // pack_a_full image
  const float* b_panels = nullptr;  // pack_b_full panel region
  const float* b_skinny = nullptr;  // pack_b_full skinny row image
};

void sgemm_impl(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* A,
                int64_t lda, const float* B, int64_t ldb, float* C, int64_t ldc, bool accumulate,
                const Epilogue* epilogue, const PrepackedViews& pre) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("sgemm: negative dimension");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (int64_t i = 0; i < m; ++i) {
      float* row = C + i * ldc;
      if (!accumulate) std::memset(row, 0, static_cast<size_t>(n) * sizeof(float));
      if (epilogue != nullptr)
        for (int64_t j = 0; j < n; ++j) row[j] = apply_epilogue(*epilogue, row[j], i, j);
    }
    return;
  }
  // Skinny dispatch: always for a single k-panel; for deeper k only when m
  // is small enough that the repeated C passes stay cache-resident (the
  // per-sample conv GEMMs, m = cout).
  if (!trans_a && !trans_b && n <= kSkinnyN && (k <= KC || m <= 64)) {
    sgemm_skinny(m, n, k, A, lda, B, ldb, C, ldc, accumulate, epilogue, pre.b_skinny);
    return;
  }

  // One shared B panel per (pc, jc) iteration; A panels are packed per
  // row-block inside the (possibly parallel) ic loop. Both buffers are
  // reused thread_locals — the per-sample conv and small dense paths call
  // sgemm far too often to pay a heap allocation per call. Workers only
  // read bbuf; the calling thread owns and fills it before fanning out.
  static thread_local std::vector<float> bbuf;
  float* bpack_buf = nullptr;
  if (pre.b_panels == nullptr) {
    bbuf.resize(static_cast<size_t>(round_up(std::min(NC, n), NR) * std::min(KC, k)));
    // Workers must see the caller's panel, not their own thread_local — hand
    // them the raw pointer, never the thread_local name.
    bpack_buf = bbuf.data();
  }
  // Parallelize row blocks only when the problem carries enough arithmetic
  // to amortize the fork/join (~2 MFLOP). The row-block grain shrinks below
  // MC when the pool would otherwise starve: at MC=96 a 256-row GEMM has
  // only 3 blocks, capping 4-thread scaling at ~2.7x — so aim for ~2 blocks
  // per worker (still multiples of MR, never below one micro-tile).
  const bool wide_enough = m * n * k >= (int64_t{1} << 20);
  const size_t min_parallel = wide_enough ? 2 : static_cast<size_t>(-1);
  int64_t iblock = MC;
  ThreadPool* pool = compute_thread_pool();
  if (wide_enough && pool != nullptr && pool->size() > 1 && !in_pool_worker()) {
    const int64_t workers = static_cast<int64_t>(pool->size());
    const int64_t target = round_up((m + 2 * workers - 1) / (2 * workers), MR);
    iblock = std::clamp(target, MR, MC);
  }
  const int64_t n_iblocks = (m + iblock - 1) / iblock;
#if defined(__GNUC__) || defined(__clang__)
  const float* bias_padded =
      epilogue != nullptr ? pad_bias_col(epilogue->bias_col, n) : nullptr;
#else
  const float* bias_padded = nullptr;
#endif

  const int64_t mr_rows = round_up(m, MR);  // A-image floats per unit of pc
  const int64_t nr_cols = round_up(n, NR);  // B-image floats per unit of pc
  for (int64_t pc = 0; pc < k; pc += KC) {
    const int64_t kc = std::min(KC, k - pc);
    const bool first = (pc == 0) && !accumulate;
    // The epilogue finalizes C, so it runs only with the last k-panel's
    // write-back (earlier panels hold partial sums).
    const Epilogue* ep = (pc + KC >= k) ? epilogue : nullptr;
    for (int64_t jc = 0; jc < n; jc += NC) {
      const int64_t nc = std::min(NC, n - jc);
      const float* bpack;
      if (pre.b_panels != nullptr) {
        bpack = pre.b_panels + nr_cols * pc + jc * kc;
      } else {
        pack_b(B, ldb, trans_b, pc, jc, kc, nc, bpack_buf);
        bpack = bpack_buf;
      }
      parallel_for_auto(static_cast<size_t>(n_iblocks), min_parallel, [&](size_t ib) {
        const int64_t ic = static_cast<int64_t>(ib) * iblock;
        const int64_t mc = std::min(iblock, m - ic);
        const float* apanels;
        if (pre.a_panels != nullptr) {
          // Row block ic starts MR-aligned, so its micro-panels sit at a
          // plain offset inside the full-m image.
          apanels = pre.a_panels + mr_rows * pc + ic * kc;
        } else {
          static thread_local std::vector<float> abuf;
          abuf.resize(static_cast<size_t>(round_up(mc, MR) * kc));
          pack_a(A, lda, trans_a, ic, pc, mc, kc, abuf.data());
          apanels = abuf.data();
        }
        for (int64_t jr = 0; jr < nc; jr += NR) {
          const int64_t nr = std::min(NR, nc - jr);
          const float* bpanel = bpack + jr * kc;
          for (int64_t ir = 0; ir < mc; ir += MR) {
            const int64_t mr = std::min(MR, mc - ir);
            micro_kernel(kc, apanels + ir * kc, bpanel, C + (ic + ir) * ldc + jc + jr, ldc,
                         first, mr, nr, ep, bias_padded, ic + ir, jc + jr);
          }
        }
      });
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* A, int64_t lda,
           const float* B, int64_t ldb, float* C, int64_t ldc, bool accumulate,
           const Epilogue* epilogue) {
  sgemm_impl(trans_a, trans_b, m, n, k, A, lda, B, ldb, C, ldc, accumulate, epilogue,
             PrepackedViews{});
}

int64_t packed_a_floats(int64_t m, int64_t k) { return round_up(m, MR) * k; }

int64_t packed_b_floats(int64_t k, int64_t n) {
  int64_t total = round_up(n, NR) * k;
  // The skinny dispatch depends on m (unknown at pack time), so any B narrow
  // enough to qualify also carries the skinny-path row image.
  if (n <= kSkinnyN) total += k * ((n + 15) / 16 * 16);
  return total;
}

void pack_a_full(bool trans_a, int64_t m, int64_t k, const float* A, int64_t lda, float* out) {
  const int64_t mr_rows = round_up(m, MR);
  for (int64_t pc = 0; pc < k; pc += KC) {
    const int64_t kc = std::min(KC, k - pc);
    // The per-call path packs each MC row block separately, but the blocks
    // are MR-aligned and pack_a's layout is micro-panel-major, so one full-m
    // pack per KC panel produces the same bytes at ic * kc offsets.
    pack_a(A, lda, trans_a, 0, pc, m, kc, out + mr_rows * pc);
  }
}

void pack_b_full(bool trans_b, int64_t k, int64_t n, const float* B, int64_t ldb, float* out) {
  const int64_t nr_cols = round_up(n, NR);
  for (int64_t pc = 0; pc < k; pc += KC) {
    const int64_t kc = std::min(KC, k - pc);
    for (int64_t jc = 0; jc < n; jc += NC) {
      const int64_t nc = std::min(NC, n - jc);
      // Every full NC block contributes NC * kc floats, so block jc of this
      // KC panel starts exactly where the per-call pack would place it.
      pack_b(B, ldb, trans_b, pc, jc, kc, nc, out + nr_cols * pc + jc * kc);
    }
  }
  if (n <= kSkinnyN) {
    // Skinny-path row image: each k-row zero-padded to the 16-lane width —
    // the same rows sgemm_skinny builds per call (or streams in place when
    // n is already a lane multiple).
    const int64_t nv16 = (n + 15) / 16 * 16;
    float* img = out + nr_cols * k;
    for (int64_t p = 0; p < k; ++p) {
      float* row = img + p * nv16;
      int64_t j = 0;
      for (; j < n; ++j) row[j] = load_b(B, ldb, trans_b, p, j);
      for (; j < nv16; ++j) row[j] = 0.0f;
    }
  }
}

void sgemm_prepacked(int64_t m, const float* A, int64_t lda, const PrepackedB& B, float* C,
                     int64_t ldc, bool accumulate, const Epilogue* epilogue) {
  if (B.image == nullptr || B.k < 0 || B.n < 0)
    throw std::invalid_argument("sgemm_prepacked: invalid PrepackedB view");
  PrepackedViews pre;
  pre.b_panels = B.image;
  pre.b_skinny = B.n <= kSkinnyN ? B.image + round_up(B.n, NR) * B.k : nullptr;
  // Raw B is never dereferenced: the blocked path reads the panel image and
  // the skinny path reads the row image.
  sgemm_impl(false, false, m, B.n, B.k, A, lda, nullptr, B.n, C, ldc, accumulate, epilogue, pre);
}

void sgemm_prepacked(const PrepackedA& A, int64_t n, const float* B, int64_t ldb, float* C,
                     int64_t ldc, bool accumulate, const Epilogue* epilogue) {
  if (A.panels == nullptr || A.raw == nullptr || A.m < 0 || A.k < 0)
    throw std::invalid_argument("sgemm_prepacked: invalid PrepackedA view");
  PrepackedViews pre;
  pre.a_panels = A.panels;
  // The skinny path streams row-major A directly, so it reads A.raw.
  sgemm_impl(false, false, A.m, n, A.k, A.raw, A.k, B, ldb, C, ldc, accumulate, epilogue, pre);
}

void sgemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* A,
                 int64_t lda, const float* B, int64_t ldb, float* C, int64_t ldc, bool accumulate,
                 const Epilogue* epilogue) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? C[i * ldc + j] : 0.0f;
      for (int64_t p = 0; p < k; ++p)
        acc += load_a(A, lda, trans_a, i, p) * load_b(B, ldb, trans_b, p, j);
      C[i * ldc + j] = epilogue != nullptr ? apply_epilogue(*epilogue, acc, i, j) : acc;
    }
  }
}

}  // namespace df::core
