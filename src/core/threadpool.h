// Fixed-size worker pool. Stands in for the paper's parallel data loaders
// (24 per rank) and for Horovod ranks inside one simulated node: work is
// pushed as std::function jobs and joined with wait_idle(), mirroring the
// fork/allgather structure of a Fusion scoring job (paper Fig. 3).
//
// Jobs that throw do not kill the worker: the first exception is captured
// and rethrown from the next wait_idle()/parallel_for() join, so a failing
// rank surfaces at the barrier instead of calling std::terminate.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace df::core {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  /// Block until the queue is empty and all workers are idle. Rethrows the
  /// first exception any job threw since the last join (remaining queued
  /// jobs still run to completion first). The pool assumes one logical
  /// submitter/joiner at a time: concurrent non-worker joiners block on
  /// each other's jobs and may receive each other's exceptions.
  void wait_idle();
  size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool. Leaf
  /// kernels use this to avoid submitting nested work to a pool they are
  /// already running on (which would deadlock wait_idle).
  static bool this_thread_is_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers
  std::condition_variable idle_cv_;  // wakes wait_idle
  std::exception_ptr first_error_;   // first job exception since last join
  size_t active_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) across the pool and join. Rethrows the first
/// exception thrown by any fn(i).
void parallel_for(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace df::core
