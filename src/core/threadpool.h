// Fixed-size worker pool. Stands in for the paper's parallel data loaders
// (24 per rank) and for Horovod ranks inside one simulated node: work is
// pushed as std::function jobs and joined with wait_idle(), mirroring the
// fork/allgather structure of a Fusion scoring job (paper Fig. 3).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace df::core {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  /// Block until the queue is empty and all workers are idle.
  void wait_idle();
  size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers
  std::condition_variable idle_cv_;  // wakes wait_idle
  size_t active_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) across the pool and join.
void parallel_for(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace df::core
