#include "core/workspace.h"

#include <algorithm>
#include <stdexcept>

#include "core/tensor.h"

namespace df::core {

namespace {
// Keep successive borrows 64-byte aligned relative to the block start so
// arena tensors get the same cache-line behaviour as fresh heap buffers.
constexpr size_t kAlignFloats = 16;

thread_local Workspace* t_current = nullptr;

size_t round_up(size_t n, size_t to) { return (n + to - 1) / to * to; }
}  // namespace

Workspace::Workspace(size_t initial_floats)
    : next_block_floats_(std::max<size_t>(initial_floats, kAlignFloats)) {}

float* Workspace::alloc(int64_t n) {
  if (n < 0) throw std::invalid_argument("Workspace::alloc: negative size");
  // +32 floats of exclusive slack per borrow (mirrored by the Tensor heap
  // path): row kernels may load a full trailing vector — or a stride-2
  // even-lane pair of vectors — past the last valid element without
  // touching a neighbouring allocation.
  const size_t need =
      round_up(std::max<size_t>(static_cast<size_t>(n), 1) + 32, kAlignFloats);
  // Advance through existing blocks first (they survive reset()).
  while (cur_ < blocks_.size() && blocks_[cur_].used + need > blocks_[cur_].size) ++cur_;
  if (cur_ == blocks_.size()) {
    // Geometric growth keeps the block count (and thus warmup allocations)
    // logarithmic in the peak working set.
    const size_t size = std::max(next_block_floats_, need);
    Block b;
    b.data = std::unique_ptr<float[]>(new float[size]);
    b.size = size;
    blocks_.push_back(std::move(b));
    next_block_floats_ = size * 2;
    detail::count_tensor_alloc();
  }
  Block& b = blocks_[cur_];
  float* p = b.data.get() + b.used;
  b.used += need;
  return p;
}

void Workspace::reset() {
  for (Block& b : blocks_) b.used = 0;
  cur_ = 0;
}

void Workspace::reserve(size_t floats) {
  if (floats == 0 || capacity() >= floats) return;
  // One block of the full budget (not just the shortfall): per-block used
  // never exceeds the donor's measured peak, so any borrow sequence that
  // fit the donor's capacity fits this single block without straddling.
  const size_t size = round_up(std::max(floats, kAlignFloats), kAlignFloats);
  Block b;
  b.data = std::unique_ptr<float[]>(new float[size]);
  b.size = size;
  blocks_.push_back(std::move(b));
  next_block_floats_ = size * 2;
  detail::count_tensor_alloc();
}

size_t Workspace::capacity() const {
  size_t n = 0;
  for (const Block& b : blocks_) n += b.size;
  return n;
}

size_t Workspace::in_use() const {
  size_t n = 0;
  for (const Block& b : blocks_) n += b.used;
  return n;
}

void Workspace::restore(Checkpoint c) {
  if (c.block >= blocks_.size() && !(c.block == 0 && blocks_.empty())) {
    throw std::logic_error("Workspace::restore: checkpoint from a different workspace state");
  }
  for (size_t i = c.block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  if (c.block < blocks_.size()) blocks_[c.block].used = c.used;
  cur_ = c.block;
}

Workspace* Workspace::current() { return t_current; }

Workspace::Bind::Bind(Workspace& ws) : prev_(t_current) { t_current = &ws; }
Workspace::Bind::~Bind() { t_current = prev_; }

Workspace::Unbind::Unbind() : prev_(t_current) { t_current = nullptr; }
Workspace::Unbind::~Unbind() { t_current = prev_; }

Workspace::Scope::Scope(Workspace& ws) : ws_(ws), cp_(ws.checkpoint()), prev_(t_current) {
  t_current = &ws;
}

Workspace::Scope::~Scope() {
  ws_.restore(cp_);
  t_current = prev_;
}

}  // namespace df::core
