// Cache-blocked, register-tiled single-precision GEMM — the one kernel every
// dense FLOP in deepfusion (Dense, GatedGraphConv, vol2col Conv3d) lowers
// onto. Row-major storage with explicit leading dimensions, BLIS-style
// packed panels (MR x NR micro-tiles), and optional ThreadPool parallelism
// over row panels via core::compute_thread_pool().
//
// An optional fused epilogue applies a bias broadcast and/or a pointwise
// activation to each C micro-tile while it is still hot from the k-loop,
// replacing the separate elementwise passes the layers used to run over the
// whole output. The fused result is bitwise identical to the unfused
// sequence (gemm, then bias, then activation): the bias is added after the
// final k-panel accumulation, exactly where the separate pass would add it,
// and the activation is the same scalar function applied per element.
//
// The naive triple-loop variant is retained as the correctness reference for
// equivalence tests and the speedup benchmark; it must never be called from
// model code.
#pragma once

#include <cstdint>

namespace df::core {

/// Pointwise epilogue activations. The transcendental variants evaluate the
/// shared core/simd_math.h polynomials — the same functions the standalone
/// activation layers and the voxel splatter use (never raw std::exp), which
/// is what keeps fused == unfused and batched == per-pose bitwise.
enum class EpilogueAct : uint8_t { kNone, kReLU, kLeakyReLU, kSELU, kSigmoid, kTanh };

/// Fused tail of a GEMM: C[i][j] = act(C[i][j] + bias_col[j] + bias_row[i]).
/// Either bias may be null (skipped). Applied once, after the last k-panel.
struct Epilogue {
  EpilogueAct act = EpilogueAct::kNone;
  const float* bias_col = nullptr;  // length n: per-output-column (Dense bias)
  const float* bias_row = nullptr;  // length m: per-output-row (Conv3d bias)
  float leaky_slope = 0.01f;        // kLeakyReLU only
};

/// C (m x n, ldc) = op(A) * op(B), overwriting C — or accumulating into C
/// when `accumulate` is true. When `epilogue` is non-null its bias/activation
/// are applied to the final C (after accumulation) on the hot micro-tile.
///   op(A) is m x k: stored as (m x k, lda >= k) when !trans_a,
///                   or as its transpose (k x m, lda >= m) when trans_a.
///   op(B) is k x n: stored as (k x n, ldb >= n) when !trans_b,
///                   or as its transpose (n x k, ldb >= k) when trans_b.
void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           const float* A, int64_t lda, const float* B, int64_t ldb,
           float* C, int64_t ldc, bool accumulate = false,
           const Epilogue* epilogue = nullptr);

/// Unblocked reference implementation with identical semantics.
void sgemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 const float* A, int64_t lda, const float* B, int64_t ldb,
                 float* C, int64_t ldc, bool accumulate = false,
                 const Epilogue* epilogue = nullptr);

// ---- prepacked operands --------------------------------------------------
//
// A weight matrix that is multiplied repeatedly (every Dense layer on the
// serving path, every per-sample Conv3d GEMM) pays pack_a/pack_b on every
// sgemm call even though the packed bytes never change. pack_a_full /
// pack_b_full produce, once, exactly the panel images the blocked kernel
// would have packed per call — same micro-panel layout, same zero padding,
// same (pc, jc/ic) traversal order — so sgemm_prepacked streams them
// directly and its result is bitwise identical to sgemm on the raw operand,
// on every dispatch path including the skinny-RHS fast path.
//
// The images are position-independent float blobs: the ahead-of-time model
// compiler serializes them into compiled artifacts and serving replicas
// point PrepackedA/PrepackedB views straight into the mmap'd file.

/// Floats pack_a_full writes for an (m x k) op(A): round_up(m, MR) * k.
int64_t packed_a_floats(int64_t m, int64_t k);
/// Floats pack_b_full writes for a (k x n) op(B): round_up(n, NR) * k
/// panels, plus a k * round_up(n, 16) skinny-path row image when n is
/// within the skinny-RHS dispatch width.
int64_t packed_b_floats(int64_t k, int64_t n);

/// Pack all KC-panels of op(A) (m x k) into micro-panels of MR rows, the
/// exact per-row-block layout sgemm's pack_a produces (KC-panel major).
void pack_a_full(bool trans_a, int64_t m, int64_t k, const float* A, int64_t lda, float* out);
/// Pack all (KC, NC) blocks of op(B) (k x n) into micro-panels of NR
/// columns (KC-panel major, NC-block minor), followed by the zero-padded
/// 16-lane row image the skinny-RHS path streams (when n qualifies).
void pack_b_full(bool trans_b, int64_t k, int64_t n, const float* B, int64_t ldb, float* out);

/// Non-owning view of a pack_a_full image. `raw` must point at the
/// row-major (m x k, lda = k) operand — the skinny-RHS path streams A
/// unpacked, so prepacking A keeps the raw bytes reachable.
struct PrepackedA {
  int64_t m = 0, k = 0;
  const float* panels = nullptr;  // packed_a_floats(m, k) floats
  const float* raw = nullptr;     // (m x k) row-major, leading dimension k
};

/// Non-owning view of a pack_b_full image (panels + optional skinny image).
struct PrepackedB {
  int64_t k = 0, n = 0;
  const float* image = nullptr;  // packed_b_floats(k, n) floats
};

/// C (m x B.n) = A (m x B.k) * B with B prepacked — bitwise identical to
/// sgemm(false, false, m, B.n, B.k, A, lda, raw_B, B.n, ...) but without the
/// per-call pack_b (and without the skinny-path row-image build).
void sgemm_prepacked(int64_t m, const float* A, int64_t lda, const PrepackedB& B, float* C,
                     int64_t ldc, bool accumulate = false, const Epilogue* epilogue = nullptr);

/// C (A.m x n) = A * B (A.k x n) with A prepacked — bitwise identical to
/// sgemm(false, false, A.m, n, A.k, A.raw, A.k, B, ldb, ...) but without the
/// per-call pack_a in the blocked path.
void sgemm_prepacked(const PrepackedA& A, int64_t n, const float* B, int64_t ldb, float* C,
                     int64_t ldc, bool accumulate = false, const Epilogue* epilogue = nullptr);

}  // namespace df::core
