// Cache-blocked, register-tiled single-precision GEMM — the one kernel every
// dense FLOP in deepfusion (Dense, GatedGraphConv, vol2col Conv3d) lowers
// onto. Row-major storage with explicit leading dimensions, BLIS-style
// packed panels (MR x NR micro-tiles), and optional ThreadPool parallelism
// over row panels via core::compute_thread_pool().
//
// An optional fused epilogue applies a bias broadcast and/or a pointwise
// activation to each C micro-tile while it is still hot from the k-loop,
// replacing the separate elementwise passes the layers used to run over the
// whole output. The fused result is bitwise identical to the unfused
// sequence (gemm, then bias, then activation): the bias is added after the
// final k-panel accumulation, exactly where the separate pass would add it,
// and the activation is the same scalar function applied per element.
//
// The naive triple-loop variant is retained as the correctness reference for
// equivalence tests and the speedup benchmark; it must never be called from
// model code.
#pragma once

#include <cstdint>

namespace df::core {

/// Pointwise epilogue activations. The transcendental variants evaluate the
/// shared core/simd_math.h polynomials — the same functions the standalone
/// activation layers and the voxel splatter use (never raw std::exp), which
/// is what keeps fused == unfused and batched == per-pose bitwise.
enum class EpilogueAct : uint8_t { kNone, kReLU, kLeakyReLU, kSELU, kSigmoid, kTanh };

/// Fused tail of a GEMM: C[i][j] = act(C[i][j] + bias_col[j] + bias_row[i]).
/// Either bias may be null (skipped). Applied once, after the last k-panel.
struct Epilogue {
  EpilogueAct act = EpilogueAct::kNone;
  const float* bias_col = nullptr;  // length n: per-output-column (Dense bias)
  const float* bias_row = nullptr;  // length m: per-output-row (Conv3d bias)
  float leaky_slope = 0.01f;        // kLeakyReLU only
};

/// C (m x n, ldc) = op(A) * op(B), overwriting C — or accumulating into C
/// when `accumulate` is true. When `epilogue` is non-null its bias/activation
/// are applied to the final C (after accumulation) on the hot micro-tile.
///   op(A) is m x k: stored as (m x k, lda >= k) when !trans_a,
///                   or as its transpose (k x m, lda >= m) when trans_a.
///   op(B) is k x n: stored as (k x n, ldb >= n) when !trans_b,
///                   or as its transpose (n x k, ldb >= k) when trans_b.
void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           const float* A, int64_t lda, const float* B, int64_t ldb,
           float* C, int64_t ldc, bool accumulate = false,
           const Epilogue* epilogue = nullptr);

/// Unblocked reference implementation with identical semantics.
void sgemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 const float* A, int64_t lda, const float* B, int64_t ldb,
                 float* C, int64_t ldc, bool accumulate = false,
                 const Epilogue* epilogue = nullptr);

}  // namespace df::core
