// Cache-blocked, register-tiled single-precision GEMM — the one kernel every
// dense FLOP in deepfusion (Dense, GatedGraphConv, vol2col Conv3d) lowers
// onto. Row-major storage with explicit leading dimensions, BLIS-style
// packed panels (MR x NR micro-tiles), and optional ThreadPool parallelism
// over row panels via core::compute_thread_pool().
//
// The naive triple-loop variant is retained as the correctness reference for
// equivalence tests and the speedup benchmark; it must never be called from
// model code.
#pragma once

#include <cstdint>

namespace df::core {

/// C (m x n, ldc) = op(A) * op(B), overwriting C — or accumulating into C
/// when `accumulate` is true.
///   op(A) is m x k: stored as (m x k, lda >= k) when !trans_a,
///                   or as its transpose (k x m, lda >= m) when trans_a.
///   op(B) is k x n: stored as (k x n, ldb >= n) when !trans_b,
///                   or as its transpose (n x k, ldb >= k) when trans_b.
void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           const float* A, int64_t lda, const float* B, int64_t ldb,
           float* C, int64_t ldc, bool accumulate = false);

/// Unblocked reference implementation with identical semantics.
void sgemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 const float* A, int64_t lda, const float* B, int64_t ldb,
                 float* C, int64_t ldc, bool accumulate = false);

}  // namespace df::core
