// Deterministic random source. Every stochastic component in the library
// (weight init, dropout, docking Monte-Carlo, PB2 exploration, fault
// injection) draws from an explicitly passed Rng so whole experiments replay
// bit-identically from one seed — a prerequisite for the paper's
// fault-tolerant rescheduling story and for our tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace df::core {

/// splitmix64 finalizer: scrambles user seeds before they reach the
/// mt19937_64 engine. Sequential seeds (0, 1, 2, ...) fed directly into
/// mt19937_64 produce correlated first outputs, which breaks anything that
/// derives many streams from consecutive seeds (job failure injection,
/// per-worker loader rngs).
inline uint64_t mix_seed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a reproducible child seed for element `index` of logical stream
/// `tag` under a root `seed`. Components that need many independent RNGs
/// (per-job scoring streams, fault-injection draws, per-compound assay
/// noise) key their stream on *stable identifiers* through this helper
/// instead of consuming a shared engine in arrival order — that is what
/// makes whole campaigns bitwise independent of thread count and of
/// kill/resume history.
inline uint64_t derive_stream(uint64_t seed, uint64_t tag, uint64_t index) {
  return mix_seed(mix_seed(seed ^ tag) + index);
}

/// Well-known stream tags. Components that share one user seed (trainer,
/// data loader, campaign) key their derive_stream calls on distinct tags so
/// their streams can never collide; per-epoch components add the epoch
/// index to the tag. Listed centrally because a collision between two
/// layers would be invisible locally but would correlate "independent"
/// draws.
namespace stream_tag {
inline constexpr uint64_t kLoaderShuffle = 0x10adC0FFEE000001ULL;  // + nothing; index = epoch
inline constexpr uint64_t kLoaderSample = 0x10adC0FFEE000002ULL;   // + epoch; index = position
inline constexpr uint64_t kTrainDropout = 0xD0D0C0FFEE000003ULL;   // + epoch; index = position
inline constexpr uint64_t kEvalSample = 0xE7a1C0FFEE000004ULL;     // + nothing; index = position
inline constexpr uint64_t kCalibSample = 0xCa11C0FFEE000005ULL;    // + nothing; index = sample id
}  // namespace stream_tag

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) : engine_(mix_seed(seed)) {}

  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }
  double uniform_d(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }
  /// Integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Pick an element index weighted uniformly.
  size_t pick(size_t n) { return static_cast<size_t>(randint(0, static_cast<int64_t>(n) - 1)); }

  template <typename T>
  const T& choice(const std::vector<T>& v) {
    return v[pick(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (splitmix-style) so parallel workers
  /// never share state.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace df::core
