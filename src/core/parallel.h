// Process-wide compute-pool hook. Numeric kernels (gemm, conv lowering,
// voxel splatting, pooling) are leaf code that cannot know who owns the
// threads, so they pick up an optional shared ThreadPool from here and fall
// back to serial execution when none is installed — or when the caller is
// itself a pool worker, which keeps nested parallel regions from deadlocking
// wait_idle().
#pragma once

#include <cstddef>
#include <functional>

namespace df::core {

class ThreadPool;

/// Install (or clear, with nullptr) the shared compute pool. Not owned.
/// Callers are responsible for keeping the pool alive while installed.
void set_compute_thread_pool(ThreadPool* pool);
ThreadPool* compute_thread_pool();

/// True when the calling thread must not fan work out to the shared pool:
/// either it is a ThreadPool worker (any pool), or it is inside a
/// SerialComputeScope.
bool in_pool_worker();

/// Marks the current thread serial-compute for its lifetime: numeric kernels
/// treat it like a pool worker and never submit to the shared compute pool.
/// Threads that are peers of the pool rather than owners of it — e.g. a
/// ScoringService worker scoring batches while campaign ranks block on the
/// pool — install this so they cannot contend for wait_idle() (the pool
/// assumes one logical submitter) or deadlock against blocked pool workers.
class SerialComputeScope {
 public:
  SerialComputeScope();
  ~SerialComputeScope();
  SerialComputeScope(const SerialComputeScope&) = delete;
  SerialComputeScope& operator=(const SerialComputeScope&) = delete;

 private:
  bool previous_;
};

/// RAII installer for scoped pool sharing (campaign/bench entry points).
class ComputePoolGuard {
 public:
  explicit ComputePoolGuard(ThreadPool* pool);
  ~ComputePoolGuard();
  ComputePoolGuard(const ComputePoolGuard&) = delete;
  ComputePoolGuard& operator=(const ComputePoolGuard&) = delete;

 private:
  ThreadPool* previous_;
};

/// Run fn(i) for i in [0, n) on the compute pool when one is installed, the
/// caller is not already a pool worker, and the work is large enough
/// (n >= min_parallel); otherwise run serially on the calling thread.
/// Exceptions thrown by fn propagate to the caller in either mode.
void parallel_for_auto(size_t n, size_t min_parallel, const std::function<void(size_t)>& fn);

/// Run fn(i) for i in [0, n) on `pool` when one is given (and has workers),
/// serially on the calling thread otherwise. Unlike parallel_for_auto this
/// takes an explicit pool — used by layers that own their parallelism
/// (training engine lanes, PB2 population members) rather than borrowing
/// the process-wide compute pool. Exceptions propagate in either mode.
void parallel_for_on(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace df::core
