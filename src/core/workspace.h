// Workspace — a per-replica bump arena for inference scratch.
//
// The serving hot path used to heap-allocate a fresh std::vector<float> for
// every layer output, activation temporary and featurizer grid: dozens of
// malloc/free round trips per pose. A Workspace replaces all of that with a
// pointer bump. Memory is carved from a small list of large blocks that are
// never freed between batches; reset() rewinds the bump cursor so the next
// batch reuses the same cache-warm bytes. Blocks never move once allocated,
// so every pointer handed out stays valid until the owning region is reset
// or restored past.
//
// Tensors participate through an ambient, thread-local binding: while a
// Workspace::Bind or Workspace::Scope is active on a thread, every Tensor
// that thread creates borrows its storage from the arena instead of owning a
// heap buffer (core/tensor.h). That makes whole eval forwards
// allocation-free without threading a workspace argument through every layer
// signature. Borrowed tensors must not outlive the region they were carved
// from — the serving layer guarantees this by scoping one workspace per
// replica per batch (serve/scorer.h).
//
// A Workspace is single-threaded state: one thread bumps it at a time. A
// replica that fans featurization out over lanes gives each lane its own
// arena. Pool workers spawned by leaf kernels (gemm, conv, voxel splat)
// never create Tensors, so they are unaffected by the caller's binding,
// which is thread-local by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace df::core {

class Workspace {
 public:
  /// `initial_floats` sizes the first block lazily (allocated on first use).
  explicit Workspace(size_t initial_floats = size_t{1} << 16);
  ~Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocate `n` floats (64-byte aligned). Grows by appending a new
  /// block when the current blocks are exhausted — existing pointers are
  /// never invalidated. Growth is a heap allocation and counts toward
  /// alloc_count(); a warmed workspace in steady state never grows.
  float* alloc(int64_t n);

  /// Rewind to empty, keeping every block for reuse. Previously returned
  /// pointers become dead: their bytes will be handed out again.
  void reset();

  /// Pre-grow to at least `floats` of total capacity — one block, sized to
  /// the full budget, so a replica restored from a compiled artifact (whose
  /// high-water marks were measured ahead of time) never allocates again in
  /// steady state. A single block also avoids the boundary waste a borrow
  /// straddling two blocks would leave behind. No-op when already large
  /// enough; counts as one alloc_count() tick when it grows.
  void reserve(size_t floats);

  /// Total floats across all blocks / floats currently handed out.
  size_t capacity() const;
  size_t in_use() const;

  /// Position marker for scoped reuse of the tail of the arena.
  struct Checkpoint {
    size_t block = 0;
    size_t used = 0;
  };
  Checkpoint checkpoint() const { return {cur_, blocks_.empty() ? 0 : blocks_[cur_].used}; }
  /// Rewind to a checkpoint taken earlier on this workspace. Allocations
  /// made after the checkpoint are released (blocks are kept).
  void restore(Checkpoint c);

  /// The workspace currently bound to this thread, or nullptr. Tensor
  /// construction consults this to decide heap vs arena storage.
  static Workspace* current();

  /// RAII: bind `ws` as the thread's current workspace without touching the
  /// bump cursor. Used when the carved tensors must outlive the binding
  /// (e.g. featurizer lanes whose samples feed a later forward pass); the
  /// owner rewinds explicitly with reset() at the top of the next batch.
  class Bind {
   public:
    explicit Bind(Workspace& ws);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    Workspace* prev_;
  };

  /// RAII: clear the thread's binding so Tensors created inside the region
  /// own heap storage again. Used when a long-lived object (e.g. a
  /// cross-request pocket-cache entry, serve/pocket_cache.h) must be built
  /// from code that may run under an ambient arena binding — arena-borrowed
  /// bytes die at the next reset(), heap-owned ones do not.
  class Unbind {
   public:
    Unbind();
    ~Unbind();
    Unbind(const Unbind&) = delete;
    Unbind& operator=(const Unbind&) = delete;

   private:
    Workspace* prev_;
  };

  /// RAII: bind plus checkpoint/restore — the common "scratch region for
  /// this call" shape. Everything allocated inside the scope is released
  /// when it closes.
  class Scope {
   public:
    explicit Scope(Workspace& ws);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    Checkpoint cp_;
    Workspace* prev_;
  };

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t cur_ = 0;  // index of the block being bumped
  size_t next_block_floats_;
};

}  // namespace df::core
