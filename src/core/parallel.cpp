#include "core/parallel.h"

#include <atomic>

#include "core/threadpool.h"

namespace df::core {

namespace {
std::atomic<ThreadPool*> g_compute_pool{nullptr};
thread_local bool t_serial_compute = false;
}  // namespace

void set_compute_thread_pool(ThreadPool* pool) { g_compute_pool.store(pool); }

ThreadPool* compute_thread_pool() { return g_compute_pool.load(); }

bool in_pool_worker() { return ThreadPool::this_thread_is_worker() || t_serial_compute; }

SerialComputeScope::SerialComputeScope() : previous_(t_serial_compute) {
  t_serial_compute = true;
}

SerialComputeScope::~SerialComputeScope() { t_serial_compute = previous_; }

ComputePoolGuard::ComputePoolGuard(ThreadPool* pool) : previous_(g_compute_pool.exchange(pool)) {}

ComputePoolGuard::~ComputePoolGuard() { g_compute_pool.store(previous_); }

void parallel_for_on(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  // Same reentrancy guard as parallel_for_auto: a caller that is itself a
  // pool worker must not submit-and-join (every worker blocking in
  // wait_idle() while the jobs sit behind them deadlocks permanently) —
  // e.g. a PB2 member that fans out training lanes on the population pool.
  if (pool != nullptr && pool->size() > 0 && n > 1 && !in_pool_worker()) {
    parallel_for(*pool, n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) fn(i);
}

void parallel_for_auto(size_t n, size_t min_parallel, const std::function<void(size_t)>& fn) {
  ThreadPool* pool = g_compute_pool.load();
  if (pool != nullptr && pool->size() > 1 && n >= min_parallel && !in_pool_worker()) {
    parallel_for(*pool, n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) fn(i);
}

}  // namespace df::core
