// 16-lane vectorized transcendentals for the inference hot path.
//
// Profiling the serving batch showed the SG-CNN forward is not GEMM-bound
// but *exp-bound*: every GRU step evaluates sigmoid/tanh over the whole
// packed node matrix (~80k libm calls per step), and the voxelizer's
// Gaussian splats are another ~300k exps per batch. This header provides a
// polynomial expf (Cephes-style range reduction, the same scheme PyTorch's
// CPU fallback and avx_mathfun use, ~2 ulp) over the GNU vector extension,
// plus the sigmoid/tanh/SELU forms built on it.
//
// Numerics contract: vexp16 is elementwise-pure — a lane's result depends
// only on that lane's input — so any two code paths that use these helpers
// agree bitwise regardless of how they chunk the data. All model-side
// activation sites (GEMM epilogues, the standalone activation layers, the
// voxel splatter) must use THESE helpers, never raw std::exp, or training-
// vs-eval and fused-vs-unfused comparisons drift by an ulp. Non-GNU builds
// fall back to a scalar evaluation of the same polynomial.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace df::core::simd {

#if defined(__GNUC__) || defined(__clang__)
#define DF_SIMD_MATH_VECTOR 1
typedef float vf16 __attribute__((vector_size(64), aligned(4)));
typedef int32_t vi16 __attribute__((vector_size(64), aligned(4)));

inline vf16 splat(float v) { return vf16{} + v; }

inline vf16 iota16() {
  return vf16{0.0f, 1.0f, 2.0f,  3.0f,  4.0f,  5.0f,  6.0f,  7.0f,
              8.0f, 9.0f, 10.0f, 11.0f, 12.0f, 13.0f, 14.0f, 15.0f};
}

inline vi16 iota16i() { return vi16{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}; }

/// Cephes single-precision exp: clamp, n = round(x/ln2), polynomial on the
/// reduced argument, scale by 2^n through the exponent bits.
inline vf16 vexp16(vf16 x) {
  const vf16 hi = splat(88.3762626647949f), lo = splat(-88.3762626647949f);
  x = x > hi ? hi : x;
  x = x < lo ? lo : x;

  vf16 fx = x * splat(1.44269504088896341f) + splat(0.5f);
  // floor(fx): truncate toward zero, then fix the negative-fraction case.
  vf16 ft = __builtin_convertvector(__builtin_convertvector(fx, vi16), vf16);
  fx = ft > fx ? ft - splat(1.0f) : ft;

  x -= fx * splat(0.693359375f);
  x -= fx * splat(-2.12194440e-4f);

  const vf16 z = x * x;
  vf16 y = splat(1.9875691500e-4f);
  y = y * x + splat(1.3981999507e-3f);
  y = y * x + splat(8.3334519073e-3f);
  y = y * x + splat(4.1665795894e-2f);
  y = y * x + splat(1.6666665459e-1f);
  y = y * x + splat(5.0000001201e-1f);
  y = y * z + x + splat(1.0f);

  const vi16 pow2n = (__builtin_convertvector(fx, vi16) + 127) << 23;
  vf16 scale;
  std::memcpy(&scale, &pow2n, sizeof(scale));
  return y * scale;
}

inline vf16 vsigmoid16(vf16 x) { return splat(1.0f) / (splat(1.0f) + vexp16(-x)); }

/// tanh(x) = (1 - e^-2x) / (1 + e^-2x); vexp16's clamp keeps both ends
/// finite, so the ratio saturates cleanly to ±1.
inline vf16 vtanh16(vf16 x) {
  const vf16 t = vexp16(splat(-2.0f) * x);
  return (splat(1.0f) - t) / (splat(1.0f) + t);
}

inline vf16 vselu16(vf16 x, float scale, float alpha) {
  const vf16 neg = splat(scale * alpha) * (vexp16(x) - splat(1.0f));
  return x > splat(0.0f) ? splat(scale) * x : neg;
}
#endif

// Scalar versions of the identical polynomial — the single source of truth
// for lanes processed outside a full 16-wide chunk and for non-GNU builds.
inline float exp_scalar(float x) {
  x = std::min(x, 88.3762626647949f);
  x = std::max(x, -88.3762626647949f);
  float fx = x * 1.44269504088896341f + 0.5f;
  float ft = static_cast<float>(static_cast<int32_t>(fx));
  fx = ft > fx ? ft - 1.0f : ft;
  x -= fx * 0.693359375f;
  x -= fx * -2.12194440e-4f;
  const float z = x * x;
  float y = 1.9875691500e-4f;
  y = y * x + 1.3981999507e-3f;
  y = y * x + 8.3334519073e-3f;
  y = y * x + 4.1665795894e-2f;
  y = y * x + 1.6666665459e-1f;
  y = y * x + 5.0000001201e-1f;
  y = y * z + x + 1.0f;
  const int32_t pow2n = (static_cast<int32_t>(fx) + 127) << 23;
  float scale;
  std::memcpy(&scale, &pow2n, sizeof(scale));
  return y * scale;
}

inline float sigmoid_scalar(float x) { return 1.0f / (1.0f + exp_scalar(-x)); }

inline float tanh_scalar(float x) {
  const float t = exp_scalar(-2.0f * x);
  return (1.0f - t) / (1.0f + t);
}

inline float selu_scalar(float x, float scale, float alpha) {
  return x > 0.0f ? scale * x : scale * alpha * (exp_scalar(x) - 1.0f);
}

}  // namespace df::core::simd
