// CSV table writer for benchmark/experiment output (results referenced by
// EXPERIMENTS.md are emitted both to stdout and as CSVs).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace df::io {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void row(const std::vector<std::string>& cells);
  /// Convenience row of doubles, formatted %.6g.
  void row_values(const std::vector<double>& values);

 private:
  std::ofstream f_;
  size_t columns_;
};

/// Escape a cell per RFC 4180 (quotes doubled, wrap when needed).
std::string csv_escape(const std::string& cell);

}  // namespace df::io
