// Leveled stderr logger. The screening harness logs per-job phase events the
// way the paper's pipeline kept per-job logs "smaller and easier to parse"
// for fault diagnosis.
#pragma once

#include <string>

namespace df::io {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::Info, m); }
inline void log_warn(const std::string& m) { log(LogLevel::Warn, m); }
inline void log_error(const std::string& m) { log(LogLevel::Error, m); }

}  // namespace df::io
