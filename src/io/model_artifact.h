// Compiled-model artifact container — the mmap-friendly on-disk format the
// ahead-of-time model compiler (src/compile/) serializes CompiledPlans into.
//
// Layout (all integers little-endian, as written by the host):
//
//   offset 0   : magic "DFCA" (4 bytes)
//   offset 4   : u32 format version (kArtifactVersion)
//   offset 8   : u64 payload_bytes
//   offset 16  : payload —
//                  u32 section_count
//                  section_count directory entries:
//                    u32 name_len | name bytes | u8 dtype (0=f32, 1=i64,
//                                                           2=i8, 3=i32)
//                    u32 rank | i64 dims[rank]
//                    u64 byte_offset (absolute, 64-byte aligned)
//                    u64 byte_len
//                  section blobs at their directory offsets
//   tail       : u32 CRC-32 of the payload bytes
//
// Blobs are 64-byte aligned relative to the file start; mmap returns
// page-aligned images, so a blob's file alignment IS its memory alignment
// and serving replicas point GEMM panel views (core::PrepackedA/B) straight
// into the mapping — no copy, no parse, shared page cache across replicas.
//
// Failures reuse io::H5LiteError so callers discriminate damage kinds the
// same way they do for checkpoints: Format (bad magic / unsupported
// version), Truncated (directory or blob past EOF), Crc (payload bytes do
// not match the stored checksum). All three reject the whole file before
// any section is handed out — there is no partial load.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/h5lite.h"

namespace df::io {

/// Bump on any incompatible layout change. A reader only accepts its own
/// version: compiled artifacts are caches derived from checkpoints, so the
/// recovery path for a mismatch is recompile, never in-place migration.
/// v2: int8/int32 section dtypes for quantized compiled plans (src/quant/).
constexpr uint32_t kArtifactVersion = 2;

struct ArtifactSection {
  uint8_t dtype = 0;  // 0 = float32, 1 = int64, 2 = int8 (raw bytes), 3 = int32
  std::vector<int64_t> dims;
  uint64_t byte_offset = 0;  // absolute file offset, 64-byte aligned
  uint64_t byte_len = 0;

  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : dims) n *= d;
    return n;
  }
};

/// Collects named sections and writes them as one artifact file, durably
/// (temp + fsync + rename + parent-dir fsync, like h5lite::save_atomic).
/// Data is copied at add() time so callers may hand in transient buffers.
class ArtifactWriter {
 public:
  void add_floats(const std::string& name, std::vector<int64_t> dims, const float* data);
  void add_ints(const std::string& name, std::vector<int64_t> dims, const int64_t* data);
  void add_scalar(const std::string& name, int64_t v);
  /// Quantized-plan sections: packed int8 panel/row images and int32
  /// epilogue compensation vectors.
  void add_int8s(const std::string& name, std::vector<int64_t> dims, const int8_t* data);
  void add_int32s(const std::string& name, std::vector<int64_t> dims, const int32_t* data);

  void save(const std::string& path) const;

 private:
  struct Pending {
    uint8_t dtype;
    std::vector<int64_t> dims;
    std::vector<char> bytes;
  };
  std::map<std::string, Pending> sections_;
};

/// Read-only view of an artifact file. Prefers mmap (shared, read-only) and
/// falls back to a heap image when mapping is unavailable; either way the
/// full directory is validated and the payload CRC checked before open()
/// returns. Section pointers stay valid for the reader's lifetime — holders
/// of prepacked views keep the reader alive via shared_ptr.
class ArtifactReader {
 public:
  static std::shared_ptr<ArtifactReader> open(const std::string& path);
  ~ArtifactReader();
  ArtifactReader(const ArtifactReader&) = delete;
  ArtifactReader& operator=(const ArtifactReader&) = delete;

  bool has(const std::string& name) const { return sections_.count(name) > 0; }
  const ArtifactSection& section(const std::string& name) const;

  /// Typed blob access; throws H5LiteError{Format} on a dtype mismatch.
  const float* floats(const std::string& name) const;
  const int64_t* ints(const std::string& name) const;
  const int8_t* int8s(const std::string& name) const;
  const int32_t* int32s(const std::string& name) const;
  int64_t scalar(const std::string& name) const;

  const std::map<std::string, ArtifactSection>& sections() const { return sections_; }
  const std::string& path() const { return path_; }

 private:
  ArtifactReader() = default;

  std::string path_;
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> owned_;  // fallback image when not mmap'd
  std::map<std::string, ArtifactSection> sections_;
};

}  // namespace df::io
