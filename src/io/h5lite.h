// Minimal self-describing binary container standing in for the HDF5 output
// of the paper's screening jobs (§4.2). A file holds named datasets of
// float32 or int64 arrays with explicit shapes; the layout mirrors what
// ConveyorLC's CDT3Docking emits (identifiers + scores per pose) so
// downstream tooling can consume Fusion predictions and docking output
// interchangeably.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace df::io {

struct Dataset {
  std::vector<int64_t> shape;
  std::variant<std::vector<float>, std::vector<int64_t>> data;

  bool is_float() const { return std::holds_alternative<std::vector<float>>(data); }
  const std::vector<float>& floats() const { return std::get<std::vector<float>>(data); }
  const std::vector<int64_t>& ints() const { return std::get<std::vector<int64_t>>(data); }
  int64_t numel() const;
};

class H5LiteFile {
 public:
  void put(const std::string& name, Dataset ds);
  void put_floats(const std::string& name, std::vector<int64_t> shape, std::vector<float> values);
  void put_ints(const std::string& name, std::vector<int64_t> shape, std::vector<int64_t> values);

  bool has(const std::string& name) const { return datasets_.count(name) > 0; }
  const Dataset& get(const std::string& name) const;
  const std::map<std::string, Dataset>& datasets() const { return datasets_; }

  /// Serialize to disk; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static H5LiteFile load(const std::string& path);

 private:
  std::map<std::string, Dataset> datasets_;
};

}  // namespace df::io
