// Minimal self-describing binary container standing in for the HDF5 output
// of the paper's screening jobs (§4.2). A file holds named datasets of
// float32 or int64 arrays with explicit shapes; the layout mirrors what
// ConveyorLC's CDT3Docking emits (identifiers + scores per pose) so
// downstream tooling can consume Fusion predictions and docking output
// interchangeably. Version 2 appends a whole-file CRC32 so torn or
// bit-rotted shards are detected at load time instead of silently feeding
// garbage into downstream aggregation.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace df::io {

/// IEEE CRC-32 (zlib-compatible). Pass the previous return value as `crc`
/// to checksum data incrementally; start from 0.
uint32_t crc32(const void* data, size_t len, uint32_t crc = 0);

/// Typed I/O failure so callers (e.g. the sharded-result reader) can report
/// *what kind* of damage a file has rather than string-matching messages.
class H5LiteError : public std::runtime_error {
 public:
  enum class Kind {
    Open,       // file missing / unreadable / unwritable
    Format,     // bad magic or unsupported version
    Truncated,  // file ends before the datasets it promises
    Crc,        // payload bytes do not match the stored checksum
  };
  H5LiteError(Kind kind, const std::string& msg) : std::runtime_error(msg), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct Dataset {
  std::vector<int64_t> shape;
  std::variant<std::vector<float>, std::vector<int64_t>> data;

  bool is_float() const { return std::holds_alternative<std::vector<float>>(data); }
  const std::vector<float>& floats() const { return std::get<std::vector<float>>(data); }
  const std::vector<int64_t>& ints() const { return std::get<std::vector<int64_t>>(data); }
  int64_t numel() const;
};

class H5LiteFile {
 public:
  void put(const std::string& name, Dataset ds);
  void put_floats(const std::string& name, std::vector<int64_t> shape, std::vector<float> values);
  void put_ints(const std::string& name, std::vector<int64_t> shape, std::vector<int64_t> values);

  bool has(const std::string& name) const { return datasets_.count(name) > 0; }
  const Dataset& get(const std::string& name) const;
  const std::map<std::string, Dataset>& datasets() const { return datasets_; }

  /// Serialize to disk; throws H5LiteError on I/O failure.
  void save(const std::string& path) const;
  /// Write to `path + ".tmp"` then rename, so a crash mid-write never
  /// leaves a half-written file at `path` (checkpoints rely on this).
  void save_atomic(const std::string& path) const;
  static H5LiteFile load(const std::string& path);

 private:
  std::map<std::string, Dataset> datasets_;
};

}  // namespace df::io
