#include "io/csv.h"

#include <cstdio>
#include <stdexcept>

namespace df::io {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : f_(path), columns_(header.size()) {
  if (!f_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: column count mismatch");
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) f_ << ',';
    f_ << csv_escape(cells[i]);
  }
  f_ << '\n';
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[40];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  row(cells);
}

}  // namespace df::io
