#include "io/model_artifact.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace df::io {

namespace {

constexpr char kMagic[4] = {'D', 'F', 'C', 'A'};
constexpr uint64_t kHeaderBytes = 16;  // magic + version + payload_bytes
constexpr uint64_t kBlobAlign = 64;

uint64_t align_up(uint64_t v, uint64_t to) { return (v + to - 1) / to * to; }

template <typename T>
void append_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void fsync_fd_path(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void ArtifactWriter::add_floats(const std::string& name, std::vector<int64_t> dims,
                                const float* data) {
  Pending p;
  p.dtype = 0;
  p.dims = std::move(dims);
  int64_t n = 1;
  for (int64_t d : p.dims) n *= d;
  p.bytes.resize(static_cast<size_t>(n) * sizeof(float));
  std::memcpy(p.bytes.data(), data, p.bytes.size());
  sections_[name] = std::move(p);
}

void ArtifactWriter::add_ints(const std::string& name, std::vector<int64_t> dims,
                              const int64_t* data) {
  Pending p;
  p.dtype = 1;
  p.dims = std::move(dims);
  int64_t n = 1;
  for (int64_t d : p.dims) n *= d;
  p.bytes.resize(static_cast<size_t>(n) * sizeof(int64_t));
  std::memcpy(p.bytes.data(), data, p.bytes.size());
  sections_[name] = std::move(p);
}

void ArtifactWriter::add_scalar(const std::string& name, int64_t v) {
  add_ints(name, {1}, &v);
}

void ArtifactWriter::add_int8s(const std::string& name, std::vector<int64_t> dims,
                               const int8_t* data) {
  Pending p;
  p.dtype = 2;
  p.dims = std::move(dims);
  int64_t n = 1;
  for (int64_t d : p.dims) n *= d;
  p.bytes.resize(static_cast<size_t>(n));
  std::memcpy(p.bytes.data(), data, p.bytes.size());
  sections_[name] = std::move(p);
}

void ArtifactWriter::add_int32s(const std::string& name, std::vector<int64_t> dims,
                                const int32_t* data) {
  Pending p;
  p.dtype = 3;
  p.dims = std::move(dims);
  int64_t n = 1;
  for (int64_t d : p.dims) n *= d;
  p.bytes.resize(static_cast<size_t>(n) * sizeof(int32_t));
  std::memcpy(p.bytes.data(), data, p.bytes.size());
  sections_[name] = std::move(p);
}

void ArtifactWriter::save(const std::string& path) const {
  // Two passes: first size the directory (its length shifts every blob
  // offset), then emit directory + aligned blobs.
  uint64_t dir_bytes = sizeof(uint32_t);
  for (const auto& [name, p] : sections_) {
    dir_bytes += sizeof(uint32_t) + name.size() + sizeof(uint8_t) + sizeof(uint32_t) +
                 p.dims.size() * sizeof(int64_t) + 2 * sizeof(uint64_t);
  }

  // Assign absolute blob offsets in directory (= map) order.
  std::map<std::string, uint64_t> offsets;
  uint64_t cursor = align_up(kHeaderBytes + dir_bytes, kBlobAlign);
  for (const auto& [name, p] : sections_) {
    offsets[name] = cursor;
    cursor = align_up(cursor + p.bytes.size(), kBlobAlign);
  }

  std::string payload;
  payload.reserve(static_cast<size_t>(cursor - kHeaderBytes));
  append_pod(payload, static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, p] : sections_) {
    append_pod(payload, static_cast<uint32_t>(name.size()));
    payload.append(name);
    append_pod(payload, p.dtype);
    append_pod(payload, static_cast<uint32_t>(p.dims.size()));
    for (int64_t d : p.dims) append_pod(payload, d);
    append_pod(payload, offsets[name]);
    append_pod(payload, static_cast<uint64_t>(p.bytes.size()));
  }
  for (const auto& [name, p] : sections_) {
    payload.resize(static_cast<size_t>(offsets[name] - kHeaderBytes), '\0');
    payload.append(p.bytes.data(), p.bytes.size());
  }
  // Trailing pad so the final blob's slack is part of the checksummed
  // payload and the payload length is what the offsets promise.
  payload.resize(static_cast<size_t>(cursor - kHeaderBytes), '\0');

  const uint32_t crc = crc32(payload.data(), payload.size());
  const uint64_t payload_bytes = payload.size();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f)
      throw H5LiteError(H5LiteError::Kind::Open, "artifact: cannot open for write: " + tmp);
    f.write(kMagic, 4);
    f.write(reinterpret_cast<const char*>(&kArtifactVersion), sizeof(kArtifactVersion));
    f.write(reinterpret_cast<const char*>(&payload_bytes), sizeof(payload_bytes));
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    f.close();
    if (f.fail())
      throw H5LiteError(H5LiteError::Kind::Open, "artifact: write failed: " + tmp);
  }
  // Same durability contract as h5lite::save_atomic: file bytes synced
  // before the rename publishes them, parent directory synced after.
  fsync_fd_path(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw H5LiteError(H5LiteError::Kind::Open,
                      "artifact: atomic rename failed: " + path + " (" + ec.message() + ")");
  }
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  fsync_fd_path(parent.empty() ? "." : parent.string());
}

std::shared_ptr<ArtifactReader> ArtifactReader::open(const std::string& path) {
  std::shared_ptr<ArtifactReader> r(new ArtifactReader());
  r->path_ = path;

#if defined(__unix__) || defined(__APPLE__)
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
      throw H5LiteError(H5LiteError::Kind::Open, "artifact: cannot open: " + path);
    const off_t end = ::lseek(fd, 0, SEEK_END);
    if (end > 0) {
      void* map = ::mmap(nullptr, static_cast<size_t>(end), PROT_READ, MAP_SHARED, fd, 0);
      if (map != MAP_FAILED) {
        r->data_ = static_cast<const char*>(map);
        r->size_ = static_cast<size_t>(end);
        r->mapped_ = true;
      }
    }
    ::close(fd);
  }
#endif
  if (!r->mapped_) {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) throw H5LiteError(H5LiteError::Kind::Open, "artifact: cannot open: " + path);
    const std::streamsize sz = f.tellg();
    f.seekg(0);
    r->owned_.resize(static_cast<size_t>(sz));
    f.read(r->owned_.data(), sz);
    if (!f) throw H5LiteError(H5LiteError::Kind::Open, "artifact: read failed: " + path);
    r->data_ = r->owned_.data();
    r->size_ = r->owned_.size();
  }

  const char* d = r->data_;
  const size_t size = r->size_;
  if (size < kHeaderBytes || std::memcmp(d, kMagic, 4) != 0)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: bad magic in " + path);
  uint32_t version;
  std::memcpy(&version, d + 4, sizeof(version));
  if (version != kArtifactVersion) {
    throw H5LiteError(H5LiteError::Kind::Format,
                      "artifact: unsupported version " + std::to_string(version) + " in " + path +
                          " (reader supports " + std::to_string(kArtifactVersion) +
                          "; recompile the artifact)");
  }
  uint64_t payload_bytes;
  std::memcpy(&payload_bytes, d + 8, sizeof(payload_bytes));
  if (payload_bytes > size - kHeaderBytes ||
      size - kHeaderBytes - payload_bytes < sizeof(uint32_t)) {
    throw H5LiteError(H5LiteError::Kind::Truncated, "artifact: truncated file: " + path);
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, d + kHeaderBytes + payload_bytes, sizeof(stored_crc));
  if (stored_crc != crc32(d + kHeaderBytes, static_cast<size_t>(payload_bytes)))
    throw H5LiteError(H5LiteError::Kind::Crc, "artifact: CRC mismatch in " + path);

  // Directory parse over the validated payload. Every blob must land fully
  // inside the payload; any overrun rejects the whole file.
  size_t pos = kHeaderBytes;
  const size_t payload_end = static_cast<size_t>(kHeaderBytes + payload_bytes);
  auto need = [&](size_t n) {
    if (pos + n > payload_end)
      throw H5LiteError(H5LiteError::Kind::Truncated, "artifact: truncated directory: " + path);
  };
  auto read_u32 = [&]() {
    need(sizeof(uint32_t));
    uint32_t v;
    std::memcpy(&v, d + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  auto read_u64 = [&]() {
    need(sizeof(uint64_t));
    uint64_t v;
    std::memcpy(&v, d + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  const uint32_t count = read_u32();
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t name_len = read_u32();
    need(name_len);
    std::string name(d + pos, name_len);
    pos += name_len;
    need(1);
    ArtifactSection s;
    s.dtype = static_cast<uint8_t>(d[pos]);
    ++pos;
    if (s.dtype > 3)
      throw H5LiteError(H5LiteError::Kind::Format, "artifact: bad dtype in " + path);
    const uint32_t rank = read_u32();
    uint64_t numel = 1;
    for (uint32_t k = 0; k < rank; ++k) {
      need(sizeof(int64_t));
      int64_t dim;
      std::memcpy(&dim, d + pos, sizeof(dim));
      pos += sizeof(dim);
      if (dim < 0)
        throw H5LiteError(H5LiteError::Kind::Format, "artifact: negative dim in " + path);
      s.dims.push_back(dim);
      if (dim != 0 && numel > UINT64_MAX / static_cast<uint64_t>(dim))
        throw H5LiteError(H5LiteError::Kind::Truncated, "artifact: blob larger than file: " + path);
      numel *= static_cast<uint64_t>(dim);
    }
    s.byte_offset = read_u64();
    s.byte_len = read_u64();
    const uint64_t elem = s.dtype == 0   ? sizeof(float)
                          : s.dtype == 1 ? sizeof(int64_t)
                          : s.dtype == 2 ? sizeof(int8_t)
                                         : sizeof(int32_t);
    if (s.byte_len != numel * elem || s.byte_offset % kBlobAlign != 0 ||
        s.byte_offset < kHeaderBytes || s.byte_offset > payload_end ||
        s.byte_len > payload_end - s.byte_offset) {
      throw H5LiteError(H5LiteError::Kind::Truncated,
                        "artifact: blob out of bounds: " + name + " in " + path);
    }
    r->sections_[std::move(name)] = std::move(s);
  }
  return r;
}

ArtifactReader::~ArtifactReader() {
#if defined(__unix__) || defined(__APPLE__)
  if (mapped_ && data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
#endif
}

const ArtifactSection& ArtifactReader::section(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end())
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: no section " + name + " in " + path_);
  return it->second;
}

const float* ArtifactReader::floats(const std::string& name) const {
  const ArtifactSection& s = section(name);
  if (s.dtype != 0)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: " + name + " is not float32");
  return reinterpret_cast<const float*>(data_ + s.byte_offset);
}

const int64_t* ArtifactReader::ints(const std::string& name) const {
  const ArtifactSection& s = section(name);
  if (s.dtype != 1)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: " + name + " is not int64");
  return reinterpret_cast<const int64_t*>(data_ + s.byte_offset);
}

const int8_t* ArtifactReader::int8s(const std::string& name) const {
  const ArtifactSection& s = section(name);
  if (s.dtype != 2)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: " + name + " is not int8");
  return reinterpret_cast<const int8_t*>(data_ + s.byte_offset);
}

const int32_t* ArtifactReader::int32s(const std::string& name) const {
  const ArtifactSection& s = section(name);
  if (s.dtype != 3)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: " + name + " is not int32");
  return reinterpret_cast<const int32_t*>(data_ + s.byte_offset);
}

int64_t ArtifactReader::scalar(const std::string& name) const {
  const ArtifactSection& s = section(name);
  if (s.dtype != 1 || s.numel() != 1)
    throw H5LiteError(H5LiteError::Kind::Format, "artifact: " + name + " is not a scalar");
  return *reinterpret_cast<const int64_t*>(data_ + s.byte_offset);
}

}  // namespace df::io
