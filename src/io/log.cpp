#include "io/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace df::io {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard lk(g_mu);
  std::fprintf(stderr, "[%13.3f] %-5s %s\n", secs, level_name(level), message.c_str());
}

}  // namespace df::io
