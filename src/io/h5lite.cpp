#include "io/h5lite.h"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace df::io {

namespace {
constexpr char kMagic[4] = {'H', '5', 'L', 'T'};
constexpr uint32_t kVersion = 2;  // v2 = v1 + trailing whole-file CRC32
constexpr size_t kHeaderBytes = 8;  // magic + version; excluded from the CRC

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <typename T>
void append_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

// Flush `path` (a file or a directory) to stable storage. An atomic-rename
// commit is only durable once BOTH the renamed file's bytes and the parent
// directory entry are synced — rename alone survives a crash of the process
// but not of the machine. Best-effort no-op on platforms without fsync.
void fsync_path(const std::string& path, bool required) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (required)
      throw H5LiteError(H5LiteError::Kind::Open, "h5lite: cannot open for fsync: " + path);
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  // Some filesystems refuse fsync on directories (EINVAL); that is the
  // platform's durability ceiling, not a failed save.
  if (rc != 0 && required)
    throw H5LiteError(H5LiteError::Kind::Open, "h5lite: fsync failed: " + path);
#else
  (void)path;
  (void)required;
#endif
}

/// Bounds-checked cursor over an in-memory file image.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;
  std::string path;

  template <typename T>
  T pod() {
    T v{};
    bytes(&v, sizeof(T));
    return v;
  }
  void bytes(void* dst, size_t n) {
    if (pos + n > size) {
      throw H5LiteError(H5LiteError::Kind::Truncated, "h5lite: truncated file: " + path);
    }
    std::memcpy(dst, data + pos, n);
    pos += n;
  }
};
}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t crc) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

int64_t Dataset::numel() const {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

void H5LiteFile::put(const std::string& name, Dataset ds) {
  const int64_t expect = ds.numel();
  const int64_t actual = ds.is_float() ? static_cast<int64_t>(ds.floats().size())
                                       : static_cast<int64_t>(ds.ints().size());
  if (expect != actual) throw std::invalid_argument("h5lite: shape/data mismatch for " + name);
  datasets_[name] = std::move(ds);
}

void H5LiteFile::put_floats(const std::string& name, std::vector<int64_t> shape,
                            std::vector<float> values) {
  put(name, Dataset{std::move(shape), std::move(values)});
}

void H5LiteFile::put_ints(const std::string& name, std::vector<int64_t> shape,
                          std::vector<int64_t> values) {
  put(name, Dataset{std::move(shape), std::move(values)});
}

const Dataset& H5LiteFile::get(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) throw std::out_of_range("h5lite: no dataset " + name);
  return it->second;
}

void H5LiteFile::save(const std::string& path) const {
  // Serialize the dataset section to memory first so the file-level CRC can
  // be computed over exactly the bytes that land on disk.
  std::string body;
  append_pod(body, static_cast<uint32_t>(datasets_.size()));
  for (const auto& [name, ds] : datasets_) {
    append_pod(body, static_cast<uint32_t>(name.size()));
    body.append(name);
    append_pod(body, static_cast<uint8_t>(ds.is_float() ? 0 : 1));
    append_pod(body, static_cast<uint32_t>(ds.shape.size()));
    for (int64_t d : ds.shape) append_pod(body, d);
    if (ds.is_float()) {
      body.append(reinterpret_cast<const char*>(ds.floats().data()),
                  ds.floats().size() * sizeof(float));
    } else {
      body.append(reinterpret_cast<const char*>(ds.ints().data()),
                  ds.ints().size() * sizeof(int64_t));
    }
  }
  const uint32_t crc = crc32(body.data(), body.size());

  std::ofstream f(path, std::ios::binary);
  if (!f) throw H5LiteError(H5LiteError::Kind::Open, "h5lite: cannot open for write: " + path);
  f.write(kMagic, 4);
  f.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  // Flush before checking: a late error (e.g. ENOSPC on the buffered tail)
  // must fail the save, or save_atomic would rename a torn file into place.
  f.close();
  if (f.fail()) throw H5LiteError(H5LiteError::Kind::Open, "h5lite: write failed: " + path);
}

void H5LiteFile::save_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  save(tmp);
  // Sync the temp file's bytes BEFORE the rename: renaming first could
  // publish a directory entry pointing at data still in the page cache,
  // which a power loss then tears — the exact failure atomicity promises to
  // prevent.
  fsync_path(tmp, /*required=*/true);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw H5LiteError(H5LiteError::Kind::Open,
                      "h5lite: atomic rename failed: " + path + " (" + ec.message() + ")");
  }
  // And sync the parent directory so the rename itself is durable.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  fsync_path(parent.empty() ? "." : parent.string(), /*required=*/false);
}

H5LiteFile H5LiteFile::load(const std::string& path) {
  // A `path + ".tmp"` left behind by a save killed before its rename is
  // garbage by definition (the committed file, if any, is at `path`).
  // Sweep it best-effort so retried saves never trip over stale temps.
  {
    std::error_code ec;
    std::filesystem::remove(path + ".tmp", ec);
  }
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw H5LiteError(H5LiteError::Kind::Open, "h5lite: cannot open for read: " + path);
  const std::streamsize file_size = f.tellg();
  f.seekg(0);
  std::string image(static_cast<size_t>(file_size), '\0');
  f.read(image.data(), file_size);
  if (!f) throw H5LiteError(H5LiteError::Kind::Open, "h5lite: read failed: " + path);

  if (image.size() < kHeaderBytes || std::memcmp(image.data(), kMagic, 4) != 0) {
    throw H5LiteError(H5LiteError::Kind::Format, "h5lite: bad magic in " + path);
  }
  uint32_t version;
  std::memcpy(&version, image.data() + 4, sizeof(version));
  if (version < 1 || version > kVersion) {
    throw H5LiteError(H5LiteError::Kind::Format, "h5lite: unsupported version in " + path);
  }

  size_t body_end = image.size();
  bool crc_ok = true;
  if (version >= 2) {
    if (image.size() < kHeaderBytes + sizeof(uint32_t)) {
      throw H5LiteError(H5LiteError::Kind::Truncated, "h5lite: truncated file: " + path);
    }
    body_end -= sizeof(uint32_t);
    uint32_t stored;
    std::memcpy(&stored, image.data() + body_end, sizeof(stored));
    crc_ok = stored == crc32(image.data() + kHeaderBytes, body_end - kHeaderBytes);
  }

  Reader r{image.data(), body_end, kHeaderBytes, path};
  const uint32_t count = r.pod<uint32_t>();
  H5LiteFile out;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t name_len = r.pod<uint32_t>();
    std::string name(name_len, '\0');
    r.bytes(name.data(), name_len);
    const uint8_t dtype = r.pod<uint8_t>();
    const uint32_t rank = r.pod<uint32_t>();
    Dataset ds;
    uint64_t numel = 1;
    for (uint32_t k = 0; k < rank; ++k) {
      const int64_t d = r.pod<int64_t>();
      if (d < 0) {
        throw H5LiteError(H5LiteError::Kind::Format, "h5lite: negative dataset size in " + path);
      }
      ds.shape.push_back(d);
      if (d != 0 && numel > UINT64_MAX / static_cast<uint64_t>(d)) {
        throw H5LiteError(H5LiteError::Kind::Truncated,
                          "h5lite: dataset larger than file: " + path);
      }
      numel *= static_cast<uint64_t>(d);
    }
    // Bound the allocation by the bytes actually left in the file, so a
    // corrupted shape reports as damage instead of a multi-exabyte alloc.
    const size_t elem = dtype == 0 ? sizeof(float) : sizeof(int64_t);
    if (numel > (r.size - r.pos) / elem) {
      throw H5LiteError(H5LiteError::Kind::Truncated, "h5lite: truncated dataset " + name +
                                                          " in " + path);
    }
    if (dtype == 0) {
      std::vector<float> v(static_cast<size_t>(numel));
      r.bytes(v.data(), v.size() * sizeof(float));
      ds.data = std::move(v);
    } else {
      std::vector<int64_t> v(static_cast<size_t>(numel));
      r.bytes(v.data(), v.size() * sizeof(int64_t));
      ds.data = std::move(v);
    }
    out.datasets_[name] = std::move(ds);
  }
  // A truncated tail surfaces from the Reader as Kind::Truncated above; a
  // file that parses cleanly but fails the checksum is genuine bit damage.
  if (!crc_ok) throw H5LiteError(H5LiteError::Kind::Crc, "h5lite: CRC mismatch in " + path);
  return out;
}

}  // namespace df::io
