#include "io/h5lite.h"

#include <fstream>
#include <stdexcept>

namespace df::io {

namespace {
constexpr char kMagic[4] = {'H', '5', 'L', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("h5lite: truncated file");
  return v;
}
}  // namespace

int64_t Dataset::numel() const {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

void H5LiteFile::put(const std::string& name, Dataset ds) {
  const int64_t expect = ds.numel();
  const int64_t actual = ds.is_float() ? static_cast<int64_t>(ds.floats().size())
                                       : static_cast<int64_t>(ds.ints().size());
  if (expect != actual) throw std::invalid_argument("h5lite: shape/data mismatch for " + name);
  datasets_[name] = std::move(ds);
}

void H5LiteFile::put_floats(const std::string& name, std::vector<int64_t> shape,
                            std::vector<float> values) {
  put(name, Dataset{std::move(shape), std::move(values)});
}

void H5LiteFile::put_ints(const std::string& name, std::vector<int64_t> shape,
                          std::vector<int64_t> values) {
  put(name, Dataset{std::move(shape), std::move(values)});
}

const Dataset& H5LiteFile::get(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) throw std::out_of_range("h5lite: no dataset " + name);
  return it->second;
}

void H5LiteFile::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("h5lite: cannot open for write: " + path);
  f.write(kMagic, 4);
  write_pod(f, kVersion);
  write_pod(f, static_cast<uint32_t>(datasets_.size()));
  for (const auto& [name, ds] : datasets_) {
    write_pod(f, static_cast<uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(f, static_cast<uint8_t>(ds.is_float() ? 0 : 1));
    write_pod(f, static_cast<uint32_t>(ds.shape.size()));
    for (int64_t d : ds.shape) write_pod(f, d);
    if (ds.is_float()) {
      f.write(reinterpret_cast<const char*>(ds.floats().data()),
              static_cast<std::streamsize>(ds.floats().size() * sizeof(float)));
    } else {
      f.write(reinterpret_cast<const char*>(ds.ints().data()),
              static_cast<std::streamsize>(ds.ints().size() * sizeof(int64_t)));
    }
  }
  if (!f) throw std::runtime_error("h5lite: write failed: " + path);
}

H5LiteFile H5LiteFile::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("h5lite: cannot open for read: " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("h5lite: bad magic in " + path);
  }
  const uint32_t version = read_pod<uint32_t>(f);
  if (version != kVersion) throw std::runtime_error("h5lite: unsupported version");
  const uint32_t count = read_pod<uint32_t>(f);
  H5LiteFile out;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t name_len = read_pod<uint32_t>(f);
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    const uint8_t dtype = read_pod<uint8_t>(f);
    const uint32_t rank = read_pod<uint32_t>(f);
    Dataset ds;
    int64_t numel = 1;
    for (uint32_t r = 0; r < rank; ++r) {
      ds.shape.push_back(read_pod<int64_t>(f));
      numel *= ds.shape.back();
    }
    if (numel < 0) throw std::runtime_error("h5lite: negative dataset size");
    if (dtype == 0) {
      std::vector<float> v(static_cast<size_t>(numel));
      f.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
      ds.data = std::move(v);
    } else {
      std::vector<int64_t> v(static_cast<size_t>(numel));
      f.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int64_t)));
      ds.data = std::move(v);
    }
    if (!f) throw std::runtime_error("h5lite: truncated dataset " + name);
    out.datasets_[name] = std::move(ds);
  }
  return out;
}

}  // namespace df::io
