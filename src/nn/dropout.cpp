#include "nn/dropout.h"

namespace df::nn {

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || rate_ <= 0.0f) {
    mask_ = Tensor();
    return x;
  }
  const float keep = 1.0f - rate_;
  mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float m = rng_->bernoulli(keep) ? 1.0f / keep : 0.0f;
    mask_[i] = m;
    out[i] = x[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  return grad_out * mask_;
}

}  // namespace df::nn
