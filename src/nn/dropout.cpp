#include "nn/dropout.h"

namespace df::nn {

namespace {
// Per-thread keyed-dropout state. The ordinal advances once per Dropout
// forward inside the active scope, giving every dropout layer in a model a
// distinct stream without the layers having to know their own identity.
thread_local bool t_keyed_active = false;
thread_local uint64_t t_keyed_key = 0;
thread_local uint64_t t_keyed_ordinal = 0;

constexpr uint64_t kLayerStreamTag = 0xD70Fu;
}  // namespace

KeyedDropoutScope::KeyedDropoutScope(uint64_t key)
    : prev_active_(t_keyed_active), prev_key_(t_keyed_key), prev_ordinal_(t_keyed_ordinal) {
  t_keyed_active = true;
  t_keyed_key = key;
  t_keyed_ordinal = 0;
}

KeyedDropoutScope::~KeyedDropoutScope() {
  t_keyed_active = prev_active_;
  t_keyed_key = prev_key_;
  t_keyed_ordinal = prev_ordinal_;
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || rate_ <= 0.0f) {
    mask_ = Tensor();
    // Keep the ordinal advancing even when this layer is a no-op so a
    // model whose HPO config zeroes one rate draws the same streams for
    // the remaining layers as a config that prunes it.
    if (t_keyed_active) ++t_keyed_ordinal;
    return x;
  }
  core::Rng keyed(0);
  core::Rng* rng = &rng_;
  if (t_keyed_active) {
    keyed = core::Rng(core::derive_stream(t_keyed_key, kLayerStreamTag, t_keyed_ordinal++));
    rng = &keyed;
  }
  const float keep = 1.0f - rate_;
  mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float m = rng->bernoulli(keep) ? 1.0f / keep : 0.0f;
    mask_[i] = m;
    out[i] = x[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  return grad_out * mask_;
}

}  // namespace df::nn
