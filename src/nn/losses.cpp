#include "nn/losses.h"

#include <cmath>

namespace df::nn {

float mse_loss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  core::check_same_shape(pred, target, "mse_loss");
  const int64_t n = pred.numel();
  double acc = 0.0;
  if (grad) *grad = Tensor(pred.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    if (grad) (*grad)[i] = 2.0f * d / static_cast<float>(n);
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

float mae_loss(const Tensor& pred, const Tensor& target) {
  core::check_same_shape(pred, target, "mae_loss");
  double acc = 0.0;
  for (int64_t i = 0; i < pred.numel(); ++i) acc += std::abs(pred[i] - target[i]);
  return static_cast<float>(acc / static_cast<double>(pred.numel()));
}

float huber_loss(const Tensor& pred, const Tensor& target, float delta, Tensor* grad) {
  core::check_same_shape(pred, target, "huber_loss");
  const int64_t n = pred.numel();
  double acc = 0.0;
  if (grad) *grad = Tensor(pred.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    const float ad = std::abs(d);
    if (ad <= delta) {
      acc += 0.5 * static_cast<double>(d) * d;
      if (grad) (*grad)[i] = d / static_cast<float>(n);
    } else {
      acc += static_cast<double>(delta) * (ad - 0.5 * delta);
      if (grad) (*grad)[i] = (d > 0 ? delta : -delta) / static_cast<float>(n);
    }
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

}  // namespace df::nn
