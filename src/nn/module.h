// Layer-wise neural-network substrate (replaces PyTorch's nn.Module).
//
// deepfusion uses explicit per-layer forward/backward instead of a taped
// autograd: every Module caches exactly what its backward needs, and
// composite models (Sequential, the fusion heads) route gradients by hand.
// This keeps the memory profile predictable — important when a "GPU rank"
// is a worker thread with a fixed budget, as in the screening harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"

namespace df::nn {

using core::Tensor;

/// A trainable tensor plus its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
  std::string name;

  Parameter() = default;
  Parameter(Tensor v, std::string n) : value(std::move(v)), grad(value.shape()), name(std::move(n)) {}
  int64_t numel() const { return value.numel(); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass. Training-mode layers cache activations for backward.
  virtual Tensor forward(const Tensor& x) = 0;
  /// Given dL/d(output), accumulate parameter grads and return dL/d(input).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append this module's parameters (and children's) to `out`.
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }
  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  virtual void set_training(bool t) { training_ = t; }
  bool training() const { return training_; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero();
  }

  /// Total trainable scalar count — used by the model-size reporting in
  /// DESIGN/EXPERIMENTS and by the screening memory model.
  int64_t num_parameters() {
    int64_t n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }

 protected:
  bool training_ = true;
};

}  // namespace df::nn
