// Ordered container of Modules; forward chains, backward unwinds in reverse.
// The conv stacks and dense heads of both individual models are Sequentials;
// the fusion models compose Sequentials with hand-routed gradient joins.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace df::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> m) {
    layers_.push_back(std::move(m));
    return *this;
  }
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool t) override;

  size_t size() const { return layers_.size(); }
  Module& layer(size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace df::nn
