// Ordered container of Modules; forward chains, backward unwinds in reverse.
// The conv stacks and dense heads of both individual models are Sequentials;
// the fusion models compose Sequentials with hand-routed gradient joins.
#pragma once

#include <memory>
#include <vector>

#include "core/gemm.h"
#include "nn/module.h"

namespace df::nn {

class Dense;
class Conv3d;

class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> m) {
    layers_.push_back(std::move(m));
    program_.clear();
    return *this;
  }
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    program_.clear();
    return *this;
  }
  /// Detach and return layer i (model compiler: folded BatchNorms and
  /// eval-inert Dropouts leave the chain). Invalidates the eval program.
  std::unique_ptr<Module> remove(size_t i);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool t) override;

  size_t size() const { return layers_.size(); }
  Module& layer(size_t i) { return *layers_.at(i); }

  /// Precompute the eval dispatch (which layers fuse with which epilogue),
  /// replacing forward()'s per-call dynamic_cast scan. Inference-only: the
  /// program is bypassed while training and dropped on any layer mutation.
  void compile_eval();
  bool eval_compiled() const { return !program_.empty() || layers_.empty(); }

 private:
  // One step of the compiled eval dispatch: exactly one of dense/conv is
  // set for a fused GEMM step (act/slope baked in), otherwise `plain` runs
  // through the virtual forward.
  struct EvalStep {
    Module* plain = nullptr;
    Dense* dense = nullptr;
    Conv3d* conv = nullptr;
    core::EpilogueAct act = core::EpilogueAct::kNone;
    float slope = 0.01f;
  };

  std::vector<std::unique_ptr<Module>> layers_;
  std::vector<EvalStep> program_;
};

}  // namespace df::nn
