#include "nn/module.h"

// Module is fully defined inline; this TU exists to anchor the vtable.
