#include "nn/sequential.h"

namespace df::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& l : layers_) l->collect_parameters(out);
}

void Sequential::set_training(bool t) {
  Module::set_training(t);
  for (auto& l : layers_) l->set_training(t);
}

}  // namespace df::nn
