#include "nn/sequential.h"

#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/dense.h"

namespace df::nn {

std::unique_ptr<Module> Sequential::remove(size_t i) {
  std::unique_ptr<Module> m = std::move(layers_.at(i));
  layers_.erase(layers_.begin() + static_cast<ptrdiff_t>(i));
  program_.clear();
  return m;
}

void Sequential::compile_eval() {
  program_.clear();
  program_.reserve(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    EvalStep step;
    // Same fusion rule as the forward() scan below, resolved once: a
    // Dense/Conv3d followed by a pointwise activation becomes one fused
    // GEMM step, so the compiled dispatch is bitwise identical to the
    // scanning dispatch.
    if (i + 1 < layers_.size() &&
        epilogue_act_of(layers_[i + 1].get(), &step.act, &step.slope)) {
      if ((step.dense = dynamic_cast<Dense*>(layers_[i].get())) != nullptr ||
          (step.conv = dynamic_cast<Conv3d*>(layers_[i].get())) != nullptr) {
        program_.push_back(step);
        ++i;
        continue;
      }
      step.act = core::EpilogueAct::kNone;
      step.slope = 0.01f;
    }
    step.plain = layers_[i].get();
    program_.push_back(step);
  }
}

Tensor Sequential::forward(const Tensor& x) {
  if (!training_ && !program_.empty()) {
    Tensor h = x;
    for (const EvalStep& s : program_) {
      if (s.dense != nullptr) h = s.dense->forward_act(h, s.act, s.slope);
      else if (s.conv != nullptr) h = s.conv->forward_act(h, s.act, s.slope);
      else h = s.plain->forward(h);
    }
    return h;
  }
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    // Inference-path layer fusion: a Dense/Conv3d directly followed by a
    // pointwise activation collapses into one GEMM with a fused epilogue
    // (bitwise identical, one less sweep over the activations). Training
    // keeps the layers separate — the activation layer caches its input
    // for backward.
    if (!training_ && i + 1 < layers_.size()) {
      core::EpilogueAct act = core::EpilogueAct::kNone;
      float slope = 0.01f;
      if (epilogue_act_of(layers_[i + 1].get(), &act, &slope)) {
        if (auto* dense = dynamic_cast<Dense*>(layers_[i].get())) {
          h = dense->forward_act(h, act, slope);
          ++i;
          continue;
        }
        if (auto* conv = dynamic_cast<Conv3d*>(layers_[i].get())) {
          h = conv->forward_act(h, act, slope);
          ++i;
          continue;
        }
      }
    }
    h = layers_[i]->forward(h);
  }
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& l : layers_) l->collect_parameters(out);
}

void Sequential::set_training(bool t) {
  Module::set_training(t);
  for (auto& l : layers_) l->set_training(t);
}

}  // namespace df::nn
