// Training losses. Every model in the paper minimizes MSE between predicted
// and experimental pK (Eq. 1); Huber is provided for robustness ablations.
#pragma once

#include "core/tensor.h"

namespace df::nn {

using core::Tensor;

/// Mean-squared error over all elements; `grad` receives dLoss/dPred.
float mse_loss(const Tensor& pred, const Tensor& target, Tensor* grad = nullptr);

/// Mean absolute error (reported metric, not used for training).
float mae_loss(const Tensor& pred, const Tensor& target);

/// Huber (smooth-L1) with threshold delta.
float huber_loss(const Tensor& pred, const Tensor& target, float delta, Tensor* grad = nullptr);

}  // namespace df::nn
