// 3-D convolution and max-pooling over voxelized protein–ligand complexes.
// Input layout is (batch, channels, depth, height, width), matching the
// voxelizer's output. Direct loops (no im2col): grids in this library are
// small (16³–24³) and the straightforward scatter/gather backward is both
// cache-friendly at that size and easy to verify against finite differences.
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace df::nn {

class Conv3d : public Module {
 public:
  Conv3d(int64_t in_channels, int64_t out_channels, int64_t kernel, core::Rng& rng,
         int64_t stride = 1, int64_t padding = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  /// Spatial output size for one dimension.
  static int64_t out_size(int64_t in, int64_t kernel, int64_t stride, int64_t padding) {
    return (in + 2 * padding - kernel) / stride + 1;
  }

  int64_t in_channels() const { return cin_; }
  int64_t out_channels() const { return cout_; }

 private:
  int64_t cin_, cout_, k_, stride_, pad_;
  Parameter w_;  // (cout, cin, k, k, k)
  Parameter b_;  // (cout)
  Tensor cached_input_;
};

class MaxPool3d : public Module {
 public:
  explicit MaxPool3d(int64_t kernel = 2, int64_t stride = 2) : k_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  int64_t k_, stride_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  std::vector<int64_t> in_shape_;
};

/// Flatten (B, ...) -> (B, features); the bridge from conv stack to dense head.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<int64_t> in_shape_;
};

}  // namespace df::nn
