// 3-D convolution and max-pooling over voxelized protein–ligand complexes.
// Input layout is (batch, channels, depth, height, width), matching the
// voxelizer's output. Conv3d lowers each sample to a (cin*k³, Do*Ho*Wo)
// column matrix (vol2col) whose padded border is zero-filled up front and
// whose interior is copied with branch-free row loops, then runs a single
// blocked sgemm per sample; backward reverses the lowering (col2vol).
// The original direct 7-loop implementation is retained below as the
// equivalence reference for tests and the speedup benchmark.
#pragma once

#include <memory>

#include "core/gemm.h"
#include "core/gemm_s8.h"
#include "core/rng.h"
#include "nn/module.h"
#include "nn/observer.h"

namespace df::nn {

/// Int8 execution state for a Conv3d layer (src/quant/ attaches it). The
/// weight is the u8 A operand of the per-sample int8 GEMM: a row-major
/// (cout, round_up(cin*k^3, 4)) image of offset-128 bytes. Per-output-channel
/// combined dequant scales; the compensation vector is computed per call
/// from the quantized column matrix (it depends on the activations).
struct QuantizedConv {
  float act_scale = 1.0f;        // input quant step: q = round(x / act_scale)
  const uint8_t* wu8 = nullptr;  // (cout, round_up(cin*k^3, 4)) row-major
  const float* scales = nullptr; // length cout
  std::vector<uint8_t> own_wu8;
  std::vector<float> own_scales;
};

class Conv3d : public Module {
 public:
  Conv3d(int64_t in_channels, int64_t out_channels, int64_t kernel, core::Rng& rng,
         int64_t stride = 1, int64_t padding = 0);

  Tensor forward(const Tensor& x) override;
  /// Forward with a fused activation epilogue (bias + act applied on the
  /// per-sample GEMM's hot micro-tiles); bitwise identical to forward()
  /// followed by the elementwise activation. Inference-path only — training
  /// needs the pre-activation output cached by the activation layer.
  Tensor forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope = 0.01f);
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  /// Spatial output size for one dimension.
  static int64_t out_size(int64_t in, int64_t kernel, int64_t stride, int64_t padding) {
    return (in + 2 * padding - kernel) / stride + 1;
  }

  int64_t in_channels() const { return cin_; }
  int64_t out_channels() const { return cout_; }
  int64_t kernel() const { return k_; }
  int64_t stride() const { return stride_; }
  int64_t padding() const { return pad_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

  // -- ahead-of-time weight packing (model compiler) ----------------------
  // The weight is the A operand of every per-sample GEMM; packing it once
  // removes pack_a from the steady-state path. Inference-only, same
  // contract as Dense: re-prepack after any weight mutation.

  /// Pack w into an owned buffer and route eval forwards through it.
  void prepack();
  /// Route eval forwards through an external image of
  /// core::packed_a_floats(cout, cin*k^3) floats. Caller keeps it alive.
  void attach_prepacked(const float* panels);
  void clear_prepacked() { pa_ = {}; packed_own_.clear(); }
  bool prepacked() const { return pa_.panels != nullptr; }

  // -- int8 quantized execution (src/quant/) ------------------------------
  // Eval forwards quantize each sample's column matrix to int8 panels and
  // run the int8 GEMM against the prequantized u8 weight image. Takes
  // priority over the fp32 prepacked path; training stays fp32.

  /// Attach owned quantized state (moved in). Null view pointers are
  /// re-pointed at the owned vectors.
  void attach_quantized(QuantizedConv q);
  /// Attach borrowed views (e.g. into an mmap'd artifact). Caller keeps
  /// them alive for the layer's lifetime.
  void attach_quantized_views(float act_scale, const uint8_t* wu8, const float* scales);
  void clear_quantized() { quant_.reset(); }
  bool quantized() const { return quant_ != nullptr; }
  /// Serialization access (model compiler); nullptr when not quantized.
  const QuantizedConv* quantized_state() const { return quant_.get(); }

  /// Calibration hook: when set, eval forwards report their input to the
  /// observer before computing. Not used in training mode.
  void set_observer(ActivationObserver* obs) { observer_ = obs; }

  /// Build the vol2col copy plan for a (D, H, W) input ahead of the first
  /// forward, so a compiled replica's first score pays no plan construction.
  void warm_plan(int64_t D, int64_t H, int64_t W);

 private:
  // Replayable vol2col plan for one input channel: the (source, column)
  // copy/zero spans depend only on geometry, so they are computed once per
  // input shape, merged into maximal contiguous runs, and replayed for
  // every (sample, channel) with plain offsets — the nested loops and range
  // clipping run once instead of per call. Replica state (the layer is
  // single-threaded per replica; pool workers only read it).
  struct ColsPlan {
    int64_t D = -1, H = -1, W = -1;            // geometry the plan was built for
    struct Span {
      int64_t dst, src, len;                   // contiguous copy (stride 1)
    };
    struct StridedSpan {
      int64_t dst, src, n;                     // n elements, src stride = stride_
    };
    struct ZeroSpan {
      int64_t dst, len;
    };
    std::vector<Span> copies;
    std::vector<StridedSpan> strided;
    std::vector<ZeroSpan> zeros;
  };
  void build_plan(int64_t D, int64_t H, int64_t W, int64_t Do, int64_t Ho, int64_t Wo);

  int64_t cin_, cout_, k_, stride_, pad_;
  Parameter w_;  // (cout, cin, k, k, k)
  Parameter b_;  // (cout)
  Tensor cached_input_;
  ColsPlan plan_;
  std::vector<float> packed_own_;
  core::PrepackedA pa_;
  std::unique_ptr<QuantizedConv> quant_;
  ActivationObserver* observer_ = nullptr;
};

class MaxPool3d : public Module {
 public:
  explicit MaxPool3d(int64_t kernel = 2, int64_t stride = 2) : k_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  int64_t k_, stride_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  std::vector<int64_t> in_shape_;
};

/// Direct 7-loop reference convolution (the pre-vol2col implementation).
/// Retained for equivalence tests and the speedup benchmark only — model
/// code must go through Conv3d.
Tensor conv3d_forward_naive(const Tensor& x, const Tensor& w, const Tensor& b, int64_t stride,
                            int64_t padding);
/// Reference backward: returns grad_in and accumulates into grad_w/grad_b.
Tensor conv3d_backward_naive(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                             Tensor& grad_w, Tensor& grad_b, int64_t stride, int64_t padding);

/// Flatten (B, ...) -> (B, features); the bridge from conv stack to dense head.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<int64_t> in_shape_;
};

}  // namespace df::nn
