// Fully connected layer: y = x W + b for x of shape (batch, in_features).
// The bias broadcast (and, via forward_act, an optional pointwise
// activation) rides the GEMM's fused epilogue instead of a separate pass.
#pragma once

#include <vector>

#include "core/gemm.h"
#include "core/rng.h"
#include "nn/module.h"

namespace df::nn {

class Dense : public Module {
 public:
  /// Kaiming-uniform init (matches the PyTorch default the paper's models
  /// were trained with).
  Dense(int64_t in_features, int64_t out_features, core::Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) override;
  /// Forward with a fused activation epilogue: act(x W + b), bitwise
  /// identical to forward() followed by the elementwise activation. Callers
  /// that need the pre-activation output for backward (training) must use
  /// forward() plus a separate activation layer instead.
  Tensor forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope = 0.01f);
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  bool has_bias() const { return has_bias_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

  // -- ahead-of-time weight packing (model compiler) ----------------------
  // The weight is the GEMM's B operand and never changes between eval
  // calls, so the compiler packs it once into the panel image sgemm would
  // build per call. Inference-only: forward_act takes the prepacked path
  // only when !training(), and any weight mutation must re-prepack.

  /// Pack w into an owned buffer and route eval forwards through it.
  void prepack();
  /// Route eval forwards through an external (e.g. mmap'd artifact) image
  /// of core::packed_b_floats(in, out) floats. Caller keeps it alive.
  void attach_prepacked(const float* image);
  void clear_prepacked() { pb_ = {}; packed_own_.clear(); }
  bool prepacked() const { return pb_.image != nullptr; }

 private:
  int64_t in_, out_;
  bool has_bias_;
  Parameter w_;  // (in, out)
  Parameter b_;  // (out)
  Tensor cached_input_;
  std::vector<float> packed_own_;
  core::PrepackedB pb_;
};

}  // namespace df::nn
