// Fully connected layer: y = x W + b for x of shape (batch, in_features).
// The bias broadcast (and, via forward_act, an optional pointwise
// activation) rides the GEMM's fused epilogue instead of a separate pass.
#pragma once

#include <memory>
#include <vector>

#include "core/gemm.h"
#include "core/gemm_s8.h"
#include "core/rng.h"
#include "nn/module.h"
#include "nn/observer.h"

namespace df::nn {

/// Int8 execution state for a Dense layer (src/quant/ attaches it): the
/// weight as a core::pack_quantize_b_s8 panel image plus the per-output
/// weight dequant scales and the u8-offset compensation vector. The
/// activation side is quantized dynamically — each eval batch row gets a
/// runtime step from its own |x| max (scale_row in the epilogue) — so
/// act_scale here is the calibrated static range, recorded for diagnostics
/// and artifact stability, not read on the hot path. Either owned
/// (in-memory quantization) or borrowed views into an mmap'd artifact
/// (owner keeps them alive).
struct QuantizedDense {
  float act_scale = 1.0f;          // calibrated |x|/127 step (diagnostic)
  const int8_t* panels = nullptr;  // core::packed_b_bytes_s8(in, out) bytes
  const float* scales = nullptr;   // length out
  const int32_t* comp = nullptr;   // length out: 128 * colsum(quantized W)
  std::vector<int8_t> own_panels;
  std::vector<float> own_scales;
  std::vector<int32_t> own_comp;
};

class Dense : public Module {
 public:
  /// Kaiming-uniform init (matches the PyTorch default the paper's models
  /// were trained with).
  Dense(int64_t in_features, int64_t out_features, core::Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) override;
  /// Forward with a fused activation epilogue: act(x W + b), bitwise
  /// identical to forward() followed by the elementwise activation. Callers
  /// that need the pre-activation output for backward (training) must use
  /// forward() plus a separate activation layer instead.
  Tensor forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope = 0.01f);
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  bool has_bias() const { return has_bias_; }
  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

  // -- ahead-of-time weight packing (model compiler) ----------------------
  // The weight is the GEMM's B operand and never changes between eval
  // calls, so the compiler packs it once into the panel image sgemm would
  // build per call. Inference-only: forward_act takes the prepacked path
  // only when !training(), and any weight mutation must re-prepack.

  /// Pack w into an owned buffer and route eval forwards through it.
  void prepack();
  /// Route eval forwards through an external (e.g. mmap'd artifact) image
  /// of core::packed_b_floats(in, out) floats. Caller keeps it alive.
  void attach_prepacked(const float* image);
  void clear_prepacked() { pb_ = {}; packed_own_.clear(); }
  bool prepacked() const { return pb_.image != nullptr; }

  // -- int8 quantized execution (src/quant/) ------------------------------
  // When quantized state is attached, eval forwards quantize the input to
  // u8 per call and run the int8 GEMM with a fused requantize+bias+act
  // epilogue. Takes priority over the fp32 prepacked path; training
  // forwards always stay fp32.

  /// Attach owned quantized state (moved in). Null view pointers are
  /// re-pointed at the owned vectors.
  void attach_quantized(QuantizedDense q);
  /// Attach borrowed views (e.g. into an mmap'd artifact). Caller keeps
  /// them alive for the layer's lifetime.
  void attach_quantized_views(float act_scale, const int8_t* panels, const float* scales,
                              const int32_t* comp);
  void clear_quantized() { quant_.reset(); }
  bool quantized() const { return quant_ != nullptr; }
  /// Serialization access (model compiler); nullptr when not quantized.
  const QuantizedDense* quantized_state() const { return quant_.get(); }

  /// Calibration hook: when set, eval forwards report their input to the
  /// observer before computing. Not used in training mode.
  void set_observer(ActivationObserver* obs) { observer_ = obs; }

 private:
  int64_t in_, out_;
  bool has_bias_;
  Parameter w_;  // (in, out)
  Parameter b_;  // (out)
  Tensor cached_input_;
  std::vector<float> packed_own_;
  core::PrepackedB pb_;
  std::unique_ptr<QuantizedDense> quant_;
  ActivationObserver* observer_ = nullptr;
};

}  // namespace df::nn
