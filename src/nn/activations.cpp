#include "nn/activations.h"

#include <cmath>

namespace df::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kReLU: return "ReLU";
    case Activation::kLeakyReLU: return "LReLU";
    case Activation::kSELU: return "SELU";
  }
  return "?";
}

Tensor ReLU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  return x.map([](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i)
    if (cached_input_[i] <= 0.0f) g[i] = 0.0f;
  return g;
}

Tensor LeakyReLU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  const float s = slope_;
  return x.map([s](float v) { return v > 0.0f ? v : s * v; });
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i)
    if (cached_input_[i] <= 0.0f) g[i] *= slope_;
  return g;
}

Tensor SELU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  return x.map([](float v) {
    return v > 0.0f ? kScale * v : kScale * kAlpha * (std::exp(v) - 1.0f);
  });
}

Tensor SELU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i) {
    const float v = cached_input_[i];
    g[i] *= v > 0.0f ? kScale : kScale * kAlpha * std::exp(v);
  }
  return g;
}

std::unique_ptr<Module> make_activation(Activation a) {
  switch (a) {
    case Activation::kReLU: return std::make_unique<ReLU>();
    case Activation::kLeakyReLU: return std::make_unique<LeakyReLU>();
    case Activation::kSELU: return std::make_unique<SELU>();
  }
  return std::make_unique<ReLU>();
}

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float dsigmoid_from_y(float y) { return y * (1.0f - y); }
float dtanh_from_y(float y) { return 1.0f - y * y; }

}  // namespace df::nn
