#include "nn/activations.h"

#include <cmath>
#include <cstring>

#include "core/simd_math.h"

namespace df::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kReLU: return "ReLU";
    case Activation::kLeakyReLU: return "LReLU";
    case Activation::kSELU: return "SELU";
  }
  return "?";
}

Tensor ReLU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  return x.map([](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i)
    if (cached_input_[i] <= 0.0f) g[i] = 0.0f;
  return g;
}

Tensor LeakyReLU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  const float s = slope_;
  return x.map([s](float v) { return v > 0.0f ? v : s * v; });
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i)
    if (cached_input_[i] <= 0.0f) g[i] *= slope_;
  return g;
}

Tensor SELU::forward(const Tensor& x) {
  if (training_) cached_input_ = x;
  // Same vectorized exp as the fused GEMM epilogue (core/simd_math.h), so a
  // standalone SELU layer and an epilogue-fused SELU agree bitwise. The
  // tail runs through the identical vector code on a padded chunk — lanes
  // are position-independent.
  Tensor y = Tensor::uninit(x.shape());
  const float* in = x.data();
  float* out = y.data();
  const int64_t n = x.numel();
#if defined(DF_SIMD_MATH_VECTOR)
  using core::simd::vf16;
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vf16 v;
    std::memcpy(&v, in + i, sizeof(v));
    v = core::simd::vselu16(v, kScale, kAlpha);
    std::memcpy(out + i, &v, sizeof(v));
  }
  if (i < n) {
    alignas(64) float buf[16] = {};
    std::memcpy(buf, in + i, static_cast<size_t>(n - i) * sizeof(float));
    vf16 v;
    std::memcpy(&v, buf, sizeof(v));
    v = core::simd::vselu16(v, kScale, kAlpha);
    std::memcpy(buf, &v, sizeof(v));
    std::memcpy(out + i, buf, static_cast<size_t>(n - i) * sizeof(float));
  }
#else
  for (int64_t i = 0; i < n; ++i) out[i] = core::simd::selu_scalar(in[i], kScale, kAlpha);
#endif
  return y;
}

Tensor SELU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = 0; i < g.numel(); ++i) {
    const float v = cached_input_[i];
    g[i] *= v > 0.0f ? kScale : kScale * kAlpha * core::simd::exp_scalar(v);
  }
  return g;
}

std::unique_ptr<Module> make_activation(Activation a) {
  switch (a) {
    case Activation::kReLU: return std::make_unique<ReLU>();
    case Activation::kLeakyReLU: return std::make_unique<LeakyReLU>();
    case Activation::kSELU: return std::make_unique<SELU>();
  }
  return std::make_unique<ReLU>();
}

bool epilogue_act_of(const Module* m, core::EpilogueAct* act, float* slope) {
  if (dynamic_cast<const ReLU*>(m) != nullptr) {
    *act = core::EpilogueAct::kReLU;
    return true;
  }
  if (const auto* lrelu = dynamic_cast<const LeakyReLU*>(m)) {
    *act = core::EpilogueAct::kLeakyReLU;
    *slope = lrelu->slope();
    return true;
  }
  if (dynamic_cast<const SELU*>(m) != nullptr) {
    *act = core::EpilogueAct::kSELU;
    return true;
  }
  return false;
}

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float dsigmoid_from_y(float y) { return y * (1.0f - y); }
float dtanh_from_y(float y) { return 1.0f - y * y; }

}  // namespace df::nn
