// Activation observation hook for post-training quantization (src/quant/).
// A calibration pass attaches one observer per GEMM layer; the layer calls
// observe() with its eval input tensor before computing, so the calibrator
// sees exactly the values the quantized kernel will later have to represent.
// Observation happens at batch level, outside the layers' parallel regions
// — observers need no locking under the replica contract (models/regressor.h).
#pragma once

#include <cstdint>

namespace df::nn {

class ActivationObserver {
 public:
  virtual ~ActivationObserver() = default;
  /// Called once per eval forward with the layer's flat input values.
  virtual void observe(const float* x, int64_t n) = 0;
};

}  // namespace df::nn
