#include "nn/norm.h"

#include <cmath>
#include <stdexcept>

namespace df::nn {

BatchNorm1d::BatchNorm1d(int64_t features, float momentum, float eps)
    : f_(features), momentum_(momentum), eps_(eps),
      gamma_(Tensor::ones({features}), "bn1d.gamma"),
      beta_(Tensor::zeros({features}), "bn1d.beta"),
      running_mean_(Tensor::zeros({features})), running_var_(Tensor::ones({features})) {}

Tensor BatchNorm1d::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != f_) {
    throw std::invalid_argument("BatchNorm1d: bad input " + x.shape_str());
  }
  const int64_t B = x.dim(0);
  Tensor out = Tensor::uninit(x.shape());
  if (training_) {
    xhat_ = Tensor(x.shape());
    invstd_.assign(static_cast<size_t>(f_), 0.0f);
    for (int64_t j = 0; j < f_; ++j) {
      double mean = 0.0, var = 0.0;
      for (int64_t i = 0; i < B; ++i) mean += x.at(i, j);
      mean /= B;
      for (int64_t i = 0; i < B; ++i) {
        const double d = x.at(i, j) - mean;
        var += d * d;
      }
      var /= B;
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      invstd_[static_cast<size_t>(j)] = is;
      for (int64_t i = 0; i < B; ++i) {
        const float xh = (x.at(i, j) - static_cast<float>(mean)) * is;
        xhat_.at(i, j) = xh;
        out.at(i, j) = gamma_.value[j] * xh + beta_.value[j];
      }
      running_mean_[j] = (1 - momentum_) * running_mean_[j] + momentum_ * static_cast<float>(mean);
      running_var_[j] = (1 - momentum_) * running_var_[j] + momentum_ * static_cast<float>(var);
    }
  } else {
    // Inference: per-feature inv-std hoisted once, then contiguous row
    // sweeps (the output tensor itself comes from the bound workspace on
    // the serving path). Element math is unchanged — bitwise identical to
    // the training-shaped column loop.
    static thread_local std::vector<float> is;
    is.resize(static_cast<size_t>(f_));
    for (int64_t j = 0; j < f_; ++j) is[static_cast<size_t>(j)] = 1.0f / std::sqrt(running_var_[j] + eps_);
    for (int64_t i = 0; i < B; ++i) {
      const float* xr = x.data() + i * f_;
      float* orow = out.data() + i * f_;
      for (int64_t j = 0; j < f_; ++j) {
        orow[j] = gamma_.value[j] * (xr[j] - running_mean_[j]) * is[static_cast<size_t>(j)] +
                  beta_.value[j];
      }
    }
  }
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  const int64_t B = grad_out.dim(0);
  Tensor grad_in(grad_out.shape());
  for (int64_t j = 0; j < f_; ++j) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (int64_t i = 0; i < B; ++i) {
      sum_g += grad_out.at(i, j);
      sum_gx += grad_out.at(i, j) * xhat_.at(i, j);
      gamma_.grad[j] += grad_out.at(i, j) * xhat_.at(i, j);
      beta_.grad[j] += grad_out.at(i, j);
    }
    const float g = gamma_.value[j], is = invstd_[static_cast<size_t>(j)];
    for (int64_t i = 0; i < B; ++i) {
      grad_in.at(i, j) = g * is / static_cast<float>(B) *
                         (static_cast<float>(B) * grad_out.at(i, j) - static_cast<float>(sum_g) -
                          xhat_.at(i, j) * static_cast<float>(sum_gx));
    }
  }
  return grad_in;
}

void BatchNorm1d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

BatchNorm3d::BatchNorm3d(int64_t channels, float momentum, float eps)
    : c_(channels), momentum_(momentum), eps_(eps),
      gamma_(Tensor::ones({channels}), "bn3d.gamma"),
      beta_(Tensor::zeros({channels}), "bn3d.beta"),
      running_mean_(Tensor::zeros({channels})), running_var_(Tensor::ones({channels})) {}

Tensor BatchNorm3d::forward(const Tensor& x) {
  if (x.ndim() != 5 || x.dim(1) != c_) {
    throw std::invalid_argument("BatchNorm3d: bad input " + x.shape_str());
  }
  const int64_t B = x.dim(0), spatial = x.dim(2) * x.dim(3) * x.dim(4);
  const int64_t n = B * spatial;
  Tensor out = Tensor::uninit(x.shape());
  const float* in = x.data();
  float* o = out.data();
  if (training_) {
    xhat_ = Tensor(x.shape());
    invstd_.assign(static_cast<size_t>(c_), 0.0f);
    for (int64_t c = 0; c < c_; ++c) {
      double mean = 0.0, var = 0.0;
      for (int64_t b = 0; b < B; ++b) {
        const float* p = in + (b * c_ + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) mean += p[s];
      }
      mean /= n;
      for (int64_t b = 0; b < B; ++b) {
        const float* p = in + (b * c_ + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          const double d = p[s] - mean;
          var += d * d;
        }
      }
      var /= n;
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      invstd_[static_cast<size_t>(c)] = is;
      for (int64_t b = 0; b < B; ++b) {
        const float* p = in + (b * c_ + c) * spatial;
        float* xh = xhat_.data() + (b * c_ + c) * spatial;
        float* op = o + (b * c_ + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          xh[s] = (p[s] - static_cast<float>(mean)) * is;
          op[s] = gamma_.value[c] * xh[s] + beta_.value[c];
        }
      }
      running_mean_[c] = (1 - momentum_) * running_mean_[c] + momentum_ * static_cast<float>(mean);
      running_var_[c] = (1 - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
    }
  } else {
    for (int64_t c = 0; c < c_; ++c) {
      const float is = 1.0f / std::sqrt(running_var_[c] + eps_);
      for (int64_t b = 0; b < B; ++b) {
        const float* p = in + (b * c_ + c) * spatial;
        float* op = o + (b * c_ + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          op[s] = gamma_.value[c] * (p[s] - running_mean_[c]) * is + beta_.value[c];
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm3d::backward(const Tensor& grad_out) {
  const int64_t B = grad_out.dim(0), spatial = grad_out.dim(2) * grad_out.dim(3) * grad_out.dim(4);
  const int64_t n = B * spatial;
  Tensor grad_in(grad_out.shape());
  const float* g = grad_out.data();
  float* gi = grad_in.data();
  for (int64_t c = 0; c < c_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (int64_t b = 0; b < B; ++b) {
      const float* gp = g + (b * c_ + c) * spatial;
      const float* xh = xhat_.data() + (b * c_ + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        sum_g += gp[s];
        sum_gx += gp[s] * xh[s];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);
    const float gm = gamma_.value[c], is = invstd_[static_cast<size_t>(c)];
    for (int64_t b = 0; b < B; ++b) {
      const float* gp = g + (b * c_ + c) * spatial;
      const float* xh = xhat_.data() + (b * c_ + c) * spatial;
      float* gip = gi + (b * c_ + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        gip[s] = gm * is / static_cast<float>(n) *
                 (static_cast<float>(n) * gp[s] - static_cast<float>(sum_g) -
                  xh[s] * static_cast<float>(sum_gx));
      }
    }
  }
  return grad_in;
}

void BatchNorm3d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace df::nn
