#include "nn/conv3d.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace df::nn {

Conv3d::Conv3d(int64_t in_channels, int64_t out_channels, int64_t kernel, core::Rng& rng,
               int64_t stride, int64_t padding)
    : cin_(in_channels), cout_(out_channels), k_(kernel), stride_(stride), pad_(padding) {
  const float fan_in = static_cast<float>(cin_ * k_ * k_ * k_);
  const float bound = 1.0f / std::sqrt(fan_in);
  w_ = Parameter(Tensor::uniform({cout_, cin_, k_, k_, k_}, rng, -bound, bound), "conv3d.w");
  b_ = Parameter(Tensor::uniform({cout_}, rng, -bound, bound), "conv3d.b");
}

Tensor Conv3d::forward(const Tensor& x) {
  if (x.ndim() != 5 || x.dim(1) != cin_) {
    throw std::invalid_argument("Conv3d: expected (B," + std::to_string(cin_) + ",D,H,W), got " +
                                x.shape_str());
  }
  if (training_) cached_input_ = x;
  const int64_t B = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = out_size(D, k_, stride_, pad_);
  const int64_t Ho = out_size(H, k_, stride_, pad_);
  const int64_t Wo = out_size(W, k_, stride_, pad_);
  Tensor out({B, cout_, Do, Ho, Wo});

  const float* in = x.data();
  float* o = out.data();
  const float* w = w_.value.data();
  const int64_t in_chan = D * H * W, out_chan = Do * Ho * Wo, wk = k_ * k_ * k_;

  for (int64_t b = 0; b < B; ++b) {
    for (int64_t co = 0; co < cout_; ++co) {
      float* obase = o + (b * cout_ + co) * out_chan;
      const float bias = b_.value[co];
      for (int64_t zo = 0; zo < Do; ++zo) {
        for (int64_t yo = 0; yo < Ho; ++yo) {
          for (int64_t xo = 0; xo < Wo; ++xo) {
            float acc = bias;
            const int64_t z0 = zo * stride_ - pad_;
            const int64_t y0 = yo * stride_ - pad_;
            const int64_t x0 = xo * stride_ - pad_;
            for (int64_t ci = 0; ci < cin_; ++ci) {
              const float* ibase = in + (b * cin_ + ci) * in_chan;
              const float* wbase = w + (co * cin_ + ci) * wk;
              for (int64_t kz = 0; kz < k_; ++kz) {
                const int64_t z = z0 + kz;
                if (z < 0 || z >= D) continue;
                for (int64_t ky = 0; ky < k_; ++ky) {
                  const int64_t y = y0 + ky;
                  if (y < 0 || y >= H) continue;
                  const float* irow = ibase + (z * H + y) * W;
                  const float* wrow = wbase + (kz * k_ + ky) * k_;
                  for (int64_t kx = 0; kx < k_; ++kx) {
                    const int64_t xx = x0 + kx;
                    if (xx < 0 || xx >= W) continue;
                    acc += irow[xx] * wrow[kx];
                  }
                }
              }
            }
            obase[(zo * Ho + yo) * Wo + xo] = acc;
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv3d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::runtime_error("Conv3d::backward before forward");
  const Tensor& x = cached_input_;
  const int64_t B = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = grad_out.dim(2), Ho = grad_out.dim(3), Wo = grad_out.dim(4);
  Tensor grad_in(x.shape());

  const float* in = x.data();
  const float* g = grad_out.data();
  const float* w = w_.value.data();
  float* gw = w_.grad.data();
  float* gi = grad_in.data();
  const int64_t in_chan = D * H * W, out_chan = Do * Ho * Wo, wk = k_ * k_ * k_;

  for (int64_t b = 0; b < B; ++b) {
    for (int64_t co = 0; co < cout_; ++co) {
      const float* gbase = g + (b * cout_ + co) * out_chan;
      for (int64_t zo = 0; zo < Do; ++zo) {
        for (int64_t yo = 0; yo < Ho; ++yo) {
          for (int64_t xo = 0; xo < Wo; ++xo) {
            const float gv = gbase[(zo * Ho + yo) * Wo + xo];
            if (gv == 0.0f) continue;
            b_.grad[co] += gv;
            const int64_t z0 = zo * stride_ - pad_;
            const int64_t y0 = yo * stride_ - pad_;
            const int64_t x0 = xo * stride_ - pad_;
            for (int64_t ci = 0; ci < cin_; ++ci) {
              const float* ibase = in + (b * cin_ + ci) * in_chan;
              float* gibase = gi + (b * cin_ + ci) * in_chan;
              const float* wbase = w + (co * cin_ + ci) * wk;
              float* gwbase = gw + (co * cin_ + ci) * wk;
              for (int64_t kz = 0; kz < k_; ++kz) {
                const int64_t z = z0 + kz;
                if (z < 0 || z >= D) continue;
                for (int64_t ky = 0; ky < k_; ++ky) {
                  const int64_t y = y0 + ky;
                  if (y < 0 || y >= H) continue;
                  const int64_t irow = (z * H + y) * W;
                  const int64_t wrow = (kz * k_ + ky) * k_;
                  for (int64_t kx = 0; kx < k_; ++kx) {
                    const int64_t xx = x0 + kx;
                    if (xx < 0 || xx >= W) continue;
                    gwbase[wrow + kx] += gv * ibase[irow + xx];
                    gibase[irow + xx] += gv * wbase[wrow + kx];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv3d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

Tensor MaxPool3d::forward(const Tensor& x) {
  if (x.ndim() != 5) throw std::invalid_argument("MaxPool3d: expected 5-D, got " + x.shape_str());
  in_shape_ = x.shape();
  const int64_t B = x.dim(0), C = x.dim(1), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = (D - k_) / stride_ + 1, Ho = (H - k_) / stride_ + 1, Wo = (W - k_) / stride_ + 1;
  Tensor out({B, C, Do, Ho, Wo});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);

  const float* in = x.data();
  float* o = out.data();
  const int64_t in_chan = D * H * W;
  int64_t oi = 0;
  for (int64_t bc = 0; bc < B * C; ++bc) {
    const float* ibase = in + bc * in_chan;
    for (int64_t zo = 0; zo < Do; ++zo)
      for (int64_t yo = 0; yo < Ho; ++yo)
        for (int64_t xo = 0; xo < Wo; ++xo, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t besti = 0;
          for (int64_t kz = 0; kz < k_; ++kz)
            for (int64_t ky = 0; ky < k_; ++ky)
              for (int64_t kx = 0; kx < k_; ++kx) {
                const int64_t idx = ((zo * stride_ + kz) * H + yo * stride_ + ky) * W +
                                    xo * stride_ + kx;
                if (ibase[idx] > best) {
                  best = ibase[idx];
                  besti = bc * in_chan + idx;
                }
              }
          o[oi] = best;
          argmax_[static_cast<size_t>(oi)] = besti;
        }
  }
  return out;
}

Tensor MaxPool3d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) { return grad_out.reshaped(in_shape_); }

}  // namespace df::nn
