#include "nn/conv3d.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/gemm.h"
#include "core/parallel.h"

namespace df::nn {

namespace {

// Valid output range [lo, hi) for one spatial axis and one kernel offset:
// the positions `o` with 0 <= o*stride - pad + koff < in_size. Everything
// outside maps into the zero padding.
struct AxisRange {
  int64_t lo, hi;
};

AxisRange valid_range(int64_t in_size, int64_t out_size, int64_t stride, int64_t pad,
                      int64_t koff) {
  // o*stride >= pad - koff  and  o*stride <= in_size - 1 + pad - koff
  const int64_t num = pad - koff;
  int64_t lo = num <= 0 ? 0 : (num + stride - 1) / stride;
  int64_t hi = (in_size - 1 + pad - koff) / stride + 1;
  if (in_size - 1 + pad - koff < 0) hi = 0;
  lo = std::min(lo, out_size);
  hi = std::clamp(hi, lo, out_size);
  return {lo, hi};
}

// Lower one sample (cin, D, H, W) to cols (cin*k^3, Do*Ho*Wo). Rows touched
// by padding are zero-filled up front; the interior is copied with
// contiguous (stride 1) or strided row loops, no per-element bounds checks.
// `ldcols` strides between rows so several samples can share one wide
// column matrix ((K, B*N) with sample b at column offset b*N).
void vol2col(const float* x, int64_t cin, int64_t D, int64_t H, int64_t W, int64_t k,
             int64_t stride, int64_t pad, int64_t Do, int64_t Ho, int64_t Wo, float* cols,
             int64_t ldcols) {
  for (int64_t ci = 0; ci < cin; ++ci) {
    const float* xc = x + ci * D * H * W;
    for (int64_t kz = 0; kz < k; ++kz) {
      const AxisRange rz = valid_range(D, Do, stride, pad, kz);
      for (int64_t ky = 0; ky < k; ++ky) {
        const AxisRange ry = valid_range(H, Ho, stride, pad, ky);
        for (int64_t kx = 0; kx < k; ++kx) {
          const AxisRange rx = valid_range(W, Wo, stride, pad, kx);
          float* row = cols + (((ci * k + kz) * k + ky) * k + kx) * ldcols;
          const int64_t nx = rx.hi - rx.lo;
          if (nx <= 0) {
            // Whole row maps into the padding.
            std::memset(row, 0, static_cast<size_t>(Do * Ho * Wo) * sizeof(float));
            continue;
          }
          // Zero exactly the border gaps instead of pre-clearing the whole
          // row and rewriting the interior — each element is written once.
          for (int64_t zo = 0; zo < Do; ++zo) {
            float* prow = row + zo * Ho * Wo;
            if (zo < rz.lo || zo >= rz.hi) {
              std::memset(prow, 0, static_cast<size_t>(Ho * Wo) * sizeof(float));
              continue;
            }
            const int64_t z = zo * stride - pad + kz;
            for (int64_t yo = 0; yo < Ho; ++yo) {
              float* dst0 = prow + yo * Wo;
              if (yo < ry.lo || yo >= ry.hi) {
                std::memset(dst0, 0, static_cast<size_t>(Wo) * sizeof(float));
                continue;
              }
              const int64_t y = yo * stride - pad + ky;
              if (rx.lo > 0) std::memset(dst0, 0, static_cast<size_t>(rx.lo) * sizeof(float));
              if (rx.hi < Wo)
                std::memset(dst0 + rx.hi, 0, static_cast<size_t>(Wo - rx.hi) * sizeof(float));
              const float* src = xc + (z * H + y) * W + (rx.lo * stride - pad + kx);
              float* dst = dst0 + rx.lo;
              if (stride == 1) {
                std::memcpy(dst, src, static_cast<size_t>(nx) * sizeof(float));
              } else {
                for (int64_t j = 0; j < nx; ++j) dst[j] = src[j * stride];
              }
            }
          }
        }
      }
    }
  }
}

// Scatter-add cols-shaped gradients back into one sample's input gradient.
// Mirrors vol2col's interior ranges; border columns map into padding and
// are dropped.
void col2vol(const float* cols, int64_t cin, int64_t D, int64_t H, int64_t W, int64_t k,
             int64_t stride, int64_t pad, int64_t Do, int64_t Ho, int64_t Wo, float* gx) {
  const int64_t N = Do * Ho * Wo;
  for (int64_t ci = 0; ci < cin; ++ci) {
    float* gc = gx + ci * D * H * W;
    for (int64_t kz = 0; kz < k; ++kz) {
      const AxisRange rz = valid_range(D, Do, stride, pad, kz);
      for (int64_t ky = 0; ky < k; ++ky) {
        const AxisRange ry = valid_range(H, Ho, stride, pad, ky);
        for (int64_t kx = 0; kx < k; ++kx) {
          const AxisRange rx = valid_range(W, Wo, stride, pad, kx);
          const float* row = cols + (((ci * k + kz) * k + ky) * k + kx) * N;
          const int64_t nx = rx.hi - rx.lo;
          if (nx <= 0) continue;
          for (int64_t zo = rz.lo; zo < rz.hi; ++zo) {
            const int64_t z = zo * stride - pad + kz;
            for (int64_t yo = ry.lo; yo < ry.hi; ++yo) {
              const int64_t y = yo * stride - pad + ky;
              float* dst = gc + (z * H + y) * W + (rx.lo * stride - pad + kx);
              const float* src = row + (zo * Ho + yo) * Wo + rx.lo;
              if (stride == 1) {
                for (int64_t j = 0; j < nx; ++j) dst[j] += src[j];
              } else {
                for (int64_t j = 0; j < nx; ++j) dst[j * stride] += src[j];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

Conv3d::Conv3d(int64_t in_channels, int64_t out_channels, int64_t kernel, core::Rng& rng,
               int64_t stride, int64_t padding)
    : cin_(in_channels), cout_(out_channels), k_(kernel), stride_(stride), pad_(padding) {
  const float fan_in = static_cast<float>(cin_ * k_ * k_ * k_);
  const float bound = 1.0f / std::sqrt(fan_in);
  w_ = Parameter(Tensor::uniform({cout_, cin_, k_, k_, k_}, rng, -bound, bound), "conv3d.w");
  b_ = Parameter(Tensor::uniform({cout_}, rng, -bound, bound), "conv3d.b");
}

Tensor Conv3d::forward(const Tensor& x) { return forward_act(x, core::EpilogueAct::kNone); }

void Conv3d::build_plan(int64_t D, int64_t H, int64_t W, int64_t Do, int64_t Ho, int64_t Wo) {
  plan_.D = D;
  plan_.H = H;
  plan_.W = W;
  plan_.copies.clear();
  plan_.strided.clear();
  plan_.zeros.clear();
  const int64_t N = Do * Ho * Wo;
  auto zero = [&](int64_t dst, int64_t len) {
    if (!plan_.zeros.empty() && plan_.zeros.back().dst + plan_.zeros.back().len == dst) {
      plan_.zeros.back().len += len;
    } else {
      plan_.zeros.push_back({dst, len});
    }
  };
  auto copy = [&](int64_t dst, int64_t src, int64_t len) {
    if (!plan_.copies.empty() && plan_.copies.back().dst + plan_.copies.back().len == dst &&
        plan_.copies.back().src + plan_.copies.back().len == src) {
      plan_.copies.back().len += len;
    } else {
      plan_.copies.push_back({dst, src, len});
    }
  };
  for (int64_t kz = 0; kz < k_; ++kz) {
    const AxisRange rz = valid_range(D, Do, stride_, pad_, kz);
    for (int64_t ky = 0; ky < k_; ++ky) {
      const AxisRange ry = valid_range(H, Ho, stride_, pad_, ky);
      for (int64_t kx = 0; kx < k_; ++kx) {
        const AxisRange rx = valid_range(W, Wo, stride_, pad_, kx);
        const int64_t row = ((kz * k_ + ky) * k_ + kx) * N;
        const int64_t nx = rx.hi - rx.lo;
        if (nx <= 0) {
          zero(row, N);
          continue;
        }
        for (int64_t zo = 0; zo < Do; ++zo) {
          const int64_t prow = row + zo * Ho * Wo;
          if (zo < rz.lo || zo >= rz.hi) {
            zero(prow, Ho * Wo);
            continue;
          }
          const int64_t z = zo * stride_ - pad_ + kz;
          for (int64_t yo = 0; yo < Ho; ++yo) {
            const int64_t dst0 = prow + yo * Wo;
            if (yo < ry.lo || yo >= ry.hi) {
              zero(dst0, Wo);
              continue;
            }
            const int64_t y = yo * stride_ - pad_ + ky;
            if (rx.lo > 0) zero(dst0, rx.lo);
            const int64_t src = (z * H + y) * W + (rx.lo * stride_ - pad_ + kx);
            if (stride_ == 1) {
              copy(dst0 + rx.lo, src, nx);
            } else {
              plan_.strided.push_back({dst0 + rx.lo, src, nx});
            }
            if (rx.hi < Wo) zero(dst0 + rx.hi, Wo - rx.hi);
          }
        }
      }
    }
  }
}

Tensor Conv3d::forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope) {
  if (x.ndim() != 5 || x.dim(1) != cin_) {
    throw std::invalid_argument("Conv3d: expected (B," + std::to_string(cin_) + ",D,H,W), got " +
                                x.shape_str());
  }
  if (training_) cached_input_ = x;
  if (!training_ && observer_ != nullptr) observer_->observe(x.data(), x.numel());
  const int64_t B = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = out_size(D, k_, stride_, pad_);
  const int64_t Ho = out_size(H, k_, stride_, pad_);
  const int64_t Wo = out_size(W, k_, stride_, pad_);
  Tensor out = Tensor::uninit({B, cout_, Do, Ho, Wo});

  const int64_t K = cin_ * k_ * k_ * k_;
  const int64_t N = Do * Ho * Wo;
  const float* in = x.data();
  const float* w = w_.value.data();  // (cout, K) row-major as stored
  float* o = out.data();

  // The (cout x N) sample GEMM's row index is the output channel, so the
  // conv bias is a per-row broadcast; it and the optional activation ride
  // the fused epilogue instead of a second sweep over the output volume.
  core::Epilogue ep;
  ep.act = act;
  ep.bias_row = b_.value.data();
  ep.leaky_slope = leaky_slope;

  // One plan replay + one gemm per sample; samples fan out over the compute
  // pool (sgemm detects it runs on a worker and stays serial inside, and
  // workers only read the shared plan). The per-sample column matrix stays
  // cache-resident across samples — lowering the whole batch into one wide
  // (K, B*N) GEMM was measured 2.6x slower here because the column matrix
  // then streams through DRAM.
  if (plan_.D != D || plan_.H != H || plan_.W != W) build_plan(D, H, W, Do, Ho, Wo);
  const ColsPlan& plan = plan_;
  const int64_t chan_in = D * H * W;
  const int64_t chan_cols = k_ * k_ * k_ * N;
  core::parallel_for_auto(static_cast<size_t>(B), 2, [&](size_t bi) {
    const int64_t b = static_cast<int64_t>(bi);
    static thread_local std::vector<float> cols;
    cols.resize(static_cast<size_t>(K * N));
    for (int64_t ci = 0; ci < cin_; ++ci) {
      const float* xs = in + b * cin_ * chan_in + ci * chan_in;
      float* cd = cols.data() + ci * chan_cols;
      for (const ColsPlan::ZeroSpan& zs : plan.zeros)
        std::memset(cd + zs.dst, 0, static_cast<size_t>(zs.len) * sizeof(float));
      for (const ColsPlan::Span& cs : plan.copies)
        std::memcpy(cd + cs.dst, xs + cs.src, static_cast<size_t>(cs.len) * sizeof(float));
#if defined(DF_SIMD_MATH_VECTOR)
      if (stride_ == 2) {
        // Stride-2 gather = even lanes of one contiguous load (the trailing
        // over-read lands in the allocation slack every tensor reserves).
        typedef float v8f __attribute__((vector_size(32), aligned(4)));
        for (const ColsPlan::StridedSpan& ss : plan.strided) {
          core::simd::vf16 v;
          std::memcpy(&v, xs + ss.src, sizeof(v));
          const v8f even = __builtin_shufflevector(v, v, 0, 2, 4, 6, 8, 10, 12, 14);
          if (ss.n > 8 && ss.n <= 16) {
            core::simd::vf16 v2;
            std::memcpy(&v2, xs + ss.src + 16, sizeof(v2));
            const v8f even2 = __builtin_shufflevector(v2, v2, 0, 2, 4, 6, 8, 10, 12, 14);
            std::memcpy(cd + ss.dst, &even, sizeof(even));
            std::memcpy(cd + ss.dst + 8, &even2,
                        static_cast<size_t>(ss.n - 8) * sizeof(float));
          } else if (ss.n <= 8) {
            std::memcpy(cd + ss.dst, &even, static_cast<size_t>(ss.n) * sizeof(float));
          } else {
            float* dst = cd + ss.dst;
            const float* src = xs + ss.src;
            for (int64_t j = 0; j < ss.n; ++j) dst[j] = src[j * 2];
          }
        }
      } else
#endif
      {
        for (const ColsPlan::StridedSpan& ss : plan.strided) {
          float* dst = cd + ss.dst;
          const float* src = xs + ss.src;
          for (int64_t j = 0; j < ss.n; ++j) dst[j] = src[j * stride_];
        }
      }
    }
    float* ob = o + b * cout_ * N;
    if (!training_ && quant_ != nullptr) {
      // Int8 path: quantize this sample's column matrix to packed s8 panels
      // (the GEMM's B operand) against the prequantized u8 weight image.
      // The compensation vector depends on the quantized columns, so it is
      // produced here per call, unlike Dense's static weight-side comp.
      const QuantizedConv& q = *quant_;
      static thread_local std::vector<int8_t> colsq;
      static thread_local std::vector<int32_t> comp;
      colsq.resize(static_cast<size_t>(core::packed_b_bytes_s8(K, N)));
      comp.resize(static_cast<size_t>(N));
      core::pack_quantize_b_s8(K, N, cols.data(), N, /*inv_scale_col=*/nullptr,
                               1.0f / q.act_scale, colsq.data(), comp.data());
      core::QuantEpilogue qep;
      qep.act = act;
      qep.leaky_slope = leaky_slope;
      qep.scale_row = q.scales;
      qep.bias_row = b_.value.data();
      qep.comp_col = comp.data();
      const int64_t k4 = (K + 3) & ~int64_t{3};
      core::gemm_u8s8f32(cout_, N, K, q.wu8, k4, colsq.data(), ob, N, qep);
    } else if (!training_ && pa_.panels != nullptr) {
      core::sgemm_prepacked(pa_, N, cols.data(), N, ob, N, /*accumulate=*/false, &ep);
    } else {
      core::sgemm(false, false, cout_, N, K, w, K, cols.data(), N, ob, N, /*accumulate=*/false,
                  &ep);
    }
  });
  return out;
}

void Conv3d::prepack() {
  const int64_t K = cin_ * k_ * k_ * k_;
  packed_own_.resize(static_cast<size_t>(core::packed_a_floats(cout_, K)));
  core::pack_a_full(false, cout_, K, w_.value.data(), K, packed_own_.data());
  pa_ = {cout_, K, packed_own_.data(), w_.value.data()};
}

void Conv3d::attach_prepacked(const float* panels) {
  const int64_t K = cin_ * k_ * k_ * k_;
  packed_own_.clear();
  pa_ = {cout_, K, panels, w_.value.data()};
}

void Conv3d::attach_quantized(QuantizedConv q) {
  auto owned = std::make_unique<QuantizedConv>(std::move(q));
  if (owned->wu8 == nullptr) owned->wu8 = owned->own_wu8.data();
  if (owned->scales == nullptr) owned->scales = owned->own_scales.data();
  quant_ = std::move(owned);
}

void Conv3d::attach_quantized_views(float act_scale, const uint8_t* wu8, const float* scales) {
  auto q = std::make_unique<QuantizedConv>();
  q->act_scale = act_scale;
  q->wu8 = wu8;
  q->scales = scales;
  quant_ = std::move(q);
}

void Conv3d::warm_plan(int64_t D, int64_t H, int64_t W) {
  if (plan_.D == D && plan_.H == H && plan_.W == W) return;
  build_plan(D, H, W, out_size(D, k_, stride_, pad_), out_size(H, k_, stride_, pad_),
             out_size(W, k_, stride_, pad_));
}

Tensor Conv3d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::runtime_error("Conv3d::backward before forward");
  const Tensor& x = cached_input_;
  const int64_t B = x.dim(0), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = grad_out.dim(2), Ho = grad_out.dim(3), Wo = grad_out.dim(4);
  Tensor grad_in(x.shape());

  const int64_t K = cin_ * k_ * k_ * k_;
  const int64_t N = Do * Ho * Wo;
  const float* in = x.data();
  const float* g = grad_out.data();
  const float* w = w_.value.data();
  float* gw = w_.grad.data();
  float* gb = b_.grad.data();
  float* gi = grad_in.data();

  // Serial over samples: grad_w/grad_b accumulate across the batch, and the
  // per-sample gemms already use the pool when one is installed.
  std::vector<float> cols(static_cast<size_t>(K * N));
  std::vector<float> cols_grad(static_cast<size_t>(K * N));
  for (int64_t b = 0; b < B; ++b) {
    const float* gbatch = g + b * cout_ * N;
    for (int64_t co = 0; co < cout_; ++co) {
      const float* row = gbatch + co * N;
      float acc = 0.0f;
      for (int64_t j = 0; j < N; ++j) acc += row[j];
      gb[co] += acc;
    }
    vol2col(in + b * cin_ * D * H * W, cin_, D, H, W, k_, stride_, pad_, Do, Ho, Wo, cols.data(),
            N);
    // dW (cout,K) += gOut (cout,N) x cols^T (N,K)
    core::sgemm(false, true, cout_, K, N, gbatch, N, cols.data(), N, gw, K, /*accumulate=*/true);
    // dCols (K,N) = W^T (K,cout) x gOut (cout,N), scattered back to dInput.
    core::sgemm(true, false, K, N, cout_, w, K, gbatch, N, cols_grad.data(), N);
    col2vol(cols_grad.data(), cin_, D, H, W, k_, stride_, pad_, Do, Ho, Wo,
            gi + b * cin_ * D * H * W);
  }
  return grad_in;
}

void Conv3d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

Tensor conv3d_forward_naive(const Tensor& x, const Tensor& w, const Tensor& b, int64_t stride,
                            int64_t padding) {
  const int64_t B = x.dim(0), cin = x.dim(1), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t cout = w.dim(0), k = w.dim(2);
  const int64_t Do = Conv3d::out_size(D, k, stride, padding);
  const int64_t Ho = Conv3d::out_size(H, k, stride, padding);
  const int64_t Wo = Conv3d::out_size(W, k, stride, padding);
  Tensor out({B, cout, Do, Ho, Wo});

  const float* in = x.data();
  float* o = out.data();
  const float* wd = w.data();
  const int64_t in_chan = D * H * W, out_chan = Do * Ho * Wo, wk = k * k * k;

  for (int64_t bb = 0; bb < B; ++bb) {
    for (int64_t co = 0; co < cout; ++co) {
      float* obase = o + (bb * cout + co) * out_chan;
      const float bias = b[co];
      for (int64_t zo = 0; zo < Do; ++zo) {
        for (int64_t yo = 0; yo < Ho; ++yo) {
          for (int64_t xo = 0; xo < Wo; ++xo) {
            float acc = bias;
            const int64_t z0 = zo * stride - padding;
            const int64_t y0 = yo * stride - padding;
            const int64_t x0 = xo * stride - padding;
            for (int64_t ci = 0; ci < cin; ++ci) {
              const float* ibase = in + (bb * cin + ci) * in_chan;
              const float* wbase = wd + (co * cin + ci) * wk;
              for (int64_t kz = 0; kz < k; ++kz) {
                const int64_t z = z0 + kz;
                if (z < 0 || z >= D) continue;
                for (int64_t ky = 0; ky < k; ++ky) {
                  const int64_t y = y0 + ky;
                  if (y < 0 || y >= H) continue;
                  const float* irow = ibase + (z * H + y) * W;
                  const float* wrow = wbase + (kz * k + ky) * k;
                  for (int64_t kx = 0; kx < k; ++kx) {
                    const int64_t xx = x0 + kx;
                    if (xx < 0 || xx >= W) continue;
                    acc += irow[xx] * wrow[kx];
                  }
                }
              }
            }
            obase[(zo * Ho + yo) * Wo + xo] = acc;
          }
        }
      }
    }
  }
  return out;
}

Tensor conv3d_backward_naive(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                             Tensor& grad_w, Tensor& grad_b, int64_t stride, int64_t padding) {
  const int64_t B = x.dim(0), cin = x.dim(1), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t cout = w.dim(0), k = w.dim(2);
  const int64_t Do = grad_out.dim(2), Ho = grad_out.dim(3), Wo = grad_out.dim(4);
  Tensor grad_in(x.shape());

  const float* in = x.data();
  const float* g = grad_out.data();
  const float* wd = w.data();
  float* gw = grad_w.data();
  float* gi = grad_in.data();
  const int64_t in_chan = D * H * W, out_chan = Do * Ho * Wo, wk = k * k * k;

  for (int64_t bb = 0; bb < B; ++bb) {
    for (int64_t co = 0; co < cout; ++co) {
      const float* gbase = g + (bb * cout + co) * out_chan;
      for (int64_t zo = 0; zo < Do; ++zo) {
        for (int64_t yo = 0; yo < Ho; ++yo) {
          for (int64_t xo = 0; xo < Wo; ++xo) {
            const float gv = gbase[(zo * Ho + yo) * Wo + xo];
            grad_b[co] += gv;
            const int64_t z0 = zo * stride - padding;
            const int64_t y0 = yo * stride - padding;
            const int64_t x0 = xo * stride - padding;
            for (int64_t ci = 0; ci < cin; ++ci) {
              const float* ibase = in + (bb * cin + ci) * in_chan;
              float* gibase = gi + (bb * cin + ci) * in_chan;
              const float* wbase = wd + (co * cin + ci) * wk;
              float* gwbase = gw + (co * cin + ci) * wk;
              for (int64_t kz = 0; kz < k; ++kz) {
                const int64_t z = z0 + kz;
                if (z < 0 || z >= D) continue;
                for (int64_t ky = 0; ky < k; ++ky) {
                  const int64_t y = y0 + ky;
                  if (y < 0 || y >= H) continue;
                  const int64_t irow = (z * H + y) * W;
                  const int64_t wrow = (kz * k + ky) * k;
                  for (int64_t kx = 0; kx < k; ++kx) {
                    const int64_t xx = x0 + kx;
                    if (xx < 0 || xx >= W) continue;
                    gwbase[wrow + kx] += gv * ibase[irow + xx];
                    gibase[irow + xx] += gv * wbase[wrow + kx];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor MaxPool3d::forward(const Tensor& x) {
  if (x.ndim() != 5) throw std::invalid_argument("MaxPool3d: expected 5-D, got " + x.shape_str());
  in_shape_ = x.shape();
  const int64_t B = x.dim(0), C = x.dim(1), D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t Do = (D - k_) / stride_ + 1, Ho = (H - k_) / stride_ + 1, Wo = (W - k_) / stride_ + 1;
  Tensor out({B, C, Do, Ho, Wo});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);

  const float* in = x.data();
  float* o = out.data();
  const int64_t in_chan = D * H * W;
  const int64_t out_chan = Do * Ho * Wo;
  // (batch, channel) planes are independent — fan out over the pool.
  core::parallel_for_auto(static_cast<size_t>(B * C), 4, [&](size_t bci) {
    const int64_t bc = static_cast<int64_t>(bci);
    const float* ibase = in + bc * in_chan;
    int64_t oi = bc * out_chan;
    for (int64_t zo = 0; zo < Do; ++zo)
      for (int64_t yo = 0; yo < Ho; ++yo)
        for (int64_t xo = 0; xo < Wo; ++xo, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t besti = 0;
          for (int64_t kz = 0; kz < k_; ++kz)
            for (int64_t ky = 0; ky < k_; ++ky)
              for (int64_t kx = 0; kx < k_; ++kx) {
                const int64_t idx = ((zo * stride_ + kz) * H + yo * stride_ + ky) * W +
                                    xo * stride_ + kx;
                if (ibase[idx] > best) {
                  best = ibase[idx];
                  besti = bc * in_chan + idx;
                }
              }
          o[oi] = best;
          argmax_[static_cast<size_t>(oi)] = besti;
        }
  });
  return out;
}

Tensor MaxPool3d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) { return grad_out.reshaped(in_shape_); }

}  // namespace df::nn
