// Activation layers offered to the PB2 optimization (paper Table 1):
// ReLU, LeakyReLU and SELU. Sigmoid/Tanh are exposed as free functions for
// the GRU cell and PotentialNet gather layer.
#pragma once

#include "core/gemm.h"
#include "nn/module.h"

namespace df::nn {

enum class Activation { kReLU, kLeakyReLU, kSELU };

const char* activation_name(Activation a);

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

/// Self-normalizing ELU (Klambauer et al. 2017) — the activation the
/// optimized Mid-level and Coherent Fusion models converged to (Tables 4, 5).
class SELU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  static constexpr float kScale = 1.0507009873554805f;
  static constexpr float kAlpha = 1.6732632423543772f;

 private:
  Tensor cached_input_;
};

/// Factory used by the HPO-configurable fusion layers.
std::unique_ptr<Module> make_activation(Activation a);

/// Classify a layer for eval-time GEMM fusion: when `m` is a pointwise
/// activation expressible as a fused epilogue (core/gemm.h), fill act/slope
/// and return true. The fused result is bitwise identical to running the
/// layer, so Sequential folds adjacent Dense/Conv3d + activation pairs
/// through it on the inference path.
bool epilogue_act_of(const Module* m, core::EpilogueAct* act, float* slope);

// Elementwise free functions (used inside GRU / gather, not as layers).
float sigmoid(float x);
float dsigmoid_from_y(float y);  // derivative given the *output* y
float dtanh_from_y(float y);

}  // namespace df::nn
