// First-order optimizers. Table 1 of the paper lets PB2 choose between
// Adam, AdamW, RMSprop and Adadelta for the fusion layers; all four are
// implemented with per-parameter state keyed by Parameter pointer so the
// optimizer can outlive model surgery (e.g. Coherent Fusion loading
// pre-trained heads).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/module.h"

namespace df::nn {

enum class OptimizerKind { kAdam, kAdamW, kRMSprop, kAdadelta, kSGD };

const char* optimizer_name(OptimizerKind k);

/// Serializable view of an optimizer's internal state, for mid-training
/// checkpoints: named per-parameter tensor slots (one tensor per entry of
/// params(), in params() order) plus named integer scalars (e.g. Adam's
/// step count). Checkpointing reads through the pointers to save and
/// writes through them to restore; pointers stay valid while the optimizer
/// lives and no step() reallocates state.
struct OptimizerState {
  std::vector<std::pair<std::string, std::vector<Tensor*>>> slots;
  std::vector<std::pair<std::string, int64_t*>> scalars;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, float lr) : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  /// State view for checkpointing. Materializes lazily-created slot
  /// tensors (zero-initialized), so a checkpoint taken before the first
  /// step() round-trips exactly.
  virtual OptimizerState state() { return {}; }
  void zero_grad() {
    for (Parameter* p : params_) p->grad.zero();
  }
  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
  void step() override;
  OptimizerState state() override;

 private:
  float momentum_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f, bool decoupled = false);
  void step() override;
  OptimizerState state() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  bool decoupled_;  // true => AdamW
  int64_t t_ = 0;
  std::unordered_map<Parameter*, Tensor> m_, v_;
};

class RMSprop : public Optimizer {
 public:
  RMSprop(std::vector<Parameter*> params, float lr, float alpha = 0.99f, float eps = 1e-8f);
  void step() override;
  OptimizerState state() override;

 private:
  float alpha_, eps_;
  std::unordered_map<Parameter*, Tensor> sq_;
};

class Adadelta : public Optimizer {
 public:
  Adadelta(std::vector<Parameter*> params, float lr = 1.0f, float rho = 0.9f, float eps = 1e-6f);
  void step() override;
  OptimizerState state() override;

 private:
  float rho_, eps_;
  std::unordered_map<Parameter*, Tensor> sq_, dx_;
};

/// Factory matching the Table-1 optimizer option list.
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, std::vector<Parameter*> params,
                                          float lr);

}  // namespace df::nn
