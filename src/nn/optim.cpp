#include "nn/optim.h"

#include <cmath>

namespace df::nn {

namespace {
/// Materialize one per-parameter state tensor per params entry (zero
/// tensors for parameters step() has not touched yet) and return the
/// pointers in params order.
std::vector<Tensor*> slot_tensors(std::unordered_map<Parameter*, Tensor>& store,
                                  const std::vector<Parameter*>& params) {
  std::vector<Tensor*> out;
  out.reserve(params.size());
  for (Parameter* p : params) {
    auto [it, inserted] = store.try_emplace(p, Tensor(p->value.shape()));
    out.push_back(&it->second);
  }
  return out;
}
}  // namespace

const char* optimizer_name(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::kAdam: return "Adam";
    case OptimizerKind::kAdamW: return "AdamW";
    case OptimizerKind::kRMSprop: return "RMSprop";
    case OptimizerKind::kAdadelta: return "Adadelta";
    case OptimizerKind::kSGD: return "SGD";
  }
  return "?";
}

SGD::SGD(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {}

void SGD::step() {
  for (Parameter* p : params_) {
    if (momentum_ > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
      Tensor& v = it->second;
      v *= momentum_;
      v.axpy(1.0f, p->grad);
      p->value.axpy(-lr_, v);
    } else {
      p->value.axpy(-lr_, p->grad);
    }
  }
}

OptimizerState SGD::state() {
  OptimizerState s;
  if (momentum_ > 0.0f) s.slots.emplace_back("velocity", slot_tensors(velocity_, params_));
  return s;
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay, bool decoupled)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay), decoupled_(decoupled) {}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Parameter* p : params_) {
    auto [mit, mi] = m_.try_emplace(p, Tensor(p->value.shape()));
    auto [vit, vi] = v_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& m = mit->second;
    Tensor& v = vit->second;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      float g = p->grad[i];
      if (weight_decay_ > 0.0f && !decoupled_) g += weight_decay_ * p->value[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      float update = lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f && decoupled_) update += lr_ * weight_decay_ * p->value[i];
      p->value[i] -= update;
    }
  }
}

OptimizerState Adam::state() {
  OptimizerState s;
  s.slots.emplace_back("m", slot_tensors(m_, params_));
  s.slots.emplace_back("v", slot_tensors(v_, params_));
  s.scalars.emplace_back("t", &t_);
  return s;
}

RMSprop::RMSprop(std::vector<Parameter*> params, float lr, float alpha, float eps)
    : Optimizer(std::move(params), lr), alpha_(alpha), eps_(eps) {}

void RMSprop::step() {
  for (Parameter* p : params_) {
    auto [it, inserted] = sq_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& s = it->second;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      s[i] = alpha_ * s[i] + (1.0f - alpha_) * g * g;
      p->value[i] -= lr_ * g / (std::sqrt(s[i]) + eps_);
    }
  }
}

OptimizerState RMSprop::state() {
  OptimizerState s;
  s.slots.emplace_back("sq", slot_tensors(sq_, params_));
  return s;
}

Adadelta::Adadelta(std::vector<Parameter*> params, float lr, float rho, float eps)
    : Optimizer(std::move(params), lr), rho_(rho), eps_(eps) {}

void Adadelta::step() {
  for (Parameter* p : params_) {
    auto [sit, si] = sq_.try_emplace(p, Tensor(p->value.shape()));
    auto [dit, di] = dx_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& s = sit->second;
    Tensor& d = dit->second;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      s[i] = rho_ * s[i] + (1.0f - rho_) * g * g;
      const float dx = -std::sqrt(d[i] + eps_) / std::sqrt(s[i] + eps_) * g;
      d[i] = rho_ * d[i] + (1.0f - rho_) * dx * dx;
      p->value[i] += lr_ * dx;
    }
  }
}

OptimizerState Adadelta::state() {
  OptimizerState s;
  s.slots.emplace_back("sq", slot_tensors(sq_, params_));
  s.slots.emplace_back("dx", slot_tensors(dx_, params_));
  return s;
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, std::vector<Parameter*> params,
                                          float lr) {
  switch (kind) {
    case OptimizerKind::kAdam: return std::make_unique<Adam>(std::move(params), lr);
    case OptimizerKind::kAdamW:
      return std::make_unique<Adam>(std::move(params), lr, 0.9f, 0.999f, 1e-8f, 1e-2f, true);
    case OptimizerKind::kRMSprop: return std::make_unique<RMSprop>(std::move(params), lr);
    case OptimizerKind::kAdadelta: return std::make_unique<Adadelta>(std::move(params), lr);
    case OptimizerKind::kSGD: return std::make_unique<SGD>(std::move(params), lr);
  }
  return std::make_unique<Adam>(std::move(params), lr);
}

}  // namespace df::nn
