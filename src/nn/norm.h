// Batch normalization — a T/F choice in the paper's PB2 search (Table 1;
// every optimized model ultimately turned it off, which our HPO bench also
// tends to find on the synthetic data). BatchNorm1d normalizes (B, F) per
// feature, BatchNorm3d normalizes (B, C, D, H, W) per channel.
#pragma once

#include "nn/module.h"

namespace df::nn {

class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int64_t features, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  // Folding surface for the model compiler: the eval transform is the
  // per-feature affine x -> gamma*(x-mean)*invstd + beta, fully determined
  // by these five values.
  int64_t features() const { return f_; }
  float eps() const { return eps_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t f_;
  float momentum_, eps_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;
  // caches
  Tensor xhat_;
  std::vector<float> invstd_;
};

class BatchNorm3d : public Module {
 public:
  explicit BatchNorm3d(int64_t channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  // Folding surface for the model compiler (per-channel affine at eval).
  int64_t channels() const { return c_; }
  float eps() const { return eps_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t c_;
  float momentum_, eps_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;
  Tensor xhat_;
  std::vector<float> invstd_;
};

}  // namespace df::nn
