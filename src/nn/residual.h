// Residual wrapper: y = x + inner(x). The paper's 3D-CNN exposes two
// optional residual connections to the hyper-parameter search (Fig. 1,
// "Residual Option 1/2"); wrapping the inner block keeps that a one-line
// architecture toggle.
#pragma once

#include <memory>

#include "nn/module.h"

namespace df::nn {

class Residual : public Module {
 public:
  explicit Residual(std::unique_ptr<Module> inner) : inner_(std::move(inner)) {}

  Tensor forward(const Tensor& x) override {
    Tensor y = inner_->forward(x);
    core::check_same_shape(x, y, "Residual");
    y += x;
    return y;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = inner_->backward(grad_out);
    g += grad_out;
    return g;
  }

  void collect_parameters(std::vector<Parameter*>& out) override {
    inner_->collect_parameters(out);
  }
  /// The wrapped block — the model compiler recurses through it.
  Module& inner() { return *inner_; }
  void set_training(bool t) override {
    Module::set_training(t);
    inner_->set_training(t);
  }

 private:
  std::unique_ptr<Module> inner_;
};

}  // namespace df::nn
