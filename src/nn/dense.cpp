#include "nn/dense.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df::nn {

Dense::Dense(int64_t in_features, int64_t out_features, core::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  w_ = Parameter(Tensor::uniform({in_, out_}, rng, -bound, bound), "dense.w");
  b_ = Parameter(bias ? Tensor::uniform({out_}, rng, -bound, bound) : Tensor({0}), "dense.b");
}

Tensor Dense::forward(const Tensor& x) { return forward_act(x, core::EpilogueAct::kNone); }

Tensor Dense::forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope) {
  if (x.ndim() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense: expected (B," + std::to_string(in_) + "), got " +
                                x.shape_str());
  }
  if (training_) cached_input_ = x;
  const int64_t batch = x.dim(0);
  if (!training_ && observer_ != nullptr) observer_->observe(x.data(), x.numel());
  Tensor y = Tensor::uninit({batch, out_});
  if (!training_ && quant_ != nullptr) {
    // Dynamic per-row activation quantization: each batch row (one pose)
    // gets its own runtime quant step from its own |x| range. Pooled graph
    // activations scale with ligand size, so a single calibrated step
    // either clips large poses or starves small ones of levels; a per-row
    // step is exact for whatever range the row actually has. Serial and
    // data-dependent only on this row's bytes — thread-count invariant.
    const QuantizedDense& q = *quant_;
    const int64_t k4 = (in_ + 3) & ~int64_t{3};
    thread_local std::vector<uint8_t> xq;
    thread_local std::vector<float> row_scale, row_inv;
    xq.resize(static_cast<size_t>(core::quantized_a_bytes_s8(batch, in_)));
    row_scale.resize(static_cast<size_t>(batch));
    row_inv.resize(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      const float* row = x.data() + i * in_;
      float amax = 0.0f;
      for (int64_t p = 0; p < in_; ++p) amax = std::max(amax, std::fabs(row[p]));
      const float s = amax > 0.0f ? amax / 127.0f : 1.0f;
      row_scale[static_cast<size_t>(i)] = s;
      row_inv[static_cast<size_t>(i)] = 1.0f / s;
    }
    core::quantize_a_u8(batch, in_, x.data(), in_, row_inv.data(), 1.0f, xq.data());
    core::QuantEpilogue qep;
    qep.act = act;
    qep.leaky_slope = leaky_slope;
    qep.scale_col = q.scales;
    qep.scale_row = row_scale.data();
    qep.bias_col = has_bias_ ? b_.value.data() : nullptr;
    qep.comp_col = q.comp;
    core::gemm_u8s8f32(batch, out_, in_, xq.data(), k4, q.panels, y.data(), out_, qep);
    return y;
  }
  core::Epilogue ep;
  ep.act = act;
  ep.bias_col = has_bias_ ? b_.value.data() : nullptr;
  ep.leaky_slope = leaky_slope;
  const bool fused = has_bias_ || act != core::EpilogueAct::kNone;
  if (!training_ && pb_.image != nullptr) {
    core::sgemm_prepacked(batch, x.data(), in_, pb_, y.data(), out_, /*accumulate=*/false,
                          fused ? &ep : nullptr);
  } else {
    core::sgemm(false, false, batch, out_, in_, x.data(), in_, w_.value.data(), out_, y.data(),
                out_, /*accumulate=*/false, fused ? &ep : nullptr);
  }
  return y;
}

void Dense::prepack() {
  packed_own_.resize(static_cast<size_t>(core::packed_b_floats(in_, out_)));
  core::pack_b_full(false, in_, out_, w_.value.data(), out_, packed_own_.data());
  pb_ = {in_, out_, packed_own_.data()};
}

void Dense::attach_prepacked(const float* image) {
  packed_own_.clear();
  pb_ = {in_, out_, image};
}

void Dense::attach_quantized(QuantizedDense q) {
  auto owned = std::make_unique<QuantizedDense>(std::move(q));
  if (owned->panels == nullptr) owned->panels = owned->own_panels.data();
  if (owned->scales == nullptr) owned->scales = owned->own_scales.data();
  if (owned->comp == nullptr) owned->comp = owned->own_comp.data();
  quant_ = std::move(owned);
}

void Dense::attach_quantized_views(float act_scale, const int8_t* panels, const float* scales,
                                   const int32_t* comp) {
  auto q = std::make_unique<QuantizedDense>();
  q->act_scale = act_scale;
  q->panels = panels;
  q->scales = scales;
  q->comp = comp;
  quant_ = std::move(q);
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::runtime_error("Dense::backward before forward");
  // dW = x^T g, db = colsum g, dx = g W^T
  w_.grad += cached_input_.matmul_tn(grad_out);
  if (has_bias_) {
    const int64_t batch = grad_out.dim(0);
    for (int64_t i = 0; i < batch; ++i)
      for (int64_t j = 0; j < out_; ++j) b_.grad[j] += grad_out.at(i, j);
  }
  return grad_out.matmul_nt(w_.value);
}

void Dense::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

}  // namespace df::nn
