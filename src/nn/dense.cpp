#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

namespace df::nn {

Dense::Dense(int64_t in_features, int64_t out_features, core::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  w_ = Parameter(Tensor::uniform({in_, out_}, rng, -bound, bound), "dense.w");
  b_ = Parameter(bias ? Tensor::uniform({out_}, rng, -bound, bound) : Tensor({0}), "dense.b");
}

Tensor Dense::forward(const Tensor& x) { return forward_act(x, core::EpilogueAct::kNone); }

Tensor Dense::forward_act(const Tensor& x, core::EpilogueAct act, float leaky_slope) {
  if (x.ndim() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense: expected (B," + std::to_string(in_) + "), got " +
                                x.shape_str());
  }
  if (training_) cached_input_ = x;
  const int64_t batch = x.dim(0);
  Tensor y = Tensor::uninit({batch, out_});
  core::Epilogue ep;
  ep.act = act;
  ep.bias_col = has_bias_ ? b_.value.data() : nullptr;
  ep.leaky_slope = leaky_slope;
  const bool fused = has_bias_ || act != core::EpilogueAct::kNone;
  if (!training_ && pb_.image != nullptr) {
    core::sgemm_prepacked(batch, x.data(), in_, pb_, y.data(), out_, /*accumulate=*/false,
                          fused ? &ep : nullptr);
  } else {
    core::sgemm(false, false, batch, out_, in_, x.data(), in_, w_.value.data(), out_, y.data(),
                out_, /*accumulate=*/false, fused ? &ep : nullptr);
  }
  return y;
}

void Dense::prepack() {
  packed_own_.resize(static_cast<size_t>(core::packed_b_floats(in_, out_)));
  core::pack_b_full(false, in_, out_, w_.value.data(), out_, packed_own_.data());
  pb_ = {in_, out_, packed_own_.data()};
}

void Dense::attach_prepacked(const float* image) {
  packed_own_.clear();
  pb_ = {in_, out_, image};
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::runtime_error("Dense::backward before forward");
  // dW = x^T g, db = colsum g, dx = g W^T
  w_.grad += cached_input_.matmul_tn(grad_out);
  if (has_bias_) {
    const int64_t batch = grad_out.dim(0);
    for (int64_t i = 0; i < batch; ++i)
      for (int64_t j = 0; j < out_; ++j) b_.grad[j] += grad_out.at(i, j);
  }
  return grad_out.matmul_nt(w_.value);
}

void Dense::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

}  // namespace df::nn
