// Inverted dropout. The paper's optimized fusion models use three dropout
// rates (early/mid/late, Tables 4–5); rate 0 collapses to identity so HPO
// can search the rate continuously without special-casing.
//
// Two mask-RNG modes:
//  * Default mode: masks are drawn, in arrival order, from a private
//    stream forked from the construction Rng. The fork is BY VALUE — the
//    layer never keeps a reference to the constructor argument, so model
//    factories are free to build from stack-local Rngs (the standard
//    replica-factory pattern) without dangling anything.
//  * Keyed mode (KeyedDropoutScope): while a scope is active on the calling
//    thread, every Dropout::forward derives a private counter-based stream
//    from (scope key, forward ordinal) via core::derive_stream and never
//    touches the shared engine. Because the ordinal counts Dropout forwards
//    within the scope — and a model's layer order is fixed — the masks are
//    a pure function of the key. The training engine keys each sample on
//    (seed, epoch, position), which is what makes data-parallel training
//    bit-identical at any thread count and replayable across kill/resume.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "nn/module.h"

namespace df::nn {

/// Activate keyed dropout on the current thread for the scope's lifetime.
/// Scopes nest (the inner key wins); each scope restarts the ordinal at 0.
class KeyedDropoutScope {
 public:
  explicit KeyedDropoutScope(uint64_t key);
  ~KeyedDropoutScope();
  KeyedDropoutScope(const KeyedDropoutScope&) = delete;
  KeyedDropoutScope& operator=(const KeyedDropoutScope&) = delete;

 private:
  bool prev_active_;
  uint64_t prev_key_, prev_ordinal_;
};

class Dropout : public Module {
 public:
  Dropout(float rate, core::Rng& rng) : rate_(rate), rng_(rng.fork()) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  float rate() const { return rate_; }

 private:
  float rate_;
  core::Rng rng_;  // private stream; no lifetime tie to the ctor argument
  Tensor mask_;
};

}  // namespace df::nn
