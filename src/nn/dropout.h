// Inverted dropout. The paper's optimized fusion models use three dropout
// rates (early/mid/late, Tables 4–5); rate 0 collapses to identity so HPO
// can search the rate continuously without special-casing.
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace df::nn {

class Dropout : public Module {
 public:
  Dropout(float rate, core::Rng& rng) : rate_(rate), rng_(&rng) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  float rate() const { return rate_; }

 private:
  float rate_;
  core::Rng* rng_;
  Tensor mask_;
};

}  // namespace df::nn
