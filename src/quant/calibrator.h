// Activation-range calibration for post-training int8 quantization.
//
// The calibrator hangs one RangeObserver on every Dense/Conv3d GEMM layer
// (canonical compile::walk_structure order) and replays a calibration set
// through the eval forward, so each observer sees exactly the tensor the
// quantized kernel will later have to represent. Two passes:
//
//   1. max-abs     — each observer records its global max |x|.
//   2. histogram   — a fixed-range histogram of |x| over [0, max_abs];
//                    the clipped range is the smallest bound covering
//                    `percentile` percent of observed values. Percentile
//                    clipping discards the far outliers that would other-
//                    wise stretch the int8 step size over empty range.
//
// Determinism: the calibration subset is selected by keying
// core::derive_stream(seed, kCalibSample, index) per *dataset index* and
// taking the smallest keys — a pure function of (seed, dataset size,
// sample count), independent of iteration or thread order. Observation
// happens at batch level outside the layers' parallel regions, and layer
// inputs are bitwise thread-count-independent (the repo-wide replica
// contract), so the resulting scales are bitwise identical at any compute
// pool width. tests/test_quant.cpp pins this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "compile/model_compiler.h"
#include "models/regressor.h"
#include "nn/observer.h"

namespace df::quant {

struct CalibConfig {
  uint64_t seed = 0;         // stream root for the subset selection
  int64_t sample_size = 16;  // complexes drawn from the calibration dataset
  float percentile = 99.9f;  // |x| coverage; >= 100 disables clipping
  int histogram_bins = 2048;
};

/// Deterministic calibration subset of `sample_size` indices out of
/// [0, dataset_size): the indices whose derive_stream keys are smallest,
/// returned in ascending index order.
std::vector<int64_t> select_calibration_indices(uint64_t seed, int64_t dataset_size,
                                                int64_t sample_size);

/// Per-layer activation range estimator (see file comment for the phases).
class RangeObserver : public nn::ActivationObserver {
 public:
  explicit RangeObserver(const CalibConfig& cfg) : cfg_(cfg) {}

  void observe(const float* x, int64_t n) override;
  /// Switch to the histogram phase; range [0, max_abs] is frozen now.
  void begin_histogram();

  float max_abs() const { return max_abs_; }
  int64_t observed() const { return observed_; }
  /// Percentile-clipped |x| bound: max_abs when clipping is disabled, no
  /// histogram pass ran, or the layer never saw a nonzero value.
  float clipped_max() const;

 private:
  CalibConfig cfg_;
  float max_abs_ = 0.0f;
  int64_t observed_ = 0;
  bool histogram_phase_ = false;
  std::vector<int64_t> hist_;
  int64_t hist_total_ = 0;
};

/// Owns the observers and their attachment to a model's GEMM layers.
/// Lifecycle: attach -> eval pass -> begin_histogram -> eval pass ->
/// detach (or destruction; the destructor detaches).
class Calibrator {
 public:
  explicit Calibrator(CalibConfig cfg = {}) : cfg_(cfg) {}
  ~Calibrator() { detach(); }
  Calibrator(const Calibrator&) = delete;
  Calibrator& operator=(const Calibrator&) = delete;

  /// Install one observer per Dense/Conv3d of `model`, in canonical walk
  /// order. The model must stay alive and structurally unchanged until
  /// detach().
  void attach(models::Regressor& model);
  /// Remove the observers; the range estimates stay readable.
  void detach();
  /// Switch every observer to the histogram phase.
  void begin_histogram();

  const CalibConfig& config() const { return cfg_; }
  size_t dense_count() const { return dense_obs_.size(); }
  size_t conv_count() const { return conv_obs_.size(); }
  const RangeObserver& dense_observer(size_t i) const { return *dense_obs_[i]; }
  const RangeObserver& conv_observer(size_t i) const { return *conv_obs_[i]; }

 private:
  CalibConfig cfg_;
  compile::StructureWalk walk_;
  models::Regressor* model_ = nullptr;
  std::vector<std::unique_ptr<RangeObserver>> dense_obs_;
  std::vector<std::unique_ptr<RangeObserver>> conv_obs_;
};

}  // namespace df::quant
