// Post-training int8 quantization pass (the tentpole of the quant
// subsystem). quantize_model calibrates activation ranges by replaying a
// calibration set through the eval forward (quant/calibrator.h), derives
// per-output-channel symmetric weight scales, and attaches owned int8
// execution state (core/gemm_s8.h images) to every eligible Dense/Conv3d —
// after which the layers' eval forwards run the int8 GEMM automatically.
//
// Activation quantization is hybrid:
//   * Conv3d uses the static calibrated step — voxel-derived inputs are
//     range-stable across poses, and the weight operand is prequantized;
//   * Dense quantizes dynamically, one runtime step per batch row —
//     pooled graph activations scale with ligand size, so a static step
//     would clip large poses or starve small ones of levels. The
//     calibrated dense ranges are still recorded (diagnostics, artifact
//     stability), just not read on the hot path.
//
// What stays fp32, by design:
//   * final regression heads (Dense with out_features() == 1): one GEMM
//     row of work, and the last place to spend accuracy budget;
//   * the SG-CNN graph convolutions (GatedGraphConv / Gather) — their
//     operand shapes depend on the per-request graph, so there is no
//     weight image to prequantize (same reason they are never prepacked);
//   * everything in training mode — quantization is serving-only.
//
// Call after compile::ModelCompiler::compile (BatchNorm must be folded so
// the observed ranges match the weights actually used for inference).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "models/regressor.h"
#include "quant/calibrator.h"

namespace df::quant {

struct QuantizeOptions {
  bool quantize_dense = true;
  bool quantize_conv = true;
  /// Keep Dense layers with out_features() == 1 (regression heads) fp32.
  bool keep_heads_fp32 = true;
  /// Compile-time cost model: skip Conv3d layers with fewer output
  /// channels than this — their GEMM is too narrow to amortize the
  /// per-sample vol2col B-operand quantization pass, so int8 runs them
  /// *slower* than fp32 (the 0.87x fusion case, docs/PERF.md int8
  /// section). 24 keeps every Table-3-scale layer (32/64/128 filters)
  /// quantized while leaving tiny bench/test sub-models fp32
  /// automatically. 0 disables the model (quantize every conv).
  int min_conv_out_channels_for_int8 = 24;
  CalibConfig calib;
};

struct QuantizeReport {
  int quantized_dense = 0;
  int quantized_conv = 0;
  int kept_fp32 = 0;  // eligible GEMM layers deliberately left fp32
  /// Conv3d layers the cost model skipped (counted in kept_fp32 too);
  /// indices are positions in the model's structure-walk conv order.
  int skipped_conv = 0;
  std::vector<int> skipped_conv_layers;
  int64_t calibration_samples = 0;
};

/// Quantize `model` in place. `calib` is the calibration set, evaluated
/// twice through predict_batch (max-abs pass, then histogram pass). An
/// empty calibration set leaves every activation scale at the 1.0 default
/// — legal but inaccurate; pass real samples. Any previously attached
/// quantized state is replaced. Deterministic: same model, samples and
/// config produce bitwise-identical scales and images at any thread count.
QuantizeReport quantize_model(models::Regressor& model,
                              const std::vector<const data::Sample*>& calib,
                              const QuantizeOptions& opts = {});

}  // namespace df::quant
