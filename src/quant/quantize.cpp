#include "quant/quantize.h"

#include <cmath>
#include <utility>
#include <vector>

#include "core/gemm_s8.h"
#include "nn/conv3d.h"
#include "nn/dense.h"

namespace df::quant {

namespace {

float act_scale_of(const RangeObserver& obs) {
  const float cm = obs.clipped_max();
  return cm > 0.0f ? cm / 127.0f : 1.0f;
}

// Per-output symmetric weight scales for an (n_out) family of weight
// vectors; `wmax` holds max |W| per output. A zero row quantizes to all
// zeros under any scale; 1.0 keeps the arithmetic well-defined.
void weight_scales(const std::vector<float>& wmax, std::vector<float>& scale,
                   std::vector<float>& inv) {
  const size_t n = wmax.size();
  scale.resize(n);
  inv.resize(n);
  for (size_t j = 0; j < n; ++j) {
    const float s = wmax[j] > 0.0f ? wmax[j] / 127.0f : 1.0f;
    scale[j] = s;
    inv[j] = 1.0f / s;
  }
}

void quantize_dense_layer(nn::Dense& d, const RangeObserver& obs) {
  const int64_t in = d.in_features(), out = d.out_features();
  const float* W = d.weight().value.data();  // (in, out)
  std::vector<float> wmax(static_cast<size_t>(out), 0.0f);
  for (int64_t i = 0; i < in; ++i) {
    const float* row = W + i * out;
    for (int64_t j = 0; j < out; ++j) {
      const float a = std::fabs(row[j]);
      if (a > wmax[static_cast<size_t>(j)]) wmax[static_cast<size_t>(j)] = a;
    }
  }
  std::vector<float> wscale, winv;
  weight_scales(wmax, wscale, winv);

  nn::QuantizedDense q;
  // The layer quantizes its activations dynamically (per batch row), so the
  // dequant scales carry the weight factor only; the calibrated range is
  // recorded for diagnostics and artifact stability.
  q.act_scale = act_scale_of(obs);
  q.own_panels.resize(static_cast<size_t>(core::packed_b_bytes_s8(in, out)));
  q.own_comp.resize(static_cast<size_t>(out));
  core::pack_quantize_b_s8(in, out, W, out, winv.data(), 0.0f, q.own_panels.data(),
                           q.own_comp.data());
  q.own_scales = wscale;
  d.attach_quantized(std::move(q));
}

void quantize_conv_layer(nn::Conv3d& c, const RangeObserver& obs) {
  const int64_t cout = c.out_channels();
  const int64_t K = c.in_channels() * c.kernel() * c.kernel() * c.kernel();
  const float* W = c.weight().value.data();  // (cout, K) row-major
  std::vector<float> wmax(static_cast<size_t>(cout), 0.0f);
  for (int64_t co = 0; co < cout; ++co) {
    const float* row = W + co * K;
    float m = 0.0f;
    for (int64_t p = 0; p < K; ++p) {
      const float a = std::fabs(row[p]);
      if (a > m) m = a;
    }
    wmax[static_cast<size_t>(co)] = m;
  }
  std::vector<float> wscale, winv;
  weight_scales(wmax, wscale, winv);

  nn::QuantizedConv q;
  q.act_scale = act_scale_of(obs);
  q.own_wu8.resize(static_cast<size_t>(core::quantized_a_bytes_s8(cout, K)));
  core::quantize_a_u8(cout, K, W, K, winv.data(), 0.0f, q.own_wu8.data());
  q.own_scales.resize(static_cast<size_t>(cout));
  for (int64_t co = 0; co < cout; ++co) {
    q.own_scales[static_cast<size_t>(co)] = q.act_scale * wscale[static_cast<size_t>(co)];
  }
  c.attach_quantized(std::move(q));
}

}  // namespace

QuantizeReport quantize_model(models::Regressor& model,
                              const std::vector<const data::Sample*>& calib,
                              const QuantizeOptions& opts) {
  model.set_training(false);
  compile::StructureWalk w = compile::walk_structure(model);

  // Calibration must observe the fp32 forward: clear any previous
  // quantized state so a re-quantize does not calibrate against itself.
  for (nn::Dense* d : w.dense) d->clear_quantized();
  for (nn::Conv3d* c : w.conv) c->clear_quantized();

  Calibrator cal(opts.calib);
  cal.attach(model);
  if (!calib.empty()) {
    (void)model.predict_batch(calib);
    cal.begin_histogram();
    (void)model.predict_batch(calib);
  }
  cal.detach();

  QuantizeReport rep;
  rep.calibration_samples = static_cast<int64_t>(calib.size());
  for (size_t i = 0; i < w.dense.size(); ++i) {
    nn::Dense* d = w.dense[i];
    if (!opts.quantize_dense || (opts.keep_heads_fp32 && d->out_features() == 1)) {
      ++rep.kept_fp32;
      continue;
    }
    quantize_dense_layer(*d, cal.dense_observer(i));
    ++rep.quantized_dense;
  }
  for (size_t i = 0; i < w.conv.size(); ++i) {
    if (!opts.quantize_conv) {
      ++rep.kept_fp32;
      continue;
    }
    // Cost model: a conv's int8 win scales with output channels (GEMM
    // rows per vol2col column), but the per-sample B-operand quantization
    // cost does not — too-narrow layers lose net. Leave them fp32.
    if (opts.min_conv_out_channels_for_int8 > 0 &&
        w.conv[i]->out_channels() < opts.min_conv_out_channels_for_int8) {
      ++rep.kept_fp32;
      ++rep.skipped_conv;
      rep.skipped_conv_layers.push_back(static_cast<int>(i));
      continue;
    }
    quantize_conv_layer(*w.conv[i], cal.conv_observer(i));
    ++rep.quantized_conv;
  }
  return rep;
}

}  // namespace df::quant
