#include "quant/calibrator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/rng.h"
#include "nn/conv3d.h"
#include "nn/dense.h"

namespace df::quant {

std::vector<int64_t> select_calibration_indices(uint64_t seed, int64_t dataset_size,
                                                int64_t sample_size) {
  if (dataset_size <= 0 || sample_size <= 0) return {};
  if (sample_size >= dataset_size) {
    std::vector<int64_t> all(static_cast<size_t>(dataset_size));
    for (int64_t i = 0; i < dataset_size; ++i) all[static_cast<size_t>(i)] = i;
    return all;
  }
  std::vector<std::pair<uint64_t, int64_t>> keyed(static_cast<size_t>(dataset_size));
  for (int64_t i = 0; i < dataset_size; ++i) {
    keyed[static_cast<size_t>(i)] = {
        core::derive_stream(seed, core::stream_tag::kCalibSample, static_cast<uint64_t>(i)), i};
  }
  // splitmix keys are distinct in practice; the index tiebreak makes the
  // selection a total order regardless.
  std::nth_element(keyed.begin(), keyed.begin() + static_cast<long>(sample_size), keyed.end());
  std::vector<int64_t> out(static_cast<size_t>(sample_size));
  for (int64_t i = 0; i < sample_size; ++i) out[static_cast<size_t>(i)] = keyed[static_cast<size_t>(i)].second;
  std::sort(out.begin(), out.end());
  return out;
}

void RangeObserver::observe(const float* x, int64_t n) {
  observed_ += n;
  if (!histogram_phase_) {
    float m = max_abs_;
    for (int64_t i = 0; i < n; ++i) {
      const float a = std::fabs(x[i]);
      if (a > m) m = a;
    }
    max_abs_ = m;
    return;
  }
  if (hist_.empty() || max_abs_ <= 0.0f) return;
  const int bins = static_cast<int>(hist_.size());
  const float inv_width = static_cast<float>(bins) / max_abs_;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    int b = static_cast<int>(a * inv_width);
    if (b >= bins) b = bins - 1;  // a == max_abs lands in the top bin
    ++hist_[static_cast<size_t>(b)];
    ++hist_total_;
  }
}

void RangeObserver::begin_histogram() {
  histogram_phase_ = true;
  if (cfg_.percentile < 100.0f && cfg_.histogram_bins > 0 && max_abs_ > 0.0f) {
    hist_.assign(static_cast<size_t>(cfg_.histogram_bins), 0);
    hist_total_ = 0;
  }
}

float RangeObserver::clipped_max() const {
  if (hist_.empty() || hist_total_ == 0 || max_abs_ <= 0.0f) return max_abs_;
  // Smallest bin upper edge whose cumulative count covers the percentile.
  // Integer threshold arithmetic in double: exact for any realistic count.
  const double need = static_cast<double>(hist_total_) * (cfg_.percentile / 100.0);
  const int bins = static_cast<int>(hist_.size());
  int64_t cum = 0;
  for (int b = 0; b < bins; ++b) {
    cum += hist_[static_cast<size_t>(b)];
    if (static_cast<double>(cum) >= need) {
      return max_abs_ * static_cast<float>(b + 1) / static_cast<float>(bins);
    }
  }
  return max_abs_;
}

void Calibrator::attach(models::Regressor& model) {
  detach();
  model_ = &model;
  walk_ = compile::walk_structure(model);
  dense_obs_.clear();
  conv_obs_.clear();
  for (nn::Dense* d : walk_.dense) {
    dense_obs_.push_back(std::make_unique<RangeObserver>(cfg_));
    d->set_observer(dense_obs_.back().get());
  }
  for (nn::Conv3d* c : walk_.conv) {
    conv_obs_.push_back(std::make_unique<RangeObserver>(cfg_));
    c->set_observer(conv_obs_.back().get());
  }
}

void Calibrator::detach() {
  if (model_ == nullptr) return;
  for (nn::Dense* d : walk_.dense) d->set_observer(nullptr);
  for (nn::Conv3d* c : walk_.conv) c->set_observer(nullptr);
  model_ = nullptr;
  walk_ = {};
}

void Calibrator::begin_histogram() {
  for (auto& o : dense_obs_) o->begin_histogram();
  for (auto& o : conv_obs_) o->begin_histogram();
}

}  // namespace df::quant
