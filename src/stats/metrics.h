// Regression metrics reported in the paper's Table 6 (RMSE, MAE, R²,
// Pearson R, Spearman R) and the correlation analyses of Table 8.
#pragma once

#include <span>
#include <vector>

namespace df::stats {

float rmse(std::span<const float> pred, std::span<const float> truth);
float mae(std::span<const float> pred, std::span<const float> truth);
/// Coefficient of determination (1 - SS_res / SS_tot).
float r_squared(std::span<const float> pred, std::span<const float> truth);
float pearson(std::span<const float> a, std::span<const float> b);
/// Spearman rank correlation (average ranks for ties).
float spearman(std::span<const float> a, std::span<const float> b);

/// Fractional ranks with tie averaging (exposed for property tests).
std::vector<float> ranks(std::span<const float> v);

}  // namespace df::stats
