#include "stats/classification.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace df::stats {

std::vector<PRPoint> pr_curve(std::span<const float> scores, const std::vector<bool>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("pr_curve: size mismatch or empty");
  }
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  const int total_pos = static_cast<int>(std::count(labels.begin(), labels.end(), true));
  std::vector<PRPoint> curve;
  int tp = 0, fp = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]]) ++tp;
    else ++fp;
    // Emit a point at each distinct threshold (after ties are absorbed).
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) continue;
    PRPoint p;
    p.threshold = scores[order[i]];
    p.precision = static_cast<float>(tp) / static_cast<float>(tp + fp);
    p.recall = total_pos > 0 ? static_cast<float>(tp) / static_cast<float>(total_pos) : 0.0f;
    p.f1 = (p.precision + p.recall) > 0 ? 2 * p.precision * p.recall / (p.precision + p.recall)
                                        : 0.0f;
    curve.push_back(p);
  }
  return curve;
}

float best_f1(std::span<const float> scores, const std::vector<bool>& labels) {
  float best = 0.0f;
  for (const PRPoint& p : pr_curve(scores, labels)) best = std::max(best, p.f1);
  return best;
}

float average_precision(std::span<const float> scores, const std::vector<bool>& labels) {
  const std::vector<PRPoint> curve = pr_curve(scores, labels);
  float ap = 0.0f, prev_recall = 0.0f;
  for (const PRPoint& p : curve) {
    ap += p.precision * (p.recall - prev_recall);
    prev_recall = p.recall;
  }
  return ap;
}

float cohen_kappa(const std::vector<bool>& pred, const std::vector<bool>& truth) {
  if (pred.size() != truth.size() || pred.empty()) {
    throw std::invalid_argument("cohen_kappa: size mismatch or empty");
  }
  const double n = static_cast<double>(pred.size());
  double agree = 0, pred_pos = 0, true_pos = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++agree;
    if (pred[i]) ++pred_pos;
    if (truth[i]) ++true_pos;
  }
  const double po = agree / n;
  const double pe = (pred_pos / n) * (true_pos / n) +
                    ((n - pred_pos) / n) * ((n - true_pos) / n);
  if (pe >= 1.0) return 0.0f;
  return static_cast<float>((po - pe) / (1.0 - pe));
}

float positive_rate(const std::vector<bool>& labels) {
  if (labels.empty()) return 0.0f;
  return static_cast<float>(std::count(labels.begin(), labels.end(), true)) /
         static_cast<float>(labels.size());
}

}  // namespace df::stats
