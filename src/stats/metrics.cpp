#include "stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace df::stats {

namespace {
void check(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}
}  // namespace

float rmse(std::span<const float> pred, std::span<const float> truth) {
  check(pred, truth);
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(pred.size())));
}

float mae(std::span<const float> pred, std::span<const float> truth) {
  check(pred, truth);
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) acc += std::abs(pred[i] - truth[i]);
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

float r_squared(std::span<const float> pred, std::span<const float> truth) {
  check(pred, truth);
  double mean = 0.0;
  for (float t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return 0.0f;
  return static_cast<float>(1.0 - ss_res / ss_tot);
}

float pearson(std::span<const float> a, std::span<const float> b) {
  check(a, b);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0f;
  return static_cast<float>(cov / std::sqrt(va * vb));
}

std::vector<float> ranks(std::span<const float> v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<float> r(v.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const float avg = static_cast<float>(i + j) / 2.0f + 1.0f;
    for (size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

float spearman(std::span<const float> a, std::span<const float> b) {
  check(a, b);
  const std::vector<float> ra = ranks(a), rb = ranks(b);
  return pearson(ra, rb);
}

}  // namespace df::stats
