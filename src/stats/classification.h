// Binary-classification analysis used by the paper's Figures 2 and 6:
// precision/recall curves over a continuous score, F1, average precision,
// and Cohen's kappa against a frequency-matched random classifier (Eq. 2).
#pragma once

#include <span>
#include <vector>

namespace df::stats {

struct PRPoint {
  float threshold;
  float precision;
  float recall;
  float f1;
};

/// Sweep thresholds over the (descending) unique score values. Higher score
/// must mean "more positive".
std::vector<PRPoint> pr_curve(std::span<const float> scores, const std::vector<bool>& labels);

/// Maximum F1 over the curve.
float best_f1(std::span<const float> scores, const std::vector<bool>& labels);

/// Area under the P/R curve by step-wise interpolation (average precision).
float average_precision(std::span<const float> scores, const std::vector<bool>& labels);

/// Cohen's kappa for hard predictions.
float cohen_kappa(const std::vector<bool>& pred, const std::vector<bool>& truth);

/// Expected precision of a random classifier = positive prevalence (the
/// dashed line in the paper's P/R plots).
float positive_rate(const std::vector<bool>& labels);

}  // namespace df::stats
