// ConveyorLC-equivalent pipeline (Zhang et al.): four stages mirroring
// CDT1Receptor (receptor prep), CDT2Ligand (ligand prep), CDT3Docking
// (Vina-like MC docking) and CDT4mmgbsa (MM/GBSA rescoring of the best
// poses). Stage timings are recorded so the cost ratios the paper reports
// (docking ~1 min/compound/core, MM/GBSA ~10 min/pose/core, Fusion much
// faster) can be measured rather than asserted.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "chem/ligand_prep.h"
#include "dock/docking.h"
#include "dock/mmgbsa.h"

namespace df::dock {

struct ReceptorModel {
  std::vector<Atom> pocket;
  core::Vec3 site_center;
};

struct PipelineConfig {
  chem::LigandPrepConfig ligand_prep;
  DockingConfig docking;
  MmGbsaConfig mmgbsa;
  /// Rescore only the best `rescore_top_n` poses (MM/GBSA is ~600x slower
  /// than a docking evaluation; the paper rescored at most 10).
  int rescore_top_n = 3;
  bool run_mmgbsa = true;
};

struct PipelineResult {
  chem::PreparedLigand ligand;
  std::vector<Pose> poses;            // Vina scores attached
  std::vector<Molecule> conformers;   // pose geometry
  std::vector<float> mmgbsa_scores;   // parallel to the first rescore_top_n poses
  double ligand_prep_seconds = 0;
  double docking_seconds = 0;
  double mmgbsa_seconds = 0;
};

class ConveyorLC {
 public:
  explicit ConveyorLC(PipelineConfig cfg = {}) : cfg_(cfg) {}

  /// CDT1Receptor: center the site and (trivially here) protonate.
  static ReceptorModel prepare_receptor(std::vector<Atom> pocket);

  /// CDT2..CDT4 for one raw ligand against one receptor. Returns nullopt if
  /// ligand prep rejects the compound (salt-only, metal, too heavy).
  std::optional<PipelineResult> run(const chem::Molecule& raw_ligand, const ReceptorModel& receptor,
                                    core::Rng& rng) const;

  const PipelineConfig& config() const { return cfg_; }

 private:
  PipelineConfig cfg_;
};

}  // namespace df::dock
