#include "dock/scoring.h"

#include <cmath>

namespace df::dock {

namespace {
constexpr float kCutoff = 8.0f;

float hydrophobic_ramp(float d) {
  // 1 below 0.5 A surface distance, linear to 0 at 1.5 A.
  if (d <= 0.5f) return 1.0f;
  if (d >= 1.5f) return 0.0f;
  return 1.5f - d;
}

float hbond_ramp(float d) {
  // 1 below -0.7 A, linear to 0 at 0.
  if (d <= -0.7f) return 1.0f;
  if (d >= 0.0f) return 0.0f;
  return -d / 0.7f;
}
}  // namespace

TermBreakdown score_terms(const Molecule& ligand, const std::vector<Atom>& pocket) {
  TermBreakdown t;
  for (const Atom& la : ligand.atoms()) {
    const chem::ElementInfo& li = chem::element_info(la.element);
    for (const Atom& pa : pocket) {
      const float r = la.pos.dist(pa.pos);
      if (r > kCutoff) continue;
      const chem::ElementInfo& pi = chem::element_info(pa.element);
      const float d = r - (li.vdw_radius + pi.vdw_radius);  // surface distance
      t.gauss1 += std::exp(-(d / 0.5f) * (d / 0.5f));
      const float g2 = (d - 3.0f) / 2.0f;
      t.gauss2 += std::exp(-g2 * g2);
      if (d < 0.0f) t.repulsion += d * d;
      if (li.hydrophobic && pi.hydrophobic) t.hydrophobic += hydrophobic_ramp(d);
      const bool l_donor = li.hbond_donor_heavy && la.implicit_h > 0;
      const bool p_donor = pi.hbond_donor_heavy;
      if ((l_donor && pi.hbond_acceptor) || (p_donor && li.hbond_acceptor)) {
        t.hbond += hbond_ramp(d);
      }
      if (la.formal_charge != 0 && pa.formal_charge != 0) {
        // Distance-dependent dielectric (epsilon = 4r), kcal/mol units.
        t.electrostatic += 332.0f * static_cast<float>(la.formal_charge) *
                           static_cast<float>(pa.formal_charge) / (4.0f * r * r);
      }
    }
  }
  return t;
}

float vina_score(const Molecule& ligand, const std::vector<Atom>& pocket, const VinaWeights& w) {
  const TermBreakdown t = score_terms(ligand, pocket);
  const float inter = w.gauss1 * t.gauss1 + w.gauss2 * t.gauss2 + w.repulsion * t.repulsion +
                      w.hydrophobic * t.hydrophobic + w.hbond * t.hbond;
  const float rotors = static_cast<float>(ligand.num_rotatable_bonds());
  return inter / (1.0f + w.rotor * rotors);
}

float score_to_pk(float score_kcal) {
  // pK = -dG / (2.303 RT); RT = 0.593 kcal/mol at 298 K.
  return -score_kcal / (2.303f * 0.593f);
}

}  // namespace df::dock
