#include "dock/pose.h"

namespace df::dock {

Molecule Pose::apply(const Molecule& ligand, const Vec3& box_center) const {
  Molecule m = ligand;
  const Vec3 c = m.centroid();
  m.rotate(c, axis, angle);
  m.translate(box_center + translation - c);
  return m;
}

Pose perturb(const Pose& p, core::Rng& rng, float sigma_t, float sigma_r) {
  Pose q = p;
  q.translation += Vec3{rng.normal(0, sigma_t), rng.normal(0, sigma_t), rng.normal(0, sigma_t)};
  // Compose with a small random rotation: approximate by re-randomizing the
  // axis slightly and adding angle noise (adequate for a rigid MC search).
  Vec3 da{rng.normal(0, 0.3f), rng.normal(0, 0.3f), rng.normal(0, 0.3f)};
  q.axis = (q.axis + da).normalized();
  q.angle += rng.normal(0, sigma_r);
  return q;
}

Pose random_pose(core::Rng& rng, float box_half) {
  Pose p;
  p.translation = Vec3{rng.uniform(-box_half, box_half), rng.uniform(-box_half, box_half),
                       rng.uniform(-box_half, box_half)};
  p.axis = Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  p.angle = rng.uniform(0.0f, 6.2831853f);
  return p;
}

}  // namespace df::dock
