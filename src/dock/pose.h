// Rigid-body pose: translation + axis-angle rotation applied to a ligand
// conformer, plus the Monte-Carlo perturbation move used by the docking
// search. Poses are what ConveyorLC's CDT3Docking emits (up to 10 per
// compound per site) and what the screening pipeline scores by the billions.
#pragma once

#include "chem/molecule.h"
#include "core/rng.h"
#include "core/vec3.h"

namespace df::dock {

using chem::Molecule;
using core::Vec3;

struct Pose {
  Vec3 translation;     // of the ligand centroid relative to box center
  Vec3 axis{1, 0, 0};   // unit rotation axis
  float angle = 0.0f;   // radians
  float score = 0.0f;   // scorer value attached by the search
  float rmsd_to_ref = -1.0f;  // filled by evaluation code when a reference exists

  /// Apply to a centred ligand copy: rotate about its centroid, then place
  /// the centroid at box_center + translation.
  Molecule apply(const Molecule& ligand, const Vec3& box_center) const;
};

/// Gaussian rigid-body perturbation (sigma_t in Angstrom, sigma_r in rad).
Pose perturb(const Pose& p, core::Rng& rng, float sigma_t = 0.5f, float sigma_r = 0.25f);

/// Uniform random pose inside a cubic box of half-extent `box_half`.
Pose random_pose(core::Rng& rng, float box_half);

}  // namespace df::dock
