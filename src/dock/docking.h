// Monte-Carlo rigid-body docking — our CDT3Docking. Runs `num_runs`
// independent Metropolis chains (the paper uses 8 Vina MC simulations per
// compound), keeps the best pose of each, deduplicates by RMSD and returns
// up to `max_poses` (paper: 10 best poses are carried to rescoring).
#pragma once

#include <vector>

#include "dock/pose.h"
#include "dock/scoring.h"

namespace df::dock {

struct DockingConfig {
  int num_runs = 8;
  int steps_per_run = 150;
  float temperature = 1.2f;     // Metropolis kT in score units
  float box_half = 4.0f;        // search box half-extent around the site
  int max_poses = 10;
  float dedup_rmsd = 1.0f;      // poses closer than this are duplicates
  VinaWeights weights;
};

struct DockingResult {
  std::vector<Pose> poses;          // sorted best (lowest score) first
  std::vector<Molecule> conformers; // pose applied to the ligand
  int total_evaluations = 0;        // scoring-function calls (cost proxy)
};

class DockingEngine {
 public:
  explicit DockingEngine(DockingConfig cfg = {}) : cfg_(cfg) {}

  DockingResult dock(const Molecule& ligand, const std::vector<Atom>& pocket,
                     const core::Vec3& site_center, core::Rng& rng) const;

  const DockingConfig& config() const { return cfg_; }

 private:
  DockingConfig cfg_;
};

}  // namespace df::dock
