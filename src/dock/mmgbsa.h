// MM/GBSA rescoring surrogate (our CDT4mmgbsa) and the AMPL ML surrogate of
// it. The physics version pays the real cost the paper reports (orders of
// magnitude slower than docking: local pose minimization + O(N^2)
// generalized-Born sums per pose); the AMPL surrogate is a per-target ridge
// regression over cheap descriptors fitted to MM/GBSA outputs, matching
// McLoughlin's AMPL-predicted MM/GBSA used in the paper's §5.2 analysis.
#pragma once

#include <vector>

#include "chem/molecule.h"
#include "dock/scoring.h"

namespace df::dock {

struct MmGbsaConfig {
  int minimize_iterations = 60;  // rigid-body local minimization steps
  float dielectric_solute = 1.0f;
  float dielectric_solvent = 78.5f;
  float surface_tension = 0.0072f;  // kcal/mol/A^2 (SA term)
  float gb_scale = 0.8f;
  /// Damping on the pairwise GB cross-term: our point charges are crude
  /// (formal + heuristic partials), so the raw Still sum overshoots real
  /// binding dG by ~10x without it.
  float polar_scale = 0.1f;
};

/// Single-point MM/GBSA estimate for one pose (kcal/mol, negative = good).
/// Deliberately expensive relative to vina_score; do not call inside hot
/// screening loops — that asymmetry is the paper's Table-7 story.
float mmgbsa_score(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                   const MmGbsaConfig& cfg = {});

/// AMPL-style learned surrogate: ridge regression from ligand/interface
/// descriptors to MM/GBSA score, trained per target.
class AmplMmGbsaSurrogate {
 public:
  /// Fit on example poses and their true MM/GBSA scores.
  void fit(const std::vector<Molecule>& poses, const std::vector<std::vector<Atom>>& pockets,
           const std::vector<float>& mmgbsa_scores, float ridge = 1.0f);

  float predict(const Molecule& pose, const std::vector<Atom>& pocket) const;
  bool trained() const { return !weights_.empty(); }

  /// Descriptor vector used by the regression (exposed for tests).
  static std::vector<double> features(const Molecule& pose, const std::vector<Atom>& pocket);

 private:
  std::vector<double> weights_;  // includes bias as the last element
};

}  // namespace df::dock
