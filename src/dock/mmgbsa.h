// MM/GBSA rescoring surrogate (our CDT4mmgbsa) and the AMPL ML surrogate of
// it. The physics version pays the real cost the paper reports (orders of
// magnitude slower than docking: local pose minimization + O(N^2)
// generalized-Born sums per pose); the AMPL surrogate is a per-target ridge
// regression over cheap descriptors fitted to MM/GBSA outputs, matching
// McLoughlin's AMPL-predicted MM/GBSA used in the paper's §5.2 analysis.
//
// Pairwise ligand–pocket sums route through the chem::CellList neighbor
// engine by default (O(N) in pocket size). The cell-list and brute-force
// paths are bitwise identical for every term — tests/test_cell_list.cpp
// pins this — because the cell gather is a sorted superset and each term
// applies its own exact cutoff predicate in the same ascending order.
#pragma once

#include <vector>

#include "chem/molecule.h"
#include "dock/scoring.h"

namespace df::dock {

struct MmGbsaConfig {
  int minimize_iterations = 60;  // rigid-body local minimization steps
  float dielectric_solute = 1.0f;
  float dielectric_solvent = 78.5f;
  float surface_tension = 0.0072f;  // kcal/mol/A^2 (SA term)
  float gb_scale = 0.8f;
  /// Damping on the pairwise GB cross-term: our point charges are crude
  /// (formal + heuristic partials), so the raw Still sum overshoots real
  /// binding dG by ~10x without it.
  float polar_scale = 0.1f;
  /// LJ pair cutoff and lower distance clamp (Angstrom) — previously magic
  /// constants inside the kernel.
  float lj_cutoff = 9.0f;
  float lj_min_r = 0.8f;
  /// GB pair cutoff. 0 keeps the historical cutoff-free exact Still sum;
  /// a positive value enables truncation (and the cell-list route).
  float gb_cutoff = 0.0f;
  /// SA pair cutoff. The default equals the largest possible contact
  /// distance (2 * max vdW radius + 1.4 A probe), beyond which the buried
  /// term is identically zero — so the default changes nothing numerically.
  /// Must stay >= that contact bound for the cell-list path to be exact.
  float sa_cutoff = 5.4f;
  /// Route pairwise sums through chem::CellList. Both settings are bitwise
  /// identical; false keeps the brute-force reference for tests/benches.
  bool use_cell_list = true;
  /// Engage the cell route only at or above this pocket size. Below it the
  /// brute scan's contiguous (auto-vectorized) sweep beats the engine's
  /// indexed gather — the measured crossover on the reference builder sits
  /// between 1k and 4k atoms (bench_service_throughput neighbor block).
  /// Output is bitwise identical either way; 0 forces the engine.
  int32_t cell_list_min_atoms = 2048;
};

/// Lennard-Jones 6-12 between ligand and pocket (kcal/mol, eps=0.15).
float lj_energy(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                const MmGbsaConfig& cfg = {});
/// Generalized-Born polar solvation change on binding (Still-style pairwise
/// sum over heuristic partial charges).
float gb_polar(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
               const MmGbsaConfig& cfg = {});
/// Nonpolar (surface-area) term: buried-contact proxy.
float sa_nonpolar(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                  const MmGbsaConfig& cfg = {});
/// Interface electrostatics, bitwise identical to
/// score_terms(...).electrostatic (same 8 A cutoff, same accumulation
/// order) but without paying for the other Vina terms.
float elec_energy(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                  const MmGbsaConfig& cfg = {});

/// Single-point MM/GBSA estimate for one pose (kcal/mol, negative = good).
/// Deliberately expensive relative to vina_score; do not call inside hot
/// screening loops — that asymmetry is the paper's Table-7 story.
float mmgbsa_score(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                   const MmGbsaConfig& cfg = {});

/// AMPL-style learned surrogate: ridge regression from ligand/interface
/// descriptors to MM/GBSA score, trained per target.
class AmplMmGbsaSurrogate {
 public:
  /// Fit on example poses and their true MM/GBSA scores.
  void fit(const std::vector<Molecule>& poses, const std::vector<std::vector<Atom>>& pockets,
           const std::vector<float>& mmgbsa_scores, float ridge = 1.0f);

  float predict(const Molecule& pose, const std::vector<Atom>& pocket) const;
  bool trained() const { return !weights_.empty(); }

  /// Descriptor vector used by the regression (exposed for tests).
  static std::vector<double> features(const Molecule& pose, const std::vector<Atom>& pocket);

 private:
  std::vector<double> weights_;  // includes bias as the last element
};

}  // namespace df::dock
