#include "dock/mmgbsa.h"

#include <cmath>
#include <algorithm>

#include "core/linalg.h"

namespace df::dock {

namespace {

/// Lennard-Jones 6-12 between ligand and pocket (kcal/mol, eps=0.15).
float lj_energy(const Molecule& ligand, const std::vector<Atom>& pocket) {
  float e = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    const float rl = chem::element_info(la.element).vdw_radius;
    for (const chem::Atom& pa : pocket) {
      const float r = std::max(0.8f, la.pos.dist(pa.pos));
      if (r > 9.0f) continue;
      const float rmin = rl + chem::element_info(pa.element).vdw_radius;
      const float q = rmin / r;
      const float q6 = q * q * q * q * q * q;
      e += 0.15f * (q6 * q6 - 2.0f * q6);
    }
  }
  return e;
}

/// Generalized-Born polar solvation change on binding (Still-style pairwise
/// approximation over charged atoms, plus partial charges from
/// electronegativity differences along bonds would be overkill — formal
/// charges and polar-atom partials are used).
float gb_polar(const Molecule& ligand, const std::vector<Atom>& pocket, const MmGbsaConfig& cfg) {
  auto partial = [](const chem::Atom& a) -> float {
    if (a.formal_charge != 0) return static_cast<float>(a.formal_charge);
    switch (a.element) {
      case chem::Element::O: return -0.4f;
      case chem::Element::N: return -0.3f;
      case chem::Element::S: return -0.15f;
      default: return 0.05f;
    }
  };
  const float pre = -166.0f * (1.0f / cfg.dielectric_solute - 1.0f / cfg.dielectric_solvent) *
                    cfg.polar_scale;
  float e = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    const float qi = partial(la);
    const float ai = chem::element_info(la.element).vdw_radius * cfg.gb_scale;
    for (const chem::Atom& pa : pocket) {
      const float qj = partial(pa);
      const float aj = chem::element_info(pa.element).vdw_radius * cfg.gb_scale;
      const float r2 = std::max(0.25f, (la.pos - pa.pos).norm2());
      // Still's f_GB = sqrt(r^2 + ai*aj*exp(-r^2/(4 ai aj)))
      const float fgb = std::sqrt(r2 + ai * aj * std::exp(-r2 / (4.0f * ai * aj)));
      e += pre * 2.0f * qi * qj / fgb;
    }
  }
  return e;
}

/// Nonpolar (surface-area) term: buried-contact proxy.
float sa_nonpolar(const Molecule& ligand, const std::vector<Atom>& pocket,
                  const MmGbsaConfig& cfg) {
  float buried = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    for (const chem::Atom& pa : pocket) {
      const float touch = chem::element_info(la.element).vdw_radius +
                          chem::element_info(pa.element).vdw_radius + 1.4f;
      const float r = la.pos.dist(pa.pos);
      if (r < touch) buried += (touch - r) * 12.0f;  // A^2-ish per contact
    }
  }
  return -cfg.surface_tension * buried;
}

}  // namespace

float mmgbsa_score(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                   const MmGbsaConfig& cfg) {
  // Local rigid-body minimization: descend the LJ+electrostatic gradient in
  // translation space only (rotational relaxation is second order at this
  // resolution). This is the expensive "single-point minimization" stage.
  Molecule m = ligand_pose;
  const float h = 0.05f;
  for (int it = 0; it < cfg.minimize_iterations; ++it) {
    float base = lj_energy(m, pocket);
    core::Vec3 grad{};
    for (int axis = 0; axis < 3; ++axis) {
      Molecule probe = m;
      core::Vec3 d{axis == 0 ? h : 0.0f, axis == 1 ? h : 0.0f, axis == 2 ? h : 0.0f};
      probe.translate(d);
      const float e = lj_energy(probe, pocket);
      const float g = (e - base) / h;
      if (axis == 0) grad.x = g;
      if (axis == 1) grad.y = g;
      if (axis == 2) grad.z = g;
    }
    const float gn = grad.norm();
    if (gn < 1e-3f) break;
    m.translate(grad * (-0.02f / std::max(1.0f, gn)));
  }

  const TermBreakdown terms = score_terms(m, pocket);
  const float mm = lj_energy(m, pocket) + terms.electrostatic;
  const float gb = gb_polar(m, pocket, cfg);
  const float sa = sa_nonpolar(m, pocket, cfg);
  // Entropy penalty for flexible ligands (TdS approximation).
  const float entropy = 0.3f * static_cast<float>(m.num_rotatable_bonds());
  return mm + gb + sa + entropy;
}

std::vector<double> AmplMmGbsaSurrogate::features(const Molecule& pose,
                                                  const std::vector<Atom>& pocket) {
  const TermBreakdown t = score_terms(pose, pocket);
  // Capped LJ: the dominant MM term of the target, clamped so near-clash
  // poses do not blow up the regression.
  const double lj = std::clamp(lj_energy(pose, pocket), -200.0f, 200.0f);
  return {
      lj, t.gauss1, t.gauss2, t.repulsion, t.hydrophobic, t.hbond, t.electrostatic,
      static_cast<double>(pose.num_rotatable_bonds()),
      static_cast<double>(pose.molecular_weight()) / 100.0,
      static_cast<double>(pose.logp_proxy()),
      static_cast<double>(pose.tpsa_proxy()) / 10.0,
      1.0,  // bias
  };
}

void AmplMmGbsaSurrogate::fit(const std::vector<Molecule>& poses,
                              const std::vector<std::vector<Atom>>& pockets,
                              const std::vector<float>& scores, float ridge) {
  const size_t n = poses.size();
  if (n == 0 || pockets.size() != n || scores.size() != n) {
    throw std::invalid_argument("AmplMmGbsaSurrogate::fit: inconsistent inputs");
  }
  const size_t d = features(poses[0], pockets[0]).size();
  // Normal equations with ridge: (X^T X + aI) w = X^T y.
  std::vector<double> xtx(d * d, 0.0), xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> f = features(poses[i], pockets[i]);
    for (size_t a = 0; a < d; ++a) {
      xty[a] += f[a] * scores[i];
      for (size_t b = 0; b < d; ++b) xtx[a * d + b] += f[a] * f[b];
    }
  }
  for (size_t a = 0; a < d; ++a) xtx[a * d + a] += ridge;
  weights_ = core::spd_solve(std::move(xtx), d, xty);
}

float AmplMmGbsaSurrogate::predict(const Molecule& pose, const std::vector<Atom>& pocket) const {
  if (weights_.empty()) throw std::runtime_error("AmplMmGbsaSurrogate: predict before fit");
  const std::vector<double> f = features(pose, pocket);
  double y = 0.0;
  for (size_t i = 0; i < f.size(); ++i) y += f[i] * weights_[i];
  return static_cast<float>(y);
}

}  // namespace df::dock
