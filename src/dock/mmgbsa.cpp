#include "dock/mmgbsa.h"

#include <cmath>
#include <algorithm>
#include <cstdint>

#include "chem/cell_list.h"
#include "core/linalg.h"

namespace df::dock {

namespace {

/// Matches dock/scoring.cpp's kCutoff so elec_energy stays bitwise equal to
/// score_terms(...).electrostatic.
constexpr float kElecCutoff = 8.0f;

/// Run `body(pa)` over the pocket atoms near `probe`: every atom within the
/// cell list's cell_size when `cells` is set, all atoms otherwise. The cell
/// gather is sorted ascending and each term keeps its own exact distance
/// predicate, so both routes visit the surviving atoms in the same order
/// with the same arithmetic — identical accumulation chains, bitwise equal
/// sums.
template <class F>
void for_pocket_near(const std::vector<Atom>& pocket, const chem::CellList* cells,
                     const core::Vec3& probe, F&& body) {
  if (cells != nullptr && !cells->covers_all(probe)) {
    static thread_local std::vector<int32_t> cand;
    cells->gather(probe, cand);
    for (int32_t j : cand) body(pocket[static_cast<size_t>(j)]);
  } else {
    // No cell list, or the stencil spans the whole grid (small systems):
    // gather would be the identity, so run the plain scan directly.
    for (const Atom& pa : pocket) body(pa);
  }
}

float lj_impl(const Molecule& ligand, const std::vector<Atom>& pocket, const MmGbsaConfig& cfg,
              const chem::CellList* cells) {
  float e = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    const float rl = chem::element_info(la.element).vdw_radius;
    for_pocket_near(pocket, cells, la.pos, [&](const Atom& pa) {
      const float r = std::max(cfg.lj_min_r, la.pos.dist(pa.pos));
      if (r > cfg.lj_cutoff) return;
      const float rmin = rl + chem::element_info(pa.element).vdw_radius;
      const float q = rmin / r;
      const float q6 = q * q * q * q * q * q;
      e += 0.15f * (q6 * q6 - 2.0f * q6);
    });
  }
  return e;
}

float gb_impl(const Molecule& ligand, const std::vector<Atom>& pocket, const MmGbsaConfig& cfg,
              const chem::CellList* cells) {
  auto partial = [](const chem::Atom& a) -> float {
    if (a.formal_charge != 0) return static_cast<float>(a.formal_charge);
    switch (a.element) {
      case chem::Element::O: return -0.4f;
      case chem::Element::N: return -0.3f;
      case chem::Element::S: return -0.15f;
      default: return 0.05f;
    }
  };
  const float pre = -166.0f * (1.0f / cfg.dielectric_solute - 1.0f / cfg.dielectric_solvent) *
                    cfg.polar_scale;
  const float cut2 = cfg.gb_cutoff * cfg.gb_cutoff;
  float e = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    const float qi = partial(la);
    const float ai = chem::element_info(la.element).vdw_radius * cfg.gb_scale;
    for_pocket_near(pocket, cells, la.pos, [&](const Atom& pa) {
      const float d2 = (la.pos - pa.pos).norm2();
      if (cfg.gb_cutoff > 0.0f && d2 > cut2) return;
      const float qj = partial(pa);
      const float aj = chem::element_info(pa.element).vdw_radius * cfg.gb_scale;
      const float r2 = std::max(0.25f, d2);
      // Still's f_GB = sqrt(r^2 + ai*aj*exp(-r^2/(4 ai aj)))
      const float fgb = std::sqrt(r2 + ai * aj * std::exp(-r2 / (4.0f * ai * aj)));
      e += pre * 2.0f * qi * qj / fgb;
    });
  }
  return e;
}

float sa_impl(const Molecule& ligand, const std::vector<Atom>& pocket, const MmGbsaConfig& cfg,
              const chem::CellList* cells) {
  float buried = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    const float rl = chem::element_info(la.element).vdw_radius;
    for_pocket_near(pocket, cells, la.pos, [&](const Atom& pa) {
      const float r = la.pos.dist(pa.pos);
      if (r > cfg.sa_cutoff) return;
      const float touch = rl + chem::element_info(pa.element).vdw_radius + 1.4f;
      if (r < touch) buried += (touch - r) * 12.0f;  // A^2-ish per contact
    });
  }
  return -cfg.surface_tension * buried;
}

float elec_impl(const Molecule& ligand, const std::vector<Atom>& pocket,
                const chem::CellList* cells) {
  float e = 0.0f;
  for (const chem::Atom& la : ligand.atoms()) {
    for_pocket_near(pocket, cells, la.pos, [&](const Atom& pa) {
      const float r = la.pos.dist(pa.pos);
      if (r > kElecCutoff) return;
      if (la.formal_charge != 0 && pa.formal_charge != 0) {
        // Distance-dependent dielectric (epsilon = 4r), kcal/mol units.
        e += 332.0f * static_cast<float>(la.formal_charge) *
             static_cast<float>(pa.formal_charge) / (4.0f * r * r);
      }
    });
  }
  return e;
}

/// Build `cells` over the pocket with `cell_size` if the config asks for the
/// cell route (and it is usable); returns the pointer to pass to the impls.
const chem::CellList* maybe_build(chem::CellList& cells, const std::vector<Atom>& pocket,
                                  const MmGbsaConfig& cfg, float cell_size) {
  if (!cfg.use_cell_list || pocket.empty() || cell_size <= 0.0f ||
      static_cast<int32_t>(pocket.size()) < cfg.cell_list_min_atoms) {
    return nullptr;
  }
  static thread_local std::vector<core::Vec3> ppos;
  ppos.resize(pocket.size());
  for (size_t i = 0; i < pocket.size(); ++i) ppos[i] = pocket[i].pos;
  cells.build(ppos.data(), static_cast<int32_t>(pocket.size()), cell_size);
  return &cells;
}

}  // namespace

float lj_energy(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                const MmGbsaConfig& cfg) {
  static thread_local chem::CellList cells;
  return lj_impl(ligand_pose, pocket, cfg, maybe_build(cells, pocket, cfg, cfg.lj_cutoff));
}

float gb_polar(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
               const MmGbsaConfig& cfg) {
  static thread_local chem::CellList cells;
  // gb_cutoff == 0 is the historical cutoff-free sum: every pair counts, so
  // there is no radius a cell gather could honor — brute force only.
  const chem::CellList* c =
      cfg.gb_cutoff > 0.0f ? maybe_build(cells, pocket, cfg, cfg.gb_cutoff) : nullptr;
  return gb_impl(ligand_pose, pocket, cfg, c);
}

float sa_nonpolar(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                  const MmGbsaConfig& cfg) {
  static thread_local chem::CellList cells;
  return sa_impl(ligand_pose, pocket, cfg, maybe_build(cells, pocket, cfg, cfg.sa_cutoff));
}

float elec_energy(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                  const MmGbsaConfig& cfg) {
  static thread_local chem::CellList cells;
  return elec_impl(ligand_pose, pocket, maybe_build(cells, pocket, cfg, kElecCutoff));
}

float mmgbsa_score(const Molecule& ligand_pose, const std::vector<Atom>& pocket,
                   const MmGbsaConfig& cfg) {
  // One cell list over the (static) pocket serves every term and all
  // minimization probes: cell size is the largest cutoff in play, so each
  // term's gather is a superset for its own predicate. GB joins only when
  // it has a finite cutoff.
  static thread_local chem::CellList pocket_cells;
  const float cell_size =
      std::max({cfg.lj_cutoff, cfg.sa_cutoff, cfg.gb_cutoff, kElecCutoff});
  const chem::CellList* cells = maybe_build(pocket_cells, pocket, cfg, cell_size);
  const chem::CellList* gb_cells = cfg.gb_cutoff > 0.0f ? cells : nullptr;

  // Local rigid-body minimization: descend the LJ+electrostatic gradient in
  // translation space only (rotational relaxation is second order at this
  // resolution). This is the expensive "single-point minimization" stage.
  // The objective matches the MM interaction term below — historically it
  // dropped the electrostatic part it claimed to include.
  auto mm_energy = [&](const Molecule& m) {
    return lj_impl(m, pocket, cfg, cells) + elec_impl(m, pocket, cells);
  };
  Molecule m = ligand_pose;
  const float h = 0.05f;
  for (int it = 0; it < cfg.minimize_iterations; ++it) {
    float base = mm_energy(m);
    core::Vec3 grad{};
    for (int axis = 0; axis < 3; ++axis) {
      Molecule probe = m;
      core::Vec3 d{axis == 0 ? h : 0.0f, axis == 1 ? h : 0.0f, axis == 2 ? h : 0.0f};
      probe.translate(d);
      const float e = mm_energy(probe);
      const float g = (e - base) / h;
      if (axis == 0) grad.x = g;
      if (axis == 1) grad.y = g;
      if (axis == 2) grad.z = g;
    }
    const float gn = grad.norm();
    if (gn < 1e-3f) break;
    m.translate(grad * (-0.02f / std::max(1.0f, gn)));
  }

  const float mm = mm_energy(m);
  const float gb = gb_impl(m, pocket, cfg, gb_cells);
  const float sa = sa_impl(m, pocket, cfg, cells);
  // Entropy penalty for flexible ligands (TdS approximation).
  const float entropy = 0.3f * static_cast<float>(m.num_rotatable_bonds());
  return mm + gb + sa + entropy;
}

std::vector<double> AmplMmGbsaSurrogate::features(const Molecule& pose,
                                                  const std::vector<Atom>& pocket) {
  const TermBreakdown t = score_terms(pose, pocket);
  // Capped LJ: the dominant MM term of the target, clamped so near-clash
  // poses do not blow up the regression.
  const double lj = std::clamp(lj_energy(pose, pocket), -200.0f, 200.0f);
  return {
      lj, t.gauss1, t.gauss2, t.repulsion, t.hydrophobic, t.hbond, t.electrostatic,
      static_cast<double>(pose.num_rotatable_bonds()),
      static_cast<double>(pose.molecular_weight()) / 100.0,
      static_cast<double>(pose.logp_proxy()),
      static_cast<double>(pose.tpsa_proxy()) / 10.0,
      1.0,  // bias
  };
}

void AmplMmGbsaSurrogate::fit(const std::vector<Molecule>& poses,
                              const std::vector<std::vector<Atom>>& pockets,
                              const std::vector<float>& scores, float ridge) {
  const size_t n = poses.size();
  if (n == 0 || pockets.size() != n || scores.size() != n) {
    throw std::invalid_argument("AmplMmGbsaSurrogate::fit: inconsistent inputs");
  }
  const size_t d = features(poses[0], pockets[0]).size();
  // Normal equations with ridge: (X^T X + aI) w = X^T y.
  std::vector<double> xtx(d * d, 0.0), xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> f = features(poses[i], pockets[i]);
    for (size_t a = 0; a < d; ++a) {
      xty[a] += f[a] * scores[i];
      for (size_t b = 0; b < d; ++b) xtx[a * d + b] += f[a] * f[b];
    }
  }
  for (size_t a = 0; a < d; ++a) xtx[a * d + a] += ridge;
  weights_ = core::spd_solve(std::move(xtx), d, xty);
}

float AmplMmGbsaSurrogate::predict(const Molecule& pose, const std::vector<Atom>& pocket) const {
  if (weights_.empty()) throw std::runtime_error("AmplMmGbsaSurrogate: predict before fit");
  const std::vector<double> f = features(pose, pocket);
  double y = 0.0;
  for (size_t i = 0; i < f.size(); ++i) y += f[i] * weights_[i];
  return static_cast<float>(y);
}

}  // namespace df::dock
