#include "dock/docking.h"

#include <algorithm>
#include <cmath>

namespace df::dock {

DockingResult DockingEngine::dock(const Molecule& ligand, const std::vector<Atom>& pocket,
                                  const core::Vec3& site_center, core::Rng& rng) const {
  DockingResult out;
  std::vector<Pose> best_per_run;
  for (int run = 0; run < cfg_.num_runs; ++run) {
    Pose current = random_pose(rng, cfg_.box_half);
    Molecule m = current.apply(ligand, site_center);
    current.score = vina_score(m, pocket, cfg_.weights);
    ++out.total_evaluations;
    Pose best = current;
    for (int step = 0; step < cfg_.steps_per_run; ++step) {
      Pose cand = perturb(current, rng);
      // Keep the pose inside the search box.
      cand.translation.x = std::clamp(cand.translation.x, -cfg_.box_half, cfg_.box_half);
      cand.translation.y = std::clamp(cand.translation.y, -cfg_.box_half, cfg_.box_half);
      cand.translation.z = std::clamp(cand.translation.z, -cfg_.box_half, cfg_.box_half);
      Molecule cm = cand.apply(ligand, site_center);
      cand.score = vina_score(cm, pocket, cfg_.weights);
      ++out.total_evaluations;
      const float delta = cand.score - current.score;
      if (delta < 0.0f || rng.uniform() < std::exp(-delta / cfg_.temperature)) {
        current = cand;
        if (current.score < best.score) best = current;
      }
    }
    best_per_run.push_back(best);
  }

  std::sort(best_per_run.begin(), best_per_run.end(),
            [](const Pose& a, const Pose& b) { return a.score < b.score; });

  // Deduplicate by heavy-atom RMSD against already-accepted poses.
  for (const Pose& p : best_per_run) {
    if (static_cast<int>(out.poses.size()) >= cfg_.max_poses) break;
    Molecule pm = p.apply(ligand, site_center);
    bool dup = false;
    for (const Molecule& accepted : out.conformers) {
      if (chem::pose_rmsd(pm, accepted) < cfg_.dedup_rmsd) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.poses.push_back(p);
      out.conformers.push_back(std::move(pm));
    }
  }
  return out;
}

}  // namespace df::dock
