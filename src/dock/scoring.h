// Empirical docking score with the AutoDock Vina functional form (Trott &
// Olson 2010): two attractive Gaussians, a steric repulsion, a hydrophobic
// term and a directional-free H-bond term over surface distances, divided by
// a rotor penalty. This is the CDT3Docking scorer of our ConveyorLC
// equivalent and one of the three energy models compared throughout the
// paper's evaluation.
#pragma once

#include <vector>

#include "chem/molecule.h"

namespace df::dock {

using chem::Atom;
using chem::Molecule;

struct VinaWeights {
  float gauss1 = -0.0356f;
  float gauss2 = -0.00516f;
  float repulsion = 0.840f;
  float hydrophobic = -0.0351f;
  float hbond = -0.587f;
  float rotor = 0.0585f;  // conformational entropy penalty per rotor
};

struct TermBreakdown {
  float gauss1 = 0, gauss2 = 0, repulsion = 0, hydrophobic = 0, hbond = 0;
  /// Intermolecular electrostatic energy (not part of the Vina score; used
  /// by the MM/GBSA surrogate and the data oracle).
  float electrostatic = 0;
};

/// Raw pairwise term sums between ligand and pocket atoms (cutoff 8 A).
TermBreakdown score_terms(const Molecule& ligand, const std::vector<Atom>& pocket);

/// Vina-style total score in kcal/mol (more negative = better binding).
float vina_score(const Molecule& ligand, const std::vector<Atom>& pocket,
                 const VinaWeights& w = {});

/// Convert a Vina-like score to a predicted pK (the standard -dG/(2.303 RT)
/// conversion at 298 K).
float score_to_pk(float score_kcal);

}  // namespace df::dock
