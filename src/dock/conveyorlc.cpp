#include "dock/conveyorlc.h"

namespace df::dock {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

ReceptorModel ConveyorLC::prepare_receptor(std::vector<Atom> pocket) {
  ReceptorModel r;
  core::Vec3 c{};
  for (const Atom& a : pocket) c += a.pos;
  if (!pocket.empty()) c = c * (1.0f / static_cast<float>(pocket.size()));
  r.site_center = c;
  r.pocket = std::move(pocket);
  return r;
}

std::optional<PipelineResult> ConveyorLC::run(const chem::Molecule& raw_ligand,
                                              const ReceptorModel& receptor,
                                              core::Rng& rng) const {
  PipelineResult out;

  auto t0 = std::chrono::steady_clock::now();
  std::optional<chem::PreparedLigand> prep = chem::prepare_ligand(raw_ligand, rng, cfg_.ligand_prep);
  out.ligand_prep_seconds = seconds_since(t0);
  if (!prep) return std::nullopt;
  out.ligand = std::move(*prep);

  t0 = std::chrono::steady_clock::now();
  DockingEngine engine(cfg_.docking);
  DockingResult dock = engine.dock(out.ligand.mol, receptor.pocket, receptor.site_center, rng);
  out.docking_seconds = seconds_since(t0);
  out.poses = std::move(dock.poses);
  out.conformers = std::move(dock.conformers);

  if (cfg_.run_mmgbsa) {
    t0 = std::chrono::steady_clock::now();
    const int n = std::min<int>(cfg_.rescore_top_n, static_cast<int>(out.poses.size()));
    out.mmgbsa_scores.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.mmgbsa_scores.push_back(mmgbsa_score(out.conformers[static_cast<size_t>(i)],
                                               receptor.pocket, cfg_.mmgbsa));
    }
    out.mmgbsa_seconds = seconds_since(t0);
  }
  return out;
}

}  // namespace df::dock
