#include "models/cnn3d.h"

#include <cstring>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/norm.h"
#include "nn/residual.h"

namespace df::models {

Cnn3d::Cnn3d(const Cnn3dConfig& cfg, core::Rng& rng) : cfg_(cfg) {
  const int f1 = cfg.conv_filters1, f2 = cfg.conv_filters2;
  // Stage 1: 5x5x5 stride-2 filters downsample the grid immediately (the
  // deeper-than-FAST variant of §3.3.1 at our reduced grid size).
  trunk_.emplace<nn::Conv3d>(cfg.in_channels, f1, 5, rng, /*stride=*/2, /*padding=*/2);
  if (cfg.batch_norm) trunk_.emplace<nn::BatchNorm3d>(f1);
  trunk_.emplace<nn::ReLU>();
  // Stage 2: 3x3x3, optional residual connection 1. The non-residual form
  // adds the conv directly (no Sequential wrapper) so eval-time Conv+ReLU
  // epilogue fusion sees the adjacency.
  if (cfg.residual1) {
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::Conv3d>(f1, f1, 3, rng, 1, 1);
    trunk_.add(std::make_unique<nn::Residual>(std::move(inner)));
  } else {
    trunk_.emplace<nn::Conv3d>(f1, f1, 3, rng, 1, 1);
  }
  trunk_.emplace<nn::ReLU>();
  trunk_.emplace<nn::MaxPool3d>(2, 2);
  // Stage 3: widen to f2.
  trunk_.emplace<nn::Conv3d>(f1, f2, 3, rng, 1, 1);
  if (cfg.batch_norm) trunk_.emplace<nn::BatchNorm3d>(f2);
  trunk_.emplace<nn::ReLU>();
  // Stage 4: optional residual connection 2 (Table 3: on).
  if (cfg.residual2) {
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::Conv3d>(f2, f2, 3, rng, 1, 1);
    trunk_.add(std::make_unique<nn::Residual>(std::move(inner)));
  } else {
    trunk_.emplace<nn::Conv3d>(f2, f2, 3, rng, 1, 1);
  }
  trunk_.emplace<nn::ReLU>();
  trunk_.emplace<nn::Flatten>();

  const int64_t g1 = nn::Conv3d::out_size(cfg.grid_dim, 5, 2, 2);
  const int64_t g2 = g1 / 2;  // maxpool
  const int64_t flat = g2 * g2 * g2 * f2;
  trunk_.emplace<nn::Dropout>(cfg.dropout1, rng);
  trunk_.emplace<nn::Dense>(flat, cfg.dense_nodes, rng);
  trunk_.emplace<nn::ReLU>();
  trunk_.emplace<nn::Dropout>(cfg.dropout2, rng);
  trunk_.emplace<nn::Dense>(cfg.dense_nodes, cfg.dense_nodes / 2, rng);
  trunk_.emplace<nn::ReLU>();

  out_ = std::make_unique<nn::Dense>(cfg.dense_nodes / 2, 1, rng);
  // Start predictions at mid-pK (Eq. 1 labels span ~2-11.5): saves the
  // optimizer several epochs of drifting the output bias onto the scale.
  out_->bias().value[0] = 6.0f;
}

nn::Tensor Cnn3d::forward_latent(const core::Tensor& voxel, bool training) {
  trunk_.set_training(training);
  return trunk_.forward(voxel);
}

void Cnn3d::backward_latent(const nn::Tensor& grad_latent) { trunk_.backward(grad_latent); }

float Cnn3d::forward_train(const data::Sample& s) {
  out_->set_training(true);
  nn::Tensor latent = forward_latent(s.voxel, true);
  return out_->forward(latent)[0];
}

void Cnn3d::backward(float grad_pred) {
  nn::Tensor g({1, 1});
  g[0] = grad_pred;
  backward_latent(out_->backward(g));
}

float Cnn3d::predict(const data::Sample& s) {
  out_->set_training(false);
  nn::Tensor latent = forward_latent(s.voxel, false);
  return out_->forward(latent)[0];
}

core::Tensor stack_voxel_batch(const std::vector<const data::Sample*>& batch) {
  std::vector<int64_t> shape = batch.front()->voxel.shape();
  shape[0] = static_cast<int64_t>(batch.size());
  core::Tensor out = core::Tensor::uninit(shape);
  const int64_t per = batch.front()->voxel.numel();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->voxel.shape() != batch.front()->voxel.shape()) {
      throw std::invalid_argument("stack_voxel_batch: inconsistent voxel shapes");
    }
    std::memcpy(out.data() + static_cast<int64_t>(i) * per, batch[i]->voxel.data(),
                static_cast<size_t>(per) * sizeof(float));
  }
  return out;
}

std::vector<float> Cnn3d::predict_batch(const std::vector<const data::Sample*>& batch) {
  if (batch.empty()) return {};
  out_->set_training(false);
  nn::Tensor latent = forward_latent(stack_voxel_batch(batch), false);
  nn::Tensor y = out_->forward(latent);  // (B, 1)
  std::vector<float> preds(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) preds[i] = y[static_cast<int64_t>(i)];
  return preds;
}

std::vector<nn::Parameter*> Cnn3d::trainable_parameters() {
  std::vector<nn::Parameter*> out;
  trunk_.collect_parameters(out);
  out_->collect_parameters(out);
  return out;
}

void Cnn3d::set_training(bool t) {
  trunk_.set_training(t);
  out_->set_training(t);
}

}  // namespace df::models
