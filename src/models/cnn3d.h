// The 3D-CNN head (paper §3.3.1 / Fig. 1 orange block): voxelized complex
// -> conv stack (5x5x5 then 3x3x3 filters, two optional residual
// connections, optional batch norm) -> dense head with early/mid dropout.
// Table-3 final hyper-parameters are the config defaults.
#pragma once

#include <memory>

#include "core/rng.h"
#include "models/regressor.h"
#include "nn/conv3d.h"
#include "nn/dense.h"
#include "nn/sequential.h"

namespace df::models {

struct Cnn3dConfig {
  int in_channels = 16;
  int grid_dim = 12;
  int conv_filters1 = 32;   // Table 3: 32 (5x5x5 stage)
  int conv_filters2 = 64;   // Table 3: 64 (3x3x3 stage)
  int dense_nodes = 128;    // Table 3: 128; second dense = /2
  bool batch_norm = false;  // Table 3: F
  bool residual1 = false;   // Table 3: F
  bool residual2 = true;    // Table 3: T
  float dropout1 = 0.25f;   // early (above first dense)
  float dropout2 = 0.125f;  // mid (above second dense)
};

/// Stack per-sample (1, C, D, H, W) voxel grids into one (B, C, D, H, W)
/// batch tensor (shared by the batched CNN and fusion predict paths).
core::Tensor stack_voxel_batch(const std::vector<const data::Sample*>& batch);

class Cnn3d : public Regressor {
 public:
  Cnn3d(const Cnn3dConfig& cfg, core::Rng& rng);

  float forward_train(const data::Sample& s) override;
  void backward(float grad_pred) override;
  float predict(const data::Sample& s) override;
  std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) override;
  std::vector<nn::Parameter*> trainable_parameters() override;
  void set_training(bool t) override;
  std::string name() const override { return "3D-CNN"; }

  /// Latent vector (output of the second dense stage, the paper's layer
  /// M-1) for fusion. Shape (1, latent_dim).
  nn::Tensor forward_latent(const core::Tensor& voxel, bool training);
  /// Backpropagate a latent gradient into the trunk (Coherent Fusion).
  void backward_latent(const nn::Tensor& grad_latent);

  int64_t latent_dim() const { return cfg_.dense_nodes / 2; }
  const Cnn3dConfig& config() const { return cfg_; }

  /// Structure surface for the model compiler (BN folding, weight prepack).
  nn::Sequential& trunk() { return trunk_; }
  nn::Dense& out_dense() { return *out_; }

 private:
  Cnn3dConfig cfg_;
  nn::Sequential trunk_;             // convs + dense stages -> latent
  std::unique_ptr<nn::Dense> out_;   // latent -> 1
};

}  // namespace df::models
