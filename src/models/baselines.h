// Published-baseline stand-ins used in Table 6: Pafnucy
// (Stepniewska-Dziubinska et al. 2017 — a plain deep 3D-CNN without
// residuals, uniform 5x5x5-style receptive field, heavier dropout) and
// KDeep (Jimenez et al. 2018 — a compact 3D-CNN). Both are realized as
// configurations of our Cnn3d so the comparison isolates architecture, not
// substrate.
#pragma once

#include <memory>

#include "models/cnn3d.h"

namespace df::models {

/// Pafnucy-flavoured single 3D-CNN.
std::unique_ptr<Cnn3d> make_pafnucy(int in_channels, int grid_dim, core::Rng& rng);

/// KDeep-flavoured single 3D-CNN.
std::unique_ptr<Cnn3d> make_kdeep(int in_channels, int grid_dim, core::Rng& rng);

}  // namespace df::models
