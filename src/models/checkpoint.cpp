#include "models/checkpoint.h"

#include <bit>
#include <stdexcept>

#include "io/h5lite.h"

namespace df::models {

namespace {

void put_params(io::H5LiteFile& f, Regressor& model) {
  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  f.put_ints("meta", {1}, {static_cast<int64_t>(params.size())});
  for (size_t i = 0; i < params.size(); ++i) {
    const nn::Parameter& p = *params[i];
    std::vector<float> values(p.value.flat().begin(), p.value.flat().end());
    f.put_floats("p" + std::to_string(i), p.value.shape(), std::move(values));
  }
}

void get_params(const io::H5LiteFile& f, Regressor& model, const std::string& path) {
  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  if (!f.has("meta") || f.get("meta").ints().at(0) != static_cast<int64_t>(params.size())) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch in " + path);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const io::Dataset& ds = f.get("p" + std::to_string(i));
    nn::Parameter& p = *params[i];
    if (ds.shape != p.value.shape()) {
      throw std::runtime_error("load_checkpoint: shape mismatch at parameter " +
                               std::to_string(i));
    }
    const std::vector<float>& v = ds.floats();
    for (int64_t j = 0; j < p.value.numel(); ++j) p.value[j] = v[static_cast<size_t>(j)];
  }
}

void put_tensor(io::H5LiteFile& f, const std::string& name, const core::Tensor& t) {
  f.put_floats(name, t.shape(), std::vector<float>(t.flat().begin(), t.flat().end()));
}

/// f.get with the documented error contract: a dataset missing from the
/// file (e.g. checkpoint_path pointing at a weights-only save_checkpoint
/// file) is a std::runtime_error, never the std::out_of_range
/// (logic_error) H5LiteFile::get throws for unknown names.
const io::Dataset& get_checked(const io::H5LiteFile& f, const std::string& name,
                               const std::string& path) {
  if (!f.has(name)) {
    throw std::runtime_error("load_train_checkpoint: missing dataset " + name + " in " + path +
                             " (not a train checkpoint?)");
  }
  return f.get(name);
}

void get_tensor(const io::H5LiteFile& f, const std::string& name, core::Tensor& t,
                const std::string& path) {
  const io::Dataset& ds = get_checked(f, name, path);
  if (ds.shape != t.shape()) {
    throw std::runtime_error("load_train_checkpoint: shape mismatch at " + name + " in " + path);
  }
  const std::vector<float>& v = ds.floats();
  for (int64_t j = 0; j < t.numel(); ++j) t[j] = v[static_cast<size_t>(j)];
}

}  // namespace

void save_checkpoint(Regressor& model, const std::string& path) {
  io::H5LiteFile f;
  put_params(f, model);
  // Atomic write: a rank killed mid-checkpoint must never leave a torn
  // weight file where the resume path expects a valid one.
  f.save_atomic(path);
}

void load_checkpoint(Regressor& model, const std::string& path) {
  const io::H5LiteFile f = io::H5LiteFile::load(path);
  get_params(f, model, path);
}

void save_train_checkpoint(Regressor& model, nn::Optimizer& opt, const TrainProgress& progress,
                           const std::string& path) {
  io::H5LiteFile f;
  put_params(f, model);

  const nn::OptimizerState st = opt.state();
  for (const auto& [slot, tensors] : st.slots) {
    for (size_t i = 0; i < tensors.size(); ++i) {
      put_tensor(f, "opt/" + slot + "/" + std::to_string(i), *tensors[i]);
    }
  }
  std::vector<int64_t> scalar_values;
  for (const auto& [name, value] : st.scalars) {
    (void)name;
    scalar_values.push_back(*value);
  }
  const int64_t n_scalars = static_cast<int64_t>(scalar_values.size());
  f.put_ints("opt/scalars", {n_scalars}, std::move(scalar_values));

  f.put_ints("train/geom", {6},
             {std::bit_cast<int64_t>(progress.seed), progress.optimizer_kind,
              progress.batch_size, progress.grad_shards, progress.n_train, progress.n_val});
  f.put_floats("train/hyper", {2}, {progress.lr, progress.grad_clip});
  f.put_ints("train/cursor", {3}, {progress.epoch, progress.batch, progress.n_samples});
  f.put_ints("train/acc", {2},
             {std::bit_cast<int64_t>(progress.epoch_loss), std::bit_cast<int64_t>(progress.seconds)});
  const int64_t n_epochs = static_cast<int64_t>(progress.train_mse.size());
  std::vector<float> stats;
  stats.reserve(static_cast<size_t>(2 * n_epochs));
  for (int64_t e = 0; e < n_epochs; ++e) {
    stats.push_back(progress.train_mse[static_cast<size_t>(e)]);
    stats.push_back(progress.val_mse[static_cast<size_t>(e)]);
  }
  f.put_floats("train/stats", {n_epochs, 2}, std::move(stats));
  f.put_floats("train/best", {1}, {progress.best_val_mse});
  f.put_ints("train/best_epoch", {1}, {progress.best_epoch});

  f.save_atomic(path);
}

TrainProgress load_train_checkpoint(Regressor& model, nn::Optimizer& opt,
                                    const std::string& path,
                                    const TrainProgress* expected_geometry) {
  const io::H5LiteFile f = io::H5LiteFile::load(path);

  TrainProgress p;
  const std::vector<int64_t>& geom = get_checked(f, "train/geom", path).ints();
  p.seed = std::bit_cast<uint64_t>(geom.at(0));
  p.optimizer_kind = geom.at(1);
  p.batch_size = geom.at(2);
  p.grad_shards = geom.at(3);
  p.n_train = geom.at(4);
  p.n_val = geom.at(5);
  const std::vector<float>& hyper = get_checked(f, "train/hyper", path).floats();
  p.lr = hyper.at(0);
  p.grad_clip = hyper.at(1);
  // Guard BEFORE restoring anything: a rejected checkpoint must leave the
  // caller's model and optimizer exactly as they were.
  if (expected_geometry != nullptr) {
    const TrainProgress& e = *expected_geometry;
    if (p.seed != e.seed || p.optimizer_kind != e.optimizer_kind ||
        p.batch_size != e.batch_size || p.grad_shards != e.grad_shards ||
        p.n_train != e.n_train || p.n_val != e.n_val || p.lr != e.lr ||
        p.grad_clip != e.grad_clip) {
      throw std::runtime_error(
          "load_train_checkpoint: geometry mismatch in " + path +
          " (seed/optimizer/batch/shards/dataset/lr/clip differ from the current config); "
          "resuming would silently break the bit-identical guarantee");
    }
    // e.epoch carries the caller's epoch bound (not an equality check —
    // resuming with a larger bound legitimately continues training). A
    // cursor past the bound is a stale longer run's checkpoint.
    const std::vector<int64_t>& cursor_peek = get_checked(f, "train/cursor", path).ints();
    if (cursor_peek.at(0) > e.epoch) {
      throw std::runtime_error("load_train_checkpoint: checkpoint " + path + " is " +
                               std::to_string(cursor_peek.at(0)) +
                               " epochs into training but only " + std::to_string(e.epoch) +
                               " were requested; refusing to return a stale longer history");
    }
  }

  get_params(f, model, path);
  const nn::OptimizerState st = opt.state();
  for (const auto& [slot, tensors] : st.slots) {
    for (size_t i = 0; i < tensors.size(); ++i) {
      get_tensor(f, "opt/" + slot + "/" + std::to_string(i), *tensors[i], path);
    }
  }
  const std::vector<int64_t>& scalar_values = get_checked(f, "opt/scalars", path).ints();
  if (scalar_values.size() != st.scalars.size()) {
    throw std::runtime_error("load_train_checkpoint: optimizer scalar count mismatch in " + path);
  }
  for (size_t i = 0; i < st.scalars.size(); ++i) *st.scalars[i].second = scalar_values[i];

  const std::vector<int64_t>& cursor = get_checked(f, "train/cursor", path).ints();
  p.epoch = cursor.at(0);
  p.batch = cursor.at(1);
  p.n_samples = cursor.at(2);
  const std::vector<int64_t>& acc = get_checked(f, "train/acc", path).ints();
  p.epoch_loss = std::bit_cast<double>(acc.at(0));
  p.seconds = std::bit_cast<double>(acc.at(1));
  const io::Dataset& stats = get_checked(f, "train/stats", path);
  const int64_t n_epochs = stats.shape.at(0);
  for (int64_t e = 0; e < n_epochs; ++e) {
    p.train_mse.push_back(stats.floats().at(static_cast<size_t>(2 * e)));
    p.val_mse.push_back(stats.floats().at(static_cast<size_t>(2 * e + 1)));
  }
  p.best_val_mse = get_checked(f, "train/best", path).floats().at(0);
  p.best_epoch = get_checked(f, "train/best_epoch", path).ints().at(0);
  return p;
}

}  // namespace df::models
