#include "models/checkpoint.h"

#include <stdexcept>

#include "io/h5lite.h"

namespace df::models {

void save_checkpoint(Regressor& model, const std::string& path) {
  io::H5LiteFile f;
  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  f.put_ints("meta", {1}, {static_cast<int64_t>(params.size())});
  for (size_t i = 0; i < params.size(); ++i) {
    const nn::Parameter& p = *params[i];
    std::vector<float> values(p.value.flat().begin(), p.value.flat().end());
    f.put_floats("p" + std::to_string(i), p.value.shape(), std::move(values));
  }
  // Atomic write: a rank killed mid-checkpoint must never leave a torn
  // weight file where the resume path expects a valid one.
  f.save_atomic(path);
}

void load_checkpoint(Regressor& model, const std::string& path) {
  const io::H5LiteFile f = io::H5LiteFile::load(path);
  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  if (!f.has("meta") || f.get("meta").ints().at(0) != static_cast<int64_t>(params.size())) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch in " + path);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const io::Dataset& ds = f.get("p" + std::to_string(i));
    nn::Parameter& p = *params[i];
    if (ds.shape != p.value.shape()) {
      throw std::runtime_error("load_checkpoint: shape mismatch at parameter " +
                               std::to_string(i));
    }
    const std::vector<float>& v = ds.floats();
    for (int64_t j = 0; j < p.value.numel(); ++j) p.value[j] = v[static_cast<size_t>(j)];
  }
}

}  // namespace df::models
