// Common interface over the binding-affinity models (3D-CNN, SG-CNN and the
// fusion variants): per-sample training forward/backward plus batched
// evaluation. Per-sample gradient flow (with batch-level optimizer steps)
// matches the small batch sizes the paper's optimized models use (Mid-level
// Fusion converged to batch size 1).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace df::models {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Training-mode forward for one sample; caches activations.
  virtual float forward_train(const data::Sample& s) = 0;
  /// Backward for the most recent forward_train with dLoss/dPrediction.
  virtual void backward(float grad_pred) = 0;
  /// Eval-mode prediction (no caching, dropout off, running BN stats).
  virtual float predict(const data::Sample& s) = 0;
  /// Eval-mode prediction for a batch of poses. Models whose trunks accept
  /// a batch dimension override this to run one forward per batch instead
  /// of one per pose (the screening hot path); the default loops.
  virtual std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) {
    std::vector<float> out;
    out.reserve(batch.size());
    for (const data::Sample* s : batch) out.push_back(predict(*s));
    return out;
  }

  /// Parameters the optimizer should update.
  virtual std::vector<nn::Parameter*> trainable_parameters() = 0;
  virtual void set_training(bool t) = 0;
  virtual std::string name() const = 0;

  void zero_grad() {
    for (nn::Parameter* p : trainable_parameters()) p->grad.zero();
  }
  int64_t num_parameters() {
    int64_t n = 0;
    for (nn::Parameter* p : trainable_parameters()) n += p->numel();
    return n;
  }
};

}  // namespace df::models
