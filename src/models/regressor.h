// Common interface over the binding-affinity models (3D-CNN, SG-CNN and the
// fusion variants): per-sample training forward/backward plus batched
// evaluation. Per-sample gradient flow (with batch-level optimizer steps)
// matches the small batch sizes the paper's optimized models use (Mid-level
// Fusion converged to batch size 1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace df::models {

// Replica contract: the eval path is NOT const and NOT thread-safe. Even in
// eval mode, predict()/predict_batch() route through the layer stack's
// forward(), which rewrites per-layer activation caches in place — two
// threads sharing one instance corrupt each other's forwards. Every
// concurrent consumer therefore owns a private replica built from a
// RegressorFactory (one per worker); serve::ScoringService enforces this
// with one lazily-built replica per worker thread plus a re-entrancy guard
// in serve::RegressorScorer that throws if two threads ever enter the same
// replica. The serving layer's core::Workspace arenas are replica state
// under the same rule: RegressorScorer binds a private arena around the
// eval forward and rewinds it every batch, so eval-path tensors must never
// outlive the scoring call that produced them (docs/API.md).
// The same contract covers training: forward_train/backward cache
// activations per instance, so the data-parallel training engine
// (models/trainer.h) gives each worker lane a private replica built from
// TrainConfig::replica_factory and broadcasts the master's parameters to
// the lanes after every optimizer step.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Training-mode forward for one sample; caches activations.
  virtual float forward_train(const data::Sample& s) = 0;
  /// Backward for the most recent forward_train with dLoss/dPrediction.
  virtual void backward(float grad_pred) = 0;
  /// Eval-mode prediction (dropout off, running BN stats). Mutates layer
  /// caches — see the replica contract above.
  virtual float predict(const data::Sample& s) = 0;
  /// Eval-mode prediction for a batch of poses. Models whose trunks accept
  /// a batch dimension override this to run one forward per batch instead
  /// of one per pose (the screening hot path); the default loops.
  virtual std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) {
    std::vector<float> out;
    out.reserve(batch.size());
    for (const data::Sample* s : batch) out.push_back(predict(*s));
    return out;
  }

  /// Parameters the optimizer should update.
  virtual std::vector<nn::Parameter*> trainable_parameters() = 0;
  virtual void set_training(bool t) = 0;
  virtual std::string name() const = 0;

  void zero_grad() {
    for (nn::Parameter* p : trainable_parameters()) p->grad.zero();
  }
  int64_t num_parameters() {
    int64_t n = 0;
    for (nn::Parameter* p : trainable_parameters()) n += p->numel();
    return n;
  }
};

/// Builds one private model replica per concurrent consumer (see the replica
/// contract above). Factories must be deterministic — same weights on every
/// call — and safe to invoke from any thread; the serving layer serializes
/// invocations but relies on call-order independence for reproducibility.
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

}  // namespace df::models
