#include "models/sgcnn.h"

#include <stdexcept>

namespace df::models {

Sgcnn::Sgcnn(const SgcnnConfig& cfg, core::Rng& rng) : cfg_(cfg) {
  const int64_t h = cfg.covalent_gather_width;
  const int64_t w = cfg.noncovalent_gather_width;
  dense1_out_ = static_cast<int64_t>(static_cast<float>(w) / 1.5f);
  dense2_out_ = dense1_out_ / 2;
  embed_ = std::make_unique<nn::Dense>(cfg.node_features, h, rng);
  cov_ = std::make_unique<graph::GatedGraphConv>(h, cfg.covalent_k, rng);
  noncov_ = std::make_unique<graph::GatedGraphConv>(h, cfg.noncovalent_k, rng);
  gather_ = std::make_unique<graph::Gather>(h, cfg.node_features, w, rng);
  dense1_ = std::make_unique<nn::Dense>(w, dense1_out_, rng);
  dense2_ = std::make_unique<nn::Dense>(dense1_out_, dense2_out_, rng);
  out_ = std::make_unique<nn::Dense>(dense2_out_, 1, rng);
  // Mid-pK output prior (see Cnn3d): labels live on the 2-11.5 pK scale.
  out_->bias().value[0] = 6.0f;
}

nn::Tensor Sgcnn::forward_latent(const graph::SpatialGraph& g, bool training) {
  embed_->set_training(training);
  dense1_->set_training(training);
  if (g.num_nodes() == 0) throw std::invalid_argument("Sgcnn: empty graph");
  nn::Tensor h0 = embed_->forward(g.node_features);
  nn::Tensor h1 = cov_->forward(h0, g.covalent, training);
  nn::Tensor h2 = noncov_->forward(h1, g.noncovalent, training);
  nn::Tensor pooled = gather_->forward_sum(h2, g.node_features, g.num_ligand_nodes, training);
  if (!training) return dense1_->forward_act(pooled, core::EpilogueAct::kReLU);
  nn::Tensor a1 = dense1_->forward(pooled);
  relu1_in_ = a1;
  return a1.map([](float v) { return v > 0.0f ? v : 0.0f; });
}

nn::Tensor Sgcnn::forward_latent_batch(const graph::PackedGraphBatch& packed) {
  embed_->set_training(false);
  dense1_->set_training(false);
  // The propagation layers are row-stable, so running them over the packed
  // (total_nodes, dim) matrix — one wide GEMM per layer instead of one
  // small GEMM per pose — reproduces every per-pose row bitwise; only the
  // readout needs to know the graph boundaries.
  nn::Tensor h0 = embed_->forward(packed.node_features);
  nn::Tensor h1 = cov_->forward(h0, packed.covalent, /*training=*/false);
  nn::Tensor h2 = noncov_->forward(h1, packed.noncovalent, /*training=*/false);
  nn::Tensor pooled = gather_->forward_segments(h2, packed.node_features, packed.node_offset,
                                                packed.ligand_counts, /*training=*/false);
  return dense1_->forward_act(pooled, core::EpilogueAct::kReLU);
}

std::vector<float> Sgcnn::predict_batch(const std::vector<const data::Sample*>& batch) {
  if (batch.empty()) return {};
  set_training(false);
  std::vector<const graph::SpatialGraph*> graphs;
  graphs.reserve(batch.size());
  for (const data::Sample* s : batch) graphs.push_back(&s->graph);
  nn::Tensor latent = forward_latent_batch(graph::pack_graphs(graphs));
  nn::Tensor z = dense2_->forward_act(latent, core::EpilogueAct::kReLU);
  nn::Tensor y = out_->forward(z);  // (B, 1)
  std::vector<float> preds(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) preds[i] = y[static_cast<int64_t>(i)];
  return preds;
}

void Sgcnn::backward_latent(const nn::Tensor& grad_latent) {
  nn::Tensor g = grad_latent;
  for (int64_t i = 0; i < g.numel(); ++i) {
    if (relu1_in_[i] <= 0.0f) g[i] = 0.0f;
  }
  nn::Tensor dpooled = dense1_->backward(g);
  auto [dh2, dx_gather] = gather_->backward_sum(dpooled);
  nn::Tensor dh1 = noncov_->backward(dh2);
  nn::Tensor dh0 = cov_->backward(dh1);
  nn::Tensor dx_embed = embed_->backward(dh0);
  // Node-feature gradients (dx_gather, dx_embed) stop here: inputs are data.
  (void)dx_gather;
  (void)dx_embed;
}

float Sgcnn::forward_train(const data::Sample& s) {
  set_training(true);
  nn::Tensor latent = forward_latent(s.graph, true);
  nn::Tensor a2 = dense2_->forward(latent);
  relu2_in_ = a2;
  nn::Tensor z = a2.map([](float v) { return v > 0.0f ? v : 0.0f; });
  return out_->forward(z)[0];
}

void Sgcnn::backward(float grad_pred) {
  nn::Tensor g({1, 1});
  g[0] = grad_pred;
  nn::Tensor dz = out_->backward(g);
  for (int64_t i = 0; i < dz.numel(); ++i) {
    if (relu2_in_[i] <= 0.0f) dz[i] = 0.0f;
  }
  backward_latent(dense2_->backward(dz));
}

float Sgcnn::predict(const data::Sample& s) {
  set_training(false);
  nn::Tensor latent = forward_latent(s.graph, false);
  nn::Tensor z = dense2_->forward_act(latent, core::EpilogueAct::kReLU);
  return out_->forward(z)[0];
}

std::vector<nn::Parameter*> Sgcnn::trainable_parameters() {
  std::vector<nn::Parameter*> p;
  embed_->collect_parameters(p);
  cov_->collect_parameters(p);
  noncov_->collect_parameters(p);
  gather_->collect_parameters(p);
  dense1_->collect_parameters(p);
  dense2_->collect_parameters(p);
  out_->collect_parameters(p);
  return p;
}

void Sgcnn::set_training(bool t) {
  embed_->set_training(t);
  // GatedGraphConv and Gather take the training flag per forward call.
  dense1_->set_training(t);
  dense2_->set_training(t);
  out_->set_training(t);
}

}  // namespace df::models
