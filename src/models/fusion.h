// The fusion models — the paper's central contribution.
//
//  * Late Fusion: unweighted mean of the two heads' predictions (§2.1).
//  * Mid-level Fusion: latent vectors from both heads pass through optional
//    model-specific dense layers, are concatenated with the raw latents and
//    fed to fusion dense layers; head weights stay frozen (§2.1, Table 4).
//  * Coherent Fusion: the same wiring, but gradients backpropagate through
//    the fusion layers *and* both heads, fine-tuning them jointly (§2.2,
//    Table 5). Heads may be pre-trained (the configuration PB2 selected) or
//    trained from scratch.
#pragma once

#include <memory>

#include "models/cnn3d.h"
#include "models/sgcnn.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/sequential.h"

namespace df::models {

enum class FusionKind { Late, Mid, Coherent };

const char* fusion_name(FusionKind k);

struct FusionConfig {
  FusionKind kind = FusionKind::Coherent;
  int num_fusion_layers = 4;          // Table 5: 4 (Mid: 5)
  int fusion_nodes = 64;              // dense nodes per fusion layer
  bool model_specific_layers = false; // Table 5: excluded (Mid: included)
  bool residual_fusion = false;       // Table 5: F (Mid: T)
  nn::Activation activation = nn::Activation::kSELU;  // Tables 4/5
  float dropout1 = 0.386f;            // early (Table 5)
  float dropout2 = 0.247f;            // mid
  float dropout3 = 0.055f;            // late
};

/// Late Fusion is stateless beyond its heads.
class LateFusion : public Regressor {
 public:
  LateFusion(std::shared_ptr<Cnn3d> cnn, std::shared_ptr<Sgcnn> sg)
      : cnn_(std::move(cnn)), sg_(std::move(sg)) {}

  float forward_train(const data::Sample& s) override { return predict(s); }
  void backward(float) override {}  // nothing trainable beyond the heads
  float predict(const data::Sample& s) override {
    return 0.5f * (cnn_->predict(s) + sg_->predict(s));
  }
  std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) override {
    std::vector<float> c = cnn_->predict_batch(batch);
    const std::vector<float> s = sg_->predict_batch(batch);
    for (size_t i = 0; i < c.size(); ++i) c[i] = 0.5f * (c[i] + s[i]);
    return c;
  }
  std::vector<nn::Parameter*> trainable_parameters() override { return {}; }
  void set_training(bool t) override {
    cnn_->set_training(t);
    sg_->set_training(t);
  }
  std::string name() const override { return "Late Fusion"; }

  Cnn3d& cnn_head() { return *cnn_; }
  Sgcnn& sg_head() { return *sg_; }

 private:
  std::shared_ptr<Cnn3d> cnn_;
  std::shared_ptr<Sgcnn> sg_;
};

/// Mid-level and Coherent fusion share the wiring; `kind` decides whether
/// head gradients flow (Coherent) or stop at the latents (Mid).
class FusionModel : public Regressor {
 public:
  FusionModel(FusionConfig cfg, std::shared_ptr<Cnn3d> cnn, std::shared_ptr<Sgcnn> sg,
              core::Rng& rng);

  float forward_train(const data::Sample& s) override;
  void backward(float grad_pred) override;
  float predict(const data::Sample& s) override;
  /// Batched eval: one CNN trunk forward, one packed block-diagonal SG-CNN
  /// forward (graph::PackedGraphBatch) and one fusion trunk forward per
  /// batch — bitwise identical to per-pose predict.
  std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) override;
  std::vector<nn::Parameter*> trainable_parameters() override;
  void set_training(bool t) override;
  std::string name() const override { return fusion_name(cfg_.kind); }

  const FusionConfig& config() const { return cfg_; }
  Cnn3d& cnn_head() { return *cnn_; }
  Sgcnn& sg_head() { return *sg_; }

  /// Structure surface for the model compiler. The ms blocks are null when
  /// model_specific_layers is off.
  nn::Sequential& fusion_trunk() { return fusion_; }
  nn::Sequential* ms_cnn() { return ms_cnn_.get(); }
  nn::Sequential* ms_sg() { return ms_sg_.get(); }

  /// Switch between frozen-head (Mid) and joint-backprop (Coherent)
  /// training. Used to warm up the fusion trunk before letting gradients
  /// flow into pre-trained heads — without a warm-up, a random trunk's
  /// gradients destroy the heads faster than the trunk learns.
  void set_kind(FusionKind kind) { cfg_.kind = kind; }

 private:
  float run_forward(const data::Sample& s, bool training);
  /// Concatenate head latents (B rows each) with the optional
  /// model-specific blocks into the fusion trunk's input — the one place
  /// that knows the cat layout, shared by the per-sample and batched paths.
  nn::Tensor build_cat(const nn::Tensor& lc, const nn::Tensor& ls, bool training);

  FusionConfig cfg_;
  std::shared_ptr<Cnn3d> cnn_;
  std::shared_ptr<Sgcnn> sg_;
  std::unique_ptr<nn::Sequential> ms_cnn_, ms_sg_;  // model-specific blocks
  nn::Sequential fusion_;                           // trunk + final dense(1)
  int64_t d_cnn_ = 0, d_sg_ = 0, d_ms_ = 0;
};

}  // namespace df::models
