#include "models/fusion.h"

#include <cstring>
#include <stdexcept>

#include "nn/dense.h"
#include "nn/residual.h"

namespace df::models {

const char* fusion_name(FusionKind k) {
  switch (k) {
    case FusionKind::Late: return "Late Fusion";
    case FusionKind::Mid: return "Mid-level Fusion";
    case FusionKind::Coherent: return "Coherent Fusion";
  }
  return "?";
}

FusionModel::FusionModel(FusionConfig cfg, std::shared_ptr<Cnn3d> cnn, std::shared_ptr<Sgcnn> sg,
                         core::Rng& rng)
    : cfg_(cfg), cnn_(std::move(cnn)), sg_(std::move(sg)) {
  d_cnn_ = cnn_->latent_dim();
  d_sg_ = sg_->latent_dim();
  int64_t in = d_cnn_ + d_sg_;
  if (cfg_.model_specific_layers) {
    d_ms_ = cfg_.fusion_nodes;
    ms_cnn_ = std::make_unique<nn::Sequential>();
    ms_cnn_->emplace<nn::Dense>(d_cnn_, d_ms_, rng);
    ms_cnn_->add(nn::make_activation(cfg_.activation));
    ms_sg_ = std::make_unique<nn::Sequential>();
    ms_sg_->emplace<nn::Dense>(d_sg_, d_ms_, rng);
    ms_sg_->add(nn::make_activation(cfg_.activation));
    in += 2 * d_ms_;
  }

  // Fusion trunk: first layer maps to fusion_nodes, middle layers are
  // square (optionally residual), final layer predicts the affinity.
  // Dropout rates follow the early/mid/late schedule of Tables 4-5.
  const int n_hidden = std::max(1, cfg_.num_fusion_layers - 1);
  fusion_.emplace<nn::Dropout>(cfg_.dropout1, rng);
  fusion_.emplace<nn::Dense>(in, cfg_.fusion_nodes, rng);
  fusion_.add(nn::make_activation(cfg_.activation));
  for (int l = 1; l < n_hidden; ++l) {
    fusion_.emplace<nn::Dropout>(l == 1 ? cfg_.dropout2 : cfg_.dropout3, rng);
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::Dense>(cfg_.fusion_nodes, cfg_.fusion_nodes, rng);
    inner->add(nn::make_activation(cfg_.activation));
    if (cfg_.residual_fusion) {
      fusion_.add(std::make_unique<nn::Residual>(std::move(inner)));
    } else {
      fusion_.add(std::move(inner));
    }
  }
  fusion_.emplace<nn::Dropout>(cfg_.dropout3, rng);
  auto out = std::make_unique<nn::Dense>(cfg_.fusion_nodes, 1, rng);
  out->bias().value[0] = 6.0f;  // mid-pK output prior (see Cnn3d)
  fusion_.add(std::move(out));
}

nn::Tensor FusionModel::build_cat(const nn::Tensor& lc, const nn::Tensor& ls, bool training) {
  const int64_t B = lc.dim(0);
  const int64_t row = d_cnn_ + d_sg_ + 2 * d_ms_;
  nn::Tensor cat({B, row});
  for (int64_t i = 0; i < B; ++i) {
    float* dst = cat.data() + i * row;
    std::memcpy(dst, lc.data() + i * d_cnn_, static_cast<size_t>(d_cnn_) * sizeof(float));
    std::memcpy(dst + d_cnn_, ls.data() + i * d_sg_, static_cast<size_t>(d_sg_) * sizeof(float));
  }
  if (cfg_.model_specific_layers) {
    ms_cnn_->set_training(training);
    ms_sg_->set_training(training);
    nn::Tensor mc = ms_cnn_->forward(lc);
    nn::Tensor msv = ms_sg_->forward(ls);
    for (int64_t i = 0; i < B; ++i) {
      float* dst = cat.data() + i * row + d_cnn_ + d_sg_;
      std::memcpy(dst, mc.data() + i * d_ms_, static_cast<size_t>(d_ms_) * sizeof(float));
      std::memcpy(dst + d_ms_, msv.data() + i * d_ms_, static_cast<size_t>(d_ms_) * sizeof(float));
    }
  }
  return cat;
}

float FusionModel::run_forward(const data::Sample& s, bool training) {
  nn::Tensor lc = cnn_->forward_latent(s.voxel, training && cfg_.kind == FusionKind::Coherent);
  nn::Tensor ls = sg_->forward_latent(s.graph, training && cfg_.kind == FusionKind::Coherent);
  nn::Tensor cat = build_cat(lc, ls, training);
  fusion_.set_training(training);
  return fusion_.forward(cat)[0];
}

float FusionModel::forward_train(const data::Sample& s) { return run_forward(s, true); }

float FusionModel::predict(const data::Sample& s) { return run_forward(s, false); }

std::vector<float> FusionModel::predict_batch(const std::vector<const data::Sample*>& batch) {
  if (batch.empty()) return {};
  const int64_t B = static_cast<int64_t>(batch.size());
  nn::Tensor lc = cnn_->forward_latent(stack_voxel_batch(batch), false);  // (B, d_cnn)
  // SG-CNN branch: pack the batch's graphs block-diagonally and run one
  // wide graph forward — this used to be a per-pose loop, leaving half the
  // fusion model unbatched.
  std::vector<const graph::SpatialGraph*> graphs;
  graphs.reserve(batch.size());
  for (const data::Sample* s : batch) graphs.push_back(&s->graph);
  nn::Tensor ls = sg_->forward_latent_batch(graph::pack_graphs(graphs));  // (B, d_sg)

  nn::Tensor cat = build_cat(lc, ls, /*training=*/false);
  fusion_.set_training(false);
  nn::Tensor y = fusion_.forward(cat);  // (B, 1)
  std::vector<float> preds(batch.size());
  for (int64_t i = 0; i < B; ++i) preds[static_cast<size_t>(i)] = y[i];
  return preds;
}

void FusionModel::backward(float grad_pred) {
  nn::Tensor g({1, 1});
  g[0] = grad_pred;
  nn::Tensor dcat = fusion_.backward(g);

  nn::Tensor dlc({1, d_cnn_}), dls({1, d_sg_});
  int64_t off = 0;
  for (int64_t i = 0; i < d_cnn_; ++i) dlc.at(0, i) = dcat.at(0, off++);
  for (int64_t i = 0; i < d_sg_; ++i) dls.at(0, i) = dcat.at(0, off++);
  if (cfg_.model_specific_layers) {
    nn::Tensor dmc({1, d_ms_}), dms({1, d_ms_});
    for (int64_t i = 0; i < d_ms_; ++i) dmc.at(0, i) = dcat.at(0, off++);
    for (int64_t i = 0; i < d_ms_; ++i) dms.at(0, i) = dcat.at(0, off++);
    dlc += ms_cnn_->backward(dmc);
    dls += ms_sg_->backward(dms);
  }

  if (cfg_.kind == FusionKind::Coherent) {
    // Coherent backpropagation: gradients continue into both heads.
    cnn_->backward_latent(dlc);
    sg_->backward_latent(dls);
  }
  // Mid-level fusion: heads stay frozen; the latent gradient stops here.
}

std::vector<nn::Parameter*> FusionModel::trainable_parameters() {
  std::vector<nn::Parameter*> p;
  fusion_.collect_parameters(p);
  if (ms_cnn_) ms_cnn_->collect_parameters(p);
  if (ms_sg_) ms_sg_->collect_parameters(p);
  if (cfg_.kind == FusionKind::Coherent) {
    for (nn::Parameter* hp : cnn_->trainable_parameters()) p.push_back(hp);
    for (nn::Parameter* hp : sg_->trainable_parameters()) p.push_back(hp);
  }
  return p;
}

void FusionModel::set_training(bool t) {
  fusion_.set_training(t);
  if (ms_cnn_) ms_cnn_->set_training(t);
  if (ms_sg_) ms_sg_->set_training(t);
  cnn_->set_training(t);
  sg_->set_training(t);
}

}  // namespace df::models
