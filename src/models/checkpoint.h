// Model checkpointing: serialize a Regressor's trainable parameters to the
// h5lite container and restore them into a structurally identical model.
// This is what Ray Tune's PB2 exploitation does with checkpoints (§3.2) and
// what lets a screening deployment ship one trained weight file to every
// rank instead of re-training per process.
#pragma once

#include <string>

#include "models/regressor.h"

namespace df::models {

/// Write all trainable parameters (values only, not optimizer state) to
/// `path`. Dataset names are "p<index>" in trainable_parameters() order,
/// plus a "meta" record holding the parameter count for validation.
void save_checkpoint(Regressor& model, const std::string& path);

/// Load parameters saved by save_checkpoint into `model`. Throws
/// std::runtime_error if the file does not match the model's structure
/// (parameter count or any shape differs).
void load_checkpoint(Regressor& model, const std::string& path);

}  // namespace df::models
