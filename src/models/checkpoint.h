// Model checkpointing: serialize a Regressor's trainable parameters to the
// h5lite container and restore them into a structurally identical model.
// This is what Ray Tune's PB2 exploitation does with checkpoints (§3.2) and
// what lets a screening deployment ship one trained weight file to every
// rank instead of re-training per process.
//
// Train checkpoints extend the weight file with everything a killed
// training run needs to resume bit-exactly (mirroring the campaign
// checkpoint design of screen/checkpoint.h): optimizer state (per-slot
// tensors + scalars), the (epoch, batch) cursor, the partial-epoch loss
// accumulators, per-epoch stats so far, and the geometry whose change would
// silently break the bit-identical resume guarantee — which is therefore
// verified on load instead of trusted. Because every stochastic draw in
// training (shuffle, featurization, dropout) is keyed on (seed, epoch,
// position) via core::derive_stream, the cursor IS the RNG state: no
// engine internals need saving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/regressor.h"
#include "nn/optim.h"

namespace df::models {

/// Write all trainable parameters (values only, not optimizer state) to
/// `path`. Dataset names are "p<index>" in trainable_parameters() order,
/// plus a "meta" record holding the parameter count for validation.
void save_checkpoint(Regressor& model, const std::string& path);

/// Load parameters saved by save_checkpoint into `model`. Throws
/// std::runtime_error if the file does not match the model's structure
/// (parameter count or any shape differs).
void load_checkpoint(Regressor& model, const std::string& path);

/// Everything beyond the weights that a resumed train_model needs.
struct TrainProgress {
  // Geometry guard: resume under different values would change bits, so a
  // mismatch is rejected at load time (same policy as CampaignCheckpoint).
  uint64_t seed = 0;
  int64_t optimizer_kind = 0;  // nn::OptimizerKind as int
  int64_t batch_size = 0;
  int64_t grad_shards = 0;
  int64_t n_train = 0;
  int64_t n_val = 0;
  float lr = 0.0f;
  float grad_clip = 0.0f;
  // Cursor: training resumes at batch `batch` of epoch `epoch`. The
  // current epoch's partial accumulators travel with it.
  int64_t epoch = 0;
  int64_t batch = 0;
  int64_t n_samples = 0;     // samples consumed in the current epoch
  double epoch_loss = 0.0;   // squared-error sum over those samples
  double seconds = 0.0;      // wall-clock consumed by all prior processes
  // Completed-epoch history (what TrainResult::epochs holds so far).
  std::vector<float> train_mse, val_mse;
  float best_val_mse = 0.0f;
  int64_t best_epoch = -1;
};

/// Atomically write weights + optimizer state + progress to `path`.
void save_train_checkpoint(Regressor& model, nn::Optimizer& opt, const TrainProgress& progress,
                           const std::string& path);

/// Restore weights into `model` and state into `opt`; returns the saved
/// progress. Throws io::H5LiteError on damage and std::runtime_error when
/// the file does not match the model/optimizer structure. When
/// `expected_geometry` is given, its guard fields (seed, optimizer kind,
/// batch size, grad shards, dataset sizes, lr, grad clip) are validated
/// against the file BEFORE anything is restored, so a mismatch throw
/// leaves model and optimizer untouched rather than half-overwritten.
/// Its `epoch` field is an upper bound, not an equality check: a cursor
/// past it (a stale longer run's checkpoint) is rejected, while a smaller
/// cursor resumes normally — so training can be extended by rerunning
/// with a larger epoch budget.
TrainProgress load_train_checkpoint(Regressor& model, nn::Optimizer& opt,
                                    const std::string& path,
                                    const TrainProgress* expected_geometry = nullptr);

}  // namespace df::models
