// The SG-CNN head (paper §3.3.1 / Fig. 1 blue block): PotentialNet-style
// spatial graph network. Covalent-edge propagation, then non-covalent
// propagation, a ligand-summed gather, and a dense head whose widths are
// the non-covalent gather width reduced by 1.5x then 2x — exactly the
// sizing rule of the paper. Table-2 final hyper-parameters are defaults.
#pragma once

#include <memory>

#include "core/rng.h"
#include "graph/gated_graph_conv.h"
#include "graph/gather.h"
#include "models/regressor.h"
#include "nn/dense.h"

namespace df::models {

struct SgcnnConfig {
  int node_features = chem::kGraphNodeFeatures;
  int covalent_k = 6;            // Table 2
  int noncovalent_k = 3;         // Table 2
  int covalent_gather_width = 24;    // Table 2 — hidden state width
  int noncovalent_gather_width = 128;  // Table 2 — graph embedding width
};

class Sgcnn : public Regressor {
 public:
  Sgcnn(const SgcnnConfig& cfg, core::Rng& rng);

  float forward_train(const data::Sample& s) override;
  void backward(float grad_pred) override;
  float predict(const data::Sample& s) override;
  /// Batched eval: packs the batch's graphs block-diagonally and runs one
  /// wide graph forward (graph::PackedGraphBatch) — bitwise identical to
  /// per-pose predict.
  std::vector<float> predict_batch(const std::vector<const data::Sample*>& batch) override;
  std::vector<nn::Parameter*> trainable_parameters() override;
  void set_training(bool t) override;
  std::string name() const override { return "SG-CNN"; }

  /// Latent vector for fusion: the paper pulls layer N-3 of the SG-CNN,
  /// which is the first dense stage's activation. Shape (1, latent_dim).
  nn::Tensor forward_latent(const graph::SpatialGraph& g, bool training);
  void backward_latent(const nn::Tensor& grad_latent);

  /// Batched latent rows for a packed graph batch: (num_graphs, latent_dim),
  /// row g bitwise equal to forward_latent(graph g, false). Eval only — the
  /// propagation caches needed for backward are per-graph.
  nn::Tensor forward_latent_batch(const graph::PackedGraphBatch& packed);

  int64_t latent_dim() const { return dense1_out_; }
  const SgcnnConfig& config() const { return cfg_; }

  /// Structure surface for the model compiler (weight prepack of the dense
  /// stages; the graph layers keep their own GEMM paths).
  nn::Dense& embed_dense() { return *embed_; }
  nn::Dense& dense1() { return *dense1_; }
  nn::Dense& dense2() { return *dense2_; }
  nn::Dense& out_dense() { return *out_; }

 private:
  SgcnnConfig cfg_;
  int64_t dense1_out_, dense2_out_;
  std::unique_ptr<nn::Dense> embed_;
  std::unique_ptr<graph::GatedGraphConv> cov_, noncov_;
  std::unique_ptr<graph::Gather> gather_;
  std::unique_ptr<nn::Dense> dense1_, dense2_, out_;
  // caches for latent-path backward
  nn::Tensor relu1_in_, relu2_in_;
};

}  // namespace df::models
