// Training loop shared by every model (paper §3.2): per-sample gradient
// accumulation within a batch, an optimizer step per batch, prefetching
// data loaders, per-epoch validation MSE (the PB2 objective) and best-epoch
// checkpoint-free early reporting.
#pragma once

#include <vector>

#include "data/loader.h"
#include "models/regressor.h"
#include "nn/optim.h"

namespace df::models {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 8;
  float lr = 1e-3f;
  nn::OptimizerKind optimizer = nn::OptimizerKind::kAdam;
  int loader_workers = 2;
  uint64_t seed = 1;
  float grad_clip = 5.0f;  // global-norm clip; <=0 disables
  bool verbose = false;
};

struct EpochStats {
  float train_mse = 0;
  float val_mse = 0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  float best_val_mse = 0;
  int best_epoch = -1;
  double seconds = 0;
};

/// Train `model` on `train`, tracking MSE on `val` each epoch.
TrainResult train_model(Regressor& model, const data::ComplexDataset& train,
                        const data::ComplexDataset& val, const TrainConfig& cfg);

/// Eval-mode predictions over a dataset (order = dataset order).
std::vector<float> evaluate(Regressor& model, const data::ComplexDataset& ds);

/// Labels in dataset order (convenience for metric computation).
std::vector<float> labels_of(const data::ComplexDataset& ds);

float validation_mse(Regressor& model, const data::ComplexDataset& ds);

/// Clip the global gradient norm of `params` to `max_norm`.
void clip_grad_norm(const std::vector<nn::Parameter*>& params, float max_norm);

/// Copy parameter values from `src` into `dst` (models must be structurally
/// identical, e.g. built from the same config). Used by PB2's exploitation
/// clones and by screening jobs to replicate a trained model across ranks.
void copy_parameters(Regressor& dst, Regressor& src);

}  // namespace df::models
