// Data-parallel deterministic training engine (paper §3.2: Horovod-style
// data parallelism, per-sample gradient accumulation within a batch, an
// optimizer step per batch, prefetching loaders, per-epoch validation MSE —
// the PB2 objective).
//
// Parallel structure and the determinism contract
// -----------------------------------------------
// Each batch is split into a FIXED number of gradient shards
// (`TrainConfig::grad_shards`, independent of the worker count); worker
// lanes — private model replicas built from `TrainConfig::replica_factory`
// — run forward/backward over whole shards, and the per-shard gradient
// partials are reduced in a fixed pairwise tree order before one optimizer
// step on the master model. Because
//   * shard boundaries depend only on (batch size, grad_shards),
//   * every dropout mask is keyed on (seed, epoch, sample position) via
//     counter-based core::derive_stream streams (nn::KeyedDropoutScope),
//   * the loader keys its shuffle on (seed, epoch) and its featurization
//     on (seed, epoch, position), and
//   * the reduction tree never changes shape with the thread count,
// `TrainResult` — every EpochStats, the best epoch, and the final
// parameters — is bit-identical at ANY `threads` value, including 1.
// `threads=1` without a replica factory runs the same arithmetic on the
// master model in-place, so it is the serial reference, not a special case.
//
// Caveat: the parallel path requires stateless training forwards. Models
// whose forward mutates non-parameter state (BatchNorm running statistics,
// `Cnn3dConfig::batch_norm=true`) train correctly only with threads=1;
// the paper's optimized configurations (Tables 2/3/5) are all BN-free.
//
// Checkpoint/resume: with `checkpoint_path` set, the engine atomically
// writes weights + optimizer state + the (epoch, batch) cursor every
// `checkpoint_every_batches` steps and at every epoch boundary
// (models/checkpoint.h). All RNG is cursor-derived, so a killed run
// resumes bit-exactly — `tests/test_trainer_resume.cpp` pins this at every
// kill point, mirroring test_campaign_resume.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/threadpool.h"
#include "data/loader.h"
#include "models/regressor.h"
#include "nn/optim.h"

namespace df::models {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 8;
  float lr = 1e-3f;
  nn::OptimizerKind optimizer = nn::OptimizerKind::kAdam;
  int loader_workers = 2;
  uint64_t seed = 1;
  float grad_clip = 5.0f;  // global-norm clip; <=0 disables
  bool verbose = false;

  // ---- data-parallel engine ----
  /// Worker lanes (0 = hardware concurrency). Values > 1 require
  /// `replica_factory`; the result is bit-identical at every value.
  int threads = 1;
  /// Builds structurally identical replicas of the model being trained
  /// (same configs + init seed); one per lane. See models/regressor.h for
  /// the replica contract.
  RegressorFactory replica_factory;
  /// Fixed per-batch gradient shard count. Part of the determinism
  /// contract: changing it changes summation order and therefore bits
  /// (like the campaign's scoring_batch); thread count never does.
  int grad_shards = 8;
  /// Borrowed pool to run lanes on (e.g. one pool shared by a PB2
  /// population). nullptr = the engine owns a pool of `threads` workers.
  core::ThreadPool* pool = nullptr;

  // ---- checkpoint/resume ----
  /// Empty = no checkpointing. If the file exists, training resumes from
  /// it (geometry is verified; a mismatched checkpoint throws).
  std::string checkpoint_path;
  /// Also checkpoint mid-epoch every N optimizer steps (0 = only at epoch
  /// boundaries, which are always checkpointed when a path is set).
  int checkpoint_every_batches = 0;
  /// Test hook mirroring CampaignConfig::kill_after_attempts: throw
  /// TrainerKilled after this many optimizer steps in THIS process
  /// (after the step's checkpoint cadence ran; 0 = before the first
  /// step). -1 = never.
  int64_t kill_after_steps = -1;
};

struct EpochStats {
  float train_mse = 0;
  float val_mse = 0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  float best_val_mse = 0;
  int best_epoch = -1;
  double seconds = 0;  // wall clock, accumulated across resumed processes
};

/// Thrown by the kill_after_steps test hook so resume tests can die at a
/// deterministic step boundary without exiting the process.
struct TrainerKilled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Train `model` on `train`, tracking MSE on `val` each epoch. `model`
/// holds the final parameters; `TrainResult` is bit-identical at any
/// `cfg.threads` (see the engine contract above).
TrainResult train_model(Regressor& model, const data::ComplexDataset& train,
                        const data::ComplexDataset& val, const TrainConfig& cfg);

/// Eval-mode predictions over a dataset (order = dataset order).
std::vector<float> evaluate(Regressor& model, const data::ComplexDataset& ds);

/// Labels in dataset order (convenience for metric computation).
std::vector<float> labels_of(const data::ComplexDataset& ds);

float validation_mse(Regressor& model, const data::ComplexDataset& ds);

/// Clip the global gradient norm of `params` to `max_norm`.
void clip_grad_norm(const std::vector<nn::Parameter*>& params, float max_norm);

/// Copy parameter values from `src` into `dst` (models must be structurally
/// identical, e.g. built from the same config). Used by PB2's exploitation
/// clones, by screening jobs to replicate a trained model across ranks, and
/// by the training engine to broadcast post-step parameters to its lanes.
void copy_parameters(Regressor& dst, Regressor& src);

}  // namespace df::models
