#include "models/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>

#include "core/parallel.h"
#include "models/checkpoint.h"
#include "nn/dropout.h"

namespace df::models {

void clip_grad_norm(const std::vector<nn::Parameter*>& params, float max_norm) {
  if (max_norm <= 0.0f) return;
  double total = 0.0;
  for (const nn::Parameter* p : params) {
    const float n = p->grad.norm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (nn::Parameter* p : params) p->grad *= scale;
  }
}

void copy_parameters(Regressor& dst, Regressor& src) {
  const std::vector<nn::Parameter*> d = dst.trainable_parameters();
  const std::vector<nn::Parameter*> s = src.trainable_parameters();
  if (d.size() != s.size()) {
    throw std::invalid_argument("copy_parameters: models are not structurally identical");
  }
  for (size_t i = 0; i < d.size(); ++i) {
    core::check_same_shape(d[i]->value, s[i]->value, "copy_parameters");
    d[i]->value = s[i]->value;
  }
}

std::vector<float> evaluate(Regressor& model, const data::ComplexDataset& ds) {
  model.set_training(false);
  std::vector<float> preds;
  preds.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    // Per-sample keyed stream, not one shared engine across the loop: the
    // same convention as the engine's lane-parallel validation, so
    // evaluate() and a trainer's val_mse agree on the same data even when
    // the dataset consumes RNG — with distinct (uncorrelated) draws per
    // sample. Augmentation is normally off in eval, where the stream is
    // never drawn from at all.
    core::Rng rng(core::derive_stream(0, core::stream_tag::kEvalSample, i));
    preds.push_back(model.predict(ds.get(i, rng)));
  }
  return preds;
}

std::vector<float> labels_of(const data::ComplexDataset& ds) {
  std::vector<float> y;
  y.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    core::Rng rng(core::derive_stream(0, core::stream_tag::kEvalSample, i));
    y.push_back(ds.get(i, rng).label);
  }
  return y;
}

float validation_mse(Regressor& model, const data::ComplexDataset& ds) {
  const std::vector<float> preds = evaluate(model, ds);
  const std::vector<float> y = labels_of(ds);
  double acc = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    const double d = preds[i] - y[i];
    acc += d * d;
  }
  return preds.empty() ? 0.0f : static_cast<float>(acc / static_cast<double>(preds.size()));
}

namespace {

/// Validation over the lanes: sample i goes to lane i % L, every
/// prediction lands in its slot, and the MSE accumulates in index order on
/// the driver — so the result cannot depend on the lane count. Each sample
/// gets the same (seed-0, index)-keyed stream evaluate() uses, which makes
/// per-sample featurization independent of which lane ran it and keeps
/// the trainer's val_mse equal to validation_mse() on the same data.
float validation_mse_lanes(const std::vector<Regressor*>& lanes, core::ThreadPool* pool,
                           const data::ComplexDataset& ds) {
  const size_t n = ds.size();
  if (n == 0) return 0.0f;
  const size_t L = lanes.size();
  std::vector<float> preds(n), labels(n);
  core::parallel_for_on(pool, L, [&](size_t l) {
    lanes[l]->set_training(false);
    for (size_t i = l; i < n; i += L) {
      core::Rng rng(core::derive_stream(0, core::stream_tag::kEvalSample, i));
      const data::Sample s = ds.get(i, rng);
      labels[i] = s.label;
      preds[i] = lanes[l]->predict(s);
    }
  });
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = preds[i] - labels[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

TrainResult train_model(Regressor& model, const data::ComplexDataset& train,
                        const data::ComplexDataset& val, const TrainConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result;
  result.best_val_mse = std::numeric_limits<float>::infinity();

  // ---- lanes ----
  int threads = cfg.threads;
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > 1 && !cfg.replica_factory) {
    throw std::invalid_argument("train_model: threads > 1 requires TrainConfig::replica_factory");
  }
  std::vector<std::unique_ptr<Regressor>> owned_lanes;
  std::vector<Regressor*> lanes;
  if (threads == 1) {
    lanes.push_back(&model);  // serial reference: master is the only lane
  } else {
    for (int l = 0; l < threads; ++l) {
      owned_lanes.push_back(cfg.replica_factory());
      lanes.push_back(owned_lanes.back().get());
    }
  }
  const size_t L = lanes.size();

  std::unique_ptr<core::ThreadPool> owned_pool;
  core::ThreadPool* pool = nullptr;
  if (L > 1) {
    pool = cfg.pool;
    if (pool == nullptr) {
      owned_pool = std::make_unique<core::ThreadPool>(L);
      pool = owned_pool.get();
    }
  }

  const std::vector<nn::Parameter*> params = model.trainable_parameters();
  auto opt = nn::make_optimizer(cfg.optimizer, params, cfg.lr);

  data::LoaderConfig lc;
  lc.batch_size = cfg.batch_size;
  lc.num_workers = cfg.loader_workers;
  lc.seed = cfg.seed;
  data::DataLoader loader(train, lc);
  const size_t total_batches = loader.batches_per_epoch();

  // ---- resume ----
  // The geometry whose change would change bits; stored in every
  // checkpoint and validated (before any state is restored) on resume.
  TrainProgress geometry;
  geometry.seed = cfg.seed;
  geometry.optimizer_kind = static_cast<int64_t>(cfg.optimizer);
  geometry.batch_size = cfg.batch_size;
  geometry.grad_shards = cfg.grad_shards;
  geometry.n_train = static_cast<int64_t>(train.size());
  geometry.n_val = static_cast<int64_t>(val.size());
  geometry.lr = cfg.lr;
  geometry.grad_clip = cfg.grad_clip;

  int64_t start_epoch = 0, start_batch = 0, n_samples = 0;
  double epoch_loss = 0.0, prior_seconds = 0.0;
  bool resumed = false;
  // cfg.epochs is deliberately NOT equality-checked geometry: resuming
  // with MORE epochs continues training (epoch-keyed streams make the
  // result bit-equal to an uninterrupted run of the longer length). The
  // guard only rejects a cursor already PAST the requested end, which
  // would otherwise silently return the longer stale history.
  geometry.epoch = cfg.epochs;

  if (!cfg.checkpoint_path.empty() && std::filesystem::exists(cfg.checkpoint_path)) {
    const TrainProgress p = load_train_checkpoint(model, *opt, cfg.checkpoint_path, &geometry);
    start_epoch = p.epoch;
    start_batch = p.batch;
    n_samples = p.n_samples;
    epoch_loss = p.epoch_loss;
    prior_seconds = p.seconds;
    for (size_t e = 0; e < p.train_mse.size(); ++e) {
      result.epochs.push_back({p.train_mse[e], p.val_mse[e]});
    }
    result.best_val_mse = p.best_val_mse;
    result.best_epoch = static_cast<int>(p.best_epoch);
    resumed = true;
  }

  int64_t steps_this_process = 0, steps_since_ckpt = 0;

  auto write_checkpoint = [&](int64_t epoch_cursor, int64_t batch_cursor) {
    TrainProgress p = geometry;
    p.epoch = epoch_cursor;
    p.batch = batch_cursor;
    p.n_samples = batch_cursor == 0 ? 0 : n_samples;
    p.epoch_loss = batch_cursor == 0 ? 0.0 : epoch_loss;
    p.seconds = prior_seconds + seconds_since(t0);
    for (const EpochStats& es : result.epochs) {
      p.train_mse.push_back(es.train_mse);
      p.val_mse.push_back(es.val_mse);
    }
    p.best_val_mse = result.best_val_mse;
    p.best_epoch = result.best_epoch;
    save_train_checkpoint(model, *opt, p, cfg.checkpoint_path);
    steps_since_ckpt = 0;
  };

  auto maybe_kill = [&] {
    if (cfg.kill_after_steps >= 0 && steps_this_process >= cfg.kill_after_steps) {
      throw TrainerKilled("train_model: killed after " + std::to_string(steps_this_process) +
                          " steps (kill_after_steps test hook)");
    }
  };

  // Broadcast master parameters to every replica lane (no-op when the
  // master is the only lane).
  auto sync_lanes = [&] {
    if (L == 1) return;
    core::parallel_for_on(pool, L, [&](size_t l) { copy_parameters(*lanes[l], model); });
  };
  sync_lanes();

  // Per-lane parameter lists and the shard-partial buffers are
  // loop-invariant in shape: hoist them so steady-state batches copy-assign
  // into existing storage instead of reallocating grad-sized tensors.
  std::vector<std::vector<nn::Parameter*>> lane_params;
  lane_params.reserve(L);
  for (Regressor* m : lanes) lane_params.push_back(m->trainable_parameters());
  const size_t max_shards =
      std::min<size_t>(static_cast<size_t>(std::max(1, cfg.grad_shards)),
                       static_cast<size_t>(std::max(1, cfg.batch_size)));
  std::vector<std::vector<core::Tensor>> partial(max_shards);
  for (auto& shard : partial) {
    shard.reserve(params.size());
    for (const nn::Parameter* p : params) shard.emplace_back(p->value.shape());
  }
  std::vector<double> shard_loss(max_shards, 0.0);

  maybe_kill();  // kill_after_steps = 0: die before the first step

  for (int64_t epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    const size_t skip =
        (resumed && epoch == start_epoch) ? static_cast<size_t>(start_batch) : size_t{0};
    if (skip == 0) {
      epoch_loss = 0.0;
      n_samples = 0;
    }
    loader.start_epoch(static_cast<uint64_t>(epoch), skip);
    size_t batch_index = skip;

    while (auto batch = loader.next()) {
      const size_t B = batch->size();
      const size_t S =
          std::min<size_t>(static_cast<size_t>(std::max(1, cfg.grad_shards)), B);
      const float inv_b = 1.0f / static_cast<float>(B);
      const size_t base_pos = batch_index * static_cast<size_t>(cfg.batch_size);

      // Phase 1 — shard forward/backward on the lanes. Shard s covers
      // samples [sB/S, (s+1)B/S); lane l runs shards l, l+L, ... so the
      // (shard → partial) mapping never depends on scheduling.
      std::fill(shard_loss.begin(), shard_loss.begin() + static_cast<long>(S), 0.0);
      core::parallel_for_on(pool, L, [&](size_t l) {
        Regressor* m = lanes[l];
        const std::vector<nn::Parameter*>& ps = lane_params[l];
        m->set_training(true);
        for (size_t s = l; s < S; s += L) {
          for (nn::Parameter* p : ps) p->grad.zero();
          const size_t lo = s * B / S, hi = (s + 1) * B / S;
          for (size_t j = lo; j < hi; ++j) {
            const data::Sample& smp = (*batch)[j];
            // Per-sample dropout streams keyed on (seed, epoch, position):
            // the mask is the same whichever lane draws it.
            nn::KeyedDropoutScope key(core::derive_stream(
                cfg.seed, core::stream_tag::kTrainDropout + static_cast<uint64_t>(epoch),
                base_pos + j));
            const float pred = m->forward_train(smp);
            const float err = pred - smp.label;
            shard_loss[s] += static_cast<double>(err) * err;
            // d(mean squared error)/d(pred_j) = 2 (pred_j - y_j) / B
            m->backward(2.0f * err * inv_b);
          }
          for (size_t i = 0; i < ps.size(); ++i) partial[s][i] = ps[i]->grad;
        }
      });

      // Phase 2 — fixed pairwise tree reduction of the shard partials.
      // The tree shape depends only on S, so the summation order (and its
      // rounding) is identical at every thread count.
      for (size_t stride = 1; stride < S; stride *= 2) {
        for (size_t s = 0; s + stride < S; s += 2 * stride) {
          for (size_t i = 0; i < partial[s].size(); ++i) {
            partial[s][i] += partial[s + stride][i];
          }
        }
      }
      // Copy (not move): partial[0]'s buffers are reused by the next batch.
      for (size_t i = 0; i < params.size(); ++i) params[i]->grad = partial[0][i];
      for (size_t s = 0; s < S; ++s) epoch_loss += shard_loss[s];
      n_samples += static_cast<int64_t>(B);

      // Phase 3 — clip + step on the master, then broadcast.
      clip_grad_norm(params, cfg.grad_clip);
      opt->step();
      sync_lanes();

      ++steps_this_process;
      ++steps_since_ckpt;
      ++batch_index;
      if (!cfg.checkpoint_path.empty() && cfg.checkpoint_every_batches > 0 &&
          steps_since_ckpt >= cfg.checkpoint_every_batches && batch_index < total_batches) {
        write_checkpoint(epoch, static_cast<int64_t>(batch_index));
      }
      maybe_kill();
    }

    EpochStats es;
    es.train_mse =
        n_samples ? static_cast<float>(epoch_loss / static_cast<double>(n_samples)) : 0;
    es.val_mse = validation_mse_lanes(lanes, pool, val);
    result.epochs.push_back(es);
    if (es.val_mse < result.best_val_mse) {
      result.best_val_mse = es.val_mse;
      result.best_epoch = static_cast<int>(epoch);
    }
    if (cfg.verbose) {
      std::printf("[%s] epoch %lld/%d train_mse=%.4f val_mse=%.4f\n", model.name().c_str(),
                  static_cast<long long>(epoch + 1), cfg.epochs, es.train_mse, es.val_mse);
    }
    if (!cfg.checkpoint_path.empty()) write_checkpoint(epoch + 1, 0);
  }
  result.seconds = prior_seconds + seconds_since(t0);
  return result;
}

}  // namespace df::models
