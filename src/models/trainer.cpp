#include "models/trainer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

namespace df::models {

void clip_grad_norm(const std::vector<nn::Parameter*>& params, float max_norm) {
  if (max_norm <= 0.0f) return;
  double total = 0.0;
  for (const nn::Parameter* p : params) {
    const float n = p->grad.norm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (nn::Parameter* p : params) p->grad *= scale;
  }
}

void copy_parameters(Regressor& dst, Regressor& src) {
  const std::vector<nn::Parameter*> d = dst.trainable_parameters();
  const std::vector<nn::Parameter*> s = src.trainable_parameters();
  if (d.size() != s.size()) {
    throw std::invalid_argument("copy_parameters: models are not structurally identical");
  }
  for (size_t i = 0; i < d.size(); ++i) {
    core::check_same_shape(d[i]->value, s[i]->value, "copy_parameters");
    d[i]->value = s[i]->value;
  }
}

std::vector<float> evaluate(Regressor& model, const data::ComplexDataset& ds) {
  model.set_training(false);
  core::Rng rng(0);  // no augmentation in eval featurization
  std::vector<float> preds;
  preds.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    preds.push_back(model.predict(ds.get(i, rng)));
  }
  return preds;
}

std::vector<float> labels_of(const data::ComplexDataset& ds) {
  core::Rng rng(0);
  std::vector<float> y;
  y.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) y.push_back(ds.get(i, rng).label);
  return y;
}

float validation_mse(Regressor& model, const data::ComplexDataset& ds) {
  const std::vector<float> preds = evaluate(model, ds);
  const std::vector<float> y = labels_of(ds);
  double acc = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    const double d = preds[i] - y[i];
    acc += d * d;
  }
  return preds.empty() ? 0.0f : static_cast<float>(acc / static_cast<double>(preds.size()));
}

TrainResult train_model(Regressor& model, const data::ComplexDataset& train,
                        const data::ComplexDataset& val, const TrainConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result;
  result.best_val_mse = std::numeric_limits<float>::infinity();

  auto opt = nn::make_optimizer(cfg.optimizer, model.trainable_parameters(), cfg.lr);

  data::LoaderConfig lc;
  lc.batch_size = cfg.batch_size;
  lc.num_workers = cfg.loader_workers;
  lc.seed = cfg.seed;
  data::DataLoader loader(train, lc);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    model.set_training(true);
    loader.start_epoch();
    double epoch_loss = 0.0;
    size_t n_samples = 0;
    while (auto batch = loader.next()) {
      model.zero_grad();
      const float inv_b = 1.0f / static_cast<float>(batch->size());
      for (const data::Sample& s : *batch) {
        const float pred = model.forward_train(s);
        const float err = pred - s.label;
        epoch_loss += static_cast<double>(err) * err;
        // d(mean squared error)/d(pred_i) = 2 (pred_i - y_i) / B
        model.backward(2.0f * err * inv_b);
      }
      n_samples += batch->size();
      clip_grad_norm(opt->params(), cfg.grad_clip);
      opt->step();
    }

    EpochStats es;
    es.train_mse = n_samples ? static_cast<float>(epoch_loss / static_cast<double>(n_samples)) : 0;
    es.val_mse = validation_mse(model, val);
    result.epochs.push_back(es);
    if (es.val_mse < result.best_val_mse) {
      result.best_val_mse = es.val_mse;
      result.best_epoch = epoch;
    }
    if (cfg.verbose) {
      std::printf("[%s] epoch %d/%d train_mse=%.4f val_mse=%.4f\n", model.name().c_str(),
                  epoch + 1, cfg.epochs, es.train_mse, es.val_mse);
    }
  }
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace df::models
