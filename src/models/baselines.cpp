#include "models/baselines.h"

namespace df::models {

std::unique_ptr<Cnn3d> make_pafnucy(int in_channels, int grid_dim, core::Rng& rng) {
  Cnn3dConfig cfg;
  cfg.in_channels = in_channels;
  cfg.grid_dim = grid_dim;
  cfg.conv_filters1 = 32;
  cfg.conv_filters2 = 64;
  cfg.dense_nodes = 96;
  cfg.batch_norm = false;
  cfg.residual1 = false;
  cfg.residual2 = false;  // Pafnucy has no skip connections
  cfg.dropout1 = 0.5f;    // Pafnucy's characteristic heavy dropout
  cfg.dropout2 = 0.25f;
  return std::make_unique<Cnn3d>(cfg, rng);
}

std::unique_ptr<Cnn3d> make_kdeep(int in_channels, int grid_dim, core::Rng& rng) {
  Cnn3dConfig cfg;
  cfg.in_channels = in_channels;
  cfg.grid_dim = grid_dim;
  cfg.conv_filters1 = 48;  // KDeep's wider early filters (SqueezeNet-ish)
  cfg.conv_filters2 = 96;
  cfg.dense_nodes = 128;
  cfg.batch_norm = true;
  cfg.residual1 = true;
  cfg.residual2 = false;
  cfg.dropout1 = 0.1f;
  cfg.dropout2 = 0.0f;
  return std::make_unique<Cnn3d>(cfg, rng);
}

}  // namespace df::models
