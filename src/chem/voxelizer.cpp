#include "chem/voxelizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/simd_math.h"

#include "core/parallel.h"

namespace df::chem {

namespace {
int channel_for_atom(const Atom& a, int block, int cpb) {
  int c;
  switch (a.element) {
    case Element::C: c = 0; break;
    case Element::N: c = 1; break;
    case Element::O: c = 2; break;
    default: c = 3; break;
  }
  return block * cpb + c;
}

// One (channel, weight) deposit for one atom with all per-atom geometry
// precomputed, so the grid can be filled one z-slice at a time (slices are
// disjoint, which makes the fill safely parallel without atomics) without
// re-deriving sigma/cutoff/box bounds per slice.
struct SplatOp {
  core::Vec3 rel;   // atom position relative to the grid center
  float cutoff2;    // squared Gaussian cutoff radius
  float inv2s2;     // 1 / (2 sigma^2)
  float weight;
  int channel;
  int xlo, xhi, ylo, yhi, zlo, zhi;  // inclusive voxel box, clipped to grid
};

// The splat is exp-bound (one Gaussian per in-cutoff voxel), so the x rows
// run 16 lanes at a time through the shared vectorized exp
// (core/simd_math.h); out-of-range or beyond-cutoff lanes contribute an
// exact +0.0f. Accumulation per cell keeps the per-op order of the caller,
// so serial and sliced-parallel fills stay bitwise identical.
void splat_slice(core::Tensor& grid, const SplatOp& op, int G, float res, float half, int z) {
  float* base = grid.data() + (static_cast<int64_t>(op.channel) * G + z) * G * G;
  const float vz = (static_cast<float>(z) + 0.5f) * res - half;
  const float dz = vz - op.rel.z;
#if defined(DF_SIMD_MATH_VECTOR)
  using core::simd::vf16;
  const float dz2 = dz * dz;
  for (int y = op.ylo; y <= op.yhi; ++y) {
    const float vy = (static_cast<float>(y) + 0.5f) * res - half;
    const float dy = vy - op.rel.y;
    const float dyz2 = dy * dy + dz2;
    float* row = base + static_cast<int64_t>(y) * G;
    for (int x0 = op.xlo; x0 <= op.xhi; x0 += 16) {
      const vf16 fx =
          (core::simd::splat(static_cast<float>(x0)) + core::simd::iota16() +
           core::simd::splat(0.5f)) * core::simd::splat(res) - core::simd::splat(half);
      const vf16 dx = fx - core::simd::splat(op.rel.x);
      const vf16 d2 = dx * dx + core::simd::splat(dyz2);
      vf16 w = core::simd::splat(op.weight) *
               core::simd::vexp16(-d2 * core::simd::splat(op.inv2s2));
      w = d2 > core::simd::splat(op.cutoff2) ? vf16{} : w;
      alignas(64) float buf[16];
      std::memcpy(buf, &w, sizeof(buf));
      const int count = std::min(16, op.xhi - x0 + 1);
      for (int c = 0; c < count; ++c) row[x0 + c] += buf[c];
    }
  }
#else
  for (int y = op.ylo; y <= op.yhi; ++y) {
    const float vy = (static_cast<float>(y) + 0.5f) * res - half;
    const float dy = vy - op.rel.y;
    for (int x = op.xlo; x <= op.xhi; ++x) {
      const float vx = (static_cast<float>(x) + 0.5f) * res - half;
      const float dx = vx - op.rel.x;
      const float d2 = dx * dx + dy * dy + dz * dz;
      if (d2 > op.cutoff2) continue;
      base[static_cast<int64_t>(y) * G + x] += op.weight * core::simd::exp_scalar(-d2 * op.inv2s2);
    }
  }
#endif
}

// Expand one atom into its per-channel deposits. Each atom pushes at most
// one op per channel, so per-channel accumulation order equals atom push
// order — the invariant every graft/amortization path below leans on.
void expand_atom(const VoxelConfig& cfg, const Atom& a, int block, float hb_count,
                 const core::Vec3& center, std::vector<SplatOp>& ops) {
  const int G = cfg.grid_dim;
  const float res = cfg.resolution;
  const float half = cfg.box_extent() * 0.5f;
  const int cpb = cfg.channels_per_block();
  const ElementInfo& info = element_info(a.element);
  const float sigma = info.vdw_radius * cfg.sigma_scale;
  const float cutoff = sigma * cfg.cutoff_sigmas;
  SplatOp op;
  op.rel = a.pos - center;
  op.cutoff2 = cutoff * cutoff;
  op.inv2s2 = 1.0f / (2.0f * sigma * sigma);
  const int r = static_cast<int>(std::ceil(cutoff / res));
  const int cx = static_cast<int>(std::floor((op.rel.x + half) / res));
  const int cy = static_cast<int>(std::floor((op.rel.y + half) / res));
  const int cz = static_cast<int>(std::floor((op.rel.z + half) / res));
  op.xlo = std::max(0, cx - r);
  op.xhi = std::min(G - 1, cx + r);
  op.ylo = std::max(0, cy - r);
  op.yhi = std::min(G - 1, cy + r);
  op.zlo = std::max(0, cz - r);
  op.zhi = std::min(G - 1, cz + r);
  if (op.xlo > op.xhi || op.ylo > op.yhi || op.zlo > op.zhi) return;  // fully off-grid

  auto push = [&](int channel, float weight) {
    op.channel = channel;
    op.weight = weight;
    ops.push_back(op);
  };
  push(channel_for_atom(a, block, cpb), 1.0f);
  const int pharm = block * cpb;
  if (info.hydrophobic) push(pharm + 4, 1.0f);
  if (info.hbond_donor_heavy && a.implicit_h > 0) push(pharm + 5, 1.0f);
  if (info.hbond_acceptor) push(pharm + 6, 1.0f);
  if (a.formal_charge != 0) push(pharm + 7, static_cast<float>(std::abs(a.formal_charge)));
  if (hb_count > 0.0f) push(pharm + kVoxelHBondChannel, hb_count);
}

// Apply `ops` to the grid. Bucket ops by z-slice (CSR layout) so each slice
// walks only the ops that actually touch it instead of scanning the full
// list. The fill appends in op order, so every slice still applies its ops
// in the same sequence as a full scan — bitwise-identical accumulation at
// any compute-pool width (slices write disjoint memory). The scratch is
// thread_local: voxelize is hot in serving and must not pay a heap round
// trip per pose.
void fill_ops(Tensor& view, const std::vector<SplatOp>& ops, const VoxelConfig& cfg) {
  const int G = cfg.grid_dim;
  const float res = cfg.resolution;
  const float half = cfg.box_extent() * 0.5f;
  static thread_local std::vector<int32_t> slice_start;  // size G+1
  static thread_local std::vector<int32_t> slice_ops;    // op indices, CSR
  slice_start.assign(static_cast<size_t>(G) + 1, 0);
  for (const SplatOp& op : ops) {
    for (int z = op.zlo; z <= op.zhi; ++z) ++slice_start[static_cast<size_t>(z) + 1];
  }
  for (int z = 0; z < G; ++z) slice_start[static_cast<size_t>(z) + 1] += slice_start[static_cast<size_t>(z)];
  slice_ops.resize(static_cast<size_t>(slice_start[static_cast<size_t>(G)]));
  {
    static thread_local std::vector<int32_t> cursor;
    cursor.assign(slice_start.begin(), slice_start.end() - 1);
    for (size_t oi = 0; oi < ops.size(); ++oi) {
      for (int z = ops[oi].zlo; z <= ops[oi].zhi; ++z) {
        slice_ops[static_cast<size_t>(cursor[static_cast<size_t>(z)]++)] = static_cast<int32_t>(oi);
      }
    }
  }

  // Workers must see the caller's buckets, not their own thread_locals —
  // hand them raw pointers, never the thread_local names.
  const int32_t* const sstart = slice_start.data();
  const int32_t* const sops = slice_ops.data();
  const SplatOp* const opsp = ops.data();
  core::parallel_for_auto(static_cast<size_t>(G), 4, [&, sstart, sops, opsp](size_t zi) {
    const int z = static_cast<int>(zi);
    for (int32_t i = sstart[zi]; i < sstart[zi + 1]; ++i) {
      splat_slice(view, opsp[static_cast<size_t>(sops[i])], G, res, half, z);
    }
  });
}
}  // namespace

Tensor Voxelizer::voxelize(const Molecule& ligand, const std::vector<Atom>& pocket,
                           const core::Vec3& center) const {
  // The (1, C, G, G, G) flat layout is identical to (C, G, G, G), so the
  // splats index it directly — no reshape copy on the way out.
  Tensor view({1, cfg_.channels(), cfg_.grid_dim, cfg_.grid_dim, cfg_.grid_dim});

  // Expand atoms into per-channel deposits once (geometry included), then
  // fill the grid slice-parallel. Op scratch is reused across calls.
  static thread_local std::vector<SplatOp> ops;
  ops.clear();
  ops.reserve((ligand.atoms().size() + pocket.size()) * 2);

  // v2: per-atom interface H-bond partner counts feed the extra channel.
  // Counted once up front; v1 skips this entirely, so its op list — and
  // the grid it produces — is byte-for-byte the historical one.
  static thread_local std::vector<float> lig_hb, poc_hb;
  if (cfg_.feature_set_version >= 2) {
    lig_hb.assign(ligand.atoms().size(), 0.0f);
    poc_hb.assign(pocket.size(), 0.0f);
    for (const HBond& hb : find_hbonds(ligand, pocket, cfg_.hbond)) {
      lig_hb[static_cast<size_t>(hb.ligand_atom)] += 1.0f;
      poc_hb[static_cast<size_t>(hb.pocket_atom)] += 1.0f;
    }
  }
  const bool v2 = cfg_.feature_set_version >= 2;
  for (size_t i = 0; i < ligand.atoms().size(); ++i) {
    expand_atom(cfg_, ligand.atoms()[i], /*block=*/0, v2 ? lig_hb[i] : 0.0f, center, ops);
  }
  for (size_t i = 0; i < pocket.size(); ++i) {
    expand_atom(cfg_, pocket[i], /*block=*/1, v2 ? poc_hb[i] : 0.0f, center, ops);
  }
  fill_ops(view, ops, cfg_);
  return view;
}

Tensor Voxelizer::voxelize_pocket(const std::vector<Atom>& pocket,
                                  const core::Vec3& center) const {
  return voxelize(Molecule(), pocket, center);
}

Tensor Voxelizer::voxelize_ligand_onto(const Molecule& ligand, const Tensor& pocket_grid,
                                       const core::Vec3& center) const {
  if (cfg_.feature_set_version >= 2) {
    throw std::logic_error(
        "voxelize_ligand_onto: v2 H-bond channel couples ligand and pocket; "
        "pocket-grid amortization is v1-only — call voxelize() per pose");
  }
  Tensor grid = voxelize(ligand, {}, center);
  // Channel blocks are disjoint: ligand splats live in block 0, pocket in
  // block 1, so grafting the cached pocket block reproduces the joint
  // voxelization bit for bit.
  const int64_t block = static_cast<int64_t>(cfg_.channels_per_block()) * cfg_.grid_dim *
                        cfg_.grid_dim * cfg_.grid_dim;
  std::memcpy(grid.data() + block, pocket_grid.data() + block,
              static_cast<size_t>(block) * sizeof(float));
  return grid;
}

Tensor Voxelizer::voxelize_ligand_onto(const Molecule& ligand, const std::vector<Atom>& pocket,
                                       const Tensor& pocket_grid, const core::Vec3& center) const {
  if (cfg_.feature_set_version < 2) return voxelize_ligand_onto(ligand, pocket_grid, center);

  // v2: the ligand couples to the pocket only through the per-block H-bond
  // channel, so the graft still works — it just has to re-derive the H-bond
  // deposits for this ligand. Base pocket channels are ligand-independent
  // (identical ops in the joint and ligand-free builds), and a ligand-free
  // pocket grid has no interface H-bonds, so its H-bond channel is zero:
  // splatting this ligand's pocket-side H-bond deposits on top of the graft
  // reproduces the joint accumulation. Per-channel op order stays
  // ascending-atom-index in every piece, matching voxelize() bit for bit.
  static thread_local std::vector<float> lig_hb, poc_hb;
  lig_hb.assign(ligand.atoms().size(), 0.0f);
  poc_hb.assign(pocket.size(), 0.0f);
  for (const HBond& hb : find_hbonds(ligand, pocket, cfg_.hbond)) {
    lig_hb[static_cast<size_t>(hb.ligand_atom)] += 1.0f;
    poc_hb[static_cast<size_t>(hb.pocket_atom)] += 1.0f;
  }

  const int G = cfg_.grid_dim;
  Tensor grid({1, cfg_.channels(), G, G, G});
  static thread_local std::vector<SplatOp> ops;
  ops.clear();
  ops.reserve(ligand.atoms().size() * 2);
  for (size_t i = 0; i < ligand.atoms().size(); ++i) {
    expand_atom(cfg_, ligand.atoms()[i], /*block=*/0, lig_hb[i], center, ops);
  }
  fill_ops(grid, ops, cfg_);

  const int cpb = cfg_.channels_per_block();
  const int64_t block = static_cast<int64_t>(cpb) * G * G * G;
  std::memcpy(grid.data() + block, pocket_grid.data() + block,
              static_cast<size_t>(block) * sizeof(float));

  // Pocket-side H-bond deposits only; the base-channel ops expand_atom also
  // emits are already present via the graft, so drop them (stable filter —
  // the surviving ops keep their ascending-atom order).
  const int hb_channel = cpb + kVoxelHBondChannel;
  ops.clear();
  for (size_t i = 0; i < pocket.size(); ++i) {
    if (poc_hb[i] <= 0.0f) continue;
    expand_atom(cfg_, pocket[i], /*block=*/1, poc_hb[i], center, ops);
  }
  ops.erase(std::remove_if(ops.begin(), ops.end(),
                           [&](const SplatOp& op) { return op.channel != hb_channel; }),
            ops.end());
  fill_ops(grid, ops, cfg_);
  return grid;
}

void random_rotation_augment(Molecule& ligand, std::vector<Atom>& pocket, const core::Vec3& center,
                             core::Rng& rng, float prob) {
  const core::Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const core::Vec3& axis : axes) {
    if (rng.uniform() >= prob) continue;
    const float theta = static_cast<float>(rng.randint(1, 3)) * 1.5707963f;  // 90/180/270 deg
    ligand.rotate(center, axis, theta);
    for (Atom& a : pocket) {
      a.pos = center + core::rotate_axis_angle(a.pos - center, axis, theta);
    }
  }
}

}  // namespace df::chem
