#include "chem/voxelizer.h"

#include <cmath>

namespace df::chem {

namespace {
int channel_for_atom(const Atom& a, int block) {
  int c;
  switch (a.element) {
    case Element::C: c = 0; break;
    case Element::N: c = 1; break;
    case Element::O: c = 2; break;
    default: c = 3; break;
  }
  return block * kVoxelChannelsPerBlock + c;
}
}  // namespace

void Voxelizer::splat(Tensor& grid, const Atom& atom, int block, const core::Vec3& center) const {
  const int G = cfg_.grid_dim;
  const float res = cfg_.resolution;
  const float half = cfg_.box_extent() * 0.5f;
  const ElementInfo& info = element_info(atom.element);
  const float sigma = info.vdw_radius * cfg_.sigma_scale;
  const float cutoff = sigma * cfg_.cutoff_sigmas;
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);

  // Atom position in grid coordinates.
  const core::Vec3 rel = atom.pos - center;
  const float gx = (rel.x + half) / res, gy = (rel.y + half) / res, gz = (rel.z + half) / res;
  const int r = static_cast<int>(std::ceil(cutoff / res));
  const int cx = static_cast<int>(std::floor(gx));
  const int cy = static_cast<int>(std::floor(gy));
  const int cz = static_cast<int>(std::floor(gz));

  auto add_to = [&](int channel, float weight) {
    float* base = grid.data() + static_cast<int64_t>(channel) * G * G * G;
    for (int z = cz - r; z <= cz + r; ++z) {
      if (z < 0 || z >= G) continue;
      for (int y = cy - r; y <= cy + r; ++y) {
        if (y < 0 || y >= G) continue;
        for (int x = cx - r; x <= cx + r; ++x) {
          if (x < 0 || x >= G) continue;
          const float vx = (static_cast<float>(x) + 0.5f) * res - half;
          const float vy = (static_cast<float>(y) + 0.5f) * res - half;
          const float vz = (static_cast<float>(z) + 0.5f) * res - half;
          const float dx = vx - rel.x, dy = vy - rel.y, dz = vz - rel.z;
          const float d2 = dx * dx + dy * dy + dz * dz;
          if (d2 > cutoff * cutoff) continue;
          base[(static_cast<int64_t>(z) * G + y) * G + x] += weight * std::exp(-d2 * inv2s2);
        }
      }
    }
  };

  add_to(channel_for_atom(atom, block), 1.0f);
  const int pharm = block * kVoxelChannelsPerBlock;
  if (info.hydrophobic) add_to(pharm + 4, 1.0f);
  if (info.hbond_donor_heavy && atom.implicit_h > 0) add_to(pharm + 5, 1.0f);
  if (info.hbond_acceptor) add_to(pharm + 6, 1.0f);
  if (atom.formal_charge != 0) add_to(pharm + 7, static_cast<float>(std::abs(atom.formal_charge)));
}

Tensor Voxelizer::voxelize(const Molecule& ligand, const std::vector<Atom>& pocket,
                           const core::Vec3& center) const {
  const int G = cfg_.grid_dim;
  Tensor grid({1, cfg_.channels(), G, G, G});
  // The (1, C, ...) tensor is addressed as (C, ...) internally: batch dim 1.
  Tensor view = grid.reshaped({cfg_.channels(), G, G, G});
  for (const Atom& a : ligand.atoms()) splat(view, a, /*block=*/0, center);
  for (const Atom& a : pocket) splat(view, a, /*block=*/1, center);
  return view.reshaped({1, cfg_.channels(), G, G, G});
}

void random_rotation_augment(Molecule& ligand, std::vector<Atom>& pocket, const core::Vec3& center,
                             core::Rng& rng, float prob) {
  const core::Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const core::Vec3& axis : axes) {
    if (rng.uniform() >= prob) continue;
    const float theta = static_cast<float>(rng.randint(1, 3)) * 1.5707963f;  // 90/180/270 deg
    ligand.rotate(center, axis, theta);
    for (Atom& a : pocket) {
      a.pos = center + core::rotate_axis_angle(a.pos - center, axis, theta);
    }
  }
}

}  // namespace df::chem
