#include "chem/voxelizer.h"

#include <cmath>
#include <vector>

#include "core/parallel.h"

namespace df::chem {

namespace {
int channel_for_atom(const Atom& a, int block) {
  int c;
  switch (a.element) {
    case Element::C: c = 0; break;
    case Element::N: c = 1; break;
    case Element::O: c = 2; break;
    default: c = 3; break;
  }
  return block * kVoxelChannelsPerBlock + c;
}

// One (channel, weight) deposit for one atom with all per-atom geometry
// precomputed, so the grid can be filled one z-slice at a time (slices are
// disjoint, which makes the fill safely parallel without atomics) without
// re-deriving sigma/cutoff/box bounds per slice.
struct SplatOp {
  core::Vec3 rel;   // atom position relative to the grid center
  float cutoff2;    // squared Gaussian cutoff radius
  float inv2s2;     // 1 / (2 sigma^2)
  float weight;
  int channel;
  int xlo, xhi, ylo, yhi, zlo, zhi;  // inclusive voxel box, clipped to grid
};

void splat_slice(core::Tensor& grid, const SplatOp& op, int G, float res, float half, int z) {
  float* base = grid.data() + (static_cast<int64_t>(op.channel) * G + z) * G * G;
  const float vz = (static_cast<float>(z) + 0.5f) * res - half;
  const float dz = vz - op.rel.z;
  for (int y = op.ylo; y <= op.yhi; ++y) {
    const float vy = (static_cast<float>(y) + 0.5f) * res - half;
    const float dy = vy - op.rel.y;
    for (int x = op.xlo; x <= op.xhi; ++x) {
      const float vx = (static_cast<float>(x) + 0.5f) * res - half;
      const float dx = vx - op.rel.x;
      const float d2 = dx * dx + dy * dy + dz * dz;
      if (d2 > op.cutoff2) continue;
      base[static_cast<int64_t>(y) * G + x] += op.weight * std::exp(-d2 * op.inv2s2);
    }
  }
}
}  // namespace

Tensor Voxelizer::voxelize(const Molecule& ligand, const std::vector<Atom>& pocket,
                           const core::Vec3& center) const {
  const int G = cfg_.grid_dim;
  const float res = cfg_.resolution;
  const float half = cfg_.box_extent() * 0.5f;
  Tensor grid({1, cfg_.channels(), G, G, G});
  // The (1, C, ...) tensor is addressed as (C, ...) internally: batch dim 1.
  Tensor view = grid.reshaped({cfg_.channels(), G, G, G});

  // Expand atoms into per-channel deposits once (geometry included), then
  // fill the grid one z-slice at a time. Slices write disjoint memory, so
  // the slice loop fans out over the compute pool when one is installed;
  // per-cell accumulation order is unchanged, so output is bitwise
  // identical either way.
  std::vector<SplatOp> ops;
  ops.reserve((ligand.atoms().size() + pocket.size()) * 2);
  auto expand = [&](const Atom& a, int block) {
    const ElementInfo& info = element_info(a.element);
    const float sigma = info.vdw_radius * cfg_.sigma_scale;
    const float cutoff = sigma * cfg_.cutoff_sigmas;
    SplatOp op;
    op.rel = a.pos - center;
    op.cutoff2 = cutoff * cutoff;
    op.inv2s2 = 1.0f / (2.0f * sigma * sigma);
    const int r = static_cast<int>(std::ceil(cutoff / res));
    const int cx = static_cast<int>(std::floor((op.rel.x + half) / res));
    const int cy = static_cast<int>(std::floor((op.rel.y + half) / res));
    const int cz = static_cast<int>(std::floor((op.rel.z + half) / res));
    op.xlo = std::max(0, cx - r);
    op.xhi = std::min(G - 1, cx + r);
    op.ylo = std::max(0, cy - r);
    op.yhi = std::min(G - 1, cy + r);
    op.zlo = std::max(0, cz - r);
    op.zhi = std::min(G - 1, cz + r);
    if (op.xlo > op.xhi || op.ylo > op.yhi || op.zlo > op.zhi) return;  // fully off-grid

    auto push = [&](int channel, float weight) {
      op.channel = channel;
      op.weight = weight;
      ops.push_back(op);
    };
    push(channel_for_atom(a, block), 1.0f);
    const int pharm = block * kVoxelChannelsPerBlock;
    if (info.hydrophobic) push(pharm + 4, 1.0f);
    if (info.hbond_donor_heavy && a.implicit_h > 0) push(pharm + 5, 1.0f);
    if (info.hbond_acceptor) push(pharm + 6, 1.0f);
    if (a.formal_charge != 0) push(pharm + 7, static_cast<float>(std::abs(a.formal_charge)));
  };
  for (const Atom& a : ligand.atoms()) expand(a, /*block=*/0);
  for (const Atom& a : pocket) expand(a, /*block=*/1);

  core::parallel_for_auto(static_cast<size_t>(G), 4, [&](size_t zi) {
    const int z = static_cast<int>(zi);
    for (const SplatOp& op : ops) {
      if (z < op.zlo || z > op.zhi) continue;
      splat_slice(view, op, G, res, half, z);
    }
  });
  return view.reshaped({1, cfg_.channels(), G, G, G});
}

void random_rotation_augment(Molecule& ligand, std::vector<Atom>& pocket, const core::Vec3& center,
                             core::Rng& rng, float prob) {
  const core::Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const core::Vec3& axis : axes) {
    if (rng.uniform() >= prob) continue;
    const float theta = static_cast<float>(rng.randint(1, 3)) * 1.5707963f;  // 90/180/270 deg
    ligand.rotate(center, axis, theta);
    for (Atom& a : pocket) {
      a.pos = center + core::rotate_axis_angle(a.pos - center, axis, theta);
    }
  }
}

}  // namespace df::chem
