#include "chem/elements.h"

#include <array>
#include <stdexcept>
#include <string>

namespace df::chem {

namespace {
// Radii: Cordero covalent / Bondi vdw (rounded); valences are the organic
// defaults the SMILES parser and generator enforce.
constexpr std::array<ElementInfo, kNumElements> kTable = {{
    /* H  */ {"H", 0.31f, 1.20f, 2.20f, 1, 1.008f, false, false, false},
    /* C  */ {"C", 0.76f, 1.70f, 2.55f, 4, 12.011f, true, false, false},
    /* N  */ {"N", 0.71f, 1.55f, 3.04f, 3, 14.007f, false, true, true},
    /* O  */ {"O", 0.66f, 1.52f, 3.44f, 2, 15.999f, false, true, true},
    /* F  */ {"F", 0.57f, 1.47f, 3.98f, 1, 18.998f, true, false, true},
    /* P  */ {"P", 1.07f, 1.80f, 2.19f, 5, 30.974f, false, false, false},
    /* S  */ {"S", 1.05f, 1.80f, 2.58f, 2, 32.06f, false, true, false},
    /* Cl */ {"Cl", 1.02f, 1.75f, 3.16f, 1, 35.45f, true, false, false},
    /* Br */ {"Br", 1.20f, 1.85f, 2.96f, 1, 79.904f, true, false, false},
    /* I  */ {"I", 1.39f, 1.98f, 2.66f, 1, 126.904f, true, false, false},
    /* M  */ {"M", 1.50f, 2.00f, 1.60f, 6, 55.845f, false, false, false},
}};
}  // namespace

const ElementInfo& element_info(Element e) { return kTable[static_cast<size_t>(e)]; }

Element element_from_symbol(std::string_view s) {
  for (int i = 0; i < kNumElements; ++i) {
    if (kTable[static_cast<size_t>(i)].symbol == s) return static_cast<Element>(i);
  }
  throw std::invalid_argument("unknown element symbol: " + std::string(s));
}

}  // namespace df::chem
