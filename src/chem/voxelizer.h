// Voxelized representation of a protein–ligand complex — the 3D-CNN's input
// (paper Fig. 1, left branch). Atoms are splatted into a cubic grid centred
// on the pocket with per-channel Gaussian densities; ligand and protein
// atoms occupy disjoint channel blocks so the network can tell them apart,
// matching the FAST featurization.
#pragma once

#include <vector>

#include "chem/molecule.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace df::chem {

using core::Tensor;

/// Per-block channels (applied once for ligand atoms, once for protein):
///   0 carbon, 1 nitrogen, 2 oxygen, 3 other-heavy,
///   4 hydrophobic, 5 H-bond donor, 6 H-bond acceptor, 7 charged.
inline constexpr int kVoxelChannelsPerBlock = 8;

struct VoxelConfig {
  int grid_dim = 16;        // voxels per axis
  float resolution = 1.25f; // Angstrom per voxel => 20 A box by default
  float sigma_scale = 0.5f; // Gaussian sigma = vdw_radius * sigma_scale
  float cutoff_sigmas = 2.0f;

  int channels() const { return 2 * kVoxelChannelsPerBlock; }
  float box_extent() const { return static_cast<float>(grid_dim) * resolution; }
};

class Voxelizer {
 public:
  explicit Voxelizer(VoxelConfig cfg = {}) : cfg_(cfg) {}

  /// Produce a (1, C, G, G, G) tensor centred on `center` (normally the
  /// pocket centroid). Grid z-slices are filled independently and fan out
  /// over the shared compute pool (core/parallel.h) when one is installed;
  /// output is bitwise identical either way.
  Tensor voxelize(const Molecule& ligand, const std::vector<Atom>& pocket,
                  const core::Vec3& center) const;

  /// Pocket-only grid (ligand block channels left zero) for reuse across
  /// the many poses docked into one pocket.
  Tensor voxelize_pocket(const std::vector<Atom>& pocket, const core::Vec3& center) const;

  /// Splat only the ligand, then copy `pocket_grid`'s protein-block
  /// channels in. Ligand and protein occupy disjoint channel blocks, so the
  /// result is bitwise identical to voxelize(ligand, pocket, center) with
  /// the pocket `pocket_grid` was built from — at a fraction of the splat
  /// work. The serving scorer uses this to amortize pocket splatting over a
  /// micro-batch (serve/scorer.h).
  Tensor voxelize_ligand_onto(const Molecule& ligand, const Tensor& pocket_grid,
                              const core::Vec3& center) const;

  const VoxelConfig& config() const { return cfg_; }

 private:
  VoxelConfig cfg_;
};

/// Training-time augmentation (paper §3.3.1): independently rotate the
/// complex 90° about X, Y, Z each with probability `prob` before
/// voxelization. Returns rotated copies; graph features are unaffected.
void random_rotation_augment(Molecule& ligand, std::vector<Atom>& pocket, const core::Vec3& center,
                             core::Rng& rng, float prob = 0.10f);

}  // namespace df::chem
