// Voxelized representation of a protein–ligand complex — the 3D-CNN's input
// (paper Fig. 1, left branch). Atoms are splatted into a cubic grid centred
// on the pocket with per-channel Gaussian densities; ligand and protein
// atoms occupy disjoint channel blocks so the network can tell them apart,
// matching the FAST featurization.
#pragma once

#include <vector>

#include "chem/hbond.h"
#include "chem/molecule.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace df::chem {

using core::Tensor;

/// Per-block channels (applied once for ligand atoms, once for protein):
///   0 carbon, 1 nitrogen, 2 oxygen, 3 other-heavy,
///   4 hydrophobic, 5 H-bond donor, 6 H-bond acceptor, 7 charged.
inline constexpr int kVoxelChannelsPerBlock = 8;
/// feature_set_version >= 2 appends one more channel per block: Gaussian
/// density weighted by the atom's interface H-bond partner count under the
/// chem/hbond.h geometric criteria (distance + heavy-atom angle).
inline constexpr int kVoxelHBondChannel = 8;

struct VoxelConfig {
  int grid_dim = 16;        // voxels per axis
  float resolution = 1.25f; // Angstrom per voxel => 20 A box by default
  float sigma_scale = 0.5f; // Gaussian sigma = vdw_radius * sigma_scale
  float cutoff_sigmas = 2.0f;
  /// Feature-set contract version. 1 = today's 8-channel blocks,
  /// bitwise-pinned so existing models keep scoring identically. 2 appends
  /// the interface H-bond channel to each block (see kVoxelHBondChannel).
  int feature_set_version = 1;
  /// v2 H-bond channel geometry.
  HBondConfig hbond;

  int channels_per_block() const {
    return kVoxelChannelsPerBlock + (feature_set_version >= 2 ? 1 : 0);
  }
  int channels() const { return 2 * channels_per_block(); }
  float box_extent() const { return static_cast<float>(grid_dim) * resolution; }
};

class Voxelizer {
 public:
  explicit Voxelizer(VoxelConfig cfg = {}) : cfg_(cfg) {}

  /// Produce a (1, C, G, G, G) tensor centred on `center` (normally the
  /// pocket centroid). Grid z-slices are filled independently and fan out
  /// over the shared compute pool (core/parallel.h) when one is installed;
  /// output is bitwise identical either way.
  Tensor voxelize(const Molecule& ligand, const std::vector<Atom>& pocket,
                  const core::Vec3& center) const;

  /// Pocket-only grid (ligand block channels left zero) for reuse across
  /// the many poses docked into one pocket. v1 only: the v2 H-bond channel
  /// couples ligand and pocket, so a ligand-free pocket grid is not
  /// reusable (its H-bond channel would be identically zero).
  Tensor voxelize_pocket(const std::vector<Atom>& pocket, const core::Vec3& center) const;

  /// Splat only the ligand, then copy `pocket_grid`'s protein-block
  /// channels in. Ligand and protein occupy disjoint channel blocks, so the
  /// result is bitwise identical to voxelize(ligand, pocket, center) with
  /// the pocket `pocket_grid` was built from — at a fraction of the splat
  /// work. The serving scorer uses this to amortize pocket splatting over a
  /// micro-batch (serve/scorer.h). Throws std::logic_error at
  /// feature_set_version >= 2, where the blocks are no longer independent
  /// (the H-bond channel depends on the ligand–pocket pair).
  Tensor voxelize_ligand_onto(const Molecule& ligand, const Tensor& pocket_grid,
                              const core::Vec3& center) const;

  /// Pocket-aware graft, valid at every feature-set version. `pocket` must
  /// be the atom list `pocket_grid` was built from. At v1 this is exactly
  /// the 3-arg overload. At v2 it computes the interface H-bonds once,
  /// splats the ligand with its H-bond partner weights, grafts the cached
  /// pocket base channels, then splats only the pocket-side H-bond deposits
  /// (zero in a ligand-free pocket grid) on top — each channel still
  /// accumulates its atoms in ascending-index order, so the result is
  /// bitwise identical to voxelize(ligand, pocket, center). The
  /// cross-request pocket cache (serve/pocket_cache.h) uses this to restore
  /// pocket-splat amortization that v2 otherwise loses.
  Tensor voxelize_ligand_onto(const Molecule& ligand, const std::vector<Atom>& pocket,
                              const Tensor& pocket_grid, const core::Vec3& center) const;

  const VoxelConfig& config() const { return cfg_; }

 private:
  VoxelConfig cfg_;
};

/// Training-time augmentation (paper §3.3.1): independently rotate the
/// complex 90° about X, Y, Z each with probability `prob` before
/// voxelization. Returns rotated copies; graph features are unaffected.
void random_rotation_augment(Molecule& ligand, std::vector<Atom>& pocket, const core::Vec3& center,
                             core::Rng& rng, float prob = 0.10f);

}  // namespace df::chem
