#include "chem/graph_featurizer.h"

#include <algorithm>
#include <cmath>

namespace df::chem {

namespace {
void fill_node_features(core::Tensor& feats, int64_t row, const Atom& a, int degree,
                        bool is_ligand) {
  feats.at(row, element_index(a.element)) = 1.0f;
  int64_t off = kNumElements;
  feats.at(row, off + 0) = static_cast<float>(degree) / 4.0f;
  feats.at(row, off + 1) = a.aromatic ? 1.0f : 0.0f;
  feats.at(row, off + 2) = static_cast<float>(a.formal_charge);
  const ElementInfo& info = element_info(a.element);
  feats.at(row, off + 3) = info.hydrophobic ? 1.0f : 0.0f;
  feats.at(row, off + 4) = (info.hbond_donor_heavy && a.implicit_h > 0) ? 1.0f : 0.0f;
  feats.at(row, off + 5) = info.hbond_acceptor ? 1.0f : 0.0f;
  feats.at(row, off + 6) = is_ligand ? 1.0f : 0.0f;
}
}  // namespace

graph::SpatialGraph GraphFeaturizer::featurize(const Molecule& ligand,
                                               const std::vector<Atom>& pocket) const {
  graph::SpatialGraph g;
  const int64_t nl = static_cast<int64_t>(ligand.num_atoms());

  // Select the pocket atoms nearest to the ligand centroid (the paper's
  // featurization crops the pocket around the binding site similarly).
  const core::Vec3 lc = ligand.centroid();
  std::vector<int32_t> pocket_order(pocket.size());
  for (size_t i = 0; i < pocket.size(); ++i) pocket_order[i] = static_cast<int32_t>(i);
  std::sort(pocket_order.begin(), pocket_order.end(), [&](int32_t a, int32_t b) {
    return pocket[static_cast<size_t>(a)].pos.dist(lc) < pocket[static_cast<size_t>(b)].pos.dist(lc);
  });
  const int64_t np = std::min<int64_t>(static_cast<int64_t>(pocket.size()), cfg_.max_pocket_atoms);

  g.node_features = core::Tensor({nl + np, kGraphNodeFeatures});
  g.num_ligand_nodes = static_cast<int32_t>(nl);

  for (int64_t i = 0; i < nl; ++i) {
    fill_node_features(g.node_features, i, ligand.atoms()[static_cast<size_t>(i)],
                       ligand.degree(static_cast<int32_t>(i)), true);
  }
  std::vector<const Atom*> sel(static_cast<size_t>(np));
  for (int64_t i = 0; i < np; ++i) {
    sel[static_cast<size_t>(i)] = &pocket[static_cast<size_t>(pocket_order[static_cast<size_t>(i)])];
    fill_node_features(g.node_features, nl + i, *sel[static_cast<size_t>(i)], 0, false);
  }

  // Covalent edges: ligand bond graph.
  for (const Bond& b : ligand.bonds()) g.covalent.add_undirected(b.a, b.b);
  // Protein pseudo-bonds: pocket atoms within the covalent threshold.
  for (int64_t i = 0; i < np; ++i) {
    for (int64_t j = i + 1; j < np; ++j) {
      if (sel[static_cast<size_t>(i)]->pos.dist(sel[static_cast<size_t>(j)]->pos) <=
          cfg_.covalent_threshold) {
        g.covalent.add_undirected(static_cast<int32_t>(nl + i), static_cast<int32_t>(nl + j));
      }
    }
  }

  // Non-covalent edges: any pair within the spatial threshold that is not
  // covalently bonded. Ligand–protein pairs dominate by construction.
  auto bonded = [&](int32_t a, int32_t b) {
    if (a >= nl || b >= nl) return false;
    for (int32_t u : ligand.neighbors(a)) {
      if (u == b) return true;
    }
    return false;
  };
  auto pos_of = [&](int64_t i) -> core::Vec3 {
    return i < nl ? ligand.atoms()[static_cast<size_t>(i)].pos
                  : sel[static_cast<size_t>(i - nl)]->pos;
  };
  const int64_t total = nl + np;
  for (int64_t i = 0; i < total; ++i) {
    for (int64_t j = i + 1; j < total; ++j) {
      const float d = pos_of(i).dist(pos_of(j));
      if (d <= cfg_.noncovalent_threshold && d > cfg_.covalent_threshold &&
          !bonded(static_cast<int32_t>(i), static_cast<int32_t>(j))) {
        g.noncovalent.add_undirected(static_cast<int32_t>(i), static_cast<int32_t>(j));
      }
    }
  }
  return g;
}

}  // namespace df::chem
