#include "chem/graph_featurizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "chem/cell_list.h"

namespace df::chem {

namespace {
void fill_node_features(core::Tensor& feats, int64_t row, const Atom& a, int degree,
                        bool is_ligand) {
  feats.at(row, element_index(a.element)) = 1.0f;
  int64_t off = kNumElements;
  feats.at(row, off + 0) = static_cast<float>(degree) / 4.0f;
  feats.at(row, off + 1) = a.aromatic ? 1.0f : 0.0f;
  feats.at(row, off + 2) = static_cast<float>(a.formal_charge);
  const ElementInfo& info = element_info(a.element);
  feats.at(row, off + 3) = info.hydrophobic ? 1.0f : 0.0f;
  feats.at(row, off + 4) = (info.hbond_donor_heavy && a.implicit_h > 0) ? 1.0f : 0.0f;
  feats.at(row, off + 5) = info.hbond_acceptor ? 1.0f : 0.0f;
  feats.at(row, off + 6) = is_ligand ? 1.0f : 0.0f;
}
}  // namespace

graph::SpatialGraph GraphFeaturizer::featurize(const Molecule& ligand,
                                               const std::vector<Atom>& pocket) const {
  return featurize(ligand, pocket, nullptr);
}

graph::SpatialGraph GraphFeaturizer::featurize(const Molecule& ligand,
                                               const std::vector<Atom>& pocket,
                                               const CellList* crop_cells_in) const {
  graph::SpatialGraph g;
  const int64_t nl = static_cast<int64_t>(ligand.num_atoms());
  const int64_t np = std::min<int64_t>(static_cast<int64_t>(pocket.size()), cfg_.max_pocket_atoms);

  // Select the pocket atoms nearest to the ligand centroid (the paper's
  // featurization crops the pocket around the binding site similarly).
  // Ordered by (distance, index) — the index tie-break makes the crop
  // deterministic for symmetric pockets where distances tie exactly.
  const core::Vec3 lc = ligand.centroid();
  static thread_local std::vector<int32_t> pocket_order;
  // Each stage gates on its own working-set size: the crop sees the full
  // pocket, the pair scans only the cropped graph.
  const bool crop_cells_on =
      cfg_.use_cell_list && static_cast<int>(pocket.size()) >= cfg_.cell_list_min_atoms;
  if (crop_cells_in != nullptr && !pocket.empty()) {
    // Pre-built list from the pocket cache: skip the O(pocket) build and
    // query it directly. knearest ≡ the (distance, index) sort at any
    // size, so taking the cell route unconditionally here stays bitwise.
    crop_cells_in->knearest(lc, static_cast<int32_t>(np), pocket_order);
  } else if (crop_cells_on && !pocket.empty()) {
    static thread_local CellList crop_cells;
    static thread_local std::vector<core::Vec3> ppos;
    ppos.resize(pocket.size());
    for (size_t i = 0; i < pocket.size(); ++i) ppos[i] = pocket[i].pos;
    crop_cells.build(ppos.data(), static_cast<int32_t>(pocket.size()), cfg_.noncovalent_threshold);
    crop_cells.knearest(lc, static_cast<int32_t>(np), pocket_order);
  } else {
    static thread_local std::vector<std::pair<float, int32_t>> by_dist;
    by_dist.resize(pocket.size());
    for (size_t i = 0; i < pocket.size(); ++i) {
      by_dist[i] = {pocket[i].pos.dist(lc), static_cast<int32_t>(i)};
    }
    std::sort(by_dist.begin(), by_dist.end());
    pocket_order.resize(static_cast<size_t>(np));
    for (int64_t i = 0; i < np; ++i) pocket_order[static_cast<size_t>(i)] = by_dist[static_cast<size_t>(i)].second;
  }

  // Combined position array: ligand atoms first, then the cropped pocket in
  // crop order. Both the cell-list and brute-force pair scans read from this
  // one array, so every distance below is the same float either way.
  const int64_t total = nl + np;
  static thread_local std::vector<core::Vec3> xyz;
  xyz.resize(static_cast<size_t>(total));
  for (int64_t i = 0; i < nl; ++i) xyz[static_cast<size_t>(i)] = ligand.atoms()[static_cast<size_t>(i)].pos;
  static thread_local std::vector<const Atom*> sel;
  sel.resize(static_cast<size_t>(np));
  for (int64_t i = 0; i < np; ++i) {
    sel[static_cast<size_t>(i)] = &pocket[static_cast<size_t>(pocket_order[static_cast<size_t>(i)])];
    xyz[static_cast<size_t>(nl + i)] = sel[static_cast<size_t>(i)]->pos;
  }

  // One cell list over the combined atoms serves both the pseudo-bond scan
  // (covalent threshold) and the non-covalent scan: cell size is the larger
  // threshold, so gather() is a superset for both predicates.
  static thread_local CellList pair_cells;
  static thread_local std::vector<int32_t> cand;
  const bool use_cells = cfg_.use_cell_list && total >= cfg_.cell_list_min_atoms && total > 0;
  if (use_cells) {
    pair_cells.build(xyz.data(), static_cast<int32_t>(total), cfg_.noncovalent_threshold);
  }

  // Protein pseudo-bonds: pocket atoms within the covalent threshold.
  // Collected before node features so v2 can derive pocket degrees from them.
  static thread_local std::vector<std::pair<int32_t, int32_t>> pseudo;
  pseudo.clear();
  for (int64_t i = nl; i < total; ++i) {
    // covers_all: gather would be the identity permutation, so the plain
    // j>i scan visits the same atoms in the same order — skip the list.
    if (use_cells && !pair_cells.covers_all(xyz[static_cast<size_t>(i)])) {
      pair_cells.gather(xyz[static_cast<size_t>(i)], cand);
      for (int32_t j : cand) {
        if (j <= i) continue;
        if (xyz[static_cast<size_t>(i)].dist(xyz[static_cast<size_t>(j)]) <= cfg_.covalent_threshold) {
          pseudo.emplace_back(static_cast<int32_t>(i), j);
        }
      }
    } else {
      for (int64_t j = i + 1; j < total; ++j) {
        if (xyz[static_cast<size_t>(i)].dist(xyz[static_cast<size_t>(j)]) <= cfg_.covalent_threshold) {
          pseudo.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(j));
        }
      }
    }
  }

  g.node_features = core::Tensor({total, kGraphNodeFeatures});
  g.num_ligand_nodes = static_cast<int32_t>(nl);

  for (int64_t i = 0; i < nl; ++i) {
    fill_node_features(g.node_features, i, ligand.atoms()[static_cast<size_t>(i)],
                       ligand.degree(static_cast<int32_t>(i)), true);
  }
  // v1 pins pocket degree at 0 (the historical behaviour models were trained
  // against); v2 reports each pocket node's pseudo-bond degree.
  static thread_local std::vector<int> pdeg;
  pdeg.assign(static_cast<size_t>(np), 0);
  if (cfg_.feature_set_version >= 2) {
    for (const auto& pb : pseudo) {
      ++pdeg[static_cast<size_t>(pb.first - nl)];
      ++pdeg[static_cast<size_t>(pb.second - nl)];
    }
  }
  for (int64_t i = 0; i < np; ++i) {
    fill_node_features(g.node_features, nl + i, *sel[static_cast<size_t>(i)],
                       pdeg[static_cast<size_t>(i)], false);
  }

  // Covalent edges: ligand bond graph, then the protein pseudo-bonds.
  for (const Bond& b : ligand.bonds()) g.covalent.add_undirected(b.a, b.b);
  for (const auto& pb : pseudo) g.covalent.add_undirected(pb.first, pb.second);

  // v2: interface H-bond pairs, keyed (ligand_atom << 32 | pocket_node) for
  // binary-search lookup during the edge scan.
  static thread_local std::vector<int64_t> hbond_keys;
  hbond_keys.clear();
  if (cfg_.feature_set_version >= 2 && nl > 0 && np > 0) {
    static thread_local std::vector<Atom> sel_atoms;
    sel_atoms.resize(static_cast<size_t>(np));
    for (int64_t i = 0; i < np; ++i) sel_atoms[static_cast<size_t>(i)] = *sel[static_cast<size_t>(i)];
    for (const HBond& hb : find_hbonds(ligand, sel_atoms, cfg_.hbond)) {
      hbond_keys.push_back((static_cast<int64_t>(hb.ligand_atom) << 32) |
                           static_cast<int64_t>(nl + hb.pocket_atom));
    }
    std::sort(hbond_keys.begin(), hbond_keys.end());
  }

  // Non-covalent edges: any pair within the spatial threshold that is not
  // covalently bonded. Ligand–protein pairs dominate by construction. Both
  // paths enumerate (i, ascending j > i) with the same predicate, so the
  // edge lists are bitwise identical.
  auto bonded = [&](int32_t a, int32_t b) {
    if (a >= nl || b >= nl) return false;
    for (int32_t u : ligand.neighbors(a)) {
      if (u == b) return true;
    }
    return false;
  };
  static thread_local std::vector<float> efeat;
  efeat.clear();
  const bool want_efeat = cfg_.feature_set_version >= 2;
  auto try_edge = [&](int32_t i, int32_t j) {
    const float d = xyz[static_cast<size_t>(i)].dist(xyz[static_cast<size_t>(j)]);
    if (d <= cfg_.noncovalent_threshold && d > cfg_.covalent_threshold && !bonded(i, j)) {
      g.noncovalent.add_undirected(i, j);
      if (want_efeat) {
        const bool hb = i < nl && j >= nl &&
                        std::binary_search(hbond_keys.begin(), hbond_keys.end(),
                                           (static_cast<int64_t>(i) << 32) | static_cast<int64_t>(j));
        const float dn = d / cfg_.noncovalent_threshold;
        const float hbf = hb ? 1.0f : 0.0f;
        // One row per directed edge, matching add_undirected's (i,j),(j,i).
        efeat.push_back(dn); efeat.push_back(hbf);
        efeat.push_back(dn); efeat.push_back(hbf);
      }
    }
  };
  for (int64_t i = 0; i < total; ++i) {
    if (use_cells && !pair_cells.covers_all(xyz[static_cast<size_t>(i)])) {
      pair_cells.gather(xyz[static_cast<size_t>(i)], cand);
      for (int32_t j : cand) {
        if (j > i) try_edge(static_cast<int32_t>(i), j);
      }
    } else {
      for (int64_t j = i + 1; j < total; ++j) {
        try_edge(static_cast<int32_t>(i), static_cast<int32_t>(j));
      }
    }
  }
  if (want_efeat && !efeat.empty()) {
    const int64_t ne = static_cast<int64_t>(efeat.size()) / kGraphEdgeFeaturesV2;
    g.noncovalent_features = core::Tensor({ne, kGraphEdgeFeaturesV2});
    std::copy(efeat.begin(), efeat.end(), g.noncovalent_features.data());
  }
  return g;
}

}  // namespace df::chem
