#include "chem/molecule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df::chem {

int32_t Molecule::add_atom(Element e, Vec3 pos, int8_t charge, bool aromatic) {
  atoms_.push_back(Atom{e, pos, charge, aromatic, 0});
  adjacency_.emplace_back();
  return static_cast<int32_t>(atoms_.size() - 1);
}

void Molecule::add_bond(int32_t a, int32_t b, int8_t order) {
  if (a == b || a < 0 || b < 0 || static_cast<size_t>(a) >= atoms_.size() ||
      static_cast<size_t>(b) >= atoms_.size()) {
    throw std::invalid_argument("Molecule::add_bond: bad atom indices");
  }
  bonds_.push_back(Bond{a, b, order});
  adjacency_[static_cast<size_t>(a)].push_back(b);
  adjacency_[static_cast<size_t>(b)].push_back(a);
}

int Molecule::bond_order_sum(int32_t atom) const {
  int s = 0;
  for (const Bond& b : bonds_) {
    if (b.a == atom || b.b == atom) s += b.order;
  }
  return s;
}

float Molecule::molecular_weight() const {
  float mw = 0.0f;
  for (const Atom& a : atoms_) {
    mw += element_info(a.element).mass;
    mw += static_cast<float>(a.implicit_h) * element_info(Element::H).mass;
  }
  return mw;
}

float Molecule::logp_proxy() const {
  float v = 0.0f;
  for (const Atom& a : atoms_) {
    v += element_info(a.element).hydrophobic ? 1.0f : -0.5f;
  }
  return v * 0.2f;
}

float Molecule::tpsa_proxy() const {
  float v = 0.0f;
  for (const Atom& a : atoms_) {
    if (a.element == Element::N) v += 12.0f;
    if (a.element == Element::O) v += 17.0f;
    if (a.element == Element::S) v += 8.0f;
  }
  return v;
}

namespace {
/// A bond is in a ring iff its endpoints stay connected when it is removed.
bool bond_in_ring(const Molecule& m, const Bond& bond) {
  std::vector<bool> seen(m.num_atoms(), false);
  std::vector<int32_t> stack{bond.a};
  seen[static_cast<size_t>(bond.a)] = true;
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    for (int32_t u : m.neighbors(v)) {
      if (v == bond.a && u == bond.b) continue;  // skip the removed bond
      if (v == bond.b && u == bond.a) continue;
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = true;
        if (u == bond.b) return true;
        stack.push_back(u);
      }
    }
  }
  return seen[static_cast<size_t>(bond.b)];
}
}  // namespace

int Molecule::num_rotatable_bonds() const {
  // Single, acyclic bonds between two non-terminal heavy atoms.
  int n = 0;
  for (const Bond& b : bonds_) {
    if (b.order != 1) continue;
    if (degree(b.a) < 2 || degree(b.b) < 2) continue;
    if (bond_in_ring(*this, b)) continue;
    ++n;
  }
  return n;
}

int Molecule::num_rings() const {
  const int components = static_cast<int>(connected_components().size());
  return std::max(0, static_cast<int>(bonds_.size()) - static_cast<int>(atoms_.size()) + components);
}

int Molecule::num_hbond_donors() const {
  int n = 0;
  for (const Atom& a : atoms_) {
    if (element_info(a.element).hbond_donor_heavy && a.implicit_h > 0) ++n;
  }
  return n;
}

int Molecule::num_hbond_acceptors() const {
  int n = 0;
  for (const Atom& a : atoms_) {
    if (element_info(a.element).hbond_acceptor) ++n;
  }
  return n;
}

Vec3 Molecule::centroid() const {
  Vec3 c{};
  if (atoms_.empty()) return c;
  for (const Atom& a : atoms_) c += a.pos;
  return c * (1.0f / static_cast<float>(atoms_.size()));
}

void Molecule::translate(const Vec3& d) {
  for (Atom& a : atoms_) a.pos += d;
}

void Molecule::rotate(const Vec3& center, const Vec3& axis, float theta) {
  const Vec3 k = axis.normalized();
  for (Atom& a : atoms_) {
    a.pos = center + core::rotate_axis_angle(a.pos - center, k, theta);
  }
}

float Molecule::radius_of_gyration() const {
  const Vec3 c = centroid();
  float m = 0.0f;
  for (const Atom& a : atoms_) m = std::max(m, a.pos.dist(c));
  return m;
}

std::vector<std::vector<int32_t>> Molecule::connected_components() const {
  std::vector<int32_t> comp(atoms_.size(), -1);
  std::vector<std::vector<int32_t>> out;
  for (size_t start = 0; start < atoms_.size(); ++start) {
    if (comp[start] != -1) continue;
    const int32_t id = static_cast<int32_t>(out.size());
    out.emplace_back();
    std::vector<int32_t> stack{static_cast<int32_t>(start)};
    comp[start] = id;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      out[static_cast<size_t>(id)].push_back(v);
      for (int32_t u : adjacency_[static_cast<size_t>(v)]) {
        if (comp[static_cast<size_t>(u)] == -1) {
          comp[static_cast<size_t>(u)] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return out;
}

Molecule Molecule::subset(const std::vector<int32_t>& atom_indices) const {
  Molecule m;
  std::vector<int32_t> remap(atoms_.size(), -1);
  for (int32_t idx : atom_indices) {
    remap[static_cast<size_t>(idx)] =
        m.add_atom(atoms_[static_cast<size_t>(idx)].element, atoms_[static_cast<size_t>(idx)].pos,
                   atoms_[static_cast<size_t>(idx)].formal_charge,
                   atoms_[static_cast<size_t>(idx)].aromatic);
    m.atoms_.back().implicit_h = atoms_[static_cast<size_t>(idx)].implicit_h;
  }
  for (const Bond& b : bonds_) {
    const int32_t na = remap[static_cast<size_t>(b.a)], nb = remap[static_cast<size_t>(b.b)];
    if (na >= 0 && nb >= 0) m.add_bond(na, nb, b.order);
  }
  return m;
}

bool Molecule::has_metal() const {
  return std::any_of(atoms_.begin(), atoms_.end(),
                     [](const Atom& a) { return a.element == Element::Metal; });
}

float pose_rmsd(const Molecule& a, const Molecule& b) {
  if (a.num_atoms() != b.num_atoms()) {
    throw std::invalid_argument("pose_rmsd: atom count mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.num_atoms(); ++i) {
    const Vec3 d = a.atoms()[i].pos - b.atoms()[i].pos;
    acc += static_cast<double>(d.norm2());
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(a.num_atoms())));
}

Molecule generate_molecule(const MoleculeGenConfig& cfg, core::Rng& rng) {
  Molecule m;
  const int target = static_cast<int>(rng.randint(cfg.min_heavy_atoms, cfg.max_heavy_atoms));

  auto pick_element = [&]() {
    if (rng.uniform() < cfg.hetero_probability) {
      if (rng.uniform() < cfg.halogen_probability / cfg.hetero_probability) {
        static const Element kHal[] = {Element::F, Element::Cl, Element::Br};
        return kHal[rng.pick(3)];
      }
      static const Element kHet[] = {Element::N, Element::O, Element::S, Element::N, Element::O};
      return kHet[rng.pick(5)];
    }
    return Element::C;
  };

  m.add_atom(Element::C);
  while (static_cast<int>(m.num_atoms()) < target) {
    const Element e = pick_element();
    const int maxval = element_info(e).max_valence;
    // Attach to a random existing atom with spare valence.
    std::vector<int32_t> open;
    for (size_t i = 0; i < m.num_atoms(); ++i) {
      const int spare = element_info(m.atoms()[i].element).max_valence -
                        m.bond_order_sum(static_cast<int32_t>(i));
      if (spare >= 1) open.push_back(static_cast<int32_t>(i));
    }
    if (open.empty()) break;
    const int32_t parent = open[rng.pick(open.size())];
    const int32_t idx = m.add_atom(e);
    // Occasional double bond when both partners can afford it.
    int8_t order = 1;
    if (maxval >= 2 &&
        element_info(m.atoms()[static_cast<size_t>(parent)].element).max_valence -
                m.bond_order_sum(parent) >= 2 &&
        rng.uniform() < 0.15f) {
      order = 2;
    }
    m.add_bond(parent, idx, order);
    // Ring closure: bond to another open atom that is not the parent.
    if (rng.uniform() < cfg.ring_probability && maxval - m.bond_order_sum(idx) >= 1) {
      std::vector<int32_t> candidates;
      for (int32_t o : open) {
        if (o == parent) continue;
        const int spare = element_info(m.atoms()[static_cast<size_t>(o)].element).max_valence -
                          m.bond_order_sum(o);
        if (spare >= 1) candidates.push_back(o);
      }
      if (!candidates.empty()) {
        m.add_bond(candidates[rng.pick(candidates.size())], idx, 1);
      }
    }
    if (rng.uniform() < cfg.charge_probability) {
      m.atoms().back().formal_charge = rng.bernoulli(0.5) ? 1 : -1;
    }
  }

  // Fill implicit hydrogens from remaining valence.
  for (size_t i = 0; i < m.num_atoms(); ++i) {
    const int spare = element_info(m.atoms()[i].element).max_valence -
                      m.bond_order_sum(static_cast<int32_t>(i));
    m.atoms()[i].implicit_h = static_cast<int8_t>(std::max(0, spare));
  }

  // Optional salt fragment (disconnected Cl- style counter-ion).
  if (rng.uniform() < cfg.salt_probability) {
    const int32_t s = m.add_atom(Element::Cl);
    m.atoms()[static_cast<size_t>(s)].formal_charge = -1;
  }
  // Optional metal contamination.
  if (rng.uniform() < cfg.metal_probability) {
    m.add_atom(Element::Metal);
  }
  return m;
}

}  // namespace df::chem
