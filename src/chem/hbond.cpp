#include "chem/hbond.h"

#include <algorithm>

#include "chem/cell_list.h"

namespace df::chem {

namespace {

bool can_donate(const Atom& a) {
  return element_info(a.element).hbond_donor_heavy && a.implicit_h > 0;
}

bool can_accept(const Atom& a) { return element_info(a.element).hbond_acceptor; }

/// Ligand-donor angle test: some covalent neighbor B of donor `d` must sit
/// wide of the acceptor (cos(B–D–A) <= max_cos). A donor with no recorded
/// neighbors (a bare ion) is accepted on distance alone.
bool donor_angle_ok(const Molecule& ligand, int32_t d, const core::Vec3& acceptor,
                    float max_cos) {
  const std::vector<int32_t>& nbrs = ligand.neighbors(d);
  if (nbrs.empty()) return true;
  const core::Vec3 dp = ligand.atoms()[static_cast<size_t>(d)].pos;
  const core::Vec3 da = acceptor - dp;
  const float na = da.norm();
  if (na <= 1e-6f) return false;
  for (int32_t b : nbrs) {
    const core::Vec3 db = ligand.atoms()[static_cast<size_t>(b)].pos - dp;
    const float nb = db.norm();
    if (nb <= 1e-6f) continue;
    if (da.dot(db) / (na * nb) <= max_cos) return true;
  }
  return false;
}

}  // namespace

std::vector<HBond> find_hbonds(const Molecule& ligand, const std::vector<Atom>& pocket,
                               const HBondConfig& cfg) {
  std::vector<HBond> out;
  if (ligand.num_atoms() == 0 || pocket.empty()) return out;

  static thread_local CellList cells;
  static thread_local std::vector<core::Vec3> ppos;
  static thread_local std::vector<int32_t> cand;
  ppos.resize(pocket.size());
  for (size_t i = 0; i < pocket.size(); ++i) ppos[i] = pocket[i].pos;
  cells.build(ppos.data(), static_cast<int32_t>(pocket.size()), cfg.max_dist);

  const int32_t nl = static_cast<int32_t>(ligand.num_atoms());
  for (int32_t i = 0; i < nl; ++i) {
    const Atom& la = ligand.atoms()[static_cast<size_t>(i)];
    const bool l_donor = can_donate(la);
    const bool l_acceptor = can_accept(la);
    if (!l_donor && !l_acceptor) continue;
    cells.gather(la.pos, cand);
    for (int32_t j : cand) {
      const Atom& pa = pocket[static_cast<size_t>(j)];
      const float d = la.pos.dist(pa.pos);
      if (d > cfg.max_dist) continue;
      const bool lig_to_pocket = l_donor && can_accept(pa) &&
                                 donor_angle_ok(ligand, i, pa.pos, cfg.max_cos_angle);
      const bool pocket_to_lig = l_acceptor && can_donate(pa);
      if (lig_to_pocket || pocket_to_lig) out.push_back({i, j, d});
    }
  }
  return out;
}

}  // namespace df::chem
