#include "chem/smiles.h"

#include <cctype>
#include <map>
#include <stdexcept>
#include <vector>

namespace df::chem {

namespace {

struct Parser {
  const std::string& s;
  size_t i = 0;

  explicit Parser(const std::string& str) : s(str) {}
  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  char take() { return s[i++]; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("SMILES parse error at " + std::to_string(i) + ": " + msg +
                                " in '" + s + "'");
  }
};

}  // namespace

Molecule parse_smiles(const std::string& smiles) {
  Molecule mol;
  Parser p(smiles);
  std::vector<int32_t> stack;       // branch anchors
  int32_t prev = -1;                // previous atom for chain bonds
  int8_t pending_order = 1;
  std::map<int, std::pair<int32_t, int8_t>> ring_open;  // digit -> (atom, order)

  auto add_parsed_atom = [&](Element e, bool aromatic, int8_t charge) {
    const int32_t idx = mol.add_atom(e, {}, charge, aromatic);
    if (prev >= 0) mol.add_bond(prev, idx, pending_order);
    pending_order = 1;
    prev = idx;
    return idx;
  };

  while (!p.done()) {
    const char c = p.peek();
    if (c == '(') {
      p.take();
      if (prev < 0) p.fail("branch before any atom");
      stack.push_back(prev);
    } else if (c == ')') {
      p.take();
      if (stack.empty()) p.fail("unmatched ')'");
      prev = stack.back();
      stack.pop_back();
    } else if (c == '.') {
      // Fragment separator (salts): next atom starts a new component.
      p.take();
      prev = -1;
      pending_order = 1;
    } else if (c == '-' || c == '=' || c == '#') {
      p.take();
      pending_order = c == '=' ? 2 : (c == '#' ? 3 : 1);
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '%') {
      int digit;
      if (c == '%') {
        p.take();
        if (p.i + 1 >= p.s.size() || !std::isdigit(static_cast<unsigned char>(p.s[p.i])) ||
            !std::isdigit(static_cast<unsigned char>(p.s[p.i + 1]))) {
          p.fail("'%' ring closure needs two digits");
        }
        digit = (p.take() - '0') * 10 + (p.take() - '0');
      } else {
        p.take();
        digit = c - '0';
      }
      if (prev < 0) p.fail("ring closure before any atom");
      auto it = ring_open.find(digit);
      if (it == ring_open.end()) {
        ring_open[digit] = {prev, pending_order};
        pending_order = 1;
      } else {
        mol.add_bond(it->second.first, prev,
                     std::max(it->second.second, pending_order));
        pending_order = 1;
        ring_open.erase(it);
      }
    } else if (c == '[') {
      p.take();
      if (p.done() || !std::isalpha(static_cast<unsigned char>(p.peek()))) {
        p.fail("expected element symbol after '['");
      }
      std::string sym(1, p.take());
      // Two-letter symbols: only Cl / Br in our element set.
      if ((sym == "C" && !p.done() && p.peek() == 'l') ||
          (sym == "B" && !p.done() && p.peek() == 'r')) {
        sym += p.take();
      }
      bool aromatic = false;
      if (!sym.empty() && std::islower(static_cast<unsigned char>(sym[0]))) {
        aromatic = true;
        sym[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(sym[0])));
      }
      int8_t h = 0, charge = 0;
      while (!p.done() && p.peek() != ']') {
        const char q = p.take();
        if (q == 'H') {
          h = 1;
          if (!p.done() && std::isdigit(static_cast<unsigned char>(p.peek()))) h = static_cast<int8_t>(p.take() - '0');
        } else if (q == '+') {
          charge = 1;
          if (!p.done() && std::isdigit(static_cast<unsigned char>(p.peek()))) charge = static_cast<int8_t>(p.take() - '0');
        } else if (q == '-') {
          charge = -1;
          if (!p.done() && std::isdigit(static_cast<unsigned char>(p.peek()))) charge = static_cast<int8_t>(-(p.take() - '0'));
        } else {
          p.fail(std::string("unexpected bracket token '") + q + "'");
        }
      }
      if (p.done()) p.fail("unterminated bracket atom");
      p.take();  // ']'
      const int32_t idx = add_parsed_atom(element_from_symbol(sym), aromatic, charge);
      mol.atoms()[static_cast<size_t>(idx)].implicit_h = h;
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string sym(1, p.take());
      // Two-letter halogens.
      if ((sym == "C" && !p.done() && p.peek() == 'l') ||
          (sym == "B" && !p.done() && p.peek() == 'r')) {
        sym += p.take();
      }
      bool aromatic = false;
      if (std::islower(static_cast<unsigned char>(sym[0]))) {
        aromatic = true;
        sym[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(sym[0])));
      }
      add_parsed_atom(element_from_symbol(sym), aromatic, 0);
    } else {
      p.fail(std::string("unexpected character '") + c + "'");
    }
  }
  if (!stack.empty()) p.fail("unclosed branch");
  if (!ring_open.empty()) p.fail("unclosed ring bond");

  // Derive implicit hydrogens for organic-subset atoms (bracket atoms keep
  // their explicit H count).
  for (size_t i = 0; i < mol.num_atoms(); ++i) {
    Atom& a = mol.atoms()[i];
    if (a.implicit_h == 0) {
      const int spare = element_info(a.element).max_valence -
                        mol.bond_order_sum(static_cast<int32_t>(i)) + a.formal_charge;
      a.implicit_h = static_cast<int8_t>(std::max(0, spare));
    }
  }
  return mol;
}

namespace {

void write_atom(const Molecule& mol, int32_t idx, std::string& out) {
  const Atom& a = mol.atoms()[static_cast<size_t>(idx)];
  std::string sym(element_info(a.element).symbol);
  if (a.aromatic) sym[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(sym[0])));
  const bool organic = a.element == Element::C || a.element == Element::N ||
                       a.element == Element::O || a.element == Element::S ||
                       a.element == Element::P || a.element == Element::F ||
                       a.element == Element::Cl || a.element == Element::Br ||
                       a.element == Element::I;
  if (a.formal_charge == 0 && organic) {
    out += sym;
  } else {
    out += '[';
    out += sym;
    if (a.implicit_h > 0) {
      out += 'H';
      if (a.implicit_h > 1) out += static_cast<char>('0' + a.implicit_h);
    }
    if (a.formal_charge > 0) {
      out += '+';
      if (a.formal_charge > 1) out += static_cast<char>('0' + a.formal_charge);
    } else if (a.formal_charge < 0) {
      out += '-';
      if (a.formal_charge < -1) out += static_cast<char>('0' - a.formal_charge);
    }
    out += ']';
  }
}

struct Writer {
  const Molecule& mol;
  std::vector<bool> visited;
  std::map<int64_t, int8_t> tree_edges;              // edge key -> order
  std::vector<std::vector<int>> ring_bonds_at;       // atom -> ring ids
  std::vector<int8_t> ring_order;                    // ring id -> bond order
  std::vector<int> ring_digit;                       // ring id -> digit or -1
  std::vector<bool> digit_in_use = std::vector<bool>(100, false);
  std::string out;

  explicit Writer(const Molecule& m)
      : mol(m), visited(m.num_atoms(), false), ring_bonds_at(m.num_atoms()) {}

  static int64_t edge_key(int32_t a, int32_t b) {
    return (static_cast<int64_t>(std::min(a, b)) << 32) | static_cast<int64_t>(std::max(a, b));
  }

  int8_t bond_order(int32_t a, int32_t b) const {
    for (const Bond& bd : mol.bonds()) {
      if ((bd.a == a && bd.b == b) || (bd.a == b && bd.b == a)) return bd.order;
    }
    return 1;
  }

  /// First pass: classify edges into spanning-tree and ring edges so digits
  /// can be emitted at BOTH endpoints during the write pass.
  void classify(int32_t root) {
    std::vector<int32_t> stack{root};
    std::vector<int32_t> parent(mol.num_atoms(), -1);
    std::vector<bool> seen(mol.num_atoms(), false);
    seen[static_cast<size_t>(root)] = true;
    std::map<int64_t, bool> classified;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      for (int32_t u : mol.neighbors(v)) {
        const int64_t key = edge_key(v, u);
        if (classified.count(key)) continue;
        classified[key] = true;
        if (!seen[static_cast<size_t>(u)]) {
          seen[static_cast<size_t>(u)] = true;
          parent[static_cast<size_t>(u)] = v;
          tree_edges[key] = bond_order(v, u);
          stack.push_back(u);
        } else {
          // Ring (non-tree) edge: register at both endpoints.
          const int id = static_cast<int>(ring_order.size());
          ring_order.push_back(bond_order(v, u));
          ring_digit.push_back(-1);
          ring_bonds_at[static_cast<size_t>(v)].push_back(id);
          ring_bonds_at[static_cast<size_t>(u)].push_back(id);
        }
      }
    }
  }

  void emit_order(int8_t order) {
    if (order == 2) out += '=';
    if (order == 3) out += '#';
  }

  void emit_digit(int digit) {
    // Standard SMILES: single digit 1-9, '%nn' for two-digit closures.
    if (digit < 10) {
      out += static_cast<char>('0' + digit);
    } else {
      out += '%';
      out += static_cast<char>('0' + digit / 10);
      out += static_cast<char>('0' + digit % 10);
    }
  }

  void emit_ring_digits(int32_t v) {
    for (int id : ring_bonds_at[static_cast<size_t>(v)]) {
      if (ring_digit[static_cast<size_t>(id)] < 0) {
        int digit = -1;
        for (int d = 1; d <= 99; ++d) {
          if (!digit_in_use[static_cast<size_t>(d)]) {
            digit = d;
            break;
          }
        }
        if (digit < 0) throw std::runtime_error("write_smiles: >99 open ring bonds");
        ring_digit[static_cast<size_t>(id)] = digit;
        digit_in_use[static_cast<size_t>(digit)] = true;
        emit_order(ring_order[static_cast<size_t>(id)]);
        emit_digit(digit);
      } else {
        const int digit = ring_digit[static_cast<size_t>(id)];
        emit_digit(digit);
        digit_in_use[static_cast<size_t>(digit)] = false;
      }
    }
  }

  void dfs(int32_t v) {
    visited[static_cast<size_t>(v)] = true;
    write_atom(mol, v, out);
    emit_ring_digits(v);
    std::vector<int32_t> children;
    for (int32_t u : mol.neighbors(v)) {
      if (!visited[static_cast<size_t>(u)] && tree_edges.count(edge_key(v, u))) {
        children.push_back(u);
      }
    }
    for (size_t k = 0; k < children.size(); ++k) {
      const int32_t u = children[k];
      if (visited[static_cast<size_t>(u)]) continue;
      const bool branch = k + 1 < children.size();
      if (branch) out += '(';
      emit_order(tree_edges[edge_key(v, u)]);
      dfs(u);
      if (branch) out += ')';
    }
  }

  void write_component(int32_t root) {
    classify(root);
    dfs(root);
  }
};

}  // namespace

std::string write_smiles(const Molecule& mol) {
  if (mol.num_atoms() == 0) return "";
  Writer w(mol);
  w.write_component(0);
  // Disconnected fragments (salts) are dot-separated.
  for (size_t i = 0; i < mol.num_atoms(); ++i) {
    if (!w.visited[i]) {
      w.out += '.';
      w.write_component(static_cast<int32_t>(i));
    }
  }
  return w.out;
}

}  // namespace df::chem
