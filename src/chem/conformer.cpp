#include "chem/conformer.h"

#include <cmath>
#include <queue>

namespace df::chem {

namespace {
float ideal_length(const Molecule& mol, const Bond& b) {
  const float r = element_info(mol.atoms()[static_cast<size_t>(b.a)].element).covalent_radius +
                  element_info(mol.atoms()[static_cast<size_t>(b.b)].element).covalent_radius;
  // Double/triple bonds contract slightly.
  return r * (b.order == 1 ? 1.0f : (b.order == 2 ? 0.87f : 0.78f));
}
}  // namespace

void embed_conformer(Molecule& mol, core::Rng& rng, const ConformerConfig& cfg) {
  if (mol.num_atoms() == 0) return;
  std::vector<bool> placed(mol.num_atoms(), false);

  // BFS placement per connected component.
  for (size_t root = 0; root < mol.num_atoms(); ++root) {
    if (placed[root]) continue;
    mol.atoms()[root].pos = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (root > 0) {
      // Offset disconnected fragments so they don't overlap the main one.
      mol.atoms()[root].pos += Vec3{6.0f, 0, 0};
    }
    placed[root] = true;
    std::queue<int32_t> q;
    q.push(static_cast<int32_t>(root));
    while (!q.empty()) {
      const int32_t v = q.front();
      q.pop();
      for (int32_t u : mol.neighbors(v)) {
        if (placed[static_cast<size_t>(u)]) continue;
        // Place along a random direction at the ideal bond length.
        Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
        dir = dir.normalized();
        float len = 1.5f;
        for (const Bond& b : mol.bonds()) {
          if ((b.a == v && b.b == u) || (b.a == u && b.b == v)) {
            len = ideal_length(mol, b);
            break;
          }
        }
        mol.atoms()[static_cast<size_t>(u)].pos = mol.atoms()[static_cast<size_t>(v)].pos + dir * len;
        placed[static_cast<size_t>(u)] = true;
        q.push(u);
      }
    }
  }
  relax_conformer(mol, cfg);
}

float mm_energy(const Molecule& mol, const ConformerConfig& cfg) {
  double e = 0.0;
  for (const Bond& b : mol.bonds()) {
    const float d = mol.atoms()[static_cast<size_t>(b.a)].pos.dist(
        mol.atoms()[static_cast<size_t>(b.b)].pos);
    const float dev = d - ideal_length(mol, b);
    e += 0.5 * cfg.bond_k * dev * dev;
  }
  const size_t n = mol.num_atoms();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const float d = mol.atoms()[i].pos.dist(mol.atoms()[j].pos);
      if (d < cfg.repulsion_cutoff) {
        const float pen = cfg.repulsion_cutoff - d;
        e += 0.5 * cfg.repulsion_k * pen * pen;
      }
    }
  }
  return static_cast<float>(e);
}

float relax_conformer(Molecule& mol, const ConformerConfig& cfg) {
  const size_t n = mol.num_atoms();
  if (n == 0) return 0.0f;
  std::vector<Vec3> grad(n);
  for (int it = 0; it < cfg.relax_iterations; ++it) {
    for (Vec3& g : grad) g = Vec3{};
    for (const Bond& b : mol.bonds()) {
      Vec3& pa = mol.atoms()[static_cast<size_t>(b.a)].pos;
      Vec3& pb = mol.atoms()[static_cast<size_t>(b.b)].pos;
      const Vec3 d = pb - pa;
      const float dist = std::max(1e-4f, d.norm());
      const float f = cfg.bond_k * (dist - ideal_length(mol, b)) / dist;
      grad[static_cast<size_t>(b.a)] -= d * f;
      grad[static_cast<size_t>(b.b)] += d * f;
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const Vec3 d = mol.atoms()[j].pos - mol.atoms()[i].pos;
        const float dist = std::max(1e-4f, d.norm());
        if (dist < cfg.repulsion_cutoff) {
          const float f = -cfg.repulsion_k * (cfg.repulsion_cutoff - dist) / dist;
          grad[i] -= d * f;
          grad[j] += d * f;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      // Gradient descent: x -= step * dE/dx. `grad` above accumulates dE/dx
      // directly (force = -grad).
      mol.atoms()[i].pos -= grad[i] * cfg.step_size;
    }
  }
  return mm_energy(mol, cfg);
}

}  // namespace df::chem
