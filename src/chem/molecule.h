// Molecular graph with 3-D coordinates — the ligand (and pocket) data model
// everything downstream consumes: SMILES I/O, conformer embedding, docking,
// voxelization and graph featurization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/elements.h"
#include "core/rng.h"
#include "core/vec3.h"

namespace df::chem {

using core::Vec3;

struct Atom {
  Element element = Element::C;
  Vec3 pos;
  int8_t formal_charge = 0;
  bool aromatic = false;
  /// Implicit hydrogens (heavy-atom-only representation, like PDBQT).
  int8_t implicit_h = 0;
};

struct Bond {
  int32_t a = 0, b = 0;
  int8_t order = 1;  // 1, 2, 3; aromatic bonds carry order 1 + atom flags
};

class Molecule {
 public:
  Molecule() = default;

  int32_t add_atom(Element e, Vec3 pos = {}, int8_t charge = 0, bool aromatic = false);
  void add_bond(int32_t a, int32_t b, int8_t order = 1);

  size_t num_atoms() const { return atoms_.size(); }
  size_t num_bonds() const { return bonds_.size(); }
  const std::vector<Atom>& atoms() const { return atoms_; }
  std::vector<Atom>& atoms() { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }
  const std::vector<int32_t>& neighbors(int32_t atom) const { return adjacency_[static_cast<size_t>(atom)]; }
  int degree(int32_t atom) const { return static_cast<int>(neighbors(atom).size()); }
  /// Total bond order at an atom (for valence checks).
  int bond_order_sum(int32_t atom) const;

  // --- descriptors (the MOE-descriptor stand-ins used by ligand prep) ---
  float molecular_weight() const;
  /// Crippen-flavoured hydrophobicity proxy: +1 per apolar heavy atom,
  /// -0.5 per polar one.
  float logp_proxy() const;
  /// Polar-surface-area proxy: sum of N/O contributions.
  float tpsa_proxy() const;
  int num_rotatable_bonds() const;
  /// Number of independent cycles (|E| - |V| + components).
  int num_rings() const;
  int num_hbond_donors() const;
  int num_hbond_acceptors() const;

  // --- geometry ---
  Vec3 centroid() const;
  void translate(const Vec3& d);
  /// Rotate all atoms around `center` by `theta` about unit axis `axis`.
  void rotate(const Vec3& center, const Vec3& axis, float theta);
  /// Maximum distance of any atom from the centroid.
  float radius_of_gyration() const;

  /// Connected components as atom-index lists (used by salt stripping).
  std::vector<std::vector<int32_t>> connected_components() const;
  /// New molecule containing only `atom_indices` (bonds remapped).
  Molecule subset(const std::vector<int32_t>& atom_indices) const;

  bool has_metal() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<std::vector<int32_t>> adjacency_;
};

/// Heavy-atom RMSD between two conformations of the same molecule (no
/// alignment — poses live in the same target frame, as in docking output).
float pose_rmsd(const Molecule& a, const Molecule& b);

/// Valence-correct random drug-like molecule generator — the stand-in for
/// sampling ZINC/ChEMBL/eMolecules/Enamine entries.
struct MoleculeGenConfig {
  int min_heavy_atoms = 10;
  int max_heavy_atoms = 28;
  float ring_probability = 0.35f;       // chance a new atom closes a ring
  float hetero_probability = 0.30f;     // chance of non-carbon atom
  float halogen_probability = 0.08f;
  float charge_probability = 0.05f;
  float salt_probability = 0.0f;        // add a disconnected counter-ion
  float metal_probability = 0.0f;       // contaminate with a metal
};

Molecule generate_molecule(const MoleculeGenConfig& cfg, core::Rng& rng);

}  // namespace df::chem
