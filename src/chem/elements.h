// Periodic-table slice used by the featurizers and the docking scorer.
// Covers the organic subset that dominates drug-like chemistry plus a
// catch-all metal marker (MOE-style ligand prep removes metal compounds).
#pragma once

#include <cstdint>
#include <string_view>

namespace df::chem {

enum class Element : uint8_t { H, C, N, O, F, P, S, Cl, Br, I, Metal, Count };

struct ElementInfo {
  std::string_view symbol;
  float covalent_radius;  // Angstrom
  float vdw_radius;       // Angstrom
  float electronegativity;
  int max_valence;
  float mass;  // Dalton
  bool hydrophobic;       // carbon/halogen-like apolar
  bool hbond_donor_heavy; // can carry a donatable H (N, O, S)
  bool hbond_acceptor;    // lone-pair acceptor (N, O)
};

const ElementInfo& element_info(Element e);
Element element_from_symbol(std::string_view s);
/// Index used for one-hot featurization; Metal maps to the last slot.
inline int element_index(Element e) { return static_cast<int>(e); }
inline constexpr int kNumElements = static_cast<int>(Element::Count);

}  // namespace df::chem
