// 3-D conformer embedding — the stand-in for MOE's "generate 3D structures
// and energetically minimize" step. BFS placement at ideal bond lengths
// followed by steepest-descent relaxation of a simple molecular-mechanics
// energy (bond springs + nonbonded soft repulsion).
#pragma once

#include "chem/molecule.h"
#include "core/rng.h"

namespace df::chem {

struct ConformerConfig {
  int relax_iterations = 120;
  float step_size = 0.05f;         // Angstrom per gradient unit
  float bond_k = 4.0f;             // spring constant
  float repulsion_k = 1.5f;        // nonbonded clash penalty
  float repulsion_cutoff = 2.6f;   // Angstrom
};

/// Assign coordinates in-place. Deterministic given `rng` state.
void embed_conformer(Molecule& mol, core::Rng& rng, const ConformerConfig& cfg = {});

/// Relax an already-embedded conformer (the "energy minimization" step,
/// also used by MM/GBSA rescoring as its local optimization).
/// Returns the final MM energy.
float relax_conformer(Molecule& mol, const ConformerConfig& cfg = {});

/// MM energy of the current conformation (bond + clash terms).
float mm_energy(const Molecule& mol, const ConformerConfig& cfg = {});

}  // namespace df::chem
