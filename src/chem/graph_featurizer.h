// Spatial-graph featurization of a complex — the SG-CNN's input (paper
// Fig. 1, right branch). Node features combine a one-hot element with
// pharmacophore flags; covalent edges come from the bond graph (plus
// short-range protein pseudo-bonds) and non-covalent edges connect atoms
// within the longer spatial threshold, primarily across the interface.
// The two thresholds are the paper's Table-1/2 "Neighbor Threshold"
// hyper-parameters.
#pragma once

#include <vector>

#include "chem/molecule.h"
#include "graph/graph.h"

namespace df::chem {

struct GraphFeaturizerConfig {
  float covalent_threshold = 2.24f;    // Angstrom (Table 2 final value)
  float noncovalent_threshold = 5.22f; // Angstrom (Table 2 final value)
  /// Cap pocket atoms included in the graph, nearest to the ligand first.
  int max_pocket_atoms = 64;
};

/// Node feature layout: one-hot element (kNumElements) followed by
/// [degree/4, aromatic, charge, hydrophobic, donor, acceptor, is_ligand].
inline constexpr int kGraphNodeFeatures = kNumElements + 7;

class GraphFeaturizer {
 public:
  explicit GraphFeaturizer(GraphFeaturizerConfig cfg = {}) : cfg_(cfg) {}

  graph::SpatialGraph featurize(const Molecule& ligand, const std::vector<Atom>& pocket) const;

  const GraphFeaturizerConfig& config() const { return cfg_; }

 private:
  GraphFeaturizerConfig cfg_;
};

}  // namespace df::chem
