// Spatial-graph featurization of a complex — the SG-CNN's input (paper
// Fig. 1, right branch). Node features combine a one-hot element with
// pharmacophore flags; covalent edges come from the bond graph (plus
// short-range protein pseudo-bonds) and non-covalent edges connect atoms
// within the longer spatial threshold, primarily across the interface.
// The two thresholds are the paper's Table-1/2 "Neighbor Threshold"
// hyper-parameters.
//
// All pairwise work (pocket crop, pseudo-bonds, non-covalent edges) routes
// through the chem::CellList neighbor engine by default; the brute-force
// scan is kept behind `use_cell_list = false` and the two paths are
// bitwise identical (tests/test_cell_list.cpp pins this).
#pragma once

#include <vector>

#include "chem/hbond.h"
#include "chem/molecule.h"
#include "graph/graph.h"

namespace df::chem {

struct GraphFeaturizerConfig {
  float covalent_threshold = 2.24f;    // Angstrom (Table 2 final value)
  float noncovalent_threshold = 5.22f; // Angstrom (Table 2 final value)
  /// Cap pocket atoms included in the graph, nearest to the ligand first.
  int max_pocket_atoms = 64;
  /// Feature-set contract version. 1 = today's features, bitwise-pinned so
  /// existing models keep scoring identically. 2 adds (a) pocket node
  /// degrees derived from the pseudo-bond graph (v1 hard-codes 0) and
  /// (b) per-edge geometry channels on the non-covalent edge set
  /// (SpatialGraph::noncovalent_features): [distance / threshold,
  /// interface H-bond flag] under the chem/hbond.h heavy-atom criteria.
  int feature_set_version = 1;
  /// Route pairwise scans through chem::CellList (O(N) in pocket size).
  /// Both settings produce bitwise-identical graphs; false keeps the
  /// brute-force reference for tests and benches.
  bool use_cell_list = true;
  /// Engage the cell route only when the combined (ligand + cropped
  /// pocket) atom count reaches this size; below it the brute scan's
  /// contiguous sweep is faster (measured crossover between 256 and 1024
  /// atoms — bench_service_throughput neighbor block). Bitwise identical
  /// either way; 0 forces the engine. The serving default (64-atom crop)
  /// stays on the brute path.
  int cell_list_min_atoms = 512;
  /// v2 H-bond channel geometry.
  HBondConfig hbond;
};

/// Node feature layout: one-hot element (kNumElements) followed by
/// [degree/4, aromatic, charge, hydrophobic, donor, acceptor, is_ligand].
inline constexpr int kGraphNodeFeatures = kNumElements + 7;
/// v2 per-edge channels on the non-covalent set: [dist/threshold, hbond].
inline constexpr int kGraphEdgeFeaturesV2 = 2;

class CellList;

class GraphFeaturizer {
 public:
  explicit GraphFeaturizer(GraphFeaturizerConfig cfg = {}) : cfg_(cfg) {}

  graph::SpatialGraph featurize(const Molecule& ligand, const std::vector<Atom>& pocket) const;

  /// Same graph, but the pocket-crop k-nearest query runs against
  /// `crop_cells` — a CellList pre-built over exactly `pocket`'s positions
  /// with cell size `noncovalent_threshold` (the cross-request pocket cache
  /// holds one per receptor, serve/pocket_cache.h). CellList::knearest is
  /// bitwise-pinned against the (distance, index) sort at any size
  /// (tests/test_cell_list.cpp), so the result is identical to the 2-arg
  /// overload; the ligand-dependent query still runs per pose, only the
  /// O(pocket) build is amortized. Queries are const and thread-safe, so
  /// one cached list serves concurrent replicas. nullptr falls back to the
  /// 2-arg behaviour.
  graph::SpatialGraph featurize(const Molecule& ligand, const std::vector<Atom>& pocket,
                                const CellList* crop_cells) const;

  const GraphFeaturizerConfig& config() const { return cfg_; }

 private:
  GraphFeaturizerConfig cfg_;
};

}  // namespace df::chem
