// Explicit hydrogen-bond donor–acceptor detection across the protein–ligand
// interface — the geometric channel the feature_set_version v2 features add
// to both the voxel grid and the spatial-graph edges (ROADMAP item 4,
// cpptraj Action_HydrogenBond-style heavy-atom criteria).
//
// Heavy-atom-only geometry (the repo's PDBQT-like data model carries no
// explicit hydrogens): a pair (D, A) is an H-bond when
//   * D can donate (element hbond_donor_heavy, implicit_h > 0) and A can
//     accept (hbond_acceptor),
//   * dist(D, A) <= max_dist, and
//   * for ligand donors, some covalent neighbor B of D satisfies
//     cos(angle B–D–A) <= max_cos_angle (i.e. the B–D···A angle is wide
//     enough that the implicit H can point at the acceptor). Pocket atoms
//     carry no bond graph, so pocket donors are accepted on distance alone.
//
// Both directions (ligand donor → pocket acceptor, pocket donor → ligand
// acceptor) are tested; a pair that qualifies either way is reported once.
// Enumeration order is canonical (ligand atoms ascending, pocket partners
// ascending), so downstream feature deposits are deterministic at any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "chem/molecule.h"

namespace df::chem {

struct HBondConfig {
  float max_dist = 3.5f;        // donor–acceptor heavy-atom distance, Angstrom
  float max_cos_angle = -0.5f;  // cos(B–D–A) <= this, i.e. angle >= 120 deg
};

struct HBond {
  int32_t ligand_atom = 0;
  int32_t pocket_atom = 0;
  float dist = 0.0f;
};

/// All interface H-bonds between `ligand` and `pocket` under the heavy-atom
/// criteria above, in (ligand_atom asc, pocket_atom asc) order. Uses a
/// cell list over the pocket, so cost is O(N) in pocket size.
std::vector<HBond> find_hbonds(const Molecule& ligand, const std::vector<Atom>& pocket,
                               const HBondConfig& cfg = {});

}  // namespace df::chem
