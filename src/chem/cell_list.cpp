#include "chem/cell_list.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace df::chem {

void CellList::build(const core::Vec3* pos, int32_t n, float cell_size) {
  if (cell_size <= 0.0f) throw std::invalid_argument("CellList: cell_size must be positive");
  n_ = n;
  cell_size_ = cell_size;
  inv_cell_ = 1.0f / cell_size;
  pos_.assign(pos, pos + n);
  if (n == 0) {
    origin_ = {};
    nx_ = ny_ = nz_ = 1;
    cell_start_.assign(2, 0);
    cell_atoms_.clear();
    return;
  }
  core::Vec3 lo = pos[0], hi = pos[0];
  for (int32_t i = 1; i < n; ++i) {
    lo.x = std::min(lo.x, pos[i].x); hi.x = std::max(hi.x, pos[i].x);
    lo.y = std::min(lo.y, pos[i].y); hi.y = std::max(hi.y, pos[i].y);
    lo.z = std::min(lo.z, pos[i].z); hi.z = std::max(hi.z, pos[i].z);
  }
  origin_ = lo;
  nx_ = std::max(1, static_cast<int32_t>(std::floor((hi.x - lo.x) * inv_cell_)) + 1);
  ny_ = std::max(1, static_cast<int32_t>(std::floor((hi.y - lo.y) * inv_cell_)) + 1);
  nz_ = std::max(1, static_cast<int32_t>(std::floor((hi.z - lo.z) * inv_cell_)) + 1);

  // Counting sort into CSR: insertion in ascending atom order keeps each
  // cell's member list ascending, which is what gather()'s sorted-merge
  // contract rests on.
  const size_t ncells = static_cast<size_t>(nx_) * ny_ * nz_;
  cell_start_.assign(ncells + 1, 0);
  auto clamped_cell = [&](const core::Vec3& p) {
    int32_t cx = static_cast<int32_t>(std::floor((p.x - origin_.x) * inv_cell_));
    int32_t cy = static_cast<int32_t>(std::floor((p.y - origin_.y) * inv_cell_));
    int32_t cz = static_cast<int32_t>(std::floor((p.z - origin_.z) * inv_cell_));
    cx = std::clamp(cx, 0, nx_ - 1);
    cy = std::clamp(cy, 0, ny_ - 1);
    cz = std::clamp(cz, 0, nz_ - 1);
    return cell_of(cx, cy, cz);
  };
  for (int32_t i = 0; i < n; ++i) ++cell_start_[static_cast<size_t>(clamped_cell(pos[i])) + 1];
  for (size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  cell_atoms_.resize(static_cast<size_t>(n));
  std::vector<int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (int32_t i = 0; i < n; ++i) {
    cell_atoms_[static_cast<size_t>(cursor[static_cast<size_t>(clamped_cell(pos_[i]))]++)] = i;
  }
}

void CellList::cell_coords(const core::Vec3& p, int32_t& cx, int32_t& cy, int32_t& cz) const {
  // Unclamped: a probe outside the box gets out-of-range coords whose
  // stencil (range-clamped below) still covers every boundary cell it could
  // reach within one cell_size.
  cx = static_cast<int32_t>(std::floor((p.x - origin_.x) * inv_cell_));
  cy = static_cast<int32_t>(std::floor((p.y - origin_.y) * inv_cell_));
  cz = static_cast<int32_t>(std::floor((p.z - origin_.z) * inv_cell_));
}

bool CellList::covers_all(const core::Vec3& p) const {
  if (n_ == 0) return false;
  int32_t cx, cy, cz;
  cell_coords(p, cx, cy, cz);
  return std::max(0, cx - 1) == 0 && std::min(nx_ - 1, cx + 1) == nx_ - 1 &&
         std::max(0, cy - 1) == 0 && std::min(ny_ - 1, cy + 1) == ny_ - 1 &&
         std::max(0, cz - 1) == 0 && std::min(nz_ - 1, cz + 1) == nz_ - 1;
}

void CellList::gather(const core::Vec3& p, std::vector<int32_t>& out) const {
  out.clear();
  if (n_ == 0) return;
  int32_t cx, cy, cz;
  cell_coords(p, cx, cy, cz);
  const int32_t xlo = std::max(0, cx - 1), xhi = std::min(nx_ - 1, cx + 1);
  const int32_t ylo = std::max(0, cy - 1), yhi = std::min(ny_ - 1, cy + 1);
  const int32_t zlo = std::max(0, cz - 1), zhi = std::min(nz_ - 1, cz + 1);
  // Small systems (and probes near the middle of small grids) see the whole
  // grid in their stencil: the gather is then every atom, ascending — no
  // concatenation or sort needed. This keeps the cell route from paying a
  // per-probe sort tax on the pocket sizes where brute force was cheap.
  if ((xhi - xlo + 1) == nx_ && (yhi - ylo + 1) == ny_ && (zhi - zlo + 1) == nz_) {
    out.resize(static_cast<size_t>(n_));
    for (int32_t i = 0; i < n_; ++i) out[static_cast<size_t>(i)] = i;
    return;
  }
  // Per-cell lists are ascending but the stencil concatenation is not, and
  // the canonical ascending order is what makes consumers match their
  // brute-force inner loop bitwise. A per-probe sort would cost more than
  // the brute scan it replaces; instead mark stencil members in a bitmask
  // and emit set bits in word order — O(m + n/64) per probe, sort-free.
  static thread_local std::vector<uint64_t> mask;
  const size_t words = (static_cast<size_t>(n_) + 63) / 64;
  mask.assign(words, 0);
  for (int32_t z = zlo; z <= zhi; ++z) {
    for (int32_t y = ylo; y <= yhi; ++y) {
      for (int32_t x = xlo; x <= xhi; ++x) {
        const int32_t c = cell_of(x, y, z);
        for (int32_t a = cell_start_[static_cast<size_t>(c)];
             a < cell_start_[static_cast<size_t>(c) + 1]; ++a) {
          const uint32_t i = static_cast<uint32_t>(cell_atoms_[static_cast<size_t>(a)]);
          mask[i >> 6] |= uint64_t{1} << (i & 63);
        }
      }
    }
  }
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      out.push_back(static_cast<int32_t>((w << 6) + static_cast<size_t>(std::countr_zero(bits))));
      bits &= bits - 1;
    }
  }
}

void CellList::knearest(const core::Vec3& p, int32_t k, std::vector<int32_t>& out) const {
  out.clear();
  if (n_ == 0 || k <= 0) return;
  k = std::min(k, n_);
  int32_t cx, cy, cz;
  cell_coords(p, cx, cy, cz);
  // Chebyshev distance (in cells) from the probe's cell to the farthest
  // grid cell — the shell index at which the whole grid has been visited.
  const int32_t smax = std::max({cx, nx_ - 1 - cx, cy, ny_ - 1 - cy, cz, nz_ - 1 - cz, 0});

  std::vector<std::pair<float, int32_t>> cand;  // (dist, index)
  for (int32_t s = 0; s <= smax; ++s) {
    const int32_t xlo = std::max(0, cx - s), xhi = std::min(nx_ - 1, cx + s);
    const int32_t ylo = std::max(0, cy - s), yhi = std::min(ny_ - 1, cy + s);
    const int32_t zlo = std::max(0, cz - s), zhi = std::min(nz_ - 1, cz + s);
    for (int32_t z = zlo; z <= zhi; ++z) {
      for (int32_t y = ylo; y <= yhi; ++y) {
        for (int32_t x = xlo; x <= xhi; ++x) {
          if (std::max({std::abs(x - cx), std::abs(y - cy), std::abs(z - cz)}) != s) continue;
          const int32_t c = cell_of(x, y, z);
          for (int32_t a = cell_start_[static_cast<size_t>(c)];
               a < cell_start_[static_cast<size_t>(c) + 1]; ++a) {
            const int32_t i = cell_atoms_[static_cast<size_t>(a)];
            cand.emplace_back(pos_[static_cast<size_t>(i)].dist(p), i);
          }
        }
      }
    }
    if (static_cast<int32_t>(cand.size()) >= k) {
      // Every cell in shell s+1 or beyond is at true distance >= s*cell from
      // the probe. Stop once the kth-best candidate beats that bound by half
      // a cell — a margin float rounding cannot cross — so no unvisited atom
      // can displace (or index-tie with) a selected one.
      std::nth_element(cand.begin(), cand.begin() + (k - 1), cand.end());
      const float kth = cand[static_cast<size_t>(k - 1)].first;
      if (kth + 0.5f * cell_size_ <= static_cast<float>(s) * cell_size_) break;
    }
  }
  // Final order = the brute-force crop's order: sort by (distance, index).
  std::sort(cand.begin(), cand.end());
  out.reserve(static_cast<size_t>(k));
  for (int32_t i = 0; i < k; ++i) out.push_back(cand[static_cast<size_t>(i)].second);
}

}  // namespace df::chem
