#include "chem/ligand_prep.h"

#include <algorithm>

namespace df::chem {

LigandDescriptors compute_descriptors(const Molecule& mol) {
  LigandDescriptors d;
  d.molecular_weight = mol.molecular_weight();
  d.logp = mol.logp_proxy();
  d.tpsa = mol.tpsa_proxy();
  d.rotatable_bonds = mol.num_rotatable_bonds();
  d.rings = mol.num_rings();
  d.hbond_donors = mol.num_hbond_donors();
  d.hbond_acceptors = mol.num_hbond_acceptors();
  for (const Atom& a : mol.atoms()) d.formal_charge += a.formal_charge;
  return d;
}

void set_ph7_protonation(Molecule& mol) {
  for (size_t i = 0; i < mol.num_atoms(); ++i) {
    Atom& a = mol.atoms()[i];
    if (a.element == Element::O && a.implicit_h > 0) {
      // Carboxylic-acid-like: O-H whose neighbour C also bears a =O.
      for (int32_t nb : mol.neighbors(static_cast<int32_t>(i))) {
        if (mol.atoms()[static_cast<size_t>(nb)].element != Element::C) continue;
        for (int32_t nb2 : mol.neighbors(nb)) {
          if (nb2 == static_cast<int32_t>(i)) continue;
          if (mol.atoms()[static_cast<size_t>(nb2)].element == Element::O &&
              mol.atoms()[static_cast<size_t>(nb2)].implicit_h == 0) {
            a.formal_charge = -1;
            a.implicit_h = 0;
          }
        }
      }
    } else if (a.element == Element::N && a.implicit_h >= 2 && a.formal_charge == 0 &&
               !a.aromatic) {
      // Primary/secondary aliphatic amine: protonated at pH 7.
      a.formal_charge = 1;
      a.implicit_h = static_cast<int8_t>(a.implicit_h + 1);
    }
  }
}

std::optional<PreparedLigand> prepare_ligand(const Molecule& raw, core::Rng& rng,
                                             const LigandPrepConfig& cfg) {
  if (raw.num_atoms() == 0) return std::nullopt;
  if (cfg.reject_metals && raw.has_metal()) return std::nullopt;

  Molecule mol = raw;
  if (cfg.strip_salts) {
    auto comps = mol.connected_components();
    if (comps.size() > 1) {
      auto largest = std::max_element(comps.begin(), comps.end(),
                                      [](const auto& a, const auto& b) { return a.size() < b.size(); });
      mol = mol.subset(*largest);
    }
  }
  if (mol.num_atoms() == 0) return std::nullopt;

  set_ph7_protonation(mol);
  if (mol.molecular_weight() > cfg.max_molecular_weight) return std::nullopt;

  embed_conformer(mol, rng, cfg.conformer);

  PreparedLigand out;
  out.descriptors = compute_descriptors(mol);
  out.mol = std::move(mol);
  return out;
}

}  // namespace df::chem
