// Cell-list neighbor engine (cpptraj PairList-style) — the O(N) replacement
// for the brute-force pairwise scans in graph featurization, the MM-GBSA
// terms and the pocket crop. Atoms are binned once into cubic cells whose
// side is at least the largest cutoff a caller will query; a query then
// visits only the 27-cell stencil around the probe point.
//
// Determinism contract: gather() returns candidate indices sorted ascending
// and guarantees a *superset* of the atoms within `cell_size` of the probe.
// Consumers apply exactly the same distance predicate and arithmetic as
// their brute-force scan, in the same (outer atom, ascending inner index)
// order — so every cell-list route is bitwise identical to the scan it
// replaces, at any thread count (the engine itself never touches the
// compute pool; per-pose purity is what featurize lanes parallelize over).
#pragma once

#include <cstdint>
#include <vector>

#include "core/vec3.h"

namespace df::chem {

class CellList {
 public:
  CellList() = default;

  /// Bin `n` positions into cubic cells of side `cell_size` (Angstrom).
  /// `cell_size` must be >= the largest cutoff later passed to gather();
  /// positions are copied, so the source buffer may die after build().
  /// Internal storage is reused across builds (hot-path friendly).
  void build(const core::Vec3* pos, int32_t n, float cell_size);

  bool built() const { return cell_size_ > 0.0f; }
  int32_t size() const { return n_; }
  float cell_size() const { return cell_size_; }

  /// Clear `out`, then append every atom index whose cell lies in the
  /// 27-cell stencil around `p`, sorted ascending. Every atom within
  /// `cell_size` of `p` is guaranteed present (atoms further out may appear
  /// too — callers keep their own exact cutoff test).
  void gather(const core::Vec3& p, std::vector<int32_t>& out) const;

  /// True when the clamped 27-cell stencil around `p` spans the whole grid
  /// — gather(p) would return the identity permutation 0..n-1. Consumers
  /// use this to run their plain brute loop (same atoms, same order, so
  /// still bitwise identical) without the round-trip through an index list.
  bool covers_all(const core::Vec3& p) const;

  /// Exact k-nearest selection under the (distance, index) key: clears
  /// `out`, then appends min(k, n) atom indices ordered exactly as a full
  /// std::sort of all atoms by (pos.dist(p), index) would order its prefix.
  /// Expanding-shell search with a conservative one-cell stopping margin,
  /// so float rounding can never let an unvisited shell displace a winner.
  void knearest(const core::Vec3& p, int32_t k, std::vector<int32_t>& out) const;

 private:
  int32_t cell_of(int32_t cx, int32_t cy, int32_t cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }
  void cell_coords(const core::Vec3& p, int32_t& cx, int32_t& cy, int32_t& cz) const;

  int32_t n_ = 0;
  float cell_size_ = 0.0f;
  float inv_cell_ = 0.0f;
  core::Vec3 origin_;            // min corner of the bounding box
  int32_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<core::Vec3> pos_;  // copy of the binned positions
  std::vector<int32_t> cell_start_;  // CSR: per-cell offset into cell_atoms_
  std::vector<int32_t> cell_atoms_;  // atom ids, ascending within each cell
};

}  // namespace df::chem
