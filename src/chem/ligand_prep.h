// Ligand preparation — the MOE + antechamber + OpenBabel stage of the
// paper's pipeline (§4): strip salts, reject metal-containing ligands, set
// pH-7 protonation states, embed/minimize a 3-D conformer and compute the
// descriptor block exported alongside each structure.
#pragma once

#include <optional>
#include <string>

#include "chem/conformer.h"
#include "chem/molecule.h"
#include "core/rng.h"

namespace df::chem {

struct LigandDescriptors {
  float molecular_weight = 0;
  float logp = 0;
  float tpsa = 0;
  int rotatable_bonds = 0;
  int rings = 0;
  int hbond_donors = 0;
  int hbond_acceptors = 0;
  int formal_charge = 0;
};

struct PreparedLigand {
  Molecule mol;  // largest fragment, protonated, 3-D embedded
  LigandDescriptors descriptors;
};

struct LigandPrepConfig {
  bool strip_salts = true;
  bool reject_metals = true;
  float ph = 7.0f;
  ConformerConfig conformer;
  /// Drop ligands heavier than this (PDBbind refined-set style gate is
  /// applied later by the dataset code; this is the hard pipeline cap).
  float max_molecular_weight = 1500.0f;
};

/// Returns nullopt when the ligand is rejected (metal, too heavy, empty).
std::optional<PreparedLigand> prepare_ligand(const Molecule& raw, core::Rng& rng,
                                             const LigandPrepConfig& cfg = {});

LigandDescriptors compute_descriptors(const Molecule& mol);

/// pH-7 protonation rules applied in place: carboxylic-acid-like O
/// deprotonates (-1), amine-like N with free valence protonates (+1).
void set_ph7_protonation(Molecule& mol);

}  // namespace df::chem
