// Mini SMILES reader/writer (Weininger 1988) covering the organic subset
// the compound libraries use: atoms B-less organic set (C N O P S F Cl Br I,
// H in brackets), bonds - = #, branches (), ring closures 1-9, charges in
// brackets, aromatic lowercase c n o s. This replaces the OpenBabel
// conversion stage of the paper's ligand pipeline.
#pragma once

#include <string>

#include "chem/molecule.h"

namespace df::chem {

/// Parse a SMILES string; throws std::invalid_argument on malformed input.
/// Coordinates are left at the origin — run embed_conformer() afterwards.
Molecule parse_smiles(const std::string& smiles);

/// Serialize to SMILES via DFS from atom 0. Round-trips through
/// parse_smiles to an isomorphic graph (not a canonical writer).
std::string write_smiles(const Molecule& mol);

}  // namespace df::chem
