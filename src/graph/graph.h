// Spatial graph representation of a protein–ligand complex, the input to the
// SG-CNN. Two directed edge sets mirror FAST/PotentialNet's edge types:
// covalent (bond graph, short threshold) and non-covalent (spatial
// neighbours across the interface, longer threshold).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tensor.h"

namespace df::graph {

using core::Tensor;

/// Directed edge list stored as parallel (src, dst) arrays for tight loops.
struct EdgeList {
  std::vector<int32_t> src;
  std::vector<int32_t> dst;

  void add(int32_t s, int32_t d) {
    src.push_back(s);
    dst.push_back(d);
  }
  /// Add both directions (all chemistry edges in this library are symmetric).
  void add_undirected(int32_t a, int32_t b) {
    add(a, b);
    add(b, a);
  }
  size_t size() const { return src.size(); }
};

struct SpatialGraph {
  Tensor node_features;    // (num_nodes, feature_dim)
  EdgeList covalent;       // bond-graph edges
  EdgeList noncovalent;    // interface / spatial edges
  /// Per-directed-edge geometry channels for `noncovalent`, row i describing
  /// edge i: [distance / threshold, interface H-bond flag]. Populated only
  /// at feature_set_version >= 2 (chem/graph_featurizer.h); empty for v1,
  /// so v1 graphs — and every model consuming them — stay bitwise pinned.
  Tensor noncovalent_features;  // (noncovalent.size(), kGraphEdgeFeaturesV2) or empty
  int32_t num_ligand_nodes = 0;  // ligand atoms come first; gather sums them

  int64_t num_nodes() const { return node_features.empty() ? 0 : node_features.dim(0); }
  int64_t feature_dim() const { return node_features.empty() ? 0 : node_features.dim(1); }
};

/// A batch of pose graphs packed block-diagonally: node features stacked
/// into one (total_nodes, F) matrix, edge lists concatenated with node ids
/// shifted by each graph's offset. Message passing over the packed batch is
/// one wide GEMM per layer instead of one small GEMM per pose — no edge can
/// cross graphs, so the result rows are bitwise identical to running each
/// graph alone (the GEMM kernel is row-stable). The SG-CNN's batched
/// inference path (models/sgcnn.h) and the fusion models' predict_batch run
/// on this layout.
struct PackedGraphBatch {
  Tensor node_features;              // (total_nodes, F), graph g at rows
                                     //   [node_offset[g], node_offset[g+1])
  EdgeList covalent, noncovalent;    // shifted into packed node ids
  std::vector<int64_t> node_offset;  // size num_graphs()+1, prefix sums
  std::vector<int64_t> ligand_counts;  // per-graph num_ligand_nodes

  int64_t num_graphs() const { return static_cast<int64_t>(ligand_counts.size()); }
  int64_t total_nodes() const { return node_offset.empty() ? 0 : node_offset.back(); }
};

/// Pack `graphs` block-diagonally. Throws std::invalid_argument on an empty
/// batch, an empty graph (no nodes — mirrors Sgcnn's per-pose check) or
/// mismatched feature widths.
PackedGraphBatch pack_graphs(const std::vector<const SpatialGraph*>& graphs);

}  // namespace df::graph
