// Spatial graph representation of a protein–ligand complex, the input to the
// SG-CNN. Two directed edge sets mirror FAST/PotentialNet's edge types:
// covalent (bond graph, short threshold) and non-covalent (spatial
// neighbours across the interface, longer threshold).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tensor.h"

namespace df::graph {

using core::Tensor;

/// Directed edge list stored as parallel (src, dst) arrays for tight loops.
struct EdgeList {
  std::vector<int32_t> src;
  std::vector<int32_t> dst;

  void add(int32_t s, int32_t d) {
    src.push_back(s);
    dst.push_back(d);
  }
  /// Add both directions (all chemistry edges in this library are symmetric).
  void add_undirected(int32_t a, int32_t b) {
    add(a, b);
    add(b, a);
  }
  size_t size() const { return src.size(); }
};

struct SpatialGraph {
  Tensor node_features;    // (num_nodes, feature_dim)
  EdgeList covalent;       // bond-graph edges
  EdgeList noncovalent;    // interface / spatial edges
  int32_t num_ligand_nodes = 0;  // ligand atoms come first; gather sums them

  int64_t num_nodes() const { return node_features.empty() ? 0 : node_features.dim(0); }
  int64_t feature_dim() const { return node_features.empty() ? 0 : node_features.dim(1); }
};

}  // namespace df::graph
