#include "graph/gather.h"

#include <cstring>
#include <stdexcept>

#include "nn/activations.h"

namespace df::graph {

Gather::Gather(int64_t in_h, int64_t in_x, int64_t width, core::Rng& rng)
    : in_h_(in_h), in_x_(in_x), width_(width), gate_(in_h + in_x, width, rng),
      value_(in_h + in_x, width, rng) {}

Tensor Gather::concat(const Tensor& h, const Tensor& x) const {
  if (h.dim(0) != x.dim(0)) throw std::invalid_argument("Gather: node count mismatch");
  const int64_t rows = h.dim(0);
  Tensor cat = Tensor::uninit({rows, in_h_ + in_x_});
  for (int64_t i = 0; i < rows; ++i) {
    float* dst = cat.data() + i * (in_h_ + in_x_);
    std::memcpy(dst, h.data() + i * in_h_, static_cast<size_t>(in_h_) * sizeof(float));
    std::memcpy(dst + in_h_, x.data() + i * in_x_, static_cast<size_t>(in_x_) * sizeof(float));
  }
  return cat;
}

Tensor Gather::forward_nodes(const Tensor& h, const Tensor& x, bool training) {
  gate_.set_training(training);
  value_.set_training(training);
  Tensor cat = concat(h, x);
  // out = sigmoid(a_g) * v; the sigmoid rides the gate GEMM's epilogue.
  Tensor g = gate_.forward_act(cat, core::EpilogueAct::kSigmoid);
  Tensor v = value_.forward(cat);
  if (training) {
    cat_ = cat;
    gate_out_ = g;
    value_out_ = v;
    n_nodes_ = h.dim(0);
  }
  Tensor out = Tensor::uninit(g.shape());
  for (int64_t i = 0; i < g.numel(); ++i) out[i] = g[i] * v[i];
  return out;
}

std::pair<Tensor, Tensor> Gather::backward_nodes(const Tensor& grad_out) {
  if (cat_.empty()) throw std::runtime_error("Gather::backward before forward");
  // out = sigmoid(a_g) * v
  Tensor dv = grad_out * gate_out_;
  Tensor dag = Tensor::uninit(grad_out.shape());
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    dag[i] = grad_out[i] * value_out_[i] * nn::dsigmoid_from_y(gate_out_[i]);
  }
  Tensor dcat = value_.backward(dv);
  dcat += gate_.backward(dag);
  // split the concat gradient with contiguous row copies
  Tensor dh = Tensor::uninit({n_nodes_, in_h_}), dx = Tensor::uninit({n_nodes_, in_x_});
  for (int64_t i = 0; i < n_nodes_; ++i) {
    const float* src = dcat.data() + i * (in_h_ + in_x_);
    std::memcpy(dh.data() + i * in_h_, src, static_cast<size_t>(in_h_) * sizeof(float));
    std::memcpy(dx.data() + i * in_x_, src + in_h_, static_cast<size_t>(in_x_) * sizeof(float));
  }
  cat_ = Tensor();
  return {std::move(dh), std::move(dx)};
}

Tensor Gather::forward_sum(const Tensor& h, const Tensor& x, int64_t n_sum, bool training) {
  Tensor per_node = forward_nodes(h, x, training);
  n_sum_ = std::min<int64_t>(n_sum, per_node.dim(0));
  Tensor out({1, width_});
  float* acc = out.data();
  for (int64_t i = 0; i < n_sum_; ++i) {
    const float* row = per_node.data() + i * width_;
    for (int64_t j = 0; j < width_; ++j) acc[j] += row[j];
  }
  return out;
}

Tensor Gather::forward_segments(const Tensor& h, const Tensor& x,
                                const std::vector<int64_t>& node_offset,
                                const std::vector<int64_t>& sum_counts, bool training) {
  if (node_offset.empty() || node_offset.size() != sum_counts.size() + 1) {
    throw std::invalid_argument("Gather::forward_segments: bad segment layout");
  }
  Tensor per_node = forward_nodes(h, x, training);
  const int64_t num_graphs = static_cast<int64_t>(sum_counts.size());
  Tensor out({num_graphs, width_});
  for (int64_t g = 0; g < num_graphs; ++g) {
    // Per-graph sum over its leading (ligand) rows, in the same node order
    // as the per-pose forward_sum — keeps batched == per-pose bitwise.
    const int64_t base = node_offset[static_cast<size_t>(g)];
    const int64_t count = std::min<int64_t>(sum_counts[static_cast<size_t>(g)],
                                            node_offset[static_cast<size_t>(g) + 1] - base);
    float* acc = out.data() + g * width_;
    for (int64_t i = 0; i < count; ++i) {
      const float* row = per_node.data() + (base + i) * width_;
      for (int64_t j = 0; j < width_; ++j) acc[j] += row[j];
    }
  }
  return out;
}

std::pair<Tensor, Tensor> Gather::backward_sum(const Tensor& grad_graph) {
  // Broadcast the graph-level gradient to the summed nodes; zero elsewhere.
  Tensor gnodes({n_nodes_, width_});
  for (int64_t i = 0; i < n_sum_; ++i) {
    std::memcpy(gnodes.data() + i * width_, grad_graph.data(),
                static_cast<size_t>(width_) * sizeof(float));
  }
  return backward_nodes(gnodes);
}

void Gather::collect_parameters(std::vector<nn::Parameter*>& out) {
  gate_.collect_parameters(out);
  value_.collect_parameters(out);
}

}  // namespace df::graph
