#include "graph/gather.h"

#include <stdexcept>

#include "nn/activations.h"

namespace df::graph {

Gather::Gather(int64_t in_h, int64_t in_x, int64_t width, core::Rng& rng)
    : in_h_(in_h), in_x_(in_x), width_(width), gate_(in_h + in_x, width, rng),
      value_(in_h + in_x, width, rng) {}

Tensor Gather::concat(const Tensor& h, const Tensor& x) const {
  if (h.dim(0) != x.dim(0)) throw std::invalid_argument("Gather: node count mismatch");
  Tensor cat({h.dim(0), in_h_ + in_x_});
  for (int64_t i = 0; i < h.dim(0); ++i) {
    for (int64_t j = 0; j < in_h_; ++j) cat.at(i, j) = h.at(i, j);
    for (int64_t j = 0; j < in_x_; ++j) cat.at(i, in_h_ + j) = x.at(i, j);
  }
  return cat;
}

Tensor Gather::forward_nodes(const Tensor& h, const Tensor& x, bool training) {
  gate_.set_training(training);
  value_.set_training(training);
  Tensor cat = concat(h, x);
  Tensor g = gate_.forward(cat).map(nn::sigmoid);
  Tensor v = value_.forward(cat);
  if (training) {
    cat_ = cat;
    gate_out_ = g;
    value_out_ = v;
    n_nodes_ = h.dim(0);
  }
  return g * v;
}

std::pair<Tensor, Tensor> Gather::backward_nodes(const Tensor& grad_out) {
  if (cat_.empty()) throw std::runtime_error("Gather::backward before forward");
  // out = sigmoid(a_g) * v
  Tensor dv = grad_out * gate_out_;
  Tensor dag(grad_out.shape());
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    dag[i] = grad_out[i] * value_out_[i] * nn::dsigmoid_from_y(gate_out_[i]);
  }
  Tensor dcat = value_.backward(dv);
  dcat += gate_.backward(dag);
  // split the concat gradient
  Tensor dh({n_nodes_, in_h_}), dx({n_nodes_, in_x_});
  for (int64_t i = 0; i < n_nodes_; ++i) {
    for (int64_t j = 0; j < in_h_; ++j) dh.at(i, j) = dcat.at(i, j);
    for (int64_t j = 0; j < in_x_; ++j) dx.at(i, j) = dcat.at(i, in_h_ + j);
  }
  cat_ = Tensor();
  return {std::move(dh), std::move(dx)};
}

Tensor Gather::forward_sum(const Tensor& h, const Tensor& x, int64_t n_sum, bool training) {
  Tensor per_node = forward_nodes(h, x, training);
  n_sum_ = std::min<int64_t>(n_sum, per_node.dim(0));
  Tensor out({1, width_});
  for (int64_t i = 0; i < n_sum_; ++i)
    for (int64_t j = 0; j < width_; ++j) out.at(0, j) += per_node.at(i, j);
  return out;
}

std::pair<Tensor, Tensor> Gather::backward_sum(const Tensor& grad_graph) {
  // Broadcast the graph-level gradient to the summed nodes; zero elsewhere.
  Tensor gnodes({n_nodes_, width_});
  for (int64_t i = 0; i < n_sum_; ++i)
    for (int64_t j = 0; j < width_; ++j) gnodes.at(i, j) = grad_graph.at(0, j);
  return backward_nodes(gnodes);
}

void Gather::collect_parameters(std::vector<nn::Parameter*>& out) {
  gate_.collect_parameters(out);
  value_.collect_parameters(out);
}

}  // namespace df::graph
