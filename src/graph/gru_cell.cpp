#include "graph/gru_cell.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/gemm.h"
#include "nn/activations.h"

namespace df::graph {

namespace {
// Gate pre-activation + nonlinearity in two GEMMs: out = act(x W + h U + b).
// The second GEMM accumulates into the first and carries the bias broadcast
// and activation as a fused epilogue, so the gate never takes a separate
// elementwise pass over (N, dim).
Tensor gate(const Tensor& x, const Tensor& w, const Tensor& h, const Tensor& u, const Tensor& b,
            core::EpilogueAct act) {
  const int64_t rows = x.dim(0), dim = x.dim(1);
  Tensor out = Tensor::uninit({rows, dim});
  core::sgemm(false, false, rows, dim, dim, x.data(), dim, w.data(), dim, out.data(), dim);
  core::Epilogue ep;
  ep.act = act;
  ep.bias_col = b.data();
  core::sgemm(false, false, rows, dim, dim, h.data(), dim, u.data(), dim, out.data(), dim,
              /*accumulate=*/true, &ep);
  return out;
}

// db[j] += colsum(g) with contiguous row pointers.
void add_colsum(const Tensor& g, Tensor& db) {
  const int64_t rows = g.dim(0), cols = g.dim(1);
  float* acc = db.data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = g.data() + i * cols;
    for (int64_t j = 0; j < cols; ++j) acc[j] += row[j];
  }
}
}  // namespace

GRUCell::GRUCell(int64_t dim, core::Rng& rng) : dim_(dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(dim));
  auto mk = [&](const char* n) {
    return Parameter(Tensor::uniform({dim_, dim_}, rng, -bound, bound), n);
  };
  auto mkb = [&](const char* n) {
    return Parameter(Tensor::uniform({dim_}, rng, -bound, bound), n);
  };
  wz_ = mk("gru.wz"); uz_ = mk("gru.uz"); bz_ = mkb("gru.bz");
  wr_ = mk("gru.wr"); ur_ = mk("gru.ur"); br_ = mkb("gru.br");
  wc_ = mk("gru.wc"); uc_ = mk("gru.uc"); bc_ = mkb("gru.bc");
}

Tensor GRUCell::forward(const Tensor& x, const Tensor& h, bool training) {
  core::check_same_shape(x, h, "GRUCell");
  if (!training) return forward_eval(x, h);
  Tensor z = gate(x, wz_.value, h, uz_.value, bz_.value, core::EpilogueAct::kSigmoid);
  Tensor r = gate(x, wr_.value, h, ur_.value, br_.value, core::EpilogueAct::kSigmoid);
  Tensor rh = Tensor::uninit(h.shape());
  for (int64_t i = 0; i < h.numel(); ++i) rh[i] = r[i] * h[i];
  Tensor c = gate(x, wc_.value, rh, uc_.value, bc_.value, core::EpilogueAct::kTanh);
  Tensor h_new = Tensor::uninit(h.shape());
  for (int64_t i = 0; i < h.numel(); ++i) h_new[i] = (1.0f - z[i]) * h[i] + z[i] * c[i];
  frames_.push_back(Frame{x, h, std::move(z), std::move(r), std::move(c)});
  return h_new;
}

Tensor GRUCell::forward_eval(const Tensor& x, const Tensor& h) {
  // Inference: the three gates share their inputs, so fold the x-side into
  // ONE (rows, 3*dim) GEMM over column-concatenated weights [Wz|Wr|Wc] and
  // the z/r h-side into one (rows, 2*dim) accumulate with the bias+sigmoid
  // epilogue — x is read once instead of three times, h once instead of
  // twice, and z/r/c live side by side in one activation block. Column
  // concatenation does not touch any per-element accumulation order, so
  // the gate values are bitwise identical to the training-path gate().
  const int64_t rows = x.dim(0), d = dim_;
  Tensor wcat = Tensor::uninit({d, 3 * d});
  Tensor ucat = Tensor::uninit({d, 2 * d});
  Tensor bcat = Tensor::uninit({2 * d});
  for (int64_t p = 0; p < d; ++p) {
    float* wrow = wcat.data() + p * 3 * d;
    std::memcpy(wrow, wz_.value.data() + p * d, static_cast<size_t>(d) * sizeof(float));
    std::memcpy(wrow + d, wr_.value.data() + p * d, static_cast<size_t>(d) * sizeof(float));
    std::memcpy(wrow + 2 * d, wc_.value.data() + p * d, static_cast<size_t>(d) * sizeof(float));
    float* urow = ucat.data() + p * 2 * d;
    std::memcpy(urow, uz_.value.data() + p * d, static_cast<size_t>(d) * sizeof(float));
    std::memcpy(urow + d, ur_.value.data() + p * d, static_cast<size_t>(d) * sizeof(float));
  }
  std::memcpy(bcat.data(), bz_.value.data(), static_cast<size_t>(d) * sizeof(float));
  std::memcpy(bcat.data() + d, br_.value.data(), static_cast<size_t>(d) * sizeof(float));

  // a = [z|r|c] pre-activations, finalized block by block in place.
  Tensor a = Tensor::uninit({rows, 3 * d});
  core::sgemm(false, false, rows, 3 * d, d, x.data(), d, wcat.data(), 3 * d, a.data(), 3 * d);
  core::Epilogue ep_zr;
  ep_zr.act = core::EpilogueAct::kSigmoid;
  ep_zr.bias_col = bcat.data();
  core::sgemm(false, false, rows, 2 * d, d, h.data(), d, ucat.data(), 2 * d, a.data(), 3 * d,
              /*accumulate=*/true, &ep_zr);
  Tensor rh = Tensor::uninit(h.shape());
  for (int64_t i = 0; i < rows; ++i) {
    const float* arow = a.data() + i * 3 * d + d;  // r block
    const float* hrow = h.data() + i * d;
    float* out = rh.data() + i * d;
    for (int64_t j = 0; j < d; ++j) out[j] = arow[j] * hrow[j];
  }
  core::Epilogue ep_c;
  ep_c.act = core::EpilogueAct::kTanh;
  ep_c.bias_col = bc_.value.data();
  core::sgemm(false, false, rows, d, d, rh.data(), d, uc_.value.data(), d, a.data() + 2 * d,
              3 * d, /*accumulate=*/true, &ep_c);

  Tensor h_new = Tensor::uninit(h.shape());
  for (int64_t i = 0; i < rows; ++i) {
    const float* arow = a.data() + i * 3 * d;
    const float* hrow = h.data() + i * d;
    float* out = h_new.data() + i * d;
    for (int64_t j = 0; j < d; ++j) {
      out[j] = (1.0f - arow[j]) * hrow[j] + arow[j] * arow[2 * d + j];
    }
  }
  return h_new;
}

std::pair<Tensor, Tensor> GRUCell::backward(const Tensor& grad_h_new) {
  if (frames_.empty()) throw std::runtime_error("GRUCell::backward with no cached frame");
  Frame f = std::move(frames_.back());
  frames_.pop_back();

  const int64_t n = grad_h_new.numel();
  Tensor dz = Tensor::uninit(f.z.shape()), dc = Tensor::uninit(f.c.shape()),
         dh = Tensor::uninit(f.h.shape());
  for (int64_t i = 0; i < n; ++i) {
    dc[i] = grad_h_new[i] * f.z[i];
    dz[i] = grad_h_new[i] * (f.c[i] - f.h[i]);
    dh[i] = grad_h_new[i] * (1.0f - f.z[i]);
  }

  // Candidate: c = tanh(x Wc + (r*h) Uc + bc)
  Tensor dac = Tensor::uninit(dc.shape());
  for (int64_t i = 0; i < n; ++i) dac[i] = dc[i] * nn::dtanh_from_y(f.c[i]);
  Tensor rh = Tensor::uninit(f.h.shape());
  for (int64_t i = 0; i < n; ++i) rh[i] = f.r[i] * f.h[i];
  wc_.grad += f.x.matmul_tn(dac);
  uc_.grad += rh.matmul_tn(dac);
  add_colsum(dac, bc_.grad);
  Tensor dx = dac.matmul_nt(wc_.value);
  Tensor drh = dac.matmul_nt(uc_.value);
  Tensor dr = Tensor::uninit(f.r.shape());
  for (int64_t i = 0; i < n; ++i) {
    dr[i] = drh[i] * f.h[i];
    dh[i] += drh[i] * f.r[i];
  }

  // Update gate: z = sigmoid(x Wz + h Uz + bz)
  Tensor daz = Tensor::uninit(dz.shape());
  for (int64_t i = 0; i < n; ++i) daz[i] = dz[i] * nn::dsigmoid_from_y(f.z[i]);
  wz_.grad += f.x.matmul_tn(daz);
  uz_.grad += f.h.matmul_tn(daz);
  add_colsum(daz, bz_.grad);
  dx += daz.matmul_nt(wz_.value);
  dh += daz.matmul_nt(uz_.value);

  // Reset gate: r = sigmoid(x Wr + h Ur + br)
  Tensor dar = Tensor::uninit(dr.shape());
  for (int64_t i = 0; i < n; ++i) dar[i] = dr[i] * nn::dsigmoid_from_y(f.r[i]);
  wr_.grad += f.x.matmul_tn(dar);
  ur_.grad += f.h.matmul_tn(dar);
  add_colsum(dar, br_.grad);
  dx += dar.matmul_nt(wr_.value);
  dh += dar.matmul_nt(ur_.value);

  return {std::move(dx), std::move(dh)};
}

void GRUCell::collect_parameters(std::vector<Parameter*>& out) {
  for (Parameter* p : {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wc_, &uc_, &bc_}) out.push_back(p);
}

}  // namespace df::graph
