#include "graph/gru_cell.h"

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"

namespace df::graph {

namespace {
Tensor linear2(const Tensor& x, const Tensor& w, const Tensor& h, const Tensor& u,
               const Tensor& b) {
  Tensor out = x.matmul(w);
  out += h.matmul(u);
  const int64_t rows = out.dim(0), cols = out.dim(1);
  for (int64_t i = 0; i < rows; ++i)
    for (int64_t j = 0; j < cols; ++j) out.at(i, j) += b[j];
  return out;
}
}  // namespace

GRUCell::GRUCell(int64_t dim, core::Rng& rng) : dim_(dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(dim));
  auto mk = [&](const char* n) {
    return Parameter(Tensor::uniform({dim_, dim_}, rng, -bound, bound), n);
  };
  auto mkb = [&](const char* n) {
    return Parameter(Tensor::uniform({dim_}, rng, -bound, bound), n);
  };
  wz_ = mk("gru.wz"); uz_ = mk("gru.uz"); bz_ = mkb("gru.bz");
  wr_ = mk("gru.wr"); ur_ = mk("gru.ur"); br_ = mkb("gru.br");
  wc_ = mk("gru.wc"); uc_ = mk("gru.uc"); bc_ = mkb("gru.bc");
}

Tensor GRUCell::forward(const Tensor& x, const Tensor& h, bool training) {
  core::check_same_shape(x, h, "GRUCell");
  Tensor z = linear2(x, wz_.value, h, uz_.value, bz_.value).map(nn::sigmoid);
  Tensor r = linear2(x, wr_.value, h, ur_.value, br_.value).map(nn::sigmoid);
  Tensor rh = r * h;
  Tensor c = linear2(x, wc_.value, rh, uc_.value, bc_.value).map(
      [](float v) { return std::tanh(v); });
  Tensor h_new(h.shape());
  for (int64_t i = 0; i < h.numel(); ++i) h_new[i] = (1.0f - z[i]) * h[i] + z[i] * c[i];
  if (training) frames_.push_back(Frame{x, h, std::move(z), std::move(r), std::move(c)});
  return h_new;
}

std::pair<Tensor, Tensor> GRUCell::backward(const Tensor& grad_h_new) {
  if (frames_.empty()) throw std::runtime_error("GRUCell::backward with no cached frame");
  Frame f = std::move(frames_.back());
  frames_.pop_back();

  const int64_t n = grad_h_new.numel();
  Tensor dz(f.z.shape()), dc(f.c.shape()), dh(f.h.shape());
  for (int64_t i = 0; i < n; ++i) {
    dc[i] = grad_h_new[i] * f.z[i];
    dz[i] = grad_h_new[i] * (f.c[i] - f.h[i]);
    dh[i] = grad_h_new[i] * (1.0f - f.z[i]);
  }

  // Candidate: c = tanh(x Wc + (r*h) Uc + bc)
  Tensor dac(dc.shape());
  for (int64_t i = 0; i < n; ++i) dac[i] = dc[i] * nn::dtanh_from_y(f.c[i]);
  Tensor rh = f.r * f.h;
  wc_.grad += f.x.matmul_tn(dac);
  uc_.grad += rh.matmul_tn(dac);
  for (int64_t i = 0; i < dac.dim(0); ++i)
    for (int64_t j = 0; j < dim_; ++j) bc_.grad[j] += dac.at(i, j);
  Tensor dx = dac.matmul_nt(wc_.value);
  Tensor drh = dac.matmul_nt(uc_.value);
  Tensor dr(f.r.shape());
  for (int64_t i = 0; i < n; ++i) {
    dr[i] = drh[i] * f.h[i];
    dh[i] += drh[i] * f.r[i];
  }

  // Update gate: z = sigmoid(x Wz + h Uz + bz)
  Tensor daz(dz.shape());
  for (int64_t i = 0; i < n; ++i) daz[i] = dz[i] * nn::dsigmoid_from_y(f.z[i]);
  wz_.grad += f.x.matmul_tn(daz);
  uz_.grad += f.h.matmul_tn(daz);
  for (int64_t i = 0; i < daz.dim(0); ++i)
    for (int64_t j = 0; j < dim_; ++j) bz_.grad[j] += daz.at(i, j);
  dx += daz.matmul_nt(wz_.value);
  dh += daz.matmul_nt(uz_.value);

  // Reset gate: r = sigmoid(x Wr + h Ur + br)
  Tensor dar(dr.shape());
  for (int64_t i = 0; i < n; ++i) dar[i] = dr[i] * nn::dsigmoid_from_y(f.r[i]);
  wr_.grad += f.x.matmul_tn(dar);
  ur_.grad += f.h.matmul_tn(dar);
  for (int64_t i = 0; i < dar.dim(0); ++i)
    for (int64_t j = 0; j < dim_; ++j) br_.grad[j] += dar.at(i, j);
  dx += dar.matmul_nt(wr_.value);
  dh += dar.matmul_nt(ur_.value);

  return {std::move(dx), std::move(dh)};
}

void GRUCell::collect_parameters(std::vector<Parameter*>& out) {
  for (Parameter* p : {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wc_, &uc_, &bc_}) out.push_back(p);
}

}  // namespace df::graph
