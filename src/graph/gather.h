// PotentialNet gather: turns per-node states into a fixed-width vector via a
// learned soft attention gate,
//     out_v = sigmoid(i([h_v, x_v])) * j([h_v, x_v]),
// optionally summed over the ligand nodes to produce the graph embedding.
// The output width is the paper's "gather width" hyper-parameter.
#pragma once

#include "core/rng.h"
#include "graph/graph.h"
#include "nn/dense.h"

namespace df::graph {

class Gather {
 public:
  /// in_h: node-state dim; in_x: original-feature dim; width: output dim.
  Gather(int64_t in_h, int64_t in_x, int64_t width, core::Rng& rng);

  /// Per-node gather: (N, in_h) + (N, in_x) -> (N, width).
  Tensor forward_nodes(const Tensor& h, const Tensor& x, bool training);
  /// Backward of forward_nodes; returns {dL/dh, dL/dx}.
  std::pair<Tensor, Tensor> backward_nodes(const Tensor& grad_out);

  /// Graph-level gather: sum per-node output over nodes [0, n_sum).
  /// Matches PotentialNet summing over ligand atoms only.
  Tensor forward_sum(const Tensor& h, const Tensor& x, int64_t n_sum, bool training);
  std::pair<Tensor, Tensor> backward_sum(const Tensor& grad_graph);

  /// Batched graph-level gather over a packed block-diagonal batch
  /// (graph::PackedGraphBatch layout): graph g sums per-node output rows
  /// [node_offset[g], node_offset[g] + sum_counts[g]) into row g of the
  /// (num_graphs, width) result. Bitwise identical to running forward_sum
  /// per graph. Inference path — per-graph backward is not supported.
  Tensor forward_segments(const Tensor& h, const Tensor& x,
                          const std::vector<int64_t>& node_offset,
                          const std::vector<int64_t>& sum_counts, bool training);

  void collect_parameters(std::vector<nn::Parameter*>& out);
  int64_t width() const { return width_; }

 private:
  Tensor concat(const Tensor& h, const Tensor& x) const;

  int64_t in_h_, in_x_, width_;
  nn::Dense gate_;   // "i" network -> sigmoid
  nn::Dense value_;  // "j" network
  // caches
  Tensor cat_, gate_out_, value_out_;
  int64_t n_sum_ = 0;
  int64_t n_nodes_ = 0;
};

}  // namespace df::graph
