// Gated graph convolution: K steps of message passing with a GRU node
// update, over one edge type. The SG-CNN runs one instance over covalent
// edges and another over non-covalent edges, with per-stage K and hidden
// widths chosen by the hyper-parameter search (paper Table 1/2).
#pragma once

#include <vector>

#include "core/rng.h"
#include "graph/graph.h"
#include "graph/gru_cell.h"
#include "nn/module.h"

namespace df::graph {

class GatedGraphConv {
 public:
  GatedGraphConv(int64_t dim, int64_t num_steps, core::Rng& rng);

  /// Propagate node states (N, dim) over `edges` for K steps.
  Tensor forward(const Tensor& h0, const EdgeList& edges, bool training);
  /// Backward for the most recent forward; returns dL/dh0.
  Tensor backward(const Tensor& grad_h_final);

  void collect_parameters(std::vector<nn::Parameter*>& out);
  int64_t dim() const { return dim_; }
  int64_t num_steps() const { return steps_; }

 private:
  /// m_v = sum_{(u,v) in E} h_u W_msg  (aggregate-then-transform), reading
  /// sources through csr_ so each destination row is accumulated in
  /// registers and stored once.
  Tensor message(const Tensor& h) const;
  /// Group edge sources by destination (stable within a destination).
  void build_csr(const EdgeList& edges, int64_t num_nodes);

  int64_t dim_, steps_;
  nn::Parameter w_msg_;  // (dim, dim)
  GRUCell gru_;
  // Edge sources grouped by destination (CSR; edge order preserved within a
  // destination, so accumulation order matches the flat edge list). Built
  // once per forward() and reused by every propagation step — replica
  // state, like the layer caches.
  std::vector<int32_t> csr_start_;  // size num_nodes+1
  std::vector<int32_t> csr_src_;
  // Caches for backward (training only).
  std::vector<Tensor> h_states_;  // h_0 .. h_{K-1} (inputs to each step)
  const EdgeList* edges_ = nullptr;
};

}  // namespace df::graph
