#include "graph/gated_graph_conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/simd_math.h"

namespace df::graph {

namespace {

// to[to_idx[e]] += from[from_idx[e]] per edge, rows of width `dim`. The
// vector path runs whole 16-lane chunks and BLENDS the tail lanes through
// unchanged (never adds 0.0f, which would flip a -0.0f), so it is bitwise
// identical to the scalar loop; the one-lane-past-the-row traffic lands in
// the 16-float slack every Tensor/Workspace allocation reserves.
void scatter_add_rows(const std::vector<int32_t>& from_idx, const std::vector<int32_t>& to_idx,
                      const float* from, float* to, int64_t dim) {
#if defined(DF_SIMD_MATH_VECTOR)
  using core::simd::vf16;
  using core::simd::vi16;
  for (int64_t c0 = 0; c0 < dim; c0 += 16) {
    const int32_t valid = static_cast<int32_t>(std::min<int64_t>(16, dim - c0));
    const vi16 mask = core::simd::iota16i() < (vi16{} + valid);
    for (size_t e = 0; e < from_idx.size(); ++e) {
      const float* src = from + from_idx[e] * dim + c0;
      float* dst = to + to_idx[e] * dim + c0;
      vf16 s, d;
      std::memcpy(&s, src, sizeof(s));
      std::memcpy(&d, dst, sizeof(d));
      const vf16 sum = d + s;
      d = mask ? sum : d;
      std::memcpy(dst, &d, sizeof(d));
    }
  }
#else
  for (size_t e = 0; e < from_idx.size(); ++e) {
    const float* src = from + from_idx[e] * dim;
    float* dst = to + to_idx[e] * dim;
    for (int64_t j = 0; j < dim; ++j) dst[j] += src[j];
  }
#endif
}

}  // namespace

GatedGraphConv::GatedGraphConv(int64_t dim, int64_t num_steps, core::Rng& rng)
    : dim_(dim), steps_(num_steps),
      w_msg_(Tensor::uniform({dim, dim}, rng, -1.0f / std::sqrt(static_cast<float>(dim)),
                             1.0f / std::sqrt(static_cast<float>(dim))),
             "ggc.w_msg"),
      gru_(dim, rng) {}

Tensor GatedGraphConv::message(const Tensor& h) const {
  // Aggregate neighbour states, then apply the edge-type transform. Doing
  // the (N,dim)x(dim,dim) matmul once after aggregation instead of per-edge
  // keeps the step O(E*dim + N*dim^2). Sources are read through the
  // per-destination CSR so each destination row accumulates in registers
  // and is stored once — same per-destination edge order as the flat list,
  // so the sums are bitwise identical to the scatter formulation.
  const int64_t rows = h.dim(0);
  Tensor agg({rows, dim_});
#if defined(DF_SIMD_MATH_VECTOR)
  if (dim_ <= 16) {
    using core::simd::vf16;
    using core::simd::vi16;
    const vi16 mask = core::simd::iota16i() < (vi16{} + static_cast<int32_t>(dim_));
    for (int64_t v = 0; v < rows; ++v) {
      const int32_t e0 = csr_start_[static_cast<size_t>(v)];
      const int32_t e1 = csr_start_[static_cast<size_t>(v) + 1];
      if (e0 == e1) continue;
      vf16 acc = {};
      for (int32_t e = e0; e < e1; ++e) {
        vf16 s;
        std::memcpy(&s, h.data() + csr_src_[static_cast<size_t>(e)] * dim_, sizeof(s));
        acc += s;
      }
      float* dst = agg.data() + v * dim_;
      vf16 d;
      std::memcpy(&d, dst, sizeof(d));
      d = mask ? acc : d;
      std::memcpy(dst, &d, sizeof(d));
    }
    return agg.matmul(w_msg_.value);
  }
#endif
  for (int64_t v = 0; v < rows; ++v) {
    const int32_t e0 = csr_start_[static_cast<size_t>(v)];
    const int32_t e1 = csr_start_[static_cast<size_t>(v) + 1];
    float* dst = agg.data() + v * dim_;
    for (int32_t e = e0; e < e1; ++e) {
      const float* src = h.data() + csr_src_[static_cast<size_t>(e)] * dim_;
      for (int64_t j = 0; j < dim_; ++j) dst[j] += src[j];
    }
  }
  return agg.matmul(w_msg_.value);
}

void GatedGraphConv::build_csr(const EdgeList& edges, int64_t num_nodes) {
  csr_start_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (size_t e = 0; e < edges.size(); ++e) ++csr_start_[static_cast<size_t>(edges.dst[e]) + 1];
  for (int64_t v = 0; v < num_nodes; ++v)
    csr_start_[static_cast<size_t>(v) + 1] += csr_start_[static_cast<size_t>(v)];
  csr_src_.resize(edges.size());
  static thread_local std::vector<int32_t> cursor;
  cursor.assign(csr_start_.begin(), csr_start_.end() - 1);
  for (size_t e = 0; e < edges.size(); ++e) {
    csr_src_[static_cast<size_t>(cursor[static_cast<size_t>(edges.dst[e])]++)] = edges.src[e];
  }
}

Tensor GatedGraphConv::forward(const Tensor& h0, const EdgeList& edges, bool training) {
  if (h0.ndim() != 2 || h0.dim(1) != dim_) {
    throw std::invalid_argument("GatedGraphConv: bad state shape " + h0.shape_str());
  }
  if (training) {
    h_states_.clear();
    edges_ = &edges;
    gru_.clear_frames();
  }
  build_csr(edges, h0.dim(0));
  Tensor h = h0;
  for (int64_t k = 0; k < steps_; ++k) {
    if (training) h_states_.push_back(h);
    Tensor m = message(h);
    h = gru_.forward(m, h, training);
  }
  return h;
}

Tensor GatedGraphConv::backward(const Tensor& grad_h_final) {
  if (!edges_) throw std::runtime_error("GatedGraphConv::backward before forward");
  Tensor gh = grad_h_final;
  for (int64_t k = steps_ - 1; k >= 0; --k) {
    auto [gm, gh_prev] = gru_.backward(gh);
    // message backward: m = (scatter-sum h) W; dW += agg^T gm, d(agg) = gm W^T,
    // then un-scatter: dh_src += d(agg)_dst for every edge.
    const Tensor& h = h_states_[static_cast<size_t>(k)];
    // agg rebuilt via the same CSR the forward used (edges unchanged).
    Tensor agg({h.dim(0), dim_});
    scatter_add_rows(edges_->src, edges_->dst, h.data(), agg.data(), dim_);
    w_msg_.grad += agg.matmul_tn(gm);
    Tensor dagg = gm.matmul_nt(w_msg_.value);
    scatter_add_rows(edges_->dst, edges_->src, dagg.data(), gh_prev.data(), dim_);
    gh = std::move(gh_prev);
  }
  edges_ = nullptr;
  return gh;
}

void GatedGraphConv::collect_parameters(std::vector<nn::Parameter*>& out) {
  out.push_back(&w_msg_);
  gru_.collect_parameters(out);
}

}  // namespace df::graph
