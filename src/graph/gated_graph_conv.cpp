#include "graph/gated_graph_conv.h"

#include <cmath>
#include <stdexcept>

namespace df::graph {

GatedGraphConv::GatedGraphConv(int64_t dim, int64_t num_steps, core::Rng& rng)
    : dim_(dim), steps_(num_steps),
      w_msg_(Tensor::uniform({dim, dim}, rng, -1.0f / std::sqrt(static_cast<float>(dim)),
                             1.0f / std::sqrt(static_cast<float>(dim))),
             "ggc.w_msg"),
      gru_(dim, rng) {}

Tensor GatedGraphConv::message(const Tensor& h, const EdgeList& edges) const {
  // Aggregate neighbour states, then apply the edge-type transform. Doing
  // the (N,dim)x(dim,dim) matmul once after aggregation instead of per-edge
  // keeps the step O(E*dim + N*dim^2).
  Tensor agg({h.dim(0), dim_});
  for (size_t e = 0; e < edges.size(); ++e) {
    const float* src_row = h.data() + edges.src[e] * dim_;
    float* dst_row = agg.data() + edges.dst[e] * dim_;
    for (int64_t j = 0; j < dim_; ++j) dst_row[j] += src_row[j];
  }
  return agg.matmul(w_msg_.value);
}

Tensor GatedGraphConv::forward(const Tensor& h0, const EdgeList& edges, bool training) {
  if (h0.ndim() != 2 || h0.dim(1) != dim_) {
    throw std::invalid_argument("GatedGraphConv: bad state shape " + h0.shape_str());
  }
  if (training) {
    h_states_.clear();
    edges_ = &edges;
    gru_.clear_frames();
  }
  Tensor h = h0;
  for (int64_t k = 0; k < steps_; ++k) {
    if (training) h_states_.push_back(h);
    Tensor m = message(h, edges);
    h = gru_.forward(m, h, training);
  }
  return h;
}

Tensor GatedGraphConv::backward(const Tensor& grad_h_final) {
  if (!edges_) throw std::runtime_error("GatedGraphConv::backward before forward");
  Tensor gh = grad_h_final;
  for (int64_t k = steps_ - 1; k >= 0; --k) {
    auto [gm, gh_prev] = gru_.backward(gh);
    // message backward: m = (scatter-sum h) W; dW += agg^T gm, d(agg) = gm W^T,
    // then un-scatter: dh_src += d(agg)_dst for every edge.
    const Tensor& h = h_states_[static_cast<size_t>(k)];
    Tensor agg({h.dim(0), dim_});
    for (size_t e = 0; e < edges_->size(); ++e) {
      const float* src_row = h.data() + edges_->src[e] * dim_;
      float* dst_row = agg.data() + edges_->dst[e] * dim_;
      for (int64_t j = 0; j < dim_; ++j) dst_row[j] += src_row[j];
    }
    w_msg_.grad += agg.matmul_tn(gm);
    Tensor dagg = gm.matmul_nt(w_msg_.value);
    for (size_t e = 0; e < edges_->size(); ++e) {
      const float* dst_row = dagg.data() + edges_->dst[e] * dim_;
      float* src_row = gh_prev.data() + edges_->src[e] * dim_;
      for (int64_t j = 0; j < dim_; ++j) src_row[j] += dst_row[j];
    }
    gh = std::move(gh_prev);
  }
  edges_ = nullptr;
  return gh;
}

void GatedGraphConv::collect_parameters(std::vector<nn::Parameter*>& out) {
  out.push_back(&w_msg_);
  gru_.collect_parameters(out);
}

}  // namespace df::graph
