#include "graph/graph.h"

#include <cstring>
#include <stdexcept>

namespace df::graph {

PackedGraphBatch pack_graphs(const std::vector<const SpatialGraph*>& graphs) {
  if (graphs.empty()) throw std::invalid_argument("pack_graphs: empty batch");

  PackedGraphBatch out;
  out.node_offset.reserve(graphs.size() + 1);
  out.ligand_counts.reserve(graphs.size());
  out.node_offset.push_back(0);
  int64_t total_nodes = 0;
  size_t total_cov = 0, total_noncov = 0;
  int64_t F = -1;
  for (const SpatialGraph* g : graphs) {
    if (g == nullptr || g->num_nodes() == 0) {
      throw std::invalid_argument("pack_graphs: empty graph in batch");
    }
    if (F < 0) F = g->feature_dim();
    if (g->feature_dim() != F) {
      throw std::invalid_argument("pack_graphs: mismatched node feature widths");
    }
    total_nodes += g->num_nodes();
    total_cov += g->covalent.size();
    total_noncov += g->noncovalent.size();
    out.node_offset.push_back(total_nodes);
    out.ligand_counts.push_back(g->num_ligand_nodes);
  }

  out.node_features = Tensor::uninit({total_nodes, F});
  out.covalent.src.reserve(total_cov);
  out.covalent.dst.reserve(total_cov);
  out.noncovalent.src.reserve(total_noncov);
  out.noncovalent.dst.reserve(total_noncov);

  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const SpatialGraph& g = *graphs[gi];
    const int64_t base = out.node_offset[gi];
    std::memcpy(out.node_features.data() + base * F, g.node_features.data(),
                static_cast<size_t>(g.num_nodes() * F) * sizeof(float));
    const int32_t shift = static_cast<int32_t>(base);
    for (size_t e = 0; e < g.covalent.size(); ++e) {
      out.covalent.src.push_back(g.covalent.src[e] + shift);
      out.covalent.dst.push_back(g.covalent.dst[e] + shift);
    }
    for (size_t e = 0; e < g.noncovalent.size(); ++e) {
      out.noncovalent.src.push_back(g.noncovalent.src[e] + shift);
      out.noncovalent.dst.push_back(g.noncovalent.dst[e] + shift);
    }
  }
  return out;
}

}  // namespace df::graph
