#include "graph/graph.h"

// Data-only component; TU anchors it in the build.
