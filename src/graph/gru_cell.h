// GRU update used inside the gated graph convolution (Li et al. 2015,
// "Gated Graph Sequence Neural Networks", the recurrence PotentialNet and
// hence the paper's SG-CNN are built on).
//
// One cell instance is invoked K times per propagation; each invocation
// pushes a cache frame so backward() can be called K times in reverse order
// (stack discipline), accumulating weight gradients across steps.
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace df::graph {

using core::Tensor;
using nn::Parameter;

class GRUCell {
 public:
  /// `dim` is both input (message) and hidden size — square recurrence, as
  /// in GGNN where messages live in the hidden space.
  GRUCell(int64_t dim, core::Rng& rng);

  /// h' = GRU(x, h); caches a frame when training. Inference calls take a
  /// fused path (one x-side GEMM over [Wz|Wr|Wc], shared h-side reads) that
  /// is bitwise identical to the training-path gate math.
  Tensor forward(const Tensor& x, const Tensor& h, bool training);
  /// Pops the most recent frame. Returns {dL/dx, dL/dh}.
  std::pair<Tensor, Tensor> backward(const Tensor& grad_h_new);

  void collect_parameters(std::vector<Parameter*>& out);
  int64_t dim() const { return dim_; }
  bool has_frames() const { return !frames_.empty(); }
  void clear_frames() { frames_.clear(); }

 private:
  /// Fused inference forward (see forward()).
  Tensor forward_eval(const Tensor& x, const Tensor& h);

  struct Frame {
    Tensor x, h, z, r, c;  // inputs and gate activations
  };

  int64_t dim_;
  // Update gate z, reset gate r, candidate c. W* act on x, U* on h.
  Parameter wz_, uz_, bz_;
  Parameter wr_, ur_, br_;
  Parameter wc_, uc_, bc_;
  std::vector<Frame> frames_;
};

}  // namespace df::graph
