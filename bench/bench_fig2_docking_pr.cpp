// Regenerates paper Figure 2 and the §3.4 docking-space comparison: core-set
// complexes are re-docked with the ConveyorLC-equivalent pipeline, filtered
// to poses with RMSD < 1 A of the crystal pose, and scored by Vina, MM/GBSA
// and Coherent Fusion. Outputs: Pearson of each method against the
// crystal-pose affinity (paper: .579 / .591 / .745) and a strong(pK>8) vs
// weak(pK<6) precision/recall analysis with F1 (paper Fig. 2).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "dock/conveyorlc.h"
#include "io/csv.h"
#include "stats/classification.h"
#include "stats/metrics.h"

using namespace df;
using namespace df::bench;

int main() {
  print_header("Figure 2 / §3.4 — docking-space evaluation on the core set");

  Corpus c = make_corpus(2019);
  core::Rng rng(11);

  // Train the Coherent Fusion scorer (scaled Table 2/3/5 recipe).
  auto cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), rng);
  auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), rng);
  models::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 2.66e-3f;
  tc.batch_size = 16;
  std::printf("training SG-CNN head...\n");
  models::train_model(*sg, *c.train, *c.val, tc);
  tc.epochs = 6;
  tc.lr = 1e-4f;
  tc.batch_size = 12;
  std::printf("training 3D-CNN head...\n");
  models::train_model(*cnn, *c.train, *c.val, tc);
  models::FusionModel fusion(bench_fusion_config(models::FusionKind::Coherent), cnn, sg, rng);
  std::printf("training Coherent Fusion...\n");
  fusion.set_kind(models::FusionKind::Mid);
  tc.epochs = 3;
  tc.lr = 4e-4f;
  models::train_model(fusion, *c.train, *c.val, tc);
  fusion.set_kind(models::FusionKind::Coherent);
  tc.epochs = 3;
  tc.lr = 1.08e-4f;
  models::train_model(fusion, *c.train, *c.val, tc);

  // Re-dock each core complex; keep those with a pose within RMSD < 1 A of
  // the crystal structure (the paper's filter: 197 -> RMSD-checked subset).
  dock::PipelineConfig pcfg;
  pcfg.docking.num_runs = 10;
  pcfg.docking.steps_per_run = 120;
  pcfg.docking.box_half = 2.5f;
  pcfg.rescore_top_n = 1;
  dock::DockingEngine engine(pcfg.docking);

  data::DatasetConfig eval_dc;
  eval_dc.voxel.grid_dim = kGridDim;
  const chem::Voxelizer vox(eval_dc.voxel);
  const chem::GraphFeaturizer feat(eval_dc.graph);

  std::vector<float> truth, vina_pred, mmgbsa_pred, fusion_pred;
  int docked_ok = 0, rmsd_pass = 0;
  std::printf("docking %zu core complexes (RMSD<2A filter)...\n",
              data::SyntheticPdbbind::core_indices(c.recs).size());
  for (int idx : data::SyntheticPdbbind::core_indices(c.recs)) {
    const data::ComplexRecord& rec = c.recs[static_cast<size_t>(idx)];
    dock::DockingResult res = engine.dock(rec.ligand, rec.pocket, rec.site_center, rng);
    if (res.conformers.empty()) continue;
    ++docked_ok;
    // Best-RMSD pose against the crystal geometry.
    int best = -1;
    float best_rmsd = 1e9f;
    for (size_t i = 0; i < res.conformers.size(); ++i) {
      const float r = chem::pose_rmsd(res.conformers[i], rec.ligand);
      if (r < best_rmsd) {
        best_rmsd = r;
        best = static_cast<int>(i);
      }
    }
    // No near-native pose found. The paper filters at 1 A; our shell
    // pockets are near-symmetric so exact pose recovery is rarer — 2 A
    // keeps the same "correct pose" semantics at our resolution.
    if (best_rmsd >= 2.0f) continue;
    ++rmsd_pass;
    const chem::Molecule& pose = res.conformers[static_cast<size_t>(best)];
    truth.push_back(rec.pk);
    vina_pred.push_back(-res.poses[static_cast<size_t>(best)].score);  // negate: higher=better
    mmgbsa_pred.push_back(-dock::mmgbsa_score(pose, rec.pocket, pcfg.mmgbsa));
    data::Sample s;
    s.voxel = vox.voxelize(pose, rec.pocket, rec.site_center);
    s.graph = feat.featurize(pose, rec.pocket);
    fusion_pred.push_back(fusion.predict(s));
  }
  std::printf("docked=%d, RMSD<2A=%d\n\n", docked_ok, rmsd_pass);
  if (truth.size() < 8) {
    std::printf("too few RMSD-passing complexes for analysis\n");
    return 0;
  }

  print_header("Pearson R vs crystal affinity on docked poses (paper: .579/.591/.745)");
  std::printf("%-18s %8s\n", "Method", "Pearson");
  std::printf("%-18s %8.3f\n", "Vina", stats::pearson(vina_pred, truth));
  std::printf("%-18s %8.3f\n", "MM/GBSA", stats::pearson(mmgbsa_pred, truth));
  std::printf("%-18s %8.3f\n\n", "Coherent Fusion", stats::pearson(fusion_pred, truth));

  // Figure 2: strong vs weak binder classification with the ambiguous
  // middle excluded. The paper cuts at pK 8 / 6 on PDBbind's wide label
  // range; our synthetic labels are more compressed, so the equivalent
  // construction is the top vs bottom tercile of the docked subset.
  std::vector<float> sorted_truth = truth;
  std::sort(sorted_truth.begin(), sorted_truth.end());
  const float weak_cut = sorted_truth[sorted_truth.size() / 3];
  const float strong_cut = sorted_truth[sorted_truth.size() * 2 / 3];
  std::vector<float> v2, m2, f2;
  std::vector<bool> labels;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] > strong_cut || truth[i] < weak_cut) {
      labels.push_back(truth[i] > strong_cut);
      v2.push_back(vina_pred[i]);
      m2.push_back(mmgbsa_pred[i]);
      f2.push_back(fusion_pred[i]);
    }
  }
  print_header("Figure 2 — strong vs weak docked-pose classification (terciles;"
               " paper: pK>8 vs pK<6)");
  std::printf("positives=%d negatives=%d (paper: 57 / 71)\n\n",
              static_cast<int>(std::count(labels.begin(), labels.end(), true)),
              static_cast<int>(std::count(labels.begin(), labels.end(), false)));
  io::CsvWriter csv("fig2_pr_curves.csv", {"method", "threshold", "precision", "recall", "f1"});
  struct M {
    const char* name;
    const std::vector<float>* s;
  } methods[] = {{"Vina", &v2}, {"MM/GBSA", &m2}, {"Coherent Fusion", &f2}};
  std::printf("%-18s %8s %8s\n", "Method", "best F1", "AP");
  for (const M& m : methods) {
    std::printf("%-18s %8.3f %8.3f\n", m.name, stats::best_f1(*m.s, labels),
                stats::average_precision(*m.s, labels));
    for (const stats::PRPoint& p : stats::pr_curve(*m.s, labels)) {
      csv.row({m.name, std::to_string(p.threshold), std::to_string(p.precision),
               std::to_string(p.recall), std::to_string(p.f1)});
    }
  }
  std::printf("\nexpected shape: Fusion > MM/GBSA > Vina on both Pearson and F1\n"
              "P/R curves written to fig2_pr_curves.csv\n");
  return 0;
}
