// Regenerates paper Table 6: performance of Pafnucy, Mid-level Fusion,
// Late Fusion, Coherent Fusion and KDeep on the held-out PDBbind core set
// (RMSE / MAE / R^2 / Pearson / Spearman). The expected *shape*: fusion
// models beat individual 3D-CNNs, and Coherent Fusion edges out Late and
// Mid-level Fusion on RMSE/MAE.
#include <cstdio>

#include "bench_common.h"
#include "io/csv.h"
#include "models/baselines.h"
#include "stats/metrics.h"

namespace {

using namespace df;
using namespace df::bench;

struct Row {
  std::string name;
  float rmse, mae, r2, pearson, spearman;
};

Row eval_row(const std::string& name, models::Regressor& model,
             const data::ComplexDataset& core) {
  const std::vector<float> preds = models::evaluate(model, core);
  const std::vector<float> labels = models::labels_of(core);
  return {name, stats::rmse(preds, labels), stats::mae(preds, labels),
          stats::r_squared(preds, labels), stats::pearson(preds, labels),
          stats::spearman(preds, labels)};
}

}  // namespace

int main() {
  print_header("Table 6 — Fusion models on the PDBbind core set (synthetic substitute)");
  std::printf("corpus=%d complexes, core=%d, voxel grid=%d^3 (DESIGN.md scaled sizes)\n\n",
              kCorpusSize, kCoreSize, kGridDim);

  Corpus c = make_corpus(2019);
  core::Rng rng(7);

  models::TrainConfig head_tc;
  head_tc.batch_size = 12;
  head_tc.grad_clip = 5.0f;

  // --- individual heads (Table 2/3 configurations, scaled) ---
  auto sg = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), rng);
  head_tc.epochs = 12;     // Table 2: 213 epochs
  head_tc.lr = 2.66e-3f;   // Table 2
  head_tc.batch_size = 16;
  std::printf("training SG-CNN (%lld params)...\n",
              static_cast<long long>(sg->num_parameters()));
  models::train_model(*sg, *c.train, *c.val, head_tc);

  auto cnn = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), rng);
  head_tc.epochs = 6;      // Table 3: 75 epochs
  head_tc.lr = 1e-4f;      // Table 3 value (4.9e-5) scaled for the tiny model
  head_tc.batch_size = 12;
  std::printf("training 3D-CNN (%lld params)...\n",
              static_cast<long long>(cnn->num_parameters()));
  models::train_model(*cnn, *c.train, *c.val, head_tc);

  // --- baselines ---
  const chem::VoxelConfig vc;  // channels only; grid from bench config
  auto pafnucy = models::make_pafnucy(vc.channels(), kGridDim, rng);
  models::TrainConfig base_tc = head_tc;
  base_tc.epochs = 6;
  base_tc.lr = 1e-4f;
  std::printf("training Pafnucy baseline...\n");
  models::train_model(*pafnucy, *c.train, *c.val, base_tc);
  auto kdeep = models::make_kdeep(vc.channels(), kGridDim, rng);
  std::printf("training KDeep baseline...\n");
  models::train_model(*kdeep, *c.train, *c.val, base_tc);

  // --- fusion variants over the trained heads ---
  models::LateFusion late(cnn, sg);

  models::TrainConfig fuse_tc;
  fuse_tc.batch_size = 1;  // Table 4: batch size 1
  fuse_tc.epochs = 4;      // Table 4: 64 epochs
  fuse_tc.lr = 4.03e-4f;   // Table 4
  models::FusionModel mid(bench_fusion_config(models::FusionKind::Mid), cnn, sg, rng);
  std::printf("training Mid-level Fusion...\n");
  models::train_model(mid, *c.train, *c.val, fuse_tc);

  fuse_tc.batch_size = 12;  // Table 5: 48
  fuse_tc.epochs = 3;       // Table 5: 18
  fuse_tc.lr = 1.08e-4f;    // Table 5
  // Coherent Fusion fine-tunes its heads (joint backprop), so it gets its
  // own copies of the pre-trained weights — Table 5's "Pre-trained T" —
  // leaving the heads used by Late/Mid/individual rows untouched.
  auto cnn_copy = std::make_shared<models::Cnn3d>(bench_cnn3d_config(), rng);
  auto sg_copy = std::make_shared<models::Sgcnn>(bench_sgcnn_config(), rng);
  models::copy_parameters(*cnn_copy, *cnn);
  models::copy_parameters(*sg_copy, *sg);
  models::FusionModel coherent(bench_fusion_config(models::FusionKind::Coherent), cnn_copy,
                               sg_copy, rng);
  std::printf("training Coherent Fusion (pre-trained heads, joint backprop)...\n\n");
  // Warm up the fusion trunk with frozen heads, then backpropagate
  // coherently (the paper's PB2 made the same choice via "Pre-trained T").
  coherent.set_kind(models::FusionKind::Mid);
  models::TrainConfig warm_tc = fuse_tc;
  warm_tc.epochs = 3;
  warm_tc.lr = 4e-4f;
  models::train_model(coherent, *c.train, *c.val, warm_tc);
  coherent.set_kind(models::FusionKind::Coherent);
  models::train_model(coherent, *c.train, *c.val, fuse_tc);

  std::vector<Row> rows;
  rows.push_back(eval_row("Pafnucy", *pafnucy, *c.core));
  rows.push_back(eval_row("Mid-level Fusion", mid, *c.core));
  rows.push_back(eval_row("Late Fusion", late, *c.core));
  rows.push_back(eval_row("Coherent Fusion", coherent, *c.core));
  rows.push_back(eval_row("KDeep", *kdeep, *c.core));
  rows.push_back(eval_row("SG-CNN (individual)", *sg, *c.core));
  rows.push_back(eval_row("3D-CNN (individual)", *cnn, *c.core));

  std::printf("%-22s %7s %7s %7s %9s %10s\n", "Model", "RMSE", "MAE", "R2", "PearsonR",
              "SpearmanR");
  print_rule();
  io::CsvWriter csv("table6_core_set.csv", {"model", "rmse", "mae", "r2", "pearson", "spearman"});
  for (const Row& r : rows) {
    std::printf("%-22s %7.3f %7.3f %7.3f %9.3f %10.3f\n", r.name.c_str(), r.rmse, r.mae, r.r2,
                r.pearson, r.spearman);
    csv.row({r.name, std::to_string(r.rmse), std::to_string(r.mae), std::to_string(r.r2),
             std::to_string(r.pearson), std::to_string(r.spearman)});
  }
  print_rule();
  std::printf("paper reference (crystal structures): Pafnucy 1.42/1.13, Mid 1.38/1.10,\n"
              "Late 1.33/1.07, Coherent 1.30/1.05, KDeep 1.27 (RMSE/MAE)\n"
              "expected shape: fusion < individual heads; Coherent <= Late <= Mid on RMSE\n"
              "results also written to table6_core_set.csv\n");
  return 0;
}
