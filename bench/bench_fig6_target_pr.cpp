// Regenerates paper Figure 6: per-target precision/recall curves and F1 at
// the 33% experimental-inhibition threshold for Vina, AMPL MM/GBSA and
// Coherent Fusion, plus Cohen's kappa against a frequency-matched random
// classifier and the §5.3 hit-rate analysis.
#include <cmath>
#include <cstdio>

#include "campaign_common.h"
#include "io/csv.h"
#include "stats/classification.h"

using namespace df;
using namespace df::bench;

int main() {
  print_header("Figure 6 — P/R and F1 per target at 33% inhibition");

  Corpus c = make_corpus(2019);
  core::Rng rng(19);
  std::printf("training Coherent Fusion scorer...\n");
  FusionBundle fusion = train_coherent_fusion(c, rng);
  std::printf("screening 56 compounds against the 4 SARS-CoV-2 sites...\n\n");
  std::vector<data::Target> targets;
  const screen::CampaignReport report = run_sarscov2_campaign(fusion, 56, 59, &targets);

  io::CsvWriter csv("fig6_target_pr.csv", {"target", "method", "best_f1", "ap", "kappa",
                                           "positives", "negatives"});
  const char* methods[] = {"Vina", "AMPL MM/GBSA", "Coherent Fusion"};
  int total_tested = 0, total_hits = 0;

  for (size_t ti = 0; ti < targets.size(); ++ti) {
    std::vector<float> vina, ampl, fus;
    std::vector<bool> labels;
    for (const auto& r : report.results) {
      if (static_cast<size_t>(r.target_index) != ti) continue;
      labels.push_back(r.percent_inhibition > 33.0f);  // the paper's threshold
      vina.push_back(std::fabs(r.vina_score));
      ampl.push_back(std::fabs(r.ampl_mmgbsa_score));
      fus.push_back(r.fusion_pk);
    }
    const int pos = static_cast<int>(std::count(labels.begin(), labels.end(), true));
    const int neg = static_cast<int>(labels.size()) - pos;
    total_tested += static_cast<int>(labels.size());
    total_hits += pos;
    std::printf("%s: %d positive / %d negative binders (random precision %.3f)\n",
                targets[ti].name.c_str(), pos, neg, stats::positive_rate(labels));
    if (pos == 0 || neg == 0) {
      std::printf("  (degenerate labels; skipping P/R)\n\n");
      continue;
    }
    const std::vector<float>* scores[] = {&vina, &ampl, &fus};
    for (int m = 0; m < 3; ++m) {
      const float f1 = stats::best_f1(*scores[m], labels);
      const float ap = stats::average_precision(*scores[m], labels);
      // kappa at the best-F1 threshold
      float best_thr = 0, best_f1v = -1;
      for (const stats::PRPoint& p : stats::pr_curve(*scores[m], labels)) {
        if (p.f1 > best_f1v) {
          best_f1v = p.f1;
          best_thr = p.threshold;
        }
      }
      std::vector<bool> pred;
      pred.reserve(scores[m]->size());
      for (float s : *scores[m]) pred.push_back(s >= best_thr);
      const float kappa = stats::cohen_kappa(pred, labels);
      std::printf("  %-16s best F1=%.3f  AP=%.3f  kappa=%.3f\n", methods[m], f1, ap, kappa);
      csv.row({targets[ti].name, methods[m], std::to_string(f1), std::to_string(ap),
               std::to_string(kappa), std::to_string(pos), std::to_string(neg)});
    }
    std::printf("\n");
  }
  print_rule();
  std::printf("hit rate: %d of %d tested compounds inhibit >33%% (%.1f%%)\n", total_hits,
              total_tested, total_tested ? 100.0 * total_hits / total_tested : 0.0);
  std::printf("paper §5.3: 108 of 1042 (10.4%%); kappa > 0 for every model/target except\n"
              "Vina on spike1. written to fig6_target_pr.csv\n");
  return 0;
}
