// Regenerates the paper's §4.1/§4.2 cost comparison: per-pose scoring cost
// of Vina docking, MM/GBSA rescoring and Fusion inference. The paper
// reports Fusion as 2.7x faster than Vina docking and 403x faster than
// MM/GBSA per pose; the *ordering and orders-of-magnitude* are the
// reproducible claim (absolute times differ on a CPU-only build).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dock/conveyorlc.h"

namespace {

using namespace df;
using namespace df::bench;

struct Fixture {
  std::vector<chem::Atom> pocket;
  chem::Molecule ligand;
  std::unique_ptr<models::Sgcnn> sg;
  std::unique_ptr<models::Cnn3d> cnn;
  chem::Voxelizer vox;
  chem::GraphFeaturizer feat;

  Fixture() : vox([] {
      chem::VoxelConfig vc;
      vc.grid_dim = kGridDim;
      return vc;
    }()) {
    core::Rng rng(3);
    pocket = data::make_pocket({5.5f, 64, 0.7f, 0.5f, 0.1f}, rng);
    ligand = chem::generate_molecule({}, rng);
    chem::embed_conformer(ligand, rng);
    ligand.translate(core::Vec3{} - ligand.centroid());
    sg = std::make_unique<models::Sgcnn>(bench_sgcnn_config(), rng);
    cnn = std::make_unique<models::Cnn3d>(bench_cnn3d_config(), rng);
    sg->set_training(false);
    cnn->set_training(false);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// One Vina MC docking run amortized per pose evaluated (the paper's
/// "docking" cost is the full 8-run MC search per compound).
void BM_VinaDockingPerCompound(benchmark::State& state) {
  Fixture& f = fixture();
  core::Rng rng(4);
  dock::DockingConfig cfg;
  cfg.num_runs = 8;
  cfg.steps_per_run = 100;
  dock::DockingEngine engine(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dock(f.ligand, f.pocket, {}, rng));
  }
}
BENCHMARK(BM_VinaDockingPerCompound)->Unit(benchmark::kMillisecond);

void BM_VinaScoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dock::vina_score(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_VinaScoreSinglePose)->Unit(benchmark::kMicrosecond);

void BM_MmGbsaRescoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dock::mmgbsa_score(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_MmGbsaRescoreSinglePose)->Unit(benchmark::kMillisecond);

void BM_FusionScoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    data::Sample s;
    s.voxel = f.vox.voxelize(f.ligand, f.pocket, {});
    s.graph = f.feat.featurize(f.ligand, f.pocket);
    // Late-fusion style scoring: both heads, averaged (featurization
    // included — it is the dominant cost, as §4.3 observes).
    benchmark::DoNotOptimize(0.5f * (f.sg->predict(s) + f.cnn->predict(s)));
  }
}
BENCHMARK(BM_FusionScoreSinglePose)->Unit(benchmark::kMillisecond);

void BM_FeaturizeVoxelOnly(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.vox.voxelize(f.ligand, f.pocket, {}));
  }
}
BENCHMARK(BM_FeaturizeVoxelOnly)->Unit(benchmark::kMicrosecond);

void BM_FeaturizeGraphOnly(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.feat.featurize(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_FeaturizeGraphOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
