// Regenerates the paper's §4.1/§4.2 cost comparison (per-pose scoring cost
// of Vina docking, MM/GBSA rescoring and Fusion inference; the paper reports
// Fusion 2.7x faster than Vina and 403x faster than MM/GBSA) and measures
// the inference-engine speedups this repo adds on top: vol2col+gemm Conv3d
// vs the direct 7-loop reference, blocked GEMM thread scaling, and the
// batched fusion scoring job.
//
// Two run modes:
//   bench_speedup                  — Google Benchmark suite (human output)
//   bench_speedup --json[=PATH]    — machine-readable speedup measurements
//                                    written to PATH (default
//                                    BENCH_speedup.json) so future PRs can
//                                    track the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "chem/conformer.h"
#include "core/gemm.h"
#include "core/parallel.h"
#include "core/threadpool.h"
#include "dock/conveyorlc.h"
#include "nn/conv3d.h"
#include "screen/job.h"
#include "serve/service.h"

namespace {

using namespace df;
using namespace df::bench;

struct Fixture {
  std::vector<chem::Atom> pocket;
  chem::Molecule ligand;
  std::unique_ptr<models::Sgcnn> sg;
  std::unique_ptr<models::Cnn3d> cnn;
  chem::Voxelizer vox;
  chem::GraphFeaturizer feat;

  Fixture() : vox([] {
      chem::VoxelConfig vc;
      vc.grid_dim = kGridDim;
      return vc;
    }()) {
    core::Rng rng(3);
    pocket = data::make_pocket({5.5f, 64, 0.7f, 0.5f, 0.1f}, rng);
    ligand = chem::generate_molecule({}, rng);
    chem::embed_conformer(ligand, rng);
    ligand.translate(core::Vec3{} - ligand.centroid());
    sg = std::make_unique<models::Sgcnn>(bench_sgcnn_config(), rng);
    cnn = std::make_unique<models::Cnn3d>(bench_cnn3d_config(), rng);
    sg->set_training(false);
    cnn->set_training(false);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// The Conv3d microbenchmark shape: the 3D-CNN's first (and most expensive)
// layer at paper-like channel counts — 16 voxel channels, 32 filters of
// 5x5x5 over a 12^3 grid.
struct ConvBench {
  core::Rng rng{13};
  nn::Conv3d conv{16, 32, 5, rng, /*stride=*/2, /*padding=*/2};
  core::Tensor x{core::Tensor::randn({1, 16, 12, 12, 12}, rng)};
  const core::Tensor *w, *b;
  ConvBench() {
    conv.set_training(false);
    auto params = conv.parameters();
    w = &params[0]->value;
    b = &params[1]->value;
  }
};

ConvBench& conv_bench() {
  static ConvBench c;
  return c;
}

/// One Vina MC docking run amortized per pose evaluated (the paper's
/// "docking" cost is the full 8-run MC search per compound).
void BM_VinaDockingPerCompound(benchmark::State& state) {
  Fixture& f = fixture();
  core::Rng rng(4);
  dock::DockingConfig cfg;
  cfg.num_runs = 8;
  cfg.steps_per_run = 100;
  dock::DockingEngine engine(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dock(f.ligand, f.pocket, {}, rng));
  }
}
BENCHMARK(BM_VinaDockingPerCompound)->Unit(benchmark::kMillisecond);

void BM_VinaScoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dock::vina_score(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_VinaScoreSinglePose)->Unit(benchmark::kMicrosecond);

void BM_MmGbsaRescoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dock::mmgbsa_score(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_MmGbsaRescoreSinglePose)->Unit(benchmark::kMillisecond);

void BM_FusionScoreSinglePose(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    data::Sample s;
    s.voxel = f.vox.voxelize(f.ligand, f.pocket, {});
    s.graph = f.feat.featurize(f.ligand, f.pocket);
    // Late-fusion style scoring: both heads, averaged (featurization
    // included — it is the dominant cost, as §4.3 observes).
    benchmark::DoNotOptimize(0.5f * (f.sg->predict(s) + f.cnn->predict(s)));
  }
}
BENCHMARK(BM_FusionScoreSinglePose)->Unit(benchmark::kMillisecond);

void BM_FeaturizeVoxelOnly(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.vox.voxelize(f.ligand, f.pocket, {}));
  }
}
BENCHMARK(BM_FeaturizeVoxelOnly)->Unit(benchmark::kMicrosecond);

void BM_FeaturizeGraphOnly(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.feat.featurize(f.ligand, f.pocket));
  }
}
BENCHMARK(BM_FeaturizeGraphOnly)->Unit(benchmark::kMicrosecond);

// ---- inference-engine microbenchmarks ----

void BM_Conv3dForwardNaive(benchmark::State& state) {
  ConvBench& c = conv_bench();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv3d_forward_naive(c.x, *c.w, *c.b, 2, 2));
  }
}
BENCHMARK(BM_Conv3dForwardNaive)->Unit(benchmark::kMillisecond);

void BM_Conv3dForwardVol2col(benchmark::State& state) {
  ConvBench& c = conv_bench();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.conv.forward(c.x));
  }
}
BENCHMARK(BM_Conv3dForwardVol2col)->Unit(benchmark::kMillisecond);

void BM_GemmBatched(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  core::ThreadPool pool(threads);
  core::ComputePoolGuard guard(&pool);
  core::Rng rng(21);
  core::Tensor a = core::Tensor::randn({256, 512}, rng);
  core::Tensor b = core::Tensor::randn({512, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * 256 * 512 * 256 * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
// Real time, not CPU time: the work runs on pool workers, so the main
// thread's CPU clock undercounts and would inflate the rate counter.
BENCHMARK(BM_GemmBatched)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- machine-readable speedup mode (--json) ----

double time_ms(const std::function<void()>& fn, int min_iters = 3, double min_seconds = 0.2) {
  fn();  // warm-up
  int iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  } while (iters < min_iters || elapsed < min_seconds);
  return elapsed * 1000.0 / iters;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double m = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(double(a[i]) - double(b[i])));
  return m;
}

int emit_json(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_speedup: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n  \"schema\": \"bench_speedup.v1\",\n  \"hardware_threads\": %u,\n", hw);

  // 1. Conv3d forward: vol2col+gemm vs the direct 7-loop reference,
  //    single-threaded (no pool installed), with an output-equivalence pin.
  {
    ConvBench& c = conv_bench();
    const core::Tensor ref = nn::conv3d_forward_naive(c.x, *c.w, *c.b, 2, 2);
    const core::Tensor fast = c.conv.forward(c.x);
    const double diff = max_abs_diff(ref, fast);
    const double naive_ms =
        time_ms([&] { benchmark::DoNotOptimize(nn::conv3d_forward_naive(c.x, *c.w, *c.b, 2, 2)); });
    const double fast_ms = time_ms([&] { benchmark::DoNotOptimize(c.conv.forward(c.x)); });
    std::fprintf(out,
                 "  \"conv3d_forward\": {\"workload\": \"cin16_cout32_k5_s2_p2_g12\", "
                 "\"naive_ms\": %.4f, \"fast_ms\": %.4f, \"speedup\": %.2f, "
                 "\"max_abs_diff\": %.3g},\n",
                 naive_ms, fast_ms, naive_ms / fast_ms, diff);
    std::printf("conv3d forward: naive %.3f ms, vol2col %.3f ms -> %.2fx (max diff %.2g)\n",
                naive_ms, fast_ms, naive_ms / fast_ms, diff);
  }

  // 2. Batched GEMM strong scaling: one dense-layer-shaped multiply per
  //    thread count. poses/sec treats each of the 256 rows as one pose
  //    through a 512->256 dense layer.
  {
    core::Rng rng(21);
    core::Tensor a = core::Tensor::randn({256, 512}, rng);
    core::Tensor b = core::Tensor::randn({512, 256}, rng);
    const double flops = 2.0 * 256 * 512 * 256;
    std::fprintf(out, "  \"gemm_batched\": [\n");
    const size_t thread_counts[] = {1, 2, 4};
    for (size_t ti = 0; ti < 3; ++ti) {
      const size_t t = thread_counts[ti];
      core::ThreadPool pool(t);
      core::ComputePoolGuard guard(&pool);
      const double ms = time_ms([&] { benchmark::DoNotOptimize(a.matmul(b)); });
      std::fprintf(out,
                   "    {\"threads\": %zu, \"workload\": \"m256_k512_n256\", \"ms\": %.4f, "
                   "\"gflops\": %.2f, \"poses_per_second\": %.0f}%s\n",
                   t, ms, flops / (ms * 1e6), 256.0 * 1000.0 / ms, ti + 1 < 3 ? "," : "");
      std::printf("gemm m256_k512_n256 @ %zu threads: %.3f ms (%.2f GFLOP/s)\n", t, ms,
                  flops / (ms * 1e6));
    }
    std::fprintf(out, "  ],\n");
  }

  // 3. Fusion scoring job throughput: threads x workload -> poses/sec
  //    through the real screening harness (batched 3D-CNN scorer).
  {
    core::Rng rng(5);
    const auto pocket = data::make_pocket({5.5f, 64, 0.7f, 0.5f, 0.1f}, rng);
    std::vector<screen::PoseWorkItem> items;
    const int n_poses = 256;
    for (int i = 0; i < n_poses; ++i) {
      chem::Molecule lig = chem::generate_molecule({}, rng);
      chem::embed_conformer(lig, rng);
      lig.translate(core::Vec3{} - lig.centroid());
      screen::PoseWorkItem item;
      item.compound_id = i / 10;
      item.pose_id = i % 10;
      item.ligand = std::move(lig);
      item.pocket = &pocket;
      items.push_back(std::move(item));
    }
    serve::ModelRegistry registry;
    chem::VoxelConfig voxel;
    voxel.grid_dim = kGridDim;
    serve::add_regressor(registry, "cnn3d", [] {
      core::Rng mrng(9);
      return std::make_unique<models::Cnn3d>(bench_cnn3d_config(), mrng);
    }, voxel);
    std::fprintf(out, "  \"fusion_job\": [\n");
    const size_t thread_counts[] = {1, 2, 4};
    for (size_t ti = 0; ti < 3; ++ti) {
      const size_t t = thread_counts[ti];
      serve::ServiceConfig sc;
      sc.workers = static_cast<int>(t);
      serve::ScoringService service(registry, sc);
      screen::JobConfig jc;
      jc.nodes = 1;
      jc.gpus_per_node = static_cast<int>(t);
      const screen::JobReport r = screen::FusionScoringJob(jc).run(items, service, "cnn3d");
      std::fprintf(out,
                   "    {\"threads\": %zu, \"workload\": \"poses%d_batch%d_cnn3d\", "
                   "\"poses_per_second\": %.1f}%s\n",
                   t, n_poses, jc.poses_per_batch, r.poses_per_second, ti + 1 < 3 ? "," : "");
      std::printf("fusion job @ %zu threads: %.1f poses/s\n", t, r.poses_per_second);
    }
    std::fprintf(out, "  ]\n}\n");
  }

  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = df::bench::json_flag_path(argc, argv, "BENCH_speedup.json");
  if (!json_path.empty()) return emit_json(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
