// Benchmarks the fault-tolerance layer's overhead and payoff: the same
// campaign run (a) monolithic in-memory, (b) with streaming shards +
// checkpoints, and (c) killed halfway and resumed. Streaming + checkpoint
// cost should be noise next to scoring (the paper's fix for the output
// bottleneck is precisely that per-rank writes are cheap), and the resumed
// half should cost roughly half the scoring time of a full run.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "screen/campaign.h"
#include "screen/writer.h"

using namespace df;
using namespace df::bench;

namespace {

screen::ModelFactory sg_factory() {
  return [] {
    core::Rng mrng(42);
    return std::make_unique<models::Sgcnn>(bench_sgcnn_config(), mrng);
  };
}

screen::CampaignConfig campaign_config() {
  screen::CampaignConfig cfg;
  cfg.job.nodes = 2;
  cfg.job.gpus_per_node = 2;
  cfg.job.voxel.grid_dim = kGridDim;
  cfg.job.inject_failures = true;
  cfg.poses_per_job = 16;
  cfg.pipeline.docking.num_runs = 4;
  cfg.pipeline.docking.steps_per_run = 40;
  cfg.pipeline.docking.max_poses = 4;
  cfg.pipeline.rescore_top_n = 1;
  cfg.checkpoint_every_jobs = 2;
  return cfg;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  print_header("Fault tolerance — streaming shard + checkpoint overhead");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "df_bench_fault_tolerance").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::Rng rng(3);
  std::vector<data::Target> targets = {data::make_target(data::TargetKind::Protease1, rng),
                                       data::make_target(data::TargetKind::Spike1, rng)};
  const auto compounds =
      data::generate_library(data::default_library(data::LibrarySource::Enamine, 24), rng);

  // (a) monolithic in-memory pass (the pre-fault-tolerance behaviour).
  auto cfg = campaign_config();
  auto t0 = std::chrono::steady_clock::now();
  const auto mono = screen::ScreeningCampaign(cfg, targets).run(compounds, sg_factory());
  const double mono_s = seconds_since(t0);

  // (b) full durability: streaming shards + checkpoint every 2 jobs.
  cfg.output_prefix = dir + "/durable";
  cfg.checkpoint_path = dir + "/durable.ckpt";
  t0 = std::chrono::steady_clock::now();
  const auto durable = screen::ScreeningCampaign(cfg, targets).run(compounds, sg_factory());
  const double durable_s = seconds_since(t0);

  // (c) kill halfway, then resume.
  auto half = campaign_config();
  half.output_prefix = dir + "/half";
  half.checkpoint_path = dir + "/half.ckpt";
  half.kill_after_attempts = durable.jobs_run / 2;
  t0 = std::chrono::steady_clock::now();
  try {
    screen::ScreeningCampaign(half, targets).run(compounds, sg_factory());
  } catch (const screen::CampaignKilled&) {
  }
  const double killed_s = seconds_since(t0);
  half.kill_after_attempts = -1;
  t0 = std::chrono::steady_clock::now();
  const auto resumed = screen::ScreeningCampaign(half, targets).run(compounds, sg_factory());
  const double resume_s = seconds_since(t0);

  std::printf("campaign: %d poses, %d units, %d jobs (%d failed)\n", durable.poses_generated,
              durable.units_total, durable.jobs_run, durable.jobs_failed);
  print_rule();
  std::printf("%-34s %8.3f s\n", "monolithic (no durability)", mono_s);
  std::printf("%-34s %8.3f s  (+%.1f%% overhead, %d checkpoints)\n",
              "streaming shards + checkpoints", durable_s,
              100.0 * (durable_s - mono_s) / mono_s, durable.checkpoints_written);
  std::printf("%-34s %8.3f s\n", "first half (killed)", killed_s);
  std::printf("%-34s %8.3f s  (%d/%d units recovered from disk)\n", "resume to completion",
              resume_s, resumed.units_resumed, resumed.units_total);
  print_rule();
  std::printf("results: mono=%zu durable=%zu resumed=%zu (identical ordering by construction)\n",
              mono.results.size(), durable.results.size(), resumed.results.size());

  std::filesystem::remove_all(dir);
  return 0;
}
