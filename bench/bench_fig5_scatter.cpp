// Regenerates paper Figure 5: Coherent Fusion predicted binding affinity vs
// experimental percent inhibition per target (Mpro assayed at 100 uM, spike
// at 10 uM), excluding compounds with <=1% inhibition — the paper's filter.
// Emits the scatter series to CSV and a text summary per target.
#include <cstdio>

#include "campaign_common.h"
#include "io/csv.h"
#include "stats/metrics.h"

using namespace df;
using namespace df::bench;

int main() {
  print_header("Figure 5 — predicted pK vs experimental % inhibition by target");

  Corpus c = make_corpus(2019);
  core::Rng rng(13);
  std::printf("training Coherent Fusion scorer...\n");
  FusionBundle fusion = train_coherent_fusion(c, rng);

  std::printf("screening 28 compounds against the 4 SARS-CoV-2 sites...\n\n");
  std::vector<data::Target> targets;
  const screen::CampaignReport report = run_sarscov2_campaign(fusion, 28, 33, &targets);

  io::CsvWriter csv("fig5_scatter.csv",
                    {"target", "compound", "predicted_pk", "percent_inhibition",
                     "assay_concentration_uM"});
  std::printf("%-11s %6s %9s %11s %12s  (points with >1%% inhibition)\n", "target", "n",
              "mean pK", "mean inh%", "conc (uM)");
  print_rule(56);
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    int n = 0;
    double pk_sum = 0, inh_sum = 0;
    for (const auto& r : report.results) {
      if (static_cast<size_t>(r.target_index) != ti) continue;
      if (r.percent_inhibition <= 1.0f) continue;  // paper excludes non-binders
      ++n;
      pk_sum += r.fusion_pk;
      inh_sum += r.percent_inhibition;
      csv.row({targets[ti].name, r.compound_id, std::to_string(r.fusion_pk),
               std::to_string(r.percent_inhibition),
               std::to_string(targets[ti].assay_concentration_uM)});
    }
    std::printf("%-11s %6d %9.2f %10.1f%% %12.0f\n", targets[ti].name.c_str(), n,
                n ? pk_sum / n : 0.0, n ? inh_sum / n : 0.0,
                targets[ti].assay_concentration_uM);
  }
  print_rule(56);
  std::printf("paper Fig. 5: 130 (protease1) / 81 (protease2) / 151 (spike1) / 113 (spike2)\n"
              "points; Mpro at 100 uM shows higher inhibition for weaker binders than\n"
              "spike at 10 uM. scatter series written to fig5_scatter.csv\n");
  std::printf("\ncampaign stats: %d poses, %d jobs (%d failed+retried), %d compounds rejected\n",
              report.poses_generated, report.jobs_run, report.jobs_failed,
              report.compounds_rejected);
  return 0;
}
