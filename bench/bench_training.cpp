// Training-engine scaling: the paper's §3.2 data-parallel training (Horovod
// ranks sharding each batch) reproduced as lane scaling on one node. Runs
// one fixed 3D-CNN training workload serially and at increasing lane
// counts, reports epoch wall time and samples/s, and verifies the engine's
// headline guarantee along the way: every parallel result must be BITWISE
// identical to the serial one (epoch stats + final parameters).
//
// `--json[=PATH]` writes BENCH_training.json (schema bench_training.v1)
// so CI archives a trajectory point per run. Thread-scaling rows are only
// meaningful when hardware_threads > 1 — the JSON records it (docs/PERF.md
// convention).
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_common.h"

using namespace df;
using namespace df::bench;

namespace {

models::RegressorFactory cnn_factory() {
  return [] {
    core::Rng rng(7);
    return std::make_unique<models::Cnn3d>(bench_cnn3d_config(), rng);
  };
}

struct Row {
  int threads = 1;
  double epoch_seconds = 0;
  double samples_per_s = 0;
  double speedup = 1.0;
  bool bitwise_identical = true;
};

bool results_identical(const models::TrainResult& a, const models::TrainResult& b,
                       models::Regressor& ma, models::Regressor& mb) {
  if (a.epochs.size() != b.epochs.size() || a.best_epoch != b.best_epoch) return false;
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    if (std::bit_cast<uint32_t>(a.epochs[e].train_mse) !=
            std::bit_cast<uint32_t>(b.epochs[e].train_mse) ||
        std::bit_cast<uint32_t>(a.epochs[e].val_mse) !=
            std::bit_cast<uint32_t>(b.epochs[e].val_mse)) {
      return false;
    }
  }
  const auto pa = ma.trainable_parameters();
  const auto pb = mb.trainable_parameters();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      if (std::bit_cast<uint32_t>(pa[i]->value[j]) != std::bit_cast<uint32_t>(pb[i]->value[j])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_flag_path(argc, argv, "BENCH_training.json");
  const unsigned hw = std::thread::hardware_concurrency();

  print_header("Training engine — data-parallel lane scaling (3D-CNN)");
  Corpus c = make_corpus(2027, /*n=*/120, /*core=*/12);
  std::printf("corpus: %zu train / %zu val, grid %d^3, hardware_threads=%u\n\n",
              c.train->size(), c.val->size(), kGridDim, hw);

  models::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.lr = 1e-3f;
  tc.seed = 11;
  tc.grad_shards = 8;

  // Serial reference.
  auto serial_model = cnn_factory()();
  const auto t0 = std::chrono::steady_clock::now();
  const models::TrainResult serial = models::train_model(*serial_model, *c.train, *c.val, tc);
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double per_epoch_serial = serial_s / tc.epochs;
  const double samples = static_cast<double>(c.train->size());

  std::vector<Row> rows;
  rows.push_back({1, per_epoch_serial, samples / per_epoch_serial, 1.0, true});
  std::printf("%-10s %14s %14s %10s %10s\n", "threads", "epoch (s)", "samples/s", "speedup",
              "bitwise");
  print_rule();
  std::printf("%-10d %14.3f %14.1f %10.2f %10s\n", 1, per_epoch_serial,
              samples / per_epoch_serial, 1.0, "ref");

  for (int threads : {2, 4, 8}) {
    models::TrainConfig ptc = tc;
    ptc.threads = threads;
    ptc.replica_factory = cnn_factory();
    auto model = cnn_factory()();
    const auto p0 = std::chrono::steady_clock::now();
    const models::TrainResult res = models::train_model(*model, *c.train, *c.val, ptc);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - p0).count() / tc.epochs;
    Row r;
    r.threads = threads;
    r.epoch_seconds = s;
    r.samples_per_s = samples / s;
    r.speedup = per_epoch_serial / s;
    r.bitwise_identical = results_identical(serial, res, *serial_model, *model);
    rows.push_back(r);
    std::printf("%-10d %14.3f %14.1f %10.2f %10s\n", threads, s, samples / s, r.speedup,
                r.bitwise_identical ? "yes" : "NO");
    if (!r.bitwise_identical) {
      std::printf("ERROR: %d-lane training diverged from serial bits\n", threads);
      return 1;
    }
  }
  print_rule();
  std::printf("epoch speedup at 8 lanes: %.2fx (scaling rows meaningful only when\n"
              "hardware_threads > 1; this machine has %u)\n",
              rows.back().speedup, hw);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"schema\": \"bench_training.v1\",\n";
    out << "  \"hardware_threads\": " << hw << ",\n";
    out << "  \"model\": \"3D-CNN\",\n";
    out << "  \"train_samples\": " << c.train->size() << ",\n";
    out << "  \"epochs\": " << tc.epochs << ",\n";
    out << "  \"batch_size\": " << tc.batch_size << ",\n";
    out << "  \"grad_shards\": " << tc.grad_shards << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"threads\": " << r.threads << ", \"epoch_seconds\": " << r.epoch_seconds
          << ", \"samples_per_s\": " << r.samples_per_s << ", \"speedup\": " << r.speedup
          << ", \"bitwise_identical\": " << (r.bitwise_identical ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
