// Cluster load generator — drives a fleet of real score_server_node
// processes at two layers and reports throughput, tail latency, and the
// cost of chaos:
//
//  1. Wire clients — C threads hammering the fleet through ScoreClient
//     (retries + backoff on): requests/sec, p50/p99, retries,
//     transport failures.
//  2. ClusterController — the campaign's scheduling layer: a feeder keeps
//     the unit pipeline full, units/sec and unit-latency percentiles come
//     out, plus requeues and node death/revival counts.
//
// With --kill-every-ms=K a killer thread SIGKILLs fleet nodes round-robin
// every K ms and respawns them on the same port, so the numbers include
// real node-death recovery, not just the happy path.
//
// Run modes:
//   bench_cluster_loadgen [--nodes=3] [--clients=4] [--seconds=5]
//                         [--kill-every-ms=0] [--json[=PATH]]
// The server binary is $DF_SERVER_BIN, or score_server_node next to this
// binary when unset.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "chem/conformer.h"
#include "screen/controller.h"
#include "serve/client.h"
#include "serve/latency.h"

using namespace df;
using namespace df::bench;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

namespace {

constexpr int kPosesPerRequest = 6;
constexpr int kPosesPerBatch = 8;

int int_flag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One score_server_node child; SIGKILL-able and respawnable on its port.
/// Model flags mirror the chaos suite's tiny SG-CNN so every node (and
/// every respawn) serves identical scores.
class ServerProcess {
 public:
  ServerProcess(std::string bin, fs::path dir) : bin_(std::move(bin)), dir_(std::move(dir)) {}
  ~ServerProcess() { kill_hard(); }
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  bool spawn(int port) {
    static std::atomic<int> counter{0};
    const std::string tag = "loadgen" + std::to_string(counter.fetch_add(1));
    const fs::path port_file = dir_ / (tag + ".port");
    std::error_code ec;
    fs::remove(port_file, ec);
    std::vector<std::string> args = {
        bin_,
        "--port=" + std::to_string(port),
        "--port-file=" + port_file.string(),
        "--node-id=" + tag,
        "--scorer=sgcnn",
        "--model-seed=31",
        "--voxel-grid=8",
        "--gather-cov=8",
        "--gather-noncov=12",
        "--k-cov=2",
        "--k-noncov=2",
        "--workers=2",
        "--poses-per-batch=" + std::to_string(kPosesPerBatch),
        "--ordered=1",
    };
    pid_ = ::fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(bin_.c_str(), argv.data());
      _exit(127);
    }
    if (pid_ < 0) return false;
    if (!eventually([&] { return fs::exists(port_file); })) return false;
    std::ifstream in(port_file);
    int bound = 0;
    in >> bound;
    if (bound <= 0) return false;
    port_ = bound;
    return true;
  }

  void kill_hard() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int st = 0;
    ::waitpid(pid_, &st, 0);
    pid_ = -1;
  }

  bool respawn() { return spawn(port_); }
  int port() const { return port_; }

 private:
  std::string bin_;
  fs::path dir_;
  pid_t pid_ = -1;
  int port_ = 0;
};

/// SIGKILL one fleet node every `every_ms`, round-robin, respawning it on
/// the same port right away. Runs until stop; counts kills.
class Killer {
 public:
  Killer(std::vector<std::unique_ptr<ServerProcess>>& fleet, int every_ms)
      : fleet_(fleet), every_ms_(every_ms) {
    if (every_ms_ > 0) thread_ = std::thread([this] { run(); });
  }
  ~Killer() { stop(); }
  void stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  uint64_t kills() const { return kills_.load(); }

 private:
  void run() {
    size_t next = 0;
    while (!stop_.load()) {
      const auto wake = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(every_ms_);
      while (std::chrono::steady_clock::now() < wake) {
        if (stop_.load()) return;
        std::this_thread::sleep_for(5ms);
      }
      ServerProcess& victim = *fleet_[next % fleet_.size()];
      ++next;
      victim.kill_hard();
      kills_.fetch_add(1);
      if (!victim.respawn()) {
        std::fprintf(stderr, "loadgen: respawn failed, stopping killer\n");
        return;
      }
    }
  }

  std::vector<std::unique_ptr<ServerProcess>>& fleet_;
  int every_ms_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> kills_{0};
  std::thread thread_;
};

struct Workload {
  std::vector<chem::Atom> pocket;
  std::vector<serve::PoseInput> poses;  // kPosesPerRequest poses, shared
};

Workload make_workload() {
  Workload w;
  core::Rng rng(17);
  w.pocket = data::make_pocket({5.0f, 32, 0.7f, 0.5f, 0.1f}, rng);
  for (int i = 0; i < kPosesPerRequest; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    serve::PoseInput p;
    p.ligand = std::move(lig);
    p.pocket = &w.pocket;
    w.poses.push_back(std::move(p));
  }
  return w;
}

struct ClientPhase {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;       // typed non-kNone verdicts
  uint64_t retries = 0;
  uint64_t transport_failures = 0;
  uint64_t timeouts = 0;
  uint64_t kills = 0;
  double seconds = 0;
  serve::LatencyHistogram latency;
};

ClientPhase run_client_phase(std::vector<std::unique_ptr<ServerProcess>>& fleet,
                             const Workload& w, int clients, int seconds, int kill_every_ms) {
  ClientPhase out;
  std::vector<std::unique_ptr<serve::ScoreClient>> pool;
  for (const auto& s : fleet) {
    serve::ClientConfig cc;
    cc.port = s->port();
    cc.connections = clients;
    cc.max_retries = 4;
    cc.backoff_base_ms = 20;
    cc.backoff_max_ms = 300;
    cc.request_timeout_ms = 15000;  // bound a request that straddles a kill
    pool.push_back(std::make_unique<serve::ScoreClient>(cc));
  }

  Killer killer(fleet, kill_every_ms);
  std::vector<serve::LatencyHistogram> hists(static_cast<size_t>(clients));
  std::vector<uint64_t> oks(static_cast<size_t>(clients), 0);
  std::vector<uint64_t> errs(static_cast<size_t>(clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(seconds);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      uint64_t seq = static_cast<uint64_t>(c);
      while (std::chrono::steady_clock::now() < deadline) {
        serve::ScoreClient& client = *pool[seq % pool.size()];
        ++seq;
        serve::ScoreRequest req;
        req.scorer = "sgcnn";
        req.client = "loadgen" + std::to_string(c);
        req.poses = w.poses;
        const auto r0 = std::chrono::steady_clock::now();
        const serve::ScoreResponse resp = client.score(req);
        hists[static_cast<size_t>(c)].record_seconds(seconds_since(r0));
        if (resp.error == serve::ScoreError::kNone) {
          ++oks[static_cast<size_t>(c)];
        } else {
          ++errs[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out.seconds = seconds_since(t0);
  killer.stop();
  out.kills = killer.kills();
  for (int c = 0; c < clients; ++c) {
    out.latency.merge(hists[static_cast<size_t>(c)]);
    out.ok += oks[static_cast<size_t>(c)];
    out.errors += errs[static_cast<size_t>(c)];
  }
  for (const auto& client : pool) {
    const serve::ClientStats s = client->stats();
    out.requests += s.requests;
    out.retries += s.retries;
    out.transport_failures += s.transport_failures;
    out.timeouts += s.timeouts;
  }
  return out;
}

struct ControllerPhase {
  uint64_t units = 0;
  uint64_t ok = 0;
  uint64_t kills = 0;
  double seconds = 0;
  serve::LatencyHistogram latency;
  screen::ControllerStats stats;
};

ControllerPhase run_controller_phase(std::vector<std::unique_ptr<ServerProcess>>& fleet,
                                     const Workload& w, int seconds, int kill_every_ms) {
  ControllerPhase out;
  screen::ControllerConfig cfg;
  cfg.scorer = "sgcnn";
  cfg.client.connect_timeout_ms = 1000;
  cfg.client.io_timeout_ms = 10000;
  cfg.client.backoff_base_ms = 1;
  cfg.client.backoff_max_ms = 10;
  cfg.heartbeat_interval_ms = 50;
  cfg.heartbeat_misses = 2;
  cfg.inflight_per_node = 2;
  screen::ClusterController controller(cfg);
  for (const auto& s : fleet) {
    std::string error;
    if (!controller.register_node("127.0.0.1", s->port(), &error)) {
      std::fprintf(stderr, "loadgen: register failed: %s\n", error.c_str());
      return out;
    }
  }

  Killer killer(fleet, kill_every_ms);
  std::mutex mu;
  std::map<uint32_t, std::chrono::steady_clock::time_point> submitted;
  const size_t pipeline = fleet.size() * 2 * 2;  // 2x the fleet's wire slots
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(seconds);
  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    uint32_t next_id = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (controller.outstanding() >= pipeline) {
        std::this_thread::sleep_for(1ms);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        submitted[next_id] = std::chrono::steady_clock::now();
      }
      controller.submit_unit(next_id, w.poses);
      ++next_id;
    }
    feeding.store(false);
  });
  // Collect concurrently with feeding — outstanding() only drops here, so
  // the >0 check cannot be raced into a throwing wait_unit().
  while (feeding.load() || controller.outstanding() > 0) {
    if (controller.outstanding() == 0) {
      std::this_thread::sleep_for(1ms);
      continue;
    }
    const screen::UnitResult r = controller.wait_unit();
    std::chrono::steady_clock::time_point s0;
    {
      std::lock_guard<std::mutex> lock(mu);
      s0 = submitted.at(r.unit_id);
      submitted.erase(r.unit_id);
    }
    out.latency.record_seconds(seconds_since(s0));
    ++out.units;
    if (r.ok) ++out.ok;
  }
  feeder.join();
  out.seconds = seconds_since(t0);
  killer.stop();
  out.kills = killer.kills();
  out.stats = controller.stats();
  controller.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = int_flag(argc, argv, "--nodes", 3);
  const int clients = int_flag(argc, argv, "--clients", 4);
  const int seconds = int_flag(argc, argv, "--seconds", 5);
  const int kill_every_ms = int_flag(argc, argv, "--kill-every-ms", 0);
  const std::string json_path = json_flag_path(argc, argv, "BENCH_cluster_loadgen.json");

  std::string bin;
  if (const char* env = std::getenv("DF_SERVER_BIN")) {
    bin = env;
  } else {
    const fs::path sibling = fs::path(argv[0]).parent_path() / "score_server_node";
    if (fs::exists(sibling)) bin = sibling.string();
  }
  if (bin.empty()) {
    std::fprintf(stderr,
                 "bench_cluster_loadgen: set DF_SERVER_BIN or build score_server_node "
                 "next to this binary\n");
    return 1;
  }

  const fs::path dir = fs::temp_directory_path() / ("df_loadgen_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::vector<std::unique_ptr<ServerProcess>> fleet;
  for (int i = 0; i < nodes; ++i) {
    fleet.push_back(std::make_unique<ServerProcess>(bin, dir));
    if (!fleet.back()->spawn(0)) {
      std::fprintf(stderr, "bench_cluster_loadgen: failed to spawn node %d\n", i);
      return 1;
    }
  }
  const Workload w = make_workload();

  print_header("Cluster load generator");
  std::printf("fleet: %d nodes x %d-pose batches, %d clients, %d s per phase, "
              "kill every %d ms%s\n\n",
              nodes, kPosesPerBatch, clients, seconds, kill_every_ms,
              kill_every_ms > 0 ? "" : " (chaos off)");

  const ClientPhase cp = run_client_phase(fleet, w, clients, seconds, kill_every_ms);
  const double rps = static_cast<double>(cp.requests) / cp.seconds;
  std::printf("%-26s %10s %10s %10s %10s %8s\n", "phase", "req/s", "p50 ms", "p99 ms",
              "retries", "kills");
  print_rule(80);
  std::printf("%-26s %10.1f %10.3f %10.3f %10llu %8llu\n", "wire clients", rps,
              cp.latency.p50_ms(), cp.latency.p99_ms(),
              static_cast<unsigned long long>(cp.retries),
              static_cast<unsigned long long>(cp.kills));

  const ControllerPhase kp = run_controller_phase(fleet, w, seconds, kill_every_ms);
  const double ups = kp.seconds > 0 ? static_cast<double>(kp.units) / kp.seconds : 0.0;
  std::printf("%-26s %10.1f %10.3f %10.3f %10llu %8llu\n", "cluster controller", ups,
              kp.latency.p50_ms(), kp.latency.p99_ms(),
              static_cast<unsigned long long>(kp.stats.requeues),
              static_cast<unsigned long long>(kp.kills));
  print_rule(80);
  std::printf("clients: %llu ok, %llu typed errors, %llu transport failures, %llu timeouts\n",
              static_cast<unsigned long long>(cp.ok),
              static_cast<unsigned long long>(cp.errors),
              static_cast<unsigned long long>(cp.transport_failures),
              static_cast<unsigned long long>(cp.timeouts));
  std::printf("controller: %llu units (%llu ok), %llu dispatches, %llu requeues, "
              "%llu deaths, %llu revivals\n",
              static_cast<unsigned long long>(kp.units),
              static_cast<unsigned long long>(kp.ok),
              static_cast<unsigned long long>(kp.stats.dispatches),
              static_cast<unsigned long long>(kp.stats.requeues),
              static_cast<unsigned long long>(kp.stats.node_deaths),
              static_cast<unsigned long long>(kp.stats.node_revivals));

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_cluster_loadgen: cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"bench_cluster_loadgen.v1\",\n"
                 "  \"config\": {\"nodes\": %d, \"clients\": %d, \"seconds\": %d, "
                 "\"kill_every_ms\": %d, \"poses_per_request\": %d, \"poses_per_batch\": %d},\n"
                 "  \"clients\": {\"requests\": %llu, \"requests_per_second\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ok\": %llu, \"typed_errors\": %llu, "
                 "\"retries\": %llu, \"transport_failures\": %llu, \"timeouts\": %llu, "
                 "\"kills\": %llu},\n"
                 "  \"controller\": {\"units\": %llu, \"units_per_second\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ok\": %llu, \"dispatches\": %llu, "
                 "\"requeues\": %llu, \"node_deaths\": %llu, \"node_revivals\": %llu, "
                 "\"heartbeats\": %llu, \"kills\": %llu}\n"
                 "}\n",
                 nodes, clients, seconds, kill_every_ms, kPosesPerRequest, kPosesPerBatch,
                 static_cast<unsigned long long>(cp.requests), rps, cp.latency.p50_ms(),
                 cp.latency.p99_ms(), static_cast<unsigned long long>(cp.ok),
                 static_cast<unsigned long long>(cp.errors),
                 static_cast<unsigned long long>(cp.retries),
                 static_cast<unsigned long long>(cp.transport_failures),
                 static_cast<unsigned long long>(cp.timeouts),
                 static_cast<unsigned long long>(cp.kills),
                 static_cast<unsigned long long>(kp.units), ups, kp.latency.p50_ms(),
                 kp.latency.p99_ms(), static_cast<unsigned long long>(kp.ok),
                 static_cast<unsigned long long>(kp.stats.dispatches),
                 static_cast<unsigned long long>(kp.stats.requeues),
                 static_cast<unsigned long long>(kp.stats.node_deaths),
                 static_cast<unsigned long long>(kp.stats.node_revivals),
                 static_cast<unsigned long long>(kp.stats.heartbeats),
                 static_cast<unsigned long long>(kp.kills));
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  // Exit 0 regardless of perf: the verdict is the JSON artifact; chaos-mode
  // typed errors (a request caught mid-kill past its retries) are expected.
  return 0;
}
