// Regenerates paper Figure 4: strong scaling of one 2M-pose Coherent Fusion
// job across 1/2/4/8 nodes at per-rank batch sizes 12/23/56, plus the §4.3
// failure-rate observations. Uses the calibrated throughput model at paper
// scale and cross-checks the batch/node trends with real mini-jobs run
// through the harness.
#include <cstdio>

#include "bench_common.h"
#include "chem/conformer.h"
#include "io/csv.h"
#include "screen/job.h"
#include "screen/scale_model.h"
#include "serve/service.h"

using namespace df;
using namespace df::bench;

int main() {
  print_header("Figure 4 — strong scaling of a single 2M-pose Fusion job");

  screen::ThroughputModel model;
  const int nodes[] = {1, 2, 4, 8};
  const int batches[] = {12, 23, 56};

  io::CsvWriter csv("fig4_strong_scaling.csv", {"nodes", "batch", "total_minutes",
                                                "expected_minutes_with_failures"});
  std::printf("%-7s", "nodes");
  for (int b : batches) std::printf("  batch=%-4d", b);
  std::printf("  (total minutes, 2M poses)\n");
  print_rule(50);
  for (int n : nodes) {
    std::printf("%-7d", n);
    for (int b : batches) {
      const double t = model.job_time(2'000'000, n, b).total_minutes();
      std::printf("  %9.1f ", t);
      csv.row({std::to_string(n), std::to_string(b), std::to_string(t),
               std::to_string(model.expected_minutes_with_failures(2'000'000, n, b))});
    }
    std::printf("\n");
  }
  print_rule(50);
  std::printf("paper shape: ~2x speedup per node doubling minus fixed startup;\n"
              "batch 56 ~10 min faster than batch 12 at 4 nodes\n\n");

  std::printf("%-7s %18s\n", "nodes", "job failure rate");
  print_rule(28);
  for (int n : nodes) {
    std::printf("%-7d %17.0f%%\n", n, 100.0 * screen::job_failure_probability(n));
  }
  std::printf("(paper §4.3: ~2%% at 1-2 nodes, ~3%% at 4, ~20%% at 8)\n\n");

  // Cross-check with real mini-jobs: run the same pose set at increasing
  // rank counts and decreasing/increasing batch size; eval time must drop
  // with ranks and mildly with batch.
  core::Rng rng(6);
  const auto pocket = data::make_pocket({5.5f, 48, 0.7f, 0.5f, 0.1f}, rng);
  std::vector<screen::PoseWorkItem> items;
  for (int i = 0; i < 240; ++i) {
    chem::Molecule lig = chem::generate_molecule({}, rng);
    chem::embed_conformer(lig, rng);
    lig.translate(core::Vec3{} - lig.centroid());
    screen::PoseWorkItem item;
    item.compound_id = i;
    item.ligand = std::move(lig);
    item.pocket = &pocket;
    items.push_back(std::move(item));
  }
  serve::ModelRegistry registry;
  chem::VoxelConfig voxel;
  voxel.grid_dim = kGridDim;
  serve::add_regressor(registry, "sgcnn", [] {
    core::Rng mrng(9);
    return std::make_unique<models::Sgcnn>(bench_sgcnn_config(), mrng);
  }, voxel);
  std::printf("measured mini-jobs (240 poses, this machine):\n");
  std::printf("%-8s %-8s %12s %14s\n", "ranks", "batch", "eval (s)", "poses/s");
  print_rule(46);
  for (int ranks : {1, 2, 4}) {
    for (int batch : {12, 56}) {
      // One service per shape: worker count tracks the rank count, so the
      // scaling trend still measures compute, now on the service side.
      serve::ServiceConfig sc;
      sc.workers = ranks;
      sc.poses_per_batch = batch;
      serve::ScoringService service(registry, sc);
      screen::JobConfig jc;
      jc.nodes = 1;
      jc.gpus_per_node = ranks;
      jc.batch_size_per_rank = batch;
      const screen::JobReport r = screen::FusionScoringJob(jc).run(items, service, "sgcnn");
      std::printf("%-8d %-8d %12.2f %14.1f\n", ranks, batch, r.eval_seconds, r.poses_per_second);
    }
  }
  std::printf("\nresults written to fig4_strong_scaling.csv\n");
  return 0;
}
