// Regenerates paper Table 8: Pearson/Spearman correlation of each scoring
// method (Vina, AMPL MM/GBSA, Coherent Fusion) with experimental percent
// inhibition, per target, restricted to compounds with >1% inhibition.
// Paper shape: all correlations are LOW (|r| < ~0.3) and the best method
// varies by target.
#include <cmath>
#include <cstdio>

#include "campaign_common.h"
#include "io/csv.h"
#include "stats/metrics.h"

using namespace df;
using namespace df::bench;

int main() {
  print_header("Table 8 — correlation with % inhibition on >1% inhibiting compounds");

  Corpus c = make_corpus(2019);
  core::Rng rng(17);
  std::printf("training Coherent Fusion scorer...\n");
  FusionBundle fusion = train_coherent_fusion(c, rng);
  std::printf("screening 48 compounds against the 4 SARS-CoV-2 sites...\n\n");
  std::vector<data::Target> targets;
  const screen::CampaignReport report = run_sarscov2_campaign(fusion, 48, 47, &targets);

  io::CsvWriter csv("table8_correlations.csv",
                    {"method", "target", "pearson", "spearman", "n"});
  std::printf("%-16s %-12s %9s %10s %4s\n", "Method", "Target/Site", "PearsonR", "SpearmanR",
              "n");
  print_rule(56);
  const char* methods[] = {"Vina", "AMPL MM/GBSA", "Coherent Fusion"};
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    std::vector<float> inh, vina, ampl, fus;
    for (const auto& r : report.results) {
      if (static_cast<size_t>(r.target_index) != ti) continue;
      if (r.percent_inhibition <= 1.0f) continue;  // the paper's >1% filter
      inh.push_back(r.percent_inhibition);
      // Paper: absolute value of Vina / MM-GBSA scores used, so that for
      // every method larger = stronger predicted binding.
      vina.push_back(std::fabs(r.vina_score));
      ampl.push_back(std::fabs(r.ampl_mmgbsa_score));
      fus.push_back(r.fusion_pk);
    }
    if (inh.size() < 3) {
      std::printf("%-16s %-12s %9s %10s %4zu (too few binders)\n", "-",
                  targets[ti].name.c_str(), "-", "-", inh.size());
      continue;
    }
    const std::vector<float>* scores[] = {&vina, &ampl, &fus};
    for (int m = 0; m < 3; ++m) {
      const float p = stats::pearson(*scores[m], inh);
      const float s = stats::spearman(*scores[m], inh);
      std::printf("%-16s %-12s %9.2f %10.2f %4zu\n", methods[m], targets[ti].name.c_str(), p, s,
                  inh.size());
      csv.row({methods[m], targets[ti].name, std::to_string(p), std::to_string(s),
               std::to_string(inh.size())});
    }
  }
  print_rule(56);
  std::printf("paper Table 8: all |r| < 0.31; best method varies by target\n"
              "(AMPL MM/GBSA on protease1, Coherent Fusion on protease2+spike1,\n"
              "Vina on spike2). written to table8_correlations.csv\n");
  return 0;
}
