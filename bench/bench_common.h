// Shared fixtures for the table/figure benchmarks: scaled-down corpus and
// model builders with one central place for the size knobs (DESIGN.md §5),
// plus a tiny table printer so every bench emits paper-style rows.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/splits.h"
#include "models/fusion.h"
#include "models/trainer.h"

namespace df::bench {

// ---- scaled-down experiment sizes (paper values in comments) ----
inline constexpr int kCorpusSize = 360;      // paper: ~17k complexes
inline constexpr int kCoreSize = 40;         // paper: 290
inline constexpr int kGridDim = 8;           // paper: ~48 voxels/axis
inline constexpr float kValFraction = 0.1f;  // paper: 10%

struct Corpus {
  std::vector<data::ComplexRecord> recs;
  std::unique_ptr<data::ComplexDataset> train, val, core;
};

inline Corpus make_corpus(uint64_t seed = 2019, int n = kCorpusSize, int core = kCoreSize,
                          bool rotation_augment_train = true) {
  Corpus c;
  data::PdbbindConfig cfg;
  cfg.num_complexes = n;
  cfg.core_size = core;
  cfg.settle_runs = 1;
  cfg.settle_steps = 12;
  core::Rng rng(seed);
  c.recs = data::SyntheticPdbbind(cfg).generate(rng);
  const data::TrainValSplit split = data::pdbbind_train_val(c.recs, kValFraction, rng);
  data::DatasetConfig train_dc;
  train_dc.voxel.grid_dim = kGridDim;
  train_dc.rotation_augment = rotation_augment_train;
  data::DatasetConfig eval_dc;
  eval_dc.voxel.grid_dim = kGridDim;
  c.train = std::make_unique<data::ComplexDataset>(&c.recs, split.train, train_dc);
  c.val = std::make_unique<data::ComplexDataset>(&c.recs, split.val, eval_dc);
  c.core = std::make_unique<data::ComplexDataset>(
      &c.recs, data::SyntheticPdbbind::core_indices(c.recs), eval_dc);
  return c;
}

// ---- model builders (Table 2/3-shaped, scaled) ----
inline models::SgcnnConfig bench_sgcnn_config() {
  models::SgcnnConfig cfg;
  cfg.covalent_k = 4;                 // Table 2: 6
  cfg.noncovalent_k = 3;              // Table 2: 3
  cfg.covalent_gather_width = 12;     // Table 2: 24
  cfg.noncovalent_gather_width = 48;  // Table 2: 128
  return cfg;
}

inline models::Cnn3dConfig bench_cnn3d_config() {
  models::Cnn3dConfig cfg;
  cfg.grid_dim = kGridDim;
  cfg.conv_filters1 = 8;   // Table 3: 32
  cfg.conv_filters2 = 16;  // Table 3: 64
  cfg.dense_nodes = 32;    // Table 3: 128
  cfg.residual2 = true;    // Table 3: T
  return cfg;
}

inline models::FusionConfig bench_fusion_config(models::FusionKind kind) {
  models::FusionConfig cfg;
  cfg.kind = kind;
  cfg.fusion_nodes = 24;
  if (kind == models::FusionKind::Mid) {
    // Table 4: 5 layers, model-specific layers on, residual fusion, SELU.
    cfg.num_fusion_layers = 5;
    cfg.model_specific_layers = true;
    cfg.residual_fusion = true;
    cfg.dropout1 = 0.251f;
    cfg.dropout2 = 0.125f;
    cfg.dropout3 = 0.0f;
  } else {
    // Table 5: 4 layers, simpler architecture, stronger dropout.
    cfg.num_fusion_layers = 4;
    cfg.model_specific_layers = false;
    cfg.residual_fusion = false;
    cfg.dropout1 = 0.386f;
    cfg.dropout2 = 0.247f;
    cfg.dropout3 = 0.055f;
  }
  return cfg;
}

// ---- machine-readable output ----

/// Escape a string for embedding inside a JSON string literal: backslash,
/// double quote, and the control range (U+0000..U+001F; the named short
/// escapes where JSON has them, \u00XX otherwise). Every runtime string a
/// bench interpolates into its --json output must pass through here —
/// a backend name or path containing `"` or `\` otherwise corrupts the
/// whole document.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Parse the shared `--json[=PATH]` convention (docs/PERF.md): returns
/// `default_path` for bare `--json`, the given path for `--json=PATH`, and
/// empty when the flag is absent.
inline std::string json_flag_path(int argc, char** argv, const char* default_path) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      path = default_path;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    }
  }
  return path;
}

// ---- table printing ----
inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace df::bench
